// Safetycheck demonstrates the paper's central capability: a *stateful*
// SQL++ UDF (the Figure 8 tweet safety check, which joins against a
// SensitiveWords dataset) attached to a live feed, with the reference
// data updated mid-stream. The per-batch state refresh of the dynamic
// ingestion framework makes the update visible to later batches — the
// exact behaviour the old streaming pipeline cannot provide (it rejects
// this UDF outright).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ideadb/idea"
)

func main() {
	// Small frames so the demo's trickle flushes promptly.
	c, err := idea.NewCluster(idea.Config{Nodes: 3, FrameCapacity: 25})
	if err != nil {
		log.Fatal(err)
	}
	c.MustExecute(`
		CREATE TYPE TweetType AS OPEN { id: int64, text: string };
		CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
		CREATE TYPE WordType AS OPEN { id: int64, country: string, word: string };
		CREATE DATASET SensitiveWords(WordType) PRIMARY KEY id;
		INSERT INTO SensitiveWords ([
			{"id": 1, "country": "US", "word": "bomb"}
		]);
		CREATE FUNCTION tweetSafetyCheck(tweet) {
			LET safety_check_flag = CASE
				EXISTS(SELECT s FROM SensitiveWords s
					WHERE tweet.country = s.country AND contains(tweet.text, s.word))
				WHEN true THEN "Red" ELSE "Green" END
			SELECT tweet.*, safety_check_flag
		};
		CREATE FEED TweetFeed WITH {
			"adapter-name": "channel_adapter",
			"batch-size": 64
		};
		CONNECT FEED TweetFeed TO DATASET EnrichedTweets APPLY FUNCTION tweetSafetyCheck;
	`)

	ch := make(chan []byte)
	if err := c.SetFeedSource("TweetFeed", func(int) (idea.FeedSource, error) {
		return &idea.ChannelSource{C: ch}, nil
	}); err != nil {
		log.Fatal(err)
	}
	feed := c.MustExecute(`START FEED TweetFeed;`).Feeds()[0]

	// Phase 1: "storm" is not yet a sensitive word.
	send := func(base, n int, text string) {
		for i := 0; i < n; i++ {
			ch <- []byte(fmt.Sprintf(`{"id":%d,"text":"a %s is coming","country":"US"}`, base+i, text))
		}
	}
	send(0, 500, "storm")
	waitFor(c, 400)

	// Update the reference data mid-feed: UPSERT a new keyword (the
	// paper's Section 3.3 scenario). No redeployment, no feed restart.
	c.MustExecute(`UPSERT INTO SensitiveWords ([
		{"id": 2, "country": "US", "word": "storm"}
	]);`)
	fmt.Println("upserted new sensitive word 'storm' while the feed is running")

	// Phase 2: the same text is now flagged Red by later batches.
	send(1000, 500, "storm")
	close(ch)
	if err := feed.Wait(); err != nil {
		log.Fatal(err)
	}

	for _, probe := range []int64{0, 1400} {
		rec, found, err := c.Get("EnrichedTweets", idea.Int64(probe))
		if err != nil || !found {
			log.Fatalf("tweet %d missing: %v", probe, err)
		}
		fmt.Printf("tweet %4d: flag=%s\n", probe, rec.Field("safety_check_flag").Str())
	}
	// Parameter binding keeps the probe query free of value splicing.
	rows, err := c.Query(context.Background(), `
		SELECT e.safety_check_flag AS flag, count(*) AS num
		FROM EnrichedTweets e WHERE e.country = $country
		GROUP BY e.safety_check_flag ORDER BY e.safety_check_flag`,
		idea.Named("country", "US"))
	if err != nil {
		log.Fatal(err)
	}
	for row, err := range rows.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %d\n", row.Field("flag").Str(), row.Field("num").Int())
	}
}

// waitFor polls until the enriched dataset holds at least n records.
func waitFor(c *idea.Cluster, n int) {
	for {
		if got, _ := c.DatasetLen("EnrichedTweets"); got >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
