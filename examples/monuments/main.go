// Monuments demonstrates spatial enrichment (the paper's Nearby
// Monuments use case, Appendix E): tweets are annotated with the
// monuments within 1.5 degrees of their location. With an R-tree index
// on the monument locations the planner chooses an index nested-loop
// join that probes live storage; it also shows that a monument inserted
// mid-feed is immediately visible — fresher even than per-batch refresh.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/ideadb/idea"
)

func main() {
	c, err := idea.NewCluster(idea.Config{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	c.MustExecute(`
		CREATE TYPE TweetType AS OPEN { id: int64, text: string };
		CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
		CREATE TYPE monumentType AS OPEN {
			monument_id: string,
			monument_location: point
		};
		CREATE DATASET monumentList(monumentType) PRIMARY KEY monument_id;
		CREATE INDEX monumentLoc ON monumentList(monument_location) TYPE RTREE;
		CREATE FUNCTION enrichTweet(t) {
			LET nearby_monuments =
				(SELECT VALUE m.monument_id
				 FROM monumentList m
				 WHERE spatial_intersect(
					m.monument_location,
					create_circle(create_point(t.longitude, t.latitude), 1.5)))
			SELECT t.*, nearby_monuments
		};
		CREATE FEED TweetFeed WITH { "adapter-name": "channel_adapter" };
		CONNECT FEED TweetFeed TO DATASET EnrichedTweets APPLY FUNCTION enrichTweet;
	`)

	// Load a monument grid around the origin.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		c.MustExecute(fmt.Sprintf(`UPSERT INTO monumentList ([
			{"monument_id": "m%04d", "monument_location": [%f, %f]}
		]);`, i, r.Float64()*20-10, r.Float64()*20-10))
	}

	ch := make(chan []byte)
	if err := c.SetFeedSource("TweetFeed", func(int) (idea.FeedSource, error) {
		return &idea.ChannelSource{C: ch}, nil
	}); err != nil {
		log.Fatal(err)
	}
	feed := c.MustExecute(`START FEED TweetFeed;`).Feeds()[0]

	// Tweets clustered near the origin.
	go func() {
		for i := 0; i < 1000; i++ {
			ch <- []byte(fmt.Sprintf(
				`{"id":%d,"text":"sightseeing","latitude":%f,"longitude":%f}`,
				i, r.Float64()*4-2, r.Float64()*4-2))
		}
		// A brand-new monument appears mid-feed at a far-away spot...
		if _, err := c.Execute(context.Background(), `UPSERT INTO monumentList ([
			{"monument_id": "brand-new", "monument_location": [150.0, 80.0]}
		]);`); err != nil {
			log.Fatal(err)
		}
		// ...and the very next tweets at that spot see it (index-NLJ
		// probes live storage; no batch boundary needed).
		for i := 1000; i < 1200; i++ {
			ch <- []byte(fmt.Sprintf(
				`{"id":%d,"text":"at the new monument","latitude":80.0,"longitude":150.0}`, i))
		}
		close(ch)
	}()
	if err := feed.Wait(); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	rows, err := c.Query(context.Background(), `
		SELECT VALUE count(*) FROM EnrichedTweets e
		WHERE array_length(e.nearby_monuments) > 0`)
	if err != nil {
		log.Fatal(err)
	}
	vals, err := rows.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tweets with nearby monuments: %d of 1200 (query took %v)\n",
		vals[0].Int(), time.Since(start).Round(time.Millisecond))

	rec, _, err := c.Get("EnrichedTweets", idea.Int64(1199))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tweet 1199 near the mid-feed monument sees: %s\n",
		rec.Field("nearby_monuments"))
}
