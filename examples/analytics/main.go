// Analytics contrasts the paper's two enrichment strategies (Section 4):
//
//   - Option 1 — enrich lazily at query time: every analytical query
//     re-evaluates the UDF over the whole dataset.
//   - Option 2 — enrich eagerly at ingestion: the feed pipeline applies
//     the UDF once and stores the result, so analytical queries read a
//     plain field.
//
// The example runs the same analytical question both ways and prints the
// per-query cost, which is the paper's motivation for pushing enrichment
// into the ingestion pipeline.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ideadb/idea"
)

const n = 3000

func main() {
	c, err := idea.NewCluster(idea.Config{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	c.MustExecute(`
		CREATE TYPE TweetType AS OPEN { id: int64, text: string };
		CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
		CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
		CREATE TYPE WordType AS OPEN { id: int64, country: string, word: string };
		CREATE DATASET SensitiveWords(WordType) PRIMARY KEY id;
		INSERT INTO SensitiveWords ([
			{"id": 1, "country": "US", "word": "bomb"},
			{"id": 2, "country": "FR", "word": "attaque"},
			{"id": 3, "country": "US", "word": "threat"}
		]);
		CREATE FUNCTION tweetSafetyCheck(tweet) {
			LET safety_check_flag = CASE
				EXISTS(SELECT s FROM SensitiveWords s
					WHERE tweet.country = s.country AND contains(tweet.text, s.word))
				WHEN true THEN "Red" ELSE "Green" END
			SELECT tweet.*, safety_check_flag
		};
		CREATE FEED RawFeed WITH { "adapter-name": "channel_adapter" };
		CONNECT FEED RawFeed TO DATASET Tweets;
		CREATE FEED EnrichedFeed WITH { "adapter-name": "channel_adapter" };
		CONNECT FEED EnrichedFeed TO DATASET EnrichedTweets APPLY FUNCTION tweetSafetyCheck;
	`)

	// Ingest the same firehose twice: raw (Option 1 queries enrich
	// later) and enriched-at-ingestion (Option 2).
	records := make([][]byte, n)
	for i := range records {
		text := "calm waters"
		if i%20 == 0 {
			text = "bomb threat reported"
		}
		country := "US"
		if i%3 == 0 {
			country = "FR"
		}
		records[i] = []byte(fmt.Sprintf(`{"id":%d,"text":"%s","country":"%s"}`, i, text, country))
	}
	for _, feedName := range []string{"RawFeed", "EnrichedFeed"} {
		if err := c.SetFeedSource(feedName, func(int) (idea.FeedSource, error) {
			return &idea.RecordsSource{Records: records}, nil
		}); err != nil {
			log.Fatal(err)
		}
		feed := c.MustExecute(`START FEED ` + feedName + `;`).Feeds()[0]
		if err := feed.Wait(); err != nil {
			log.Fatal(err)
		}
	}
	ctx := context.Background()

	// Option 1: enrich during querying (Figure 9).
	lazyQ := `
		SELECT tweet.country Country, count(tweet) Num
		FROM Tweets tweet
		LET enrichedTweet = tweetSafetyCheck(tweet)[0]
		WHERE enrichedTweet.safety_check_flag = $flag
		GROUP BY tweet.country ORDER BY tweet.country`
	start := time.Now()
	lazyRows, err := runQuery(ctx, c, lazyQ, idea.Named("flag", "Red"))
	if err != nil {
		log.Fatal(err)
	}
	lazyTime := time.Since(start)

	// Option 2: the enrichment is already stored.
	eagerQ := `
		SELECT e.country Country, count(e) Num
		FROM EnrichedTweets e
		WHERE e.safety_check_flag = $flag
		GROUP BY e.country ORDER BY e.country`
	start = time.Now()
	eagerRows, err := runQuery(ctx, c, eagerQ, idea.Named("flag", "Red"))
	if err != nil {
		log.Fatal(err)
	}
	eagerTime := time.Since(start)

	fmt.Printf("red tweets by country (%d tweets):\n", n)
	for i := range lazyRows {
		fmt.Printf("  %s: lazy=%d eager=%d\n",
			lazyRows[i].Field("Country").Str(),
			lazyRows[i].Field("Num").Int(),
			eagerRows[i].Field("Num").Int())
	}
	fmt.Printf("Option 1 (enrich during query):     %v\n", lazyTime.Round(time.Microsecond))
	fmt.Printf("Option 2 (enriched at ingestion):   %v\n", eagerTime.Round(time.Microsecond))
	fmt.Printf("eager speedup: %.1fx per analytical query\n",
		lazyTime.Seconds()/eagerTime.Seconds())
}

// runQuery drains a parameterized streaming query into a slice (these
// grouped results are tiny — a handful of country rows).
func runQuery(ctx context.Context, c *idea.Cluster, q string, args ...any) ([]idea.Value, error) {
	rows, err := c.Query(ctx, q, args...)
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}
