// Quickstart: declare a schema with SQL++ DDL, attach an enrichment UDF
// to a feed, stream records through the decoupled ingestion pipeline,
// and query the enriched results — the whole paper in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/ideadb/idea"
)

func main() {
	c, err := idea.NewCluster(idea.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1 + Figure 6 of the paper: an open tweet type and the
	// stateless safety-check UDF.
	c.MustExecute(`
		CREATE TYPE TweetType AS OPEN {
			id : int64,
			text: string
		};
		CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
		CREATE FUNCTION USTweetSafetyCheck(tweet) {
			LET safety_check_flag =
				CASE tweet.country = "US" AND contains(tweet.text, "bomb")
				WHEN true THEN "Red" ELSE "Green"
				END
			SELECT tweet.*, safety_check_flag
		};
		CREATE FEED TweetFeed WITH {
			"adapter-name": "channel_adapter",
			"type-name": "TweetType"
		};
		CONNECT FEED TweetFeed TO DATASET EnrichedTweets
			APPLY FUNCTION USTweetSafetyCheck;
	`)

	// Stream a small firehose through the feed.
	var tweets [][]byte
	for i := 0; i < 1000; i++ {
		text := "let there be light"
		if i%25 == 0 {
			text = "there is a bomb"
		}
		tweets = append(tweets, []byte(fmt.Sprintf(
			`{"id":%d,"text":"%s","country":"US"}`, i, text)))
	}
	if err := c.SetFeedSource("TweetFeed", func(int) (idea.FeedSource, error) {
		return &idea.RecordsSource{Records: tweets}, nil
	}); err != nil {
		log.Fatal(err)
	}
	feed := c.MustExecute(`START FEED TweetFeed;`).Feeds()[0]
	if err := feed.Wait(); err != nil {
		log.Fatal(err)
	}
	stats, err := feed.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d enriched tweets via %d computing-job invocations\n",
		stats.Stored, stats.Invocations)

	rows, err := c.Query(context.Background(), `
		SELECT e.safety_check_flag AS flag, count(*) AS num
		FROM EnrichedTweets e
		GROUP BY e.safety_check_flag
		ORDER BY e.safety_check_flag DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for row, err := range rows.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %d\n", row.Field("flag").Str(), row.Field("num").Int())
	}
}
