module github.com/ideadb/idea

go 1.24
