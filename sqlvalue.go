package idea

import (
	"database/sql/driver"
	"fmt"
	"time"

	"github.com/ideadb/idea/internal/adm"
)

// database/sql integration for Value, so the "idea" driver (package
// github.com/ideadb/idea/driver) round-trips Values idiomatically:
// pass a Value as a query argument (driver.Valuer) and scan a result
// column into one (sql.Scanner).
//
//	var v idea.Value
//	err := db.QueryRow(`SELECT VALUE t FROM Tweets t WHERE t.id = $1`, 7).Scan(&v)
//
// Scalars map onto native driver types; objects, arrays, and the
// extended types (spatial, duration) travel as their JSON encoding, so
// a point comes back as a [x,y] array rather than a typed point — use
// the in-process API when extended-type fidelity matters.

// Value implements database/sql/driver.Valuer: scalar kinds convert to
// their native driver representation, everything else to JSON bytes.
func (v Value) Value() (driver.Value, error) {
	switch v.v.Kind() {
	case adm.KindMissing, adm.KindNull:
		return nil, nil
	case adm.KindBoolean:
		return v.v.BoolVal(), nil
	case adm.KindInt64:
		return v.v.IntVal(), nil
	case adm.KindDouble:
		return v.v.DoubleVal(), nil
	case adm.KindString:
		return v.v.StringVal(), nil
	case adm.KindDateTime:
		return v.v.Time(), nil
	default:
		return v.JSON(), nil
	}
}

// Scan implements database/sql.Scanner: the inverse of Value. []byte
// sources parse as JSON (the composite encoding above); string sources
// stay strings.
func (v *Value) Scan(src any) error {
	switch t := src.(type) {
	case nil:
		v.v = adm.Null()
	case bool:
		v.v = adm.Bool(t)
	case int64:
		v.v = adm.Int(t)
	case float64:
		v.v = adm.Double(t)
	case string:
		v.v = adm.String(t)
	case time.Time:
		v.v = adm.DateTime(t)
	case []byte:
		parsed, err := adm.ParseJSON(t)
		if err != nil {
			return fmt.Errorf("idea: Scan: bad JSON column value: %w", err)
		}
		v.v = parsed
	default:
		return fmt.Errorf("idea: Scan: cannot convert %T to a Value", src)
	}
	return nil
}
