package idea

// One benchmark per table/figure in the paper's evaluation (Section 7),
// each wrapping the corresponding experiment runner at a reduced scale so
// `go test -bench=.` finishes in minutes. For paper-shaped sweeps and
// bigger scales use `go run ./cmd/ideabench -experiment <id> -scale ...`;
// PERFORMANCE.md records measured hot-path results and compares the
// paper's findings.
//
// Scale knobs: IDEA_BENCH_SCALE and IDEA_BENCH_TWEETS environment
// variables override the defaults.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/experiments"
)

func benchOptions(b *testing.B) experiments.Options {
	b.Helper()
	tuning := cluster.DefaultTuning()
	tuning.DispatchOverheadPerNode = 20_000 // 20µs
	tuning.InvokeOverheadPerNode = 5_000    // 5µs
	opts := experiments.Options{
		Scale:  0.001,
		Tweets: 600,
		Seed:   2019,
		Tuning: &tuning,
	}
	if s := os.Getenv("IDEA_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			opts.Scale = f
		}
	}
	if s := os.Getenv("IDEA_BENCH_TWEETS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			opts.Tweets = n
		}
	}
	return opts
}

// runExperiment executes one experiment per benchmark iteration and
// reports the mean throughput of its cells as a custom metric.
func runExperiment(b *testing.B, name string, opts experiments.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Run(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", name)
		}
		if i == 0 && testing.Verbose() {
			table.Print(os.Stdout)
		}
	}
}

// BenchmarkFig24BasicIngestion — Figure 24: basic ingestion speed-up
// (static vs balanced-static vs dynamic at three batch sizes).
func BenchmarkFig24BasicIngestion(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{1, 4}
	runExperiment(b, "fig24", opts)
}

// BenchmarkFig25EnrichmentUDFs — Figure 25: Q1–Q5 enrichment throughput,
// static Java vs dynamic Java vs dynamic SQL++.
func BenchmarkFig25EnrichmentUDFs(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{3}
	runExperiment(b, "fig25", opts)
}

// BenchmarkFig26RefreshPeriods — Figure 26: computing-job refresh
// periods under the three batch sizes.
func BenchmarkFig26RefreshPeriods(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{3}
	runExperiment(b, "fig26", opts)
}

// BenchmarkFig27UpdateRates — Figure 27: throughput under reference-data
// update rates 0..400 records/second.
func BenchmarkFig27UpdateRates(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{3}
	opts.Tweets = 400
	runExperiment(b, "fig27", opts)
}

// BenchmarkFig28RefScaleOut — Figure 28: reference data scaled with the
// cluster.
func BenchmarkFig28RefScaleOut(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{2, 4}
	runExperiment(b, "fig28", opts)
}

// BenchmarkFig29Complexity — Figure 29: the four complex UDFs across
// batch sizes.
func BenchmarkFig29Complexity(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{3}
	opts.Tweets = 300
	runExperiment(b, "fig29", opts)
}

// BenchmarkFig30SpeedUp — Figure 30: speed-up of every UDF between a
// small and a large cluster at three batch sizes.
func BenchmarkFig30SpeedUp(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{2, 4}
	opts.Tweets = 300
	runExperiment(b, "fig30", opts)
}

// BenchmarkFig31ComplexScaleOut — Figure 31(a,b): complex-UDF throughput
// and speed-up over growing clusters, including Naive Nearby Monuments.
func BenchmarkFig31ComplexScaleOut(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{2, 4}
	opts.Tweets = 300
	runExperiment(b, "fig31", opts)
}

// BenchmarkAblationStaticVsDynamic — docs/ARCHITECTURE.md ablation 1: frozen vs
// per-batch-refreshed enrichment state.
func BenchmarkAblationStaticVsDynamic(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{3}
	runExperiment(b, "ablation-static", opts)
}

// BenchmarkAblationPredeployed — docs/ARCHITECTURE.md ablation 2: predeployed jobs
// vs recompile-per-batch.
func BenchmarkAblationPredeployed(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{3}
	runExperiment(b, "ablation-predeploy", opts)
}

// BenchmarkAblationDecoupled — docs/ARCHITECTURE.md ablation 3: decoupled pipeline
// vs fused insert job.
func BenchmarkAblationDecoupled(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{3}
	runExperiment(b, "ablation-decoupled", opts)
}

// BenchmarkAblationQueueCapacity — docs/ARCHITECTURE.md ablation 4: partition-
// holder queue bounds.
func BenchmarkAblationQueueCapacity(b *testing.B) {
	opts := benchOptions(b)
	opts.Nodes = []int{3}
	runExperiment(b, "ablation-queue", opts)
}

// BenchmarkFeedThroughputNoUDF measures raw end-to-end pipeline
// throughput through the public API (records/second reported as a
// custom metric).
func BenchmarkFeedThroughputNoUDF(b *testing.B) {
	const n = 20_000
	records := make([][]byte, n)
	for i := range records {
		records[i] = []byte(fmt.Sprintf(`{"id":%d,"text":"benchmark tweet with some padding text"}`, i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := NewCluster(Config{Nodes: 4})
		if err != nil {
			b.Fatal(err)
		}
		c.MustExecute(`
			CREATE TYPE T AS OPEN { id: int64 };
			CREATE DATASET D(T) PRIMARY KEY id;
			CREATE FEED F WITH { "adapter-name": "channel_adapter", "batch-size": 6720 };
			CONNECT FEED F TO DATASET D;
		`)
		if err := c.SetFeedSource("F", func(int) (FeedSource, error) {
			return &RecordsSource{Records: records}, nil
		}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		feeds := c.MustExecute(`START FEED F;`).Feeds()
		if err := feeds[0].Wait(); err != nil {
			b.Fatal(err)
		}
		total += n
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "records/s")
}
