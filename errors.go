package idea

import (
	"errors"
	"fmt"

	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/core"
	"github.com/ideadb/idea/internal/query"
)

// Sentinel errors for the public API. Wrap-aware callers use errors.Is;
// the wrapped message always carries the offending name.
var (
	// ErrUnknownDataset reports a reference to a dataset that was never
	// created (or was dropped). Aliases the query engine's sentinel so
	// lazy failures surfacing from a cursor keep their identity.
	ErrUnknownDataset = query.ErrUnknownDataset
	// ErrUnknownFunction reports a reference to a function missing from
	// the catalog.
	ErrUnknownFunction = query.ErrUnknownFunction
	// ErrUnknownFeed reports a feed handle whose feed the manager does
	// not know (never declared, or dropped).
	ErrUnknownFeed = errors.New("idea: unknown feed")
	// ErrFeedNotRunning reports an operation that needs a live pipeline
	// (Wait, Stop) on a feed that is not running.
	ErrFeedNotRunning = errors.New("idea: feed is not running")
	// ErrFeedOverloaded reports a feed whose loss-free congestion
	// handling ran out of room: the intake ring was full and the bounded
	// disk spill lane was exhausted (or failed). The feed fails rather
	// than buffer without bound. Aliases the internal sentinel so
	// errors.Is works across the whole stack, including through
	// StatementError.
	ErrFeedOverloaded = core.ErrFeedOverloaded
	// ErrPartitionDown reports an operation routed to a killed cluster
	// partition. With failover enabled (the default) the feed manager
	// restarts the pipeline on surviving nodes and resumes from the last
	// checkpoint; the error surfaces only when failover is disabled or
	// no nodes survive.
	ErrPartitionDown = cluster.ErrPartitionDown
	// ErrClusterClosed reports an operation on a cluster after Close —
	// the typed liveness failure Ping returns (and, through the wire
	// server and driver, what a remote client's Ping sees during
	// shutdown). Aliases the internal sentinel so errors.Is works
	// across the whole stack.
	ErrClusterClosed = cluster.ErrClosed
)

// StatementError locates a failure inside a multi-statement Execute
// script: which statement failed (Index, zero-based), where it starts
// in the script (Pos, byte offset), and a snippet of its text. The
// underlying cause unwraps, so errors.Is/As work through it.
type StatementError struct {
	// Index is the zero-based position of the failing statement among
	// the script's parsed statements.
	Index int
	// Pos is the byte offset of the statement's first token in the
	// script source.
	Pos int
	// Snippet is a short prefix of the failing statement's text.
	Snippet string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *StatementError) Error() string {
	return fmt.Sprintf("idea: statement %d (offset %d, %q): %v", e.Index, e.Pos, e.Snippet, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *StatementError) Unwrap() error { return e.Err }

// snippetAt extracts a short single-line fragment of src starting at
// byte offset pos (clamped), for StatementError.Snippet.
func snippetAt(src string, pos int) string {
	if pos < 0 {
		pos = 0
	}
	if pos > len(src) {
		pos = len(src)
	}
	s := src[pos:]
	const max = 48
	out := make([]byte, 0, max+3)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\r' || c == '\t' {
			c = ' '
		}
		// Collapse runs of spaces so multi-line DDL stays readable.
		if c == ' ' && len(out) > 0 && out[len(out)-1] == ' ' {
			continue
		}
		if len(out) >= max {
			return string(out) + "..."
		}
		out = append(out, c)
	}
	return string(out)
}
