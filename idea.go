// Package idea is a Go reproduction of the data-enrichment ingestion
// framework from "An IDEA: An Ingestion Framework for Data Enrichment in
// AsterixDB" (Wang & Carey, PVLDB 12(11), 2019).
//
// A Cluster simulates an N-node AsterixDB deployment: declare types,
// datasets, indexes, and UDFs with SQL++ DDL; attach UDFs to feeds; and
// ingest live data through the paper's decoupled intake / computing /
// storage pipeline, whose per-batch state refresh lets stateful
// enrichment observe reference-data updates. See README.md for a
// walkthrough and docs/ARCHITECTURE.md for the architecture and the
// frame/arena ownership model.
package idea

import (
	"context"
	"fmt"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/core"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/udf"
)

// Config sizes and tunes a simulated cluster. The zero value is usable:
// one node with default tuning.
type Config struct {
	// Nodes is the simulated cluster size (default 1).
	Nodes int
	// DispatchOverheadPerNode simulates per-node job compile-and-
	// distribute cost; InvokeOverheadPerNode the (cheaper) predeployed-
	// job invocation message. Defaults model a LAN deployment.
	DispatchOverheadPerNode time.Duration
	// InvokeOverheadPerNode — see DispatchOverheadPerNode.
	InvokeOverheadPerNode time.Duration
	// HolderCapacity bounds partition-holder queues in frames (default
	// 64).
	HolderCapacity int
	// FrameCapacity is records per frame (default 128).
	FrameCapacity int
	// WALGroupCommit is the storage-log group-commit window charged once
	// per stored frame (default 0).
	WALGroupCommit time.Duration
	// DataDir, when set, makes storage durable: every dataset keeps an
	// on-disk write-ahead log, flushed run files, and a manifest under
	// DataDir, recovered on the next boot. Empty (the default) keeps
	// storage in memory — the original simulation behaviour.
	DataDir string
	// BlockCacheBytes budgets the durable read path's block cache,
	// shared across every dataset partition. 0 selects the default
	// (64 MiB); a negative value disables caching. Only meaningful with
	// DataDir set.
	BlockCacheBytes int64
}

// Cluster is a running simulated deployment plus its feed manager.
type Cluster struct {
	inner *cluster.Cluster
	mgr   *core.Manager
	ctx   context.Context
}

// NewCluster boots a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	tuning := cluster.DefaultTuning()
	if cfg.DispatchOverheadPerNode > 0 {
		tuning.DispatchOverheadPerNode = cfg.DispatchOverheadPerNode
	}
	if cfg.InvokeOverheadPerNode > 0 {
		tuning.InvokeOverheadPerNode = cfg.InvokeOverheadPerNode
	}
	if cfg.HolderCapacity > 0 {
		tuning.HolderCapacity = cfg.HolderCapacity
	}
	if cfg.FrameCapacity > 0 {
		tuning.FrameCapacity = cfg.FrameCapacity
	}
	tuning.Storage.GroupCommit = cfg.WALGroupCommit
	tuning.DataDir = cfg.DataDir
	tuning.BlockCacheBytes = cfg.BlockCacheBytes
	inner, err := cluster.New(cfg.Nodes, tuning)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		inner: inner,
		mgr:   core.NewManager(inner),
		ctx:   context.Background(),
	}, nil
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.inner.NumNodes() }

// KillNode simulates a partition failure: every pipeline operator
// pinned to the node fails with ErrPartitionDown. Feeds started with
// failover enabled (the default) restart on the surviving nodes and
// resume from their last checkpoint. Storage is not destroyed — the
// simulation models shared storage that survivors can reach. Killing
// an already-dead or out-of-range node is a no-op.
func (c *Cluster) KillNode(node int) { c.inner.KillNode(node) }

// NodeAlive reports whether a node is still up.
func (c *Cluster) NodeAlive(node int) bool { return c.inner.NodeAlive(node) }

// FeedSource supplies raw records to a feed: Run emits one record per
// call until the source is exhausted or ctx is canceled; emit blocks for
// backpressure. It is the public face of the paper's feed adapter.
//
// Emitted bytes travel the pipeline zero-copy: the feed retains each
// slice until the record has been parsed, so Run must hand every emit
// call its own slice (or one it will never mutate again). A source that
// instead reuses a read buffer across emits must also implement
// VolatileFeedSource, and the feed will copy each emit into a pooled
// per-frame arena.
type FeedSource interface {
	Run(ctx context.Context, emit func(record []byte) error) error
}

// VolatileFeedSource marks a FeedSource whose emitted slices are valid
// only for the duration of the emit call (a recycled read buffer).
type VolatileFeedSource interface {
	FeedSource
	// VolatileEmits reports that emitted bytes must be copied before
	// the emit call returns.
	VolatileEmits() bool
}

// ResumableFeedSource is a FeedSource whose records live in a
// replayable, monotonic offset space (offsets are dense and start
// at 1). Feeds checkpoint the delivered offsets through the storage
// write-ahead log, and a restarted feed — after a crash, a clean stop,
// or partition failover — calls RunFrom with the last checkpoint so the
// source resumes where durable storage left off. Records between the
// checkpoint and the failure point are redelivered; last-wins upsert
// makes that idempotent. This is the at-least-once delivery contract.
type ResumableFeedSource interface {
	FeedSource
	RunFrom(ctx context.Context, from uint64, emit func(offset uint64, record []byte) error) error
}

// sourceAdapter bridges FeedSource to the internal adapter interface,
// forwarding the volatility declaration when the source makes one.
type sourceAdapter struct{ src FeedSource }

func (a sourceAdapter) Run(ctx context.Context, emit func([]byte) error) error {
	return a.src.Run(ctx, emit)
}

func (a sourceAdapter) VolatileEmits() bool {
	if v, ok := a.src.(VolatileFeedSource); ok {
		return v.VolatileEmits()
	}
	return false
}

// resumableSourceAdapter additionally exposes the resume contract; a
// separate type so a plain FeedSource never accidentally satisfies the
// internal ResumableAdapter interface.
type resumableSourceAdapter struct {
	sourceAdapter
	rsrc ResumableFeedSource
}

func (a resumableSourceAdapter) RunFrom(ctx context.Context, from uint64, emit func(uint64, []byte) error) error {
	return a.rsrc.RunFrom(ctx, from, emit)
}

// RecordsSource replays a fixed record slice (bulk generators, tests).
// It is resumable: record i has offset i+1.
type RecordsSource struct {
	// Records are emitted in order.
	Records [][]byte
}

// Run implements FeedSource.
func (s *RecordsSource) Run(ctx context.Context, emit func([]byte) error) error {
	return (&core.GeneratorAdapter{Records: s.Records}).Run(ctx, emit)
}

// RunFrom implements ResumableFeedSource.
func (s *RecordsSource) RunFrom(ctx context.Context, from uint64, emit func(uint64, []byte) error) error {
	return (&core.GeneratorAdapter{Records: s.Records}).RunFrom(ctx, from, emit)
}

// ChannelSource emits records pushed into C; close the channel to end
// the feed gracefully.
type ChannelSource struct {
	// C supplies the records.
	C <-chan []byte
}

// Run implements FeedSource.
func (s *ChannelSource) Run(ctx context.Context, emit func([]byte) error) error {
	return (&core.ChannelAdapter{C: s.C}).Run(ctx, emit)
}

// SetFeedSource installs the source factory for a declared feed whose
// adapter is "channel_adapter" (socket feeds configure themselves from
// the DDL). The factory is invoked once per intake node.
func (c *Cluster) SetFeedSource(feed string, factory func(node int) (FeedSource, error)) error {
	return c.mgr.SetAdapterFactory(feed, func(i int) (core.Adapter, error) {
		src, err := factory(i)
		if err != nil {
			return nil, err
		}
		if rsrc, ok := src.(ResumableFeedSource); ok {
			return resumableSourceAdapter{sourceAdapter{src}, rsrc}, nil
		}
		return sourceAdapter{src}, nil
	})
}

// NativeUDF is the compiled-code UDF contract (the paper's Java UDF):
// Initialize loads resources and builds state; Evaluate enriches one
// record. On the dynamic pipeline a fresh instance is initialized per
// batch, so updated resources are observed; see RegisterNativeUDF.
type NativeUDF interface {
	Initialize(node int) error
	Evaluate(record Value) (Value, error)
}

type nativeShim struct{ impl NativeUDF }

func (s nativeShim) Initialize(node int) error { return s.impl.Initialize(node) }
func (s nativeShim) Evaluate(rec adm.Value) (adm.Value, error) {
	out, err := s.impl.Evaluate(Value{rec})
	if err != nil {
		return adm.Value{}, err
	}
	return out.v, nil
}

// RegisterNativeUDF registers a compiled UDF usable in CONNECT FEED ...
// APPLY FUNCTION. stateful declares that Initialize builds state that
// must be refreshed to observe updates.
func (c *Cluster) RegisterNativeUDF(name string, stateful bool, newInstance func() NativeUDF) error {
	return c.mgr.Natives.Register(&udf.Native{
		Name:     name,
		Stateful: stateful,
		New: func() udf.Instance {
			return nativeShim{impl: newInstance()}
		},
	})
}

// PutResource installs (or replaces) a named resource "file" that native
// UDFs read in Initialize — the paper's node-local resource files.
func (c *Cluster) PutResource(name string, data []byte) {
	c.mgr.Resources.Put(name, data)
}

// Resource reads a resource file's current content as lines.
func (c *Cluster) Resource(name string) ([]string, bool) {
	return c.mgr.Resources.Lines(name)
}

// RegisterLibraryFunction registers a namespaced scalar function callable
// from SQL++ as ns#name(args...) — the Figure 35 pattern.
func (c *Cluster) RegisterLibraryFunction(ns, name string, fn func(args []Value) (Value, error)) {
	c.inner.RegisterNative(ns, name, func(args []adm.Value) (adm.Value, error) {
		wrapped := make([]Value, len(args))
		for i, a := range args {
			wrapped[i] = Value{a}
		}
		out, err := fn(wrapped)
		if err != nil {
			return adm.Value{}, err
		}
		return out.v, nil
	})
}

// Feed is a handle on a running feed pipeline.
type Feed struct {
	name string
	c    *Cluster
}

// Name returns the feed's declared name — the identity that STOP FEED
// and the wire protocol's result summaries use (handles don't cross
// the network; names do).
func (f *Feed) Name() string { return f.name }

// Stop gracefully stops the feed and waits for in-flight data to drain
// to storage.
func (f *Feed) Stop() error { return f.c.mgr.StopFeed(f.name) }

// Wait blocks until the feed's source is exhausted and everything is
// stored (generator-style sources). Socket/channel feeds need Stop (or a
// closed channel) to terminate.
func (f *Feed) Wait() error {
	inner, ok := f.c.mgr.Feed(f.name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrFeedNotRunning, f.name)
	}
	return inner.Wait()
}

// FeedStats is a snapshot of a feed pipeline's counters.
type FeedStats struct {
	// Ingested counts records consumed by computing jobs.
	Ingested int64
	// Stored counts records written to storage partitions.
	Stored int64
	// ParseErrors counts malformed records dropped at parse.
	ParseErrors int64
	// Invocations counts computing-job invocations.
	Invocations int64
	// MeanRefresh is the mean computing-job duration — the paper's
	// refresh-period metric (Figure 26).
	MeanRefresh time.Duration
	// Running reports whether the pipeline is still live; false means
	// the counters are the feed's final numbers.
	Running bool

	// BufferedFrames is the number of frames currently queued in intake
	// rings (a gauge; zero once the feed has drained).
	BufferedFrames int
	// SpillBacklog is the number of frames currently parked in the
	// on-disk spill lane awaiting re-admission (a gauge).
	SpillBacklog int
	// SpilledFrames / SpilledRecords count frames diverted through the
	// disk spill lane under the "spill" congestion policy. Spilled data
	// is not lost — it re-enters the pipeline in FIFO order.
	SpilledFrames  int64
	SpilledRecords int64
	// ShedFrames / ShedRecords count data deliberately dropped under the
	// "shed" congestion policy (exact counts).
	ShedFrames  int64
	ShedRecords int64
	// SampledFrames / SampledRecords count data deliberately dropped
	// under the "sample" congestion policy (exact counts; the kept
	// fraction approximates the configured rate).
	SampledFrames  int64
	SampledRecords int64
	// LastCheckpoint is the highest source offset acknowledged durable
	// across the feed's adapter slots; a resumed feed replays from here.
	LastCheckpoint uint64
	// Resumptions counts automatic pipeline restarts after partition
	// failover.
	Resumptions int64
}

// Stats reports the feed's counters. A running feed reports live
// numbers; a stopped feed reports its final numbers (Running false).
// The error is non-nil — wrapping ErrUnknownFeed or ErrFeedNotRunning —
// when the manager has nothing to report: the feed was never declared,
// or was declared but never started.
func (f *Feed) Stats() (FeedStats, error) {
	inner, running, known := f.c.mgr.Lookup(f.name)
	if !known {
		return FeedStats{}, fmt.Errorf("%w: %q", ErrUnknownFeed, f.name)
	}
	if inner == nil {
		return FeedStats{}, fmt.Errorf("%w: %q never started", ErrFeedNotRunning, f.name)
	}
	s := inner.Stats()
	out := FeedStats{
		Ingested:       s.Ingested.Load(),
		Stored:         s.Stored.Load(),
		ParseErrors:    s.ParseErrors.Load(),
		Invocations:    s.Invocations.Load(),
		MeanRefresh:    s.RefreshPeriod(),
		Running:        running,
		SpilledFrames:  s.SpilledFrames.Load(),
		SpilledRecords: s.SpilledRecords.Load(),
		ShedFrames:     s.ShedFrames.Load(),
		ShedRecords:    s.ShedRecords.Load(),
		SampledFrames:  s.SampledFrames.Load(),
		SampledRecords: s.SampledRecords.Load(),
		LastCheckpoint: s.LastCheckpoint.Load(),
		Resumptions:    s.Resumptions.Load(),
	}
	if running {
		out.BufferedFrames = inner.Buffered()
		out.SpillBacklog = inner.SpillBacklog()
	}
	return out, nil
}

// StorageStats is a point-in-time snapshot of the durable read path:
// the shared block cache plus the fence/bloom/block-read counters
// summed over every dataset. All zero for in-memory clusters.
type StorageStats struct {
	// Block cache counters (zero when caching is disabled).
	BlockCacheHits      uint64
	BlockCacheMisses    uint64
	BlockCacheEvictions uint64
	BlockCacheEntries   int
	BlockCachePinned    int
	BlockCacheBytes     int64
	// FenceSkips counts point lookups rejected by a run's key-range
	// fences; BloomSkips those rejected by its bloom filter — both
	// without touching a block. BlockReads counts framed block reads
	// that reached the filesystem.
	FenceSkips uint64
	BloomSkips uint64
	BlockReads uint64
	// OpenRunFiles gauges the open on-disk run files (including retired
	// ones kept alive by snapshots or cursors).
	OpenRunFiles int
}

// StorageStats reports the cluster's durable read-path counters.
func (c *Cluster) StorageStats() StorageStats {
	s := c.inner.StorageStats()
	return StorageStats{
		BlockCacheHits:      s.BlockCacheHits,
		BlockCacheMisses:    s.BlockCacheMisses,
		BlockCacheEvictions: s.BlockCacheEvictions,
		BlockCacheEntries:   s.BlockCacheEntries,
		BlockCachePinned:    s.BlockCachePinned,
		BlockCacheBytes:     s.BlockCacheBytes,
		FenceSkips:          s.FenceSkips,
		BloomSkips:          s.BloomSkips,
		BlockReads:          s.BlockReads,
		OpenRunFiles:        s.OpenRunFiles,
	}
}

// DatasetLen returns the number of live records in a dataset.
func (c *Cluster) DatasetLen(name string) (int, error) {
	ds, ok := c.inner.Dataset(name)
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownDataset, name)
	}
	return ds.Len(), nil
}

// Get fetches one record by primary key.
func (c *Cluster) Get(dataset string, pk Value) (Value, bool, error) {
	ds, ok := c.inner.Dataset(dataset)
	if !ok {
		return Value{}, false, fmt.Errorf("%w %q", ErrUnknownDataset, dataset)
	}
	rec, found := ds.Get(pk.v)
	return Value{rec}, found, nil
}

// CallFunction invokes a catalog UDF directly (handy for testing
// enrichment logic outside a pipeline). The result is the function's
// value — for the paper-style UDFs, a one-element collection.
func (c *Cluster) CallFunction(name string, args ...Value) (Value, error) {
	fn, ok := c.inner.Function(name)
	if !ok {
		return Value{}, fmt.Errorf("%w %q", ErrUnknownFunction, name)
	}
	converted := make([]adm.Value, len(args))
	for i, a := range args {
		converted[i] = a.v
	}
	out, err := query.Call(c.inner, fn, converted)
	if err != nil {
		return Value{}, err
	}
	return Value{out}, nil
}
