package driver

import (
	"fmt"
	"time"

	"github.com/ideadb/idea/internal/adm"
)

// toDriverValue converts an engine value to what database/sql hands
// the scanner: scalars as native Go types, composites (objects,
// arrays, spatial/temporal extras) as their JSON bytes. Scanning a
// column into an idea.Value reverses this losslessly for scalars and
// structurally for composites.
func toDriverValue(v adm.Value) (any, error) {
	switch v.Kind() {
	case adm.KindMissing, adm.KindNull:
		return nil, nil
	case adm.KindBoolean:
		return v.BoolVal(), nil
	case adm.KindInt64:
		return v.IntVal(), nil
	case adm.KindDouble:
		return v.DoubleVal(), nil
	case adm.KindString:
		return v.StringVal(), nil
	case adm.KindDateTime:
		return v.Time(), nil
	default:
		return adm.SerializeJSON(v), nil
	}
}

// fromDriverValue converts a database/sql binding to an engine value.
// []byte is treated as JSON — the symmetric inverse of toDriverValue,
// so composite values round-trip through parameters.
func fromDriverValue(x any) (adm.Value, error) {
	switch t := x.(type) {
	case nil:
		return adm.Null(), nil
	case bool:
		return adm.Bool(t), nil
	case int64:
		return adm.Int(t), nil
	case float64:
		return adm.Double(t), nil
	case string:
		return adm.String(t), nil
	case time.Time:
		return adm.DateTime(t), nil
	case []byte:
		v, err := adm.ParseJSON(t)
		if err != nil {
			return adm.Value{}, fmt.Errorf("[]byte argument is not valid JSON: %w", err)
		}
		return v, nil
	default:
		return adm.Value{}, fmt.Errorf("unsupported argument type %T", x)
	}
}
