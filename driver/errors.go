package driver

import (
	"context"
	"fmt"

	"github.com/ideadb/idea"
	"github.com/ideadb/idea/internal/wire"
)

// Error is a typed error frame from the server. Unwrap maps the wire
// code back onto the public sentinels, so error identity survives the
// network hop:
//
//	_, err := db.QueryContext(ctx, `SELECT VALUE t FROM Nope t`)
//	errors.Is(err, idea.ErrUnknownDataset) // true
type Error struct {
	// Code is the machine-readable wire code ("unknown_dataset",
	// "auth", ...).
	Code string
	// Message is the server's human-readable description.
	Message string
	// HasStmt reports whether the failure came from a specific
	// statement inside a script; StmtIndex/StmtPos/StmtSnippet locate
	// it.
	HasStmt     bool
	StmtIndex   int
	StmtPos     int
	StmtSnippet string
}

// Error implements error.
func (e *Error) Error() string {
	if e.HasStmt {
		return fmt.Sprintf("idea: server error [%s]: %s (statement %d at offset %d: %q)",
			e.Code, e.Message, e.StmtIndex, e.StmtPos, e.StmtSnippet)
	}
	return fmt.Sprintf("idea: server error [%s]: %s", e.Code, e.Message)
}

// Unwrap yields the public sentinel for the wire code (nil for codes
// with no sentinel), so errors.Is works across the wire.
func (e *Error) Unwrap() error { return sentinelFor(e.Code) }

func sentinelFor(code string) error {
	switch code {
	case wire.CodeUnknownDataset:
		return idea.ErrUnknownDataset
	case wire.CodeUnknownFunction:
		return idea.ErrUnknownFunction
	case wire.CodeUnknownFeed:
		return idea.ErrUnknownFeed
	case wire.CodeFeedNotRunning:
		return idea.ErrFeedNotRunning
	case wire.CodeFeedOverloaded:
		return idea.ErrFeedOverloaded
	case wire.CodePartitionDown:
		return idea.ErrPartitionDown
	case wire.CodeClosed:
		return idea.ErrClusterClosed
	case wire.CodeCanceled:
		return context.Canceled
	default:
		return nil
	}
}

func wireError(msg wire.ErrorMsg) error {
	return &Error{
		Code:        msg.Code,
		Message:     msg.Message,
		HasStmt:     msg.HasStmt,
		StmtIndex:   msg.Index,
		StmtPos:     msg.Pos,
		StmtSnippet: msg.Snippet,
	}
}
