package driver

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ideadb/idea"
	"github.com/ideadb/idea/internal/server"
)

const testSchema = `
CREATE TYPE T AS OPEN { id: int64 };
CREATE DATASET D(T) PRIMARY KEY id;
`

func insertScript(dataset string, lo, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s ([", dataset)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id": %d}`, lo+i)
	}
	b.WriteString("]);")
	return b.String()
}

// startServer boots a cluster + wire server on loopback TCP.
func startServer(t testing.TB, scfg server.Config) (*server.Server, string) {
	t.Helper()
	c, err := idea.NewCluster(idea.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(c, scfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		c.Close()
	})
	return srv, l.Addr().String()
}

func openDB(t testing.TB, dsn string, opts ...Option) *sql.DB {
	t.Helper()
	conn, err := NewConnector(dsn, opts...)
	if err != nil {
		t.Fatal(err)
	}
	db := sql.OpenDB(conn)
	t.Cleanup(func() { db.Close() })
	return db
}

// pipeDB returns a database/sql pool whose connections are net.Pipe
// pairs served in-process — the driver and server exercise the full
// protocol without a socket.
func pipeDB(t testing.TB) (*server.Server, *sql.DB) {
	t.Helper()
	c, err := idea.NewCluster(idea.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(c, server.Config{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		c.Close()
	})
	db := openDB(t, "pipe", WithDialer(func(ctx context.Context) (net.Conn, error) {
		client, srvEnd := net.Pipe()
		go srv.ServeConn(srvEnd)
		return client, nil
	}))
	return srv, db
}

func TestParseDSN(t *testing.T) {
	good := map[string]string{
		"127.0.0.1:7654":              "127.0.0.1:7654",
		"idea://127.0.0.1:7654":       "127.0.0.1:7654",
		"tok@host:1?tls=true":         "host:1",
		"idea://host:1?token=t&tls=1": "host:1",
		"host:1?tls-skip-verify=true": "host:1",
	}
	for dsn, addr := range good {
		c, err := NewConnector(dsn)
		if err != nil {
			t.Fatalf("%q: %v", dsn, err)
		}
		if c.addr != addr {
			t.Fatalf("%q: addr = %q, want %q", dsn, c.addr, addr)
		}
	}
	if c, _ := NewConnector("tok@host:1"); c == nil || c.token != "tok" {
		t.Fatal("userinfo token not parsed")
	}
	for _, dsn := range []string{
		"http://host:1",
		"idea://host:1/path",
		"host:1?bogus=1",
		"host:1?tls=maybe",
		"idea://",
	} {
		if _, err := NewConnector(dsn); err == nil {
			t.Fatalf("%q: accepted", dsn)
		}
	}
}

// TestPipeDriver runs the full driver surface over net.Pipe.
func TestPipeDriver(t *testing.T) {
	srv, db := pipeDB(t)
	ctx := context.Background()

	if err := db.PingContext(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	res, err := db.ExecContext(ctx, testSchema+insertScript("D", 0, 30))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 30 {
		t.Fatalf("RowsAffected = %d, want 30", n)
	}

	// Positional $1 binding, streamed rows.
	rows, err := db.QueryContext(ctx, `SELECT VALUE d.id FROM D d WHERE d.id >= $1`, int64(25))
	if err != nil {
		t.Fatal(err)
	}
	cols, err := rows.Columns()
	if err != nil || len(cols) != 1 || cols[0] != "value" {
		t.Fatalf("columns = %v, %v", cols, err)
	}
	got := map[int64]bool{}
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		got[id] = true
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || !got[29] {
		t.Fatalf("rows = %v", got)
	}

	// Named binding via sql.Named.
	var one int64
	err = db.QueryRowContext(ctx, `SELECT VALUE d.id FROM D d WHERE d.id = $want`, sql.Named("want", int64(7))).Scan(&one)
	if err != nil || one != 7 {
		t.Fatalf("named arg: %d, %v", one, err)
	}

	// Objects scan into idea.Value through the JSON column encoding.
	var v idea.Value
	err = db.QueryRowContext(ctx, `SELECT VALUE d FROM D d WHERE d.id = $1`, int64(3)).Scan(&v)
	if err != nil {
		t.Fatal(err)
	}
	if v.Field("id").Int() != 3 {
		t.Fatalf("object row = %v", v)
	}

	// Prepared statements re-ship text per execution.
	stmt, err := db.PrepareContext(ctx, `SELECT VALUE d.id FROM D d WHERE d.id = $1`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for _, want := range []int64{2, 12, 22} {
		var id int64
		if err := stmt.QueryRowContext(ctx, want).Scan(&id); err != nil || id != want {
			t.Fatalf("stmt(%d): %d, %v", want, id, err)
		}
	}

	// Transactions are refused.
	if _, err := db.BeginTx(ctx, nil); err == nil {
		t.Fatal("BeginTx succeeded")
	}

	// Sentinel identity survives the wire.
	rows, err = db.QueryContext(ctx, `SELECT VALUE x FROM Nope x`)
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if !errors.Is(err, idea.ErrUnknownDataset) {
		t.Fatalf("err = %v, want idea.ErrUnknownDataset", err)
	}
	var de *Error
	if !errors.As(err, &de) || de.Code != "unknown_dataset" {
		t.Fatalf("err = %#v", err)
	}

	// The STATS admin verb through a raw pool connection.
	sc, err := db.Conn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	stats, err := ServerStats(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Field("server").Str() != "ideaserver" || stats.Field("queries").Int() < 1 {
		t.Fatalf("stats = %v", stats)
	}
	if got := srv.Stats().OpenCursors; got != 0 {
		t.Fatalf("OpenCursors = %d", got)
	}
}

// TestTCPDriver covers the acceptance path end to end over a real
// socket: DDL + INSERT, a streamed SELECT with positional params.
func TestTCPDriver(t *testing.T) {
	_, addr := startServer(t, server.Config{BatchRows: 4})
	db := openDB(t, addr)
	ctx := context.Background()

	if _, err := db.ExecContext(ctx, testSchema+insertScript("D", 0, 100)); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryContext(ctx, `SELECT VALUE d.id FROM D d WHERE d.id < $1`, int64(50))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		if id >= 50 {
			t.Fatalf("row %d escaped the predicate", id)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("streamed %d rows, want 50", n)
	}
}

// TestEarlyRowsClose abandons a stream after one row; the server-side
// cursor must unwind (no leaked partition scans) and the pooled
// connection must stay usable.
func TestEarlyRowsClose(t *testing.T) {
	srv, addr := startServer(t, server.Config{BatchRows: 2})
	db := openDB(t, addr)
	db.SetMaxOpenConns(1)
	ctx := context.Background()

	if _, err := db.ExecContext(ctx, testSchema+insertScript("D", 0, 500)); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryContext(ctx, `SELECT VALUE d FROM D d`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// The same (only) connection serves the next query — the session
	// survived the early close.
	var total int64
	if err := db.QueryRowContext(ctx, `SELECT VALUE d.id FROM D d WHERE d.id = $1`, int64(499)).Scan(&total); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().OpenCursors != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cursor leaked: OpenCursors = %d", srv.Stats().OpenCursors)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestContextCancelMidStream cancels the query context while rows are
// streaming: iteration fails, the poisoned connection leaves the pool,
// and the server unwinds its cursor.
func TestContextCancelMidStream(t *testing.T) {
	srv, addr := startServer(t, server.Config{BatchRows: 2})
	db := openDB(t, addr)
	bg := context.Background()

	// Rows are padded so the stream dwarfs the client's read buffer:
	// iteration must go back to the (now severed) transport rather than
	// finish off buffered frames.
	var pad strings.Builder
	pad.WriteString("INSERT INTO D ([")
	for i := 0; i < 3000; i++ {
		if i > 0 {
			pad.WriteByte(',')
		}
		fmt.Fprintf(&pad, `{"id": %d, "pad": "%0200d"}`, i, i)
	}
	pad.WriteString("]);")
	if _, err := db.ExecContext(bg, testSchema+pad.String()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	rows, err := db.QueryContext(ctx, `SELECT VALUE d FROM D d`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	// Let the cancellation guard sever the transport: whatever the
	// client buffered may still decode, but the stream is far larger
	// than those buffers, so iteration must hit the cut.
	time.Sleep(200 * time.Millisecond)
	for rows.Next() {
	}
	if rows.Err() == nil {
		t.Fatal("iteration survived cancellation")
	}
	rows.Close()
	if err := db.PingContext(bg); err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().OpenCursors != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cursor leaked: OpenCursors = %d", srv.Stats().OpenCursors)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolHammer is the issue's -race scenario: N pooled connections
// run mixed Query/Execute traffic concurrently, results must never
// bleed across sessions, and shutdown with streams in flight stays
// clean.
func TestPoolHammer(t *testing.T) {
	srv, addr := startServer(t, server.Config{BatchRows: 8})
	db := openDB(t, addr)
	db.SetMaxOpenConns(8)
	ctx := context.Background()

	const workers = 8
	// Each worker owns a dataset; any cross-session bleed shows up as a
	// foreign id in its result set.
	var ddl strings.Builder
	ddl.WriteString("CREATE TYPE HT AS OPEN { id: int64 };\n")
	for g := 0; g < workers; g++ {
		fmt.Fprintf(&ddl, "CREATE DATASET H%d(HT) PRIMARY KEY id;\n", g)
	}
	if _, err := db.ExecContext(ctx, ddl.String()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ds := fmt.Sprintf("H%d", g)
			base := int64(g * 1_000_000)
			for i := 0; i < 25; i++ {
				res, err := db.ExecContext(ctx, insertScript(ds, int(base)+i*10, 10))
				if err != nil {
					errCh <- fmt.Errorf("worker %d exec %d: %w", g, i, err)
					return
				}
				if n, _ := res.RowsAffected(); n != 10 {
					errCh <- fmt.Errorf("worker %d exec %d acked %d rows", g, i, n)
					return
				}
				rows, err := db.QueryContext(ctx,
					fmt.Sprintf(`SELECT VALUE d.id FROM %s d WHERE d.id >= $1`, ds), base+int64(i*10))
				if err != nil {
					errCh <- fmt.Errorf("worker %d query %d: %w", g, i, err)
					return
				}
				seen := 0
				for rows.Next() {
					var id int64
					if err := rows.Scan(&id); err != nil {
						errCh <- err
						return
					}
					if id < base || id >= base+1_000_000 {
						errCh <- fmt.Errorf("worker %d saw foreign row %d (cross-session bleed)", g, id)
						return
					}
					seen++
				}
				if err := rows.Err(); err != nil {
					errCh <- fmt.Errorf("worker %d rows %d: %w", g, i, err)
					return
				}
				if seen != 10 {
					errCh <- fmt.Errorf("worker %d query %d saw %d rows, want 10", g, i, seen)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Leave streams in flight, then shut down: the drain must complete
	// without wedging and without leaking cursors.
	var open []*sql.Rows
	for g := 0; g < 3; g++ {
		rows, err := db.QueryContext(ctx, fmt.Sprintf(`SELECT VALUE d FROM H%d d`, g))
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("in-flight stream %d empty: %v", g, rows.Err())
		}
		open = append(open, rows)
	}
	done := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()
	// Drain keeps in-flight streams alive; finish them.
	for _, rows := range open {
		for rows.Next() {
		}
		rows.Close()
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := srv.Stats().OpenCursors; got != 0 {
		t.Fatalf("OpenCursors = %d after shutdown", got)
	}
}

// TestE2E runs the driver against an externally booted ideaserver (the
// CI e2e-server job): set IDEA_E2E_ADDR to its host:port.
func TestE2E(t *testing.T) {
	addr := os.Getenv("IDEA_E2E_ADDR")
	if addr == "" {
		t.Skip("IDEA_E2E_ADDR not set; run via the e2e-server CI step")
	}
	db, err := sql.Open("idea", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	if err := db.PingContext(ctx); err != nil {
		t.Fatalf("ping %s: %v", addr, err)
	}
	// Unique names: the external server outlives the test binary.
	ds := fmt.Sprintf("E2E%d", time.Now().UnixNano())
	script := fmt.Sprintf("CREATE TYPE %sT AS OPEN { id: int64 };\nCREATE DATASET %s(%sT) PRIMARY KEY id;\n", ds, ds, ds)
	if _, err := db.ExecContext(ctx, script+insertScript(ds, 0, 20)); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryContext(ctx, fmt.Sprintf(`SELECT VALUE d.id FROM %s d WHERE d.id >= $1`, ds), int64(10))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("e2e streamed %d rows, want 10", n)
	}
}

// BenchmarkWireQueryStream measures rows/s through the whole stack:
// database/sql -> wire -> server -> engine cursor and back.
func BenchmarkWireQueryStream(b *testing.B) {
	_, addr := startServer(b, server.Config{})
	db := openDB(b, addr)
	db.SetMaxOpenConns(1)
	ctx := context.Background()

	const rowsPerQuery = 2000
	if _, err := db.ExecContext(ctx, testSchema+insertScript("D", 0, rowsPerQuery)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		rows, err := db.QueryContext(ctx, `SELECT VALUE d.id FROM D d`)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for rows.Next() {
			var id int64
			if err := rows.Scan(&id); err != nil {
				b.Fatal(err)
			}
			n++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		rows.Close()
		if n != rowsPerQuery {
			b.Fatalf("streamed %d rows", n)
		}
		total += n
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "rows/s")
}
