// Package driver is the database/sql driver for idea: it registers as
// "idea" and speaks the ideaserver wire protocol (internal/wire), so
// any Go application can use a remote idea cluster through the
// standard library:
//
//	import (
//		"database/sql"
//
//		_ "github.com/ideadb/idea/driver"
//	)
//
//	db, err := sql.Open("idea", "idea://127.0.0.1:7654")
//	...
//	rows, err := db.QueryContext(ctx,
//		`SELECT VALUE t.text FROM Tweets t WHERE t.score > $1 LIMIT 10`, 5)
//
// DSN grammar:
//
//	[idea://][token@]host:port[?token=T][&tls=true][&tls-skip-verify=true]
//
// Statements follow the engine's split surface: SELECTs go through
// Query*, everything else (DDL, INSERT/UPSERT, feed control) through
// Exec*. Positional arguments bind $1, $2, ...; sql.Named("min", v)
// binds $min. Result sets have one column, "value", holding each row's
// value: scalars arrive as native Go types, objects and arrays as
// their JSON encoding ([]byte) — scan into an idea.Value to get typed
// access back. Rows stream: the driver decodes row batches as the
// server flushes them and never buffers the full result, and closing
// sql.Rows early tears down the server-side cursor.
//
// Transactions are not supported (the engine's unit of atomicity is
// the statement); Begin returns an error.
package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
)

// Driver implements database/sql/driver.Driver for the "idea" scheme.
type Driver struct{}

func init() {
	sql.Register("idea", Driver{})
}

// Open dials dsn and performs the wire handshake.
func (d Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := NewConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses dsn once; database/sql dials through the
// resulting Connector.
func (d Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	return NewConnector(dsn)
}
