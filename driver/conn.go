package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync/atomic"

	"github.com/ideadb/idea"
	"github.com/ideadb/idea/internal/bridge"
	"github.com/ideadb/idea/internal/wire"
)

// conn is one wire session. database/sql serializes use of a Conn, so
// the request/response exchanges here never interleave; the only
// cross-goroutine touches are the ctx guard (which closes the
// transport) and the bad flag.
type conn struct {
	nc  net.Conn
	wc  *wire.Conn
	bad atomic.Bool
}

var errTxUnsupported = errors.New("idea: transactions are not supported (statements are the unit of atomicity)")

// guard watches ctx for the duration of one exchange: on cancellation
// it closes the transport, which fails the blocked read or write
// immediately and poisons the connection (the pool discards it via
// IsValid). The returned release stops the watch.
func (c *conn) guard(ctx context.Context) (release func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			c.bad.Store(true)
			c.nc.Close()
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

func (c *conn) broken(err error) error {
	c.bad.Store(true)
	return err
}

// readReply reads one response frame, translating Error frames into
// *Error values (which keep the session usable) and transport failures
// into a poisoned connection.
func (c *conn) readReply() (wire.Type, []byte, error) {
	t, body, err := c.wc.ReadFrame(wire.MaxFrame)
	if err != nil {
		return 0, nil, c.broken(err)
	}
	return t, body, nil
}

func (c *conn) request(t wire.Type, body []byte) error {
	if c.bad.Load() {
		return driver.ErrBadConn
	}
	if err := c.wc.WriteFrame(t, body); err != nil {
		return c.broken(err)
	}
	if err := c.wc.Flush(); err != nil {
		return c.broken(err)
	}
	return nil
}

// Prepare implements driver.Conn. Statements are client-side: the text
// travels with every execution, parameter count is unknown until the
// server parses it (NumInput -1).
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{c: c, text: query}, nil
}

// Close implements driver.Conn.
func (c *conn) Close() error { return c.nc.Close() }

// Begin implements driver.Conn; the engine has no transactions.
func (c *conn) Begin() (driver.Tx, error) { return nil, errTxUnsupported }

// IsValid implements driver.Validator: a connection whose transport
// was poisoned (ctx cancel, protocol error) is dropped from the pool.
func (c *conn) IsValid() bool { return !c.bad.Load() }

// ResetSession implements driver.SessionResetter.
func (c *conn) ResetSession(ctx context.Context) error {
	if c.bad.Load() {
		return driver.ErrBadConn
	}
	return nil
}

// Ping implements driver.Pinger: a wire round trip answered by
// idea.Cluster.Ping on the server. A closed cluster reports
// idea.ErrClusterClosed through the typed error frame.
func (c *conn) Ping(ctx context.Context) error {
	release := c.guard(ctx)
	defer release()
	if err := c.request(wire.TypePing, nil); err != nil {
		return err
	}
	t, body, err := c.readReply()
	if err != nil {
		return err
	}
	switch t {
	case wire.TypePong:
		return nil
	case wire.TypeError:
		return c.parseErrorFrame(body)
	default:
		return c.broken(fmt.Errorf("idea driver: unexpected %v frame to Ping", t))
	}
}

// QueryContext implements driver.QueryerContext: it ships the SELECT
// and its bindings, reads the result-set header, and hands back a
// streaming driver.Rows — batches are decoded as the server flushes
// them, nothing is buffered ahead.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	params, err := wireParams(args)
	if err != nil {
		return nil, err
	}
	release := c.guard(ctx)
	body := wire.AppendRequest(nil, wire.Request{Text: query, Params: params})
	if err := c.request(wire.TypeQuery, body); err != nil {
		release()
		return nil, err
	}
	t, reply, err := c.readReply()
	if err != nil {
		release()
		return nil, err
	}
	switch t {
	case wire.TypeHeader:
		h, perr := wire.ParseHeader(reply)
		if perr != nil {
			release()
			return nil, c.broken(perr)
		}
		// The guard stays armed for the whole stream: database/sql
		// closes Rows when ctx is canceled, but a Next blocked on a
		// stalled server needs the transport cut to wake up.
		return &rows{c: c, cols: h.Columns, release: release}, nil
	case wire.TypeError:
		release()
		return nil, c.parseErrorFrame(reply)
	default:
		release()
		return nil, c.broken(fmt.Errorf("idea driver: unexpected %v frame to Query", t))
	}
}

// ExecContext implements driver.ExecerContext: DDL, DML, and feed
// control scripts. RowsAffected totals the script's DML counts.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	params, err := wireParams(args)
	if err != nil {
		return nil, err
	}
	release := c.guard(ctx)
	defer release()
	body := wire.AppendRequest(nil, wire.Request{Text: query, Params: params})
	if err := c.request(wire.TypeExecute, body); err != nil {
		return nil, err
	}
	t, reply, err := c.readReply()
	if err != nil {
		return nil, err
	}
	switch t {
	case wire.TypeExecResult:
		results, perr := wire.ParseExecResults(reply)
		if perr != nil {
			return nil, c.broken(perr)
		}
		total := int64(0)
		for _, r := range results {
			total += int64(r.RowsAffected)
		}
		return execResult{rows: total}, nil
	case wire.TypeError:
		return nil, c.parseErrorFrame(reply)
	default:
		return nil, c.broken(fmt.Errorf("idea driver: unexpected %v frame to Exec", t))
	}
}

// serverStats runs the STATS admin verb (see ServerStats).
func (c *conn) serverStats(ctx context.Context) (idea.Value, error) {
	release := c.guard(ctx)
	defer release()
	if err := c.request(wire.TypeStats, nil); err != nil {
		return idea.Value{}, err
	}
	t, reply, err := c.readReply()
	if err != nil {
		return idea.Value{}, err
	}
	switch t {
	case wire.TypeStatsReply:
		v, perr := wire.ParseValue(reply)
		if perr != nil {
			return idea.Value{}, c.broken(perr)
		}
		return bridge.WrapValue(v).(idea.Value), nil
	case wire.TypeError:
		return idea.Value{}, c.parseErrorFrame(reply)
	default:
		return idea.Value{}, c.broken(fmt.Errorf("idea driver: unexpected %v frame to Stats", t))
	}
}

func (c *conn) parseErrorFrame(body []byte) error {
	msg, perr := wire.ParseError(body)
	if perr != nil {
		return c.broken(perr)
	}
	return wireError(msg)
}

// ServerStats fetches the server's admin counters (the STATS verb)
// over an open pool connection:
//
//	sc, _ := db.Conn(ctx)
//	stats, err := driver.ServerStats(ctx, sc)
//	fmt.Println(stats.Field("rows_sent").Int())
func ServerStats(ctx context.Context, sc *sql.Conn) (idea.Value, error) {
	var out idea.Value
	err := sc.Raw(func(dc any) error {
		c, ok := dc.(*conn)
		if !ok {
			return fmt.Errorf("idea driver: ServerStats on a non-idea connection (%T)", dc)
		}
		v, err := c.serverStats(ctx)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	return out, err
}

// wireParams converts database/sql bindings to wire parameters:
// sql.Named names bind $name, positional ordinals bind $1, $2, ....
func wireParams(args []driver.NamedValue) ([]wire.Param, error) {
	if len(args) == 0 {
		return nil, nil
	}
	params := make([]wire.Param, 0, len(args))
	for _, a := range args {
		name := a.Name
		if name == "" {
			name = strconv.Itoa(a.Ordinal)
		}
		v, err := fromDriverValue(a.Value)
		if err != nil {
			return nil, fmt.Errorf("idea driver: argument $%s: %w", name, err)
		}
		params = append(params, wire.Param{Name: name, Value: v})
	}
	return params, nil
}

// execResult implements driver.Result.
type execResult struct{ rows int64 }

func (r execResult) LastInsertId() (int64, error) {
	return 0, errors.New("idea: LastInsertId is not supported (keys are declared, not generated)")
}

func (r execResult) RowsAffected() (int64, error) { return r.rows, nil }

// stmt is a client-side prepared statement: just the text, re-shipped
// per execution (the tinydb-driver pattern — the server is stateless
// between requests).
type stmt struct {
	c    *conn
	text string
}

func (s *stmt) Close() error { return nil }

// NumInput reports -1: the parameter count is the server's to know;
// binding mismatches come back as typed errors.
func (s *stmt) NumInput() int { return -1 }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.c.ExecContext(context.Background(), s.text, namedValues(args))
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.c.QueryContext(context.Background(), s.text, namedValues(args))
}

func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return s.c.ExecContext(ctx, s.text, args)
}

func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return s.c.QueryContext(ctx, s.text, args)
}

func namedValues(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for i, a := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return out
}

var (
	_ driver.Conn             = (*conn)(nil)
	_ driver.QueryerContext   = (*conn)(nil)
	_ driver.ExecerContext    = (*conn)(nil)
	_ driver.Pinger           = (*conn)(nil)
	_ driver.Validator        = (*conn)(nil)
	_ driver.SessionResetter  = (*conn)(nil)
	_ driver.StmtQueryContext = (*stmt)(nil)
	_ driver.StmtExecContext  = (*stmt)(nil)
)
