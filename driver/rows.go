package driver

import (
	"database/sql/driver"
	"fmt"
	"io"

	"github.com/ideadb/idea/internal/wire"
)

// rows streams one result set. Next decodes rows out of the current
// batch frame and reads the next frame only when the batch runs dry,
// so memory stays bounded by one batch regardless of result size.
type rows struct {
	c       *conn
	cols    []string
	release func() // stops the ctx guard armed by QueryContext

	batch    *wire.BatchReader
	done     bool  // Trailer or Error consumed; stream is over
	finalErr error // terminal error to report from Next after done
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.cols }

// Next implements driver.Rows: it yields the next row, fetching the
// next RowBatch frame when the current one is exhausted. io.EOF after
// the Trailer.
func (r *rows) Next(dest []driver.Value) error {
	for {
		if r.batch != nil && r.batch.Len() > 0 {
			v, ok, err := r.batch.Next()
			if err != nil {
				r.done = true
				return r.c.broken(err)
			}
			if !ok {
				r.batch = nil
				continue
			}
			dv, err := toDriverValue(v)
			if err != nil {
				r.done = true
				return r.c.broken(err)
			}
			for i := range dest {
				dest[i] = nil
			}
			if len(dest) > 0 {
				dest[0] = dv
			}
			return nil
		}
		if r.done {
			if r.finalErr != nil {
				return r.finalErr
			}
			return io.EOF
		}
		t, body, err := r.c.readReply()
		if err != nil {
			r.done = true
			r.finalErr = err
			return err
		}
		switch t {
		case wire.TypeRowBatch:
			br, err := wire.NewBatchReader(body)
			if err != nil {
				r.done = true
				return r.c.broken(err)
			}
			r.batch = br
		case wire.TypeTrailer:
			if _, err := wire.ParseTrailer(body); err != nil {
				r.done = true
				return r.c.broken(err)
			}
			r.done = true
		case wire.TypeError:
			r.done = true
			r.finalErr = r.c.parseErrorFrame(body)
			return r.finalErr
		default:
			r.done = true
			err := r.c.broken(fmt.Errorf("idea driver: unexpected %v frame in result stream", t))
			r.finalErr = err
			return err
		}
	}
}

// Close implements driver.Rows. On early close it asks the server to
// cancel the cursor (CloseRows) and drains the stream to its Trailer
// or Error so the session is clean for the next request.
func (r *rows) Close() error {
	defer func() {
		if r.release != nil {
			r.release()
			r.release = nil
		}
	}()
	if r.done {
		return nil
	}
	// The batch in hand is abandoned; tell the server to stop. A
	// CloseRows racing the natural end of the stream is fine — the
	// server ignores it once the Trailer is in flight. The write runs
	// concurrently with the drain below: over an unbuffered transport
	// (net.Pipe) the server can be blocked mid-write itself, so writing
	// before reading would deadlock — reads and writes on a wire.Conn
	// are independent halves, one goroutine each is safe.
	werr := make(chan error, 1)
	go func() { werr <- r.c.request(wire.TypeCloseRows, nil) }()
	defer func() { <-werr }()
	for !r.done {
		t, body, err := r.c.readReply()
		if err != nil {
			r.done = true
			return err
		}
		switch t {
		case wire.TypeRowBatch:
			// In-flight batches written before the server saw CloseRows.
		case wire.TypeTrailer:
			r.done = true
		case wire.TypeError:
			r.done = true
			// The statement was canceled at our request; the session
			// stays usable, so this is not a Close failure.
			if _, perr := wire.ParseError(body); perr != nil {
				return r.c.broken(perr)
			}
		default:
			r.done = true
			return r.c.broken(fmt.Errorf("idea driver: unexpected %v frame draining result stream", t))
		}
	}
	return nil
}

var _ driver.Rows = (*rows)(nil)
