package driver

import (
	"context"
	"crypto/tls"
	"database/sql/driver"
	"fmt"
	"net"
	"net/url"
	"strings"
	"time"

	"github.com/ideadb/idea/internal/wire"
)

// Dialer opens the transport for one connection. The default dials
// TCP; tests inject net.Pipe ends to run driver and server in one
// process without a socket.
type Dialer func(ctx context.Context) (net.Conn, error)

// Option customizes a Connector.
type Option func(*Connector)

// WithDialer replaces the transport dial (the net.Pipe test seam; also
// useful for proxies and in-process servers).
func WithDialer(d Dialer) Option {
	return func(c *Connector) { c.dial = d }
}

// WithToken sets the auth token presented in the handshake,
// overriding the DSN's.
func WithToken(token string) Option {
	return func(c *Connector) { c.token = token }
}

// WithTLS enables TLS with the given config (nil config leaves TLS
// off). Overrides the DSN's tls parameters.
func WithTLS(conf *tls.Config) Option {
	return func(c *Connector) { c.tlsConf = conf }
}

// Connector implements database/sql/driver.Connector: a parsed DSN
// plus dial configuration. Safe for concurrent use; database/sql calls
// Connect whenever its pool grows.
type Connector struct {
	addr    string
	token   string
	tlsConf *tls.Config
	dial    Dialer
}

// NewConnector parses a DSN (see the package comment for the grammar)
// and applies opts. Use with sql.OpenDB to skip the global driver
// registry:
//
//	conn, _ := driver.NewConnector("127.0.0.1:7654")
//	db := sql.OpenDB(conn)
func NewConnector(dsn string, opts ...Option) (*Connector, error) {
	c := &Connector{}
	if err := c.parseDSN(dsn); err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.dial == nil {
		addr := c.addr
		c.dial = func(ctx context.Context) (net.Conn, error) {
			d := net.Dialer{Timeout: 10 * time.Second}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return c, nil
}

func (c *Connector) parseDSN(dsn string) error {
	raw := dsn
	if !strings.Contains(raw, "://") {
		raw = "idea://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("idea driver: bad DSN %q: %w", dsn, err)
	}
	if u.Scheme != "idea" {
		return fmt.Errorf("idea driver: bad DSN %q: scheme %q (want idea://)", dsn, u.Scheme)
	}
	if u.Host == "" || u.Path != "" {
		return fmt.Errorf("idea driver: bad DSN %q: want [idea://][token@]host:port", dsn)
	}
	c.addr = u.Host
	if u.User != nil {
		c.token = u.User.Username()
	}
	q := u.Query()
	if tok := q.Get("token"); tok != "" {
		c.token = tok
	}
	useTLS := false
	switch v := q.Get("tls"); v {
	case "", "false", "0":
	case "true", "1":
		useTLS = true
	default:
		return fmt.Errorf("idea driver: bad DSN %q: tls=%q (want true/false)", dsn, v)
	}
	skipVerify := false
	switch v := q.Get("tls-skip-verify"); v {
	case "", "false", "0":
	case "true", "1":
		skipVerify = true
	default:
		return fmt.Errorf("idea driver: bad DSN %q: tls-skip-verify=%q (want true/false)", dsn, v)
	}
	if useTLS || skipVerify {
		host := u.Hostname()
		c.tlsConf = &tls.Config{ServerName: host, InsecureSkipVerify: skipVerify}
	}
	for k := range q {
		switch k {
		case "token", "tls", "tls-skip-verify":
		default:
			return fmt.Errorf("idea driver: bad DSN %q: unknown parameter %q", dsn, k)
		}
	}
	return nil
}

// Connect dials, optionally wraps TLS, and performs the wire
// handshake. ctx bounds the whole exchange.
func (c *Connector) Connect(ctx context.Context) (driver.Conn, error) {
	nc, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	if c.tlsConf != nil {
		tc := tls.Client(nc, c.tlsConf)
		if err := tc.HandshakeContext(ctx); err != nil {
			nc.Close()
			return nil, fmt.Errorf("idea driver: TLS handshake: %w", err)
		}
		nc = tc
	}
	cn := &conn{nc: nc, wc: wire.NewConn(nc)}
	release := cn.guard(ctx)
	defer release()
	body := wire.AppendHello(nil, wire.Hello{Version: wire.Version, Token: c.token})
	if err := cn.wc.WriteFrame(wire.TypeHello, body); err != nil {
		nc.Close()
		return nil, fmt.Errorf("idea driver: handshake: %w", err)
	}
	if err := cn.wc.Flush(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("idea driver: handshake: %w", err)
	}
	t, reply, err := cn.wc.ReadFrame(wire.MaxHandshakeFrame)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("idea driver: handshake: %w", err)
	}
	switch t {
	case wire.TypeWelcome:
		if _, err := wire.ParseWelcome(reply); err != nil {
			nc.Close()
			return nil, fmt.Errorf("idea driver: handshake: %w", err)
		}
		return cn, nil
	case wire.TypeError:
		defer nc.Close()
		msg, perr := wire.ParseError(reply)
		if perr != nil {
			return nil, fmt.Errorf("idea driver: handshake: %w", perr)
		}
		return nil, wireError(msg)
	default:
		nc.Close()
		return nil, fmt.Errorf("idea driver: handshake: unexpected %v frame", t)
	}
}

// Driver implements driver.Connector.
func (c *Connector) Driver() driver.Driver { return Driver{} }
