package idea

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestQueryParamBinding(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64, grp: string };
		CREATE DATASET D(T) PRIMARY KEY id;
		INSERT INTO D ([
			{"id": 1, "grp": "a"}, {"id": 2, "grp": "b"},
			{"id": 3, "grp": "a"}, {"id": 4, "grp": "c"}
		]);
	`)
	ctx := context.Background()

	// Named binding.
	rows := queryVals(t, c, `SELECT VALUE d.id FROM D d WHERE d.grp = $g ORDER BY d.id`, Named("g", "a"))
	if len(rows) != 2 || rows[0].Int() != 1 || rows[1].Int() != 3 {
		t.Fatalf("named binding rows = %v", rows)
	}
	// A leading $ in the arg name is tolerated.
	rows = queryVals(t, c, `SELECT VALUE d.id FROM D d WHERE d.grp = $g`, Named("$g", "c"))
	if len(rows) != 1 || rows[0].Int() != 4 {
		t.Fatalf("$-prefixed named binding rows = %v", rows)
	}

	// Positional binding: $1, $2 in argument order.
	rows = queryVals(t, c, `SELECT VALUE d.id FROM D d WHERE d.grp = $1 AND d.id > $2`, "a", 1)
	if len(rows) != 1 || rows[0].Int() != 3 {
		t.Fatalf("positional binding rows = %v", rows)
	}

	// Mixed named + positional.
	rows = queryVals(t, c, `SELECT VALUE d.id FROM D d WHERE d.grp = $g AND d.id < $1`, Named("g", "a"), 3)
	if len(rows) != 1 || rows[0].Int() != 1 {
		t.Fatalf("mixed binding rows = %v", rows)
	}

	// Missing argument for a referenced parameter fails up front.
	if _, err := c.Query(ctx, `SELECT VALUE d.id FROM D d WHERE d.grp = $g`); err == nil ||
		!strings.Contains(err.Error(), "$g") {
		t.Errorf("missing arg error = %v", err)
	}
	// An argument the statement never references fails up front too.
	if _, err := c.Query(ctx, `SELECT VALUE d.id FROM D d`, Named("g", "a")); err == nil ||
		!strings.Contains(err.Error(), "$g") {
		t.Errorf("extra arg error = %v", err)
	}
	if _, err := c.Query(ctx, `SELECT VALUE d.id FROM D d LIMIT $1`, 1, 2); err == nil {
		t.Error("extra positional arg should fail")
	}
	// $text inside a string literal is text, not a parameter.
	rows = queryVals(t, c, `SELECT VALUE d.id FROM D d WHERE d.grp = "$g" ORDER BY d.id`)
	if len(rows) != 0 {
		t.Errorf("string-literal $ matched rows: %v", rows)
	}
	// Unconvertible argument values are rejected.
	if _, err := c.Query(ctx, `SELECT VALUE d.id FROM D d LIMIT $1`, struct{}{}); err == nil {
		t.Error("unconvertible arg should fail")
	}
}

func TestExecuteParamsInDML(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
	`)
	results, err := c.Execute(context.Background(),
		`UPSERT INTO D ([{"id": $id, "tag": $tag}]);`,
		Named("id", 7), Named("tag", "bound"))
	if err != nil {
		t.Fatal(err)
	}
	if results.RowsAffected() != 1 {
		t.Fatalf("RowsAffected = %d", results.RowsAffected())
	}
	rec, found, err := c.Get("D", Int64(7))
	if err != nil || !found || rec.Field("tag").Str() != "bound" {
		t.Fatalf("Get = %v %v %v", rec, found, err)
	}
}

// TestExecuteMidScriptErrorReportsStatementAndFeeds is the satellite
// regression: a script that starts a feed and then fails must still
// hand back the started feed handle, and the error must locate the
// failing statement.
func TestExecuteMidScriptErrorReportsStatementAndFeeds(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
		CREATE FEED F WITH { "adapter-name": "channel_adapter" };
		CONNECT FEED F TO DATASET D;
	`)
	ch := make(chan []byte)
	if err := c.SetFeedSource("F", func(int) (FeedSource, error) {
		return &ChannelSource{C: ch}, nil
	}); err != nil {
		t.Fatal(err)
	}
	script := `START FEED F;
INSERT INTO NoSuchDataset ([{"id": 1}]);`
	results, err := c.Execute(context.Background(), script)
	if err == nil {
		t.Fatal("script should fail at the second statement")
	}
	var se *StatementError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *StatementError", err)
	}
	if se.Index != 1 {
		t.Errorf("failing statement index = %d, want 1", se.Index)
	}
	if want := strings.Index(script, "INSERT"); se.Pos != want {
		t.Errorf("failing statement pos = %d, want %d", se.Pos, want)
	}
	if !strings.Contains(se.Snippet, "INSERT INTO NoSuchDataset") {
		t.Errorf("snippet = %q", se.Snippet)
	}
	if !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("cause should unwrap to ErrUnknownDataset, got %v", err)
	}
	// The feed the script already started is in the partial results —
	// stop it through the returned handle.
	feeds := results.Feeds()
	if len(feeds) != 1 {
		t.Fatalf("partial results carry %d feeds, want 1", len(feeds))
	}
	close(ch)
	if err := feeds[0].Stop(); err != nil {
		t.Fatalf("stopping the orphaned feed: %v", err)
	}
}

// TestFeedStatsAfterStop is the satellite regression for Stats
// silently returning zeros: final counters must survive the stop, and
// unknown handles must report a typed error instead of zeros.
func TestFeedStatsAfterStop(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
		CREATE FEED F WITH { "adapter-name": "channel_adapter" };
		CONNECT FEED F TO DATASET D;
	`)
	records := make([][]byte, 120)
	for i := range records {
		records[i] = []byte(fmt.Sprintf(`{"id":%d}`, i))
	}
	if err := c.SetFeedSource("F", func(int) (FeedSource, error) {
		return &RecordsSource{Records: records}, nil
	}); err != nil {
		t.Fatal(err)
	}
	feed := c.MustExecute(`START FEED F;`).Feeds()[0]
	if err := feed.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := feed.Stop(); err != nil {
		t.Fatal(err)
	}
	stats, err := feed.Stats()
	if err != nil {
		t.Fatalf("Stats after stop: %v", err)
	}
	if stats.Stored != 120 {
		t.Errorf("final stored = %d, want 120", stats.Stored)
	}
	if stats.Running {
		t.Error("stopped feed reports Running")
	}
	// A handle to a feed the manager never saw reports ErrUnknownFeed.
	bogus := &Feed{name: "ghost", c: c}
	if _, err := bogus.Stats(); !errors.Is(err, ErrUnknownFeed) {
		t.Errorf("unknown feed error = %v, want ErrUnknownFeed", err)
	}
}

func TestQueryContextCancellation(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
	`)
	var b strings.Builder
	b.WriteString(`UPSERT INTO D ([`)
	for i := 0; i < 500; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"id": %d}`, i)
	}
	b.WriteString(`]);`)
	c.MustExecute(b.String())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := c.Query(ctx, `SELECT VALUE d.id FROM D d`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
		if n == 3 {
			cancel()
		}
	}
	if n >= 500 {
		t.Fatalf("cancellation did not stop the stream (pulled %d rows)", n)
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

func TestRowsEarlyCloseAndReuse(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
		UPSERT INTO D ([{"id": 1}, {"id": 2}, {"id": 3}]);
	`)
	rows, err := c.Query(context.Background(), `SELECT VALUE d.id FROM D d`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("first Next failed")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Error("Next after Close should report false")
	}
	if rows.Err() != nil {
		t.Errorf("Err after clean Close = %v", rows.Err())
	}
	// The cluster is fully usable for the next query.
	if got := queryVals(t, c, `SELECT VALUE count(*) FROM D d`); got[0].Int() != 3 {
		t.Errorf("follow-up query = %v", got)
	}
}

// TestExecuteThenCollect covers the paths the removed ExecuteScript and
// QueryAll shims used to exercise: a setup script through Execute (no
// feeds started) and a materialized result through Rows.Collect.
func TestExecuteThenCollect(t *testing.T) {
	c := newTestCluster(t)
	results, err := c.Execute(context.Background(), `
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
		UPSERT INTO D ([{"id": 1}, {"id": 2}]);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if feeds := results.Feeds(); len(feeds) != 0 {
		t.Fatalf("feeds = %d", len(feeds))
	}
	rows, err := c.Query(context.Background(), `SELECT VALUE d.id FROM D d ORDER BY d.id`)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0].Int() != 1 {
		t.Fatalf("Collect = %v", vals)
	}
}

// TestRowsCloseMidParallelScan abandons streams partway through every
// parallel plan shape, repeatedly: the scan workers behind the cursor
// must stop and join on Close, leaking no goroutines and (under
// -race) no unsynchronized accesses. The cluster must stay fully
// usable afterwards.
func TestRowsCloseMidParallelScan(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
	`)
	const n = 8192
	for lo := 0; lo < n; lo += 2048 {
		var b strings.Builder
		b.WriteString(`UPSERT INTO D ([`)
		for i := lo; i < lo+2048; i++ {
			if i > lo {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, `{"id": %d, "grp": %d}`, i, i%7)
		}
		b.WriteString(`]);`)
		c.MustExecute(b.String())
	}
	for _, q := range []string{
		`SELECT VALUE d.id FROM D d`,                       // partition-order scan
		`SELECT VALUE d.id FROM D d ORDER BY d.id LIMIT 5`, // key-order merge
		`SELECT VALUE count(*) FROM D d`,                   // unordered fan-in
		`SELECT VALUE d.id FROM D d WHERE d.grp < 5`,       // pushed worker filter
		`SELECT d.grp AS g, count(*) AS c FROM D d GROUP BY d.grp`,
	} {
		for iter := 0; iter < 3; iter++ {
			rows, err := c.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			for i := 0; i < 2 && rows.Next(); i++ {
			}
			if err := rows.Err(); err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("%s: close: %v", q, err)
			}
		}
	}
	if got := queryVals(t, c, `SELECT VALUE count(*) FROM D d`); got[0].Int() != n {
		t.Fatalf("cluster disturbed: count = %v", got)
	}
}

// TestQueryStreamBoundedWork asserts the acceptance criterion at the
// public surface: LIMIT-k allocations must not scale with dataset
// size. Allocations for LIMIT 10 over a 40x larger dataset must stay
// within a small constant factor of the small-dataset run.
func TestQueryStreamBoundedWork(t *testing.T) {
	build := func(n int) *Cluster {
		c := newTestCluster(t)
		c.MustExecute(`
			CREATE TYPE T AS OPEN { id: int64 };
			CREATE DATASET D(T) PRIMARY KEY id;
		`)
		for lo := 0; lo < n; lo += 4096 {
			hi := lo + 4096
			if hi > n {
				hi = n
			}
			var b strings.Builder
			b.WriteString(`UPSERT INTO D ([`)
			for i := lo; i < hi; i++ {
				if i > lo {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, `{"id": %d, "score": %d}`, i, i%97)
			}
			b.WriteString(`]);`)
			c.MustExecute(b.String())
		}
		return c
	}
	const q = `SELECT VALUE d.id FROM D d WHERE d.score >= 0 LIMIT 10`
	measure := func(c *Cluster) float64 {
		return testing.AllocsPerRun(20, func() {
			rows, err := c.Query(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for rows.Next() {
				n++
			}
			if rows.Err() != nil || n != 10 {
				t.Fatalf("rows=%d err=%v", n, rows.Err())
			}
			rows.Close()
		})
	}
	small := measure(build(2_000))
	large := measure(build(80_000))
	if large > small*2+16 {
		t.Errorf("LIMIT-10 allocations scale with dataset size: %v (2k) vs %v (80k)", small, large)
	}
}

// TestCreateFunctionRejectsStatementParams: a stored body outlives the
// Execute call, so binding $params there would silently capture a
// later query's bindings — it must be rejected up front.
func TestCreateFunctionRejectsStatementParams(t *testing.T) {
	c := newTestCluster(t)
	_, err := c.Execute(context.Background(),
		`CREATE FUNCTION isred(x) { x = $flag };`, Named("flag", "Red"))
	if err == nil {
		t.Fatal("CREATE FUNCTION with a $param body should fail")
	}
	if !strings.Contains(err.Error(), "$flag") {
		t.Errorf("error should name the parameter: %v", err)
	}
	// Without the binding it fails the same way (the body is the
	// problem, not the argument list).
	if _, err := c.Execute(context.Background(),
		`CREATE FUNCTION isred(x) { x = $flag };`); err == nil {
		t.Fatal("CREATE FUNCTION with an unbound $param body should fail")
	}
}

// TestQueryPinsSnapshotsAtCallTime: rows observe the data as of the
// Query call, not of the first Next — a write landing in between must
// be invisible.
func TestQueryPinsSnapshotsAtCallTime(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
		UPSERT INTO D ([{"id": 1}]);
	`)
	rows, err := c.Query(context.Background(), `SELECT VALUE d.id FROM D d`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	// A write after Query but before the first pull.
	c.MustExecute(`UPSERT INTO D ([{"id": 2}]);`)
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("rows = %d, want 1 (snapshot as of the Query call)", n)
	}
	// A fresh query sees the write.
	if got := queryVals(t, c, `SELECT VALUE count(*) FROM D d`); got[0].Int() != 2 {
		t.Errorf("follow-up count = %v", got)
	}
}
