// Command ideabench regenerates the paper's evaluation figures (Section
// 7) on the simulated cluster. Each experiment prints a table whose rows
// mirror the paper's series.
//
// Usage:
//
//	ideabench -list
//	ideabench -experiment fig24 -scale 0.01 -v
//	ideabench -experiment all -scale 0.005
//	ideabench -experiment fig31 -nodes 2,4,8 -tweets 5000
//	ideabench -experiment fig24 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/ideadb/idea/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run holds main's body so profile-flushing defers fire on every exit
// path (os.Exit would skip them).
func run() int {
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list) or 'all' for every figure")
		scale      = flag.Float64("scale", 0.01, "fraction of the paper's dataset/tweet sizes")
		nodesCSV   = flag.String("nodes", "", "override node-count sweep, e.g. 2,4,8")
		tweets     = flag.Int("tweets", 0, "override tweet count (0 = figure default × scale)")
		seed       = flag.Int64("seed", 2019, "workload random seed")
		verbose    = flag.Bool("v", false, "stream per-cell progress")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ideabench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ideabench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ideabench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "ideabench: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return 0
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "ideabench: -experiment required (or -list)")
		flag.Usage()
		return 2
	}

	opts := experiments.Options{
		Scale:   *scale,
		Tweets:  *tweets,
		Seed:    *seed,
		Verbose: *verbose,
		Out:     os.Stderr,
	}
	if *nodesCSV != "" {
		for _, part := range strings.Split(*nodesCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "ideabench: bad -nodes value %q\n", part)
				return 2
			}
			opts.Nodes = append(opts.Nodes, n)
		}
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "running %s (scale %g)...\n", name, *scale)
		table, err := experiments.Run(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ideabench: %s: %v\n", name, err)
			return 1
		}
		table.Print(os.Stdout)
	}
	return 0
}
