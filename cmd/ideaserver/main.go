// Command ideaserver serves an idea cluster over the network: it boots
// a cluster (in-memory, or durable with -data-dir), optionally runs a
// bootstrap SQL++ script, and speaks the ideaserver wire protocol on
// TCP (TLS with -tls-cert/-tls-key). Any Go program can then reach the
// engine through database/sql:
//
//	import _ "github.com/ideadb/idea/driver"
//	db, err := sql.Open("idea", "127.0.0.1:7654")
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// lets in-flight statements finish (bounded by -drain-timeout), then
// closes the cluster so every acknowledged write is committed before
// the process exits.
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ideadb/idea"
	"github.com/ideadb/idea/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":7654", "TCP listen address (host:port; port 0 picks a free port)")
		nodes        = flag.Int("nodes", 1, "simulated cluster size")
		dataDir      = flag.String("data-dir", "", "durable storage directory (empty: in-memory)")
		blockCacheMB = flag.Int64("block-cache-mb", 0, "block cache budget in MiB for durable storage (0: default 64, negative: disabled)")
		initScript   = flag.String("init", "", "SQL++ script file executed at boot (DDL, feeds)")
		tlsCert      = flag.String("tls-cert", "", "TLS certificate file (with -tls-key enables TLS)")
		tlsKey       = flag.String("tls-key", "", "TLS private key file")
		authTokens   = flag.String("auth-tokens", "", "comma-separated auth tokens; empty disables auth")
		maxSessions  = flag.Int("max-sessions", 256, "concurrent session limit")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "close sessions idle this long")
		batchRows    = flag.Int("batch-rows", 256, "result rows per streamed batch frame")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	)
	flag.Parse()
	log.SetPrefix("ideaserver: ")
	log.SetFlags(log.LstdFlags)

	cacheBytes := *blockCacheMB << 20
	if *blockCacheMB < 0 {
		cacheBytes = -1
	}
	cluster, err := idea.NewCluster(idea.Config{Nodes: *nodes, DataDir: *dataDir, BlockCacheBytes: cacheBytes})
	if err != nil {
		log.Fatalf("boot cluster: %v", err)
	}
	if *initScript != "" {
		script, err := os.ReadFile(*initScript)
		if err != nil {
			log.Fatalf("read init script: %v", err)
		}
		if _, err := cluster.Execute(context.Background(), string(script)); err != nil {
			log.Fatalf("init script: %v", err)
		}
		log.Printf("ran init script %s", *initScript)
	}

	var tokens []string
	if *authTokens != "" {
		tokens = strings.Split(*authTokens, ",")
	}
	srv := server.New(cluster, server.Config{
		AuthTokens:  tokens,
		MaxSessions: *maxSessions,
		IdleTimeout: *idleTimeout,
		BatchRows:   *batchRows,
		Logf:        log.Printf,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	if *tlsCert != "" || *tlsKey != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			log.Fatalf("load TLS key pair: %v", err)
		}
		l = tls.NewListener(l, &tls.Config{Certificates: []tls.Certificate{cert}})
	}
	// The one line scripts parse (CI boots on port 0 and scrapes the
	// port): keep the format stable.
	fmt.Printf("listening on %s\n", l.Addr())
	os.Stdout.Sync()
	log.Printf("serving (nodes=%d durable=%v tls=%v auth=%v)",
		*nodes, *dataDir != "", *tlsCert != "", len(tokens) > 0)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case sig := <-sigCh:
		log.Printf("received %v, draining", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain forced after %v: %v", *drainTimeout, err)
	}
	if err := cluster.Close(); err != nil {
		log.Fatalf("close cluster: %v", err)
	}
	log.Printf("clean shutdown")
}
