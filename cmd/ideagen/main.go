// Command ideagen emits the synthetic tweet workload as JSON lines —
// pipe it into a socket feed (see cmd/ideafeed) or use it to eyeball the
// record shapes the benchmarks ingest.
//
// Usage:
//
//	ideagen -n 1000 | head -3
//	ideagen -n 100000 | nc 127.0.0.1 10001
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/ideadb/idea/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 1000, "number of tweets")
		seed  = flag.Int64("seed", 2019, "random seed")
		scale = flag.Float64("scale", 0.01, "reference-data scale (controls the country key space)")
		base  = flag.Int64("base", 0, "first tweet id")
	)
	flag.Parse()

	g := workload.NewGenerator(*seed, workload.Scaled(*scale))
	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	for i := 0; i < *n; i++ {
		w.Write(g.TweetJSON(*base + int64(i)))
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "ideagen: %v\n", err)
		os.Exit(1)
	}
}
