// Command linkcheck guards the documentation against rot: it walks a
// directory tree, extracts every markdown link from every *.md file,
// and fails when a relative link points at a file that does not exist.
// CI runs it over the repository root (the docs job), so a renamed or
// deleted document breaks the build instead of silently orphaning its
// references.
//
// External links (http/https/mailto) are not fetched — the check is
// offline and deterministic. Anchors are stripped before the existence
// check, so README.md#quickstart validates README.md.
//
// Usage:
//
//	linkcheck [dir]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Images and
// reference-style definitions are rare in this repo; inline links are
// the form the docs use.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	checked := 0
	files := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		files++
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRe.FindAllSubmatch(data, -1) {
			target := string(m[1])
			if !checkable(target) {
				continue
			}
			checked++
			if !exists(path, target) {
				fmt.Fprintf(os.Stderr, "%s: broken link: %s\n", path, target)
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}
	fmt.Printf("linkcheck: %d files, %d relative links, %d broken\n", files, checked, broken)
	if broken > 0 {
		os.Exit(1)
	}
}

// checkable reports whether target is a relative filesystem link this
// tool can verify offline.
func checkable(target string) bool {
	switch {
	case strings.Contains(target, "://"), // http:, https:, etc.
		strings.HasPrefix(target, "mailto:"),
		strings.HasPrefix(target, "#"): // same-file anchor
		return false
	}
	return true
}

// exists resolves target relative to the markdown file that contains it
// and checks the filesystem (anchor stripped).
func exists(mdFile, target string) bool {
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return true
	}
	_, err := os.Stat(filepath.Join(filepath.Dir(mdFile), target))
	return err == nil
}
