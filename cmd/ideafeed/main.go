// Command ideafeed is the end-to-end demo: it boots a simulated cluster,
// declares the paper's tweet-safety-check schema, opens a socket feed
// with the enrichment UDF attached, and ingests newline-delimited JSON
// until interrupted. On shutdown it prints feed statistics and a sample
// analytical query over the enriched data.
//
// Usage:
//
//	ideafeed -listen 127.0.0.1:10001 -nodes 4 &
//	ideagen -n 100000 | nc 127.0.0.1 10001
//	kill -INT %1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/ideadb/idea"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:10001", "socket feed listen address")
		nodes  = flag.Int("nodes", 4, "simulated cluster size")
	)
	flag.Parse()
	if err := run(*listen, *nodes); err != nil {
		fmt.Fprintf(os.Stderr, "ideafeed: %v\n", err)
		os.Exit(1)
	}
}

func run(listen string, nodes int) error {
	ctx := context.Background()
	c, err := idea.NewCluster(idea.Config{Nodes: nodes})
	if err != nil {
		return err
	}
	_, err = c.Execute(ctx, fmt.Sprintf(`
		CREATE TYPE TweetType AS OPEN { id: int64, text: string };
		CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
		CREATE TYPE WordType AS OPEN { id: int64, country: string, word: string };
		CREATE DATASET SensitiveWords(WordType) PRIMARY KEY id;
		INSERT INTO SensitiveWords ([
			{"id": 1, "country": "C000000", "word": "bomb"},
			{"id": 2, "country": "C000001", "word": "attack"},
			{"id": 3, "country": "C000002", "word": "threat"}
		]);
		CREATE FUNCTION tweetSafetyCheck(tweet) {
			LET safety_check_flag = CASE
				EXISTS(SELECT s FROM SensitiveWords s
					WHERE tweet.country = s.country AND contains(tweet.text, s.word))
				WHEN true THEN "Red" ELSE "Green" END
			SELECT tweet.*, safety_check_flag
		};
		CREATE FEED TweetFeed WITH {
			"adapter-name": "socket_adapter",
			"type-name": "TweetType",
			"format": "JSON",
			"sockets": "%s"
		};
		CONNECT FEED TweetFeed TO DATASET EnrichedTweets APPLY FUNCTION tweetSafetyCheck;
	`, listen))
	if err != nil {
		return err
	}
	results, err := c.Execute(ctx, `START FEED TweetFeed;`)
	if err != nil {
		return err
	}
	feed := results.Feeds()[0]
	fmt.Printf("ideafeed: %d-node cluster listening on %s (newline-delimited JSON tweets)\n", nodes, listen)
	fmt.Println("ideafeed: press Ctrl-C to stop the feed and print results")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("\nideafeed: stopping feed and draining...")
	if err := feed.Stop(); err != nil {
		return err
	}
	// Final counters stay readable after the stop.
	stats, err := feed.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("ideafeed: ingested=%d stored=%d computing-jobs=%d mean-refresh=%v\n",
		stats.Ingested, stats.Stored, stats.Invocations, stats.MeanRefresh)
	fmt.Printf("ideafeed: spilled=%d frames (%d records) shed=%d frames (%d records) sampled-out=%d frames (%d records)\n",
		stats.SpilledFrames, stats.SpilledRecords, stats.ShedFrames, stats.ShedRecords,
		stats.SampledFrames, stats.SampledRecords)
	fmt.Printf("ideafeed: last-checkpoint=%d resumptions=%d\n",
		stats.LastCheckpoint, stats.Resumptions)

	rows, err := c.Query(ctx, `
		SELECT e.safety_check_flag AS flag, count(*) AS num
		FROM EnrichedTweets e
		GROUP BY e.safety_check_flag
		ORDER BY e.safety_check_flag`)
	if err != nil {
		return err
	}
	fmt.Println("ideafeed: enriched tweet flags:")
	for row, err := range rows.All() {
		if err != nil {
			return err
		}
		fmt.Printf("  %-6s %d\n", row.Field("flag").Str(), row.Field("num").Int())
	}
	return nil
}
