package idea_test

import (
	"context"
	"fmt"
	"log"

	"github.com/ideadb/idea"
)

// Example reproduces the paper's running example end to end: a stateful
// SQL++ safety-check UDF attached to a feed, with a reference-data
// update observed by later batches.
func Example() {
	c, err := idea.NewCluster(idea.Config{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	c.MustExecute(`
		CREATE TYPE TweetType AS OPEN { id: int64, text: string };
		CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
		CREATE TYPE WordType AS OPEN { id: int64, country: string, word: string };
		CREATE DATASET SensitiveWords(WordType) PRIMARY KEY id;
		INSERT INTO SensitiveWords ([{"id": 1, "country": "US", "word": "bomb"}]);
		CREATE FUNCTION tweetSafetyCheck(tweet) {
			LET safety_check_flag = CASE
				EXISTS(SELECT s FROM SensitiveWords s
					WHERE tweet.country = s.country AND contains(tweet.text, s.word))
				WHEN true THEN "Red" ELSE "Green" END
			SELECT tweet.*, safety_check_flag
		};
		CREATE FEED TweetFeed WITH { "adapter-name": "channel_adapter" };
		CONNECT FEED TweetFeed TO DATASET EnrichedTweets APPLY FUNCTION tweetSafetyCheck;
	`)
	records := [][]byte{
		[]byte(`{"id": 1, "text": "a bomb threat", "country": "US"}`),
		[]byte(`{"id": 2, "text": "a sunny day", "country": "US"}`),
	}
	if err := c.SetFeedSource("TweetFeed", func(int) (idea.FeedSource, error) {
		return &idea.RecordsSource{Records: records}, nil
	}); err != nil {
		log.Fatal(err)
	}
	feeds := c.MustExecute(`START FEED TweetFeed;`).Feeds()
	if err := feeds[0].Wait(); err != nil {
		log.Fatal(err)
	}
	rows, err := c.Query(context.Background(), `
		SELECT e.id AS id, e.safety_check_flag AS flag
		FROM EnrichedTweets e ORDER BY e.id`)
	if err != nil {
		log.Fatal(err)
	}
	for row, err := range rows.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tweet %d: %s\n", row.Field("id").Int(), row.Field("flag").Str())
	}
	// Output:
	// tweet 1: Red
	// tweet 2: Green
}

// ExampleCluster_Query shows Option 1 — enriching lazily at query time
// with a UDF call inside the analytical query (the paper's Figure 9).
func ExampleCluster_Query() {
	c, err := idea.NewCluster(idea.Config{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	c.MustExecute(`
		CREATE TYPE TweetType AS OPEN { id: int64, text: string };
		CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
		CREATE FUNCTION shout(t) { upper(t.text) };
		INSERT INTO Tweets ([{"id": 1, "text": "let there be light"}]);
	`)
	rows, err := c.Query(context.Background(), `SELECT VALUE shout(t) FROM Tweets t`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		fmt.Println(rows.Value().Str())
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	// Output: LET THERE BE LIGHT
}
