package idea

import (
	"fmt"
	"time"

	"github.com/ideadb/idea/internal/adm"
)

// Value is a public handle on an ADM value (the system's data model: a
// superset of JSON with datetime, duration, and spatial types). Values
// are immutable; accessors on absent fields return MISSING values rather
// than errors, matching SQL++'s forgiving path semantics.
type Value struct {
	v adm.Value
}

// FromJSON parses a JSON document into a Value.
func FromJSON(data []byte) (Value, error) {
	v, err := adm.ParseJSON(data)
	if err != nil {
		return Value{}, err
	}
	return Value{v}, nil
}

// MustJSON is FromJSON that panics on malformed input (literals in
// examples and tests).
func MustJSON(data string) Value {
	v, err := FromJSON([]byte(data))
	if err != nil {
		panic(err)
	}
	return v
}

// JSON serializes the value (datetime → ISO string, point → [x,y], ...).
func (v Value) JSON() []byte { return adm.SerializeJSON(v.v) }

// String renders the value in ADM literal syntax.
func (v Value) String() string { return v.v.String() }

// Kind names the value's runtime type ("int64", "object", "point", ...).
func (v Value) Kind() string { return v.v.Kind().String() }

// IsMissing reports whether the value is MISSING (e.g. an absent field).
func (v Value) IsMissing() bool { return v.v.IsMissing() }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.v.IsNull() }

// Field returns the named field of an object (MISSING when absent).
func (v Value) Field(name string) Value { return Value{v.v.Field(name)} }

// Index returns element i of an array (MISSING when out of range).
func (v Value) Index(i int) Value { return Value{v.v.Index(i)} }

// Len returns the element count of an array or the field count of an
// object; 0 otherwise.
func (v Value) Len() int {
	switch v.v.Kind() {
	case adm.KindArray:
		return len(v.v.ArrayVal())
	case adm.KindObject:
		if o := v.v.ObjectVal(); o != nil {
			return o.Len()
		}
	}
	return 0
}

// Str returns the string payload ("" for non-strings).
func (v Value) Str() string { return v.v.StringVal() }

// Int returns the value as int64 (0 when not numeric).
func (v Value) Int() int64 {
	i, _ := v.v.AsInt()
	return i
}

// Float returns the value as float64 (0 when not numeric).
func (v Value) Float() float64 {
	f, _ := v.v.AsDouble()
	return f
}

// Bool returns the boolean payload (false for non-booleans).
func (v Value) Bool() bool { return v.v.BoolVal() }

// Time returns a datetime value as time.Time (zero time otherwise).
func (v Value) Time() time.Time {
	if v.v.Kind() != adm.KindDateTime {
		return time.Time{}
	}
	return v.v.Time()
}

// Elems returns the elements of an array value (nil otherwise).
func (v Value) Elems() []Value {
	arr := v.v.ArrayVal()
	if arr == nil {
		return nil
	}
	out := make([]Value, len(arr))
	for i, e := range arr {
		out[i] = Value{e}
	}
	return out
}

// Native converts the value into plain Go data: nil, bool, int64,
// float64, string, time.Time, []any, or map[string]any.
func (v Value) Native() any { return toNative(v.v) }

func toNative(v adm.Value) any {
	switch v.Kind() {
	case adm.KindMissing, adm.KindNull:
		return nil
	case adm.KindBoolean:
		return v.BoolVal()
	case adm.KindInt64:
		return v.IntVal()
	case adm.KindDouble:
		return v.DoubleVal()
	case adm.KindString:
		return v.StringVal()
	case adm.KindDateTime:
		return v.Time()
	case adm.KindArray:
		arr := v.ArrayVal()
		out := make([]any, len(arr))
		for i, e := range arr {
			out[i] = toNative(e)
		}
		return out
	case adm.KindObject:
		o := v.ObjectVal()
		out := make(map[string]any, o.Len())
		for i := 0; i < o.Len(); i++ {
			out[o.Name(i)] = toNative(o.At(i))
		}
		return out
	default:
		return v.String()
	}
}

// Obj builds an object Value from alternating field-name / value pairs;
// values may be Value, string, int, int64, float64, bool, time.Time,
// nil, or []byte (JSON). It panics on malformed input — it exists for
// literals.
func Obj(pairs ...any) Value {
	if len(pairs)%2 != 0 {
		panic("idea: Obj requires name/value pairs")
	}
	o := adm.NewObject(len(pairs) / 2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("idea: Obj field names must be strings")
		}
		o.Set(name, fromAny(pairs[i+1]))
	}
	return Value{adm.ObjectValue(o)}
}

// Arr builds an array Value from elements (same conversions as Obj).
func Arr(elems ...any) Value {
	out := make([]adm.Value, len(elems))
	for i, e := range elems {
		out[i] = fromAny(e)
	}
	return Value{adm.Array(out)}
}

// Str builds a string Value.
func Str(s string) Value { return Value{adm.String(s)} }

// Int64 builds an int64 Value.
func Int64(i int64) Value { return Value{adm.Int(i)} }

// Float64 builds a double Value.
func Float64(f float64) Value { return Value{adm.Double(f)} }

// BoolVal builds a boolean Value.
func BoolVal(b bool) Value { return Value{adm.Bool(b)} }

// PointVal builds a 2-D point Value.
func PointVal(x, y float64) Value { return Value{adm.Point(x, y)} }

// TimeVal builds a datetime Value.
func TimeVal(t time.Time) Value { return Value{adm.DateTime(t)} }

func fromAny(x any) adm.Value {
	v, err := valueFromAny(x)
	if err != nil {
		panic(fmt.Sprintf("idea: %v", err))
	}
	return v
}

// valueFromAny is the non-panicking conversion behind the builders and
// statement-parameter binding.
func valueFromAny(x any) (adm.Value, error) {
	switch t := x.(type) {
	case Value:
		return t.v, nil
	case nil:
		return adm.Null(), nil
	case bool:
		return adm.Bool(t), nil
	case int:
		return adm.Int(int64(t)), nil
	case int64:
		return adm.Int(t), nil
	case float64:
		return adm.Double(t), nil
	case string:
		return adm.String(t), nil
	case time.Time:
		return adm.DateTime(t), nil
	case []byte:
		v, err := adm.ParseJSON(t)
		if err != nil {
			return adm.Value{}, fmt.Errorf("bad JSON literal: %v", err)
		}
		return v, nil
	default:
		return adm.Value{}, fmt.Errorf("cannot convert %T to a Value", x)
	}
}
