package idea

import (
	"fmt"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/sqlpp"
)

// Execute runs a sequence of semicolon-separated SQL++ statements: DDL
// (CREATE TYPE / DATASET / INDEX / FUNCTION / FEED, CONNECT FEED,
// START/STOP FEED) and DML (INSERT / UPSERT). Use Query for SELECTs.
// START FEED returns asynchronously; the returned Feed handles (one per
// START FEED in the script) let callers wait or stop.
func (c *Cluster) Execute(script string) ([]*Feed, error) {
	stmts, err := sqlpp.Parse(script)
	if err != nil {
		return nil, err
	}
	var feeds []*Feed
	for _, stmt := range stmts {
		f, err := c.executeStmt(stmt)
		if err != nil {
			return feeds, err
		}
		if f != nil {
			feeds = append(feeds, f)
		}
	}
	return feeds, nil
}

// MustExecute is Execute that panics on error (setup scripts in examples
// and tests).
func (c *Cluster) MustExecute(script string) []*Feed {
	feeds, err := c.Execute(script)
	if err != nil {
		panic(err)
	}
	return feeds
}

func (c *Cluster) executeStmt(stmt sqlpp.Statement) (*Feed, error) {
	switch s := stmt.(type) {
	case *sqlpp.CreateType:
		dt, err := adm.NewDatatype(s.Name, s.Open, s.Fields)
		if err != nil {
			return nil, err
		}
		return nil, c.inner.CreateDatatype(dt)
	case *sqlpp.CreateDataset:
		_, err := c.inner.CreateDataset(s.Name, s.TypeName, s.PrimaryKey)
		return nil, err
	case *sqlpp.CreateIndex:
		return nil, c.inner.CreateIndex(s.Name, s.Dataset, s.Field, s.Kind)
	case *sqlpp.CreateFunction:
		return nil, c.inner.CreateFunction(&query.Function{
			Name: s.Name, Params: s.Params, Body: s.Body,
		})
	case *sqlpp.CreateFeed:
		return nil, c.mgr.CreateFeed(s.Name, s.Config)
	case *sqlpp.ConnectFeed:
		return nil, c.mgr.ConnectFeed(s.Feed, s.Dataset, s.Function)
	case *sqlpp.StartFeed:
		if _, err := c.mgr.StartFeed(c.ctx, s.Name); err != nil {
			return nil, err
		}
		return &Feed{name: s.Name, c: c}, nil
	case *sqlpp.StopFeed:
		return nil, c.mgr.StopFeed(s.Name)
	case *sqlpp.Insert:
		return nil, c.executeInsert(s)
	case *sqlpp.Query:
		return nil, fmt.Errorf("idea: use Query for SELECT statements")
	}
	return nil, fmt.Errorf("idea: unsupported statement %T", stmt)
}

// executeInsert evaluates the source expression (a literal array or a
// query) and inserts/upserts each record.
func (c *Cluster) executeInsert(ins *sqlpp.Insert) error {
	ds, ok := c.inner.Dataset(ins.Dataset)
	if !ok {
		return fmt.Errorf("idea: unknown dataset %q", ins.Dataset)
	}
	var src adm.Value
	if v, err := sqlpp.ConstEval(ins.Source); err == nil {
		src = v
	} else {
		ctx := query.NewContext(c.inner)
		v, err := query.Eval(ctx, nil, ins.Source)
		if err != nil {
			return err
		}
		src = v
	}
	records := src.ArrayVal()
	if records == nil && src.Kind() == adm.KindObject {
		records = []adm.Value{src}
	}
	if ins.Upsert {
		// The whole statement lands as one batch per touched partition
		// (one WAL append+commit, one lock, one bulk memtable insert),
		// and validation runs before anything is written.
		return ds.UpsertBatch(records)
	}
	for _, rec := range records {
		// INSERT keeps the per-record path: duplicate-key rejection is
		// checked against records earlier in the same statement too.
		if err := ds.Insert(rec); err != nil {
			return err
		}
	}
	return nil
}

// Query runs a SQL++ SELECT and returns its result collection. UDFs in
// the query evaluate against current data — the paper's Option 1,
// enrich-during-querying.
func (c *Cluster) Query(q string) ([]Value, error) {
	stmts, err := sqlpp.Parse(q)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("idea: Query expects exactly one statement")
	}
	qs, ok := stmts[0].(*sqlpp.Query)
	if !ok {
		return nil, fmt.Errorf("idea: Query expects a SELECT, got %T (use Execute)", stmts[0])
	}
	ctx := query.NewContext(c.inner)
	out, err := query.ExecuteSelect(ctx, nil, qs.Sel)
	if err != nil {
		return nil, err
	}
	elems := out.ArrayVal()
	vals := make([]Value, len(elems))
	for i, e := range elems {
		vals[i] = Value{e}
	}
	return vals, nil
}
