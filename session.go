package idea

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/sqlpp"
)

// NamedArg binds a value to a named statement parameter: pass
// idea.Named("country", "US") for a query referencing $country.
// Non-NamedArg arguments bind positionally to $1, $2, ...
type NamedArg struct {
	// Name is the parameter name, without the leading "$" (a leading
	// "$" is tolerated and stripped).
	Name string
	// Value converts like the Obj/Arr builders: Value, string, int,
	// int64, float64, bool, time.Time, nil, or []byte (JSON).
	Value any
}

// Named builds a NamedArg.
func Named(name string, value any) NamedArg { return NamedArg{Name: name, Value: value} }

// Result describes one executed statement of a script.
type Result struct {
	// Kind labels the statement ("CREATE TYPE", "INSERT", "START FEED",
	// ...).
	Kind string
	// Pos is the statement's byte offset in the script.
	Pos int
	// RowsAffected counts records written by DML (INSERT/UPSERT); 0 for
	// DDL and feed control.
	RowsAffected int
	// Feed is the handle started by a START FEED statement, nil
	// otherwise.
	Feed *Feed
}

// Results is the per-statement outcome of one Execute call.
type Results []Result

// Feeds returns the feed handles started by the script, in statement
// order — one per START FEED.
func (rs Results) Feeds() []*Feed {
	var out []*Feed
	for _, r := range rs {
		if r.Feed != nil {
			out = append(out, r.Feed)
		}
	}
	return out
}

// RowsAffected totals records written across the script's DML
// statements.
func (rs Results) RowsAffected() int {
	n := 0
	for _, r := range rs {
		n += r.RowsAffected
	}
	return n
}

// Execute runs a sequence of semicolon-separated SQL++ statements: DDL
// (CREATE TYPE / DATASET / INDEX / FUNCTION / FEED, CONNECT FEED,
// START/STOP FEED) and DML (INSERT / UPSERT, with $param binding). Use
// Query for SELECTs.
//
// Execution is statement by statement; ctx is checked between
// statements (a statement already evaluating runs to completion). A
// started feed is NOT bound to ctx — feeds outlive the call and are
// stopped via their handle or STOP FEED.
//
// On a mid-script failure Execute returns the Results of every
// statement that already ran — including the Feed handles of feeds the
// script already started, so callers can stop them — alongside a
// *StatementError locating the failure (index, byte offset, snippet,
// and the unwrapped cause).
func (c *Cluster) Execute(ctx context.Context, script string, args ...any) (Results, error) {
	stmts, err := sqlpp.Parse(script)
	if err != nil {
		return nil, err
	}
	params, err := bindArgs(sqlpp.CollectParams(stmts), args)
	if err != nil {
		return nil, err
	}
	var results Results
	for i, stmt := range stmts {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		res, err := c.executeStmt(ctx, stmt, params)
		if err != nil {
			return results, &StatementError{
				Index:   i,
				Pos:     stmt.Pos(),
				Snippet: snippetAt(script, stmt.Pos()),
				Err:     err,
			}
		}
		res.Pos = stmt.Pos()
		results = append(results, res)
	}
	return results, nil
}

// Close shuts the cluster's storage down cleanly: durable datasets
// drain their background flushers, group-commit their WAL tails, and
// close their run files; in-memory datasets close trivially. A durable
// cluster that is closed (or killed) reopens to exactly the committed
// state on the next NewCluster with the same DataDir. The cluster must
// not execute statements or run feeds after Close.
func (c *Cluster) Close() error {
	return c.inner.Close()
}

// Ping is a cheap liveness check: it reports nil while the cluster can
// serve statements, ctx.Err() when the caller's context is done, and
// ErrClusterClosed (wrapped) after Close. The wire server's admin ping
// and the database/sql driver's Pinger are built on it.
func (c *Cluster) Ping(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.inner.Closed() {
		return fmt.Errorf("%w", ErrClusterClosed)
	}
	return nil
}

// MustExecute is Execute that panics on error (setup scripts in
// examples and tests), with context.Background.
func (c *Cluster) MustExecute(script string, args ...any) Results {
	results, err := c.Execute(context.Background(), script, args...)
	if err != nil {
		panic(err)
	}
	return results
}

// queryContext builds a fresh evaluation context carrying the bound
// parameters and the caller's cancellation context. Each statement gets
// its own context so snapshot pinning never lets one statement observe
// pre-script data after an earlier statement wrote.
func (c *Cluster) queryContext(ctx context.Context, params map[string]adm.Value) *query.Context {
	qctx := query.NewContext(c.inner)
	qctx.Params = params
	qctx.Std = ctx
	return qctx
}

func (c *Cluster) executeStmt(ctx context.Context, stmt sqlpp.Statement, params map[string]adm.Value) (Result, error) {
	switch s := stmt.(type) {
	case *sqlpp.CreateType:
		dt, err := adm.NewDatatype(s.Name, s.Open, s.Fields)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: "CREATE TYPE"}, c.inner.CreateDatatype(dt)
	case *sqlpp.CreateDataset:
		_, err := c.inner.CreateDataset(s.Name, s.TypeName, s.PrimaryKey)
		return Result{Kind: "CREATE DATASET"}, err
	case *sqlpp.CreateIndex:
		return Result{Kind: "CREATE INDEX"}, c.inner.CreateIndex(s.Name, s.Dataset, s.Field, s.Kind)
	case *sqlpp.CreateFunction:
		// A stored body outlives this call, so a $param bound now could
		// not be resolved at call time — reject rather than let the
		// reference float and capture whatever a future query binds.
		if ps := sqlpp.CollectExprParams(s.Body); len(ps) > 0 {
			return Result{}, fmt.Errorf("idea: CREATE FUNCTION %s: statement parameter $%s is not allowed in a stored function body (use a function parameter)", s.Name, ps[0])
		}
		return Result{Kind: "CREATE FUNCTION"}, c.inner.CreateFunction(&query.Function{
			Name: s.Name, Params: s.Params, Body: s.Body,
		})
	case *sqlpp.CreateFeed:
		return Result{Kind: "CREATE FEED"}, c.mgr.CreateFeed(s.Name, s.Config)
	case *sqlpp.ConnectFeed:
		return Result{Kind: "CONNECT FEED"}, c.mgr.ConnectFeed(s.Feed, s.Dataset, s.Function)
	case *sqlpp.StartFeed:
		// Feeds run on the cluster's lifetime context, not the Execute
		// ctx: the pipeline outlives this call.
		if _, err := c.mgr.StartFeed(c.ctx, s.Name); err != nil {
			return Result{}, err
		}
		return Result{Kind: "START FEED", Feed: &Feed{name: s.Name, c: c}}, nil
	case *sqlpp.StopFeed:
		return Result{Kind: "STOP FEED"}, c.mgr.StopFeed(s.Name)
	case *sqlpp.Insert:
		kind := "INSERT"
		if s.Upsert {
			kind = "UPSERT"
		}
		n, err := c.executeInsert(ctx, s, params)
		return Result{Kind: kind, RowsAffected: n}, err
	case *sqlpp.Query:
		return Result{}, fmt.Errorf("idea: use Query for SELECT statements")
	}
	return Result{}, fmt.Errorf("idea: unsupported statement %T", stmt)
}

// executeInsert evaluates the source expression (a literal array or a
// query) and inserts/upserts each record, returning the record count.
func (c *Cluster) executeInsert(ctx context.Context, ins *sqlpp.Insert, params map[string]adm.Value) (int, error) {
	ds, ok := c.inner.Dataset(ins.Dataset)
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownDataset, ins.Dataset)
	}
	var src adm.Value
	if v, err := sqlpp.ConstEval(ins.Source); err == nil {
		src = v
	} else {
		v, err := query.Eval(c.queryContext(ctx, params), nil, ins.Source)
		if err != nil {
			return 0, err
		}
		src = v
	}
	records := src.ArrayVal()
	if records == nil && src.Kind() == adm.KindObject {
		records = []adm.Value{src}
	}
	if ins.Upsert {
		// The whole statement lands as one batch per touched partition
		// (one WAL append+commit, one lock, one bulk memtable insert),
		// and validation runs before anything is written.
		if err := ds.UpsertBatch(records); err != nil {
			return 0, err
		}
		return len(records), nil
	}
	for i, rec := range records {
		// INSERT keeps the per-record path: duplicate-key rejection is
		// checked against records earlier in the same statement too.
		if err := ds.Insert(rec); err != nil {
			return i, err
		}
	}
	return len(records), nil
}

// Query runs a SQL++ SELECT and returns a streaming cursor over its
// result. Statement parameters — $name bound by idea.Named args, $1,
// $2, ... bound by positional args — are parsed by sqlpp and bound at
// execution, so query text never needs value splicing. UDFs in the
// query evaluate against current data — the paper's Option 1,
// enrich-during-querying.
//
// The returned Rows pulls rows on demand (see Rows for lifetime and
// cancellation semantics); Close it when done. For small results,
// Rows.Collect materializes a slice.
func (c *Cluster) Query(ctx context.Context, q string, args ...any) (*Rows, error) {
	stmts, err := sqlpp.Parse(q)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("idea: Query expects exactly one statement")
	}
	qs, ok := stmts[0].(*sqlpp.Query)
	if !ok {
		return nil, fmt.Errorf("idea: Query expects a SELECT, got %T (use Execute)", stmts[0])
	}
	params, err := bindArgs(sqlpp.CollectParams(stmts), args)
	if err != nil {
		return nil, err
	}
	cur, err := query.ExecuteSelectCursor(c.queryContext(ctx, params), nil, qs.Sel)
	if err != nil {
		return nil, err
	}
	return &Rows{ctx: ctx, cur: cur}, nil
}

// bindArgs converts the caller's arguments into the engine's parameter
// map and validates the binding set both ways: every referenced $name
// needs an argument, and every argument must be referenced (a stray
// argument is almost always a typo'd name or a forgotten edit).
func bindArgs(referenced []string, args []any) (map[string]adm.Value, error) {
	if len(args) == 0 && len(referenced) == 0 {
		return nil, nil
	}
	params := make(map[string]adm.Value, len(args))
	pos := 0
	for _, a := range args {
		name := ""
		value := a
		if na, isNamed := a.(NamedArg); isNamed {
			name = strings.TrimPrefix(na.Name, "$")
			value = na.Value
			if name == "" {
				return nil, fmt.Errorf("idea: NamedArg with empty name")
			}
		} else {
			pos++
			name = strconv.Itoa(pos)
		}
		if _, dup := params[name]; dup {
			return nil, fmt.Errorf("idea: parameter $%s bound twice", name)
		}
		v, err := valueFromAny(value)
		if err != nil {
			return nil, fmt.Errorf("idea: argument $%s: %w", name, err)
		}
		params[name] = v
	}
	ref := make(map[string]bool, len(referenced))
	for _, n := range referenced {
		ref[n] = true
	}
	for name := range params {
		if !ref[name] {
			return nil, fmt.Errorf("idea: argument $%s is not referenced by the statement", name)
		}
	}
	for _, n := range referenced {
		if _, bound := params[n]; !bound {
			return nil, fmt.Errorf("idea: missing argument for parameter $%s", n)
		}
	}
	return params, nil
}
