package idea

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// queryVals drains a streaming query into a slice for assertion-heavy
// tests.
func queryVals(t *testing.T, c *Cluster, q string, args ...any) []Value {
	t.Helper()
	rows, err := c.Query(context.Background(), q, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	vals, err := rows.Collect()
	if err != nil {
		t.Fatalf("Collect(%q): %v", q, err)
	}
	return vals
}

// newTestCluster returns a fast 2-node cluster.
func newTestCluster(t *testing.T) *Cluster {
	return newTestClusterN(t, 2)
}

// newTestClusterN returns a fast cluster of the requested size.
func newTestClusterN(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Nodes:                   nodes,
		DispatchOverheadPerNode: 1, // effectively zero but exercises the path
		InvokeOverheadPerNode:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const paperSchema = `
CREATE TYPE TweetType AS OPEN {
	id : int64,
	text: string
};
CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
CREATE TYPE WordType AS OPEN { id: int64, country: string, word: string };
CREATE DATASET SensitiveWords(WordType) PRIMARY KEY id;
CREATE FUNCTION tweetSafetyCheck(tweet) {
	LET safety_check_flag = CASE
		EXISTS(SELECT s FROM SensitiveWords s
			WHERE tweet.country = s.country AND contains(tweet.text, s.word))
		WHEN true THEN "Red" ELSE "Green" END
	SELECT tweet.*, safety_check_flag
};
INSERT INTO SensitiveWords ([
	{"id": 1, "country": "US", "word": "bomb"},
	{"id": 2, "country": "FR", "word": "attaque"}
]);
`

func TestExecuteDDLAndInsert(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t)
	results, err := c.Execute(ctx, paperSchema)
	if err != nil {
		t.Fatal(err)
	}
	if got := results.RowsAffected(); got != 2 {
		t.Errorf("RowsAffected = %d, want 2", got)
	}
	n, err := c.DatasetLen("SensitiveWords")
	if err != nil || n != 2 {
		t.Fatalf("SensitiveWords len = %d, %v", n, err)
	}
	// Duplicate type fails cleanly.
	if _, err := c.Execute(ctx, `CREATE TYPE TweetType AS OPEN { id: int64 };`); err == nil {
		t.Error("duplicate type should fail")
	}
	// INSERT duplicate key fails; UPSERT succeeds.
	if _, err := c.Execute(ctx, `INSERT INTO SensitiveWords ([{"id": 1, "country": "US", "word": "x"}]);`); err == nil {
		t.Error("duplicate INSERT should fail")
	}
	if _, err := c.Execute(ctx, `UPSERT INTO SensitiveWords ([{"id": 1, "country": "US", "word": "blast"}]);`); err != nil {
		t.Errorf("UPSERT failed: %v", err)
	}
	rec, found, err := c.Get("SensitiveWords", Int64(1))
	if err != nil || !found || rec.Field("word").Str() != "blast" {
		t.Errorf("Get after upsert = %v %v %v", rec, found, err)
	}
	// Unknown datasets report the typed error.
	if _, err := c.DatasetLen("NoSuch"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("DatasetLen error = %v, want ErrUnknownDataset", err)
	}
}

func TestQueryWithUDF(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(paperSchema)
	c.MustExecute(`INSERT INTO Tweets ([
		{"id": 1, "text": "a bomb threat", "country": "US"},
		{"id": 2, "text": "nice day", "country": "US"},
		{"id": 3, "text": "a bomb scene", "country": "DE"}
	]);`)
	// The paper's Figure 9 analytical query (Option 1), with the flag
	// bound as a named parameter.
	rows := queryVals(t, c, `
		SELECT tweet.country Country, count(tweet) Num
		FROM Tweets tweet
		LET enrichedTweet = tweetSafetyCheck(tweet)[0]
		WHERE enrichedTweet.safety_check_flag = $flag
		GROUP BY tweet.country`, Named("flag", "Red"))
	if len(rows) != 1 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[0].Field("Country").Str() != "US" || rows[0].Field("Num").Int() != 1 {
		t.Errorf("row = %s", rows[0])
	}
	// Query rejects non-SELECT.
	if _, err := c.Query(context.Background(), `CREATE TYPE X AS OPEN { id: int64 };`); err == nil {
		t.Error("Query should reject DDL")
	}
}

func TestEndToEndFeedWithEnrichment(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(paperSchema)
	c.MustExecute(`
		CREATE FEED TweetFeed WITH {
			"adapter-name": "channel_adapter",
			"type-name": "TweetType",
			"batch-size": 50
		};
		CONNECT FEED TweetFeed TO DATASET EnrichedTweets APPLY FUNCTION tweetSafetyCheck;
	`)
	var records [][]byte
	for i := 0; i < 500; i++ {
		text := "peaceful message"
		if i%10 == 0 {
			text = "bomb alert"
		}
		records = append(records, []byte(fmt.Sprintf(
			`{"id":%d,"text":"%s","country":"US"}`, i, text)))
	}
	if err := c.SetFeedSource("TweetFeed", func(int) (FeedSource, error) {
		return &RecordsSource{Records: records}, nil
	}); err != nil {
		t.Fatal(err)
	}
	feeds := c.MustExecute(`START FEED TweetFeed;`).Feeds()
	if len(feeds) != 1 {
		t.Fatalf("feeds = %d", len(feeds))
	}
	if err := feeds[0].Wait(); err != nil {
		t.Fatal(err)
	}
	stats, err := feeds[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stored != 500 || stats.Ingested != 500 {
		t.Errorf("stats: ingested=%d stored=%d", stats.Ingested, stats.Stored)
	}
	if stats.Invocations < 5 {
		t.Errorf("invocations = %d", stats.Invocations)
	}
	if !stats.Running {
		t.Error("feed should report running before stop")
	}
	red := queryVals(t, c, `SELECT VALUE count(*) FROM EnrichedTweets e WHERE e.safety_check_flag = "Red"`)
	if red[0].Int() != 50 {
		t.Errorf("red tweets = %d, want 50", red[0].Int())
	}
}

func TestNativeUDFViaPublicAPI(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET Out(T) PRIMARY KEY id;
		CREATE FEED F WITH { "adapter-name": "channel_adapter" };
		CONNECT FEED F TO DATASET Out APPLY FUNCTION marker;
	`)
	c.PutResource("tag", []byte("alpha\n"))
	err := c.RegisterNativeUDF("marker", true, func() NativeUDF {
		return &markerUDF{c: c}
	})
	if err != nil {
		t.Fatal(err)
	}
	records := make([][]byte, 200)
	for i := range records {
		records[i] = []byte(fmt.Sprintf(`{"id":%d}`, i))
	}
	if err := c.SetFeedSource("F", func(int) (FeedSource, error) {
		return &RecordsSource{Records: records}, nil
	}); err != nil {
		t.Fatal(err)
	}
	feeds := c.MustExecute(`START FEED F;`).Feeds()
	if err := feeds[0].Wait(); err != nil {
		t.Fatal(err)
	}
	rec, found, _ := c.Get("Out", Int64(7))
	if !found || rec.Field("tag").Str() != "alpha" {
		t.Errorf("native UDF output = %s", rec)
	}
}

type markerUDF struct {
	c   *Cluster
	tag string
}

func (m *markerUDF) Initialize(int) error {
	lines, ok := m.c.Resource("tag")
	if !ok || len(lines) == 0 {
		return fmt.Errorf("tag resource missing")
	}
	m.tag = lines[0]
	return nil
}

func (m *markerUDF) Evaluate(rec Value) (Value, error) {
	return Obj("id", rec.Field("id"), "tag", Str(m.tag)), nil
}

func TestLibraryFunction(t *testing.T) {
	c := newTestCluster(t)
	c.RegisterLibraryFunction("strlib", "shout", func(args []Value) (Value, error) {
		return Str(strings.ToUpper(args[0].Str()) + "!"), nil
	})
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64, name: string };
		CREATE DATASET People(T) PRIMARY KEY id;
		INSERT INTO People ([{"id": 1, "name": "ada"}]);
	`)
	rows := queryVals(t, c, `SELECT VALUE strlib#shout(p.name) FROM People p`)
	if rows[0].Str() != "ADA!" {
		t.Errorf("got %s", rows[0])
	}
}

func TestValueConversions(t *testing.T) {
	v := MustJSON(`{"a": 1, "b": [true, null, 2.5], "c": {"d": "x"}}`)
	if v.Kind() != "object" || v.Len() != 3 {
		t.Errorf("kind/len = %s/%d", v.Kind(), v.Len())
	}
	if v.Field("a").Int() != 1 || v.Field("b").Index(2).Float() != 2.5 {
		t.Error("accessors failed")
	}
	if !v.Field("b").Index(1).IsNull() || !v.Field("zz").IsMissing() {
		t.Error("null/missing detection failed")
	}
	native, ok := v.Native().(map[string]any)
	if !ok || native["c"].(map[string]any)["d"] != "x" {
		t.Errorf("Native = %#v", v.Native())
	}
	round, err := FromJSON(v.JSON())
	if err != nil || round.Field("a").Int() != 1 {
		t.Error("JSON round trip failed")
	}
	// Builders.
	at := time.Date(2019, 8, 23, 0, 0, 0, 0, time.UTC)
	obj := Obj("s", "str", "i", 42, "f", 1.5, "b", true, "t", at, "n", nil,
		"arr", Arr(1, 2), "pt", PointVal(1, 2))
	if obj.Field("i").Int() != 42 || obj.Field("t").Time() != at {
		t.Errorf("Obj builder = %s", obj)
	}
	if obj.Field("arr").Len() != 2 || obj.Field("pt").Kind() != "point" {
		t.Errorf("Obj builder = %s", obj)
	}
	if BoolVal(true).Bool() != true || Float64(2.5).Float() != 2.5 {
		t.Error("scalar builders failed")
	}
	elems := Arr("x", "y").Elems()
	if len(elems) != 2 || elems[1].Str() != "y" {
		t.Error("Elems failed")
	}
}

func TestCallFunctionDirectly(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(paperSchema)
	out, err := c.CallFunction("tweetSafetyCheck",
		MustJSON(`{"id": 9, "text": "bomb", "country": "US"}`))
	if err != nil {
		t.Fatal(err)
	}
	if out.Index(0).Field("safety_check_flag").Str() != "Red" {
		t.Errorf("CallFunction = %s", out)
	}
	if _, err := c.CallFunction("nosuch"); err == nil {
		t.Error("unknown function should fail")
	}
}

// slowUDF delays every record, congesting a deliberately tiny intake
// ring so congestion policies engage.
type slowUDF struct{ delay time.Duration }

func (u *slowUDF) Initialize(int) error { return nil }
func (u *slowUDF) Evaluate(rec Value) (Value, error) {
	time.Sleep(u.delay)
	return rec, nil
}

// newCongestedCluster returns a cluster whose intake rings hold only two
// frames, so a slow consumer congests them immediately.
func newCongestedCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Nodes:                   nodes,
		DispatchOverheadPerNode: 1,
		InvokeOverheadPerNode:   1,
		HolderCapacity:          2,
		FrameCapacity:           8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFeedCongestionPoliciesViaPublicAPI(t *testing.T) {
	const n = 1200
	for _, policy := range []string{"spill", "shed"} {
		t.Run(policy, func(t *testing.T) {
			c := newCongestedCluster(t, 2)
			c.MustExecute(fmt.Sprintf(`
				CREATE TYPE ET AS OPEN { id: int64 };
				CREATE DATASET Events(ET) PRIMARY KEY id;
				CREATE FEED EventFeed WITH {
					"adapter-name": "channel_adapter",
					"batch-size": 32,
					"congestion-policy": %q,
					"checkpoint-every": 1
				};
				CONNECT FEED EventFeed TO DATASET Events APPLY FUNCTION slow;
			`, policy))
			if err := c.RegisterNativeUDF("slow", true, func() NativeUDF {
				return &slowUDF{delay: 30 * time.Microsecond}
			}); err != nil {
				t.Fatal(err)
			}
			records := make([][]byte, n)
			for i := range records {
				records[i] = []byte(fmt.Sprintf(`{"id":%d}`, i))
			}
			if err := c.SetFeedSource("EventFeed", func(int) (FeedSource, error) {
				return &RecordsSource{Records: records}, nil
			}); err != nil {
				t.Fatal(err)
			}
			feed := c.MustExecute(`START FEED EventFeed;`).Feeds()[0]
			if err := feed.Wait(); err != nil {
				t.Fatal(err)
			}
			stats, err := feed.Stats()
			if err != nil {
				t.Fatal(err)
			}
			stored, _ := c.DatasetLen("Events")
			switch policy {
			case "spill":
				// Loss-free: everything lands despite congestion.
				if stats.Stored != n || stored != n {
					t.Errorf("spill: stored=%d dataset=%d, want %d", stats.Stored, stored, n)
				}
				if stats.SpilledFrames == 0 || stats.SpilledRecords == 0 {
					t.Errorf("spill: no spill activity (frames=%d records=%d)",
						stats.SpilledFrames, stats.SpilledRecords)
				}
				if stats.ShedFrames != 0 || stats.SampledFrames != 0 {
					t.Errorf("spill policy dropped data: shed=%d sampled=%d",
						stats.ShedFrames, stats.SampledFrames)
				}
			case "shed":
				// Exact loss accounting: kept + dropped covers the stream.
				if stats.Stored+stats.ShedRecords != n {
					t.Errorf("shed: stored=%d + shed=%d != %d",
						stats.Stored, stats.ShedRecords, n)
				}
				if stats.ShedRecords == 0 {
					t.Error("shed: congestion never engaged; tighten the test")
				}
			}
			// The final checkpoint acknowledges the whole source range —
			// shed frames included (dropping is a delivery decision).
			if stats.LastCheckpoint != n {
				t.Errorf("LastCheckpoint = %d, want %d", stats.LastCheckpoint, n)
			}
			if stats.BufferedFrames != 0 || stats.SpillBacklog != 0 {
				t.Errorf("drained feed still buffering: frames=%d backlog=%d",
					stats.BufferedFrames, stats.SpillBacklog)
			}
		})
	}
}

func TestFeedOverloadedViaPublicAPI(t *testing.T) {
	c := newCongestedCluster(t, 1)
	c.MustExecute(`
		CREATE TYPE ET AS OPEN { id: int64 };
		CREATE DATASET Events(ET) PRIMARY KEY id;
		CREATE FEED EventFeed WITH {
			"adapter-name": "channel_adapter",
			"batch-size": 16,
			"congestion-policy": "spill",
			"max-spilled-frames": 2
		};
		CONNECT FEED EventFeed TO DATASET Events APPLY FUNCTION slow;
	`)
	if err := c.RegisterNativeUDF("slow", true, func() NativeUDF {
		return &slowUDF{delay: 2 * time.Millisecond}
	}); err != nil {
		t.Fatal(err)
	}
	records := make([][]byte, 800)
	for i := range records {
		records[i] = []byte(fmt.Sprintf(`{"id":%d}`, i))
	}
	if err := c.SetFeedSource("EventFeed", func(int) (FeedSource, error) {
		return &RecordsSource{Records: records}, nil
	}); err != nil {
		t.Fatal(err)
	}
	feed := c.MustExecute(`START FEED EventFeed;`).Feeds()[0]
	if err := feed.Wait(); !errors.Is(err, ErrFeedOverloaded) {
		t.Fatalf("Wait = %v, want ErrFeedOverloaded", err)
	}
}

// pacedSource is a resumable source that emits on a fixed cadence so a
// mid-stream KillNode reliably lands while ingestion is in flight.
type pacedSource struct {
	records [][]byte
	delay   time.Duration
}

func (s *pacedSource) Run(ctx context.Context, emit func([]byte) error) error {
	return s.RunFrom(ctx, 0, func(_ uint64, rec []byte) error { return emit(rec) })
}

func (s *pacedSource) RunFrom(ctx context.Context, from uint64, emit func(uint64, []byte) error) error {
	for i := int(from); i < len(s.records); i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(s.delay)
		if err := emit(uint64(i+1), s.records[i]); err != nil {
			return err
		}
	}
	return nil
}

func TestKillNodeFailoverViaPublicAPI(t *testing.T) {
	const n = 1500
	c := newTestClusterN(t, 3)
	c.MustExecute(`
		CREATE TYPE ET AS OPEN { id: int64 };
		CREATE DATASET Events(ET) PRIMARY KEY id;
		CREATE FEED EventFeed WITH {
			"adapter-name": "channel_adapter",
			"batch-size": 64,
			"checkpoint-every": 1
		};
		CONNECT FEED EventFeed TO DATASET Events;
	`)
	records := make([][]byte, n)
	for i := range records {
		records[i] = []byte(fmt.Sprintf(`{"id":%d}`, i))
	}
	if err := c.SetFeedSource("EventFeed", func(int) (FeedSource, error) {
		return &pacedSource{records: records, delay: 100 * time.Microsecond}, nil
	}); err != nil {
		t.Fatal(err)
	}
	feed := c.MustExecute(`START FEED EventFeed;`).Feeds()[0]

	// Kill a node once ingestion is demonstrably under way.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if got, _ := c.DatasetLen("Events"); got >= 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("feed never reached 100 stored records")
		}
		time.Sleep(time.Millisecond)
	}
	c.KillNode(2)
	if c.NodeAlive(2) {
		t.Fatal("killed node reports alive")
	}

	// The doomed pipeline's Wait surfaces ErrPartitionDown; the manager
	// restarts on survivors, so by-name Wait eventually resolves the
	// successor and returns nil. ErrFeedNotRunning covers the brief
	// re-registration window mid-failover.
	for {
		err := feed.Wait()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrPartitionDown) && !errors.Is(err, ErrFeedNotRunning) {
			t.Fatalf("Wait = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("feed never finished after failover: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// At-least-once + idempotent upserts: the survivors replay from the
	// checkpoint and the dataset converges on exactly the source stream.
	for {
		if got, _ := c.DatasetLen("Events"); got == n {
			break
		}
		if time.Now().After(deadline) {
			got, _ := c.DatasetLen("Events")
			t.Fatalf("dataset len = %d, want %d", got, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats, err := feed.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumptions < 1 {
		t.Errorf("Resumptions = %d, want >= 1", stats.Resumptions)
	}
	if stats.LastCheckpoint != n {
		t.Errorf("LastCheckpoint = %d, want %d", stats.LastCheckpoint, n)
	}
}

func TestStopFeedViaExecute(t *testing.T) {
	c := newTestCluster(t)
	c.MustExecute(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
		CREATE FEED F WITH { "adapter-name": "channel_adapter" };
		CONNECT FEED F TO DATASET D;
	`)
	ch := make(chan []byte, 16)
	if err := c.SetFeedSource("F", func(int) (FeedSource, error) {
		return &ChannelSource{C: ch}, nil
	}); err != nil {
		t.Fatal(err)
	}
	c.MustExecute(`START FEED F;`)
	for i := 0; i < 200; i++ {
		ch <- []byte(fmt.Sprintf(`{"id":%d}`, i))
	}
	// Wait for some arrivals before stopping.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n, _ := c.DatasetLen("D"); n > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Execute(context.Background(), `STOP FEED F;`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(context.Background(), `STOP FEED F;`); err == nil {
		t.Error("stopping a stopped feed should fail")
	}
}
