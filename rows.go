package idea

import (
	"context"
	"iter"

	"github.com/ideadb/idea/internal/query"
)

// Rows is a pull cursor over a SELECT's result: the streaming face of
// Cluster.Query. Rows follows the database/sql idiom —
//
//	rows, err := c.Query(ctx, `SELECT VALUE t.id FROM Tweets t WHERE t.score > $min LIMIT 10`, 5)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		use(rows.Value())
//	}
//	if err := rows.Err(); err != nil { ... }
//
// — or, with Go 1.23 range-over-func, All:
//
//	for v, err := range rows.All() { ... }
//
// Execution is lazy: each Next pulls one row through the engine's
// operator pipeline, which draws records straight from the storage
// layer's scan cursors. A query abandoned after k rows has touched only
// k rows' worth of data; `SELECT ... LIMIT k` over an n-record dataset
// costs O(k) memory, not O(n). Blocking clauses (GROUP BY, aggregates,
// ORDER BY, DISTINCT) inherently buffer before the first row; Rows
// then streams the buffered result.
//
// Lifetime: the snapshots of every dataset named in FROM position are
// pinned before Query returns, so a long-lived Rows observes the data
// as of the call even while feeds keep ingesting (the paper's
// record-level consistency; a dataset touched only inside a subquery
// or UDF pins at its first access during iteration).
// Yielded Values are safe to retain after Close — result rows are
// either freshly projected objects or records whose backing memory
// storage retains; they never alias recycled frame arenas (see
// docs/ARCHITECTURE.md, "Rows lifetime").
//
// Rows is not safe for concurrent use.
type Rows struct {
	ctx  context.Context
	cur  *query.RowCursor
	val  Value
	err  error
	done bool
}

// Next advances to the next row, reporting whether one is available.
// It returns false at exhaustion, on error (see Err), or after the
// query's context is canceled.
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			r.err = err
			r.close()
			return false
		}
	}
	v, ok, err := r.cur.Next()
	if err != nil {
		r.err = err
		r.close()
		return false
	}
	if !ok {
		r.close()
		return false
	}
	r.val = Value{v}
	return true
}

// Value returns the row the last successful Next produced.
func (r *Rows) Value() Value { return r.val }

// Err returns the error that terminated iteration, if any. It is nil
// after a clean exhaustion; Close never clears it, so the idiomatic
// post-loop check works with a deferred Close.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. It is idempotent and safe after
// exhaustion; iterating past Close yields no rows. Close never
// overwrites an earlier iteration error.
func (r *Rows) Close() error {
	r.close()
	return nil
}

func (r *Rows) close() {
	if !r.done {
		r.done = true
		r.cur.Close()
	}
}

// All adapts the cursor to a Go 1.23 iterator. The sequence yields
// (value, nil) per row and, if iteration fails, one final (zero, err)
// pair. The cursor is closed when the loop ends, including on break.
func (r *Rows) All() iter.Seq2[Value, error] {
	return func(yield func(Value, error) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.val, nil) {
				return
			}
		}
		if r.err != nil {
			yield(Value{}, r.err)
		}
	}
}

// Collect drains the cursor into a slice and closes it — the
// materializing convenience for small results (and the migration path
// from the old Query signature).
func (r *Rows) Collect() ([]Value, error) {
	defer r.Close()
	var out []Value
	for r.Next() {
		out = append(out, r.val)
	}
	return out, r.err
}
