package idea

import (
	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/bridge"
)

// The wire server (internal/server) drives the cluster through this
// public API, but speaks adm.Value on the wire. These hooks let it box
// and unbox Values without the package exporting engine internals; see
// internal/bridge.
func init() {
	bridge.WrapValue = func(v adm.Value) any { return Value{v} }
	bridge.UnwrapValue = func(x any) (adm.Value, bool) {
		v, ok := x.(Value)
		if !ok {
			return adm.Value{}, false
		}
		return v.v, true
	}
}
