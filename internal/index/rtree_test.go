package index

import (
	"math/rand"
	"testing"

	"github.com/ideadb/idea/internal/spatial"
)

func pt(x, y float64) spatial.Rect { return spatial.BoundsPoint(spatial.Point{X: x, Y: y}) }

func TestRTreeInsertSearchSmall(t *testing.T) {
	rt := NewRTree()
	rt.Insert(pt(1, 1), "a")
	rt.Insert(pt(5, 5), "b")
	rt.Insert(pt(9, 9), "c")
	if rt.Len() != 3 {
		t.Fatalf("Len = %d", rt.Len())
	}
	got := rt.SearchAll(spatial.NewRect(0, 0, 6, 6))
	if len(got) != 2 {
		t.Fatalf("SearchAll found %d entries, want 2", len(got))
	}
	names := map[any]bool{}
	for _, e := range got {
		names[e.Data] = true
	}
	if !names["a"] || !names["b"] {
		t.Errorf("wrong entries: %v", names)
	}
}

func TestRTreeSearchEmpty(t *testing.T) {
	rt := NewRTree()
	if got := rt.SearchAll(spatial.NewRect(0, 0, 100, 100)); len(got) != 0 {
		t.Errorf("empty tree returned %d entries", len(got))
	}
}

func TestRTreeMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	rt := NewRTree()
	type rec struct {
		rect spatial.Rect
		id   int
	}
	var all []rec
	const n = 3000
	for i := 0; i < n; i++ {
		var rc spatial.Rect
		if i%3 == 0 {
			// Small boxes.
			x, y := r.Float64()*100, r.Float64()*100
			rc = spatial.NewRect(x, y, x+r.Float64()*2, y+r.Float64()*2)
		} else {
			rc = pt(r.Float64()*100, r.Float64()*100)
		}
		rt.Insert(rc, i)
		all = append(all, rec{rc, i})
	}
	if rt.Len() != n {
		t.Fatalf("Len = %d", rt.Len())
	}
	for q := 0; q < 200; q++ {
		x, y := r.Float64()*100, r.Float64()*100
		query := spatial.NewRect(x, y, x+r.Float64()*10, y+r.Float64()*10)
		want := map[int]bool{}
		for _, rec := range all {
			if rec.rect.Intersects(query) {
				want[rec.id] = true
			}
		}
		got := map[int]bool{}
		rt.Search(query, func(e RTreeEntry) bool {
			got[e.Data.(int)] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d entries, want %d", q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %d: missing id %d", q, id)
			}
		}
	}
}

func TestRTreeEarlyTermination(t *testing.T) {
	rt := NewRTree()
	for i := 0; i < 100; i++ {
		rt.Insert(pt(float64(i%10), float64(i/10)), i)
	}
	count := 0
	rt.Search(spatial.NewRect(-1, -1, 11, 11), func(e RTreeEntry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early termination visited %d", count)
	}
}

func TestRTreeDelete(t *testing.T) {
	rt := NewRTree()
	for i := 0; i < 500; i++ {
		rt.Insert(pt(float64(i%25), float64(i/25)), i)
	}
	// Delete every even id.
	for i := 0; i < 500; i += 2 {
		ok := rt.Delete(pt(float64(i%25), float64(i/25)), func(d any) bool { return d.(int) == i })
		if !ok {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if rt.Len() != 250 {
		t.Fatalf("Len = %d, want 250", rt.Len())
	}
	got := rt.SearchAll(spatial.NewRect(-1, -1, 100, 100))
	if len(got) != 250 {
		t.Fatalf("SearchAll found %d", len(got))
	}
	for _, e := range got {
		if e.Data.(int)%2 == 0 {
			t.Fatalf("deleted entry %v still present", e.Data)
		}
	}
	// Deleting an absent entry reports false.
	if rt.Delete(pt(0, 0), func(d any) bool { return d.(int) == 0 }) {
		t.Error("second delete of same entry should miss")
	}
}

func TestRTreeDuplicateRects(t *testing.T) {
	rt := NewRTree()
	for i := 0; i < 50; i++ {
		rt.Insert(pt(1, 1), i) // all identical
	}
	got := rt.SearchAll(pt(1, 1))
	if len(got) != 50 {
		t.Fatalf("found %d of 50 duplicates", len(got))
	}
	// Delete a specific one by payload.
	if !rt.Delete(pt(1, 1), func(d any) bool { return d.(int) == 33 }) {
		t.Fatal("targeted delete failed")
	}
	for _, e := range rt.SearchAll(pt(1, 1)) {
		if e.Data.(int) == 33 {
			t.Fatal("entry 33 still present")
		}
	}
}

func TestRTreeCircleQueryPattern(t *testing.T) {
	// The enrichment planner queries the tree with a circle's bounding
	// box and then applies the exact predicate; verify that pattern.
	rt := NewRTree()
	r := rand.New(rand.NewSource(43))
	pts := make([]spatial.Point, 2000)
	for i := range pts {
		pts[i] = spatial.Point{X: r.Float64() * 50, Y: r.Float64() * 50}
		rt.Insert(spatial.BoundsPoint(pts[i]), i)
	}
	circle := spatial.Circle{Center: spatial.Point{X: 25, Y: 25}, R: 3}
	want := 0
	for _, p := range pts {
		if circle.ContainsPoint(p) {
			want++
		}
	}
	got := 0
	rt.Search(circle.Bounds(), func(e RTreeEntry) bool {
		i := e.Data.(int)
		if circle.ContainsPoint(pts[i]) {
			got++
		}
		return true
	})
	if got != want {
		t.Errorf("circle query found %d, want %d", got, want)
	}
}

func BenchmarkRTreeInsert(b *testing.B) {
	rt := NewRTree()
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Insert(pt(r.Float64()*1000, r.Float64()*1000), i)
	}
}

func BenchmarkRTreeSearch(b *testing.B) {
	rt := NewRTree()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		rt.Insert(pt(r.Float64()*1000, r.Float64()*1000), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, y := r.Float64()*1000, r.Float64()*1000
		rt.Search(spatial.NewRect(x, y, x+10, y+10), func(RTreeEntry) bool { return true })
	}
}
