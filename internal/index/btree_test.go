package index

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

func TestBTreeBasicPutGet(t *testing.T) {
	bt := NewBTree()
	if _, ok := bt.Get(adm.Int(1)); ok {
		t.Error("empty tree should miss")
	}
	if replaced := bt.Put(adm.Int(1), adm.String("one")); replaced {
		t.Error("fresh Put should not report replacement")
	}
	if v, ok := bt.Get(adm.Int(1)); !ok || v.StringVal() != "one" {
		t.Errorf("Get = %v,%v", v, ok)
	}
	if replaced := bt.Put(adm.Int(1), adm.String("uno")); !replaced {
		t.Error("second Put should replace")
	}
	if v, _ := bt.Get(adm.Int(1)); v.StringVal() != "uno" {
		t.Error("replacement lost")
	}
	if bt.Len() != 1 {
		t.Errorf("Len = %d, want 1", bt.Len())
	}
}

func TestBTreeManyKeysOrdered(t *testing.T) {
	bt := NewBTree()
	const n = 5000
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, k := range perm {
		bt.Put(adm.Int(int64(k)), adm.Int(int64(k*10)))
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d, want %d", bt.Len(), n)
	}
	prev := int64(-1)
	count := 0
	bt.Ascend(func(it Item) bool {
		k := it.Key.IntVal()
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if it.Val.IntVal() != k*10 {
			t.Fatalf("wrong value for %d", k)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("Ascend visited %d, want %d", count, n)
	}
	for i := 0; i < n; i += 37 {
		if v, ok := bt.Get(adm.Int(int64(i))); !ok || v.IntVal() != int64(i*10) {
			t.Fatalf("Get(%d) = %v,%v", i, v, ok)
		}
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree()
	const n = 3000
	for i := 0; i < n; i++ {
		bt.Put(adm.Int(int64(i)), adm.Int(int64(i)))
	}
	r := rand.New(rand.NewSource(17))
	alive := map[int64]bool{}
	for i := 0; i < n; i++ {
		alive[int64(i)] = true
	}
	for _, k := range r.Perm(n)[:n/2] {
		if !bt.Delete(adm.Int(int64(k))) {
			t.Fatalf("Delete(%d) missed", k)
		}
		delete(alive, int64(k))
	}
	if bt.Delete(adm.Int(int64(n + 100))) {
		t.Error("Delete of absent key should report false")
	}
	if bt.Len() != len(alive) {
		t.Fatalf("Len = %d, want %d", bt.Len(), len(alive))
	}
	for k := int64(0); k < n; k++ {
		_, ok := bt.Get(adm.Int(k))
		if ok != alive[k] {
			t.Fatalf("Get(%d) presence = %v, want %v", k, ok, alive[k])
		}
	}
	// Order must survive deletions.
	prev := int64(-1)
	bt.Ascend(func(it Item) bool {
		if it.Key.IntVal() <= prev {
			t.Fatalf("order violated after deletes")
		}
		prev = it.Key.IntVal()
		return true
	})
}

func TestBTreeDeleteAll(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 500; i++ {
		bt.Put(adm.Int(int64(i)), adm.Null())
	}
	for i := 499; i >= 0; i-- {
		if !bt.Delete(adm.Int(int64(i))) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if bt.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", bt.Len())
	}
	if _, ok := bt.Min(); ok {
		t.Error("Min on empty tree")
	}
	// Tree must be reusable after emptying.
	bt.Put(adm.Int(1), adm.Null())
	if bt.Len() != 1 {
		t.Error("reuse after emptying failed")
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Put(adm.Int(int64(i*2)), adm.Int(int64(i))) // even keys 0..198
	}
	var got []int64
	bt.AscendRange(adm.Int(10), adm.Int(20), func(it Item) bool {
		got = append(got, it.Key.IntVal())
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Bounds not present in the tree.
	got = got[:0]
	bt.AscendRange(adm.Int(11), adm.Int(15), func(it Item) bool {
		got = append(got, it.Key.IntVal())
		return true
	})
	if len(got) != 2 || got[0] != 12 || got[1] != 14 {
		t.Fatalf("open range = %v", got)
	}
	// Early termination.
	count := 0
	bt.AscendRange(adm.Int(0), adm.Int(1000), func(it Item) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBTreeMinMax(t *testing.T) {
	bt := NewBTree()
	for _, k := range []int64{5, 1, 9, 3} {
		bt.Put(adm.Int(k), adm.Null())
	}
	if mn, ok := bt.Min(); !ok || mn.Key.IntVal() != 1 {
		t.Errorf("Min = %v", mn)
	}
	if mx, ok := bt.Max(); !ok || mx.Key.IntVal() != 9 {
		t.Errorf("Max = %v", mx)
	}
}

func TestBTreeStringKeys(t *testing.T) {
	bt := NewBTree()
	words := []string{"US", "FR", "DE", "JP", "BR", "IN", "CN"}
	for i, w := range words {
		bt.Put(adm.String(w), adm.Int(int64(i)))
	}
	if v, ok := bt.Get(adm.String("JP")); !ok || v.IntVal() != 3 {
		t.Errorf("string key lookup failed: %v %v", v, ok)
	}
	items := bt.Items()
	for i := 1; i < len(items); i++ {
		if !adm.Less(items[i-1].Key, items[i].Key) {
			t.Fatal("string keys out of order")
		}
	}
}

// Property test: the tree must agree with a reference map under a random
// workload of puts, deletes, and gets.
func TestBTreeMatchesMapModel(t *testing.T) {
	bt := NewBTree()
	model := map[int64]int64{}
	r := rand.New(rand.NewSource(99))
	for op := 0; op < 20000; op++ {
		k := r.Int63n(800)
		switch r.Intn(3) {
		case 0:
			v := r.Int63()
			bt.Put(adm.Int(k), adm.Int(v))
			model[k] = v
		case 1:
			_, inModel := model[k]
			if bt.Delete(adm.Int(k)) != inModel {
				t.Fatalf("op %d: delete mismatch for %d", op, k)
			}
			delete(model, k)
		default:
			v, ok := bt.Get(adm.Int(k))
			mv, mok := model[k]
			if ok != mok || (ok && v.IntVal() != mv) {
				t.Fatalf("op %d: get mismatch for %d", op, k)
			}
		}
		if bt.Len() != len(model) {
			t.Fatalf("op %d: len mismatch %d vs %d", op, bt.Len(), len(model))
		}
	}
}

// checkInvariants walks the whole tree verifying the B-tree shape:
// sorted items, uniform leaf depth, fill bounds on every non-root node,
// child counts, and separator ordering.
func checkInvariants(t *testing.T, bt *BTree) {
	t.Helper()
	if bt.root == nil {
		if bt.size != 0 {
			t.Fatalf("nil root with size %d", bt.size)
		}
		return
	}
	leafDepth := -1
	counted := 0
	var walk func(n *btreeNode, depth int, min, max *adm.Value)
	walk = func(n *btreeNode, depth int, min, max *adm.Value) {
		if depth > 0 && (len(n.items) < minItems || len(n.items) > maxItems) {
			t.Fatalf("node at depth %d has %d items (want %d..%d)", depth, len(n.items), minItems, maxItems)
		}
		if depth == 0 && len(n.items) > maxItems {
			t.Fatalf("root has %d items (max %d)", len(n.items), maxItems)
		}
		counted += len(n.items)
		for i, it := range n.items {
			if i > 0 && !adm.Less(n.items[i-1].Key, it.Key) {
				t.Fatalf("items out of order at depth %d", depth)
			}
			if min != nil && !adm.Less(*min, it.Key) {
				t.Fatalf("item below subtree lower bound at depth %d", depth)
			}
			if max != nil && !adm.Less(it.Key, *max) {
				t.Fatalf("item above subtree upper bound at depth %d", depth)
			}
		}
		if n.leaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf at depth %d, expected %d", depth, leafDepth)
			}
			return
		}
		if len(n.children) != len(n.items)+1 {
			t.Fatalf("node with %d items has %d children", len(n.items), len(n.children))
		}
		for i, c := range n.children {
			lo, hi := min, max
			if i > 0 {
				lo = &n.items[i-1].Key
			}
			if i < len(n.items) {
				hi = &n.items[i].Key
			}
			walk(c, depth+1, lo, hi)
		}
	}
	walk(bt.root, 0, nil, nil)
	if counted != bt.size {
		t.Fatalf("size = %d but tree holds %d items", bt.size, counted)
	}
}

func sortedRun(keys []int64, valOffset int64) []Item {
	run := make([]Item, len(keys))
	for i, k := range keys {
		run[i] = Item{adm.Int(k), adm.Int(k + valOffset)}
	}
	return run
}

func TestBTreePutBatchEmptyTree(t *testing.T) {
	bt := NewBTree()
	keys := make([]int64, 5000)
	for i := range keys {
		keys[i] = int64(i)
	}
	newCount := 0
	bt.PutBatch(sortedRun(keys, 1000), func(Item) { newCount++ })
	if newCount != len(keys) {
		t.Fatalf("onNew fired %d times, want %d", newCount, len(keys))
	}
	if bt.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", bt.Len(), len(keys))
	}
	checkInvariants(t, bt)
	for _, k := range []int64{0, 1, 2500, 4998, 4999} {
		if v, ok := bt.Get(adm.Int(k)); !ok || v.IntVal() != k+1000 {
			t.Fatalf("Get(%d) = %v,%v", k, v, ok)
		}
	}
}

func TestBTreePutBatchReplaces(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 100; i++ {
		bt.Put(adm.Int(i), adm.Int(i))
	}
	// Half the batch replaces, half is new; onNew must only see the new.
	keys := make([]int64, 0, 100)
	for i := int64(50); i < 150; i++ {
		keys = append(keys, i)
	}
	newCount := 0
	bt.PutBatch(sortedRun(keys, 7000), func(it Item) {
		newCount++
		if it.Key.IntVal() < 100 {
			t.Fatalf("onNew fired for replaced key %v", it.Key)
		}
	})
	if newCount != 50 {
		t.Fatalf("onNew fired %d times, want 50", newCount)
	}
	if bt.Len() != 150 {
		t.Fatalf("Len = %d, want 150", bt.Len())
	}
	checkInvariants(t, bt)
	for i := int64(0); i < 150; i++ {
		want := i
		if i >= 50 {
			want = i + 7000
		}
		if v, ok := bt.Get(adm.Int(i)); !ok || v.IntVal() != want {
			t.Fatalf("Get(%d) = %v,%v want %d", i, v, ok, want)
		}
	}
}

// Property test: interleaved batches, point puts, and deletes must agree
// with a reference map, and the tree shape must stay legal after every
// batch.
func TestBTreePutBatchMatchesMapModel(t *testing.T) {
	bt := NewBTree()
	model := map[int64]int64{}
	r := rand.New(rand.NewSource(41))
	for round := 0; round < 300; round++ {
		switch r.Intn(4) {
		case 0, 1: // sorted batch of random size at a random offset
			n := 1 + r.Intn(400)
			base := r.Int63n(3000)
			seen := map[int64]bool{}
			keys := make([]int64, 0, n)
			for len(keys) < n {
				k := base + r.Int63n(600)
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
			slices.Sort(keys)
			val := r.Int63n(1 << 30)
			run := sortedRun(keys, val)
			bt.PutBatch(run, nil)
			for _, k := range keys {
				model[k] = k + val
			}
		case 2: // point put
			k, v := r.Int63n(3600), r.Int63()
			bt.Put(adm.Int(k), adm.Int(v))
			model[k] = v
		default: // delete
			k := r.Int63n(3600)
			_, inModel := model[k]
			if bt.Delete(adm.Int(k)) != inModel {
				t.Fatalf("round %d: delete mismatch for %d", round, k)
			}
			delete(model, k)
		}
		if bt.Len() != len(model) {
			t.Fatalf("round %d: len %d vs model %d", round, bt.Len(), len(model))
		}
	}
	checkInvariants(t, bt)
	for k, mv := range model {
		if v, ok := bt.Get(adm.Int(k)); !ok || v.IntVal() != mv {
			t.Fatalf("Get(%d) = %v,%v want %d", k, v, ok, mv)
		}
	}
	prev := int64(-1)
	bt.Ascend(func(it Item) bool {
		if it.Key.IntVal() <= prev {
			t.Fatal("order violated after batches")
		}
		prev = it.Key.IntVal()
		return true
	})
}

func BenchmarkBTreePut(b *testing.B) {
	bt := NewBTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bt.Put(adm.Int(int64(i)), adm.Int(int64(i)))
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	bt := NewBTree()
	for i := 0; i < 100000; i++ {
		bt.Put(adm.Int(int64(i)), adm.Int(int64(i)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bt.Get(adm.Int(int64(i % 100000)))
	}
}

func TestBTreeCursorMatchesAscend(t *testing.T) {
	for _, n := range []int{0, 1, 7, btreeDegree, 500, 5000} {
		bt := NewBTree()
		for i := 0; i < n; i++ {
			// Shuffled-ish insertion order to exercise splits.
			k := int64((i * 2654435761) % (n*3 + 1))
			bt.Put(adm.Int(k), adm.Int(k))
		}
		var want []int64
		bt.Ascend(func(it Item) bool {
			want = append(want, it.Key.IntVal())
			return true
		})
		cu := bt.Cursor()
		var got []int64
		for {
			it, ok := cu.Next()
			if !ok {
				break
			}
			got = append(got, it.Key.IntVal())
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: cursor yielded %d items, Ascend %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: item %d = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestBTreeCursorAfterPutBatch(t *testing.T) {
	bt := NewBTree()
	bt.PutBatch(sortedRun([]int64{1, 5, 9, 13, 17}, 0), nil)
	var keys []int64
	for i := int64(0); i < 2000; i += 2 {
		keys = append(keys, i)
	}
	bt.PutBatch(sortedRun(keys, 100), nil)
	cu := bt.Cursor()
	prev := int64(-1)
	count := 0
	for {
		it, ok := cu.Next()
		if !ok {
			break
		}
		if it.Key.IntVal() <= prev {
			t.Fatalf("cursor order violated: %d after %d", it.Key.IntVal(), prev)
		}
		prev = it.Key.IntVal()
		count++
	}
	if count != bt.Len() {
		t.Fatalf("cursor yielded %d items, Len() = %d", count, bt.Len())
	}
}

func TestBTreeCursorAt(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 1000; i += 2 { // even keys only
		bt.Put(adm.Int(i), adm.Int(i))
	}
	for _, from := range []int64{-1, 0, 1, 2, 499, 500, 997, 998, 999} {
		cu := bt.CursorAt(adm.Int(from))
		it, ok := cu.Next()
		want := from
		if want%2 != 0 {
			want++
		}
		if want < 0 {
			want = 0
		}
		if want > 998 {
			if ok {
				t.Fatalf("CursorAt(%d): got %v, want exhausted", from, it.Key)
			}
			continue
		}
		if !ok || it.Key.IntVal() != want {
			t.Fatalf("CursorAt(%d) first = %v,%v want %d", from, it.Key, ok, want)
		}
		// The remainder must continue in order from there.
		prev := it.Key.IntVal()
		for {
			it, ok := cu.Next()
			if !ok {
				break
			}
			if it.Key.IntVal() != prev+2 {
				t.Fatalf("CursorAt(%d): %d after %d", from, it.Key.IntVal(), prev)
			}
			prev = it.Key.IntVal()
		}
		if prev != 998 {
			t.Fatalf("CursorAt(%d) ended at %d", from, prev)
		}
	}
}

// TestBTreeCursorRange checks bounded cursors against every bound-kind
// combination over a dense key space, including batch-built trees.
func TestBTreeCursorRange(t *testing.T) {
	for _, batch := range []bool{false, true} {
		bt := NewBTree()
		if batch {
			run := make([]Item, 0, 1000)
			for i := 0; i < 2000; i += 2 {
				run = append(run, Item{adm.Int(int64(i)), adm.Int(int64(i * 10))})
			}
			bt.PutBatch(run, nil)
		} else {
			for i := 0; i < 2000; i += 2 {
				bt.Put(adm.Int(int64(i)), adm.Int(int64(i*10)))
			}
		}
		collect := func(lo, hi Bound) []int64 {
			var out []int64
			cur := bt.CursorRange(lo, hi)
			for {
				it, ok := cur.Next()
				if !ok {
					return out
				}
				out = append(out, it.Key.IntVal())
			}
		}
		want := func(from, to int64, loIncl, hiIncl bool) []int64 {
			var out []int64
			for i := int64(0); i < 2000; i += 2 {
				if (i > from || (loIncl && i == from)) && (i < to || (hiIncl && i == to)) {
					out = append(out, i)
				}
			}
			return out
		}
		cases := []struct {
			lo, hi Bound
			want   []int64
		}{
			{Include(adm.Int(10)), Include(adm.Int(20)), want(10, 20, true, true)},
			{Exclude(adm.Int(10)), Exclude(adm.Int(20)), want(10, 20, false, false)},
			{Include(adm.Int(11)), Include(adm.Int(19)), want(11, 19, true, true)},
			{Exclude(adm.Int(11)), Exclude(adm.Int(19)), want(11, 19, false, false)},
			{Unbounded(), Include(adm.Int(6)), want(-1, 6, false, true)},
			{Include(adm.Int(1994)), Unbounded(), want(1994, 1999, true, true)},
			{Unbounded(), Unbounded(), want(-1, 1999, false, true)},
			{Include(adm.Int(500)), Include(adm.Int(500)), []int64{500}},
			{Exclude(adm.Int(500)), Include(adm.Int(500)), nil},
			{Include(adm.Int(20)), Include(adm.Int(10)), nil},
			{Include(adm.Int(5000)), Unbounded(), nil},
			{Unbounded(), Include(adm.Int(-5)), nil},
		}
		for _, tc := range cases {
			got := collect(tc.lo, tc.hi)
			if !slices.Equal(got, tc.want) {
				t.Errorf("batch=%v CursorRange(%v,%v) = %v, want %v", batch, tc.lo, tc.hi, got, tc.want)
			}
		}
	}
}

// TestBTreeReleaseReuse releases trees back to the node pool and
// verifies freshly built trees stay correct — the memtable freeze/merge
// recycling loop in miniature. A released node whose array still
// aliased another tree's storage would corrupt this immediately.
func TestBTreeReleaseReuse(t *testing.T) {
	model := make(map[int64]int64)
	for round := 0; round < 6; round++ {
		bt := NewBTree()
		clear(model)
		// Mix batch and point inserts so both construction paths draw
		// from the pool.
		run := make([]Item, 0, 3000)
		for i := 0; i < 3000; i++ {
			k := int64((i*7 + round) % 5000)
			if _, dup := model[k]; dup {
				continue
			}
			model[k] = int64(round*10000 + i)
			run = append(run, Item{adm.Int(k), adm.Int(model[k])})
		}
		slices.SortFunc(run, func(a, b Item) int { return adm.Compare(a.Key, b.Key) })
		bt.PutBatch(run, nil)
		for i := 0; i < 500; i++ {
			k := int64(6000 + i)
			model[k] = int64(i)
			bt.Put(adm.Int(k), adm.Int(int64(i)))
		}
		for i := 0; i < 200; i++ {
			k := int64((i*13 + round) % 5000)
			if bt.Delete(adm.Int(k)) {
				delete(model, k)
			} else if _, present := model[k]; present {
				t.Fatalf("round %d: Delete(%d) missed a present key", round, k)
			}
		}
		if bt.Len() != len(model) {
			t.Fatalf("round %d: Len = %d, want %d", round, bt.Len(), len(model))
		}
		for k, v := range model {
			got, ok := bt.Get(adm.Int(k))
			if !ok || got.IntVal() != v {
				t.Fatalf("round %d: Get(%d) = %v,%v want %d", round, k, got, ok, v)
			}
		}
		// Ordered walk must match the sorted model too.
		var prev adm.Value
		first := true
		n := 0
		cur := bt.Cursor()
		for {
			it, ok := cur.Next()
			if !ok {
				break
			}
			if !first && !adm.Less(prev, it.Key) {
				t.Fatalf("round %d: cursor out of order", round)
			}
			prev, first = it.Key, false
			n++
		}
		if n != len(model) {
			t.Fatalf("round %d: cursor yielded %d items, want %d", round, n, len(model))
		}
		bt.Release()
		if bt.Len() != 0 {
			t.Fatalf("round %d: Release left Len = %d", round, bt.Len())
		}
	}
}
