// Package index provides the ordered and spatial index structures used
// across the storage engine: an in-memory B-tree (LSM memtables, primary
// key lookups, secondary B-tree indexes) and an R-tree (spatial
// secondary indexes and the transient probe structures the enrichment
// planner builds per batch).
//
// The structures themselves are not synchronized; the storage layer
// owns locking so that lock scope matches component lifecycles.
package index

import (
	"slices"
	"sync"

	"github.com/ideadb/idea/internal/adm"
)

// btreeDegree 64 gives wide nodes (max 127 items, min 63): the
// frame-granular storage path merges whole sorted runs into leaves, so
// fat leaves amortize split/merge churn across far more records, and
// point lookups still binary-search within a node.
const btreeDegree = 64

// Item is one key/value pair stored in a B-tree.
type Item struct {
	Key adm.Value
	Val adm.Value
}

type btreeNode struct {
	items    []Item
	children []*btreeNode // len(children) == len(items)+1, or 0 for leaves
}

// BTree is an in-memory B-tree over ADM values ordered by adm.Compare.
// Keys are unique: Put replaces the value of an existing key.
type BTree struct {
	root *btreeNode
	size int
}

// NewBTree returns an empty tree.
func NewBTree() *BTree { return &BTree{} }

// poolItemCap is the canonical item-array capacity for pooled nodes:
// maxItems plus one slot of headroom so an in-place merge of a single
// item never reallocates.
const poolItemCap = maxItems + 1

// nodePool recycles node structs and their canonical-capacity item
// arrays across tree lifetimes. The LSM memtable is the hot client:
// every freeze retires a whole tree wholesale at the next merge, and
// every fresh memtable rebuilds nodes at the same ~127-items-per-node
// rate, so Release/newNode round-trips replace the largest steady-state
// allocation block with reuse. Children arrays are not pooled (internal
// nodes are 1/64th of the tree); item arrays grown past the canonical
// capacity mid-batch are dropped for the GC at release.
var nodePool sync.Pool

func newNode() *btreeNode {
	n, _ := nodePool.Get().(*btreeNode)
	if n == nil {
		n = &btreeNode{}
	}
	if n.items == nil {
		n.items = make([]Item, 0, poolItemCap)
	}
	return n
}

// releaseNode returns a dead node to the pool. The caller guarantees
// nothing references the node; its item array is cleared to full
// capacity so pooled storage never pins record payloads.
func releaseNode(n *btreeNode) {
	if cap(n.items) == poolItemCap {
		full := n.items[:poolItemCap]
		clear(full)
		n.items = full[:0]
	} else {
		n.items = nil
	}
	n.children = nil
	nodePool.Put(n)
}

// Release returns every node of the tree to the shared pool and empties
// the tree. The caller must guarantee no cursor, snapshot, or concurrent
// reader still references the tree: the LSM layer calls it when a merge
// retires a frozen memtable that no Snapshot ever observed.
func (t *BTree) Release() {
	if t.root != nil {
		releaseSubtree(t.root)
	}
	t.root = nil
	t.size = 0
}

func releaseSubtree(n *btreeNode) {
	for _, c := range n.children {
		releaseSubtree(c)
	}
	releaseNode(n)
}

// Len returns the number of stored items.
func (t *BTree) Len() int { return t.size }

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// find locates key in the node's items: returns the index of the first
// item >= key and whether it is an exact match.
func (n *btreeNode) find(key adm.Value) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if adm.Less(n.items[mid].Key, key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && adm.Compare(n.items[lo].Key, key) == 0 {
		return lo, true
	}
	return lo, false
}

const maxItems = 2*btreeDegree - 1
const minItems = btreeDegree - 1

// Get returns the value stored under key.
func (t *BTree) Get(key adm.Value) (adm.Value, bool) {
	n := t.root
	for n != nil {
		i, ok := n.find(key)
		if ok {
			return n.items[i].Val, true
		}
		if n.leaf() {
			return adm.Value{}, false
		}
		n = n.children[i]
	}
	return adm.Value{}, false
}

// Put inserts key/val, replacing any previous value for key. It reports
// whether an existing item was replaced.
func (t *BTree) Put(key, val adm.Value) bool {
	if t.root == nil {
		n := newNode()
		n.items = append(n.items, Item{key, val})
		t.root = n
		t.size = 1
		return false
	}
	if len(t.root.items) >= maxItems {
		mid, right := t.root.split(maxItems / 2)
		parent := newNode()
		parent.items = append(parent.items, mid)
		parent.children = append(parent.children, t.root, right)
		t.root = parent
	}
	replaced := t.root.insert(key, val)
	if !replaced {
		t.size++
	}
	return replaced
}

// split divides the node at item index i, returning the promoted item
// and the new right sibling.
func (n *btreeNode) split(i int) (Item, *btreeNode) {
	mid := n.items[i]
	right := newNode()
	right.items = append(right.items, n.items[i+1:]...)
	clear(n.items[i:]) // don't pin the moved items through n's array
	n.items = n.items[:i]
	if !n.leaf() {
		right.children = append(right.children, n.children[i+1:]...)
		clear(n.children[i+1:])
		n.children = n.children[:i+1]
	}
	return mid, right
}

// insert adds key/val into the subtree rooted at n, which is guaranteed
// non-full. Reports whether an existing key was replaced.
func (n *btreeNode) insert(key, val adm.Value) bool {
	i, found := n.find(key)
	if found {
		n.items[i].Val = val
		return true
	}
	if n.leaf() {
		n.items = append(n.items, Item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = Item{key, val}
		return false
	}
	if len(n.children[i].items) >= maxItems {
		mid, right := n.children[i].split(maxItems / 2)
		n.items = append(n.items, Item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = mid
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
		switch c := adm.Compare(key, mid.Key); {
		case c == 0:
			n.items[i].Val = val
			return true
		case c > 0:
			i++
		}
	}
	return n.children[i].insert(key, val)
}

// PutBatch merges run — ascending by key, with unique keys — into the
// tree. Where Put pays one root-to-leaf descent per item, PutBatch
// descends once per leaf run: consecutive keys bound for the same leaf
// are merged into it in a single pass, and nodes that overflow are
// split into however many siblings they need in one step. Existing keys
// are replaced in place. onNew, when non-nil, is invoked for each item
// that created a new entry rather than replacing one (the LSM memtable
// uses it for byte accounting without a per-item pre-lookup). A run
// that is unsorted or contains duplicate keys corrupts the tree.
func (t *BTree) PutBatch(run []Item, onNew func(Item)) {
	if len(run) == 0 {
		return
	}
	if t.root == nil {
		t.root = newNode()
	}
	t.size += t.root.insertBatch(run, onNew)
	// The root may come back overfull; split it into as many levels as
	// the batch requires.
	for len(t.root.items) > maxItems {
		promoted, siblings := splitOverfull(t.root)
		nr := newNode()
		nr.items = append(nr.items, promoted...)
		nr.children = make([]*btreeNode, 0, len(siblings)+1)
		nr.children = append(nr.children, t.root)
		nr.children = append(nr.children, siblings...)
		t.root = nr
	}
}

// insertBatch merges the sorted run into the subtree rooted at n and
// returns the number of newly created entries. The node may be left
// overfull (more than maxItems items); the caller splits it via
// splitOverfull.
func (n *btreeNode) insertBatch(run []Item, onNew func(Item)) int {
	if n.leaf() {
		return n.mergeLeaf(run, onNew)
	}
	// Segment the run across children, replacing items that match
	// separators in place. Segments are gathered first and processed
	// right-to-left so splicing a split child's new siblings into
	// n.items/n.children never shifts a pending segment's child index.
	type segment struct{ child, lo, hi int }
	var segBuf [maxItems + 1]segment // one segment per child at most
	segs := segBuf[:0]
	i := 0
	for i < len(run) {
		c, exact := n.find(run[i].Key)
		if exact {
			n.items[c].Val = run[i].Val
			i++
			continue
		}
		j := i + 1
		for j < len(run) && (c >= len(n.items) || adm.Less(run[j].Key, n.items[c].Key)) {
			j++
		}
		segs = append(segs, segment{child: c, lo: i, hi: j})
		i = j
	}
	inserted := 0
	for k := len(segs) - 1; k >= 0; k-- {
		s := segs[k]
		child := n.children[s.child]
		inserted += child.insertBatch(run[s.lo:s.hi], onNew)
		if len(child.items) > maxItems {
			promoted, siblings := splitOverfull(child)
			n.items = slices.Insert(n.items, s.child, promoted...)
			n.children = slices.Insert(n.children, s.child+1, siblings...)
		}
	}
	return inserted
}

// mergeLeaf merges the sorted run into the leaf's sorted items in one
// backward pass, returning the number of newly inserted items. The leaf
// may be left overfull.
func (n *btreeNode) mergeLeaf(run []Item, onNew func(Item)) int {
	// Count the keys not already present to size the tail extension.
	newCount := 0
	i, j := 0, 0
	for i < len(n.items) && j < len(run) {
		switch c := adm.Compare(n.items[i].Key, run[j].Key); {
		case c < 0:
			i++
		case c > 0:
			newCount++
			j++
		default:
			i++
			j++
		}
	}
	newCount += len(run) - j
	if newCount == 0 {
		// Pure replacement: every run key already exists.
		for _, it := range run {
			at, _ := n.find(it.Key)
			n.items[at].Val = it.Val
		}
		return 0
	}
	old := len(n.items)
	n.items = slices.Grow(n.items, newCount)[:old+newCount]
	// Merge from the back so existing items shift right exactly once.
	i, j = old-1, len(run)-1
	for w := old + newCount - 1; j >= 0; w-- {
		if i >= 0 {
			switch c := adm.Compare(n.items[i].Key, run[j].Key); {
			case c > 0:
				n.items[w] = n.items[i]
				i--
				continue
			case c == 0:
				// Replacement keeps the existing key header, like Put.
				n.items[w] = Item{n.items[i].Key, run[j].Val}
				i--
				j--
				continue
			}
		}
		n.items[w] = run[j]
		if onNew != nil {
			onNew(run[j])
		}
		j--
	}
	return newCount
}

// splitOverfull splits a node holding more than maxItems into as many
// nodes as it needs in one pass: n keeps the leftmost chunk and each
// further chunk becomes a new right sibling, with promoted[k]
// separating siblings[k] from what precedes it. Every resulting node
// holds between minItems and maxItems items, so B-tree invariants need
// no further rebalancing. The single pass matters: chaining ordinary
// binary splits would re-copy the remaining tail once per split, going
// quadratic exactly when a large sorted run lands in one leaf.
//
// Each sibling copies its chunk into a singly-owned (pool-drawn) array
// rather than aliasing the overfull node's storage: single ownership is
// the precondition for Release recycling nodes, and the copy is part of
// the same linear pass, so the anti-quadratic property is unchanged.
func splitOverfull(n *btreeNode) (promoted []Item, siblings []*btreeNode) {
	items := n.items
	children := n.children
	const chunk = maxItems / 2 // half-full, like an ordinary split
	est := len(items) / (chunk + 1)
	promoted = make([]Item, 0, est)
	siblings = make([]*btreeNode, 0, est)
	pos := chunk
	for pos < len(items) {
		promoted = append(promoted, items[pos])
		pos++
		size := chunk
		if rem := len(items) - pos; rem <= maxItems {
			size = rem // the final sibling takes the whole remainder
		}
		s := newNode()
		s.items = append(s.items, items[pos:pos+size]...)
		if len(children) > 0 {
			s.children = append(s.children, children[pos:pos+size+1]...)
		}
		siblings = append(siblings, s)
		pos += size
	}
	// n keeps sole ownership of the original (possibly oversized) array,
	// truncated to the leftmost chunk; the moved tail is cleared so it
	// never pins the copied items.
	clear(items[chunk:])
	n.items = items[:chunk]
	if len(children) > 0 {
		clear(children[chunk+1:])
		n.children = children[:chunk+1]
	}
	return promoted, siblings
}

// Cursor returns a pull iterator positioned before the smallest item.
// It walks the tree in key order without materializing items into a
// slice — the read path for frozen LSM memtables and streaming query
// scans. The tree must not be mutated while the cursor is in use.
func (t *BTree) Cursor() *Cursor {
	c := &Cursor{}
	c.stack = c.buf[:0]
	if t.root != nil {
		c.descendFirst(t.root)
	}
	return c
}

// Bound is one end of a key range for bounded cursors. The zero value
// is unbounded (no constraint at that end).
type Bound struct {
	key       adm.Value
	inclusive bool
	set       bool
}

// Include bounds a range at key, with key itself in range.
func Include(key adm.Value) Bound { return Bound{key: key, inclusive: true, set: true} }

// Exclude bounds a range at key, with key itself out of range.
func Exclude(key adm.Value) Bound { return Bound{key: key, set: true} }

// Unbounded leaves one end of a range open.
func Unbounded() Bound { return Bound{} }

// Unbounded reports whether the bound imposes no constraint.
func (b Bound) Unbounded() bool { return !b.set }

// Key returns the bounding key and whether it is inclusive; meaningless
// for unbounded bounds.
func (b Bound) Key() (adm.Value, bool) { return b.key, b.inclusive }

// Inclusive reports whether the bound includes its key; meaningless for
// unbounded bounds.
func (b Bound) Inclusive() bool { return b.inclusive }

// CursorRange returns a cursor over the items within the bound pair, in
// ascending key order. Unlike CursorAt plus a caller-side check, the
// upper bound stops the walk inside the tree: a range predicate over a
// large index touches one descent plus the in-range leaves, never the
// tail of the tree.
func (t *BTree) CursorRange(lo, hi Bound) *Cursor {
	var c *Cursor
	if lo.set {
		c = t.CursorAt(lo.key)
		if !lo.inclusive {
			c.skip, c.skipSet = lo.key, true
		}
	} else {
		c = t.Cursor()
	}
	c.hi = hi
	return c
}

// CursorAt returns a cursor positioned before the first item whose key
// is >= from.
func (t *BTree) CursorAt(from adm.Value) *Cursor {
	c := &Cursor{}
	c.stack = c.buf[:0]
	n := t.root
	for n != nil {
		i, ok := n.find(from)
		c.stack = append(c.stack, cursorFrame{node: n, idx: i})
		if ok || n.leaf() {
			break
		}
		// The next item at this node comes after the subtree we are
		// descending into; idx already points at it.
		n = n.children[i]
	}
	// A leaf frame may be positioned past its last item; Next pops
	// exhausted frames itself.
	return c
}

// cursorFrame is one level of a cursor's descent: node plus the index
// of the next item to yield there.
type cursorFrame struct {
	node *btreeNode
	idx  int
}

// Cursor iterates a BTree in ascending key order, one item per Next
// call. The zero value is not usable; obtain cursors from
// BTree.Cursor/CursorAt/CursorRange.
type Cursor struct {
	stack []cursorFrame
	buf   [8]cursorFrame // inline storage: tree heights stay tiny

	hi      Bound     // upper bound; zero value = unbounded
	skip    adm.Value // exclusive lower bound to swallow once
	skipSet bool
}

// descendFirst pushes the path to the leftmost leaf of the subtree.
func (c *Cursor) descendFirst(n *btreeNode) {
	for {
		c.stack = append(c.stack, cursorFrame{node: n})
		if n.leaf() {
			return
		}
		n = n.children[0]
	}
}

// Next returns the next item in key order (within the cursor's bounds,
// for bounded cursors).
func (c *Cursor) Next() (Item, bool) {
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		n := top.node
		if n.leaf() {
			if top.idx < len(n.items) {
				it := n.items[top.idx]
				top.idx++
				return c.emit(it)
			}
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		if top.idx < len(n.items) {
			it := n.items[top.idx]
			top.idx++
			// top may be invalidated by the appends in descendFirst;
			// capture the child before growing the stack.
			child := n.children[top.idx]
			c.descendFirst(child)
			return c.emit(it)
		}
		c.stack = c.stack[:len(c.stack)-1]
	}
	return Item{}, false
}

// emit applies the cursor's range bounds to a candidate item: it
// swallows the exclusive lower bound key (at most once — keys are
// unique) and exhausts the cursor at the first item past the upper
// bound.
func (c *Cursor) emit(it Item) (Item, bool) {
	if c.skipSet {
		c.skipSet = false
		if adm.Compare(it.Key, c.skip) == 0 {
			return c.Next()
		}
	}
	if c.hi.set {
		if cmp := adm.Compare(it.Key, c.hi.key); cmp > 0 || (cmp == 0 && !c.hi.inclusive) {
			c.stack = c.stack[:0]
			return Item{}, false
		}
	}
	return it, true
}

// Delete removes key, reporting whether it was present.
func (t *BTree) Delete(key adm.Value) bool {
	if t.root == nil {
		return false
	}
	removed := t.root.remove(key)
	if len(t.root.items) == 0 && !t.root.leaf() {
		old := t.root
		t.root = t.root.children[0]
		old.children = nil // keep the promoted child out of the release
		releaseNode(old)
	}
	if removed {
		t.size--
		if t.size == 0 {
			releaseNode(t.root)
			t.root = nil
		}
	}
	return removed
}

func (n *btreeNode) remove(key adm.Value) bool {
	i, found := n.find(key)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor (max of left child) then remove it.
		child := n.growChildIfNeeded(i, key)
		i, found = n.find(key)
		if !found {
			return child.remove(key)
		}
		left := n.children[i]
		pred := left.max()
		n.items[i] = pred
		return left.remove(pred.Key) // pred removal never misses
	}
	child := n.growChildIfNeeded(i, key)
	return child.remove(key)
}

// growChildIfNeeded ensures the child the removal will descend into has
// more than minItems, borrowing from siblings or merging. It returns the
// child to descend into (which may have changed due to merging).
func (n *btreeNode) growChildIfNeeded(i int, key adm.Value) *btreeNode {
	if i > len(n.items) {
		i = len(n.items)
	}
	child := n.children[i]
	if len(child.items) > minItems {
		return child
	}
	// Borrow from left sibling.
	if i > 0 && len(n.children[i-1].items) > minItems {
		left := n.children[i-1]
		child.items = append(child.items, Item{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return child
	}
	// Borrow from right sibling.
	if i < len(n.items) && len(n.children[i+1].items) > minItems {
		right := n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return child
	}
	// Merge with a sibling.
	if i == len(n.items) {
		i-- // merge into left sibling instead
		child = n.children[i]
	}
	right := n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	right.children = nil // contents were copied into child; recycle the shell
	releaseNode(right)
	return child
}

func (n *btreeNode) max() Item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// Ascend visits every item in key order until fn returns false.
func (t *BTree) Ascend(fn func(Item) bool) {
	if t.root != nil {
		t.root.ascend(adm.Value{}, false, fn)
	}
}

// AscendRange visits items with from <= key <= to in order until fn
// returns false.
func (t *BTree) AscendRange(from, to adm.Value, fn func(Item) bool) {
	if t.root == nil {
		return
	}
	t.root.ascend(from, true, func(it Item) bool {
		if adm.Less(to, it.Key) {
			return false
		}
		return fn(it)
	})
}

func (n *btreeNode) ascend(from adm.Value, bounded bool, fn func(Item) bool) bool {
	start := 0
	if bounded {
		start, _ = n.find(from)
	}
	if n.leaf() {
		for _, it := range n.items[start:] {
			if !fn(it) {
				return false
			}
		}
		return true
	}
	for i := start; i <= len(n.items); i++ {
		if !n.children[i].ascend(from, bounded && i == start, fn) {
			return false
		}
		if i < len(n.items) {
			if bounded && i == start && adm.Less(n.items[i].Key, from) {
				continue
			}
			if !fn(n.items[i]) {
				return false
			}
		}
	}
	return true
}

// Min returns the smallest item, if any.
func (t *BTree) Min() (Item, bool) {
	if t.root == nil {
		return Item{}, false
	}
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0], true
}

// Max returns the largest item, if any.
func (t *BTree) Max() (Item, bool) {
	if t.root == nil {
		return Item{}, false
	}
	return t.root.max(), true
}

// Items returns all items in key order (a fresh slice).
func (t *BTree) Items() []Item {
	out := make([]Item, 0, t.size)
	t.Ascend(func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}
