package index

import (
	"github.com/ideadb/idea/internal/spatial"
)

const (
	rtreeMaxEntries = 16
	rtreeMinEntries = 4
)

// RTreeEntry is one spatial item: a bounding rectangle plus an opaque
// payload (typically a record or a primary key).
type RTreeEntry struct {
	Rect spatial.Rect
	Data any
}

type rtreeNode struct {
	leaf     bool
	entries  []RTreeEntry // leaf payloads
	children []*rtreeNode // internal children (parallel to rects)
	rects    []spatial.Rect
}

// RTree is an in-memory R-tree with quadratic split, supporting insert,
// delete, and rectangle-intersection search. It backs persistent spatial
// secondary indexes (Nearby Monuments' index-NLJ) and the transient
// per-batch probe structures built by the enrichment planner.
type RTree struct {
	root *rtreeNode
	size int
}

// NewRTree returns an empty R-tree.
func NewRTree() *RTree {
	return &RTree{root: &rtreeNode{leaf: true}}
}

// Len returns the number of stored entries.
func (t *RTree) Len() int { return t.size }

// Insert adds an entry.
func (t *RTree) Insert(rect spatial.Rect, data any) {
	t.size++
	split := t.root.insert(RTreeEntry{rect, data})
	if split != nil {
		old := t.root
		t.root = &rtreeNode{
			leaf:     false,
			children: []*rtreeNode{old, split},
			rects:    []spatial.Rect{old.bounds(), split.bounds()},
		}
	}
}

func (n *rtreeNode) bounds() spatial.Rect {
	var b spatial.Rect
	first := true
	if n.leaf {
		for _, e := range n.entries {
			if first {
				b = e.Rect
				first = false
			} else {
				b = b.Union(e.Rect)
			}
		}
	} else {
		for _, r := range n.rects {
			if first {
				b = r
				first = false
			} else {
				b = b.Union(r)
			}
		}
	}
	return b
}

// insert places e into the subtree; a non-nil return is a new sibling
// produced by splitting.
func (n *rtreeNode) insert(e RTreeEntry) *rtreeNode {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > rtreeMaxEntries {
			return n.splitLeaf()
		}
		return nil
	}
	i := n.chooseSubtree(e.Rect)
	split := n.children[i].insert(e)
	n.rects[i] = n.children[i].bounds()
	if split != nil {
		n.children = append(n.children, split)
		n.rects = append(n.rects, split.bounds())
		if len(n.children) > rtreeMaxEntries {
			return n.splitInternal()
		}
	}
	return nil
}

// chooseSubtree picks the child whose bounds need the least enlargement
// (ties broken by smaller area), the classic Guttman heuristic.
func (n *rtreeNode) chooseSubtree(r spatial.Rect) int {
	best := 0
	bestEnl := n.rects[0].Enlargement(r)
	bestArea := n.rects[0].Area()
	for i := 1; i < len(n.rects); i++ {
		enl := n.rects[i].Enlargement(r)
		area := n.rects[i].Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// quadraticSeeds picks the pair of rectangles wasting the most area when
// grouped, per Guttman's quadratic split.
func quadraticSeeds(rects []spatial.Rect) (int, int) {
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			d := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	return s1, s2
}

func (n *rtreeNode) splitLeaf() *rtreeNode {
	entries := n.entries
	rects := make([]spatial.Rect, len(entries))
	for i, e := range entries {
		rects[i] = e.Rect
	}
	g1, g2 := splitGroups(rects)
	sib := &rtreeNode{leaf: true}
	newEntries := make([]RTreeEntry, 0, len(g1))
	for _, i := range g1 {
		newEntries = append(newEntries, entries[i])
	}
	for _, i := range g2 {
		sib.entries = append(sib.entries, entries[i])
	}
	n.entries = newEntries
	return sib
}

func (n *rtreeNode) splitInternal() *rtreeNode {
	g1, g2 := splitGroups(n.rects)
	sib := &rtreeNode{leaf: false}
	newChildren := make([]*rtreeNode, 0, len(g1))
	newRects := make([]spatial.Rect, 0, len(g1))
	for _, i := range g1 {
		newChildren = append(newChildren, n.children[i])
		newRects = append(newRects, n.rects[i])
	}
	for _, i := range g2 {
		sib.children = append(sib.children, n.children[i])
		sib.rects = append(sib.rects, n.rects[i])
	}
	n.children, n.rects = newChildren, newRects
	return sib
}

// splitGroups partitions indexes of rects into two groups using the
// quadratic method, respecting the minimum fill factor.
func splitGroups(rects []spatial.Rect) (g1, g2 []int) {
	s1, s2 := quadraticSeeds(rects)
	g1 = append(g1, s1)
	g2 = append(g2, s2)
	b1, b2 := rects[s1], rects[s2]
	for i := range rects {
		if i == s1 || i == s2 {
			continue
		}
		remaining := len(rects) - len(g1) - len(g2)
		// Force assignment when a group needs every remaining entry to
		// reach the minimum.
		if len(g1)+remaining <= rtreeMinEntries {
			g1 = append(g1, i)
			b1 = b1.Union(rects[i])
			continue
		}
		if len(g2)+remaining <= rtreeMinEntries {
			g2 = append(g2, i)
			b2 = b2.Union(rects[i])
			continue
		}
		e1 := b1.Enlargement(rects[i])
		e2 := b2.Enlargement(rects[i])
		if e1 < e2 || (e1 == e2 && len(g1) <= len(g2)) {
			g1 = append(g1, i)
			b1 = b1.Union(rects[i])
		} else {
			g2 = append(g2, i)
			b2 = b2.Union(rects[i])
		}
	}
	return g1, g2
}

// Search visits every entry whose rectangle intersects query until fn
// returns false.
func (t *RTree) Search(query spatial.Rect, fn func(RTreeEntry) bool) {
	t.root.search(query, fn)
}

func (n *rtreeNode) search(query spatial.Rect, fn func(RTreeEntry) bool) bool {
	if n.leaf {
		for _, e := range n.entries {
			if e.Rect.Intersects(query) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for i, r := range n.rects {
		if r.Intersects(query) {
			if !n.children[i].search(query, fn) {
				return false
			}
		}
	}
	return true
}

// SearchAll returns every entry intersecting query.
func (t *RTree) SearchAll(query spatial.Rect) []RTreeEntry {
	var out []RTreeEntry
	t.Search(query, func(e RTreeEntry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Delete removes one entry with an identical rectangle for which eq
// returns true, reporting whether one was found. The R-tree performs no
// rebalancing on delete (underfull nodes are tolerated), which is the
// usual trade-off for in-memory R-trees with churn.
func (t *RTree) Delete(rect spatial.Rect, eq func(data any) bool) bool {
	if t.root.delete(rect, eq) {
		t.size--
		return true
	}
	return false
}

func (n *rtreeNode) delete(rect spatial.Rect, eq func(any) bool) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.Rect == rect && eq(e.Data) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i, r := range n.rects {
		if r.Intersects(rect) {
			if n.children[i].delete(rect, eq) {
				n.rects[i] = n.children[i].bounds()
				return true
			}
		}
	}
	return false
}
