package hyracks

import (
	"context"
	"sync"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

// TestFramePoolOwnership drives pooled frames through a holder from
// concurrent producers and asserts the consumer never observes a
// recycled frame mutated: every pulled record must carry exactly the
// payload its producer wrote, and per-payload counts must balance. Run
// under -race this also catches any unsynchronized reuse of pooled
// spines (stash recycles each frame the moment its records are copied
// out, while producers concurrently draw fresh spines from the pool).
func TestFramePoolOwnership(t *testing.T) {
	const (
		producers     = 4
		framesPerProd = 200
		recsPerFrame  = 7
		maxPayload    = producers << 20
	)
	ctx := context.Background()
	h := NewPassiveHolder(8)

	var wg sync.WaitGroup
	for id := 0; id < producers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < framesPerProd; i++ {
				recs := GetRecordSlice(recsPerFrame)
				payload := int64(id<<20 | i)
				for k := 0; k < recsPerFrame; k++ {
					recs = append(recs, adm.Int(payload))
				}
				if err := h.PushFrame(ctx, Frame{Records: recs}); err != nil {
					t.Errorf("producer %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	go func() {
		wg.Wait()
		h.CloseInput()
	}()

	counts := make(map[int64]int)
	total := 0
	for {
		frames, eof, err := h.PullFrames(ctx, 64)
		if err != nil {
			t.Fatalf("PullFrames: %v", err)
		}
		for _, f := range frames {
			for _, r := range f.Records {
				if r.Kind() != adm.KindInt64 {
					t.Fatalf("pulled record of kind %v — recycled frame observed mutated", r.Kind())
				}
				v := r.IntVal()
				if v < 0 || v >= int64(maxPayload) {
					t.Fatalf("pulled record with corrupt payload %d", v)
				}
				counts[v]++
			}
			total += len(f.Records)
			// Payloads are value types (no arena); full recycle feeds
			// the producers' GetRecordSlice draws.
			RecycleFrame(f)
		}
		if eof {
			break
		}
	}
	if want := producers * framesPerProd * recsPerFrame; total != want {
		t.Fatalf("pulled %d records, want %d", total, want)
	}
	for v, n := range counts {
		if n != recsPerFrame {
			t.Fatalf("payload %d seen %d times, want %d — frame contents torn across recycling", v, n, recsPerFrame)
		}
	}
}

// TestFrameBuilderReusesPooledBuffers checks the builder/consumer
// recycling loop end to end: a consumer that recycles after copying
// must never affect frames already delivered, and flush boundaries must
// preserve order and contents.
func TestFrameBuilderReusesPooledBuffers(t *testing.T) {
	var got []int64
	sink := writerFunc(func(f Frame) error {
		for _, r := range f.Records {
			got = append(got, r.IntVal())
		}
		RecycleFrame(f) // consumer owns the frame after Push
		return nil
	})
	b := NewFrameBuilder(4, sink)
	const n = 103
	for i := 0; i < n; i++ {
		if err := b.Add(adm.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d records, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("record %d = %d, want %d", i, v, i)
		}
	}
}

// TestRecycleFrameSharedNoOp: broadcast-shared frames must survive one
// consumer recycling while another still reads.
func TestRecycleFrameSharedNoOp(t *testing.T) {
	recs := GetRecordSlice(4)
	recs = append(recs, adm.Int(42))
	f := Frame{Records: recs, Shared: true}
	RecycleFrame(f)
	if f.Records[0].IntVal() != 42 {
		t.Fatal("shared frame was recycled")
	}
}

// TestRawLane covers AddRaw/PullFrames: raw bytes must flow through
// builder, holder, and pull without copying or corruption.
func TestRawLane(t *testing.T) {
	ctx := context.Background()
	h := NewPassiveHolder(8)
	b := NewFrameBuilder(3, writerFunc(func(f Frame) error {
		return h.PushFrame(ctx, f)
	}))
	payloads := [][]byte{
		[]byte(`{"id":1}`), []byte(`{"id":2}`), []byte(`{"id":3}`),
		[]byte(`{"id":4}`), []byte(`{"id":5}`),
	}
	for _, p := range payloads {
		if err := b.AddRaw(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	h.CloseInput()
	var got [][]byte
	for {
		frames, eof, err := h.PullFrames(ctx, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			got = append(got, f.Raw...)
			// Raw views retained below; spines only.
			RecycleFrameSpines(f)
		}
		if eof {
			break
		}
	}
	if len(got) != len(payloads) {
		t.Fatalf("got %d raw records, want %d", len(got), len(payloads))
	}
	for i, p := range payloads {
		if string(got[i]) != string(p) {
			t.Fatalf("raw record %d = %q, want %q", i, got[i], p)
		}
	}
	// Zero-copy: the pulled slices must alias the originals.
	if &got[0][0] != &payloads[0][0] {
		t.Fatal("raw record bytes were copied on the way through")
	}
}

// writerFunc adapts a function to Writer for tests.
type writerFunc func(Frame) error

func (writerFunc) Open() error           { return nil }
func (fn writerFunc) Push(f Frame) error { return fn(f) }
func (writerFunc) Close() error          { return nil }
