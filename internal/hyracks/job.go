package hyracks

import (
	"context"
	"fmt"
	"sync"

	"github.com/ideadb/idea/internal/adm"
)

// Routing is a connector's partitioning strategy.
type Routing int

const (
	// OneToOne connects partition i to partition i (parallelism must
	// match).
	OneToOne Routing = iota
	// RoundRobin spreads frames evenly over target partitions — the
	// intake job uses it so expensive UDF work is balanced (Section 6.2).
	RoundRobin
	// HashPartition routes each record by a key hash — the storage job
	// uses it to send records to the partition owning their primary key.
	HashPartition
	// Broadcast replicates every frame to all target partitions.
	Broadcast
)

// TaskContext is handed to each operator instance.
type TaskContext struct {
	// Ctx is canceled when the job fails or is aborted.
	Ctx context.Context
	// JobID identifies the running job.
	JobID string
	// Partition is this instance's partition number.
	Partition int
	// Node is the simulated node hosting this partition.
	Node int
}

// Source is a self-driving operator instance (adapters, holders): it
// produces frames until done, then returns.
type Source interface {
	Run(tc *TaskContext, out Writer) error
}

// Pipe is a push-driven operator instance (parsers, evaluators, sinks).
type Pipe interface {
	Open(tc *TaskContext, out Writer) error
	Push(tc *TaskContext, f Frame, out Writer) error
	Close(tc *TaskContext, out Writer) error
}

// SourceFunc adapts a function to Source.
type SourceFunc func(tc *TaskContext, out Writer) error

// Run implements Source.
func (f SourceFunc) Run(tc *TaskContext, out Writer) error { return f(tc, out) }

// Descriptor declares one operator of a job: its parallelism and a
// factory for per-partition instances. Exactly one of NewSource /
// NewPipe must be set (sources have no dataflow input).
type Descriptor struct {
	Name        string
	Parallelism int
	// NodeOf maps a partition to its simulated node (defaults to
	// identity modulo the cluster size the caller uses).
	NodeOf func(partition int) int
	// NewSource builds a source instance for a partition.
	NewSource func(partition int) (Source, error)
	// NewPipe builds a push-driven instance for a partition.
	NewPipe func(partition int) (Pipe, error)
}

// connectorSpec links two operators.
type connectorSpec struct {
	from, to int
	routing  Routing
	hashKey  func(adm.Value) uint64
}

// JobSpec is the compiled description of a dataflow job (the paper's
// "job specification"): operators plus connectors. Specs are reusable —
// predeployed jobs keep one and instantiate it per invocation.
type JobSpec struct {
	ops        []*Descriptor
	connectors []connectorSpec
	// QueueCapacity bounds each connector channel (frames); this is the
	// backpressure knob.
	QueueCapacity int
}

// NewJobSpec returns an empty spec.
func NewJobSpec() *JobSpec { return &JobSpec{QueueCapacity: 64} }

// AddOperator registers an operator and returns its id.
func (s *JobSpec) AddOperator(d *Descriptor) int {
	s.ops = append(s.ops, d)
	return len(s.ops) - 1
}

// Connect links from → to with the given routing. HashPartition requires
// hashKey.
func (s *JobSpec) Connect(from, to int, routing Routing, hashKey func(adm.Value) uint64) {
	s.connectors = append(s.connectors, connectorSpec{from: from, to: to, routing: routing, hashKey: hashKey})
}

// Job is one running instantiation of a JobSpec.
type Job struct {
	id     string
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error
}

func (j *Job) fail(err error) {
	if err == nil {
		return
	}
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	j.cancel()
}

// Wait blocks until every operator instance finishes and returns the
// first error.
func (j *Job) Wait() error {
	j.wg.Wait()
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Abort cancels the job; Wait still reports the outcome.
func (j *Job) Abort() { j.cancel() }

// Run validates the spec, instantiates every operator partition, wires
// the connectors, and starts the dataflow. The returned Job is already
// running; call Wait for the outcome.
func (s *JobSpec) Run(parent context.Context, jobID string) (*Job, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(parent)
	job := &Job{id: jobID, cancel: cancel}

	// inputs[op][partition] is the channel feeding that pipe instance;
	// nil for sources.
	inputs := make([][]chan Frame, len(s.ops))
	// upstreamCount[op] tracks how many sending instances feed the op's
	// channels (for close bookkeeping).
	type fanIn struct {
		senders sync.WaitGroup
	}
	fans := make([]*fanIn, len(s.ops))
	for i, d := range s.ops {
		if d.NewPipe != nil {
			chans := make([]chan Frame, d.Parallelism)
			for p := range chans {
				chans[p] = make(chan Frame, s.QueueCapacity)
			}
			inputs[i] = chans
			fans[i] = &fanIn{}
		}
	}

	// outputs[op][partition] is the Writer the instance pushes into.
	outputs := make([][]Writer, len(s.ops))
	for i, d := range s.ops {
		outputs[i] = make([]Writer, d.Parallelism)
		for p := range outputs[i] {
			outputs[i][p] = Discard
		}
	}
	for _, c := range s.connectors {
		from := s.ops[c.from]
		for p := 0; p < from.Parallelism; p++ {
			fans[c.to].senders.Add(1)
			outputs[c.from][p] = &connectorWriter{
				ctx:      ctx,
				spec:     c,
				targets:  inputs[c.to],
				srcPart:  p,
				capacity: s.QueueCapacity,
				done:     &fans[c.to].senders,
			}
		}
	}
	// Close target channels once every sender is done.
	for i := range s.ops {
		if fans[i] == nil {
			continue
		}
		chans := inputs[i]
		fan := fans[i]
		go func() {
			fan.senders.Wait()
			for _, ch := range chans {
				close(ch)
			}
		}()
	}

	// Launch instances.
	for i, d := range s.ops {
		for p := 0; p < d.Parallelism; p++ {
			tc := &TaskContext{Ctx: ctx, JobID: jobID, Partition: p, Node: p}
			if d.NodeOf != nil {
				tc.Node = d.NodeOf(p)
			}
			out := outputs[i][p]
			job.wg.Add(1)
			switch {
			case d.NewSource != nil:
				src, err := d.NewSource(p)
				if err != nil {
					job.wg.Done()
					cancel()
					return nil, fmt.Errorf("hyracks: %s[%d]: %w", d.Name, p, err)
				}
				go func(name string) {
					defer job.wg.Done()
					if err := src.Run(tc, out); err != nil {
						job.fail(fmt.Errorf("%s: %w", name, err))
					}
					if err := out.Close(); err != nil {
						job.fail(fmt.Errorf("%s: close: %w", name, err))
					}
				}(d.Name)
			default:
				pipe, err := d.NewPipe(p)
				if err != nil {
					job.wg.Done()
					cancel()
					return nil, fmt.Errorf("hyracks: %s[%d]: %w", d.Name, p, err)
				}
				in := inputs[i][p]
				go func(name string) {
					defer job.wg.Done()
					if err := runPipe(tc, pipe, in, out); err != nil {
						job.fail(fmt.Errorf("%s: %w", name, err))
					}
				}(d.Name)
			}
		}
	}
	return job, nil
}

func runPipe(tc *TaskContext, pipe Pipe, in <-chan Frame, out Writer) error {
	if err := out.Open(); err != nil {
		return err
	}
	if err := pipe.Open(tc, out); err != nil {
		return err
	}
	for {
		select {
		case f, ok := <-in:
			if !ok {
				if err := pipe.Close(tc, out); err != nil {
					return err
				}
				return out.Close()
			}
			if err := pipe.Push(tc, f, out); err != nil {
				return err
			}
		case <-tc.Ctx.Done():
			// Drain nothing; the job is failing or aborted.
			_ = pipe.Close(tc, out)
			_ = out.Close()
			return tc.Ctx.Err()
		}
	}
}

func (s *JobSpec) validate() error {
	hasInput := make([]bool, len(s.ops))
	for _, c := range s.connectors {
		if c.from < 0 || c.from >= len(s.ops) || c.to < 0 || c.to >= len(s.ops) {
			return fmt.Errorf("hyracks: connector references unknown operator")
		}
		if hasInput[c.to] {
			return fmt.Errorf("hyracks: operator %s has multiple inputs", s.ops[c.to].Name)
		}
		hasInput[c.to] = true
		if c.routing == OneToOne && s.ops[c.from].Parallelism != s.ops[c.to].Parallelism {
			return fmt.Errorf("hyracks: one-to-one connector between %s and %s with mismatched parallelism",
				s.ops[c.from].Name, s.ops[c.to].Name)
		}
		if c.routing == HashPartition && c.hashKey == nil {
			return fmt.Errorf("hyracks: hash connector from %s needs a key function", s.ops[c.from].Name)
		}
	}
	for i, d := range s.ops {
		if d.Parallelism <= 0 {
			return fmt.Errorf("hyracks: operator %s has parallelism %d", d.Name, d.Parallelism)
		}
		if (d.NewSource == nil) == (d.NewPipe == nil) {
			return fmt.Errorf("hyracks: operator %s must define exactly one of NewSource/NewPipe", d.Name)
		}
		if d.NewSource != nil && hasInput[i] {
			return fmt.Errorf("hyracks: source operator %s cannot have an input", d.Name)
		}
		if d.NewPipe != nil && !hasInput[i] {
			return fmt.Errorf("hyracks: pipe operator %s has no input", d.Name)
		}
	}
	return nil
}

// connectorWriter routes one upstream partition's frames to the target
// partitions' channels.
type connectorWriter struct {
	ctx      context.Context
	spec     connectorSpec
	targets  []chan Frame
	srcPart  int
	capacity int
	done     *sync.WaitGroup

	rr      int           // round-robin cursor
	buffers [][]adm.Value // per-target buffers for hash routing
	scratch []int         // per-record hash targets, reused across frames
	counts  []int         // per-target histogram, reused across frames
	closed  bool
}

func (w *connectorWriter) Open() error {
	if w.spec.routing == HashPartition {
		w.buffers = make([][]adm.Value, len(w.targets))
	}
	return nil
}

func (w *connectorWriter) send(target int, f Frame) error {
	select {
	case w.targets[target] <- f:
		return nil
	case <-w.ctx.Done():
		return w.ctx.Err()
	}
}

func (w *connectorWriter) Push(f Frame) error {
	switch w.spec.routing {
	case OneToOne:
		return w.send(w.srcPart, f)
	case RoundRobin:
		t := w.rr % len(w.targets)
		w.rr++
		return w.send(t, f)
	case Broadcast:
		// Each target shares the frame; mark it so no consumer recycles
		// the backing arrays out from under the others.
		f.Shared = true
		for t := range w.targets {
			if err := w.send(t, f); err != nil {
				return err
			}
		}
		return nil
	default: // HashPartition
		if len(f.Raw) > 0 {
			// Hash routing keys off parsed records; forwarding would
			// break partitioning and dropping would lose data.
			return fmt.Errorf("hyracks: raw-lane frame reached hash connector; parse records first")
		}
		if len(f.Records) == 0 {
			RecycleFrame(f)
			return nil
		}
		// Hash every record once into a reused scratch; when the whole
		// frame lands on one target (always true for single-partition
		// jobs, common for skewed keys) it is forwarded wholesale —
		// spine, arena and all — with no per-record copying. Buffers
		// are always empty between Pushes (every partial flushes at
		// frame end), so wholesale forwarding cannot reorder records.
		if cap(w.scratch) < len(f.Records) {
			w.scratch = make([]int, len(f.Records))
		}
		targets := w.scratch[:len(f.Records)]
		single := true
		for i, rec := range f.Records {
			t := int(w.spec.hashKey(rec) % uint64(len(w.targets)))
			targets[i] = t
			if t != targets[0] {
				single = false
			}
		}
		if single && !f.Shared {
			return w.send(targets[0], f)
		}
		// Mixed-target frame: build a per-target histogram so each
		// target's buffer is drawn and sized exactly once, then copy
		// runs of same-target records instead of appending one by one.
		if cap(w.counts) < len(w.targets) {
			w.counts = make([]int, len(w.targets))
		}
		counts := w.counts[:len(w.targets)]
		clear(counts)
		for _, t := range targets {
			counts[t]++
		}
		for t, c := range counts {
			if c == 0 {
				continue
			}
			need := len(w.buffers[t]) + c
			if w.buffers[t] == nil {
				w.buffers[t] = GetRecordSlice(max(w.capacity, c))
			} else if cap(w.buffers[t]) < need {
				grown := GetRecordSlice(need)
				grown = append(grown, w.buffers[t]...)
				PutRecordSlice(w.buffers[t])
				w.buffers[t] = grown
			}
		}
		for i := 0; i < len(f.Records); {
			t := targets[i]
			j := i + 1
			for j < len(f.Records) && targets[j] == t {
				j++
			}
			w.buffers[t] = append(w.buffers[t], f.Records[i:j]...)
			i = j
		}
		// Flush every buffer at the end of the input frame: long-running
		// jobs (the storage job) must not hold records hostage waiting
		// for a full output frame, and flushing everything keeps each
		// frame's records one batch for the storage writer downstream.
		for t := range w.buffers {
			if err := w.flushTarget(t); err != nil {
				return err
			}
		}
		// The input frame's record headers have been copied into
		// per-target buffers, but they still reference the input
		// frame's arena — only the spine goes back to the pool; the
		// arena's ownership passes to the re-bucketed records (the
		// garbage collector reclaims it when the last one dies).
		RecycleFrameSpines(f)
		return nil
	}
}

func (w *connectorWriter) flushTarget(t int) error {
	if len(w.buffers[t]) == 0 {
		return nil
	}
	f := Frame{Records: w.buffers[t]}
	w.buffers[t] = nil
	return w.send(t, f)
}

func (w *connectorWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var firstErr error
	if w.spec.routing == HashPartition {
		for t := range w.targets {
			if err := w.flushTarget(t); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	w.done.Done()
	return firstErr
}
