package hyracks

import (
	"context"
	"sync"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

// TestDetachedValuesSurviveArenaReuse is the arena-lifetime regression
// test: one goroutine reuses a frame's arena (the recycle path) while
// another concurrently reads values that were Detached from the frame
// beforehand. If Detach/Materialize ever stops copying arena-backed
// payloads, the reader and the writer touch the same bytes and the race
// detector fails the build (the value assertion catches it even without
// -race).
func TestDetachedValuesSurviveArenaReuse(t *testing.T) {
	parser := adm.NewParser()
	arena := GetArena()
	spine, err := parser.ParseInto([]byte(`{"id":7,"text":"detached payload"}`), GetRecordSlice(4), arena)
	if err != nil {
		t.Fatal(err)
	}
	f := Frame{Records: spine, Arena: arena}
	detached := Detach(f)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		// The pipeline after RecycleFrame: the arena is reset and
		// overwritten by the next frames' records.
		defer wg.Done()
		p2 := adm.NewParser()
		scratch := GetRecordSlice(4)
		defer PutRecordSlice(scratch)
		for i := 0; i < 500; i++ {
			arena.Reset()
			var e error
			scratch, e = p2.ParseInto([]byte(`{"id":9,"text":"OVERWRITTEN bytes!!"}`), scratch[:0], arena)
			if e != nil {
				t.Error(e)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			if got := detached.Records[0].Field("text").StringVal(); got != "detached payload" {
				t.Errorf("detached value corrupted: %q", got)
				return
			}
		}
	}()
	wg.Wait()
	RecycleFrameSpines(f)
}

// TestPullFrames: whole frames come out exactly as pushed — same spines,
// same arenas, no copying — the batch stops once max records are
// gathered, and eof reports closed-and-drained.
func TestPullFrames(t *testing.T) {
	ctx := context.Background()
	h := NewPassiveHolder(8)
	arenas := make([]*adm.Arena, 3)
	for i := range arenas {
		arenas[i] = GetArena()
		recs := GetRecordSlice(2)
		recs = append(recs, adm.Int(int64(2*i)), adm.Int(int64(2*i+1)))
		if err := h.PushFrame(ctx, Frame{Records: recs, Arena: arenas[i]}); err != nil {
			t.Fatal(err)
		}
	}
	h.CloseInput()

	frames, eof, err := h.PullFrames(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if eof {
		t.Fatal("premature eof")
	}
	// 3 records requested, frames hold 2 each: two whole frames.
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2 (whole frames, allowed to overshoot)", len(frames))
	}
	for i, fr := range frames {
		if fr.Arena != arenas[i] {
			t.Fatalf("frame %d arena was not forwarded intact", i)
		}
		if fr.Records[0].IntVal() != int64(2*i) {
			t.Fatalf("frame %d out of order", i)
		}
		RecycleFrame(fr)
	}
	frames, eof, err = h.PullFrames(ctx, 10)
	if err != nil || eof {
		t.Fatalf("drain pull: err=%v eof=%v", err, eof)
	}
	if len(frames) != 1 || frames[0].Len() != 2 {
		t.Fatalf("expected the last frame, got %v", frames)
	}
	RecycleFrame(frames[0])
	if _, eof, err = h.PullFrames(ctx, 1); err != nil || !eof {
		t.Fatalf("expected eof, got err=%v eof=%v", err, eof)
	}
}

// TestAddRawCopyStagesVolatileBuffers: AddRawCopy must copy the emitted
// bytes into the frame arena so the caller can reuse its buffer, and
// the arena must ride the flushed frame.
func TestAddRawCopyStagesVolatileBuffers(t *testing.T) {
	var got []Frame
	b := NewFrameBuilder(4, writerFunc(func(f Frame) error {
		got = append(got, f)
		return nil
	}))
	buf := make([]byte, 0, 32)
	lines := []string{`{"id":1}`, `{"id":22}`, `{"id":333}`}
	for _, l := range lines {
		buf = append(buf[:0], l...)
		if err := b.AddRawCopy(buf); err != nil {
			t.Fatal(err)
		}
		// Clobber the shared buffer the way a scanner would.
		for i := range buf {
			buf[i] = '#'
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Arena == nil {
		t.Fatalf("want one frame with an arena, got %+v", got)
	}
	for i, l := range lines {
		if string(got[0].Raw[i]) != l {
			t.Fatalf("line %d = %q, want %q (volatile buffer leaked through)", i, got[0].Raw[i], l)
		}
	}
	RecycleFrame(got[0])
}

// TestMapPipeMovesArena: the output frame of a MapPipe must carry the
// input frame's arena, because pass-through and enrichment outputs keep
// referencing it.
func TestMapPipeMovesArena(t *testing.T) {
	arena := GetArena()
	parser := adm.NewParser()
	spine, err := parser.ParseInto([]byte(`{"id":1,"text":"ride along"}`), GetRecordSlice(4), arena)
	if err != nil {
		t.Fatal(err)
	}
	var out []Frame
	m := &MapPipe{Fn: func(v adm.Value) (adm.Value, bool, error) { return v, true, nil }}
	err = m.Push(nil, Frame{Records: spine, Arena: arena}, writerFunc(func(f Frame) error {
		out = append(out, f)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Arena != arena {
		t.Fatal("arena did not move to the MapPipe output frame")
	}
	if got := out[0].Records[0].Field("text").StringVal(); got != "ride along" {
		t.Fatalf("record corrupted crossing MapPipe: %q", got)
	}
	RecycleFrame(out[0])
}

// TestHashConnectorWholesaleForwarding: a frame whose records all hash
// to one target must be forwarded untouched — same spine, same arena —
// while mixed frames are re-bucketed with their spines recycled and
// arenas left to the re-bucketed records.
func TestHashConnectorWholesaleForwarding(t *testing.T) {
	targets := []chan Frame{make(chan Frame, 8), make(chan Frame, 8)}
	var done sync.WaitGroup
	done.Add(1)
	w := &connectorWriter{
		ctx: context.Background(),
		spec: connectorSpec{
			routing: HashPartition,
			hashKey: func(v adm.Value) uint64 { return uint64(v.IntVal()) },
		},
		targets:  targets,
		capacity: 8,
		done:     &done,
	}
	if err := w.Open(); err != nil {
		t.Fatal(err)
	}

	arena := GetArena()
	single := GetRecordSlice(4)
	single = append(single, adm.Int(1), adm.Int(3), adm.Int(5)) // all hash to 1
	if err := w.Push(Frame{Records: single, Arena: arena}); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-targets[1]:
		if f.Arena != arena {
			t.Fatal("wholesale forward lost the arena")
		}
		if len(f.Records) != 3 || &f.Records[0] != &single[0] {
			t.Fatal("single-target frame was copied instead of forwarded")
		}
		RecycleFrame(f)
	default:
		t.Fatal("single-target frame not delivered")
	}

	mixed := GetRecordSlice(4)
	mixed = append(mixed, adm.Int(2), adm.Int(7))
	if err := w.Push(Frame{Records: mixed}); err != nil {
		t.Fatal(err)
	}
	for tgt, want := range map[int]int64{0: 2, 1: 7} {
		select {
		case f := <-targets[tgt]:
			if len(f.Records) != 1 || f.Records[0].IntVal() != want {
				t.Fatalf("target %d got %v, want [%d]", tgt, f.Records, want)
			}
			RecycleFrame(f)
		default:
			t.Fatalf("target %d got nothing", tgt)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
