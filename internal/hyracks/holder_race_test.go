package hyracks

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestPushFrameCloseInputRace is the regression test for the
// send-on-closed-channel panic: the old PassiveHolder checked closed
// under the mutex, released it, then sent, so a concurrent CloseInput
// could close the queue channel in between. Hammer pushes against
// closes; every push must either enqueue or report ErrHolderClosed, and
// nothing may panic. Run with -race.
func TestPushFrameCloseInputRace(t *testing.T) {
	ctx := context.Background()
	for iter := 0; iter < 200; iter++ {
		h := NewPassiveHolder(4)
		var wg sync.WaitGroup
		start := make(chan struct{})
		pushed := make(chan int, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				n := 0
				for i := 0; i < 50; i++ {
					err := h.PushFrame(ctx, Frame{Records: intRecords(1)})
					if err == nil {
						n++
						continue
					}
					if !errors.Is(err, ErrHolderClosed) {
						t.Errorf("PushFrame: %v", err)
						return
					}
					break
				}
				pushed <- n
			}()
		}
		// Drain concurrently so pushes are not just blocked on a full
		// queue, maximizing interleavings with the close.
		drained := make(chan int)
		go func() {
			total := 0
			for {
				frames, eof, err := h.PullFrames(ctx, 16)
				if err != nil {
					t.Errorf("PullFrames: %v", err)
					break
				}
				for _, f := range frames {
					total += f.Len()
					RecycleFrame(f)
				}
				if eof {
					break
				}
			}
			drained <- total
		}()
		close(start)
		h.CloseInput()
		wg.Wait()
		close(pushed)
		want := 0
		for n := range pushed {
			want += n
		}
		got := <-drained
		if got != want {
			t.Fatalf("iter %d: drained %d records before EOF, want %d (successful pushes)", iter, got, want)
		}
		// EOF is a guarantee: nothing may surface after it.
		if frames, _, err := h.PullFrames(ctx, 16); err != nil || len(frames) != 0 {
			t.Fatalf("iter %d: %d frames appeared after EOF (err=%v)", iter, len(frames), err)
		}
	}
}

// TestActiveHolderPushCloseRace is the same hammer for ActiveHolder,
// which had the identical unlock-then-send window.
func TestActiveHolderPushCloseRace(t *testing.T) {
	ctx := context.Background()
	for iter := 0; iter < 200; iter++ {
		h := NewActiveHolder(4)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					if err := h.Push(ctx, Frame{Records: intRecords(1)}); err != nil {
						if !errors.Is(err, ErrHolderClosed) {
							t.Errorf("Push: %v", err)
						}
						return
					}
				}
			}()
		}
		done := make(chan error, 1)
		go func() {
			tc := &TaskContext{Ctx: ctx}
			done <- h.Run(tc, Discard)
		}()
		close(start)
		h.CloseInput()
		wg.Wait()
		if err := <-done; err != nil {
			t.Fatalf("iter %d: Run: %v", iter, err)
		}
	}
}
