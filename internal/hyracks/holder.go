package hyracks

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ideadb/idea/internal/adm"
)

// ErrHolderClosed is returned when pushing into a holder whose input has
// been closed.
var ErrHolderClosed = errors.New("hyracks: partition holder closed")

// holderCore is the queue + close protocol shared by both holder kinds.
//
// The queue channel is never closed: end-of-input is signaled by the
// done channel instead, so a push racing CloseInput can never panic
// with "send on closed channel". The inflight counter tracks pushes
// that are past their closed-check; drains wait those out before
// reporting EOF. Together they give the holder invariant: a push
// either returns ErrHolderClosed, or succeeds and its frame is drained
// before EOF is reported — never a panic, never a silent drop.
type holderCore struct {
	queue    chan Frame
	done     chan struct{}
	once     sync.Once
	inflight atomic.Int64
}

func newHolderCore(capacity int) holderCore {
	if capacity <= 0 {
		capacity = 64
	}
	return holderCore{
		queue: make(chan Frame, capacity),
		done:  make(chan struct{}),
	}
}

// closeInput marks the input finished (idempotent).
func (c *holderCore) closeInput() {
	c.once.Do(func() { close(c.done) })
}

// push enqueues under the close protocol: it blocks when the queue is
// full unless ctx is canceled or the input is closed.
func (c *holderCore) push(ctx context.Context, f Frame) error {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	select {
	case <-c.done:
		return ErrHolderClosed
	default:
	}
	select {
	case c.queue <- f:
		return nil
	case <-c.done:
		return ErrHolderClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// recvAfterClose takes a queued frame after the input was closed,
// waiting out pushes that are past their closed-check (they either
// enqueue promptly or fail — done is closed, so none can block).
// ok=false means the holder is fully drained: no queued frame and no
// in-flight push.
func (c *holderCore) recvAfterClose() (Frame, bool) {
	for {
		select {
		case f := <-c.queue:
			return f, true
		default:
			if c.inflight.Load() == 0 {
				return Frame{}, false
			}
			runtime.Gosched()
		}
	}
}

// takeBuffered moves up to max-len(dst) elements from *store to dst.
// The caller must hold the lock guarding *store.
func takeBuffered[T any](store *[]T, dst []T, max int) []T {
	room := max - len(dst)
	if room <= 0 || len(*store) == 0 {
		return dst
	}
	n := min(room, len(*store))
	dst = append(dst, (*store)[:n]...)
	*store = (*store)[n:]
	if len(*store) == 0 {
		*store = nil
	}
	return dst
}

// stashSplit appends up to max-len(dst) elements of incoming to dst and
// copies the overflow into *overflow. The caller must hold the lock
// guarding *overflow.
func stashSplit[T any](dst, incoming []T, max int, overflow *[]T) []T {
	room := max - len(dst)
	if room >= len(incoming) {
		return append(dst, incoming...)
	}
	dst = append(dst, incoming[:room]...)
	*overflow = append(*overflow, incoming[room:]...)
	return dst
}

// PassiveHolder is the paper's passive partition holder: it guards a
// runtime partition with a bounded frame queue; the owning job pushes
// frames in (implementing Pipe as the job's sink), and *other* jobs pull
// batches out. The intake job ends in one of these so computing jobs can
// collect their input batches. See holderCore for the close protocol.
type PassiveHolder struct {
	core holderCore

	mu          sync.Mutex
	leftover    []adm.Value // records pulled but not yet returned
	leftoverRaw [][]byte    // raw records pulled but not yet returned
}

// NewPassiveHolder returns a holder with the given frame-queue capacity
// (the backpressure bound).
func NewPassiveHolder(capacity int) *PassiveHolder {
	return &PassiveHolder{core: newHolderCore(capacity)}
}

// Open implements Pipe.
func (h *PassiveHolder) Open(*TaskContext, Writer) error { return nil }

// Push implements Pipe: enqueue the frame under the close protocol,
// blocking when full (backpressure to the producer) unless the job is
// canceled.
func (h *PassiveHolder) Push(tc *TaskContext, f Frame, _ Writer) error {
	return h.core.push(tc.Ctx, f)
}

// Close implements Pipe: marks end of input. Pulls drain the queue then
// report EOF.
func (h *PassiveHolder) Close(*TaskContext, Writer) error {
	h.CloseInput()
	return nil
}

// CloseInput marks the holder's input as finished (the "EOF record" of
// the paper's stop-feed protocol).
func (h *PassiveHolder) CloseInput() { h.core.closeInput() }

// PushFrame enqueues a frame from outside a dataflow (adapters use it),
// transferring ownership of the frame's slices to the holder. It blocks
// when the queue is full unless ctx is canceled or the input is closed.
// It is safe against a concurrent CloseInput: the race resolves to
// either a successful enqueue — in which case pulls are guaranteed to
// drain the frame before reporting EOF — or ErrHolderClosed, never a
// panic or a silently dropped frame.
func (h *PassiveHolder) PushFrame(ctx context.Context, f Frame) error {
	return h.core.push(ctx, f)
}

// pullLoop is the shared block-then-drain skeleton of both pull lanes:
// block until at least one record lands in dst (or input is closed),
// then drain without blocking up to max. stash moves one frame's
// records into dst; discard releases dst's (possibly pooled) spine on
// the empty-return paths. eof reports closed *and* fully drained.
func pullLoop[T any](core *holderCore, ctx context.Context, dst []T, max int,
	stash func([]T, Frame, int) []T, discard func([]T)) ([]T, bool, error) {
	if len(dst) == 0 {
		// Block for the first frame.
		select {
		case f := <-core.queue:
			dst = stash(dst, f, max)
		case <-core.done:
			// Input closed; drain anything queued or still in flight.
			f, ok := core.recvAfterClose()
			if !ok {
				discard(dst)
				return nil, true, nil
			}
			dst = stash(dst, f, max)
		case <-ctx.Done():
			discard(dst)
			return nil, false, ctx.Err()
		}
	}
	// Drain whatever else is immediately available.
	for len(dst) < max {
		select {
		case f := <-core.queue:
			dst = stash(dst, f, max)
		default:
			return dst, false, nil
		}
	}
	return dst, false, nil
}

// PullBatch collects up to max parsed records for a computing-job
// invocation. It blocks until at least one record is available (or input
// is closed), then drains without blocking up to the limit. eof reports
// that the holder is closed *and* fully drained. Drained frames are
// recycled once their records are copied out.
func (h *PassiveHolder) PullBatch(ctx context.Context, max int) (recs []adm.Value, eof bool, err error) {
	h.mu.Lock()
	recs = takeBuffered(&h.leftover, nil, max)
	h.mu.Unlock()
	return pullLoop(&h.core, ctx, recs, max, h.stash, func([]adm.Value) {})
}

// PullRawBatch is PullBatch for the raw-bytes lane. The returned slice
// comes from the frame pool; the caller should hand it back with
// PutRawSlice once the records are parsed.
func (h *PassiveHolder) PullRawBatch(ctx context.Context, max int) (raws [][]byte, eof bool, err error) {
	h.mu.Lock()
	raws = takeBuffered(&h.leftoverRaw, GetRawSlice(max), max)
	h.mu.Unlock()
	return pullLoop(&h.core, ctx, raws, max, h.stashRaw, PutRawSlice)
}

// stash appends up to max records, keeping any overflow (and any
// raw-lane records of a mixed frame) for later pulls, then recycles the
// frame — its contents have been copied out.
func (h *PassiveHolder) stash(recs []adm.Value, f Frame, max int) []adm.Value {
	h.mu.Lock()
	recs = stashSplit(recs, f.Records, max, &h.leftover)
	if len(f.Raw) > 0 {
		h.leftoverRaw = append(h.leftoverRaw, f.Raw...)
	}
	h.mu.Unlock()
	RecycleFrame(f)
	return recs
}

// stashRaw is stash for the raw lane.
func (h *PassiveHolder) stashRaw(raws [][]byte, f Frame, max int) [][]byte {
	h.mu.Lock()
	raws = stashSplit(raws, f.Raw, max, &h.leftoverRaw)
	if len(f.Records) > 0 {
		h.leftover = append(h.leftover, f.Records...)
	}
	h.mu.Unlock()
	RecycleFrame(f)
	return raws
}

// Pending reports queued records (approximate; frames in queue plus
// leftovers).
func (h *PassiveHolder) Pending() int {
	h.mu.Lock()
	n := len(h.leftover) + len(h.leftoverRaw)
	h.mu.Unlock()
	n += len(h.core.queue) // frame count, not record count; indicative only
	return n
}

// ActiveHolder is the paper's active partition holder: it heads the
// storage job, receiving frames pushed by computing jobs and actively
// forwarding them into its own job's dataflow. It is a Source from its
// job's perspective. See holderCore for the close protocol.
type ActiveHolder struct {
	core holderCore
}

// NewActiveHolder returns a holder with the given queue capacity.
func NewActiveHolder(capacity int) *ActiveHolder {
	return &ActiveHolder{core: newHolderCore(capacity)}
}

// Push delivers a frame from another job (computing jobs call this),
// transferring ownership of the frame's slices. It blocks when the
// queue is full. A Push racing CloseInput either enqueues — and Run is
// guaranteed to forward the frame before returning — or reports
// ErrHolderClosed.
func (h *ActiveHolder) Push(ctx context.Context, f Frame) error {
	return h.core.push(ctx, f)
}

// CloseInput ends the stream; the owning job's Run drains and returns.
func (h *ActiveHolder) CloseInput() { h.core.closeInput() }

// Run implements Source: forward queued frames downstream until the
// input is closed, then drain what remains (including pushes still in
// flight at close time).
func (h *ActiveHolder) Run(tc *TaskContext, out Writer) error {
	if err := out.Open(); err != nil {
		return err
	}
	for {
		select {
		case f := <-h.core.queue:
			if err := out.Push(f); err != nil {
				return err
			}
		case <-h.core.done:
			for {
				f, ok := h.core.recvAfterClose()
				if !ok {
					return nil
				}
				if err := out.Push(f); err != nil {
					return err
				}
			}
		case <-tc.Ctx.Done():
			return tc.Ctx.Err()
		}
	}
}

// HolderManager is the per-node registry partition holders register
// with, so jobs can locate their peers' endpoints ("jobs sending/
// receiving data to/from another job can locate the corresponding
// partition holders through local partition holder managers").
type HolderManager struct {
	mu      sync.Mutex
	passive map[string]*PassiveHolder
	active  map[string]*ActiveHolder
}

// NewHolderManager returns an empty registry.
func NewHolderManager() *HolderManager {
	return &HolderManager{
		passive: make(map[string]*PassiveHolder),
		active:  make(map[string]*ActiveHolder),
	}
}

// RegisterPassive adds a passive holder under id.
func (m *HolderManager) RegisterPassive(id string, h *PassiveHolder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.passive[id]; dup {
		return fmt.Errorf("hyracks: passive holder %q already registered", id)
	}
	m.passive[id] = h
	return nil
}

// RegisterActive adds an active holder under id.
func (m *HolderManager) RegisterActive(id string, h *ActiveHolder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.active[id]; dup {
		return fmt.Errorf("hyracks: active holder %q already registered", id)
	}
	m.active[id] = h
	return nil
}

// Passive looks up a passive holder.
func (m *HolderManager) Passive(id string) (*PassiveHolder, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.passive[id]
	return h, ok
}

// Active looks up an active holder.
func (m *HolderManager) Active(id string) (*ActiveHolder, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.active[id]
	return h, ok
}

// Unregister removes a holder id from both tables (feed teardown).
func (m *HolderManager) Unregister(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.passive, id)
	delete(m.active, id)
}
