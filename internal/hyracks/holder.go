package hyracks

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/ideadb/idea/internal/adm"
)

// ErrHolderClosed is returned when pushing into a holder whose input has
// been closed.
var ErrHolderClosed = errors.New("hyracks: partition holder closed")

// PassiveHolder is the paper's passive partition holder: it guards a
// runtime partition with a bounded frame queue; the owning job pushes
// frames in (implementing Pipe as the job's sink), and *other* jobs pull
// batches out. The intake job ends in one of these so computing jobs can
// collect their input batches.
type PassiveHolder struct {
	queue chan Frame

	mu     sync.Mutex
	closed bool

	leftover []adm.Value // records pulled but not yet returned
}

// NewPassiveHolder returns a holder with the given frame-queue capacity
// (the backpressure bound).
func NewPassiveHolder(capacity int) *PassiveHolder {
	if capacity <= 0 {
		capacity = 64
	}
	return &PassiveHolder{queue: make(chan Frame, capacity)}
}

// Open implements Pipe.
func (h *PassiveHolder) Open(*TaskContext, Writer) error { return nil }

// Push implements Pipe: enqueue the frame, blocking when full
// (backpressure to the producer) unless the job is canceled.
func (h *PassiveHolder) Push(tc *TaskContext, f Frame, _ Writer) error {
	select {
	case h.queue <- f:
		return nil
	case <-tc.Ctx.Done():
		return tc.Ctx.Err()
	}
}

// Close implements Pipe: marks end of input. Pulls drain the queue then
// report EOF.
func (h *PassiveHolder) Close(*TaskContext, Writer) error {
	h.CloseInput()
	return nil
}

// CloseInput marks the holder's input as finished (the "EOF record" of
// the paper's stop-feed protocol).
func (h *PassiveHolder) CloseInput() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.closed {
		h.closed = true
		close(h.queue)
	}
}

// PushFrame enqueues a frame from outside a dataflow (adapters use it).
// It blocks when the queue is full unless ctx is canceled.
func (h *PassiveHolder) PushFrame(ctx context.Context, f Frame) error {
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return ErrHolderClosed
	}
	select {
	case h.queue <- f:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PullBatch collects up to max records for a computing-job invocation.
// It blocks until at least one record is available (or input is closed),
// then drains without blocking up to the limit. eof reports that the
// holder is closed *and* fully drained.
func (h *PassiveHolder) PullBatch(ctx context.Context, max int) (recs []adm.Value, eof bool, err error) {
	recs = h.takeLeftover(nil, max)
	if len(recs) < max {
		if len(recs) == 0 {
			// Block for the first frame.
			select {
			case f, ok := <-h.queue:
				if !ok {
					return nil, true, nil
				}
				recs = h.stash(recs, f.Records, max)
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		// Drain whatever else is immediately available.
		for len(recs) < max {
			select {
			case f, ok := <-h.queue:
				if !ok {
					return recs, len(recs) == 0, nil
				}
				recs = h.stash(recs, f.Records, max)
			default:
				return recs, false, nil
			}
		}
	}
	return recs, false, nil
}

// stash appends up to max records, keeping any overflow for the next
// pull.
func (h *PassiveHolder) stash(recs, incoming []adm.Value, max int) []adm.Value {
	room := max - len(recs)
	if room >= len(incoming) {
		return append(recs, incoming...)
	}
	recs = append(recs, incoming[:room]...)
	h.mu.Lock()
	h.leftover = append(h.leftover, incoming[room:]...)
	h.mu.Unlock()
	return recs
}

func (h *PassiveHolder) takeLeftover(recs []adm.Value, max int) []adm.Value {
	h.mu.Lock()
	defer h.mu.Unlock()
	room := max - len(recs)
	if room <= 0 || len(h.leftover) == 0 {
		return recs
	}
	n := room
	if n > len(h.leftover) {
		n = len(h.leftover)
	}
	recs = append(recs, h.leftover[:n]...)
	h.leftover = h.leftover[n:]
	if len(h.leftover) == 0 {
		h.leftover = nil
	}
	return recs
}

// Pending reports queued records (approximate; frames in queue plus
// leftovers).
func (h *PassiveHolder) Pending() int {
	h.mu.Lock()
	n := len(h.leftover)
	h.mu.Unlock()
	n += len(h.queue) // frame count, not record count; indicative only
	return n
}

// ActiveHolder is the paper's active partition holder: it heads the
// storage job, receiving frames pushed by computing jobs and actively
// forwarding them into its own job's dataflow. It is a Source from its
// job's perspective.
type ActiveHolder struct {
	queue chan Frame

	mu     sync.Mutex
	closed bool
}

// NewActiveHolder returns a holder with the given queue capacity.
func NewActiveHolder(capacity int) *ActiveHolder {
	if capacity <= 0 {
		capacity = 64
	}
	return &ActiveHolder{queue: make(chan Frame, capacity)}
}

// Push delivers a frame from another job (computing jobs call this). It
// blocks when the queue is full.
func (h *ActiveHolder) Push(ctx context.Context, f Frame) error {
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return ErrHolderClosed
	}
	select {
	case h.queue <- f:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CloseInput ends the stream; the owning job's Run drains and returns.
func (h *ActiveHolder) CloseInput() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.closed {
		h.closed = true
		close(h.queue)
	}
}

// Run implements Source: forward queued frames downstream until the
// input is closed.
func (h *ActiveHolder) Run(tc *TaskContext, out Writer) error {
	if err := out.Open(); err != nil {
		return err
	}
	for {
		select {
		case f, ok := <-h.queue:
			if !ok {
				return nil
			}
			if err := out.Push(f); err != nil {
				return err
			}
		case <-tc.Ctx.Done():
			return tc.Ctx.Err()
		}
	}
}

// HolderManager is the per-node registry partition holders register
// with, so jobs can locate their peers' endpoints ("jobs sending/
// receiving data to/from another job can locate the corresponding
// partition holders through local partition holder managers").
type HolderManager struct {
	mu      sync.Mutex
	passive map[string]*PassiveHolder
	active  map[string]*ActiveHolder
}

// NewHolderManager returns an empty registry.
func NewHolderManager() *HolderManager {
	return &HolderManager{
		passive: make(map[string]*PassiveHolder),
		active:  make(map[string]*ActiveHolder),
	}
}

// RegisterPassive adds a passive holder under id.
func (m *HolderManager) RegisterPassive(id string, h *PassiveHolder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.passive[id]; dup {
		return fmt.Errorf("hyracks: passive holder %q already registered", id)
	}
	m.passive[id] = h
	return nil
}

// RegisterActive adds an active holder under id.
func (m *HolderManager) RegisterActive(id string, h *ActiveHolder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.active[id]; dup {
		return fmt.Errorf("hyracks: active holder %q already registered", id)
	}
	m.active[id] = h
	return nil
}

// Passive looks up a passive holder.
func (m *HolderManager) Passive(id string) (*PassiveHolder, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.passive[id]
	return h, ok
}

// Active looks up an active holder.
func (m *HolderManager) Active(id string) (*ActiveHolder, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.active[id]
	return h, ok
}

// Unregister removes a holder id from both tables (feed teardown).
func (m *HolderManager) Unregister(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.passive, id)
	delete(m.active, id)
}
