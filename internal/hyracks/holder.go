package hyracks

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrHolderClosed is returned when pushing into a holder whose input has
// been closed.
var ErrHolderClosed = errors.New("hyracks: partition holder closed")

// CongestionPolicy selects what an intake holder does when its
// fixed-size frame ring is full. The ring (the queue channel) bounds
// in-memory buffering; the policy decides where the overflow goes.
type CongestionPolicy int

const (
	// Backpressure blocks the producer until the ring has room — the
	// legacy behaviour, and the storage-holder default.
	Backpressure CongestionPolicy = iota
	// Spill diverts overflow frames to the holder's FrameSpiller (a
	// disk-backed FIFO lane); no record is lost and intake memory stays
	// bounded by the ring.
	Spill
	// Shed drops overflow frames while the ring is congested, counting
	// exactly what was dropped (via OnDrop).
	Shed
	// Sample keeps approximately SampleRate of the frames arriving
	// while the ring is congested (deterministic accumulator, not
	// random) and drops the rest, counting drops exactly.
	Sample
)

// String names the policy for stats and logs.
func (p CongestionPolicy) String() string {
	switch p {
	case Backpressure:
		return "backpressure"
	case Spill:
		return "spill"
	case Shed:
		return "shed"
	case Sample:
		return "sample"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// FrameSpiller is the overflow lane a Spill-policy holder diverts
// frames into when its in-memory ring is full: a FIFO queue that
// persists frames (lsm.SpillQueue encodes them CRC-framed through the
// storage filesystem seam). Spill takes ownership of the frame — the
// spiller encodes (preserving the offset provenance) and recycles it;
// Unspill returns a reconstructed frame the caller owns. A spiller is
// driven by one producer (Spill) and one consumer (Unspill/Len)
// serialized by the holder; implementations need not add locking for
// the holder's access pattern, but Len must be safe to call from
// either side.
type FrameSpiller interface {
	Spill(f Frame) error
	Unspill() (Frame, bool, error)
	Len() int
}

// HolderOptions configures a partition holder beyond its ring capacity.
// The zero value is the legacy holder: Backpressure policy, no spill
// lane, no callbacks.
type HolderOptions struct {
	// Capacity bounds the in-memory frame ring (default 64).
	Capacity int
	// Policy selects the overflow behaviour; Spill without a Spiller
	// degrades to Backpressure.
	Policy CongestionPolicy
	// SampleRate is the fraction of congested-arrival frames the Sample
	// policy keeps (0 < rate < 1; outside that range Sample degrades to
	// Shed at <=0 and Backpressure at >=1).
	SampleRate float64
	// Spiller is the overflow lane for the Spill policy.
	Spiller FrameSpiller
	// MaxSpilledFrames bounds the spill lane (0 = unbounded). When the
	// lane is full a push fails with an error wrapping Overloaded — the
	// point where a loss-free policy must reject rather than buffer.
	MaxSpilledFrames int
	// Overloaded is the sentinel wrapped by spill-lane-exhausted errors
	// (the feed layer passes its typed ErrFeedOverloaded).
	Overloaded error
	// OnSpill observes each frame diverted to the spill lane (records =
	// frame record count), before the spiller takes ownership.
	OnSpill func(records int)
	// OnDrop receives each frame dropped by Shed/Sample and takes
	// ownership of it (mark offsets delivered, count records, recycle).
	// sampled distinguishes Sample drops from Shed drops. Nil means the
	// holder recycles dropped frames itself.
	OnDrop func(f Frame, sampled bool)
}

// holderCore is the bounded ring + close/failure protocol shared by
// both holder kinds.
//
// The queue channel is the fixed-size ring and is never closed:
// end-of-input is signaled by the done channel instead, so a push
// racing CloseInput can never panic with "send on closed channel". The
// inflight counter tracks pushes that are past their closed-check;
// drains wait those out before reporting EOF. Together they give the
// holder invariant: a push either returns an error, or succeeds and
// its frame is drained before EOF is reported — never a panic, never a
// silent drop (Shed/Sample drops are deliberate and routed to OnDrop).
//
// FIFO across the two lanes: ring frames are always older than spilled
// frames. A producer spills whenever the spill lane is non-empty (even
// if the ring has room again) and the consumer drains the ring before
// unspilling, so order is preserved end to end. This holds under the
// holders' actual concurrency: one pushing goroutine (the intake job's
// holder task) and one pulling goroutine (the collector; invocations
// run sequentially).
type holderCore struct {
	queue    chan Frame
	done     chan struct{}
	once     sync.Once
	inflight atomic.Int64

	opts HolderOptions

	// spillMu serializes spill-lane access between the producer's
	// overflow path and the consumer's unspill; spillC (cap 1) wakes a
	// blocked consumer when the lane becomes non-empty.
	spillMu sync.Mutex
	spillC  chan struct{}
	// sampleAcc is the Sample policy's keep accumulator; touched only
	// by the single pushing goroutine.
	sampleAcc float64

	// Failure poisoning (partition failover): failedC closes once and
	// every subsequent push/pull returns failErr.
	failOnce sync.Once
	failMu   sync.Mutex
	failErr  error
	failedC  chan struct{}
}

func newHolderCore(opts HolderOptions) holderCore {
	if opts.Capacity <= 0 {
		opts.Capacity = 64
	}
	if opts.Policy == Spill && opts.Spiller == nil {
		opts.Policy = Backpressure
	}
	if opts.Policy == Sample {
		if opts.SampleRate <= 0 {
			opts.Policy = Shed
		} else if opts.SampleRate >= 1 {
			opts.Policy = Backpressure
		}
	}
	return holderCore{
		queue:   make(chan Frame, opts.Capacity),
		done:    make(chan struct{}),
		opts:    opts,
		spillC:  make(chan struct{}, 1),
		failedC: make(chan struct{}),
	}
}

// closeInput marks the input finished (idempotent).
func (c *holderCore) closeInput() {
	c.once.Do(func() { close(c.done) })
}

// fail poisons the holder (the node hosting it died): every later push
// or pull returns err. Idempotent; the first error wins.
func (c *holderCore) fail(err error) {
	c.failOnce.Do(func() {
		c.failMu.Lock()
		c.failErr = err
		c.failMu.Unlock()
		close(c.failedC)
	})
}

// failed returns the poisoning error, or nil.
func (c *holderCore) failed() error {
	select {
	case <-c.failedC:
		c.failMu.Lock()
		defer c.failMu.Unlock()
		return c.failErr
	default:
		return nil
	}
}

// push enqueues under the close protocol and the congestion policy.
func (c *holderCore) push(ctx context.Context, f Frame) error {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	if err := c.failed(); err != nil {
		return err
	}
	select {
	case <-c.done:
		return ErrHolderClosed
	default:
	}
	switch c.opts.Policy {
	case Spill:
		return c.pushSpill(f)
	case Shed:
		return c.pushShed(f)
	case Sample:
		return c.pushSample(ctx, f)
	}
	return c.pushBlocking(ctx, f)
}

// pushBlocking is the Backpressure path: block until the ring has room.
func (c *holderCore) pushBlocking(ctx context.Context, f Frame) error {
	select {
	case c.queue <- f:
		return nil
	case <-c.done:
		return ErrHolderClosed
	case <-c.failedC:
		return c.failed()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// pushSpill diverts overflow to the spill lane. The lane stays in use
// until drained even if the ring has room again — that is the FIFO
// invariant (ring frames older than lane frames).
func (c *holderCore) pushSpill(f Frame) error {
	c.spillMu.Lock()
	if c.opts.Spiller.Len() > 0 {
		err := c.spillLocked(f)
		c.spillMu.Unlock()
		return err
	}
	c.spillMu.Unlock()
	select {
	case c.queue <- f:
		return nil
	default:
	}
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	return c.spillLocked(f)
}

func (c *holderCore) spillLocked(f Frame) error {
	if m := c.opts.MaxSpilledFrames; m > 0 && c.opts.Spiller.Len() >= m {
		err := fmt.Errorf("hyracks: spill lane full (%d frames)", m)
		if c.opts.Overloaded != nil {
			err = fmt.Errorf("%w: spill lane full (%d frames)", c.opts.Overloaded, m)
		}
		return err
	}
	records := f.Len()
	if err := c.opts.Spiller.Spill(f); err != nil {
		return err
	}
	if c.opts.OnSpill != nil {
		c.opts.OnSpill(records)
	}
	select {
	case c.spillC <- struct{}{}:
	default:
	}
	return nil
}

// pushShed drops the frame when the ring is full.
func (c *holderCore) pushShed(f Frame) error {
	select {
	case c.queue <- f:
		return nil
	default:
	}
	c.drop(f, false)
	return nil
}

// pushSample keeps ~SampleRate of congested arrivals (kept frames wait
// for ring room like Backpressure) and drops the rest.
func (c *holderCore) pushSample(ctx context.Context, f Frame) error {
	select {
	case c.queue <- f:
		return nil
	default:
	}
	c.sampleAcc += c.opts.SampleRate
	if c.sampleAcc >= 1 {
		c.sampleAcc--
		return c.pushBlocking(ctx, f)
	}
	c.drop(f, true)
	return nil
}

func (c *holderCore) drop(f Frame, sampled bool) {
	if c.opts.OnDrop != nil {
		c.opts.OnDrop(f, sampled)
		return
	}
	RecycleFrame(f)
}

// takeNB takes the next frame without blocking, honoring lane order:
// ring first, then spill lane.
func (c *holderCore) takeNB() (Frame, bool, error) {
	select {
	case f := <-c.queue:
		return f, true, nil
	default:
	}
	if sp := c.opts.Spiller; sp != nil {
		c.spillMu.Lock()
		f, ok, err := sp.Unspill()
		c.spillMu.Unlock()
		if err != nil || ok {
			return f, ok, err
		}
	}
	return Frame{}, false, nil
}

// recvAfterClose takes a frame after the input was closed, waiting out
// pushes that are past their closed-check (they either enqueue/spill
// promptly or fail — done is closed, so none can block). ok=false means
// the holder is fully drained: nothing ringed, nothing spilled, no
// in-flight push.
func (c *holderCore) recvAfterClose() (Frame, bool, error) {
	for {
		f, ok, err := c.takeNB()
		if err != nil || ok {
			return f, ok, err
		}
		if c.inflight.Load() == 0 {
			// A push may have landed its frame and decremented inflight
			// between our poll above and the load — one final poll
			// closes that window, keeping the "never a silent drop"
			// invariant.
			return c.takeNB()
		}
		runtime.Gosched()
	}
}

// PassiveHolder is the paper's passive partition holder: it guards a
// runtime partition with a bounded frame ring (plus an optional spill
// lane); the owning job pushes frames in (implementing Pipe as the
// job's sink), and *other* jobs pull frame batches out. The intake job
// ends in one of these so computing jobs can collect their input
// batches. See holderCore for the close/congestion protocol.
type PassiveHolder struct {
	core holderCore
}

// NewPassiveHolder returns a legacy backpressure holder with the given
// ring capacity.
func NewPassiveHolder(capacity int) *PassiveHolder {
	return NewPassiveHolderOpts(HolderOptions{Capacity: capacity})
}

// NewPassiveHolderOpts returns a holder with a full congestion
// configuration (policy, spill lane, drop callbacks).
func NewPassiveHolderOpts(opts HolderOptions) *PassiveHolder {
	return &PassiveHolder{core: newHolderCore(opts)}
}

// Open implements Pipe.
func (h *PassiveHolder) Open(*TaskContext, Writer) error { return nil }

// Push implements Pipe: enqueue the frame under the close protocol and
// the holder's congestion policy (Backpressure blocks when full; Spill
// diverts to the lane; Shed/Sample may drop).
func (h *PassiveHolder) Push(tc *TaskContext, f Frame, _ Writer) error {
	return h.core.push(tc.Ctx, f)
}

// Close implements Pipe: marks end of input. Pulls drain the ring and
// spill lane, then report EOF.
func (h *PassiveHolder) Close(*TaskContext, Writer) error {
	h.CloseInput()
	return nil
}

// CloseInput marks the holder's input as finished (the "EOF record" of
// the paper's stop-feed protocol).
func (h *PassiveHolder) CloseInput() { h.core.closeInput() }

// Fail poisons the holder (partition failover): every subsequent push
// or pull returns err, so jobs wired to this holder fail fast instead
// of wedging on a dead partition.
func (h *PassiveHolder) Fail(err error) { h.core.fail(err) }

// PushFrame enqueues a frame from outside a dataflow (adapters use it),
// transferring ownership of the frame's slices to the holder, under the
// same close/congestion protocol as Push.
func (h *PassiveHolder) PushFrame(ctx context.Context, f Frame) error {
	return h.core.push(ctx, f)
}

// PullFrames collects whole frames for a computing-job invocation: it
// blocks until at least one frame is available (or input is closed),
// then drains without blocking until the pulled frames total at least
// max records. Frames are never split, so nothing is copied and each
// frame's arena travels intact with its records — the batch may
// overshoot max by up to one frame's worth (producers size their frames
// to the batch quota; see core.buildIntakeSpec). Ring frames drain
// before spilled frames (FIFO across lanes). The caller takes ownership
// of every returned frame (recycle each per the package rules). eof
// reports closed *and* fully drained.
func (h *PassiveHolder) PullFrames(ctx context.Context, max int) (frames []Frame, eof bool, err error) {
	c := &h.core
	total := 0
	take := func(f Frame) {
		frames = append(frames, f)
		total += f.Len()
	}
	for len(frames) == 0 {
		if err := c.failed(); err != nil {
			return nil, false, err
		}
		f, ok, err := c.takeNB()
		if err != nil {
			return nil, false, err
		}
		if ok {
			take(f)
			break
		}
		select {
		case f := <-c.queue:
			take(f)
		case <-c.spillC:
			// The lane became non-empty; loop and take from it.
		case <-c.done:
			f, ok, err := c.recvAfterClose()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, true, nil
			}
			take(f)
		case <-c.failedC:
			return nil, false, c.failed()
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	for total < max {
		f, ok, err := c.takeNB()
		if err != nil {
			return frames, false, err
		}
		if !ok {
			break
		}
		take(f)
	}
	return frames, false, nil
}

// Pending reports frames ringed in memory (indicative only; a frame
// holds many records). Spilled frames are NOT included — Pending is the
// bounded-intake gauge, never exceeding the ring capacity.
func (h *PassiveHolder) Pending() int { return len(h.core.queue) }

// SpilledPending reports frames currently parked in the spill lane.
func (h *PassiveHolder) SpilledPending() int {
	if h.core.opts.Spiller == nil {
		return 0
	}
	return h.core.opts.Spiller.Len()
}

// ActiveHolder is the paper's active partition holder: it heads the
// storage job, receiving frames pushed by computing jobs and actively
// forwarding them into its own job's dataflow. It is a Source from its
// job's perspective. See holderCore for the close protocol.
type ActiveHolder struct {
	core holderCore
}

// NewActiveHolder returns a holder with the given ring capacity
// (storage holders keep the Backpressure policy: the paper's storage
// back-pressure is what the AFM batching responds to).
func NewActiveHolder(capacity int) *ActiveHolder {
	return &ActiveHolder{core: newHolderCore(HolderOptions{Capacity: capacity})}
}

// Push delivers a frame from another job (computing jobs call this),
// transferring ownership of the frame's slices. It blocks when the
// ring is full. A Push racing CloseInput either enqueues — and Run is
// guaranteed to forward the frame before returning — or reports
// ErrHolderClosed.
func (h *ActiveHolder) Push(ctx context.Context, f Frame) error {
	return h.core.push(ctx, f)
}

// CloseInput ends the stream; the owning job's Run drains and returns.
func (h *ActiveHolder) CloseInput() { h.core.closeInput() }

// Fail poisons the holder — see PassiveHolder.Fail.
func (h *ActiveHolder) Fail(err error) { h.core.fail(err) }

// Run implements Source: forward queued frames downstream until the
// input is closed, then drain what remains (including pushes still in
// flight at close time).
func (h *ActiveHolder) Run(tc *TaskContext, out Writer) error {
	if err := out.Open(); err != nil {
		return err
	}
	c := &h.core
	for {
		select {
		case f := <-c.queue:
			if err := out.Push(f); err != nil {
				return err
			}
		case <-c.done:
			for {
				f, ok, err := c.recvAfterClose()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if err := out.Push(f); err != nil {
					return err
				}
			}
		case <-c.failedC:
			return c.failed()
		case <-tc.Ctx.Done():
			return tc.Ctx.Err()
		}
	}
}

// HolderManager is the per-node registry partition holders register
// with, so jobs can locate their peers' endpoints ("jobs sending/
// receiving data to/from another job can locate the corresponding
// partition holders through local partition holder managers").
type HolderManager struct {
	mu      sync.Mutex
	passive map[string]*PassiveHolder
	active  map[string]*ActiveHolder
}

// NewHolderManager returns an empty registry.
func NewHolderManager() *HolderManager {
	return &HolderManager{
		passive: make(map[string]*PassiveHolder),
		active:  make(map[string]*ActiveHolder),
	}
}

// RegisterPassive adds a passive holder under id.
func (m *HolderManager) RegisterPassive(id string, h *PassiveHolder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.passive[id]; dup {
		return fmt.Errorf("hyracks: passive holder %q already registered", id)
	}
	m.passive[id] = h
	return nil
}

// RegisterActive adds an active holder under id.
func (m *HolderManager) RegisterActive(id string, h *ActiveHolder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.active[id]; dup {
		return fmt.Errorf("hyracks: active holder %q already registered", id)
	}
	m.active[id] = h
	return nil
}

// Passive looks up a passive holder.
func (m *HolderManager) Passive(id string) (*PassiveHolder, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.passive[id]
	return h, ok
}

// Active looks up an active holder.
func (m *HolderManager) Active(id string) (*ActiveHolder, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.active[id]
	return h, ok
}

// Unregister removes a holder id from both tables (feed teardown).
func (m *HolderManager) Unregister(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.passive, id)
	delete(m.active, id)
}

// FailAll poisons every registered holder with err — the node died.
// Jobs pushing to or pulling from this node's holders fail on their
// next touch instead of blocking forever.
func (m *HolderManager) FailAll(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range m.passive {
		h.Fail(err)
	}
	for _, h := range m.active {
		h.Fail(err)
	}
}
