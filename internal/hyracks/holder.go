package hyracks

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrHolderClosed is returned when pushing into a holder whose input has
// been closed.
var ErrHolderClosed = errors.New("hyracks: partition holder closed")

// holderCore is the queue + close protocol shared by both holder kinds.
//
// The queue channel is never closed: end-of-input is signaled by the
// done channel instead, so a push racing CloseInput can never panic
// with "send on closed channel". The inflight counter tracks pushes
// that are past their closed-check; drains wait those out before
// reporting EOF. Together they give the holder invariant: a push
// either returns ErrHolderClosed, or succeeds and its frame is drained
// before EOF is reported — never a panic, never a silent drop.
type holderCore struct {
	queue    chan Frame
	done     chan struct{}
	once     sync.Once
	inflight atomic.Int64
}

func newHolderCore(capacity int) holderCore {
	if capacity <= 0 {
		capacity = 64
	}
	return holderCore{
		queue: make(chan Frame, capacity),
		done:  make(chan struct{}),
	}
}

// closeInput marks the input finished (idempotent).
func (c *holderCore) closeInput() {
	c.once.Do(func() { close(c.done) })
}

// push enqueues under the close protocol: it blocks when the queue is
// full unless ctx is canceled or the input is closed.
func (c *holderCore) push(ctx context.Context, f Frame) error {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	select {
	case <-c.done:
		return ErrHolderClosed
	default:
	}
	select {
	case c.queue <- f:
		return nil
	case <-c.done:
		return ErrHolderClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// recvAfterClose takes a queued frame after the input was closed,
// waiting out pushes that are past their closed-check (they either
// enqueue promptly or fail — done is closed, so none can block).
// ok=false means the holder is fully drained: no queued frame and no
// in-flight push.
func (c *holderCore) recvAfterClose() (Frame, bool) {
	for {
		select {
		case f := <-c.queue:
			return f, true
		default:
			if c.inflight.Load() == 0 {
				// A push may have enqueued its frame and decremented
				// inflight between our queue poll above and the load —
				// one final poll closes that window, keeping the
				// "never a silent drop" invariant.
				select {
				case f := <-c.queue:
					return f, true
				default:
					return Frame{}, false
				}
			}
			runtime.Gosched()
		}
	}
}

// PassiveHolder is the paper's passive partition holder: it guards a
// runtime partition with a bounded frame queue; the owning job pushes
// frames in (implementing Pipe as the job's sink), and *other* jobs pull
// frame batches out. The intake job ends in one of these so computing
// jobs can collect their input batches. See holderCore for the close
// protocol.
type PassiveHolder struct {
	core holderCore
}

// NewPassiveHolder returns a holder with the given frame-queue capacity
// (the backpressure bound).
func NewPassiveHolder(capacity int) *PassiveHolder {
	return &PassiveHolder{core: newHolderCore(capacity)}
}

// Open implements Pipe.
func (h *PassiveHolder) Open(*TaskContext, Writer) error { return nil }

// Push implements Pipe: enqueue the frame under the close protocol,
// blocking when full (backpressure to the producer) unless the job is
// canceled.
func (h *PassiveHolder) Push(tc *TaskContext, f Frame, _ Writer) error {
	return h.core.push(tc.Ctx, f)
}

// Close implements Pipe: marks end of input. Pulls drain the queue then
// report EOF.
func (h *PassiveHolder) Close(*TaskContext, Writer) error {
	h.CloseInput()
	return nil
}

// CloseInput marks the holder's input as finished (the "EOF record" of
// the paper's stop-feed protocol).
func (h *PassiveHolder) CloseInput() { h.core.closeInput() }

// PushFrame enqueues a frame from outside a dataflow (adapters use it),
// transferring ownership of the frame's slices to the holder. It blocks
// when the queue is full unless ctx is canceled or the input is closed.
// It is safe against a concurrent CloseInput: the race resolves to
// either a successful enqueue — in which case pulls are guaranteed to
// drain the frame before reporting EOF — or ErrHolderClosed, never a
// panic or a silently dropped frame.
func (h *PassiveHolder) PushFrame(ctx context.Context, f Frame) error {
	return h.core.push(ctx, f)
}

// PullFrames collects whole frames for a computing-job invocation:
// it blocks until at least one frame is available (or input is closed),
// then drains without blocking until the pulled frames total at least
// max records. Frames are never split, so nothing is copied and each
// frame's arena travels intact with its records — the batch may
// overshoot max by up to one frame's worth (producers size their frames
// to the batch quota; see core.buildIntakeSpec). The caller takes
// ownership of every returned frame (recycle each per the package
// rules). eof reports closed *and* fully drained.
func (h *PassiveHolder) PullFrames(ctx context.Context, max int) (frames []Frame, eof bool, err error) {
	total := 0
	take := func(f Frame) {
		frames = append(frames, f)
		total += f.Len()
	}
	select {
	case f := <-h.core.queue:
		take(f)
	case <-h.core.done:
		f, ok := h.core.recvAfterClose()
		if !ok {
			return nil, true, nil
		}
		take(f)
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	for total < max {
		select {
		case f := <-h.core.queue:
			take(f)
		default:
			return frames, false, nil
		}
	}
	return frames, false, nil
}

// Pending reports queued frames (indicative only; a frame holds many
// records).
func (h *PassiveHolder) Pending() int { return len(h.core.queue) }

// ActiveHolder is the paper's active partition holder: it heads the
// storage job, receiving frames pushed by computing jobs and actively
// forwarding them into its own job's dataflow. It is a Source from its
// job's perspective. See holderCore for the close protocol.
type ActiveHolder struct {
	core holderCore
}

// NewActiveHolder returns a holder with the given queue capacity.
func NewActiveHolder(capacity int) *ActiveHolder {
	return &ActiveHolder{core: newHolderCore(capacity)}
}

// Push delivers a frame from another job (computing jobs call this),
// transferring ownership of the frame's slices. It blocks when the
// queue is full. A Push racing CloseInput either enqueues — and Run is
// guaranteed to forward the frame before returning — or reports
// ErrHolderClosed.
func (h *ActiveHolder) Push(ctx context.Context, f Frame) error {
	return h.core.push(ctx, f)
}

// CloseInput ends the stream; the owning job's Run drains and returns.
func (h *ActiveHolder) CloseInput() { h.core.closeInput() }

// Run implements Source: forward queued frames downstream until the
// input is closed, then drain what remains (including pushes still in
// flight at close time).
func (h *ActiveHolder) Run(tc *TaskContext, out Writer) error {
	if err := out.Open(); err != nil {
		return err
	}
	for {
		select {
		case f := <-h.core.queue:
			if err := out.Push(f); err != nil {
				return err
			}
		case <-h.core.done:
			for {
				f, ok := h.core.recvAfterClose()
				if !ok {
					return nil
				}
				if err := out.Push(f); err != nil {
					return err
				}
			}
		case <-tc.Ctx.Done():
			return tc.Ctx.Err()
		}
	}
}

// HolderManager is the per-node registry partition holders register
// with, so jobs can locate their peers' endpoints ("jobs sending/
// receiving data to/from another job can locate the corresponding
// partition holders through local partition holder managers").
type HolderManager struct {
	mu      sync.Mutex
	passive map[string]*PassiveHolder
	active  map[string]*ActiveHolder
}

// NewHolderManager returns an empty registry.
func NewHolderManager() *HolderManager {
	return &HolderManager{
		passive: make(map[string]*PassiveHolder),
		active:  make(map[string]*ActiveHolder),
	}
}

// RegisterPassive adds a passive holder under id.
func (m *HolderManager) RegisterPassive(id string, h *PassiveHolder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.passive[id]; dup {
		return fmt.Errorf("hyracks: passive holder %q already registered", id)
	}
	m.passive[id] = h
	return nil
}

// RegisterActive adds an active holder under id.
func (m *HolderManager) RegisterActive(id string, h *ActiveHolder) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.active[id]; dup {
		return fmt.Errorf("hyracks: active holder %q already registered", id)
	}
	m.active[id] = h
	return nil
}

// Passive looks up a passive holder.
func (m *HolderManager) Passive(id string) (*PassiveHolder, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.passive[id]
	return h, ok
}

// Active looks up an active holder.
func (m *HolderManager) Active(id string) (*ActiveHolder, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.active[id]
	return h, ok
}

// Unregister removes a holder id from both tables (feed teardown).
func (m *HolderManager) Unregister(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.passive, id)
	delete(m.active, id)
}
