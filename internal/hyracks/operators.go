package hyracks

import (
	"errors"
	"sync"

	"github.com/ideadb/idea/internal/adm"
)

// MapPipe applies fn to each record. A nil result drops the record
// (filtering). Fn must not retain input values past the call without
// Materializing them: output values may share the input frame's arena,
// which MapPipe moves to the output frame, but anything stashed aside
// would dangle once the pipeline recycles that frame.
type MapPipe struct {
	Fn func(adm.Value) (adm.Value, bool, error)
}

// Open implements Pipe.
func (m *MapPipe) Open(*TaskContext, Writer) error { return nil }

// Push implements Pipe.
func (m *MapPipe) Push(_ *TaskContext, f Frame, out Writer) error {
	if len(f.Raw) > 0 {
		// Dropping unparsed records silently would be data loss; raw
		// frames must go through a parser before any record operator.
		return errors.New("hyracks: raw-lane frame reached MapPipe; parse records first")
	}
	outRecs := GetRecordSlice(len(f.Records))
	for _, rec := range f.Records {
		v, keep, err := m.Fn(rec)
		if err != nil {
			PutRecordSlice(outRecs)
			RecycleFrame(f)
			return err
		}
		if keep {
			outRecs = append(outRecs, v)
		}
	}
	// Output values may reference the input frame's arena (the no-UDF
	// pass-through forwards records verbatim; enrichment outputs embed
	// input fields), so the arena migrates to the output frame. Shared
	// frames keep theirs: it is never recycled, so references stay
	// valid without a transfer.
	arena := f.Arena
	if f.Shared {
		arena = nil
	} else {
		f.Arena = nil
	}
	RecycleFrameSpines(f)
	if len(outRecs) == 0 {
		// Every record dropped: nothing references the arena anymore.
		PutRecordSlice(outRecs)
		PutArena(arena)
		return nil
	}
	return out.Push(Frame{Records: outRecs, Arena: arena})
}

// Close implements Pipe.
func (m *MapPipe) Close(*TaskContext, Writer) error { return nil }

// SinkPipe consumes records with fn and forwards nothing.
type SinkPipe struct {
	Fn      func(tc *TaskContext, f Frame) error
	OnClose func(tc *TaskContext) error
}

// Open implements Pipe.
func (s *SinkPipe) Open(*TaskContext, Writer) error { return nil }

// Push implements Pipe.
func (s *SinkPipe) Push(tc *TaskContext, f Frame, _ Writer) error {
	return s.Fn(tc, f)
}

// Close implements Pipe.
func (s *SinkPipe) Close(tc *TaskContext, _ Writer) error {
	if s.OnClose != nil {
		return s.OnClose(tc)
	}
	return nil
}

// SliceSource emits a record slice as frames (tests and bulk loads).
type SliceSource struct {
	Records  []adm.Value
	FrameCap int
}

// Run implements Source.
func (s *SliceSource) Run(tc *TaskContext, out Writer) error {
	if err := out.Open(); err != nil {
		return err
	}
	b := NewFrameBuilder(s.FrameCap, out)
	for _, rec := range s.Records {
		select {
		case <-tc.Ctx.Done():
			return tc.Ctx.Err()
		default:
		}
		if err := b.Add(rec); err != nil {
			return err
		}
	}
	return b.Flush()
}

// Collector is a concurrency-safe record sink used by tests and result
// delivery.
type Collector struct {
	mu   sync.Mutex
	recs []adm.Value
}

// Sink returns a SinkPipe appending into the collector. The collector
// retains the records, so only the frame spines are recycled; any
// arenas stay alive through the retained values.
func (c *Collector) Sink() *SinkPipe {
	return &SinkPipe{Fn: func(_ *TaskContext, f Frame) error {
		c.mu.Lock()
		c.recs = append(c.recs, f.Records...)
		c.mu.Unlock()
		RecycleFrameSpines(f)
		return nil
	}}
}

// Records returns a copy of everything collected.
func (c *Collector) Records() []adm.Value {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]adm.Value(nil), c.recs...)
}

// Len returns the number of collected records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}
