// Package hyracks implements the partitioned-parallel dataflow runtime
// the ingestion framework runs on, mirroring the architecture of the
// Hyracks engine underneath AsterixDB: jobs are DAGs of operators and
// connectors; data flows in frames of records; each operator runs one
// instance per partition; connectors route frames between partitions
// (one-to-one, round-robin, hash, broadcast).
//
// It also provides the paper's partition holders: queue-guarded
// endpoints that let one job hand frames to another at runtime, which
// plain Hyracks jobs cannot do ("data exchanges in Hyracks are limited
// to being within the scope of a job").
package hyracks

import (
	"github.com/ideadb/idea/internal/adm"
)

// Frame is a batch of records moving through a dataflow, the unit of
// transfer between operators.
type Frame struct {
	Records []adm.Value
}

// Len returns the number of records in the frame.
func (f Frame) Len() int { return len(f.Records) }

// Writer is the push-based receiving surface of a downstream operator or
// connector (Hyracks' IFrameWriter).
type Writer interface {
	// Open readies the writer; it is called exactly once before any Push.
	Open() error
	// Push delivers one frame.
	Push(f Frame) error
	// Close signals end-of-data; no Push may follow.
	Close() error
}

// discardWriter terminates a dataflow branch with no consumers.
type discardWriter struct{}

func (discardWriter) Open() error      { return nil }
func (discardWriter) Push(Frame) error { return nil }
func (discardWriter) Close() error     { return nil }

// Discard is a Writer that drops everything (the output of sink
// operators).
var Discard Writer = discardWriter{}

// FrameBuilder accumulates records and emits full frames to a Writer.
type FrameBuilder struct {
	capacity int
	buf      []adm.Value
	out      Writer
}

// NewFrameBuilder returns a builder emitting frames of up to capacity
// records into out.
func NewFrameBuilder(capacity int, out Writer) *FrameBuilder {
	if capacity <= 0 {
		capacity = 128
	}
	return &FrameBuilder{capacity: capacity, out: out}
}

// Add appends one record, flushing when the frame is full.
func (b *FrameBuilder) Add(rec adm.Value) error {
	b.buf = append(b.buf, rec)
	if len(b.buf) >= b.capacity {
		return b.Flush()
	}
	return nil
}

// Flush emits any buffered records as a frame.
func (b *FrameBuilder) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	f := Frame{Records: b.buf}
	b.buf = make([]adm.Value, 0, b.capacity)
	return b.out.Push(f)
}
