// Package hyracks implements the partitioned-parallel dataflow runtime
// the ingestion framework runs on, mirroring the architecture of the
// Hyracks engine underneath AsterixDB: jobs are DAGs of operators and
// connectors; data flows in frames of records; each operator runs one
// instance per partition; connectors route frames between partitions
// (one-to-one, round-robin, hash, broadcast).
//
// It also provides the paper's partition holders: queue-guarded
// endpoints that let one job hand frames to another at runtime, which
// plain Hyracks jobs cannot do ("data exchanges in Hyracks are limited
// to being within the scope of a job").
//
// # Frame ownership and recycling
//
// Frame slices are pooled to keep the ingestion hot path allocation-
// lean. The ownership discipline is:
//
//   - Pushing a frame into a Writer or holder transfers ownership of
//     its Records/Raw slices downstream; the producer must not touch
//     them afterwards.
//   - The final consumer of a frame — a sink that has copied or stored
//     every record it needs (the storage writer after its WAL commit, a
//     holder pull after copying records out) — returns the slices to
//     the pool with RecycleFrame.
//   - Broadcast connectors deliver one frame to many consumers; such
//     frames are marked Shared and RecycleFrame ignores them, so no
//     consumer can pull the backing array out from under another.
//   - Record values themselves are never pooled: adm.Value payloads are
//     immutable-by-convention and may outlive the frame (storage keeps
//     them). Recycling only reuses the slice spines.
package hyracks

import (
	"sync"

	"github.com/ideadb/idea/internal/adm"
)

// Frame is a batch of records moving through a dataflow, the unit of
// transfer between operators. It has two lanes: Records carries parsed
// ADM values; Raw carries unparsed record bytes so adapters can ship
// data to the parser without copying or wrapping it. A frame normally
// uses exactly one lane.
type Frame struct {
	Records []adm.Value
	Raw     [][]byte
	// Shared marks a frame delivered to multiple consumers (broadcast
	// routing); RecycleFrame refuses shared frames.
	Shared bool
}

// Len returns the number of records in the frame across both lanes.
func (f Frame) Len() int { return len(f.Records) + len(f.Raw) }

// Writer is the push-based receiving surface of a downstream operator or
// connector (Hyracks' IFrameWriter).
type Writer interface {
	// Open readies the writer; it is called exactly once before any Push.
	Open() error
	// Push delivers one frame, transferring ownership of its slices.
	Push(f Frame) error
	// Close signals end-of-data; no Push may follow.
	Close() error
}

// discardWriter terminates a dataflow branch with no consumers.
type discardWriter struct{}

func (discardWriter) Open() error { return nil }
func (discardWriter) Push(f Frame) error {
	RecycleFrame(f)
	return nil
}
func (discardWriter) Close() error { return nil }

// Discard is a Writer that drops everything (the output of sink
// operators).
var Discard Writer = discardWriter{}

// minPooledCap is the smallest capacity for freshly allocated pooled
// slices, so tiny first requests still produce reusable buffers.
const minPooledCap = 64

var recordSlicePool = sync.Pool{}

// GetRecordSlice returns an empty record slice with at least the given
// capacity hint, reusing a pooled spine when one is available. A pooled
// spine smaller than the hint is dropped rather than recirculated, so
// undersized spines don't keep forcing regrowth at large-batch sites;
// the pool converges on spines big enough for every caller.
func GetRecordSlice(capacity int) []adm.Value {
	if v := recordSlicePool.Get(); v != nil {
		if s := (*v.(*[]adm.Value))[:0]; cap(s) >= capacity {
			return s
		}
	}
	if capacity < minPooledCap {
		capacity = minPooledCap
	}
	return make([]adm.Value, 0, capacity)
}

// PutRecordSlice returns a record slice's spine to the pool. The caller
// must own the full backing array: no other holder of the slice (or any
// subslice) may use it afterwards. The array is cleared so pooled spines
// do not pin record payloads.
func PutRecordSlice(s []adm.Value) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	recordSlicePool.Put(&s)
}

var rawSlicePool = sync.Pool{}

// GetRawSlice is GetRecordSlice for the raw-bytes lane.
func GetRawSlice(capacity int) [][]byte {
	if v := rawSlicePool.Get(); v != nil {
		if s := (*v.(*[][]byte))[:0]; cap(s) >= capacity {
			return s
		}
	}
	if capacity < minPooledCap {
		capacity = minPooledCap
	}
	return make([][]byte, 0, capacity)
}

// PutRawSlice is PutRecordSlice for the raw-bytes lane.
func PutRawSlice(s [][]byte) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	rawSlicePool.Put(&s)
}

// RecycleFrame returns both of a frame's slices to their pools. It is
// called by the frame's final consumer (see the package comment for the
// ownership rules) and is a no-op for shared frames.
func RecycleFrame(f Frame) {
	if f.Shared {
		return
	}
	if f.Records != nil {
		PutRecordSlice(f.Records)
	}
	if f.Raw != nil {
		PutRawSlice(f.Raw)
	}
}

// FrameBuilder accumulates records and emits full frames to a Writer.
// Its buffers come from the frame pool; each Flush transfers the buffer
// downstream and the next Add draws a fresh (usually recycled) one.
type FrameBuilder struct {
	capacity int
	buf      []adm.Value
	raw      [][]byte
	out      Writer
}

// NewFrameBuilder returns a builder emitting frames of up to capacity
// records into out.
func NewFrameBuilder(capacity int, out Writer) *FrameBuilder {
	if capacity <= 0 {
		capacity = 128
	}
	return &FrameBuilder{capacity: capacity, out: out}
}

// Add appends one parsed record, flushing when the frame is full.
func (b *FrameBuilder) Add(rec adm.Value) error {
	if b.buf == nil {
		b.buf = GetRecordSlice(b.capacity)
	}
	b.buf = append(b.buf, rec)
	if len(b.buf)+len(b.raw) >= b.capacity {
		return b.Flush()
	}
	return nil
}

// AddRaw appends one raw record's bytes (not copied — the caller must
// not mutate them afterwards), flushing when the frame is full.
func (b *FrameBuilder) AddRaw(rec []byte) error {
	if b.raw == nil {
		b.raw = GetRawSlice(b.capacity)
	}
	b.raw = append(b.raw, rec)
	if len(b.buf)+len(b.raw) >= b.capacity {
		return b.Flush()
	}
	return nil
}

// Flush emits any buffered records as a frame, transferring buffer
// ownership downstream.
func (b *FrameBuilder) Flush() error {
	if len(b.buf) == 0 && len(b.raw) == 0 {
		return nil
	}
	f := Frame{Records: b.buf, Raw: b.raw}
	b.buf, b.raw = nil, nil
	return b.out.Push(f)
}
