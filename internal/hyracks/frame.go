// Package hyracks implements the partitioned-parallel dataflow runtime
// the ingestion framework runs on, mirroring the architecture of the
// Hyracks engine underneath AsterixDB: jobs are DAGs of operators and
// connectors; data flows in frames of records; each operator runs one
// instance per partition; connectors route frames between partitions
// (one-to-one, round-robin, hash, broadcast).
//
// It also provides the paper's partition holders: queue-guarded
// endpoints that let one job hand frames to another at runtime, which
// plain Hyracks jobs cannot do ("data exchanges in Hyracks are limited
// to being within the scope of a job").
//
// # Frame ownership and recycling
//
// Frame slices and byte arenas are pooled to keep the ingestion hot
// path allocation-lean. This comment is the normative statement of the
// discipline; docs/ARCHITECTURE.md walks through it with examples.
//
//   - Pushing a frame into a Writer or holder transfers ownership of
//     its Records/Raw slices and its Arena downstream; the producer
//     must not touch them afterwards.
//   - A frame's Arena backs its payloads: raw-lane line bytes and the
//     string/object memory of records parsed into it (adm.Arena). The
//     records are valid only while the arena is live and un-Reset.
//   - RecycleFrame is the full recycle — spines and arena go back to
//     their pools. Only a consumer that has dropped or Materialized
//     every record (and copied every raw line it needs) may call it;
//     the arena will be reset and its bytes overwritten by the next
//     frame.
//   - RecycleFrameSpines recycles only the slice spines. A consumer
//     that retains records un-materialized (the storage writer, the
//     test Collector) uses it: the retained values keep the arena
//     alive and the garbage collector reclaims it when they die.
//   - Operators that forward values from an input frame to an output
//     frame (MapPipe, single-target hash flushes) move the Arena to
//     the output frame so it travels with the values that reference
//     it.
//   - Broadcast connectors deliver one frame to many consumers; such
//     frames are marked Shared and both recycle calls ignore them, so
//     no consumer can pull the backing memory out from under another.
//     Retaining a value from a Shared frame is safe (the arena is
//     never reset) but pins the whole frame; Materialize (or Detach
//     for a whole frame) releases the pin.
//   - Record values are never pooled: adm.Value payloads are
//     immutable-by-convention. Arena-backed payloads may outlive any
//     frame via RecycleFrameSpines; heap payloads always may.
//   - Handing a frame to the storage layer (lsm.Dataset.UpsertFrame,
//     or a storage writer calling lsm.Partition.UpsertBatch) transfers
//     ownership like a Push: storage retains the records, the storage
//     side recycles the spines (UpsertFrame itself; the writer after
//     UpsertBatch returns), and nobody resets the arena — it stays
//     alive through the retained values. The producer must not touch
//     the frame after the call; on an UpsertFrame error the frame is
//     NOT consumed and ownership stays with the caller.
package hyracks

import (
	"sync"

	"github.com/ideadb/idea/internal/adm"
)

// Frame is a batch of records moving through a dataflow, the unit of
// transfer between operators. It has two lanes: Records carries parsed
// ADM values; Raw carries unparsed record bytes so adapters can ship
// data to the parser without copying or wrapping it. A frame normally
// uses exactly one lane.
type Frame struct {
	Records []adm.Value
	Raw     [][]byte
	// Arena, when non-nil, owns the byte/object memory backing this
	// frame's payloads: raw-lane lines staged from volatile adapter
	// buffers, or the string/object storage of records parsed into it.
	// It moves with the frame (see the package comment's ownership
	// rules) and is reset + pooled by RecycleFrame.
	Arena *adm.Arena
	// Shared marks a frame delivered to multiple consumers (broadcast
	// routing); RecycleFrame refuses shared frames.
	Shared bool

	// Adapter and FirstOff/LastOff locate the frame in its source
	// adapter's offset space for at-least-once checkpointing: the frame
	// carries records with source offsets FirstOff..LastOff (inclusive,
	// dense) emitted by intake adapter slot Adapter. FirstOff == 0 means
	// the frame carries no offset provenance (a non-resumable source).
	// The metadata travels with the frame through connectors and the
	// spill lane; consumers report delivered ranges to their feed's
	// offset tracker before recycling.
	Adapter  int
	FirstOff uint64
	LastOff  uint64
}

// Len returns the number of records in the frame across both lanes.
func (f Frame) Len() int { return len(f.Records) + len(f.Raw) }

// Writer is the push-based receiving surface of a downstream operator or
// connector (Hyracks' IFrameWriter).
type Writer interface {
	// Open readies the writer; it is called exactly once before any Push.
	Open() error
	// Push delivers one frame, transferring ownership of its slices.
	Push(f Frame) error
	// Close signals end-of-data; no Push may follow.
	Close() error
}

// discardWriter terminates a dataflow branch with no consumers.
type discardWriter struct{}

func (discardWriter) Open() error { return nil }
func (discardWriter) Push(f Frame) error {
	RecycleFrame(f)
	return nil
}
func (discardWriter) Close() error { return nil }

// Discard is a Writer that drops everything (the output of sink
// operators).
var Discard Writer = discardWriter{}

// minPooledCap is the smallest capacity for freshly allocated pooled
// slices, so tiny first requests still produce reusable buffers.
const minPooledCap = 64

// slicePool pools slice spines without allocating on Put: the *[]T
// boxes that carry spines through the underlying sync.Pool are
// themselves recycled through a second pool, so a steady-state
// get/put cycle allocates nothing. (A naive sync.Pool of []T boxes a
// fresh *[]T on every Put — at frame rates that box churn shows up in
// the end-to-end alloc profile.)
type slicePool[T any] struct {
	full  sync.Pool // *[]T holding pooled spines
	spent sync.Pool // *[]T with nil slices, ready to carry the next Put
}

func (p *slicePool[T]) get(capacity int) []T {
	if v := p.full.Get(); v != nil {
		b := v.(*[]T)
		s := (*b)[:0]
		*b = nil
		p.spent.Put(b)
		// A pooled spine smaller than the hint is dropped rather than
		// recirculated, so undersized spines don't keep forcing
		// regrowth at large-batch sites; the pool converges on spines
		// big enough for every caller.
		if cap(s) >= capacity {
			return s
		}
	}
	if capacity < minPooledCap {
		capacity = minPooledCap
	}
	return make([]T, 0, capacity)
}

func (p *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	var b *[]T
	if v := p.spent.Get(); v != nil {
		b = v.(*[]T)
	} else {
		b = new([]T)
	}
	*b = s
	p.full.Put(b)
}

var recordSlicePool slicePool[adm.Value]

// GetRecordSlice returns an empty record slice with at least the given
// capacity hint, reusing a pooled spine when one is available.
func GetRecordSlice(capacity int) []adm.Value {
	return recordSlicePool.get(capacity)
}

// PutRecordSlice returns a record slice's spine to the pool. The caller
// must own the full backing array: no other holder of the slice (or any
// subslice) may use it afterwards. The array is cleared so pooled spines
// do not pin record payloads.
func PutRecordSlice(s []adm.Value) {
	recordSlicePool.put(s)
}

var rawSlicePool slicePool[[]byte]

// GetRawSlice is GetRecordSlice for the raw-bytes lane.
func GetRawSlice(capacity int) [][]byte {
	return rawSlicePool.get(capacity)
}

// PutRawSlice is PutRecordSlice for the raw-bytes lane.
func PutRawSlice(s [][]byte) {
	rawSlicePool.put(s)
}

// defaultArenaBytes sizes a fresh pooled arena's byte buffer; arenas
// converge on whatever their frames actually need as they recirculate.
const defaultArenaBytes = 8 << 10

var arenaPool = sync.Pool{}

// GetArena returns a reset arena from the pool, or a fresh one.
func GetArena() *adm.Arena {
	if v := arenaPool.Get(); v != nil {
		return v.(*adm.Arena)
	}
	return adm.NewArena(defaultArenaBytes)
}

// PutArena resets an arena and returns it to the pool. The caller must
// guarantee no live value still references the arena's memory: the next
// frame will overwrite it.
func PutArena(a *adm.Arena) {
	if a == nil {
		return
	}
	a.Reset()
	arenaPool.Put(a)
}

// RecycleFrame is the full recycle: spines and arena back to their
// pools. Only the frame's final consumer may call it, and only after
// dropping or Materializing every record — the arena is reset and its
// bytes will be overwritten (see the package comment for the ownership
// rules). No-op for shared frames.
func RecycleFrame(f Frame) {
	if f.Shared {
		return
	}
	RecycleFrameSpines(f)
	PutArena(f.Arena)
}

// RecycleFrameSpines returns only the frame's slice spines to their
// pools, leaving the arena untouched. Consumers that retain the frame's
// records un-materialized (the storage writer after its WAL commit)
// use this: the retained values keep the arena alive and the garbage
// collector reclaims it when the last of them dies. No-op for shared
// frames.
func RecycleFrameSpines(f Frame) {
	if f.Shared {
		return
	}
	if f.Records != nil {
		PutRecordSlice(f.Records)
	}
	if f.Raw != nil {
		PutRawSlice(f.Raw)
	}
}

// Detach returns a copy of the frame whose records and raw bytes share
// no memory with the original's arena or spines: records are
// Materialized and raw lines copied. Use it when a consumer of a Shared
// (broadcast) frame — or any frame it does not own — needs to retain
// the data past the push call.
func Detach(f Frame) Frame {
	out := Frame{Adapter: f.Adapter, FirstOff: f.FirstOff, LastOff: f.LastOff}
	if len(f.Records) > 0 {
		out.Records = make([]adm.Value, len(f.Records))
		for i, r := range f.Records {
			out.Records[i] = r.Materialize()
		}
	}
	if len(f.Raw) > 0 {
		out.Raw = make([][]byte, len(f.Raw))
		for i, b := range f.Raw {
			out.Raw[i] = append([]byte(nil), b...)
		}
	}
	return out
}

// FrameBuilder accumulates records and emits full frames to a Writer.
// Its buffers come from the frame pool; each Flush transfers the buffer
// downstream and the next Add draws a fresh (usually recycled) one.
type FrameBuilder struct {
	capacity int
	buf      []adm.Value
	raw      [][]byte
	arena    *adm.Arena
	out      Writer

	// Offset provenance for the frame under construction (see
	// Frame.Adapter/FirstOff/LastOff). adapter is stamped on every frame;
	// firstOff/lastOff reset at each Flush.
	adapter  int
	firstOff uint64
	lastOff  uint64
}

// SetAdapter records the intake adapter slot whose records this builder
// frames; every emitted frame is stamped with it.
func (b *FrameBuilder) SetAdapter(slot int) { b.adapter = slot }

// NoteOffset records the source offset of the record about to be added.
// Offsets must be dense and ascending within a frame; callers invoke it
// immediately before the Add/AddRaw call for that record so a flush
// triggered by the add carries the right range.
func (b *FrameBuilder) NoteOffset(off uint64) {
	if b.firstOff == 0 {
		b.firstOff = off
	}
	b.lastOff = off
}

// NewFrameBuilder returns a builder emitting frames of up to capacity
// records into out.
func NewFrameBuilder(capacity int, out Writer) *FrameBuilder {
	if capacity <= 0 {
		capacity = 128
	}
	return &FrameBuilder{capacity: capacity, out: out}
}

// Add appends one parsed record, flushing when the frame is full.
func (b *FrameBuilder) Add(rec adm.Value) error {
	if b.buf == nil {
		b.buf = GetRecordSlice(b.capacity)
	}
	b.buf = append(b.buf, rec)
	if len(b.buf)+len(b.raw) >= b.capacity {
		return b.Flush()
	}
	return nil
}

// AddRaw appends one raw record's bytes (not copied — the caller must
// not mutate them afterwards), flushing when the frame is full.
func (b *FrameBuilder) AddRaw(rec []byte) error {
	if b.raw == nil {
		b.raw = GetRawSlice(b.capacity)
	}
	b.raw = append(b.raw, rec)
	if len(b.buf)+len(b.raw) >= b.capacity {
		return b.Flush()
	}
	return nil
}

// AddRawCopy stages one raw record from a volatile buffer: the bytes
// are copied into the frame's pooled arena (one memcpy, no per-record
// allocation) and the arena-owned copy rides the raw lane. The caller
// may reuse its buffer immediately — this is the emit path for adapters
// that scan into a recycled read buffer (core.SocketAdapter).
func (b *FrameBuilder) AddRawCopy(rec []byte) error {
	if b.arena == nil {
		b.arena = GetArena()
	}
	return b.AddRaw(b.arena.AppendBytes(rec))
}

// Flush emits any buffered records as a frame, transferring buffer and
// arena ownership downstream.
func (b *FrameBuilder) Flush() error {
	if len(b.buf) == 0 && len(b.raw) == 0 {
		// A drawn but unused arena is kept for the next frame.
		return nil
	}
	f := Frame{
		Records: b.buf, Raw: b.raw, Arena: b.arena,
		Adapter: b.adapter, FirstOff: b.firstOff, LastOff: b.lastOff,
	}
	b.buf, b.raw, b.arena = nil, nil, nil
	b.firstOff, b.lastOff = 0, 0
	return b.out.Push(f)
}
