package hyracks

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// memSpiller is an in-memory FrameSpiller for holder-level tests (the
// real disk-backed one lives in internal/lsm).
type memSpiller struct {
	mu     sync.Mutex
	frames []Frame
	// failSpill, when set, makes the next Spill call return it.
	failSpill error
}

func (s *memSpiller) Spill(f Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failSpill != nil {
		err := s.failSpill
		s.failSpill = nil
		return err
	}
	s.frames = append(s.frames, f)
	return nil
}

func (s *memSpiller) Unspill() (Frame, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.frames) == 0 {
		return Frame{}, false, nil
	}
	f := s.frames[0]
	s.frames = s.frames[1:]
	return f, true, nil
}

func (s *memSpiller) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

// markedFrame builds a one-record frame tagged with a source offset so
// tests can assert FIFO order across the ring and the spill lane.
func markedFrame(off uint64) Frame {
	return Frame{Records: intRecords(1), FirstOff: off, LastOff: off}
}

func TestHolderSpillPolicy(t *testing.T) {
	ctx := context.Background()
	sp := &memSpiller{}
	var spilled int
	h := NewPassiveHolderOpts(HolderOptions{
		Capacity: 2,
		Policy:   Spill,
		Spiller:  sp,
		OnSpill:  func(records int) { spilled += records },
	})
	// Fill the ring, then overflow: pushes never block, nothing is lost.
	for off := uint64(1); off <= 6; off++ {
		if err := h.PushFrame(ctx, markedFrame(off)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Pending() != 2 || h.SpilledPending() != 4 {
		t.Fatalf("pending=%d spilled=%d, want 2/4", h.Pending(), h.SpilledPending())
	}
	if spilled != 4 {
		t.Fatalf("OnSpill saw %d records, want 4", spilled)
	}
	// FIFO invariant: while the lane is non-empty, new pushes spill even
	// though draining the ring makes room.
	h.CloseInput()
	var got []uint64
	for {
		frames, eof, err := h.PullFrames(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if eof {
			break
		}
		for _, f := range frames {
			got = append(got, f.FirstOff)
			RecycleFrame(f)
		}
	}
	if len(got) != 6 {
		t.Fatalf("drained %d frames, want 6", len(got))
	}
	for i, off := range got {
		if off != uint64(i+1) {
			t.Fatalf("frame %d has offset %d: FIFO across lanes broken (%v)", i, off, got)
		}
	}
}

func TestHolderSpillLaneStickyFIFO(t *testing.T) {
	// Once a frame is in the lane, later pushes must go to the lane too
	// (even with ring room) until the consumer drains it — otherwise a
	// newer ring frame would overtake an older spilled one.
	ctx := context.Background()
	sp := &memSpiller{}
	h := NewPassiveHolderOpts(HolderOptions{Capacity: 1, Policy: Spill, Spiller: sp})
	h.PushFrame(ctx, markedFrame(1)) // ring
	h.PushFrame(ctx, markedFrame(2)) // lane (ring full)
	// Drain the ring: room again, but the lane is non-empty.
	frames, _, _ := h.PullFrames(ctx, 1)
	if len(frames) != 1 || frames[0].FirstOff != 1 {
		t.Fatalf("first pull = %+v", frames)
	}
	RecycleFrame(frames[0])
	h.PushFrame(ctx, markedFrame(3))
	if sp.Len() != 2 {
		t.Fatalf("lane has %d frames, want 2 (sticky spill)", sp.Len())
	}
	h.CloseInput()
	for want := uint64(2); want <= 3; want++ {
		frames, eof, err := h.PullFrames(ctx, 1)
		if err != nil || eof || len(frames) != 1 || frames[0].FirstOff != want {
			t.Fatalf("pull want off=%d: frames=%+v eof=%v err=%v", want, frames, eof, err)
		}
		RecycleFrame(frames[0])
	}
}

func TestHolderSpillLaneFull(t *testing.T) {
	ctx := context.Background()
	overloaded := errors.New("test: overloaded")
	h := NewPassiveHolderOpts(HolderOptions{
		Capacity:         1,
		Policy:           Spill,
		Spiller:          &memSpiller{},
		MaxSpilledFrames: 2,
		Overloaded:       overloaded,
	})
	h.PushFrame(ctx, markedFrame(1)) // ring
	h.PushFrame(ctx, markedFrame(2)) // lane 1/2
	h.PushFrame(ctx, markedFrame(3)) // lane 2/2
	err := h.PushFrame(ctx, markedFrame(4))
	if !errors.Is(err, overloaded) {
		t.Fatalf("push into full lane = %v, want wrap of overloaded sentinel", err)
	}
}

func TestHolderSpillErrorPropagates(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("disk gone")
	sp := &memSpiller{failSpill: boom}
	h := NewPassiveHolderOpts(HolderOptions{Capacity: 1, Policy: Spill, Spiller: sp})
	h.PushFrame(ctx, markedFrame(1))
	if err := h.PushFrame(ctx, markedFrame(2)); !errors.Is(err, boom) {
		t.Fatalf("spill failure = %v, want %v", err, boom)
	}
}

func TestHolderShedPolicy(t *testing.T) {
	ctx := context.Background()
	var dropped []uint64
	h := NewPassiveHolderOpts(HolderOptions{
		Capacity: 2,
		Policy:   Shed,
		OnDrop: func(f Frame, sampled bool) {
			if sampled {
				t.Error("shed drop reported as sampled")
			}
			dropped = append(dropped, f.FirstOff)
			RecycleFrame(f)
		},
	})
	for off := uint64(1); off <= 5; off++ {
		if err := h.PushFrame(ctx, markedFrame(off)); err != nil {
			t.Fatal(err)
		}
	}
	// Ring kept the first two; the rest were shed, exactly counted.
	if len(dropped) != 3 {
		t.Fatalf("dropped %v, want offsets 3..5", dropped)
	}
	for i, off := range dropped {
		if off != uint64(i+3) {
			t.Fatalf("dropped %v, want offsets 3..5", dropped)
		}
	}
	h.CloseInput()
	frames, _, _ := h.PullFrames(ctx, 100)
	if len(frames) != 2 {
		t.Fatalf("kept %d frames, want 2", len(frames))
	}
	for _, f := range frames {
		RecycleFrame(f)
	}
}

func TestHolderSamplePolicy(t *testing.T) {
	ctx := context.Background()
	var sampledOut int
	h := NewPassiveHolderOpts(HolderOptions{
		Capacity:   1,
		Policy:     Sample,
		SampleRate: 0.25,
		OnDrop: func(f Frame, sampled bool) {
			if !sampled {
				t.Error("sample drop reported as shed")
			}
			sampledOut++
			RecycleFrame(f)
		},
	})
	// Keep the consumer draining so kept frames don't block the pusher.
	done := make(chan int)
	go func() {
		kept := 0
		for {
			frames, eof, err := h.PullFrames(ctx, 1)
			if err != nil {
				t.Error(err)
				break
			}
			if eof {
				break
			}
			for _, f := range frames {
				kept++
				RecycleFrame(f)
			}
		}
		done <- kept
	}()
	const total = 101 // one uncongested push + 100 policy decisions
	for off := uint64(1); off <= total; off++ {
		if err := h.PushFrame(ctx, markedFrame(off)); err != nil {
			t.Fatal(err)
		}
		// Stay congested: give the consumer no head start.
	}
	h.CloseInput()
	kept := <-done
	if kept+sampledOut != total {
		t.Fatalf("kept %d + dropped %d != %d pushed", kept, sampledOut, total)
	}
	// The accumulator keeps exactly rate*congested-arrivals (±1); the
	// consumer may also catch some pushes uncongested, so bound loosely.
	if sampledOut == 0 || kept == 0 {
		t.Fatalf("degenerate sampling: kept=%d dropped=%d", kept, sampledOut)
	}
	if sampledOut > 80 {
		t.Fatalf("dropped %d of %d: far above the 75%% target", sampledOut, total)
	}
}

func TestHolderFailPoisons(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("partition down")
	h := NewPassiveHolder(4)
	h.PushFrame(ctx, markedFrame(1))

	// A blocked pull unblocks with the failure.
	pullErr := make(chan error, 1)
	go func() {
		h2 := NewPassiveHolder(4)
		go func() {
			time.Sleep(10 * time.Millisecond)
			h2.Fail(boom)
		}()
		_, _, err := h2.PullFrames(ctx, 1)
		pullErr <- err
	}()

	h.Fail(boom)
	if err := h.PushFrame(ctx, markedFrame(2)); !errors.Is(err, boom) {
		t.Fatalf("push after fail = %v", err)
	}
	if _, _, err := h.PullFrames(ctx, 1); !errors.Is(err, boom) {
		t.Fatalf("pull after fail = %v", err)
	}
	select {
	case err := <-pullErr:
		if !errors.Is(err, boom) {
			t.Fatalf("blocked pull got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fail did not unblock a blocked pull")
	}

	// Blocked pushes unblock too.
	h3 := NewPassiveHolder(1)
	h3.PushFrame(ctx, markedFrame(1))
	pushErr := make(chan error, 1)
	go func() { pushErr <- h3.PushFrame(ctx, markedFrame(2)) }()
	time.Sleep(10 * time.Millisecond)
	h3.Fail(boom)
	select {
	case err := <-pushErr:
		if !errors.Is(err, boom) {
			t.Fatalf("blocked push got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fail did not unblock a blocked push")
	}
}

func TestHolderManagerFailAll(t *testing.T) {
	boom := errors.New("node died")
	m := NewHolderManager()
	p := NewPassiveHolder(4)
	a := NewActiveHolder(4)
	m.RegisterPassive("f/0", p)
	m.RegisterActive("f/0", a)
	m.FailAll(boom)
	ctx := context.Background()
	if err := p.PushFrame(ctx, Frame{}); !errors.Is(err, boom) {
		t.Errorf("passive push = %v", err)
	}
	if err := a.Push(ctx, Frame{}); !errors.Is(err, boom) {
		t.Errorf("active push = %v", err)
	}
}
