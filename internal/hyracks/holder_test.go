package hyracks

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPassiveHolderPullFrames(t *testing.T) {
	h := NewPassiveHolder(8)
	ctx := context.Background()
	if err := h.PushFrame(ctx, Frame{Records: intRecords(5)}); err != nil {
		t.Fatal(err)
	}
	if err := h.PushFrame(ctx, Frame{Records: intRecords(5)}); err != nil {
		t.Fatal(err)
	}
	// Pull larger than available: gets everything queued, not EOF.
	frames, eof, err := h.PullFrames(ctx, 100)
	if err != nil || eof {
		t.Fatalf("PullFrames: %v eof=%v", err, eof)
	}
	if n := frameRecords(frames); n != 10 {
		t.Fatalf("got %d records", n)
	}
	// Pull smaller than a frame: whole frames, never split — the batch
	// overshoots rather than copying a partial frame out.
	h.PushFrame(ctx, Frame{Records: intRecords(10)})
	frames, _, _ = h.PullFrames(ctx, 3)
	if len(frames) != 1 || frameRecords(frames) != 10 {
		t.Fatalf("got %d frames / %d records, want the whole 10-record frame", len(frames), frameRecords(frames))
	}
	// Once the quota is met, queued frames stay queued.
	h.PushFrame(ctx, Frame{Records: intRecords(2)})
	h.PushFrame(ctx, Frame{Records: intRecords(2)})
	frames, _, _ = h.PullFrames(ctx, 2)
	if frameRecords(frames) != 2 {
		t.Fatalf("quota pull got %d records, want 2", frameRecords(frames))
	}
	frames, _, _ = h.PullFrames(ctx, 100)
	if frameRecords(frames) != 2 {
		t.Fatalf("drain pull got %d records, want 2", frameRecords(frames))
	}
	// EOF after close and drain.
	h.CloseInput()
	frames, eof, _ = h.PullFrames(ctx, 10)
	if len(frames) != 0 || !eof {
		t.Fatalf("after close: %d frames eof=%v", len(frames), eof)
	}
	// Pushing after close fails.
	if err := h.PushFrame(ctx, Frame{}); !errors.Is(err, ErrHolderClosed) {
		t.Errorf("push after close = %v", err)
	}
}

// frameRecords sums the records across a pulled frame batch.
func frameRecords(frames []Frame) int {
	n := 0
	for _, f := range frames {
		n += f.Len()
	}
	return n
}

func TestPassiveHolderBlocksUntilData(t *testing.T) {
	h := NewPassiveHolder(4)
	ctx := context.Background()
	got := make(chan int, 1)
	go func() {
		frames, _, _ := h.PullFrames(ctx, 10)
		got <- frameRecords(frames)
	}()
	time.Sleep(10 * time.Millisecond)
	h.PushFrame(ctx, Frame{Records: intRecords(2)})
	select {
	case n := <-got:
		if n != 2 {
			t.Errorf("pulled %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PullFrames never returned")
	}
}

func TestPassiveHolderPullCancel(t *testing.T) {
	h := NewPassiveHolder(4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := h.PullFrames(ctx, 10)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("expected context error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock pull")
	}
}

func TestPassiveHolderBackpressure(t *testing.T) {
	h := NewPassiveHolder(1)
	ctx := context.Background()
	h.PushFrame(ctx, Frame{Records: intRecords(1)})
	blocked := make(chan struct{})
	go func() {
		h.PushFrame(ctx, Frame{Records: intRecords(1)}) // fills nothing: queue cap 1
		h.PushFrame(ctx, Frame{Records: intRecords(1)}) // must block
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("expected producer to block on full queue")
	case <-time.After(20 * time.Millisecond):
	}
	// Draining unblocks.
	h.PullFrames(ctx, 100)
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not unblock producer")
	}
}

func TestActiveHolderForwarding(t *testing.T) {
	h := NewActiveHolder(8)
	spec := NewJobSpec()
	src := spec.AddOperator(&Descriptor{
		Name: "storage-holder", Parallelism: 1,
		NewSource: func(int) (Source, error) { return h, nil },
	})
	var col Collector
	sink := spec.AddOperator(&Descriptor{
		Name: "store", Parallelism: 1,
		NewPipe: func(int) (Pipe, error) { return col.Sink(), nil },
	})
	spec.Connect(src, sink, OneToOne, nil)
	job, err := spec.Run(context.Background(), "storage")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Concurrent pushers, like overlapping computing-job partitions.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := h.Push(ctx, Frame{Records: intRecords(4)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	h.CloseInput()
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 4*25*4 {
		t.Errorf("stored %d records, want 400", col.Len())
	}
	if err := h.Push(ctx, Frame{}); !errors.Is(err, ErrHolderClosed) {
		t.Errorf("push after close = %v", err)
	}
}

func TestHolderManager(t *testing.T) {
	m := NewHolderManager()
	p := NewPassiveHolder(4)
	a := NewActiveHolder(4)
	if err := m.RegisterPassive("feed1/0", p); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterPassive("feed1/0", p); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := m.RegisterActive("feed1/0", a); err != nil {
		t.Fatal(err) // active and passive namespaces are separate
	}
	if got, ok := m.Passive("feed1/0"); !ok || got != p {
		t.Error("passive lookup failed")
	}
	if got, ok := m.Active("feed1/0"); !ok || got != a {
		t.Error("active lookup failed")
	}
	if _, ok := m.Passive("nope"); ok {
		t.Error("lookup miss expected")
	}
	m.Unregister("feed1/0")
	if _, ok := m.Passive("feed1/0"); ok {
		t.Error("unregister failed")
	}
}

// TestIntakeComputeStoragePattern wires the paper's three-job layering
// in miniature: an intake job ends in passive holders; computing
// "invocations" pull batches, transform, and push into an active holder
// heading a storage job.
func TestIntakeComputeStoragePattern(t *testing.T) {
	ctx := context.Background()
	const total = 500

	// Intake job: source → round robin → passive holders (2 partitions).
	intake := NewJobSpec()
	isrc := intake.AddOperator(&Descriptor{
		Name: "adapter", Parallelism: 1,
		NewSource: func(int) (Source, error) {
			return &SliceSource{Records: intRecords(total), FrameCap: 16}, nil
		},
	})
	holders := []*PassiveHolder{NewPassiveHolder(16), NewPassiveHolder(16)}
	ih := intake.AddOperator(&Descriptor{
		Name: "intake-holder", Parallelism: 2,
		NewPipe: func(p int) (Pipe, error) { return holders[p], nil },
	})
	intake.Connect(isrc, ih, RoundRobin, nil)
	intakeJob, err := intake.Run(ctx, "intake")
	if err != nil {
		t.Fatal(err)
	}

	// Storage job: active holder → collector.
	storageHolder := NewActiveHolder(16)
	storage := NewJobSpec()
	ssrc := storage.AddOperator(&Descriptor{
		Name: "storage-holder", Parallelism: 1,
		NewSource: func(int) (Source, error) { return storageHolder, nil },
	})
	var stored Collector
	ssink := storage.AddOperator(&Descriptor{
		Name: "partition-writer", Parallelism: 1,
		NewPipe: func(int) (Pipe, error) { return stored.Sink(), nil },
	})
	storage.Connect(ssrc, ssink, OneToOne, nil)
	storageJob, err := storage.Run(ctx, "storage")
	if err != nil {
		t.Fatal(err)
	}

	// Computing "invocations": pull frame batches until both holders EOF.
	done := 0
	for done < len(holders) {
		done = 0
		for _, h := range holders {
			frames, eof, err := h.PullFrames(ctx, 64)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range frames {
				// Whole frames forward into the storage job untouched.
				if err := storageHolder.Push(ctx, f); err != nil {
					t.Fatal(err)
				}
			}
			if eof {
				done++
			}
		}
	}
	if err := intakeJob.Wait(); err != nil {
		t.Fatal(err)
	}
	storageHolder.CloseInput()
	if err := storageJob.Wait(); err != nil {
		t.Fatal(err)
	}
	if stored.Len() != total {
		t.Errorf("stored %d, want %d", stored.Len(), total)
	}
}
