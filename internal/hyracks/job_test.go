package hyracks

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ideadb/idea/internal/adm"
)

func intRecords(n int) []adm.Value {
	out := make([]adm.Value, n)
	for i := range out {
		o := adm.NewObject(1)
		o.Set("id", adm.Int(int64(i)))
		out[i] = adm.ObjectValue(o)
	}
	return out
}

func TestJobLinearPipeline(t *testing.T) {
	spec := NewJobSpec()
	src := spec.AddOperator(&Descriptor{
		Name: "src", Parallelism: 1,
		NewSource: func(int) (Source, error) {
			return &SliceSource{Records: intRecords(1000), FrameCap: 64}, nil
		},
	})
	var col Collector
	mapped := spec.AddOperator(&Descriptor{
		Name: "double", Parallelism: 1,
		NewPipe: func(int) (Pipe, error) {
			return &MapPipe{Fn: func(v adm.Value) (adm.Value, bool, error) {
				o := adm.NewObject(1)
				o.Set("id", adm.Int(v.Field("id").IntVal()*2))
				return adm.ObjectValue(o), true, nil
			}}, nil
		},
	})
	sink := spec.AddOperator(&Descriptor{
		Name: "sink", Parallelism: 1,
		NewPipe: func(int) (Pipe, error) { return col.Sink(), nil },
	})
	spec.Connect(src, mapped, OneToOne, nil)
	spec.Connect(mapped, sink, OneToOne, nil)

	job, err := spec.Run(context.Background(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	recs := col.Records()
	if len(recs) != 1000 {
		t.Fatalf("collected %d, want 1000", len(recs))
	}
	sum := int64(0)
	for _, r := range recs {
		sum += r.Field("id").IntVal()
	}
	if sum != 999*1000 { // 2 * sum(0..999)
		t.Errorf("sum = %d", sum)
	}
}

func TestJobRoundRobinBalances(t *testing.T) {
	const parts = 4
	spec := NewJobSpec()
	src := spec.AddOperator(&Descriptor{
		Name: "src", Parallelism: 1,
		NewSource: func(int) (Source, error) {
			return &SliceSource{Records: intRecords(4000), FrameCap: 10}, nil
		},
	})
	var counts [parts]atomic.Int64
	sink := spec.AddOperator(&Descriptor{
		Name: "sink", Parallelism: parts,
		NewPipe: func(p int) (Pipe, error) {
			return &SinkPipe{Fn: func(tc *TaskContext, f Frame) error {
				counts[tc.Partition].Add(int64(f.Len()))
				return nil
			}}, nil
		},
	})
	spec.Connect(src, sink, RoundRobin, nil)
	job, err := spec.Run(context.Background(), "rr")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := range counts {
		c := counts[i].Load()
		total += c
		if c != 1000 {
			t.Errorf("partition %d got %d records, want 1000 (round robin of 10-record frames)", i, c)
		}
	}
	if total != 4000 {
		t.Errorf("total = %d", total)
	}
}

func TestJobHashPartitioning(t *testing.T) {
	const parts = 3
	spec := NewJobSpec()
	src := spec.AddOperator(&Descriptor{
		Name: "src", Parallelism: 2,
		NewSource: func(p int) (Source, error) {
			return &SliceSource{Records: intRecords(999), FrameCap: 32}, nil
		},
	})
	var collectors [parts]Collector
	sink := spec.AddOperator(&Descriptor{
		Name: "sink", Parallelism: parts,
		NewPipe: func(p int) (Pipe, error) { return collectors[p].Sink(), nil },
	})
	keyFn := func(rec adm.Value) uint64 { return adm.Hash(rec.Field("id")) }
	spec.Connect(src, sink, HashPartition, keyFn)
	job, err := spec.Run(context.Background(), "hash")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < parts; p++ {
		recs := collectors[p].Records()
		total += len(recs)
		// Every record in partition p must hash there.
		for _, r := range recs {
			if int(keyFn(r)%parts) != p {
				t.Fatalf("record %v routed to wrong partition %d", r, p)
			}
		}
	}
	if total != 2*999 { // two source partitions × 999 records
		t.Errorf("total = %d", total)
	}
}

// TestJobHashMixedFrameOrder pins the histogram/run-copy re-bucketing
// of mixed-target frames: every record must still land on its hash
// target, and the relative order of records bound for the same target
// must survive exactly (the storage layer's last-wins upsert semantics
// depend on it).
func TestJobHashMixedFrameOrder(t *testing.T) {
	const parts = 4
	const n = 5000
	spec := NewJobSpec()
	src := spec.AddOperator(&Descriptor{
		Name: "src", Parallelism: 1,
		NewSource: func(p int) (Source, error) {
			// Sequential ids hash to interleaved targets, so every frame
			// is mixed-target.
			return &SliceSource{Records: intRecords(n), FrameCap: 64}, nil
		},
	})
	var collectors [parts]Collector
	sink := spec.AddOperator(&Descriptor{
		Name: "sink", Parallelism: parts,
		NewPipe: func(p int) (Pipe, error) { return collectors[p].Sink(), nil },
	})
	keyFn := func(rec adm.Value) uint64 { return adm.Hash(rec.Field("id")) }
	spec.Connect(src, sink, HashPartition, keyFn)
	job, err := spec.Run(context.Background(), "hash-mixed")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < parts; p++ {
		recs := collectors[p].Records()
		total += len(recs)
		prev := int64(-1)
		for _, r := range recs {
			if int(keyFn(r)%parts) != p {
				t.Fatalf("record %v routed to wrong partition %d", r, p)
			}
			id := r.Field("id").IntVal()
			if id <= prev {
				t.Fatalf("partition %d: order broken, id %d after %d", p, id, prev)
			}
			prev = id
		}
	}
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
}

func TestJobBroadcast(t *testing.T) {
	const parts = 3
	spec := NewJobSpec()
	src := spec.AddOperator(&Descriptor{
		Name: "src", Parallelism: 1,
		NewSource: func(int) (Source, error) {
			return &SliceSource{Records: intRecords(100), FrameCap: 16}, nil
		},
	})
	var collectors [parts]Collector
	sink := spec.AddOperator(&Descriptor{
		Name: "sink", Parallelism: parts,
		NewPipe: func(p int) (Pipe, error) { return collectors[p].Sink(), nil },
	})
	spec.Connect(src, sink, Broadcast, nil)
	job, _ := spec.Run(context.Background(), "bc")
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		if collectors[p].Len() != 100 {
			t.Errorf("partition %d got %d, want 100", p, collectors[p].Len())
		}
	}
}

func TestJobErrorPropagation(t *testing.T) {
	spec := NewJobSpec()
	src := spec.AddOperator(&Descriptor{
		Name: "src", Parallelism: 1,
		NewSource: func(int) (Source, error) {
			return &SliceSource{Records: intRecords(100000), FrameCap: 8}, nil
		},
	})
	boom := errors.New("boom")
	sink := spec.AddOperator(&Descriptor{
		Name: "sink", Parallelism: 1,
		NewPipe: func(int) (Pipe, error) {
			n := 0
			return &SinkPipe{Fn: func(*TaskContext, Frame) error {
				n++
				if n > 3 {
					return boom
				}
				return nil
			}}, nil
		},
	})
	spec.Connect(src, sink, OneToOne, nil)
	job, err := spec.Run(context.Background(), "err")
	if err != nil {
		t.Fatal(err)
	}
	werr := job.Wait()
	if werr == nil || !errors.Is(werr, boom) {
		t.Fatalf("Wait = %v, want boom", werr)
	}
}

func TestJobAbort(t *testing.T) {
	spec := NewJobSpec()
	spec.AddOperator(&Descriptor{
		Name: "blocked-src", Parallelism: 1,
		NewSource: func(int) (Source, error) {
			return SourceFunc(func(tc *TaskContext, out Writer) error {
				<-tc.Ctx.Done() // simulate a stuck adapter
				return tc.Ctx.Err()
			}), nil
		},
	})
	job, err := spec.Run(context.Background(), "abort")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- job.Wait() }()
	job.Abort()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not unblock the job")
	}
}

func TestJobSpecValidation(t *testing.T) {
	mkSrc := func(spec *JobSpec, par int) int {
		return spec.AddOperator(&Descriptor{Name: "s", Parallelism: par,
			NewSource: func(int) (Source, error) { return &SliceSource{}, nil }})
	}
	mkSink := func(spec *JobSpec, par int) int {
		return spec.AddOperator(&Descriptor{Name: "k", Parallelism: par,
			NewPipe: func(int) (Pipe, error) { return &SinkPipe{Fn: func(*TaskContext, Frame) error { return nil }}, nil }})
	}
	// Mismatched one-to-one parallelism.
	spec := NewJobSpec()
	a, b := mkSrc(spec, 2), mkSink(spec, 3)
	spec.Connect(a, b, OneToOne, nil)
	if _, err := spec.Run(context.Background(), "v"); err == nil {
		t.Error("mismatched one-to-one should fail validation")
	}
	// Hash without key.
	spec = NewJobSpec()
	a, b = mkSrc(spec, 1), mkSink(spec, 2)
	spec.Connect(a, b, HashPartition, nil)
	if _, err := spec.Run(context.Background(), "v"); err == nil {
		t.Error("hash without key should fail validation")
	}
	// Pipe with no input.
	spec = NewJobSpec()
	mkSink(spec, 1)
	if _, err := spec.Run(context.Background(), "v"); err == nil {
		t.Error("pipe with no input should fail validation")
	}
	// Source with input.
	spec = NewJobSpec()
	a, b = mkSrc(spec, 1), mkSrc(spec, 1)
	spec.Connect(a, b, OneToOne, nil)
	if _, err := spec.Run(context.Background(), "v"); err == nil {
		t.Error("source with input should fail validation")
	}
	// Multiple inputs.
	spec = NewJobSpec()
	a = mkSrc(spec, 1)
	c := mkSrc(spec, 1)
	b = mkSink(spec, 1)
	spec.Connect(a, b, OneToOne, nil)
	spec.Connect(c, b, OneToOne, nil)
	if _, err := spec.Run(context.Background(), "v"); err == nil {
		t.Error("multiple inputs should fail validation")
	}
}

func TestFrameBuilder(t *testing.T) {
	var col Collector
	sink := col.Sink()
	w := &pipeAsWriter{pipe: sink}
	b := NewFrameBuilder(3, w)
	for i := 0; i < 7; i++ {
		if err := b.Add(adm.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 7 {
		t.Errorf("collected %d", col.Len())
	}
}

// pipeAsWriter adapts a Pipe to a Writer for direct tests.
type pipeAsWriter struct {
	pipe Pipe
	tc   TaskContext
}

func (p *pipeAsWriter) Open() error { return p.pipe.Open(&p.tc, Discard) }
func (p *pipeAsWriter) Push(f Frame) error {
	return p.pipe.Push(&p.tc, f, Discard)
}
func (p *pipeAsWriter) Close() error { return p.pipe.Close(&p.tc, Discard) }

func ExampleJobSpec() {
	spec := NewJobSpec()
	src := spec.AddOperator(&Descriptor{
		Name: "numbers", Parallelism: 1,
		NewSource: func(int) (Source, error) {
			return &SliceSource{Records: []adm.Value{adm.Int(1), adm.Int(2), adm.Int(3)}}, nil
		},
	})
	var col Collector
	sink := spec.AddOperator(&Descriptor{
		Name: "collect", Parallelism: 1,
		NewPipe: func(int) (Pipe, error) { return col.Sink(), nil },
	})
	spec.Connect(src, sink, OneToOne, nil)
	job, _ := spec.Run(context.Background(), "example")
	_ = job.Wait()
	fmt.Println(col.Len())
	// Output: 3
}
