package spatial

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := DistSq(Point{1, 1}, Point{1, 1}); d != 0 {
		t.Errorf("DistSq same point = %v", d)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 6, 1, 2)
	if r.Min.X != 1 || r.Min.Y != 2 || r.Max.X != 5 || r.Max.Y != 6 {
		t.Errorf("NewRect normalize failed: %+v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	for _, p := range []Point{{0, 0}, {10, 10}, {5, 5}, {0, 10}} {
		if !r.Contains(p) {
			t.Errorf("rect should contain %+v", p)
		}
	}
	for _, p := range []Point{{-0.1, 5}, {10.1, 5}, {5, -1}, {5, 11}} {
		if r.Contains(p) {
			t.Errorf("rect should not contain %+v", p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(5, 5, 15, 15), true},
		{NewRect(10, 10, 20, 20), true}, // boundary touch
		{NewRect(11, 11, 20, 20), false},
		{NewRect(-5, -5, -1, -1), false},
		{NewRect(2, 2, 3, 3), true}, // contained
		{NewRect(-5, 2, 15, 3), true},
	}
	for _, tc := range cases {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("Intersects(%+v) = %v, want %v", tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("Intersects should be symmetric for %+v", tc.b)
		}
	}
}

func TestUnionAndArea(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(3, 3, 5, 4)
	u := a.Union(b)
	if u != NewRect(0, 0, 5, 4) {
		t.Errorf("Union = %+v", u)
	}
	if a.Area() != 4 {
		t.Errorf("Area = %v", a.Area())
	}
	if e := a.Enlargement(b); e != 20-4 {
		t.Errorf("Enlargement = %v, want 16", e)
	}
	if a.Enlargement(NewRect(1, 1, 2, 2)) != 0 {
		t.Error("contained rect should not enlarge")
	}
}

func TestCircleContainsPoint(t *testing.T) {
	c := Circle{Center: Point{0, 0}, R: 1.5}
	if !c.ContainsPoint(Point{1.5, 0}) {
		t.Error("boundary point should be inside")
	}
	if !c.ContainsPoint(Point{1, 1}) {
		t.Error("(1,1) is within radius 1.5")
	}
	if c.ContainsPoint(Point{1.2, 1.2}) {
		t.Error("(1.2,1.2) is outside radius 1.5")
	}
}

func TestCircleIntersectsRect(t *testing.T) {
	c := Circle{Center: Point{0, 0}, R: 1}
	cases := []struct {
		r    Rect
		want bool
	}{
		{NewRect(-0.5, -0.5, 0.5, 0.5), true}, // circle covers rect center
		{NewRect(0.9, -10, 5, 10), true},      // edge overlap
		{NewRect(1.1, 1.1, 2, 2), false},      // corner just outside
		{NewRect(0.7, 0.7, 2, 2), true},       // corner just inside (dist ~0.99)
		{NewRect(-10, -10, 10, 10), true},     // rect covers circle
		{NewRect(2, 2, 3, 3), false},
	}
	for _, tc := range cases {
		if got := c.IntersectsRect(tc.r); got != tc.want {
			t.Errorf("IntersectsRect(%+v) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestCircleIntersectsCircle(t *testing.T) {
	a := Circle{Center: Point{0, 0}, R: 1}
	if !a.IntersectsCircle(Circle{Center: Point{2, 0}, R: 1}) {
		t.Error("touching circles intersect")
	}
	if a.IntersectsCircle(Circle{Center: Point{2.01, 0}, R: 1}) {
		t.Error("separated circles do not intersect")
	}
}

func TestCircleBounds(t *testing.T) {
	c := Circle{Center: Point{1, 2}, R: 3}
	if got := c.Bounds(); got != NewRect(-2, -1, 4, 5) {
		t.Errorf("Bounds = %+v", got)
	}
}

// Property: circle-rect intersection must agree with a dense point
// sample of the rectangle.
func TestCircleRectIntersectionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		c := Circle{Center: Point{r.Float64()*10 - 5, r.Float64()*10 - 5}, R: r.Float64()*3 + 0.01}
		rect := NewRect(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5)
		got := c.IntersectsRect(rect)
		// Sample: check the clamped closest point directly.
		closest := Point{clamp(c.Center.X, rect.Min.X, rect.Max.X), clamp(c.Center.Y, rect.Min.Y, rect.Max.Y)}
		want := c.ContainsPoint(closest)
		if got != want {
			t.Fatalf("mismatch: circle %+v rect %+v got %v want %v", c, rect, got, want)
		}
		if got && !c.Bounds().Intersects(rect) {
			t.Fatalf("intersecting circle must intersect via bounds too: %+v %+v", c, rect)
		}
	}
}

func TestUnionCommutativeQuick(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a, b := NewRect(x1, y1, x2, y2), NewRect(x3, y3, x4, y4)
		return a.Union(b) == b.Union(a)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBoundsPoint(t *testing.T) {
	b := BoundsPoint(Point{3, 4})
	if !b.Contains(Point{3, 4}) || b.Area() != 0 {
		t.Errorf("BoundsPoint = %+v", b)
	}
}
