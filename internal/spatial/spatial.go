// Package spatial implements the planar geometry the paper's enrichment
// functions rely on: point/rectangle/circle intersection tests, point
// distance, and bounding boxes. Coordinates are degrees treated as a
// flat plane, matching AsterixDB's spatial_intersect semantics ("within
// 1.5 degrees of the tweet's location").
package spatial

import "math"

// Point is a location on the plane.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle with normalized corners
// (Min.X <= Max.X, Min.Y <= Max.Y).
type Rect struct {
	Min, Max Point
}

// Circle is a center point plus radius.
type Circle struct {
	Center Point
	R      float64
}

// NewRect builds a rectangle from two arbitrary corners, normalizing
// them.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{Min: Point{x1, y1}, Max: Point{x2, y2}}
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance (cheaper for ordering).
func DistSq(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Contains reports whether the rectangle contains the point (boundary
// inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether two rectangles overlap (boundary touching
// counts).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)},
	}
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 {
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Enlargement returns how much r's area would grow to also cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// BoundsPoint returns the degenerate rectangle covering a single point.
func BoundsPoint(p Point) Rect { return Rect{Min: p, Max: p} }

// Expand grows the rectangle by d on every side (the index-NLJ query
// expansion for circle-of-field predicates).
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Bounds returns the bounding box of the circle.
func (c Circle) Bounds() Rect {
	return Rect{
		Min: Point{c.Center.X - c.R, c.Center.Y - c.R},
		Max: Point{c.Center.X + c.R, c.Center.Y + c.R},
	}
}

// ContainsPoint reports whether the point lies within the circle
// (boundary inclusive).
func (c Circle) ContainsPoint(p Point) bool {
	return DistSq(c.Center, p) <= c.R*c.R
}

// IntersectsRect reports whether the circle and rectangle overlap, using
// the closest-point test.
func (c Circle) IntersectsRect(r Rect) bool {
	cx := clamp(c.Center.X, r.Min.X, r.Max.X)
	cy := clamp(c.Center.Y, r.Min.Y, r.Max.Y)
	return DistSq(c.Center, Point{cx, cy}) <= c.R*c.R
}

// IntersectsCircle reports whether two circles overlap.
func (c Circle) IntersectsCircle(o Circle) bool {
	rr := c.R + o.R
	return DistSq(c.Center, o.Center) <= rr*rr
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
