package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/ideadb/idea/internal/adm"
)

// fakeConn adapts in-memory buffers to net.Conn for deterministic
// framing tests (deadlines are no-ops; PollFrame is tested over real
// TCP below).
type fakeConn struct {
	r *bytes.Reader
	w bytes.Buffer
}

func (f *fakeConn) Read(p []byte) (int, error) {
	if f.r == nil {
		return 0, errors.New("no read side")
	}
	return f.r.Read(p)
}
func (f *fakeConn) Write(p []byte) (int, error)        { return f.w.Write(p) }
func (f *fakeConn) Close() error                       { return nil }
func (f *fakeConn) LocalAddr() net.Addr                { return nil }
func (f *fakeConn) RemoteAddr() net.Addr               { return nil }
func (f *fakeConn) SetDeadline(t time.Time) error      { return nil }
func (f *fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (f *fakeConn) SetWriteDeadline(t time.Time) error { return nil }

func connOver(data []byte) *Conn {
	return NewConn(&fakeConn{r: bytes.NewReader(data)})
}

func TestFrameRoundTrip(t *testing.T) {
	fc := &fakeConn{}
	wc := NewConn(fc)
	bodies := [][]byte{
		[]byte("hello"),
		nil,
		bytes.Repeat([]byte{0xAB}, 100_000),
	}
	types := []Type{TypeQuery, TypePing, TypeRowBatch}
	for i, b := range bodies {
		if err := wc.WriteFrame(types[i], b); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := wc.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := wc.BytesWritten(); got != int64(fc.w.Len()) {
		t.Fatalf("BytesWritten = %d, wrote %d", got, fc.w.Len())
	}
	rc := connOver(fc.w.Bytes())
	for i, want := range bodies {
		typ, body, err := rc.ReadFrame(MaxFrame)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if typ != types[i] {
			t.Fatalf("frame %d type = %v, want %v", i, typ, types[i])
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("frame %d body mismatch (%d vs %d bytes)", i, len(body), len(want))
		}
	}
	if got := rc.BytesRead(); got != int64(fc.w.Len()) {
		t.Fatalf("BytesRead = %d, want %d", got, fc.w.Len())
	}
}

func TestFrameCRCMismatch(t *testing.T) {
	data := AppendFrame(nil, TypePing, []byte("payload"))
	data[len(data)-1] ^= 0xFF // flip a payload byte; the CRC must catch it
	_, _, err := connOver(data).ReadFrame(MaxFrame)
	if !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	// A declared length over the cap must be refused before any
	// allocation.
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	_, _, err := connOver(hdr[:]).ReadFrame(MaxHandshakeFrame)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}

	// A legal frame that merely exceeds the caller's bound is refused
	// the same way (handshake cap vs regular frames).
	data := AppendFrame(nil, TypeHello, bytes.Repeat([]byte{1}, MaxHandshakeFrame+1))
	_, _, err = connOver(data).ReadFrame(MaxHandshakeFrame)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var hdr [frameHeaderSize]byte // length 0
	_, _, err := connOver(hdr[:]).ReadFrame(MaxFrame)
	if err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{
		{Version: Version},
		{Version: Version, Token: "s3cret"},
	} {
		got, err := ParseHello(AppendHello(nil, h))
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("got %+v, want %+v", got, h)
		}
	}
	if _, err := ParseHello([]byte("NOPE\x01\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ParseHello(append(AppendHello(nil, Hello{Version: 1}), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	w := Welcome{Version: Version, Server: "ideaserver"}
	got, err := ParseWelcome(AppendWelcome(nil, w))
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("got %+v, want %+v", got, w)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := Request{
		Text: `SELECT VALUE t FROM Tweets t WHERE t.score > $1 AND t.lang = $lang`,
		Params: []Param{
			{Name: "1", Value: adm.Double(4.5)},
			{Name: "lang", Value: adm.String("en")},
			{Name: "obj", Value: adm.ObjectValue(adm.ObjectFromPairs(
				"id", adm.Int(7),
				"tags", adm.Array([]adm.Value{adm.String("x"), adm.Null()}),
			))},
		},
	}
	got, err := ParseRequest(AppendRequest(nil, req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != req.Text || len(got.Params) != len(req.Params) {
		t.Fatalf("got %+v", got)
	}
	for i, p := range got.Params {
		if p.Name != req.Params[i].Name || adm.Compare(p.Value, req.Params[i].Value) != 0 {
			t.Fatalf("param %d: got %s=%v", i, p.Name, p.Value)
		}
	}
	if _, err := ParseRequest(append(AppendRequest(nil, req), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Columns: []string{"value"}}
	got, err := ParseHeader(AppendHeader(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != 1 || got.Columns[0] != "value" {
		t.Fatalf("got %+v", got)
	}
}

func TestRowBatchRoundTrip(t *testing.T) {
	rows := []adm.Value{
		adm.Int(1),
		adm.String("two"),
		adm.ObjectValue(adm.ObjectFromPairs("k", adm.Bool(true))),
		adm.Null(),
	}
	br, err := NewBatchReader(AppendRowBatch(nil, rows))
	if err != nil {
		t.Fatal(err)
	}
	if br.Len() != len(rows) {
		t.Fatalf("Len = %d, want %d", br.Len(), len(rows))
	}
	for i, want := range rows {
		v, ok, err := br.Next()
		if err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
		if adm.Compare(v, want) != 0 {
			t.Fatalf("row %d = %v, want %v", i, v, want)
		}
	}
	if _, ok, err := br.Next(); ok || err != nil {
		t.Fatalf("overran batch: ok=%v err=%v", ok, err)
	}

	// A count larger than the payload could carry is corrupt.
	bad := binary.AppendUvarint(nil, 1000)
	if _, err := NewBatchReader(bad); err == nil {
		t.Fatal("inflated count accepted")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	for _, e := range []ErrorMsg{
		{Code: CodeUnknownDataset, Message: "idea: unknown dataset"},
		{Code: CodeInternal, Message: "boom", HasStmt: true, Index: 2, Pos: 41, Snippet: "INSERT INTO Nope ..."},
	} {
		got, err := ParseError(AppendError(nil, e))
		if err != nil {
			t.Fatal(err)
		}
		if got != e {
			t.Fatalf("got %+v, want %+v", got, e)
		}
	}
}

func TestExecResultsRoundTrip(t *testing.T) {
	in := []StmtResult{
		{Kind: "CREATE_DATASET", Pos: 0},
		{Kind: "INSERT", Pos: 38, RowsAffected: 12},
		{Kind: "START_FEED", Pos: 90, Feed: "TweetFeed"},
	}
	got, err := ParseExecResults(AppendExecResults(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d results", len(got))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestTrailerAndValueRoundTrip(t *testing.T) {
	tr, err := ParseTrailer(AppendTrailer(nil, Trailer{Rows: 12345}))
	if err != nil || tr.Rows != 12345 {
		t.Fatalf("trailer = %+v, err %v", tr, err)
	}
	v := adm.ObjectValue(adm.ObjectFromPairs("rows_sent", adm.Int(99)))
	got, err := ParseValue(AppendValue(nil, v))
	if err != nil || adm.Compare(got, v) != 0 {
		t.Fatalf("value = %v, err %v", got, err)
	}
	if _, err := ParseValue(append(AppendValue(nil, v), 7)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestPollFrame exercises the non-blocking probe over real TCP: quiet
// peer, pending frame, dead peer.
func TestPollFrame(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()
	sc := NewConn(server)

	// Quiet peer: no frame, no error.
	if _, _, got, err := sc.PollFrame(MaxFrame, 10*time.Millisecond, time.Second); got || err != nil {
		t.Fatalf("idle poll: got=%v err=%v", got, err)
	}

	// Pending frame: poll returns it.
	if _, err := client.Write(AppendFrame(nil, TypeCloseRows, nil)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		typ, _, got, err := sc.PollFrame(MaxFrame, 10*time.Millisecond, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			if typ != TypeCloseRows {
				t.Fatalf("type = %v", typ)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	// Dead peer: poll reports the broken connection.
	client.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, _, got, err := sc.PollFrame(MaxFrame, 10*time.Millisecond, time.Second)
		if err != nil {
			break
		}
		if got {
			t.Fatal("frame from closed peer")
		}
		if time.Now().After(deadline) {
			t.Fatal("close never observed")
		}
		time.Sleep(time.Millisecond)
	}
}
