// Package wire implements the ideaserver client/server protocol: a
// length-prefixed, versioned binary framing shared by the server
// (internal/server) and the database/sql driver (driver). It reuses the
// storage layer's framing discipline — every frame is length + CRC32C +
// payload, exactly like a WAL frame — and the storage layer's value
// serialization (adm.AppendBinary / adm.DecodeBinary, BinaryVersion 1)
// for statement parameters and result rows, so a value round-trips the
// network in the same bytes it would occupy in the write-ahead log.
//
// Frame grammar (integers little-endian, strings uvarint-length-prefixed):
//
//	frame    := payloadLen:4B crc32c(payload):4B payload
//	payload  := type:1B body
//	string   := len:uvarint bytes
//	value    := adm binary encoding (BinaryVersion 1)
//
// Conversation. The client speaks first: a Hello frame carrying the
// protocol magic, the wire version, and an optional auth token. The
// server answers Welcome (or Error and closes). After the handshake the
// protocol is strict request/response with at most ONE statement in
// flight per connection:
//
//	Ping          -> Pong | Error
//	Stats         -> StatsReply | Error
//	Execute(req)  -> ExecResult | Error
//	Query(req)    -> Error
//	              |  Header RowBatch* (Trailer | Error)
//
// A Query's response streams: the server flushes the Header, then each
// RowBatch as it is filled from the engine's pull cursor, then a
// Trailer. The client may interrupt a stream by sending CloseRows; the
// server tears down its cursor and replies with a Trailer promptly
// (discard RowBatch frames until it arrives). A CloseRows that races
// with the natural end of the stream is ignored by the server, so the
// client never deadlocks: the Trailer it is waiting for is already in
// flight.
//
// Version is a tripwire exactly like adm.BinaryVersion: any change to
// the frame grammar or message layouts must bump it, and the golden
// tests under testdata fail loudly on accidental drift.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// Version is the wire-protocol version carried in the handshake. Bump
// on any incompatible change to framing or message layouts.
const Version = 1

// Magic opens every Hello frame; a server reading anything else is
// talking to something that does not speak this protocol.
const Magic = "IDEA"

const (
	// MaxFrame bounds any post-handshake frame payload (a row batch is
	// bounded by the server's batch size, but a single record can be
	// large).
	MaxFrame = 64 << 20
	// MaxHandshakeFrame bounds the first, pre-auth frame so an
	// unauthenticated peer cannot make the server allocate.
	MaxHandshakeFrame = 4 << 10

	frameHeaderSize = 8 // payload length + CRC32C
)

// Type tags a frame payload.
type Type byte

// Frame types. Client-to-server types are odd-looking on purpose: the
// direction is fixed per type, so a peer speaking out of turn is a
// protocol error, not a parse ambiguity.
const (
	TypeHello      Type = 0x01 // c->s: magic, version, auth token
	TypeWelcome    Type = 0x02 // s->c: version, server name
	TypeQuery      Type = 0x03 // c->s: one SELECT + params
	TypeExecute    Type = 0x04 // c->s: statement script + params
	TypePing       Type = 0x05 // c->s: liveness probe
	TypePong       Type = 0x06 // s->c: liveness answer
	TypeStats      Type = 0x07 // c->s: admin counters request
	TypeStatsReply Type = 0x08 // s->c: adm object of counters
	TypeCloseRows  Type = 0x09 // c->s: abandon the open stream
	TypeHeader     Type = 0x0A // s->c: result-set column names
	TypeRowBatch   Type = 0x0B // s->c: uvarint count + values
	TypeTrailer    Type = 0x0C // s->c: end of rows + total row count
	TypeError      Type = 0x0D // s->c: typed error, optional stmt position
	TypeExecResult Type = 0x0E // s->c: per-statement result summaries
)

func (t Type) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeWelcome:
		return "Welcome"
	case TypeQuery:
		return "Query"
	case TypeExecute:
		return "Execute"
	case TypePing:
		return "Ping"
	case TypePong:
		return "Pong"
	case TypeStats:
		return "Stats"
	case TypeStatsReply:
		return "StatsReply"
	case TypeCloseRows:
		return "CloseRows"
	case TypeHeader:
		return "Header"
	case TypeRowBatch:
		return "RowBatch"
	case TypeTrailer:
		return "Trailer"
	case TypeError:
		return "Error"
	case TypeExecResult:
		return "ExecResult"
	}
	return fmt.Sprintf("Type(0x%02x)", byte(t))
}

// Error codes carried by TypeError frames. The server maps engine
// errors onto codes with errors.Is; the driver maps codes back onto the
// public sentinels so errors.Is(err, idea.ErrUnknownDataset) works
// across the wire.
const (
	CodeInternal        = "internal"
	CodeProtocol        = "protocol"
	CodeAuth            = "auth"
	CodeTooManySessions = "too_many_sessions"
	CodeClosed          = "closed"
	CodeCanceled        = "canceled"
	CodeUnknownDataset  = "unknown_dataset"
	CodeUnknownFunction = "unknown_function"
	CodeUnknownFeed     = "unknown_feed"
	CodeFeedNotRunning  = "feed_not_running"
	CodeFeedOverloaded  = "feed_overloaded"
	CodePartitionDown   = "partition_down"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrFrameTooLarge reports a frame whose declared payload exceeds the
// caller's size bound — a corrupt length or a hostile peer.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrBadCRC reports a frame whose payload fails its checksum.
var ErrBadCRC = errors.New("wire: frame CRC mismatch")

// AppendFrame appends one framed payload (type byte + body) to dst and
// returns the extended slice. It is the single encoder behind
// Conn.WriteFrame; golden tests use it directly to pin frame bytes.
func AppendFrame(dst []byte, t Type, body []byte) []byte {
	n := 1 + len(body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, byte(t))
	dst = append(dst, body...)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc32.Checksum(dst[crcAt+4:], crcTable))
	return dst
}

// Conn wraps a net.Conn with buffered, framed, CRC-checked I/O and byte
// accounting. It is not safe for concurrent use except for the
// BytesRead/BytesWritten counters, which may be read from any
// goroutine.
type Conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	wbuf []byte // frame scratch reused across WriteFrame calls
	rbuf []byte // payload scratch reused across ReadFrame calls

	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// NewConn wraps nc.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 32<<10),
		bw: bufio.NewWriterSize(nc, 32<<10),
	}
}

// NetConn returns the underlying connection (deadline control, Close).
func (c *Conn) NetConn() net.Conn { return c.nc }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// BytesRead reports total bytes consumed by ReadFrame.
func (c *Conn) BytesRead() int64 { return c.bytesIn.Load() }

// BytesWritten reports total bytes produced by WriteFrame.
func (c *Conn) BytesWritten() int64 { return c.bytesOut.Load() }

// WriteFrame buffers one frame; call Flush to push it to the peer.
// Frames larger than MaxFrame are refused before anything is written,
// so an oversized frame never poisons the stream.
func (c *Conn) WriteFrame(t Type, body []byte) error {
	if 1+len(body) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, 1+len(body))
	}
	c.wbuf = AppendFrame(c.wbuf[:0], t, body)
	n, err := c.bw.Write(c.wbuf)
	c.bytesOut.Add(int64(n))
	return err
}

// Flush pushes buffered frames to the peer — the streaming side calls
// it once per row batch, which is what makes the response incremental.
func (c *Conn) Flush() error { return c.bw.Flush() }

// ReadFrame reads one frame, verifying its CRC. The returned body
// aliases an internal buffer that the NEXT ReadFrame call overwrites:
// decode (or copy) before reading again. maxSize bounds the payload
// (use MaxHandshakeFrame before auth, MaxFrame after).
func (c *Conn) ReadFrame(maxSize int) (Type, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: empty frame payload")
	}
	if int64(n) > int64(maxSize) {
		return 0, nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, maxSize)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	payload := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	c.bytesIn.Add(int64(frameHeaderSize + n))
	if crc32.Checksum(payload, crcTable) != crc {
		return 0, nil, ErrBadCRC
	}
	return Type(payload[0]), payload[1:], nil
}

// Buffered reports bytes already read from the peer but not yet
// consumed by ReadFrame.
func (c *Conn) Buffered() int { return c.br.Buffered() }

// PollFrame checks for a frame, waiting at most wait for its first
// byte: it returns (type, body, true, nil) when a complete frame is
// available, (0, nil, false, nil) when the peer sent nothing within
// wait, and an error when the connection is broken. The streaming
// server calls it between row batches to notice CloseRows (and client
// death) promptly. An already-expired deadline cannot be used here —
// Go fails such reads before attempting the syscall, so pending data
// would never surface; a short future deadline makes the peek see
// buffered bytes immediately and an idle peer after wait. readTimeout
// bounds the frame read once its first byte has arrived.
func (c *Conn) PollFrame(maxSize int, wait, readTimeout time.Duration) (Type, []byte, bool, error) {
	if c.br.Buffered() == 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(wait)); err != nil {
			return 0, nil, false, err
		}
		// bufio clears a returned read error, so the reader stays usable
		// after a timed-out peek.
		_, err := c.br.Peek(1)
		if derr := c.nc.SetReadDeadline(time.Time{}); derr != nil && err == nil {
			err = derr
		}
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return 0, nil, false, nil
			}
			return 0, nil, false, err
		}
	}
	if readTimeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(readTimeout)); err != nil {
			return 0, nil, false, err
		}
		defer c.nc.SetReadDeadline(time.Time{})
	}
	t, body, err := c.ReadFrame(maxSize)
	if err != nil {
		return 0, nil, false, err
	}
	return t, body, true, nil
}
