package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/ideadb/idea/internal/adm"
)

// Message encoders and decoders. Every Append* function extends dst and
// returns it; every Parse* function consumes exactly the frame body it
// is handed (trailing garbage is an error, so a drifted encoder cannot
// go unnoticed).

// Hello is the client's opening frame.
type Hello struct {
	// Version is the client's wire version; the server refuses
	// mismatches.
	Version byte
	// Token authenticates the session when the server requires it.
	Token string
}

// AppendHello encodes h.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, Magic...)
	dst = append(dst, h.Version)
	return appendString(dst, h.Token)
}

// ParseHello decodes a Hello body.
func ParseHello(body []byte) (Hello, error) {
	r := reader{b: body}
	magic, err := r.take(len(Magic))
	if err != nil {
		return Hello{}, fmt.Errorf("wire: hello: %w", err)
	}
	if string(magic) != Magic {
		return Hello{}, fmt.Errorf("wire: bad magic %q (not an idea client)", magic)
	}
	var h Hello
	if h.Version, err = r.byte(); err != nil {
		return Hello{}, fmt.Errorf("wire: hello: %w", err)
	}
	if h.Token, err = r.str(); err != nil {
		return Hello{}, fmt.Errorf("wire: hello: %w", err)
	}
	return h, r.done("hello")
}

// Welcome is the server's handshake acceptance.
type Welcome struct {
	// Version is the server's wire version (echoed for diagnostics; a
	// mismatch was already refused).
	Version byte
	// Server names the software, e.g. "ideaserver/1".
	Server string
}

// AppendWelcome encodes w.
func AppendWelcome(dst []byte, w Welcome) []byte {
	dst = append(dst, w.Version)
	return appendString(dst, w.Server)
}

// ParseWelcome decodes a Welcome body.
func ParseWelcome(body []byte) (Welcome, error) {
	r := reader{b: body}
	var w Welcome
	var err error
	if w.Version, err = r.byte(); err != nil {
		return Welcome{}, fmt.Errorf("wire: welcome: %w", err)
	}
	if w.Server, err = r.str(); err != nil {
		return Welcome{}, fmt.Errorf("wire: welcome: %w", err)
	}
	return w, r.done("welcome")
}

// Param is one bound statement parameter. Name is the parameter name
// without the "$" — positional parameters use "1", "2", ....
type Param struct {
	Name  string
	Value adm.Value
}

// Request is the body of a Query or Execute frame (the frame type
// distinguishes them): statement text plus bound parameters.
type Request struct {
	Text   string
	Params []Param
}

// AppendRequest encodes req.
func AppendRequest(dst []byte, req Request) []byte {
	dst = appendString(dst, req.Text)
	dst = binary.AppendUvarint(dst, uint64(len(req.Params)))
	for _, p := range req.Params {
		dst = appendString(dst, p.Name)
		dst = adm.AppendBinary(dst, p.Value)
	}
	return dst
}

// ParseRequest decodes a Query/Execute body.
func ParseRequest(body []byte) (Request, error) {
	r := reader{b: body}
	var req Request
	var err error
	if req.Text, err = r.str(); err != nil {
		return Request{}, fmt.Errorf("wire: request: %w", err)
	}
	n, err := r.count()
	if err != nil {
		return Request{}, fmt.Errorf("wire: request params: %w", err)
	}
	for i := 0; i < n; i++ {
		var p Param
		if p.Name, err = r.str(); err != nil {
			return Request{}, fmt.Errorf("wire: request param %d: %w", i, err)
		}
		if p.Value, err = r.value(); err != nil {
			return Request{}, fmt.Errorf("wire: request param %d: %w", i, err)
		}
		req.Params = append(req.Params, p)
	}
	return req, r.done("request")
}

// Header announces a result set: its column names. The engine yields
// one value per row, so today there is exactly one column ("value");
// the wire carries a list so a projected multi-column layout can ship
// without a version bump.
type Header struct {
	Columns []string
}

// AppendHeader encodes h.
func AppendHeader(dst []byte, h Header) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(h.Columns)))
	for _, c := range h.Columns {
		dst = appendString(dst, c)
	}
	return dst
}

// ParseHeader decodes a Header body.
func ParseHeader(body []byte) (Header, error) {
	r := reader{b: body}
	n, err := r.count()
	if err != nil {
		return Header{}, fmt.Errorf("wire: header: %w", err)
	}
	h := Header{Columns: make([]string, 0, n)}
	for i := 0; i < n; i++ {
		c, err := r.str()
		if err != nil {
			return Header{}, fmt.Errorf("wire: header column %d: %w", i, err)
		}
		h.Columns = append(h.Columns, c)
	}
	return h, r.done("header")
}

// AppendRowBatch encodes a batch of result rows.
func AppendRowBatch(dst []byte, rows []adm.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, v := range rows {
		dst = adm.AppendBinary(dst, v)
	}
	return dst
}

// BatchReader decodes a RowBatch body incrementally. The body may alias
// Conn's internal read buffer; decoded values own their memory (adm
// decoding copies), so they outlive the buffer, but the BatchReader
// itself must be exhausted before the next ReadFrame call.
type BatchReader struct {
	b   []byte
	rem int
}

// NewBatchReader wraps one RowBatch body.
func NewBatchReader(body []byte) (*BatchReader, error) {
	n, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, fmt.Errorf("wire: row batch: truncated count")
	}
	if n > uint64(len(body)-sz) {
		// Each value takes at least one byte; a bigger count is corrupt.
		return nil, fmt.Errorf("wire: row batch: count %d exceeds payload", n)
	}
	return &BatchReader{b: body[sz:], rem: int(n)}, nil
}

// Len reports the rows remaining.
func (r *BatchReader) Len() int { return r.rem }

// Next decodes the next row; ok is false at exhaustion.
func (r *BatchReader) Next() (v adm.Value, ok bool, err error) {
	if r.rem == 0 {
		if len(r.b) != 0 {
			return adm.Value{}, false, fmt.Errorf("wire: row batch: %d trailing bytes", len(r.b))
		}
		return adm.Value{}, false, nil
	}
	v, n, err := adm.DecodeBinary(r.b)
	if err != nil {
		return adm.Value{}, false, fmt.Errorf("wire: row batch: %w", err)
	}
	r.b = r.b[n:]
	r.rem--
	return v, true, nil
}

// Trailer ends a clean result stream.
type Trailer struct {
	// Rows is the total number of rows the server sent.
	Rows uint64
}

// AppendTrailer encodes t.
func AppendTrailer(dst []byte, t Trailer) []byte {
	return binary.AppendUvarint(dst, t.Rows)
}

// ParseTrailer decodes a Trailer body.
func ParseTrailer(body []byte) (Trailer, error) {
	r := reader{b: body}
	n, err := r.uvarint()
	if err != nil {
		return Trailer{}, fmt.Errorf("wire: trailer: %w", err)
	}
	return Trailer{Rows: n}, r.done("trailer")
}

// ErrorMsg is a typed error frame. Code is one of the Code* constants;
// when the failure happened inside a multi-statement script, HasStmt is
// set and Index/Pos/Snippet locate it (the wire form of
// idea.StatementError).
type ErrorMsg struct {
	Code    string
	Message string
	HasStmt bool
	Index   int
	Pos     int
	Snippet string
}

// AppendError encodes e.
func AppendError(dst []byte, e ErrorMsg) []byte {
	dst = appendString(dst, e.Code)
	dst = appendString(dst, e.Message)
	if !e.HasStmt {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(e.Index))
	dst = binary.AppendUvarint(dst, uint64(e.Pos))
	return appendString(dst, e.Snippet)
}

// ParseError decodes an Error body.
func ParseError(body []byte) (ErrorMsg, error) {
	r := reader{b: body}
	var e ErrorMsg
	var err error
	if e.Code, err = r.str(); err != nil {
		return ErrorMsg{}, fmt.Errorf("wire: error frame: %w", err)
	}
	if e.Message, err = r.str(); err != nil {
		return ErrorMsg{}, fmt.Errorf("wire: error frame: %w", err)
	}
	flag, err := r.byte()
	if err != nil {
		return ErrorMsg{}, fmt.Errorf("wire: error frame: %w", err)
	}
	if flag != 0 {
		e.HasStmt = true
		if e.Index, err = r.count(); err != nil {
			return ErrorMsg{}, fmt.Errorf("wire: error frame index: %w", err)
		}
		if e.Pos, err = r.count(); err != nil {
			return ErrorMsg{}, fmt.Errorf("wire: error frame pos: %w", err)
		}
		if e.Snippet, err = r.str(); err != nil {
			return ErrorMsg{}, fmt.Errorf("wire: error frame snippet: %w", err)
		}
	}
	return e, r.done("error frame")
}

// StmtResult is the wire form of one idea.Result: what a statement of
// an Execute script did. Feed carries the name of a feed started by a
// START FEED statement ("" otherwise) — handles don't cross the wire,
// names do; the feed is controlled with STOP FEED / STATS.
type StmtResult struct {
	Kind         string
	Pos          int
	RowsAffected int
	Feed         string
}

// AppendExecResults encodes per-statement results.
func AppendExecResults(dst []byte, results []StmtResult) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(results)))
	for _, res := range results {
		dst = appendString(dst, res.Kind)
		dst = binary.AppendUvarint(dst, uint64(res.Pos))
		dst = binary.AppendUvarint(dst, uint64(res.RowsAffected))
		dst = appendString(dst, res.Feed)
	}
	return dst
}

// ParseExecResults decodes an ExecResult body.
func ParseExecResults(body []byte) ([]StmtResult, error) {
	r := reader{b: body}
	n, err := r.count()
	if err != nil {
		return nil, fmt.Errorf("wire: exec results: %w", err)
	}
	out := make([]StmtResult, 0, n)
	for i := 0; i < n; i++ {
		var res StmtResult
		if res.Kind, err = r.str(); err != nil {
			return nil, fmt.Errorf("wire: exec result %d: %w", i, err)
		}
		if res.Pos, err = r.count(); err != nil {
			return nil, fmt.Errorf("wire: exec result %d: %w", i, err)
		}
		if res.RowsAffected, err = r.count(); err != nil {
			return nil, fmt.Errorf("wire: exec result %d: %w", i, err)
		}
		if res.Feed, err = r.str(); err != nil {
			return nil, fmt.Errorf("wire: exec result %d: %w", i, err)
		}
		out = append(out, res)
	}
	return out, r.done("exec results")
}

// AppendValue encodes one adm value (StatsReply bodies).
func AppendValue(dst []byte, v adm.Value) []byte { return adm.AppendBinary(dst, v) }

// ParseValue decodes a body that is exactly one adm value.
func ParseValue(body []byte) (adm.Value, error) {
	v, n, err := adm.DecodeBinary(body)
	if err != nil {
		return adm.Value{}, err
	}
	if n != len(body) {
		return adm.Value{}, fmt.Errorf("wire: value frame: %d trailing bytes", len(body)-n)
	}
	return v, nil
}

// --- body decoding primitives ---

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

type reader struct{ b []byte }

func (r *reader) take(n int) ([]byte, error) {
	if len(r.b) < n {
		return nil, fmt.Errorf("truncated (%d of %d bytes)", len(r.b), n)
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) byte() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("truncated uvarint")
	}
	r.b = r.b[n:]
	return u, nil
}

// count decodes a uvarint that must fit an int and stay sane as a
// length/count (corrupt frames must not drive allocations).
func (r *reader) count() (int, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if u > math.MaxInt32 {
		return 0, fmt.Errorf("count %d out of range", u)
	}
	return int(u), nil
}

func (r *reader) str() (string, error) {
	n, err := r.count()
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) value() (adm.Value, error) {
	v, n, err := adm.DecodeBinary(r.b)
	if err != nil {
		return adm.Value{}, err
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) done(what string) error {
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %s: %d trailing bytes", what, len(r.b))
	}
	return nil
}
