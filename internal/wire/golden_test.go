package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// The golden test pins the wire format byte for byte, the same way the
// storage layer pins its WAL and run files: a legitimate format change
// must bump Version AND regenerate the fixture with -update; an
// accidental drift fails here before it can strand deployed clients.

// goldenConversation frames one canned session covering every frame
// type in both directions.
func goldenConversation() []byte {
	var b []byte
	b = AppendFrame(b, TypeHello, AppendHello(nil, Hello{Version: Version, Token: "s3cret"}))
	b = AppendFrame(b, TypeWelcome, AppendWelcome(nil, Welcome{Version: Version, Server: "ideaserver"}))
	b = AppendFrame(b, TypePing, nil)
	b = AppendFrame(b, TypePong, nil)
	b = AppendFrame(b, TypeExecute, AppendRequest(nil, Request{
		Text: `CREATE DATASET Tweets (id); INSERT INTO Tweets ([{"id": 1}]);`,
	}))
	b = AppendFrame(b, TypeExecResult, AppendExecResults(nil, []StmtResult{
		{Kind: "CREATE_DATASET", Pos: 0},
		{Kind: "INSERT", Pos: 28, RowsAffected: 1},
		{Kind: "START_FEED", Pos: 61, Feed: "TweetFeed"},
	}))
	b = AppendFrame(b, TypeQuery, AppendRequest(nil, Request{
		Text: `SELECT VALUE t FROM Tweets t WHERE t.score > $1 AND t.lang = $lang`,
		Params: []Param{
			{Name: "1", Value: adm.Double(4.5)},
			{Name: "lang", Value: adm.String("en")},
		},
	}))
	b = AppendFrame(b, TypeHeader, AppendHeader(nil, Header{Columns: []string{"value"}}))
	b = AppendFrame(b, TypeRowBatch, AppendRowBatch(nil, []adm.Value{
		adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(1),
			"name", adm.String("alice"),
			"score", adm.Double(3.5),
			"tags", adm.Array([]adm.Value{adm.String("a"), adm.String("b")}),
		)),
		adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(2),
			"loc", adm.Point(7.5, -8.25),
			"active", adm.Bool(true),
			"at", adm.DateTimeMillis(1700000000000),
		)),
		adm.Null(),
		adm.String("plain"),
	}))
	b = AppendFrame(b, TypeCloseRows, nil)
	b = AppendFrame(b, TypeTrailer, AppendTrailer(nil, Trailer{Rows: 4}))
	b = AppendFrame(b, TypeError, AppendError(nil, ErrorMsg{
		Code:    CodeUnknownDataset,
		Message: "idea: unknown dataset",
		HasStmt: true, Index: 1, Pos: 28, Snippet: "INSERT INTO Nope",
	}))
	b = AppendFrame(b, TypeStats, nil)
	b = AppendFrame(b, TypeStatsReply, AppendValue(nil, adm.ObjectValue(adm.ObjectFromPairs(
		"server", adm.String("ideaserver"),
		"rows_sent", adm.Int(4),
	))))
	return b
}

// TestGoldenConversation pins a whole canned session's frames.
func TestGoldenConversation(t *testing.T) {
	got := goldenConversation()
	path := filepath.Join("testdata", "conversation-v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire format drifted from golden (%d vs %d bytes).\nIf the change is intentional, bump wire.Version and regenerate with -update.", len(got), len(want))
	}

	// The golden bytes must also read back: the decode side is pinned
	// too. Walk every frame and re-parse each body.
	rc := connOver(want)
	var frames int
	for {
		typ, body, err := rc.ReadFrame(MaxFrame)
		if err != nil {
			break
		}
		frames++
		switch typ {
		case TypeHello:
			h, err := ParseHello(body)
			if err != nil || h.Version != Version || h.Token != "s3cret" {
				t.Fatalf("hello: %+v, %v", h, err)
			}
		case TypeWelcome:
			w, err := ParseWelcome(body)
			if err != nil || w.Server != "ideaserver" {
				t.Fatalf("welcome: %+v, %v", w, err)
			}
		case TypeQuery, TypeExecute:
			if _, err := ParseRequest(body); err != nil {
				t.Fatalf("request: %v", err)
			}
		case TypeHeader:
			h, err := ParseHeader(body)
			if err != nil || len(h.Columns) != 1 {
				t.Fatalf("header: %+v, %v", h, err)
			}
		case TypeRowBatch:
			br, err := NewBatchReader(body)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			rows := 0
			for {
				_, ok, err := br.Next()
				if err != nil {
					t.Fatalf("batch row: %v", err)
				}
				if !ok {
					break
				}
				rows++
			}
			if rows != 4 {
				t.Fatalf("batch rows = %d, want 4", rows)
			}
		case TypeTrailer:
			tr, err := ParseTrailer(body)
			if err != nil || tr.Rows != 4 {
				t.Fatalf("trailer: %+v, %v", tr, err)
			}
		case TypeError:
			e, err := ParseError(body)
			if err != nil || e.Code != CodeUnknownDataset || !e.HasStmt {
				t.Fatalf("error frame: %+v, %v", e, err)
			}
		case TypeExecResult:
			res, err := ParseExecResults(body)
			if err != nil || len(res) != 3 || res[2].Feed != "TweetFeed" {
				t.Fatalf("exec results: %+v, %v", res, err)
			}
		case TypeStatsReply:
			v, err := ParseValue(body)
			if err != nil || v.Field("rows_sent").IntVal() != 4 {
				t.Fatalf("stats reply: %v, %v", v, err)
			}
		case TypePing, TypePong, TypeCloseRows, TypeStats:
			if len(body) != 0 {
				t.Fatalf("%v frame with body", typ)
			}
		default:
			t.Fatalf("unknown frame %v in golden", typ)
		}
	}
	if frames != 14 {
		t.Fatalf("golden holds %d frames, want 14", frames)
	}
}

// TestGoldenVersionByte pins the version constants: bumping one without
// regenerating the fixture (or vice versa) fails loudly.
func TestGoldenVersionByte(t *testing.T) {
	if Version != 1 || adm.BinaryVersion != 1 {
		t.Fatalf("format versions changed (wire=%d adm=%d): regenerate the golden file with -update and update this test",
			Version, adm.BinaryVersion)
	}
	data, err := os.ReadFile(filepath.Join("testdata", "conversation-v1.golden"))
	if err != nil {
		t.Skip("golden file not generated yet")
	}
	// Frame 1 is the Hello: header, type byte, then magic + version.
	rest := data[frameHeaderSize:]
	if Type(rest[0]) != TypeHello || string(rest[1:1+len(Magic)]) != Magic || rest[1+len(Magic)] != Version {
		t.Fatal("golden Hello frame does not carry the current magic+version")
	}
}
