package adm

import (
	"testing"
)

// tweetJSON is shaped like the paper's Twitter records: a handful of
// repeated scalar fields plus a nested user object and a geo point.
var tweetJSON = []byte(`{"id":184756291028475,"text":"benchmark tweet with some padding text to look realistic #idea","timestamp_ms":"1561093200123","lang":"en","favorite_count":12,"retweet_count":3,"user":{"id":99182736455,"name":"ingest bench","screen_name":"ingestbench","followers_count":1024,"friends_count":256},"coordinates":{"type":"Point","coordinates":[-117.84,33.68]}}`)

func BenchmarkParseJSON(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(tweetJSON)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseJSON(tweetJSON); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseJSONParser exercises the reusable Parser: interned field
// names and size-hinted objects, the configuration the static pipeline
// runs with.
func BenchmarkParseJSONParser(b *testing.B) {
	p := NewParser()
	b.ReportAllocs()
	b.SetBytes(int64(len(tweetJSON)))
	for i := 0; i < b.N; i++ {
		if _, err := p.Parse(tweetJSON); err != nil {
			b.Fatal(err)
		}
	}
}

// escapeHeavyJSON is an escape-dense corpus record: every string field
// needs escape decoding (quotes, control characters, unicode escapes),
// the adversarial shape for a parser whose fast path assumes clean
// strings.
var escapeHeavyJSON = []byte(`{"id":991827,"text":"\"quoted\" text\nwith\tmany\\escapes\r\nacross éè lines 😀","bio":"line1\nline2\nline3\t\"x\"","url":"https:\/\/example.com\/a\/b\/c","note":"tab\there\nand ☃ snowman"}`)

// BenchmarkParseEscapeHeavy measures the escape-decoding path over the
// escape-dense corpus: the heap fallback (no arena) against the
// arena-backed unescape buffer, which decodes in place and allocates
// nothing once warm.
func BenchmarkParseEscapeHeavy(b *testing.B) {
	b.Run("heap", func(b *testing.B) {
		p := NewParser()
		b.ReportAllocs()
		b.SetBytes(int64(len(escapeHeavyJSON)))
		for i := 0; i < b.N; i++ {
			if _, err := p.Parse(escapeHeavyJSON); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		p := NewParser()
		a := NewArena(4096)
		spine := make([]Value, 0, 8)
		b.ReportAllocs()
		b.SetBytes(int64(len(escapeHeavyJSON)))
		for i := 0; i < b.N; i++ {
			a.Reset()
			spine = spine[:0]
			var err error
			if spine, err = p.ParseInto(escapeHeavyJSON, spine, a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParseJSONParserArena is the dynamic feed's hot-path
// configuration: an interning Parser writing string payloads, objects,
// and field spines into a reusable byte arena, so a warmed record
// parses with (amortized) zero per-value allocations.
func BenchmarkParseJSONParserArena(b *testing.B) {
	p := NewParser()
	a := NewArena(4096)
	spine := make([]Value, 0, 8)
	b.ReportAllocs()
	b.SetBytes(int64(len(tweetJSON)))
	for i := 0; i < b.N; i++ {
		a.Reset()
		spine = spine[:0]
		var err error
		if spine, err = p.ParseInto(tweetJSON, spine, a); err != nil {
			b.Fatal(err)
		}
	}
}
