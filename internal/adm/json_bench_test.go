package adm

import (
	"testing"
)

// tweetJSON is shaped like the paper's Twitter records: a handful of
// repeated scalar fields plus a nested user object and a geo point.
var tweetJSON = []byte(`{"id":184756291028475,"text":"benchmark tweet with some padding text to look realistic #idea","timestamp_ms":"1561093200123","lang":"en","favorite_count":12,"retweet_count":3,"user":{"id":99182736455,"name":"ingest bench","screen_name":"ingestbench","followers_count":1024,"friends_count":256},"coordinates":{"type":"Point","coordinates":[-117.84,33.68]}}`)

func BenchmarkParseJSON(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(tweetJSON)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseJSON(tweetJSON); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseJSONParser exercises the reusable Parser: interned field
// names and size-hinted objects, the configuration the static pipeline
// runs with.
func BenchmarkParseJSONParser(b *testing.B) {
	p := NewParser()
	b.ReportAllocs()
	b.SetBytes(int64(len(tweetJSON)))
	for i := 0; i < b.N; i++ {
		if _, err := p.Parse(tweetJSON); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseJSONParserArena is the dynamic feed's hot-path
// configuration: an interning Parser writing string payloads, objects,
// and field spines into a reusable byte arena, so a warmed record
// parses with (amortized) zero per-value allocations.
func BenchmarkParseJSONParserArena(b *testing.B) {
	p := NewParser()
	a := NewArena(4096)
	spine := make([]Value, 0, 8)
	b.ReportAllocs()
	b.SetBytes(int64(len(tweetJSON)))
	for i := 0; i < b.N; i++ {
		a.Reset()
		spine = spine[:0]
		var err error
		if spine, err = p.ParseInto(tweetJSON, spine, a); err != nil {
			b.Fatal(err)
		}
	}
}
