package adm

import (
	"bytes"
	"testing"
	"time"
)

// encodeKinds is one value of every encodable kind, including nesting.
func encodeKinds() []Value {
	return []Value{
		Missing(),
		Null(),
		Bool(true),
		Bool(false),
		Int(0),
		Int(-1),
		Int(1 << 40),
		Double(3.5),
		Double(-0.125),
		String(""),
		String("héllo, wörld"),
		DateTime(time.Date(2019, 8, 26, 12, 0, 0, 0, time.UTC)),
		Duration(14, 123456),
		Point(1.5, -2.5),
		Rectangle(0, 0, 10, 20),
		Circle(3, 4, 5),
		EmptyArray(),
		Array([]Value{Int(1), String("two"), Null()}),
		ObjectValue(ObjectFromPairs(
			"id", Int(42),
			"name", String("alice"),
			"tags", Array([]Value{String("a"), String("b")}),
			"loc", Point(7, 8),
			"meta", ObjectValue(ObjectFromPairs("deep", Bool(true))),
		)),
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, v := range encodeKinds() {
		enc := AppendBinary(nil, v)
		got, n, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %s consumed %d of %d bytes", v, n, len(enc))
		}
		if Compare(got, v) != 0 {
			t.Fatalf("round trip %s => %s", v, got)
		}
		if v.Kind() == KindObject || v.Kind() == KindArray {
			if got.String() != v.String() {
				t.Fatalf("container shape changed: %s => %s", v, got)
			}
		}
	}
}

// TestBinaryStream checks that concatenated values decode back in
// sequence — the WAL entry format relies on self-delimiting encoding.
func TestBinaryStream(t *testing.T) {
	vals := encodeKinds()
	var buf []byte
	for _, v := range vals {
		buf = AppendBinary(buf, v)
	}
	for i, want := range vals {
		v, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if Compare(v, want) != 0 {
			t.Fatalf("value %d: got %s want %s", i, v, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after stream decode", len(buf))
	}
}

// TestBinaryDecodeTruncated feeds every strict prefix of each encoding
// to the decoder; all of them must fail cleanly rather than panic or
// succeed with garbage.
func TestBinaryDecodeTruncated(t *testing.T) {
	for _, v := range encodeKinds() {
		enc := AppendBinary(nil, v)
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := DecodeBinary(enc[:cut]); err == nil {
				t.Fatalf("decode of %d/%d bytes of %s succeeded", cut, len(enc), v)
			}
		}
	}
}

func TestBinaryDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{0xff}, // unknown tag
		{byte(KindArray), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // absurd count
		{byte(KindString), 0x05, 'a'}, // short string
	}
	for i, data := range cases {
		if _, _, err := DecodeBinary(data); err == nil {
			t.Fatalf("case %d: corrupt input decoded", i)
		}
	}
}

// TestBinaryArenaValues ensures arena-backed values encode identically
// to their materialized twins — storage serializes straight off the
// parse arena.
func TestBinaryArenaValues(t *testing.T) {
	ar := NewArena(1 << 12)
	vals, err := ParseJSONInto([]byte(`{"id": 7, "text": "tweet with éscapes", "tags": ["x", "y"]}`), nil, ar)
	if err != nil {
		t.Fatal(err)
	}
	rec := vals[0]
	got := AppendBinary(nil, rec)
	want := AppendBinary(nil, rec.Materialize())
	if !bytes.Equal(got, want) {
		t.Fatal("arena-backed value encoded differently from materialized copy")
	}
}
