package adm

// Parser is a reusable JSON parser for record streams whose records
// share a schema shape, like the feed hot path: millions of tweet-shaped
// records with the same handful of field names. It keeps two pieces of
// state across Parse calls:
//
//   - a field-name intern table, so repeated object keys ("id", "text",
//     "geo", ...) share one string allocation for the life of the parser
//     instead of re-allocating per record, and
//   - per-nesting-depth field-count hints taken from previously parsed
//     records, so objects are pre-sized to their expected width instead
//     of growing from a fixed default.
//
// A Parser is not safe for concurrent use; the feed keeps one per
// collector partition. The zero value is NOT usable — call NewParser.
type Parser struct {
	intern map[string]string
	hints  []int
	// arrayHints mirrors hints for array lengths per array-nesting
	// depth, so parseArray can carve element spines of the right size
	// from the frame arena instead of growing heap slices.
	arrayHints []int
}

const (
	// maxInternedNames bounds the intern table so adversarial inputs
	// with unbounded distinct keys cannot grow it without limit; keys
	// past the bound are still parsed, just not retained.
	maxInternedNames = 1 << 12
	// maxInternedNameLen bounds each retained key, so the table's worst
	// case is maxInternedNames × maxInternedNameLen bytes (4MB) even
	// when an untrusted feed sends multi-megabyte field names.
	maxInternedNameLen = 1 << 10
	// maxHintDepth bounds the per-depth size-hint table.
	maxHintDepth = 32
	// maxFieldHint caps how large a pre-size hint can get, so one wide
	// outlier record does not pin large allocations for every record
	// that follows.
	maxFieldHint = 64
)

// NewParser returns a parser with an empty intern table.
func NewParser() *Parser {
	return &Parser{intern: make(map[string]string, 32)}
}

// Parse parses one JSON value, interning field names and pre-sizing
// objects from earlier records. It is the hot-path replacement for
// ParseJSON.
func (pp *Parser) Parse(data []byte) (Value, error) {
	p := jsonParser{data: data, owner: pp}
	return p.parseDocument()
}

// ParseInto parses one JSON value and appends it to dst, the
// caller-owned record spine (typically a pooled frame slice), returning
// the extended slice. When arena is non-nil, string payloads, objects,
// and field spines are carved from it instead of the heap, making the
// parsed value arena-backed: valid only while the arena lives un-Reset,
// and requiring Value.Materialize before escaping that lifetime. A nil
// arena keeps the old heap behavior. On a parse error dst is returned
// unchanged (the arena may still have grown; wasted bytes are reclaimed
// at the next Reset).
func (pp *Parser) ParseInto(data []byte, dst []Value, arena *Arena) ([]Value, error) {
	p := jsonParser{data: data, owner: pp, arena: arena}
	v, err := p.parseDocument()
	if err != nil {
		return dst, err
	}
	return append(dst, v), nil
}

// ParseJSONInto is ParseInto without parser state: it parses data and
// appends the result to the caller-owned dst, writing string bytes into
// the caller's arena when one is supplied.
func ParseJSONInto(data []byte, dst []Value, arena *Arena) ([]Value, error) {
	p := jsonParser{data: data, arena: arena}
	v, err := p.parseDocument()
	if err != nil {
		return dst, err
	}
	return append(dst, v), nil
}

// internBytes returns the canonical string for a field name given as raw
// bytes, allocating only the first time a name is seen. The m[string(b)]
// lookup form compiles to a no-allocation map access.
func (pp *Parser) internBytes(b []byte) string {
	if s, ok := pp.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(s) <= maxInternedNameLen && len(pp.intern) < maxInternedNames {
		pp.intern[s] = s
	}
	return s
}

// internString is internBytes for names that needed escape decoding.
func (pp *Parser) internString(s string) string {
	if v, ok := pp.intern[s]; ok {
		return v
	}
	if len(s) <= maxInternedNameLen && len(pp.intern) < maxInternedNames {
		pp.intern[s] = s
	}
	return s
}

// hint returns the expected field count for an object at the given
// nesting depth, from the widest object seen there so far.
func (pp *Parser) hint(depth int) int {
	if depth < len(pp.hints) && pp.hints[depth] > 0 {
		return pp.hints[depth]
	}
	return defaultObjectHint
}

// observe records the field count of a finished object at depth.
func (pp *Parser) observe(depth, n int) {
	if depth >= maxHintDepth {
		return
	}
	for len(pp.hints) <= depth {
		pp.hints = append(pp.hints, 0)
	}
	if n > maxFieldHint {
		n = maxFieldHint
	}
	if n > pp.hints[depth] {
		pp.hints[depth] = n
	}
}

// arrayHint returns the expected element count for an array at the
// given array-nesting depth, from the longest array seen there so far.
func (pp *Parser) arrayHint(depth int) int {
	if depth < len(pp.arrayHints) && pp.arrayHints[depth] > 0 {
		return pp.arrayHints[depth]
	}
	return defaultArrayHint
}

// observeArray records the element count of a finished array at depth.
// The hint is capped like object hints so one huge outlier array does
// not pin large spans for every record that follows (longer arrays
// simply fall back to heap growth past the span).
func (pp *Parser) observeArray(depth, n int) {
	if depth >= maxHintDepth {
		return
	}
	for len(pp.arrayHints) <= depth {
		pp.arrayHints = append(pp.arrayHints, 0)
	}
	if n > maxFieldHint {
		n = maxFieldHint
	}
	if n > pp.arrayHints[depth] {
		pp.arrayHints[depth] = n
	}
}
