package adm

import (
	"errors"
	"fmt"
)

// FieldDef describes one declared field of a Datatype.
type FieldDef struct {
	Name     string
	Kind     Kind
	Optional bool // declared with '?' in DDL
}

// Datatype is the declared shape of records stored in a Dataset,
// mirroring AsterixDB's CREATE TYPE. An *open* datatype only constrains
// its declared fields; records may carry arbitrary additional fields. A
// *closed* datatype rejects undeclared fields.
type Datatype struct {
	Name   string
	Open   bool
	Fields []FieldDef

	byName map[string]int
}

// NewDatatype builds a datatype, validating field uniqueness.
func NewDatatype(name string, open bool, fields []FieldDef) (*Datatype, error) {
	dt := &Datatype{Name: name, Open: open, Fields: fields,
		byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("adm: datatype %s: empty field name", name)
		}
		if _, dup := dt.byName[f.Name]; dup {
			return nil, fmt.Errorf("adm: datatype %s: duplicate field %q", name, f.Name)
		}
		dt.byName[f.Name] = i
	}
	return dt, nil
}

// MustDatatype is NewDatatype that panics on error, for tests and
// statically-known types.
func MustDatatype(name string, open bool, fields []FieldDef) *Datatype {
	dt, err := NewDatatype(name, open, fields)
	if err != nil {
		panic(err)
	}
	return dt
}

// Field returns the declared definition of the named field.
func (dt *Datatype) Field(name string) (FieldDef, bool) {
	if i, ok := dt.byName[name]; ok {
		return dt.Fields[i], true
	}
	return FieldDef{}, false
}

// ErrNotObject is returned when a non-object record reaches validation.
var ErrNotObject = errors.New("adm: record is not an object")

// Validate checks v against the datatype and coerces loosely-typed JSON
// payloads into their declared ADM kinds in place: ISO strings become
// datetimes/durations, numeric pairs/triples/quads become points,
// circles, and rectangles. It returns the (possibly rewritten) record.
//
// This is the feed parser's second half: JSON only has strings, numbers,
// arrays, and objects; the datatype supplies the richer ADM typing.
func (dt *Datatype) Validate(v Value) (Value, error) {
	if v.Kind() != KindObject || v.ObjectVal() == nil {
		return v, ErrNotObject
	}
	obj := v.ObjectVal()
	for _, f := range dt.Fields {
		fv, ok := obj.Get(f.Name)
		if !ok || fv.IsMissing() {
			if f.Optional {
				continue
			}
			return v, fmt.Errorf("adm: datatype %s: required field %q missing", dt.Name, f.Name)
		}
		if fv.IsNull() {
			continue
		}
		coerced, err := CoerceKind(fv, f.Kind)
		if err != nil {
			return v, fmt.Errorf("adm: datatype %s: field %q: %w", dt.Name, f.Name, err)
		}
		if coerced.Kind() != fv.Kind() {
			obj.Set(f.Name, coerced)
		}
	}
	if !dt.Open {
		for i := 0; i < obj.Len(); i++ {
			if _, ok := dt.byName[obj.Name(i)]; !ok {
				return v, fmt.Errorf("adm: closed datatype %s: undeclared field %q", dt.Name, obj.Name(i))
			}
		}
	}
	return v, nil
}

// CoerceKind converts v to the target kind where a faithful conversion
// exists (int↔double, string→datetime/duration, [x,y]→point, ...). It
// returns v unchanged when it already has the target kind, and an error
// when no conversion applies.
func CoerceKind(v Value, target Kind) (Value, error) {
	if v.Kind() == target || target == KindMissing {
		return v, nil
	}
	switch target {
	case KindInt64:
		if i, ok := v.AsInt(); ok {
			return Int(i), nil
		}
	case KindDouble:
		if f, ok := v.AsDouble(); ok {
			return Double(f), nil
		}
	case KindString:
		if v.Kind() == KindString {
			return v, nil
		}
	case KindDateTime:
		switch v.Kind() {
		case KindString:
			if ms, ok := ParseISODateTime(v.StringVal()); ok {
				return DateTimeMillis(ms), nil
			}
		case KindInt64:
			return DateTimeMillis(v.IntVal()), nil
		}
	case KindDuration:
		if v.Kind() == KindString {
			if months, millis, ok := ParseISODuration(v.StringVal()); ok {
				return Duration(months, millis), nil
			}
		}
	case KindPoint:
		if fs, ok := floatElems(v, 2); ok {
			return Point(fs[0], fs[1]), nil
		}
	case KindRectangle:
		if fs, ok := floatElems(v, 4); ok {
			return Rectangle(fs[0], fs[1], fs[2], fs[3]), nil
		}
	case KindCircle:
		if fs, ok := floatElems(v, 3); ok {
			return Circle(fs[0], fs[1], fs[2]), nil
		}
	case KindBoolean, KindArray, KindObject, KindNull:
		// No lossy coercions for these kinds.
	}
	return v, fmt.Errorf("cannot coerce %s to %s", v.Kind(), target)
}

func floatElems(v Value, n int) ([]float64, bool) {
	if v.Kind() != KindArray {
		return nil, false
	}
	elems := v.ArrayVal()
	if len(elems) != n {
		return nil, false
	}
	out := make([]float64, n)
	for i, e := range elems {
		f, ok := e.AsDouble()
		if !ok {
			return nil, false
		}
		out[i] = f
	}
	return out, true
}
