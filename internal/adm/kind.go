// Package adm implements the AsterixDB Data Model (ADM): a superset of
// JSON with ordered open records, temporal types, and spatial types.
//
// ADM values are the currency of the whole system: feed parsers produce
// them, UDFs transform them, the query evaluator computes over them, and
// LSM storage partitions persist them. A Value is an immutable-by-
// convention tagged union; Objects are ordered field collections that may
// carry fields beyond their declared Datatype ("open" records).
//
// # Arenas
//
// On the feed hot path, values are parsed into an Arena: string
// payloads, object structs, and field spines reference frame-scoped
// slabs instead of individual heap allocations, so a warmed record
// parses with zero allocations. Arena-backed values are valid only
// while their arena is live and un-Reset; Value.Materialize copies one
// out before it escapes that lifetime. The Arena type documents the
// contract; the internal/hyracks package comment states the frame-level
// ownership rules; docs/ARCHITECTURE.md walks through both with
// examples.
package adm

// Kind identifies the runtime type of a Value. The order of the
// constants defines the cross-kind total order used by Compare: MISSING
// sorts before NULL, which sorts before every typed value, mirroring
// AsterixDB's ordering semantics.
type Kind uint8

const (
	// KindMissing is the absence of a field (distinct from null).
	KindMissing Kind = iota
	// KindNull is an explicit JSON null.
	KindNull
	// KindBoolean is true/false.
	KindBoolean
	// KindInt64 is a 64-bit signed integer.
	KindInt64
	// KindDouble is a 64-bit IEEE float.
	KindDouble
	// KindString is an immutable UTF-8 string.
	KindString
	// KindDateTime is a millisecond-precision UTC timestamp.
	KindDateTime
	// KindDuration is a calendar duration (months + milliseconds).
	KindDuration
	// KindPoint is a 2-D point (x, y).
	KindPoint
	// KindRectangle is an axis-aligned rectangle (two corner points).
	KindRectangle
	// KindCircle is a circle (center point + radius).
	KindCircle
	// KindArray is an ordered collection of values.
	KindArray
	// KindObject is an ordered (possibly open) record.
	KindObject

	numKinds
)

var kindNames = [numKinds]string{
	KindMissing:   "missing",
	KindNull:      "null",
	KindBoolean:   "boolean",
	KindInt64:     "int64",
	KindDouble:    "double",
	KindString:    "string",
	KindDateTime:  "datetime",
	KindDuration:  "duration",
	KindPoint:     "point",
	KindRectangle: "rectangle",
	KindCircle:    "circle",
	KindArray:     "array",
	KindObject:    "object",
}

// String returns the lower-case ADM name of the kind ("int64", "point" ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// KindFromName resolves a type name as written in DDL (CREATE TYPE ...)
// to a Kind. It accepts the ADM spellings plus common aliases.
func KindFromName(name string) (Kind, bool) {
	switch name {
	case "missing":
		return KindMissing, true
	case "null":
		return KindNull, true
	case "boolean", "bool":
		return KindBoolean, true
	case "int64", "int", "bigint", "integer":
		return KindInt64, true
	case "double", "float", "float64":
		return KindDouble, true
	case "string":
		return KindString, true
	case "datetime", "timestamp":
		return KindDateTime, true
	case "duration":
		return KindDuration, true
	case "point":
		return KindPoint, true
	case "rectangle":
		return KindRectangle, true
	case "circle":
		return KindCircle, true
	case "array", "multiset":
		return KindArray, true
	case "object", "record":
		return KindObject, true
	}
	return KindMissing, false
}

// IsNumeric reports whether the kind participates in numeric promotion
// (int64 and double compare and compute with each other).
func (k Kind) IsNumeric() bool { return k == KindInt64 || k == KindDouble }

// IsSpatial reports whether the kind is one of the geometry types.
func (k Kind) IsSpatial() bool {
	return k == KindPoint || k == KindRectangle || k == KindCircle
}

// IsUnknown reports whether the kind is MISSING or NULL, the two
// "unknown" values that propagate through most scalar functions.
func (k Kind) IsUnknown() bool { return k == KindMissing || k == KindNull }
