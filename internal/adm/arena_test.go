package adm

import (
	"testing"
)

// TestArenaParsing: values parsed into an arena must read back exactly
// like heap-parsed values, across strings, nested objects, arrays,
// escapes (decoded into the arena's unescape buffer), and field names.
func TestArenaParsing(t *testing.T) {
	doc := []byte(`{"id":42,"text":"plain body","esc":"a\nb","user":{"name":"ann","tags":["x","y"]},"n":1.5}`)
	want, err := ParseJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser()
	a := NewArena(256)
	spine, err := p.ParseInto(doc, nil, a)
	if err != nil {
		t.Fatal(err)
	}
	got := spine[0]
	if Compare(got, want) != 0 {
		t.Fatalf("arena parse mismatch:\n got %v\nwant %v", got, want)
	}
	if !got.ArenaBacked() {
		t.Fatal("arena-parsed object not flagged arena-backed")
	}
	if !got.Field("text").ArenaBacked() {
		t.Fatal("clean string should be an arena view")
	}
	if !got.Field("esc").ArenaBacked() {
		t.Fatal("escape-decoded string should decode into the arena's unescape buffer")
	}
	if !got.Field("user").Field("tags").ArenaBacked() {
		t.Fatal("array element spine should be carved from the arena")
	}
	// Stateless arena parse: field names are arena views too.
	spine2, err := ParseJSONInto(doc, nil, NewArena(256))
	if err != nil {
		t.Fatal(err)
	}
	if Compare(spine2[0], want) != 0 {
		t.Fatal("stateless arena parse mismatch")
	}
	if !spine2[0].ObjectVal().arenaNames {
		t.Fatal("stateless arena parse should flag arena names")
	}
	// Interning parser: names are canonical heap strings.
	if got.ObjectVal().arenaNames {
		t.Fatal("interning parser should keep names off the arena")
	}
}

// TestArenaReset: resetting an arena invalidates the views parsed into
// it — the next record's bytes overwrite them. This pins down the
// aliasing that makes Materialize necessary (if this test ever fails
// because views stopped aliasing, the zero-allocation claim broke too).
func TestArenaReset(t *testing.T) {
	p := NewParser()
	a := NewArena(64)
	spine, err := p.ParseInto([]byte(`{"text":"AAAA"}`), nil, a)
	if err != nil {
		t.Fatal(err)
	}
	stale := spine[0].Field("text")
	a.Reset()
	if _, err := p.ParseInto([]byte(`{"text":"BBBB"}`), nil, a); err != nil {
		t.Fatal(err)
	}
	if got := stale.StringVal(); got != "BBBB" {
		t.Fatalf("stale view reads %q; expected it to alias the overwritten arena bytes (BBBB)", got)
	}
}

// TestMaterialize: a materialized value shares no memory with the arena
// — it must survive the arena being reset and overwritten.
func TestMaterialize(t *testing.T) {
	doc := []byte(`{"id":1,"text":"keep me","user":{"name":"ann"},"tags":["a","b"]}`)
	p := NewParser()
	a := NewArena(128)
	spine, err := p.ParseInto(doc, nil, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ParseJSON(doc) // heap reference copy
	if err != nil {
		t.Fatal(err)
	}
	m := spine[0].Materialize()
	a.Reset()
	if _, err := p.ParseInto([]byte(`{"id":9,"text":"clobber!","user":{"name":"zzz"},"tags":["q","r"]}`), nil, a); err != nil {
		t.Fatal(err)
	}
	if Compare(m, want) != 0 {
		t.Fatalf("materialized value corrupted by arena reuse:\n got %v\nwant %v", m, want)
	}
	if m.ArenaBacked() || m.Field("text").ArenaBacked() {
		t.Fatal("materialized value still flagged arena-backed")
	}
}

// TestMaterializeStatelessNames: with no interning parser, field names
// are arena views and must be cloned on materialize.
func TestMaterializeStatelessNames(t *testing.T) {
	a := NewArena(64)
	spine, err := ParseJSONInto([]byte(`{"alpha":1}`), nil, a)
	if err != nil {
		t.Fatal(err)
	}
	m := spine[0].Materialize()
	a.Reset()
	if _, err := ParseJSONInto([]byte(`{"omega":2}`), nil, a); err != nil {
		t.Fatal(err)
	}
	if got := m.ObjectVal().Name(0); got != "alpha" {
		t.Fatalf("materialized field name = %q, want alpha", got)
	}
}

// TestMaterializeHeapIdentity: heap values materialize to themselves —
// same object pointer, no allocation.
func TestMaterializeHeapIdentity(t *testing.T) {
	v, err := ParseJSON([]byte(`{"id":1,"text":"heap","arr":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	m := v.Materialize()
	if m.ObjectVal() != v.ObjectVal() {
		t.Fatal("materializing a heap value should be the identity")
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = v.Materialize() }); allocs != 0 {
		t.Fatalf("materializing a heap value allocated %v times", allocs)
	}
	// A heap container holding an arena child must still be rebuilt —
	// the walk cannot trust container flags.
	a := NewArena(64)
	spine, err := NewParser().ParseInto([]byte(`"arena leaf"`), nil, a)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := ObjectValue(ObjectFromPairs("leaf", spine[0]))
	if wrapped.ArenaBacked() {
		t.Fatal("hand-built container should not report arena-backed (shallow check)")
	}
	mw := wrapped.Materialize()
	if mw.Field("leaf").ArenaBacked() {
		t.Fatal("materialize missed an arena leaf inside a heap container")
	}
}

// TestArenaStringZeroAllocs is the acceptance gate for the arena path:
// parsing a warmed string value into an arena must not allocate at all.
func TestArenaStringZeroAllocs(t *testing.T) {
	p := NewParser()
	a := NewArena(1024)
	doc := []byte(`"string values should cost zero allocations on the arena path"`)
	spine := make([]Value, 0, 8)
	parse := func() {
		a.Reset()
		spine = spine[:0]
		var err error
		spine, err = p.ParseInto(doc, spine, a)
		if err != nil || spine[0].Kind() != KindString {
			t.Fatalf("parse failed: %v %v", err, spine)
		}
	}
	parse() // warm the arena's byte buffer
	if allocs := testing.AllocsPerRun(200, parse); allocs != 0 {
		t.Fatalf("arena string parse allocated %v times per run, want 0", allocs)
	}
}

// TestArenaRecordZeroAllocs extends the budget to a whole record shaped
// like the feed benchmark's — nested object, strings, ints, and an
// array, whose element spine is carved from the arena too: after
// warmup the entire record parses with zero allocations.
func TestArenaRecordZeroAllocs(t *testing.T) {
	p := NewParser()
	a := NewArena(4096)
	doc := []byte(`{"id":184756,"text":"benchmark tweet with some padding text","lang":"en","coordinates":[-117.84,33.68],"user":{"id":99,"screen_name":"bench","followers_count":1024}}`)
	spine := make([]Value, 0, 8)
	parse := func() {
		a.Reset()
		spine = spine[:0]
		var err error
		spine, err = p.ParseInto(doc, spine, a)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Warm: intern table, size hints, arena slabs.
	for i := 0; i < 4; i++ {
		parse()
	}
	if allocs := testing.AllocsPerRun(200, parse); allocs != 0 {
		t.Fatalf("arena record parse allocated %v times per run, want 0", allocs)
	}
}

// TestArenaTweetBudget pins the full paper-shaped tweet — coordinates
// array included — at zero allocations once warmed: with array element
// spines carved from the arena, nothing in the record touches the heap.
func TestArenaTweetBudget(t *testing.T) {
	p := NewParser()
	a := NewArena(4096)
	spine := make([]Value, 0, 8)
	parse := func() {
		a.Reset()
		spine = spine[:0]
		var err error
		spine, err = p.ParseInto(tweetJSON, spine, a)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		parse()
	}
	if allocs := testing.AllocsPerRun(100, parse); allocs != 0 {
		t.Fatalf("arena tweet parse allocated %v times per run, want 0", allocs)
	}
}

// TestArenaEscapeZeroAllocs: escape-heavy strings decode into the
// arena's unescape buffer, so even an escape-dense record parses with
// zero allocations once warmed.
func TestArenaEscapeZeroAllocs(t *testing.T) {
	p := NewParser()
	a := NewArena(4096)
	doc := []byte(`{"id":7,"text":"line one\nline \"two\"\twith\\backslashes","note":"A\u00e9 \ud83d\ude00 B\n\t"}`)
	spine := make([]Value, 0, 8)
	parse := func() {
		a.Reset()
		spine = spine[:0]
		var err error
		spine, err = p.ParseInto(doc, spine, a)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		parse()
	}
	if allocs := testing.AllocsPerRun(200, parse); allocs != 0 {
		t.Fatalf("arena escape parse allocated %v times per run, want 0", allocs)
	}
	// The decoded content must match the heap parser's exactly.
	want, err := ParseJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	if Compare(spine[0], want) != 0 {
		t.Fatalf("arena unescape mismatch:\n got %v\nwant %v", spine[0], want)
	}
}
