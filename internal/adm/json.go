package adm

import (
	"fmt"
	"math"
	"strconv"
	"time"
	"unicode/utf16"
	"unicode/utf8"
)

// ParseJSON parses a single JSON value into an ADM Value. Numbers
// without a fraction or exponent become int64; everything else becomes
// double. The parser is hand-rolled because it sits on the feed's hot
// path: every ingested record passes through it once per computing job.
func ParseJSON(data []byte) (Value, error) {
	p := jsonParser{data: data}
	return p.parseDocument()
}

// defaultObjectHint is the pre-size for objects when no Parser hint is
// available.
const defaultObjectHint = 8

// defaultArrayHint is the pre-size for array element spines when no
// Parser hint is available.
const defaultArrayHint = 4

type jsonParser struct {
	data     []byte
	pos      int
	depth    int
	arrDepth int
	// owner, when non-nil, supplies the field-name intern table and
	// object size hints of a reusable Parser.
	owner *Parser
	// arena, when non-nil, receives string payloads, objects, and field
	// spines: parsed values reference arena memory instead of owning
	// heap allocations (see Arena for the lifetime contract).
	arena *Arena
}

func (p *jsonParser) parseDocument() (Value, error) {
	p.skipSpace()
	v, err := p.parseValue()
	if err != nil {
		return Value{}, err
	}
	p.skipSpace()
	if p.pos != len(p.data) {
		return Value{}, p.errorf("trailing data after JSON value")
	}
	return v, nil
}

func (p *jsonParser) errorf(format string, args ...any) error {
	return fmt.Errorf("adm: json at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *jsonParser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsonParser) parseValue() (Value, error) {
	if p.pos >= len(p.data) {
		return Value{}, p.errorf("unexpected end of input")
	}
	switch c := p.data[p.pos]; {
	case c == '{':
		return p.parseObject()
	case c == '[':
		return p.parseArray()
	case c == '"':
		return p.parseStringValue()
	case c == 't':
		if err := p.expect("true"); err != nil {
			return Value{}, err
		}
		return Bool(true), nil
	case c == 'f':
		if err := p.expect("false"); err != nil {
			return Value{}, err
		}
		return Bool(false), nil
	case c == 'n':
		if err := p.expect("null"); err != nil {
			return Value{}, err
		}
		return Null(), nil
	case c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	default:
		return Value{}, p.errorf("unexpected character %q", c)
	}
}

func (p *jsonParser) expect(lit string) error {
	if p.pos+len(lit) > len(p.data) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return p.errorf("invalid literal, expected %q", lit)
	}
	p.pos += len(lit)
	return nil
}

func (p *jsonParser) parseObject() (Value, error) {
	p.pos++ // consume '{'
	hint := defaultObjectHint
	depth := p.depth
	p.depth++
	if p.owner != nil {
		hint = p.owner.hint(depth)
	}
	var obj *Object
	if p.arena != nil {
		obj = p.arena.newObject(hint)
	} else {
		obj = NewObject(hint)
	}
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		p.depth--
		return ObjectValue(obj), nil
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '"' {
			return Value{}, p.errorf("expected object key string")
		}
		key, keyInArena, err := p.parseKey()
		if err != nil {
			return Value{}, err
		}
		if keyInArena {
			obj.arenaNames = true
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return Value{}, p.errorf("expected ':' after object key")
		}
		p.pos++
		p.skipSpace()
		v, err := p.parseValue()
		if err != nil {
			return Value{}, err
		}
		obj.Set(key, v)
		p.skipSpace()
		if p.pos >= len(p.data) {
			return Value{}, p.errorf("unterminated object")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			p.depth--
			if p.owner != nil {
				p.owner.observe(depth, obj.Len())
			}
			return ObjectValue(obj), nil
		default:
			return Value{}, p.errorf("expected ',' or '}' in object")
		}
	}
}

// parseKey parses an object field name; inArena reports that the
// returned string views arena bytes. Escape-free names (the common case
// by far) are interned straight from the input bytes without an
// intermediate allocation; an interning Parser wins over the arena
// because its canonical names are stable heap strings shared across
// records, so they never need materializing.
func (p *jsonParser) parseKey() (key string, inArena bool, err error) {
	start := p.pos + 1
	for i := start; i < len(p.data); i++ {
		c := p.data[i]
		if c == '"' {
			b := p.data[start:i]
			p.pos = i + 1
			if p.owner != nil {
				return p.owner.internBytes(b), false, nil
			}
			if p.arena != nil {
				return p.arena.appendView(b), true, nil
			}
			return string(b), false, nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
	}
	s, err := p.parseString()
	if err != nil {
		return "", false, err
	}
	if p.owner != nil {
		return p.owner.internString(s), false, nil
	}
	return s, false, nil
}

// parseStringValue parses a JSON string into a Value. Escape-free
// strings parsed with an arena become zero-allocation views of arena
// memory; escape-heavy strings decode straight into the arena's byte
// buffer (no per-string heap scratch, no final copy). Only the
// arena-less path falls back to heap strings.
func (p *jsonParser) parseStringValue() (Value, error) {
	start := p.pos + 1
	for i := start; i < len(p.data); i++ {
		c := p.data[i]
		if c == '"' {
			b := p.data[start:i]
			p.pos = i + 1
			if p.arena != nil {
				return p.arena.stringValue(b), nil
			}
			return String(string(b)), nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
	}
	if p.arena != nil {
		s, err := p.parseStringIntoArena()
		if err != nil {
			return Value{}, err
		}
		if s == "" {
			return String(""), nil
		}
		return Value{kind: KindString, flags: flagArena, s: s}, nil
	}
	s, err := p.parseString()
	if err != nil {
		return Value{}, err
	}
	return String(s), nil
}

// parseStringIntoArena decodes a string (escapes included) directly
// into the arena's byte buffer and returns a view of it — the
// arena-backed unescape buffer that keeps escape-dense corpora off the
// per-string heap path.
func (p *jsonParser) parseStringIntoArena() (string, error) {
	a := p.arena
	mark := a.Len()
	p.pos++ // consume opening quote
	start := p.pos
	// Copy the escape-free prefix, then decode the rest in place.
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c == '"' || c == '\\' || c < 0x20 {
			break
		}
		p.pos++
	}
	buf, err := p.decodeStringTail(append(a.buf, p.data[start:p.pos]...))
	if err != nil {
		return "", err
	}
	a.buf = buf
	return a.viewFrom(mark), nil
}

func (p *jsonParser) parseArray() (Value, error) {
	p.pos++ // consume '['
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
		return EmptyArray(), nil
	}
	depth := p.arrDepth
	p.arrDepth++
	// With an arena, the element spine is carved from the value slab at
	// the hinted length; arrays that outgrow the span fall back to heap
	// growth (the hints make that rare), which is correct, just slower.
	var elems []Value
	hint := 0
	if p.arena != nil {
		hint = defaultArrayHint
		if p.owner != nil {
			hint = p.owner.arrayHint(depth)
		}
		elems = p.arena.valueSpan(hint)
	}
	for {
		p.skipSpace()
		v, err := p.parseValue()
		if err != nil {
			p.arrDepth--
			return Value{}, err
		}
		elems = append(elems, v)
		p.skipSpace()
		if p.pos >= len(p.data) {
			p.arrDepth--
			return Value{}, p.errorf("unterminated array")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			p.arrDepth--
			if p.owner != nil {
				p.owner.observeArray(depth, len(elems))
			}
			// cap(elems) == hint means every append stayed inside the
			// arena span; growth would have reallocated to the heap.
			if hint > 0 && cap(elems) == hint {
				return Value{kind: KindArray, flags: flagArenaSpine, arr: elems}, nil
			}
			return Array(elems), nil
		default:
			p.arrDepth--
			return Value{}, p.errorf("expected ',' or ']' in array")
		}
	}
}

func (p *jsonParser) parseString() (string, error) {
	p.pos++ // consume opening quote
	start := p.pos
	// Fast path: no escapes.
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c == '"' {
			s := string(p.data[start:p.pos])
			p.pos++
			return s, nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
		p.pos++
	}
	// Slow path with escape handling into a heap scratch.
	buf, err := p.decodeStringTail(append([]byte(nil), p.data[start:p.pos]...))
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

// decodeStringTail appends the remainder of the current string —
// p.pos sits at the first escape (or closing quote) — to buf, decoding
// escapes, and returns the extended buffer. The caller chooses where
// the decoded bytes accumulate: a throwaway heap scratch (parseString)
// or the frame arena's byte buffer (parseStringIntoArena).
func (p *jsonParser) decodeStringTail(buf []byte) ([]byte, error) {
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return buf, nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return nil, p.errorf("unterminated escape")
			}
			esc := p.data[p.pos]
			p.pos++
			switch esc {
			case '"', '\\', '/':
				buf = append(buf, esc)
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := p.parseUnicodeEscape()
				if err != nil {
					return nil, err
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return nil, p.errorf("invalid escape '\\%c'", esc)
			}
		case c < 0x20:
			return nil, p.errorf("control character in string")
		default:
			buf = append(buf, c)
			p.pos++
		}
	}
	return nil, p.errorf("unterminated string")
}

// hex4 decodes four hex digits straight from bytes, avoiding the
// string conversion (and its allocation) strconv.ParseUint would force
// on every \u escape.
func hex4(b []byte) (uint32, bool) {
	if len(b) < 4 {
		return 0, false
	}
	var u uint32
	for i := 0; i < 4; i++ {
		c := b[i]
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, false
		}
		u = u<<4 | d
	}
	return u, true
}

func (p *jsonParser) parseUnicodeEscape() (rune, error) {
	if p.pos+4 > len(p.data) {
		return 0, p.errorf("truncated \\u escape")
	}
	u, ok := hex4(p.data[p.pos:])
	if !ok {
		return 0, p.errorf("invalid \\u escape")
	}
	p.pos += 4
	r := rune(u)
	if utf16.IsSurrogate(r) && p.pos+6 <= len(p.data) &&
		p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
		if u2, ok := hex4(p.data[p.pos+2:]); ok {
			if combined := utf16.DecodeRune(r, rune(u2)); combined != utf8.RuneError {
				p.pos += 6
				return combined, nil
			}
		}
	}
	return r, nil
}

func (p *jsonParser) parseNumber() (Value, error) {
	start := p.pos
	isFloat := false
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c >= '0' && c <= '9':
			p.pos++
		case c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-':
			isFloat = true
			p.pos++
		default:
			goto done
		}
	}
done:
	b := p.data[start:p.pos]
	if !isFloat {
		if i, ok := parseIntBytes(b); ok {
			return Int(i), nil
		}
		// Out-of-range integers fall back to double, like encoding/json.
	}
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return Value{}, p.errorf("invalid number %q", b)
	}
	return Double(f), nil
}

// parseIntBytes decodes a decimal int64 from raw digits without the
// string conversion strconv.ParseInt would force; integers are the most
// common number kind on the feed path. ok is false for malformed or
// out-of-range input (the caller falls back to the float path).
func parseIntBytes(b []byte) (int64, bool) {
	i := 0
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	// ≤ 19 digits cannot overflow uint64; larger magnitudes fall back.
	if i >= len(b) || len(b)-i > 19 {
		return 0, false
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n), true
	}
	if n > math.MaxInt64 {
		return 0, false
	}
	return int64(n), true
}

// AppendJSON appends the canonical JSON serialization of v to dst and
// returns the extended slice. Temporal and spatial kinds are encoded as
// tagged strings/arrays that the Datatype coercion layer knows how to
// read back: datetime → ISO-8601 string, duration → ISO-8601 duration
// string, point → [x,y], rectangle → [x1,y1,x2,y2], circle → [cx,cy,r].
func AppendJSON(dst []byte, v Value) []byte {
	switch v.kind {
	case KindMissing, KindNull:
		return append(dst, "null"...)
	case KindBoolean:
		if v.i != 0 {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case KindInt64:
		return strconv.AppendInt(dst, v.i, 10)
	case KindDouble:
		if math.IsInf(v.f, 0) || math.IsNaN(v.f) {
			return append(dst, "null"...)
		}
		return strconv.AppendFloat(dst, v.f, 'g', -1, 64)
	case KindString:
		return appendJSONString(dst, v.s)
	case KindDateTime:
		return appendJSONString(dst, FormatISODateTime(v.i))
	case KindDuration:
		return appendJSONString(dst, FormatISODuration(v.aux, v.i))
	case KindPoint:
		x, y := v.PointVal()
		dst = append(dst, '[')
		dst = strconv.AppendFloat(dst, x, 'g', -1, 64)
		dst = append(dst, ',')
		dst = strconv.AppendFloat(dst, y, 'g', -1, 64)
		return append(dst, ']')
	case KindRectangle:
		x1, y1, x2, y2 := v.RectVal()
		dst = append(dst, '[')
		for i, f := range [...]float64{x1, y1, x2, y2} {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
		}
		return append(dst, ']')
	case KindCircle:
		cx, cy, r := v.CircleVal()
		dst = append(dst, '[')
		for i, f := range [...]float64{cx, cy, r} {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
		}
		return append(dst, ']')
	case KindArray:
		dst = append(dst, '[')
		for i, e := range v.arr {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = AppendJSON(dst, e)
		}
		return append(dst, ']')
	case KindObject:
		dst = append(dst, '{')
		if v.obj != nil {
			for i := 0; i < v.obj.Len(); i++ {
				if i > 0 {
					dst = append(dst, ',')
				}
				dst = appendJSONString(dst, v.obj.Name(i))
				dst = append(dst, ':')
				dst = AppendJSON(dst, v.obj.At(i))
			}
		}
		return append(dst, '}')
	}
	return append(dst, "null"...)
}

// SerializeJSON returns the JSON encoding of v as a fresh byte slice.
func SerializeJSON(v Value) []byte { return AppendJSON(nil, v) }

func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			dst = append(dst, '\\', '"')
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20:
			dst = append(dst, fmt.Sprintf("\\u%04x", c)...)
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

const isoDateTimeLayout = "2006-01-02T15:04:05.000Z"

// FormatISODateTime renders epoch milliseconds as an ISO-8601 UTC
// timestamp string.
func FormatISODateTime(ms int64) string {
	return time.UnixMilli(ms).UTC().Format(isoDateTimeLayout)
}

// ParseISODateTime parses an ISO-8601 timestamp into epoch milliseconds.
// It accepts both millisecond and second precision.
func ParseISODateTime(s string) (int64, bool) {
	for _, layout := range [...]string{
		isoDateTimeLayout,
		"2006-01-02T15:04:05Z",
		"2006-01-02T15:04:05.000-07:00",
		"2006-01-02T15:04:05-07:00",
		"2006-01-02",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UnixMilli(), true
		}
	}
	return 0, false
}

// FormatISODuration renders a (months, millis) duration as an ISO-8601
// duration string, e.g. P2M, P1Y2M, PT4.250S, P2MT12H.
func FormatISODuration(months int32, millis int64) string {
	out := []byte{'P'}
	neg := months < 0 || millis < 0
	if neg {
		out = []byte{'-', 'P'}
		if months < 0 {
			months = -months
		}
		if millis < 0 {
			millis = -millis
		}
	}
	years := months / 12
	months %= 12
	if years > 0 {
		out = strconv.AppendInt(out, int64(years), 10)
		out = append(out, 'Y')
	}
	if months > 0 {
		out = strconv.AppendInt(out, int64(months), 10)
		out = append(out, 'M')
	}
	if millis > 0 {
		out = append(out, 'T')
		secs := millis / 1000
		frac := millis % 1000
		out = strconv.AppendInt(out, secs, 10)
		if frac > 0 {
			out = append(out, '.')
			out = append(out, fmt.Sprintf("%03d", frac)...)
		}
		out = append(out, 'S')
	}
	if len(out) == 1 || (neg && len(out) == 2) {
		out = append(out, 'T', '0', 'S')
	}
	return string(out)
}

// ParseISODuration parses a subset of ISO-8601 durations covering what
// the paper's queries use (PnYnMnDTnHnMn.nS). It returns the calendar
// months and the millisecond remainder.
func ParseISODuration(s string) (months int32, millis int64, ok bool) {
	if len(s) == 0 {
		return 0, 0, false
	}
	neg := false
	i := 0
	if s[i] == '-' {
		neg = true
		i++
	}
	if i >= len(s) || s[i] != 'P' {
		return 0, 0, false
	}
	i++
	inTime := false
	seen := false
	for i < len(s) {
		if s[i] == 'T' {
			inTime = true
			i++
			continue
		}
		start := i
		for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
			i++
		}
		if start == i || i >= len(s) {
			return 0, 0, false
		}
		num, err := strconv.ParseFloat(s[start:i], 64)
		if err != nil {
			return 0, 0, false
		}
		unit := s[i]
		i++
		seen = true
		switch {
		case !inTime && unit == 'Y':
			months += int32(num) * 12
		case !inTime && unit == 'M':
			months += int32(num)
		case !inTime && unit == 'W':
			millis += int64(num * 7 * 24 * 3600 * 1000)
		case !inTime && unit == 'D':
			millis += int64(num * 24 * 3600 * 1000)
		case inTime && unit == 'H':
			millis += int64(num * 3600 * 1000)
		case inTime && unit == 'M':
			millis += int64(num * 60 * 1000)
		case inTime && unit == 'S':
			millis += int64(num * 1000)
		default:
			return 0, 0, false
		}
	}
	if !seen {
		return 0, 0, false
	}
	if neg {
		months, millis = -months, -millis
	}
	return months, millis, true
}
