package adm

import (
	"hash/maphash"
	"math"
)

// kindRank maps each kind to its position in the cross-kind total order.
// Numerics share a rank so int64 and double interleave numerically,
// matching SQL++ comparison semantics.
var kindRank = [numKinds]int{
	KindMissing:   0,
	KindNull:      1,
	KindBoolean:   2,
	KindInt64:     3,
	KindDouble:    3,
	KindString:    4,
	KindDateTime:  5,
	KindDuration:  6,
	KindPoint:     7,
	KindRectangle: 8,
	KindCircle:    9,
	KindArray:     10,
	KindObject:    11,
}

// Compare imposes a total order over all ADM values: MISSING < NULL <
// booleans < numerics < strings < datetimes < durations < spatial types
// < arrays < objects. Within numerics, int64 and double compare by
// numeric value. Arrays compare lexicographically; objects compare by
// sorted field name/value pairs. The order is what the B-tree, the sort
// operator, and ORDER BY all use.
func Compare(a, b Value) int {
	ra, rb := kindRank[a.kind], kindRank[b.kind]
	if ra != rb {
		return cmpInt(ra, rb)
	}
	switch a.kind {
	case KindMissing, KindNull:
		return 0
	case KindBoolean:
		return cmpInt64(a.i, b.i)
	case KindInt64, KindDouble:
		if a.kind == KindInt64 && b.kind == KindInt64 {
			return cmpInt64(a.i, b.i)
		}
		af, _ := a.AsDouble()
		bf, _ := b.AsDouble()
		return cmpFloat(af, bf)
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	case KindDateTime:
		return cmpInt64(a.i, b.i)
	case KindDuration:
		// Order by an approximate absolute length: months as 30 days.
		am := int64(a.aux)*30*24*3600*1000 + a.i
		bm := int64(b.aux)*30*24*3600*1000 + b.i
		return cmpInt64(am, bm)
	case KindPoint, KindRectangle, KindCircle:
		return cmpGeo(a.geo, b.geo)
	case KindArray:
		n := min(len(a.arr), len(b.arr))
		for i := 0; i < n; i++ {
			if c := Compare(a.arr[i], b.arr[i]); c != 0 {
				return c
			}
		}
		return cmpInt(len(a.arr), len(b.arr))
	case KindObject:
		return compareObjects(a.obj, b.obj)
	}
	return 0
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports whether a sorts strictly before b.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

func compareObjects(a, b *Object) int {
	an, bn := 0, 0
	if a != nil {
		an = a.Len()
	}
	if b != nil {
		bn = b.Len()
	}
	if c := cmpInt(an, bn); c != 0 {
		return c
	}
	// Compare field-by-field in each object's own order; objects with
	// identical layout (the overwhelmingly common case in a dataset)
	// compare correctly and cheaply. Differing layouts still produce a
	// deterministic order.
	for i := 0; i < an; i++ {
		switch {
		case a.Name(i) < b.Name(i):
			return -1
		case a.Name(i) > b.Name(i):
			return 1
		}
		if c := Compare(a.At(i), b.At(i)); c != 0 {
			return c
		}
	}
	return 0
}

func cmpGeo(a, b *[4]float64) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	for i := 0; i < 4; i++ {
		if c := cmpFloat(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	// NaNs sort after everything, deterministically.
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	default:
		return -1
	}
}

var hashSeed = maphash.MakeSeed()

// Hash returns a 64-bit hash of the value consistent with Compare
// equality: Equal(a, b) implies Hash(a) == Hash(b). It backs the hash
// join tables and the M:N hash partitioner.
func Hash(v Value) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	hashInto(&h, v)
	return h.Sum64()
}

func hashInto(h *maphash.Hash, v Value) {
	switch v.kind {
	case KindMissing:
		h.WriteByte(0)
	case KindNull:
		h.WriteByte(1)
	case KindBoolean:
		h.WriteByte(2)
		h.WriteByte(byte(v.i))
	case KindInt64, KindDouble:
		// Numeric promotion: 3 and 3.0 must hash identically.
		h.WriteByte(3)
		f, _ := v.AsDouble()
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			writeUint64(h, uint64(int64(f)))
		} else {
			writeUint64(h, math.Float64bits(f))
		}
	case KindString:
		h.WriteByte(4)
		h.WriteString(v.s)
	case KindDateTime:
		h.WriteByte(5)
		writeUint64(h, uint64(v.i))
	case KindDuration:
		h.WriteByte(6)
		writeUint64(h, uint64(v.aux))
		writeUint64(h, uint64(v.i))
	case KindPoint, KindRectangle, KindCircle:
		h.WriteByte(7 + byte(v.kind-KindPoint))
		if v.geo != nil {
			for _, f := range v.geo {
				writeUint64(h, math.Float64bits(f))
			}
		}
	case KindArray:
		h.WriteByte(10)
		for _, e := range v.arr {
			hashInto(h, e)
		}
	case KindObject:
		h.WriteByte(11)
		if v.obj != nil {
			for i := 0; i < v.obj.Len(); i++ {
				h.WriteString(v.obj.Name(i))
				hashInto(h, v.obj.At(i))
			}
		}
	}
}

func writeUint64(h *maphash.Hash, u uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
