package adm

import (
	"math/rand"
	"strings"
	"testing"
)

func mustParse(t *testing.T, s string) Value {
	t.Helper()
	v, err := ParseJSON([]byte(s))
	if err != nil {
		t.Fatalf("ParseJSON(%q): %v", s, err)
	}
	return v
}

func TestParseJSONScalars(t *testing.T) {
	if v := mustParse(t, `42`); v.Kind() != KindInt64 || v.IntVal() != 42 {
		t.Errorf("int parse: %v", v)
	}
	if v := mustParse(t, `-7`); v.IntVal() != -7 {
		t.Errorf("negative int parse: %v", v)
	}
	if v := mustParse(t, `3.25`); v.Kind() != KindDouble || v.DoubleVal() != 3.25 {
		t.Errorf("double parse: %v", v)
	}
	if v := mustParse(t, `1e3`); v.Kind() != KindDouble || v.DoubleVal() != 1000 {
		t.Errorf("exponent parse: %v", v)
	}
	if v := mustParse(t, `true`); !v.BoolVal() {
		t.Errorf("true parse: %v", v)
	}
	if v := mustParse(t, `false`); v.Kind() != KindBoolean || v.BoolVal() {
		t.Errorf("false parse: %v", v)
	}
	if v := mustParse(t, `null`); !v.IsNull() {
		t.Errorf("null parse: %v", v)
	}
	if v := mustParse(t, `"hello"`); v.StringVal() != "hello" {
		t.Errorf("string parse: %v", v)
	}
	// Huge integers overflow into double like encoding/json.
	if v := mustParse(t, `99999999999999999999`); v.Kind() != KindDouble {
		t.Errorf("overflow int should become double: %v", v)
	}
}

func TestParseJSONStringEscapes(t *testing.T) {
	v := mustParse(t, `"a\"b\\c\nd\teéA"`)
	want := "a\"b\\c\nd\teéA"
	if v.StringVal() != want {
		t.Errorf("escapes = %q, want %q", v.StringVal(), want)
	}
	// Surrogate pair (musical G clef, U+1D11E).
	v = mustParse(t, `"𝄞"`)
	if v.StringVal() != "\U0001D11E" {
		t.Errorf("surrogate pair = %q", v.StringVal())
	}
}

func TestParseJSONStructures(t *testing.T) {
	v := mustParse(t, `{"id": 1, "tags": ["a", "b"], "geo": {"lat": 1.5}}`)
	if v.Field("id").IntVal() != 1 {
		t.Error("id field")
	}
	tags := v.Field("tags").ArrayVal()
	if len(tags) != 2 || tags[1].StringVal() != "b" {
		t.Error("tags array")
	}
	if v.Field("geo").Field("lat").DoubleVal() != 1.5 {
		t.Error("nested object")
	}
	if v := mustParse(t, `[]`); v.Kind() != KindArray || len(v.ArrayVal()) != 0 {
		t.Error("empty array")
	}
	if v := mustParse(t, `{}`); v.Kind() != KindObject || v.ObjectVal().Len() != 0 {
		t.Error("empty object")
	}
	if v := mustParse(t, ` { "a" : [ 1 , 2 ] } `); v.Field("a").Index(1).IntVal() != 2 {
		t.Error("whitespace tolerance")
	}
}

func TestParseJSONErrors(t *testing.T) {
	bad := []string{
		``, `{`, `}`, `[1,`, `{"a":}`, `{"a" 1}`, `"unterminated`,
		`tru`, `nul`, `{"a":1,}x`, `[1] trailing`, `"bad\escape"`,
		"\"ctl\x01char\"", `{1: 2}`, `--5`,
	}
	for _, s := range bad {
		if _, err := ParseJSON([]byte(s)); err == nil {
			t.Errorf("ParseJSON(%q) should fail", s)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	src := `{"id":7,"text":"let there be light","ok":true,"score":1.25,"tags":["x","y"],"nested":{"n":null}}`
	v := mustParse(t, src)
	out := string(SerializeJSON(v))
	v2 := mustParse(t, out)
	if Compare(v, v2) != 0 {
		t.Errorf("round trip changed value:\n%s\n%s", v, v2)
	}
}

func TestSerializeTypedKinds(t *testing.T) {
	dt := DateTimeMillis(1_566_000_000_000)
	if got := string(SerializeJSON(dt)); !strings.HasPrefix(got, `"2019-08-1`) {
		t.Errorf("datetime serialization = %s", got)
	}
	if got := string(SerializeJSON(Point(1.5, -2))); got != "[1.5,-2]" {
		t.Errorf("point serialization = %s", got)
	}
	if got := string(SerializeJSON(Circle(0, 0, 3))); got != "[0,0,3]" {
		t.Errorf("circle serialization = %s", got)
	}
	if got := string(SerializeJSON(Duration(2, 0))); got != `"P2M"` {
		t.Errorf("duration serialization = %s", got)
	}
	if got := string(SerializeJSON(Missing())); got != "null" {
		t.Errorf("missing serializes as null, got %s", got)
	}
}

func TestSerializeEscapes(t *testing.T) {
	v := String("a\"b\\c\nd\x01")
	got := string(SerializeJSON(v))
	want := `"a\"b\\c\nd\u0001"`
	if got != want {
		t.Errorf("escaped = %s, want %s", got, want)
	}
	back := mustParse(t, got)
	if back.StringVal() != v.StringVal() {
		t.Error("escape round trip failed")
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		v := randomJSONValue(r, 3)
		data := SerializeJSON(v)
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("round trip parse failed for %s: %v", data, err)
		}
		if Compare(v, back) != 0 {
			t.Fatalf("round trip changed %v -> %v", v, back)
		}
	}
}

// randomJSONValue only generates kinds whose JSON encoding parses back to
// the same kind (no datetimes/points, which need datatype coercion).
func randomJSONValue(r *rand.Rand, depth int) Value {
	k := r.Intn(7)
	if depth <= 0 && k >= 5 {
		k = r.Intn(5)
	}
	switch k {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63n(1e9) - 5e8)
	case 3:
		return Double(float64(r.Intn(1000)) + 0.5) // exactly representable
	case 4:
		return String(randomString(r))
	case 5:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomJSONValue(r, depth-1)
		}
		return Array(elems)
	default:
		n := r.Intn(4)
		o := NewObject(n)
		for i := 0; i < n; i++ {
			o.Set(randomString(r)+string(rune('0'+i)), randomJSONValue(r, depth-1))
		}
		return ObjectValue(o)
	}
}

func TestISODateTimeRoundTrip(t *testing.T) {
	ms := int64(1_566_550_245_250)
	s := FormatISODateTime(ms)
	back, ok := ParseISODateTime(s)
	if !ok || back != ms {
		t.Errorf("datetime roundtrip: %s -> %d (want %d)", s, back, ms)
	}
	if _, ok := ParseISODateTime("not a date"); ok {
		t.Error("bogus datetime accepted")
	}
	if got, ok := ParseISODateTime("2019-08-23"); !ok || got%86_400_000 != 0 {
		t.Errorf("date-only parse = %d, %v", got, ok)
	}
}

func TestISODurationRoundTrip(t *testing.T) {
	cases := []struct {
		months int32
		millis int64
	}{
		{2, 0}, {14, 0}, {0, 1500}, {3, 7_200_000}, {0, 250}, {0, 0},
	}
	for _, tc := range cases {
		s := FormatISODuration(tc.months, tc.millis)
		months, millis, ok := ParseISODuration(s)
		if !ok || months != tc.months || millis != tc.millis {
			t.Errorf("duration roundtrip %q: got %d,%d,%v want %d,%d",
				s, months, millis, ok, tc.months, tc.millis)
		}
	}
	if _, _, ok := ParseISODuration("2M"); ok {
		t.Error("duration without P accepted")
	}
	if _, _, ok := ParseISODuration("P"); ok {
		t.Error("empty duration accepted")
	}
	if m, ms, ok := ParseISODuration("P1Y2MT1H30M"); !ok || m != 14 || ms != 5_400_000 {
		t.Errorf("compound duration parse: %d %d %v", m, ms, ok)
	}
	if m, ms, ok := ParseISODuration("-P1M"); !ok || m != -1 || ms != 0 {
		t.Errorf("negative duration parse: %d %d %v", m, ms, ok)
	}
}

func BenchmarkParseJSONTweet(b *testing.B) {
	tweet := []byte(`{"id":123456789,"text":"some tweet text with a few words to make it realistic enough for parsing benchmarks","country":"US","user":{"screen_name":"user_name_1","name":"User Name"},"latitude":33.64,"longitude":-117.84,"created_at":"2019-08-23T12:30:45.000Z","lang":"en","retweet_count":17}`)
	b.SetBytes(int64(len(tweet)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseJSON(tweet); err != nil {
			b.Fatal(err)
		}
	}
}
