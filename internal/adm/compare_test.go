package adm

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareCrossKindOrder(t *testing.T) {
	// The documented total order, one representative per kind.
	ordered := []Value{
		Missing(), Null(), Bool(false), Int(1), String("a"),
		DateTimeMillis(0), Duration(0, 1), Point(0, 0),
		Rectangle(0, 0, 1, 1), Circle(0, 0, 1),
		Array(nil), ObjectValue(NewObject(0)),
	}
	for i := range ordered {
		for j := range ordered {
			c := Compare(ordered[i], ordered[j])
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], c)
			case i == j && c != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], c)
			}
		}
	}
}

func TestCompareNumericPromotion(t *testing.T) {
	if Compare(Int(3), Double(3.0)) != 0 {
		t.Error("3 and 3.0 should compare equal")
	}
	if Compare(Int(3), Double(3.5)) >= 0 {
		t.Error("3 < 3.5")
	}
	if Compare(Double(2.5), Int(2)) <= 0 {
		t.Error("2.5 > 2")
	}
}

func TestCompareNaNDeterministic(t *testing.T) {
	nan := Double(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN must equal itself for ordering purposes")
	}
	if Compare(nan, Double(1e308)) <= 0 {
		t.Error("NaN sorts after numbers")
	}
	if Compare(Double(-1), nan) >= 0 {
		t.Error("numbers sort before NaN")
	}
}

func TestCompareStringsArraysObjects(t *testing.T) {
	if Compare(String("abc"), String("abd")) >= 0 {
		t.Error("string order failed")
	}
	a := Array([]Value{Int(1), Int(2)})
	b := Array([]Value{Int(1), Int(3)})
	c := Array([]Value{Int(1)})
	if Compare(a, b) >= 0 || Compare(c, a) >= 0 {
		t.Error("array order failed")
	}
	o1 := ObjectValue(ObjectFromPairs("a", Int(1)))
	o2 := ObjectValue(ObjectFromPairs("a", Int(2)))
	o3 := ObjectValue(ObjectFromPairs("a", Int(1), "b", Int(0)))
	if Compare(o1, o2) >= 0 {
		t.Error("object value order failed")
	}
	if Compare(o1, o3) >= 0 {
		t.Error("shorter object sorts first")
	}
	if Compare(o1, ObjectValue(ObjectFromPairs("a", Int(1)))) != 0 {
		t.Error("identical objects must compare equal")
	}
}

func TestEqualAndLess(t *testing.T) {
	if !Equal(String("x"), String("x")) || Equal(Int(1), Int(2)) {
		t.Error("Equal failed")
	}
	if !Less(Int(1), Int(2)) || Less(Int(2), Int(1)) {
		t.Error("Less failed")
	}
}

// randomValue builds an arbitrary ADM value of bounded depth for
// property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(13)
	if depth <= 0 && (k == 11 || k == 12) {
		k = r.Intn(11)
	}
	switch k {
	case 0:
		return Missing()
	case 1:
		return Null()
	case 2:
		return Bool(r.Intn(2) == 0)
	case 3:
		return Int(r.Int63n(1000) - 500)
	case 4:
		return Double(r.NormFloat64() * 100)
	case 5:
		return String(randomString(r))
	case 6:
		return DateTimeMillis(r.Int63n(1e12))
	case 7:
		return Duration(int32(r.Intn(24)), r.Int63n(1e6))
	case 8:
		return Point(r.Float64()*100, r.Float64()*100)
	case 9:
		return Rectangle(r.Float64()*10, r.Float64()*10, r.Float64()*10, r.Float64()*10)
	case 10:
		return Circle(r.Float64()*10, r.Float64()*10, r.Float64()*5)
	case 11:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return Array(elems)
	default:
		n := r.Intn(4)
		o := NewObject(n)
		for i := 0; i < n; i++ {
			o.Set(randomString(r), randomValue(r, depth-1))
		}
		return ObjectValue(o)
	}
}

func randomString(r *rand.Rand) string {
	const alphabet = "abcdefgh"
	n := r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

func TestCompareIsReflexiveAndAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := randomValue(r, 3)
		b := randomValue(r, 3)
		if Compare(a, a) != 0 {
			t.Fatalf("Compare(%v, a) != 0", a)
		}
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v vs %v", a, b)
		}
	}
}

func TestCompareIsTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		vals := []Value{randomValue(r, 2), randomValue(r, 2), randomValue(r, 2)}
		sort.Slice(vals, func(i, j int) bool { return Less(vals[i], vals[j]) })
		if Compare(vals[0], vals[2]) > 0 {
			t.Fatalf("transitivity violated: %v .. %v", vals[0], vals[2])
		}
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		a := randomValue(r, 3)
		b := a.Clone()
		if Hash(a) != Hash(b) {
			t.Fatalf("clone hash differs for %v", a)
		}
	}
	// Cross-type numeric equality hashes identically.
	if Hash(Int(42)) != Hash(Double(42.0)) {
		t.Error("42 and 42.0 must hash identically")
	}
}

func TestHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[Hash(Int(int64(i)))] = true
	}
	if len(seen) < 990 {
		t.Errorf("int hash collides too much: %d distinct of 1000", len(seen))
	}
}

func TestCompareQuickTotalOrderOnInts(t *testing.T) {
	f := func(a, b int64) bool {
		c := Compare(Int(a), Int(b))
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareQuickStringsMatchNative(t *testing.T) {
	f := func(a, b string) bool {
		c := Compare(String(a), String(b))
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
