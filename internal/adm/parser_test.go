package adm

import (
	"fmt"
	"strings"
	"testing"
	"unsafe"
)

// TestParserMatchesParseJSON: the interning parser must produce values
// identical to the stateless ParseJSON across representative documents,
// including repeat parses that exercise warmed hints and intern table.
func TestParserMatchesParseJSON(t *testing.T) {
	docs := []string{
		`{}`,
		`[]`,
		`null`,
		`42`,
		`-9223372036854775808`,
		`9223372036854775807`,
		`18446744073709551617`,
		`3.5e-2`,
		`"plain"`,
		`"esc\"aped\nkey\u0041\ud83d\ude00"`,
		`{"a":1,"b":[1,2,{"c":null}],"esc\"key":true}`,
		string(tweetJSON),
		`{"deep":{"deep":{"deep":{"deep":{"x":1}}}}}`,
	}
	p := NewParser()
	for round := 0; round < 3; round++ {
		for _, doc := range docs {
			want, wantErr := ParseJSON([]byte(doc))
			got, gotErr := p.Parse([]byte(doc))
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d %q: err mismatch %v vs %v", round, doc, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if Compare(got, want) != 0 || got.String() != want.String() {
				t.Fatalf("round %d %q:\n  parser: %s\n  plain:  %s", round, doc, got, want)
			}
		}
	}
}

// TestParserErrors: malformed inputs must fail identically through the
// interning parser.
func TestParserErrors(t *testing.T) {
	bad := []string{``, `{`, `{"a"`, `{"a":}`, `[1,`, `"unterminated`, `{"a":1}x`, `tru`, `--1`}
	p := NewParser()
	for _, doc := range bad {
		if _, err := p.Parse([]byte(doc)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", doc)
		}
	}
}

// TestParserInternsFieldNames: two records sharing field names must end
// up with the same backing string, not two allocations.
func TestParserInternsFieldNames(t *testing.T) {
	p := NewParser()
	a, err := p.Parse([]byte(`{"field_name":1}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Parse([]byte(`{"field_name":2}`))
	if err != nil {
		t.Fatal(err)
	}
	na, nb := a.ObjectVal().Name(0), b.ObjectVal().Name(0)
	if unsafe.StringData(na) != unsafe.StringData(nb) {
		t.Error("field names of consecutive records are distinct allocations; want interned")
	}
	// Escaped keys intern too (via the slow path).
	c, _ := p.Parse([]byte(`{"field\u005fname":3}`))
	if nc := c.ObjectVal().Name(0); nc != "field_name" || unsafe.StringData(nc) != unsafe.StringData(na) {
		t.Errorf("escaped key %q not interned with plain form", c.ObjectVal().Name(0))
	}
}

// TestParserInternBound: the intern table must stop growing at its
// bound while parses keep succeeding.
func TestParserInternBound(t *testing.T) {
	p := NewParser()
	for i := 0; i < maxInternedNames+100; i++ {
		doc := fmt.Sprintf(`{"k%d":1}`, i)
		if _, err := p.Parse([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	if len(p.intern) > maxInternedNames {
		t.Fatalf("intern table grew to %d, bound is %d", len(p.intern), maxInternedNames)
	}

	// Oversized field names must never be retained: an untrusted feed
	// could otherwise pin megabytes per key for the parser's lifetime.
	p2 := NewParser()
	huge := strings.Repeat("k", maxInternedNameLen+1)
	v, err := p2.Parse([]byte(`{"` + huge + `":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if v.ObjectVal().Name(0) != huge {
		t.Fatal("oversized key parsed wrong")
	}
	if _, ok := p2.intern[huge]; ok {
		t.Fatalf("intern table retained a %d-byte key; limit is %d", len(huge), maxInternedNameLen)
	}
}

// TestParseInto: the spine-append forms must extend the caller's slice,
// with or without a byte arena.
func TestParseInto(t *testing.T) {
	p := NewParser()
	spine := make([]Value, 0, 4)
	var err error
	spine, err = p.ParseInto([]byte(`{"id":1}`), spine, nil)
	if err != nil {
		t.Fatal(err)
	}
	spine, err = ParseJSONInto([]byte(`{"id":2}`), spine, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(64)
	spine, err = p.ParseInto([]byte(`{"id":3}`), spine, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(spine) != 3 {
		t.Fatalf("spine has %d values, want 3", len(spine))
	}
	for i, want := range []int64{1, 2, 3} {
		if spine[i].Field("id").IntVal() != want {
			t.Fatalf("spine contents wrong: %v", spine)
		}
	}
	// Errors leave the spine unchanged.
	if spine, err = p.ParseInto([]byte(`{bad`), spine, nil); err == nil || len(spine) != 3 {
		t.Fatalf("ParseInto on bad input: err=%v len=%d", err, len(spine))
	}
}

// TestParserAllocsTweet enforces the allocation budget on the hot path:
// parsing a warmed tweet-shaped record must stay within a fixed number
// of allocations (interned names, pre-sized objects, no per-number
// string conversions). The stateless ParseJSON needed ~32.
func TestParserAllocsTweet(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting in -short")
	}
	p := NewParser()
	if _, err := p.Parse(tweetJSON); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Parse(tweetJSON); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 20
	if allocs > budget {
		t.Errorf("Parse(tweet) = %.1f allocs/op, budget %d", allocs, budget)
	}
}
