package adm

import "unsafe"

// Arena is a frame-scoped allocation region for parsed record payloads:
// string bytes, field-name bytes, Object structs, and object field
// spines all come out of a handful of growable slabs instead of
// individual heap allocations. Parsing a record into an Arena therefore
// costs O(1) allocations amortized over many records, and recycling is
// a single Reset instead of garbage-collecting one small object per
// string.
//
// The trade is a lifetime contract (see docs/ARCHITECTURE.md and the
// hyracks package comment for the normative rules):
//
//   - Every value parsed into an Arena references the arena's memory.
//     The values are valid only while the arena is live and un-Reset.
//   - Reset invalidates every value previously parsed into the arena;
//     reading one afterwards observes whatever bytes the next frame
//     wrote. A consumer that retains a value past the arena's reset
//     must copy it out first with Value.Materialize.
//   - Alternatively the consumer may simply retain the values without
//     resetting the arena (the storage writer does this): the values
//     keep the slabs alive and the garbage collector reclaims them
//     when the last value dies.
//
// An Arena is not safe for concurrent use. In the feed pipeline each
// Arena is owned by exactly one hyracks.Frame at a time, and frame
// ownership transfer (Push) carries the arena with it.
type Arena struct {
	buf   []byte   // string / raw-record byte storage
	objs  []Object // Object struct slab
	vals  []Value  // object field-value spine slab
	names []string // object field-name spine slab
}

// Slab sizing: slabs start small and double each time one fills, up to
// a cap, so an arena backing a frame of tiny records does not commit
// kilobytes it will never touch (arenas adopted by storage are not
// recycled, so over-allocation would be retained, not pooled). When a
// slab fills mid-frame a fresh one is started and the full one stays
// alive through the values that reference it (Reset only reclaims the
// current slab).
const (
	minSlabSize = 64
	maxSlabSize = 2048
)

// NewArena returns an arena whose byte buffer starts with the given
// capacity. Slabs for objects and spines are created on first use.
func NewArena(bytesCap int) *Arena {
	if bytesCap < 0 {
		bytesCap = 0
	}
	return &Arena{buf: make([]byte, 0, bytesCap)}
}

// Len reports the bytes currently stored in the byte buffer.
func (a *Arena) Len() int { return len(a.buf) }

// Cap reports the byte buffer's capacity.
func (a *Arena) Cap() int { return cap(a.buf) }

// Reset forgets the arena's contents so it can back a new frame. Every
// value previously parsed into the arena becomes invalid: its bytes
// will be overwritten by the next records. The pointer-bearing slabs
// are cleared so a pooled arena does not pin dead payloads.
func (a *Arena) Reset() {
	a.buf = a.buf[:0]
	clear(a.objs[:cap(a.objs)])
	a.objs = a.objs[:0]
	clear(a.vals[:cap(a.vals)])
	a.vals = a.vals[:0]
	clear(a.names[:cap(a.names)])
	a.names = a.names[:0]
}

// AppendBytes copies b into the arena and returns the arena-owned copy.
// The view is valid until Reset. Adapters use this to stage volatile
// read-buffer lines (raw-lane frames) without a per-line allocation.
func (a *Arena) AppendBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	n := len(a.buf)
	a.buf = append(a.buf, b...)
	return a.buf[n:len(a.buf):len(a.buf)]
}

// appendView copies b into the byte buffer and returns a string view of
// the arena-owned copy without allocating a string header payload. The
// view aliases arena memory — hence the Reset contract above.
func (a *Arena) appendView(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	n := len(a.buf)
	a.buf = append(a.buf, b...)
	return unsafe.String(&a.buf[n], len(b))
}

// viewFrom returns a string view of the bytes appended to the buffer
// since mark (a previous Len result). The unescape path uses it to turn
// in-place escape decoding into an arena-backed string.
func (a *Arena) viewFrom(mark int) string {
	if len(a.buf) == mark {
		return ""
	}
	return unsafe.String(&a.buf[mark], len(a.buf)-mark)
}

// stringValue copies b into the arena and returns a string Value whose
// payload references arena memory, flagged so Materialize knows to copy
// it out.
func (a *Arena) stringValue(b []byte) Value {
	if len(b) == 0 {
		return String("")
	}
	return Value{kind: KindString, flags: flagArena, s: a.appendView(b)}
}

// newObject allocates an Object from the slab with room for hint fields
// carved out of the spine slabs. The object is flagged arena-backed so
// Materialize rebuilds it on copy-out.
func (a *Arena) newObject(hint int) *Object {
	if hint < 1 {
		hint = 1
	}
	if len(a.objs) == cap(a.objs) {
		// Slab full: start a fresh, larger one. The full slab stays
		// reachable through the *Object pointers already handed out.
		a.objs = make([]Object, 0, nextSlabSize(cap(a.objs)))
	}
	a.objs = a.objs[:len(a.objs)+1]
	o := &a.objs[len(a.objs)-1]
	*o = Object{
		names:  a.nameSpan(hint),
		values: a.valueSpan(hint),
		arena:  true,
	}
	return o
}

// nextSlabSize doubles a slab's capacity between minSlabSize and
// maxSlabSize.
func nextSlabSize(prev int) int {
	c := prev * 2
	if c < minSlabSize {
		c = minSlabSize
	}
	if c > maxSlabSize {
		c = maxSlabSize
	}
	return c
}

// valueSpan reserves a length-0, capacity-n region of the value slab.
// Appending past n falls back to a heap reallocation (the size hints
// make that rare), which is correct just slower.
func (a *Arena) valueSpan(n int) []Value {
	if cap(a.vals)-len(a.vals) < n {
		c := nextSlabSize(cap(a.vals))
		if c < n {
			c = n
		}
		a.vals = make([]Value, 0, c)
	}
	m := len(a.vals)
	a.vals = a.vals[:m+n]
	return a.vals[m : m : m+n]
}

// nameSpan is valueSpan for the field-name slab.
func (a *Arena) nameSpan(n int) []string {
	if cap(a.names)-len(a.names) < n {
		c := nextSlabSize(cap(a.names))
		if c < n {
			c = n
		}
		a.names = make([]string, 0, c)
	}
	m := len(a.names)
	a.names = a.names[:m+n]
	return a.names[m : m : m+n]
}
