package adm

import (
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindMissing: "missing", KindNull: "null", KindBoolean: "boolean",
		KindInt64: "int64", KindDouble: "double", KindString: "string",
		KindDateTime: "datetime", KindDuration: "duration", KindPoint: "point",
		KindRectangle: "rectangle", KindCircle: "circle",
		KindArray: "array", KindObject: "object",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(200).String() != "invalid" {
		t.Errorf("out-of-range kind should stringify as invalid")
	}
}

func TestKindFromName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Kind
	}{
		{"int64", KindInt64}, {"int", KindInt64}, {"bigint", KindInt64},
		{"double", KindDouble}, {"string", KindString}, {"bool", KindBoolean},
		{"datetime", KindDateTime}, {"point", KindPoint}, {"rectangle", KindRectangle},
		{"circle", KindCircle}, {"duration", KindDuration},
	} {
		got, ok := KindFromName(tc.name)
		if !ok || got != tc.want {
			t.Errorf("KindFromName(%q) = %v,%v want %v", tc.name, got, ok, tc.want)
		}
	}
	if _, ok := KindFromName("nosuch"); ok {
		t.Error("KindFromName should reject unknown names")
	}
}

func TestScalarConstructorsAndAccessors(t *testing.T) {
	if !Bool(true).BoolVal() || Bool(false).BoolVal() {
		t.Error("boolean round trip failed")
	}
	if Int(42).IntVal() != 42 {
		t.Error("int round trip failed")
	}
	if Double(2.5).DoubleVal() != 2.5 {
		t.Error("double round trip failed")
	}
	if String("hi").StringVal() != "hi" {
		t.Error("string round trip failed")
	}
	if !Missing().IsMissing() || !Missing().IsUnknown() {
		t.Error("missing identity failed")
	}
	if !Null().IsNull() || !Null().IsUnknown() {
		t.Error("null identity failed")
	}
	if Int(1).IsUnknown() {
		t.Error("int should not be unknown")
	}
}

func TestNumericPromotion(t *testing.T) {
	if f, ok := Int(3).AsDouble(); !ok || f != 3.0 {
		t.Errorf("Int(3).AsDouble() = %v,%v", f, ok)
	}
	if i, ok := Double(3.9).AsInt(); !ok || i != 3 {
		t.Errorf("Double(3.9).AsInt() = %v,%v", i, ok)
	}
	if _, ok := String("x").AsDouble(); ok {
		t.Error("string should not promote to double")
	}
}

func TestDateTime(t *testing.T) {
	at := time.Date(2019, 8, 23, 12, 30, 45, 250e6, time.UTC)
	v := DateTime(at)
	if v.Kind() != KindDateTime {
		t.Fatalf("kind = %v", v.Kind())
	}
	if !v.Time().Equal(at) {
		t.Errorf("Time() = %v, want %v", v.Time(), at)
	}
	if v.DateTimeVal() != at.UnixMilli() {
		t.Errorf("millis mismatch")
	}
}

func TestDurationAndAddDuration(t *testing.T) {
	d := Duration(2, 500)
	months, millis := d.DurationVal()
	if months != 2 || millis != 500 {
		t.Fatalf("DurationVal = %d,%d", months, millis)
	}
	base := DateTime(time.Date(2019, 1, 31, 0, 0, 0, 0, time.UTC))
	sum := AddDuration(base, Duration(1, 0))
	// Go's AddDate normalizes Jan 31 + 1 month to Mar 3.
	want := time.Date(2019, 1, 31, 0, 0, 0, 0, time.UTC).AddDate(0, 1, 0)
	if !sum.Time().Equal(want) {
		t.Errorf("AddDuration month = %v, want %v", sum.Time(), want)
	}
	sum2 := AddDuration(base, Duration(0, 1500))
	if sum2.DateTimeVal() != base.DateTimeVal()+1500 {
		t.Errorf("AddDuration millis failed")
	}
	if AddDuration(Int(1), d).Kind() != KindNull {
		t.Error("AddDuration on non-datetime should yield null")
	}
}

func TestSpatialAccessors(t *testing.T) {
	p := Point(1, 2)
	if x, y := p.PointVal(); x != 1 || y != 2 {
		t.Errorf("PointVal = %v,%v", x, y)
	}
	r := Rectangle(3, 4, 1, 2) // deliberately swapped corners
	x1, y1, x2, y2 := r.RectVal()
	if x1 != 1 || y1 != 2 || x2 != 3 || y2 != 4 {
		t.Errorf("Rectangle should normalize corners, got %v %v %v %v", x1, y1, x2, y2)
	}
	c := Circle(5, 6, 7)
	if cx, cy, rad := c.CircleVal(); cx != 5 || cy != 6 || rad != 7 {
		t.Errorf("CircleVal = %v %v %v", cx, cy, rad)
	}
}

func TestIndexAndField(t *testing.T) {
	arr := Array([]Value{Int(10), Int(20)})
	if arr.Index(0).IntVal() != 10 || arr.Index(1).IntVal() != 20 {
		t.Error("array index failed")
	}
	if !arr.Index(5).IsMissing() || !arr.Index(-1).IsMissing() {
		t.Error("out-of-range index should be missing")
	}
	if !Int(1).Index(0).IsMissing() {
		t.Error("index on non-array should be missing")
	}

	obj := ObjectValue(ObjectFromPairs("a", Int(1), "b", String("x")))
	if obj.Field("a").IntVal() != 1 {
		t.Error("field access failed")
	}
	if !obj.Field("zzz").IsMissing() {
		t.Error("absent field should be missing")
	}
	if !String("s").Field("a").IsMissing() {
		t.Error("field on non-object should be missing")
	}
}

func TestNestedPathAccess(t *testing.T) {
	user := ObjectFromPairs("screen_name", String("Ali_ce!"))
	tweet := ObjectValue(ObjectFromPairs("id", Int(7), "user", ObjectValue(user)))
	if got := tweet.Field("user").Field("screen_name").StringVal(); got != "Ali_ce!" {
		t.Errorf("nested access = %q", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	inner := ObjectFromPairs("k", Int(1))
	orig := ObjectValue(ObjectFromPairs("nested", ObjectValue(inner), "arr", Array([]Value{Int(5)})))
	cp := orig.Clone()
	cp.ObjectVal().Get("nested")
	nested, _ := cp.ObjectVal().Get("nested")
	nested.ObjectVal().Set("k", Int(99))
	if inner.GetOr("k", Missing()).IntVal() != 1 {
		t.Error("Clone shared nested object")
	}

	pt := Point(1, 2)
	cpt := pt.Clone()
	if &pt.geo[0] == &cpt.geo[0] {
		t.Error("Clone shared geometry payload")
	}
}

func TestValueStringRendering(t *testing.T) {
	v := ObjectValue(ObjectFromPairs(
		"i", Int(1),
		"d", Double(1.5),
		"s", String("a\"b"),
		"p", Point(1, 2),
		"n", Null(),
		"arr", Array([]Value{Bool(true), Missing()}),
	))
	got := v.String()
	want := `{"i": 1, "d": 1.5, "s": "a\"b", "p": point(1.0, 2.0), "n": null, "arr": [true, missing]}`
	if got != want {
		t.Errorf("String() = %s\nwant      %s", got, want)
	}
}

func TestMemSizeGrowsWithPayload(t *testing.T) {
	small := ObjectValue(ObjectFromPairs("a", Int(1)))
	big := ObjectValue(ObjectFromPairs("a", String(string(make([]byte, 10_000)))))
	if small.MemSize() >= big.MemSize() {
		t.Errorf("MemSize: small=%d big=%d", small.MemSize(), big.MemSize())
	}
}

func TestObjectSetReplaceDelete(t *testing.T) {
	o := NewObject(2)
	o.Set("x", Int(1))
	o.Set("y", Int(2))
	o.Set("x", Int(3)) // replace keeps position
	if o.Len() != 2 || o.Name(0) != "x" || o.At(0).IntVal() != 3 {
		t.Errorf("replace failed: %v", ObjectValue(o))
	}
	if !o.Delete("x") || o.Delete("x") {
		t.Error("delete semantics failed")
	}
	if o.Len() != 1 || o.Name(0) != "y" {
		t.Error("delete should compact fields")
	}
}

func TestObjectLargeUsesIndex(t *testing.T) {
	o := NewObject(0)
	for i := 0; i < 40; i++ {
		o.Set(string(rune('a'+i)), Int(int64(i)))
	}
	if o.index == nil {
		t.Fatal("large object should have built its index")
	}
	for i := 0; i < 40; i++ {
		v, ok := o.Get(string(rune('a' + i)))
		if !ok || v.IntVal() != int64(i) {
			t.Fatalf("lookup %d failed", i)
		}
	}
	// Delete must keep the index coherent.
	o.Delete("a")
	if _, ok := o.Get("a"); ok {
		t.Error("deleted field still visible")
	}
	if v, ok := o.Get("b"); !ok || v.IntVal() != 1 {
		t.Error("index stale after delete")
	}
}

func TestCopyShallowSharesValues(t *testing.T) {
	o := ObjectFromPairs("a", Int(1))
	c := o.CopyShallow()
	c.Set("b", Int(2))
	if _, ok := o.Get("b"); ok {
		t.Error("CopyShallow leaked new field into original")
	}
	if v, _ := c.Get("a"); v.IntVal() != 1 {
		t.Error("CopyShallow lost existing field")
	}
}

func TestObjectFromPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on odd pair count")
		}
	}()
	ObjectFromPairs("only-name")
}
