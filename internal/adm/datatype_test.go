package adm

import (
	"strings"
	"testing"
)

func tweetType(t *testing.T) *Datatype {
	t.Helper()
	dt, err := NewDatatype("TweetType", true, []FieldDef{
		{Name: "id", Kind: KindInt64},
		{Name: "text", Kind: KindString},
		{Name: "created_at", Kind: KindDateTime, Optional: true},
		{Name: "location", Kind: KindPoint, Optional: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func TestDatatypeValidateOpen(t *testing.T) {
	dt := tweetType(t)
	rec := mustParse(t, `{"id": 5, "text": "hi", "extra": "allowed", "created_at": "2019-08-23T00:00:00Z"}`)
	out, err := dt.Validate(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Field("created_at").Kind() != KindDateTime {
		t.Errorf("created_at not coerced: %v", out.Field("created_at").Kind())
	}
	if out.Field("extra").StringVal() != "allowed" {
		t.Error("open datatype must keep undeclared fields")
	}
}

func TestDatatypeValidateMissingRequired(t *testing.T) {
	dt := tweetType(t)
	_, err := dt.Validate(mustParse(t, `{"id": 5}`))
	if err == nil || !strings.Contains(err.Error(), "text") {
		t.Errorf("expected missing-field error, got %v", err)
	}
	// Optional fields may be absent.
	if _, err := dt.Validate(mustParse(t, `{"id": 5, "text": "x"}`)); err != nil {
		t.Errorf("optional fields should be skippable: %v", err)
	}
	// Null satisfies a declared field.
	if _, err := dt.Validate(mustParse(t, `{"id": 5, "text": null}`)); err != nil {
		t.Errorf("null should satisfy declared field: %v", err)
	}
}

func TestDatatypeValidateClosed(t *testing.T) {
	dt := MustDatatype("Closed", false, []FieldDef{{Name: "a", Kind: KindInt64}})
	if _, err := dt.Validate(mustParse(t, `{"a": 1}`)); err != nil {
		t.Fatalf("closed validate: %v", err)
	}
	if _, err := dt.Validate(mustParse(t, `{"a": 1, "b": 2}`)); err == nil {
		t.Error("closed datatype must reject undeclared fields")
	}
}

func TestDatatypeValidateNonObject(t *testing.T) {
	dt := tweetType(t)
	if _, err := dt.Validate(Int(1)); err == nil {
		t.Error("non-object must fail validation")
	}
}

func TestDatatypeRejectsDuplicates(t *testing.T) {
	if _, err := NewDatatype("D", true, []FieldDef{
		{Name: "a", Kind: KindInt64}, {Name: "a", Kind: KindString},
	}); err == nil {
		t.Error("duplicate fields must be rejected")
	}
	if _, err := NewDatatype("D", true, []FieldDef{{Name: "", Kind: KindInt64}}); err == nil {
		t.Error("empty field name must be rejected")
	}
}

func TestCoerceKind(t *testing.T) {
	for _, tc := range []struct {
		in     Value
		target Kind
		want   Value
	}{
		{Int(3), KindDouble, Double(3)},
		{Double(3.0), KindInt64, Int(3)},
		{String("2019-08-23T00:00:00Z"), KindDateTime, DateTimeMillis(1_566_518_400_000)},
		{String("P2M"), KindDuration, Duration(2, 0)},
		{Array([]Value{Double(1), Double(2)}), KindPoint, Point(1, 2)},
		{Array([]Value{Int(0), Int(0), Int(2), Int(2)}), KindRectangle, Rectangle(0, 0, 2, 2)},
		{Array([]Value{Int(1), Int(1), Int(5)}), KindCircle, Circle(1, 1, 5)},
		{Int(1_000), KindDateTime, DateTimeMillis(1_000)},
	} {
		got, err := CoerceKind(tc.in, tc.target)
		if err != nil {
			t.Errorf("CoerceKind(%v, %v): %v", tc.in, tc.target, err)
			continue
		}
		if Compare(got, tc.want) != 0 {
			t.Errorf("CoerceKind(%v, %v) = %v, want %v", tc.in, tc.target, got, tc.want)
		}
	}
}

func TestCoerceKindFailures(t *testing.T) {
	bad := []struct {
		in     Value
		target Kind
	}{
		{String("hello"), KindInt64},
		{String("not a date"), KindDateTime},
		{Array([]Value{Int(1)}), KindPoint},
		{Array([]Value{String("x"), String("y")}), KindPoint},
		{Bool(true), KindDouble},
	}
	for _, tc := range bad {
		if _, err := CoerceKind(tc.in, tc.target); err == nil {
			t.Errorf("CoerceKind(%v, %v) should fail", tc.in, tc.target)
		}
	}
}

func TestDatatypeFieldLookup(t *testing.T) {
	dt := tweetType(t)
	f, ok := dt.Field("text")
	if !ok || f.Kind != KindString {
		t.Error("Field lookup failed")
	}
	if _, ok := dt.Field("nope"); ok {
		t.Error("Field lookup should miss")
	}
}
