package adm

import (
	"math/rand"
	"testing"
)

// TestParseJSONNeverPanics: prefixes and random mutations of valid JSON
// either parse or error — never panic — and successful parses
// re-serialize without panicking.
func TestParseJSONNeverPanics(t *testing.T) {
	docs := []string{
		`{"id":123,"text":"hello","nested":{"a":[1,2.5,true,null]},"u":"é𝄞"}`,
		`[{"k":"v"},[],{},[null]]`,
		`-123.456e-7`,
		`"escapes \" \\ \n \t A"`,
	}
	r := rand.New(rand.NewSource(99))
	check := func(input []byte) {
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("panic on %q: %v", input, rec)
			}
		}()
		v, err := ParseJSON(input)
		if err == nil {
			SerializeJSON(v) // must not panic either
		}
	}
	for _, doc := range docs {
		for i := 0; i <= len(doc); i++ {
			check([]byte(doc[:i]))
		}
		for trial := 0; trial < 500; trial++ {
			b := []byte(doc)
			for k := 0; k < 1+r.Intn(5); k++ {
				if len(b) == 0 {
					break
				}
				pos := r.Intn(len(b))
				switch r.Intn(3) {
				case 0:
					b[pos] = byte(r.Intn(256))
				case 1:
					b = append(b[:pos], b[pos+1:]...)
				default:
					b = append(b[:pos], append([]byte{byte(r.Intn(256))}, b[pos:]...)...)
				}
			}
			check(b)
		}
	}
}

// TestCoerceNeverPanics: coercion across every (value, kind) pair either
// succeeds or errors.
func TestCoerceNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		v := randomValue(r, 2)
		k := Kind(r.Intn(int(numKinds)))
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("CoerceKind(%v, %v) panicked: %v", v, k, rec)
				}
			}()
			CoerceKind(v, k) //nolint:errcheck
		}()
	}
}
