package adm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Value is a single ADM value: a compact tagged union covering every
// kind in the data model. Values are cheap to copy (the struct is a few
// machine words); the heap payloads (strings, arrays, objects, geometry)
// are shared on copy, so callers must treat reachable data as immutable
// and use Clone before mutating.
//
// A value parsed into an Arena references the arena's memory instead of
// owning heap allocations; such values are only valid while the arena
// is live and un-Reset. Use Materialize to copy a value out of its
// arena before retaining it past the frame that carries it (see the
// Arena doc and docs/ARCHITECTURE.md for the ownership rules).
type Value struct {
	kind  Kind
	flags uint8       // flagArena: string payload references an Arena
	aux   int32       // Duration: months component
	i     int64       // Int64, Boolean (0/1), DateTime millis, Duration millis
	f     float64     // Double
	s     string      // String
	arr   []Value     // Array elements
	obj   *Object     // Object fields
	geo   *[4]float64 // Point(x,y), Rectangle(x1,y1,x2,y2), Circle(cx,cy,r)
}

// flagArena marks a string value whose payload aliases Arena memory.
// Objects carry their own arena markers — see Object.
const flagArena uint8 = 1 << 0

// flagArenaSpine marks an array value whose element spine was carved
// from an Arena's value slab; Materialize must rebuild the spine even
// when every element is heap-safe.
const flagArenaSpine uint8 = 1 << 1

// Canonical singletons for the two unknown values and the booleans.
var (
	missingValue = Value{kind: KindMissing}
	nullValue    = Value{kind: KindNull}
	trueValue    = Value{kind: KindBoolean, i: 1}
	falseValue   = Value{kind: KindBoolean, i: 0}
)

// Missing returns the MISSING value (absent field).
func Missing() Value { return missingValue }

// Null returns the NULL value.
func Null() Value { return nullValue }

// Bool returns the boolean value b.
func Bool(b bool) Value {
	if b {
		return trueValue
	}
	return falseValue
}

// Int returns an int64 value.
func Int(v int64) Value { return Value{kind: KindInt64, i: v} }

// Double returns a double value.
func Double(v float64) Value { return Value{kind: KindDouble, f: v} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// DateTime returns a datetime value from a time.Time (truncated to
// millisecond precision, stored as UTC epoch milliseconds).
func DateTime(t time.Time) Value {
	return Value{kind: KindDateTime, i: t.UnixMilli()}
}

// DateTimeMillis returns a datetime value from epoch milliseconds.
func DateTimeMillis(ms int64) Value { return Value{kind: KindDateTime, i: ms} }

// Duration returns a calendar duration of the given months and
// milliseconds, mirroring ADM's year-month + day-time duration split.
func Duration(months int32, millis int64) Value {
	return Value{kind: KindDuration, aux: months, i: millis}
}

// Point returns a 2-D point value.
func Point(x, y float64) Value {
	return Value{kind: KindPoint, geo: &[4]float64{x, y}}
}

// Rectangle returns an axis-aligned rectangle value. The corners are
// normalized so (x1,y1) is the lower-left and (x2,y2) the upper-right.
func Rectangle(x1, y1, x2, y2 float64) Value {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Value{kind: KindRectangle, geo: &[4]float64{x1, y1, x2, y2}}
}

// Circle returns a circle value centered at (cx,cy) with radius r.
func Circle(cx, cy, r float64) Value {
	return Value{kind: KindCircle, geo: &[4]float64{cx, cy, r}}
}

// Array returns an array value wrapping elems (not copied).
func Array(elems []Value) Value { return Value{kind: KindArray, arr: elems} }

// EmptyArray returns an array value with no elements.
func EmptyArray() Value { return Value{kind: KindArray} }

// ObjectValue wraps an Object as a Value (not copied).
func ObjectValue(o *Object) Value { return Value{kind: KindObject, obj: o} }

// Kind reports the runtime kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsMissing reports whether v is MISSING.
func (v Value) IsMissing() bool { return v.kind == KindMissing }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsUnknown reports whether v is MISSING or NULL.
func (v Value) IsUnknown() bool { return v.kind.IsUnknown() }

// BoolVal returns the boolean payload; false for non-booleans.
func (v Value) BoolVal() bool { return v.kind == KindBoolean && v.i != 0 }

// IntVal returns the int64 payload (only meaningful for KindInt64).
func (v Value) IntVal() int64 { return v.i }

// DoubleVal returns the double payload (only meaningful for KindDouble).
func (v Value) DoubleVal() float64 { return v.f }

// AsDouble promotes a numeric value to float64. The second result is
// false if the value is not numeric.
func (v Value) AsDouble() (float64, bool) {
	switch v.kind {
	case KindInt64:
		return float64(v.i), true
	case KindDouble:
		return v.f, true
	}
	return 0, false
}

// AsInt converts a numeric value to int64 (doubles are truncated). The
// second result is false if the value is not numeric.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt64:
		return v.i, true
	case KindDouble:
		return int64(v.f), true
	}
	return 0, false
}

// StringVal returns the string payload (only meaningful for KindString).
func (v Value) StringVal() string { return v.s }

// DateTimeVal returns the timestamp as epoch milliseconds.
func (v Value) DateTimeVal() int64 { return v.i }

// Time returns the timestamp as a time.Time in UTC.
func (v Value) Time() time.Time { return time.UnixMilli(v.i).UTC() }

// DurationVal returns the (months, millis) parts of a duration.
func (v Value) DurationVal() (months int32, millis int64) { return v.aux, v.i }

// PointVal returns the (x, y) coordinates of a point.
func (v Value) PointVal() (x, y float64) {
	if v.geo == nil {
		return 0, 0
	}
	return v.geo[0], v.geo[1]
}

// RectVal returns the normalized corners of a rectangle.
func (v Value) RectVal() (x1, y1, x2, y2 float64) {
	if v.geo == nil {
		return 0, 0, 0, 0
	}
	return v.geo[0], v.geo[1], v.geo[2], v.geo[3]
}

// CircleVal returns the center and radius of a circle.
func (v Value) CircleVal() (cx, cy, r float64) {
	if v.geo == nil {
		return 0, 0, 0
	}
	return v.geo[0], v.geo[1], v.geo[2]
}

// ArrayVal returns the element slice of an array (shared, do not mutate).
func (v Value) ArrayVal() []Value {
	return v.arr
}

// ObjectVal returns the object payload, or nil for non-objects.
func (v Value) ObjectVal() *Object {
	if v.kind != KindObject {
		return nil
	}
	return v.obj
}

// Index returns element i of an array, or MISSING when v is not an
// array or the index is out of range — matching SQL++'s forgiving
// subscript semantics.
func (v Value) Index(i int) Value {
	if v.kind != KindArray || i < 0 || i >= len(v.arr) {
		return missingValue
	}
	return v.arr[i]
}

// Field returns the named field of an object, or MISSING when v is not
// an object or the field is absent — SQL++ path-access semantics.
func (v Value) Field(name string) Value {
	if v.kind != KindObject || v.obj == nil {
		return missingValue
	}
	f, ok := v.obj.Get(name)
	if !ok {
		return missingValue
	}
	return f
}

// Clone returns a deep copy of v; mutating the copy's objects or arrays
// never affects the original.
func (v Value) Clone() Value {
	switch v.kind {
	case KindArray:
		if v.arr == nil {
			return v
		}
		elems := make([]Value, len(v.arr))
		for i, e := range v.arr {
			elems[i] = e.Clone()
		}
		return Array(elems)
	case KindObject:
		if v.obj == nil {
			return v
		}
		return ObjectValue(v.obj.Clone())
	case KindPoint, KindRectangle, KindCircle:
		if v.geo == nil {
			return v
		}
		g := *v.geo
		v.geo = &g
		return v
	default:
		return v
	}
}

// ArenaBacked reports whether this value's own payload references Arena
// memory: a string view, or an object allocated from an arena slab. It
// is a shallow check — a heap-built container can hold arena-backed
// children without reporting true, which is why Materialize always
// walks the full value instead of trusting this flag on containers.
func (v Value) ArenaBacked() bool {
	switch v.kind {
	case KindString:
		return v.flags&flagArena != 0
	case KindArray:
		return v.flags&flagArenaSpine != 0
	case KindObject:
		return v.obj != nil && (v.obj.arena || v.obj.arenaNames)
	}
	return false
}

// Materialize returns a value equivalent to v that shares no memory
// with any Arena: arena-backed strings are copied to the heap and
// containers on the path to them are rebuilt. Values that reference no
// arena are returned unchanged with no allocation, so calling it on
// already-safe data is cheap. Consumers that retain a value past the
// life of the frame/arena that produced it (broadcast-frame readers,
// anything that stashes values across batches) must materialize first;
// see docs/ARCHITECTURE.md.
func (v Value) Materialize() Value {
	out, _ := v.materialize()
	return out
}

// materialize reports whether a copy was needed, so containers rebuild
// only the paths that actually touch an arena.
func (v Value) materialize() (Value, bool) {
	switch v.kind {
	case KindString:
		if v.flags&flagArena != 0 {
			return Value{kind: KindString, s: strings.Clone(v.s)}, true
		}
		return v, false
	case KindArray:
		// An arena-carved spine must be rebuilt even when every element
		// is already heap-safe.
		changed := v.flags&flagArenaSpine != 0
		var out []Value
		if changed && v.arr != nil {
			out = make([]Value, len(v.arr))
		}
		for i, e := range v.arr {
			m, ch := e.materialize()
			if ch && out == nil {
				out = make([]Value, len(v.arr))
				copy(out, v.arr[:i])
			}
			if out != nil {
				out[i] = m
			}
			changed = changed || ch
		}
		if !changed {
			return v, false
		}
		return Value{kind: KindArray, arr: out}, true
	case KindObject:
		if v.obj == nil {
			return v, false
		}
		o, ch := v.obj.materialize()
		if !ch {
			return v, false
		}
		return Value{kind: KindObject, obj: o}, true
	default:
		return v, false
	}
}

// MemSize estimates the in-memory footprint of the value in bytes. The
// LSM memtable uses it for flush accounting.
func (v Value) MemSize() int {
	const header = 80 // approximate sizeof(Value)
	size := header
	switch v.kind {
	case KindString:
		size += len(v.s)
	case KindPoint, KindRectangle, KindCircle:
		size += 32
	case KindArray:
		for _, e := range v.arr {
			size += e.MemSize()
		}
	case KindObject:
		if v.obj != nil {
			for i := 0; i < v.obj.Len(); i++ {
				size += len(v.obj.Name(i)) + 16
				size += v.obj.At(i).MemSize()
			}
		}
	}
	return size
}

// String renders the value in ADM literal syntax; it is meant for
// logging and test failure messages, not for wire serialization (see
// SerializeJSON for that).
func (v Value) String() string {
	var b strings.Builder
	v.format(&b)
	return b.String()
}

func (v Value) format(b *strings.Builder) {
	switch v.kind {
	case KindMissing:
		b.WriteString("missing")
	case KindNull:
		b.WriteString("null")
	case KindBoolean:
		if v.i != 0 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case KindInt64:
		b.WriteString(strconv.FormatInt(v.i, 10))
	case KindDouble:
		b.WriteString(formatDouble(v.f))
	case KindString:
		b.WriteString(strconv.Quote(v.s))
	case KindDateTime:
		b.WriteString("datetime(\"")
		b.WriteString(v.Time().Format("2006-01-02T15:04:05.000Z"))
		b.WriteString("\")")
	case KindDuration:
		fmt.Fprintf(b, "duration(months=%d, millis=%d)", v.aux, v.i)
	case KindPoint:
		x, y := v.PointVal()
		fmt.Fprintf(b, "point(%s, %s)", formatDouble(x), formatDouble(y))
	case KindRectangle:
		x1, y1, x2, y2 := v.RectVal()
		fmt.Fprintf(b, "rectangle(%s, %s, %s, %s)",
			formatDouble(x1), formatDouble(y1), formatDouble(x2), formatDouble(y2))
	case KindCircle:
		cx, cy, r := v.CircleVal()
		fmt.Fprintf(b, "circle(%s, %s, %s)",
			formatDouble(cx), formatDouble(cy), formatDouble(r))
	case KindArray:
		b.WriteByte('[')
		for i, e := range v.arr {
			if i > 0 {
				b.WriteString(", ")
			}
			e.format(b)
		}
		b.WriteByte(']')
	case KindObject:
		b.WriteByte('{')
		if v.obj != nil {
			for i := 0; i < v.obj.Len(); i++ {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(strconv.Quote(v.obj.Name(i)))
				b.WriteString(": ")
				v.obj.At(i).format(b)
			}
		}
		b.WriteByte('}')
	}
}

func formatDouble(f float64) string {
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Keep doubles visually distinct from ints in ADM literal output.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// AddMonths returns the datetime shifted by the given number of calendar
// months (used by datetime + duration arithmetic).
func AddMonths(dt Value, months int32) Value {
	if dt.kind != KindDateTime {
		return nullValue
	}
	t := dt.Time().AddDate(0, int(months), 0)
	return DateTime(t)
}

// AddDuration returns dt + dur, applying calendar-month then millisecond
// arithmetic, matching ADM's duration semantics.
func AddDuration(dt, dur Value) Value {
	if dt.kind != KindDateTime || dur.kind != KindDuration {
		return nullValue
	}
	months, millis := dur.DurationVal()
	out := dt
	if months != 0 {
		out = AddMonths(out, months)
	}
	return DateTimeMillis(out.DateTimeVal() + millis)
}
