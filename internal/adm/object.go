package adm

import "strings"

// Object is an ordered collection of named fields: the ADM record type.
// Field order is insertion order (matching how AsterixDB lays out closed
// fields first, then open fields). Lookup is O(1) once the object grows
// past a small threshold; small objects use linear scans to avoid the
// map allocation that would otherwise dominate tweet-sized records.
type Object struct {
	names  []string
	values []Value
	index  map[string]int // built lazily once len(names) > indexThreshold

	// arena marks an object whose struct and field spines were carved
	// from an Arena slab; arenaNames marks field-name strings that view
	// arena bytes. Either way the object is only valid while its arena
	// lives — Value.Materialize rebuilds flagged objects on copy-out.
	arena      bool
	arenaNames bool
}

const indexThreshold = 8

// NewObject returns an empty object with capacity for n fields.
func NewObject(n int) *Object {
	return &Object{
		names:  make([]string, 0, n),
		values: make([]Value, 0, n),
	}
}

// ObjectFromPairs builds an object from alternating name/value pairs,
// primarily a convenience for tests and examples. It panics when the
// argument list is malformed, as that is always a programming error.
func ObjectFromPairs(pairs ...any) *Object {
	if len(pairs)%2 != 0 {
		panic("adm: ObjectFromPairs requires an even number of arguments")
	}
	o := NewObject(len(pairs) / 2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("adm: ObjectFromPairs field names must be strings")
		}
		val, ok := pairs[i+1].(Value)
		if !ok {
			panic("adm: ObjectFromPairs field values must be adm.Value")
		}
		o.Set(name, val)
	}
	return o
}

// Len returns the number of fields.
func (o *Object) Len() int { return len(o.names) }

// Name returns the name of field i.
func (o *Object) Name(i int) string { return o.names[i] }

// At returns the value of field i.
func (o *Object) At(i int) Value { return o.values[i] }

// Get returns the value of the named field and whether it exists.
func (o *Object) Get(name string) (Value, bool) {
	if i := o.find(name); i >= 0 {
		return o.values[i], true
	}
	return Value{}, false
}

// GetOr returns the named field or the fallback when absent.
func (o *Object) GetOr(name string, fallback Value) Value {
	if v, ok := o.Get(name); ok {
		return v
	}
	return fallback
}

// Set adds the field or replaces an existing field of the same name,
// preserving its position.
func (o *Object) Set(name string, v Value) {
	if i := o.find(name); i >= 0 {
		o.values[i] = v
		return
	}
	o.names = append(o.names, name)
	o.values = append(o.values, v)
	if o.index != nil {
		o.index[name] = len(o.names) - 1
	} else if len(o.names) > indexThreshold {
		o.buildIndex()
	}
}

// Delete removes the named field, reporting whether it was present.
func (o *Object) Delete(name string) bool {
	i := o.find(name)
	if i < 0 {
		return false
	}
	o.names = append(o.names[:i], o.names[i+1:]...)
	o.values = append(o.values[:i], o.values[i+1:]...)
	if o.index != nil {
		o.buildIndex() // positions shifted; rebuild
	}
	return true
}

// Clone returns a deep copy of the object. The copy's struct and spines
// are heap-allocated, but string payloads (including arena-backed field
// names) stay shared, so the arenaNames marker carries over; use
// Value.Materialize to sever an object from its arena entirely.
func (o *Object) Clone() *Object {
	c := NewObject(len(o.names))
	c.names = append(c.names, o.names...)
	c.values = make([]Value, len(o.values))
	for i, v := range o.values {
		c.values[i] = v.Clone()
	}
	c.arenaNames = o.arenaNames
	if len(c.names) > indexThreshold {
		c.buildIndex()
	}
	return c
}

// CopyShallow returns a new object sharing the field values (but not the
// field table) with o. It is the cheap way for a UDF to produce
// "SELECT t.*, extra" output without deep-copying the input record.
func (o *Object) CopyShallow() *Object {
	c := &Object{
		names:      append([]string(nil), o.names...),
		values:     append([]Value(nil), o.values...),
		arenaNames: o.arenaNames,
	}
	if len(c.names) > indexThreshold {
		c.buildIndex()
	}
	return c
}

// materialize returns an arena-free copy of the object, or (o, false)
// when neither the object nor anything it reaches touches an arena.
func (o *Object) materialize() (*Object, bool) {
	changed := o.arena || o.arenaNames
	var vals []Value
	for i, v := range o.values {
		m, ch := v.materialize()
		if (ch || changed) && vals == nil {
			vals = make([]Value, len(o.values))
			copy(vals, o.values[:i])
		}
		if vals != nil {
			vals[i] = m
		}
		changed = changed || ch
	}
	if !changed {
		return o, false
	}
	c := &Object{names: make([]string, len(o.names))}
	if o.arenaNames {
		for i, n := range o.names {
			c.names[i] = strings.Clone(n)
		}
	} else {
		copy(c.names, o.names)
	}
	if vals == nil {
		vals = make([]Value, len(o.values))
		copy(vals, o.values)
	}
	c.values = vals
	if len(c.names) > indexThreshold {
		c.buildIndex()
	}
	return c, true
}

func (o *Object) find(name string) int {
	if o.index != nil {
		if i, ok := o.index[name]; ok {
			return i
		}
		return -1
	}
	for i, n := range o.names {
		if n == name {
			return i
		}
	}
	return -1
}

func (o *Object) buildIndex() {
	o.index = make(map[string]int, len(o.names))
	for i, n := range o.names {
		o.index[n] = i
	}
}
