package adm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of Values — the storage serialization used by the LSM
// write-ahead log and on-disk run files. The format is a tagged
// pre-order walk: one kind byte, then a kind-specific payload. Every
// payload is self-delimiting, so a stream of concatenated values needs
// no outer framing. Integers (and counts/lengths) use varints, doubles
// and geometry are fixed-width little-endian, and containers carry an
// element count followed by their children.
//
// BinaryVersion is stamped into every file header that carries this
// encoding (WAL segments, run files). Any change to the byte layout —
// a new kind, a different varint scheme, reordered payload fields —
// must bump it; the golden-file tests under internal/lsm/testdata fail
// loudly on accidental drift.
const BinaryVersion = 1

// AppendBinary appends the binary encoding of v to dst and returns the
// extended slice. It never fails: every Value kind is encodable.
func AppendBinary(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindMissing, KindNull:
		// Tag only.
	case KindBoolean:
		b := byte(0)
		if v.i != 0 {
			b = 1
		}
		dst = append(dst, b)
	case KindInt64, KindDateTime:
		dst = binary.AppendVarint(dst, v.i)
	case KindDouble:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindDuration:
		dst = binary.AppendVarint(dst, int64(v.aux))
		dst = binary.AppendVarint(dst, v.i)
	case KindPoint:
		dst = appendGeo(dst, v.geo, 2)
	case KindCircle:
		dst = appendGeo(dst, v.geo, 3)
	case KindRectangle:
		dst = appendGeo(dst, v.geo, 4)
	case KindArray:
		dst = binary.AppendUvarint(dst, uint64(len(v.arr)))
		for _, e := range v.arr {
			dst = AppendBinary(dst, e)
		}
	case KindObject:
		n := 0
		if v.obj != nil {
			n = v.obj.Len()
		}
		dst = binary.AppendUvarint(dst, uint64(n))
		for i := 0; i < n; i++ {
			name := v.obj.Name(i)
			dst = binary.AppendUvarint(dst, uint64(len(name)))
			dst = append(dst, name...)
			dst = AppendBinary(dst, v.obj.At(i))
		}
	}
	return dst
}

func appendGeo(dst []byte, geo *[4]float64, n int) []byte {
	var zero [4]float64
	if geo == nil {
		geo = &zero
	}
	for i := 0; i < n; i++ {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(geo[i]))
	}
	return dst
}

// DecodeBinary decodes one value from the front of data, returning the
// value and the number of bytes consumed. Decoded values own their
// memory (string payloads are copied), so they are safe to retain —
// recovery replay feeds them straight into the memtable.
func DecodeBinary(data []byte) (Value, int, error) {
	v, n, err := decodeBinary(data, 0)
	if err != nil {
		return Value{}, 0, err
	}
	return v, n, nil
}

// maxBinaryDepth bounds container nesting so corrupt counts cannot
// recurse unboundedly.
const maxBinaryDepth = 200

func decodeBinary(data []byte, depth int) (Value, int, error) {
	if depth > maxBinaryDepth {
		return Value{}, 0, fmt.Errorf("adm: binary value nested deeper than %d", maxBinaryDepth)
	}
	if len(data) == 0 {
		return Value{}, 0, fmt.Errorf("adm: truncated binary value: missing kind tag")
	}
	kind := Kind(data[0])
	pos := 1
	switch kind {
	case KindMissing:
		return Missing(), pos, nil
	case KindNull:
		return Null(), pos, nil
	case KindBoolean:
		if len(data) < pos+1 {
			return Value{}, 0, errTruncated(kind)
		}
		return Bool(data[pos] != 0), pos + 1, nil
	case KindInt64, KindDateTime:
		i, n := binary.Varint(data[pos:])
		if n <= 0 {
			return Value{}, 0, errTruncated(kind)
		}
		return Value{kind: kind, i: i}, pos + n, nil
	case KindDouble:
		if len(data) < pos+8 {
			return Value{}, 0, errTruncated(kind)
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		return Double(f), pos + 8, nil
	case KindString:
		l, n, err := decodeLen(data[pos:], kind)
		if err != nil {
			return Value{}, 0, err
		}
		pos += n
		if len(data) < pos+l {
			return Value{}, 0, errTruncated(kind)
		}
		return String(string(data[pos : pos+l])), pos + l, nil
	case KindDuration:
		months, n := binary.Varint(data[pos:])
		if n <= 0 {
			return Value{}, 0, errTruncated(kind)
		}
		pos += n
		millis, n := binary.Varint(data[pos:])
		if n <= 0 {
			return Value{}, 0, errTruncated(kind)
		}
		if months < math.MinInt32 || months > math.MaxInt32 {
			return Value{}, 0, fmt.Errorf("adm: binary duration months %d out of range", months)
		}
		return Duration(int32(months), millis), pos + n, nil
	case KindPoint, KindCircle, KindRectangle:
		coords := 2
		if kind == KindCircle {
			coords = 3
		} else if kind == KindRectangle {
			coords = 4
		}
		if len(data) < pos+8*coords {
			return Value{}, 0, errTruncated(kind)
		}
		var geo [4]float64
		for i := 0; i < coords; i++ {
			geo[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		}
		return Value{kind: kind, geo: &geo}, pos, nil
	case KindArray:
		count, n, err := decodeLen(data[pos:], kind)
		if err != nil {
			return Value{}, 0, err
		}
		pos += n
		if count == 0 {
			return EmptyArray(), pos, nil
		}
		// A corrupt count could claim more elements than the buffer can
		// possibly hold (each takes >= 1 byte); cap the allocation.
		if count > len(data)-pos {
			return Value{}, 0, errTruncated(kind)
		}
		elems := make([]Value, 0, count)
		for i := 0; i < count; i++ {
			e, n, err := decodeBinary(data[pos:], depth+1)
			if err != nil {
				return Value{}, 0, err
			}
			elems = append(elems, e)
			pos += n
		}
		return Array(elems), pos, nil
	case KindObject:
		count, n, err := decodeLen(data[pos:], kind)
		if err != nil {
			return Value{}, 0, err
		}
		pos += n
		if count > len(data)-pos {
			return Value{}, 0, errTruncated(kind)
		}
		obj := NewObject(count)
		for i := 0; i < count; i++ {
			l, n, err := decodeLen(data[pos:], kind)
			if err != nil {
				return Value{}, 0, err
			}
			pos += n
			if len(data) < pos+l {
				return Value{}, 0, errTruncated(kind)
			}
			name := string(data[pos : pos+l])
			pos += l
			fv, n, err := decodeBinary(data[pos:], depth+1)
			if err != nil {
				return Value{}, 0, err
			}
			obj.Set(name, fv)
			pos += n
		}
		return ObjectValue(obj), pos, nil
	}
	return Value{}, 0, fmt.Errorf("adm: unknown binary kind tag 0x%02x", byte(kind))
}

func decodeLen(data []byte, kind Kind) (int, int, error) {
	u, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, errTruncated(kind)
	}
	if u > math.MaxInt32 {
		return 0, 0, fmt.Errorf("adm: binary %s length %d out of range", kind, u)
	}
	return int(u), n, nil
}

func errTruncated(kind Kind) error {
	return fmt.Errorf("adm: truncated binary %s payload", kind)
}
