// Package core implements the paper's contribution: the decoupled
// ingestion framework. A feed is three cooperating layers —
//
//   - a long-running *intake job* (adapters receive raw bytes, a
//     round-robin partitioner spreads them over passive intake partition
//     holders on every node),
//   - a short-lived but repeatedly-invoked *computing job* (per batch:
//     collect from the local intake holder, parse, evaluate the attached
//     UDF against freshly-prepared state, forward to the local storage
//     holder), and
//   - a long-running *storage job* (active storage partition holders →
//     hash partitioner on primary key → LSM storage partitions, with
//     group-committed log writes),
//
// orchestrated by the Active Feed Manager on the cluster controller.
// The package also implements the old coupled ("static") pipeline as the
// paper's baseline, including its limitations: stateful SQL++ UDFs are
// rejected, and native-UDF state goes stale.
package core

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
)

// Adapter obtains/receives data from an external source as raw bytes,
// one record per emit call. Run returns when the source is exhausted or
// ctx is canceled; emit blocks for backpressure.
//
// Emitted bytes travel the pipeline zero-copy by default: the feed
// retains the slice until the record has been parsed, so an adapter
// must hand each emit call its own slice (or one it will never mutate
// again) — it must not reuse a read buffer across emits. An adapter
// that *does* scan into a recycled buffer implements VolatileAdapter
// instead, and the feed stages each emit into a pooled per-frame line
// arena (one memcpy, no per-record allocation).
type Adapter interface {
	Run(ctx context.Context, emit func(raw []byte) error) error
}

// VolatileAdapter is implemented by adapters whose emitted slices are
// valid only for the duration of the emit call (reused read buffers).
// The feed copies such emits into the frame's arena before they are
// retained; see hyracks.FrameBuilder.AddRawCopy.
type VolatileAdapter interface {
	Adapter
	// VolatileEmits reports that emitted bytes must be copied before
	// the emit call returns.
	VolatileEmits() bool
}

// ResumableAdapter is an Adapter whose source has a replayable,
// monotonic offset space — the contract behind at-least-once delivery.
// Offsets are dense and start at 1 (0 means "from the beginning").
// RunFrom emits every record with offset > from, in order, tagging each
// emit with its offset; the feed records (feed, adapter, offset)
// checkpoints through the partition WAL and restarts the adapter from
// the last checkpoint after a crash or failover. Redelivery of records
// in (checkpoint, lastEmitted] is expected and absorbed by last-wins
// upsert.
type ResumableAdapter interface {
	Adapter
	RunFrom(ctx context.Context, from uint64, emit func(off uint64, raw []byte) error) error
}

// GeneratorAdapter replays pre-serialized records — the synthetic
// firehose used by benchmarks (substituting for the paper's Twitter
// feed; see docs/ARCHITECTURE.md). It is resumable: record i has
// offset i+1.
type GeneratorAdapter struct {
	// Records are emitted in order.
	Records [][]byte
}

// Run implements Adapter.
func (g *GeneratorAdapter) Run(ctx context.Context, emit func([]byte) error) error {
	return g.RunFrom(ctx, 0, func(_ uint64, raw []byte) error { return emit(raw) })
}

// RunFrom implements ResumableAdapter.
func (g *GeneratorAdapter) RunFrom(ctx context.Context, from uint64, emit func(uint64, []byte) error) error {
	for i := int(from); i < len(g.Records); i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := emit(uint64(i)+1, g.Records[i]); err != nil {
			return err
		}
	}
	return nil
}

// ChannelAdapter emits records pushed into a channel (examples and
// update clients). Close the channel to end the feed.
type ChannelAdapter struct {
	C <-chan []byte
}

// Run implements Adapter.
func (a *ChannelAdapter) Run(ctx context.Context, emit func([]byte) error) error {
	for {
		select {
		case rec, ok := <-a.C:
			if !ok {
				return nil
			}
			if err := emit(rec); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// SocketAdapter listens on a TCP socket and emits newline-delimited
// records — the paper's socket_adapter. It serves any number of
// sequential or concurrent connections; Run ends when the listener is
// closed (StopFeed) or ctx is canceled.
//
// It emits straight out of each connection's scanner buffer and
// declares VolatileEmits, so the feed stages lines into a pooled frame
// arena instead of this adapter allocating a copy per line.
type SocketAdapter struct {
	// Addr is the listen address, e.g. "127.0.0.1:10001".
	Addr string

	mu sync.Mutex
	ln net.Listener
}

// Run implements Adapter.
func (a *SocketAdapter) Run(ctx context.Context, emit func([]byte) error) error {
	ln, err := net.Listen("tcp", a.Addr)
	if err != nil {
		return fmt.Errorf("core: socket adapter: %w", err)
	}
	a.mu.Lock()
	a.ln = ln
	a.mu.Unlock()
	go func() {
		<-ctx.Done()
		a.Stop()
	}()

	var wg sync.WaitGroup
	var emitMu sync.Mutex // serialize emits across connections
	var connErr error
	var errOnce sync.Once
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
			for sc.Scan() {
				// Zero-copy into emit: the scanner buffer is reused
				// across lines, which VolatileEmits warns the feed
				// about — it copies into a frame arena before
				// retaining.
				line := sc.Bytes()
				if len(line) == 0 {
					continue
				}
				emitMu.Lock()
				err := emit(line)
				emitMu.Unlock()
				if err != nil {
					errOnce.Do(func() { connErr = err })
					return
				}
			}
		}(conn)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil // clean stop
	}
	return connErr
}

// VolatileEmits implements VolatileAdapter: lines alias the scanner's
// recycled read buffer.
func (a *SocketAdapter) VolatileEmits() bool { return true }

// Stop closes the listener, ending Run once in-flight connections
// finish.
func (a *SocketAdapter) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln != nil {
		a.ln.Close()
		a.ln = nil
	}
}
