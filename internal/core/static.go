package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/hyracks"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/udf"
)

// ErrStatefulUDF is returned when a stateful SQL++ UDF is attached to
// the static pipeline — the very limitation of the old framework that
// motivates the paper ("the attached UDFs are limited to be stateless").
var ErrStatefulUDF = errors.New(
	"core: static pipeline cannot evaluate stateful SQL++ UDFs (the streaming model would freeze their intermediate state)")

// StaticFeed is the old AsterixDB ingestion pipeline baseline: one
// continuous job in which the adapter and parser are coupled on the
// intake node(s), the attached UDF is evaluated with the streaming model
// (state initialized once for the feed's lifetime), and records flow
// straight to storage. It is "Static Ingestion" / "Static Enrichment w/
// Java" in the paper's figures.
type StaticFeed struct {
	cfg       Config
	cluster   *cluster.Cluster
	job       *hyracks.Job
	cancel    context.CancelFunc
	adaptCtx  context.Context
	adaptStop context.CancelFunc
	stats     Stats
}

// Stats returns the pipeline's counters.
func (s *StaticFeed) Stats() *Stats { return &s.stats }

// StartStatic launches the old-framework pipeline.
func StartStatic(ctx context.Context, c *cluster.Cluster, cfg Config) (*StaticFeed, error) {
	if len(cfg.IntakeNodes) == 0 {
		cfg.IntakeNodes = []int{0}
	}
	if cfg.NewAdapter == nil {
		return nil, errors.New("core: feed needs an adapter factory")
	}
	ds, ok := c.Dataset(cfg.Dataset)
	if !ok {
		return nil, fmt.Errorf("core: unknown dataset %q", cfg.Dataset)
	}
	plan, native, err := resolveFunction(c, cfg)
	if err != nil {
		return nil, err
	}
	if plan != nil && !plan.Stateless() {
		return nil, ErrStatefulUDF
	}

	jobCtx, cancel := context.WithCancel(ctx)
	adaptCtx, adaptStop := context.WithCancel(jobCtx)
	sf := &StaticFeed{
		cfg: cfg, cluster: c, cancel: cancel,
		adaptCtx: adaptCtx, adaptStop: adaptStop,
	}
	n := c.NumNodes()
	tuning := c.Tuning()
	dt := ds.Datatype()
	pk := ds.PrimaryKey()

	// Streaming-model state: built once, reused for the entire feed.
	var prepared *query.PreparedEnrich
	if plan != nil {
		prepared, err = plan.Prepare(c)
		if err != nil {
			cancel()
			return nil, err
		}
	}
	var instances []udf.Instance
	if native != nil {
		instances = make([]udf.Instance, n)
		for p := range instances {
			inst := native.New()
			if err := inst.Initialize(p); err != nil {
				cancel()
				return nil, err
			}
			instances[p] = inst
		}
	}

	spec := hyracks.NewJobSpec()
	spec.QueueCapacity = tuning.HolderCapacity

	// Adapter + parser, coupled on the intake node(s) — the old
	// framework's bottleneck when there is a single intake node.
	adapterOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "adapter-parser",
		Parallelism: len(cfg.IntakeNodes),
		NodeOf:      func(p int) int { return cfg.IntakeNodes[p] },
		NewSource: func(p int) (hyracks.Source, error) {
			adapter, err := cfg.NewAdapter(p)
			if err != nil {
				return nil, err
			}
			return hyracks.SourceFunc(func(tc *hyracks.TaskContext, out hyracks.Writer) error {
				if err := out.Open(); err != nil {
					return err
				}
				b := hyracks.NewFrameBuilder(tuning.FrameCapacity, out)
				// One interning parser per adapter instance: the
				// adapter-parser coupling is the point of the static
				// baseline, but it need not re-allocate field names.
				parser := adm.NewParser()
				err := adapter.Run(sf.adaptCtx, func(raw []byte) error {
					rec, perr := parser.Parse(raw)
					if perr != nil {
						sf.stats.ParseErrors.Add(1)
						return nil
					}
					if dt != nil {
						rec, perr = dt.Validate(rec)
						if perr != nil {
							sf.stats.ParseErrors.Add(1)
							return nil
						}
					}
					sf.stats.Ingested.Add(1)
					return b.Add(rec)
				})
				if err != nil && !(errors.Is(err, context.Canceled) && sf.adaptCtx.Err() != nil) {
					return err
				}
				return b.Flush()
			}), nil
		},
	})

	// UDF evaluator with frozen state, spread over all nodes.
	evalOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "stream-udf-evaluator",
		Parallelism: n,
		NewPipe: func(p int) (hyracks.Pipe, error) {
			return &hyracks.MapPipe{Fn: func(rec adm.Value) (adm.Value, bool, error) {
				switch {
				case prepared != nil:
					v, err := prepared.EvalRecord(rec)
					if err != nil {
						return adm.Value{}, false, err
					}
					return v, true, nil
				case instances != nil:
					v, err := instances[p].Evaluate(rec)
					if err != nil {
						return adm.Value{}, false, err
					}
					return v, true, nil
				default:
					return rec, true, nil
				}
			}}, nil
		},
	})

	writerOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "storage-partition-writer",
		Parallelism: n,
		NewPipe: func(p int) (hyracks.Pipe, error) {
			// Frame-granular batch writes, same as the dynamic feed.
			return newStorageWriter(ds.Partition(p), pk, &sf.stats.Stored), nil
		},
	})

	spec.Connect(adapterOp, evalOp, hyracks.RoundRobin, nil)
	spec.Connect(evalOp, writerOp, hyracks.HashPartition, func(rec adm.Value) uint64 {
		return adm.Hash(rec.Field(pk))
	})

	sf.job, err = c.StartJob(jobCtx, spec, cfg.Name+"-static")
	if err != nil {
		cancel()
		return nil, err
	}
	return sf, nil
}

// Stop gracefully stops the adapters; in-flight data drains.
func (s *StaticFeed) Stop() { s.adaptStop() }

// Wait blocks until the pipeline finishes.
func (s *StaticFeed) Wait() error {
	err := s.job.Wait()
	s.cancel()
	return err
}
