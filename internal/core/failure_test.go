package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/sqlpp"
	"github.com/ideadb/idea/internal/udf"
)

// parseDDL parses one CREATE FUNCTION statement into a catalog function.
func parseDDL(src string) (*query.Function, error) {
	stmts, err := sqlpp.Parse(src)
	if err != nil {
		return nil, err
	}
	cf := stmts[0].(*sqlpp.CreateFunction)
	return &query.Function{Name: cf.Name, Params: cf.Params, Body: cf.Body}, nil
}

// TestFeedStartValidation: bad configurations fail fast, before any job
// runs.
func TestFeedStartValidation(t *testing.T) {
	c, g := testCluster(t, 2)
	base := generatorConfig("v", g, 10)

	cfg := base
	cfg.Dataset = "NoSuchDataset"
	if _, err := Start(context.Background(), c, cfg); err == nil {
		t.Error("unknown dataset should fail")
	}
	cfg = base
	cfg.Function = "noSuchFunction"
	if _, err := Start(context.Background(), c, cfg); err == nil {
		t.Error("unknown function should fail")
	}
	cfg = base
	cfg.NewAdapter = nil
	if _, err := Start(context.Background(), c, cfg); err == nil {
		t.Error("missing adapter should fail")
	}
	// Same for the static pipeline.
	cfg = base
	cfg.Dataset = "NoSuchDataset"
	if _, err := StartStatic(context.Background(), c, cfg); err == nil {
		t.Error("static: unknown dataset should fail")
	}
}

// TestFeedNativeUDFEvaluateError: a UDF that fails mid-stream must fail
// the feed cleanly — Wait returns the error and nothing deadlocks.
func TestFeedNativeUDFEvaluateError(t *testing.T) {
	c, g := testCluster(t, 2)
	boom := errors.New("enrichment exploded")
	reg := udf.NewRegistry()
	if err := reg.Register(&udf.Native{
		Name: "bomb",
		New: func() udf.Instance {
			return &udf.FuncInstance{
				EvalFn: func(rec adm.Value) (adm.Value, error) {
					if rec.Field("id").IntVal() == 150 {
						return adm.Value{}, boom
					}
					return rec, nil
				},
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	cfg := generatorConfig("boomfeed", g, 400)
	cfg.Function = "bomb"
	cfg.Natives = reg
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Wait() }()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, boom) {
			t.Errorf("Wait = %v, want the UDF error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("failing feed deadlocked")
	}
}

// TestFeedNativeUDFInitializeError: a failing Initialize surfaces from
// the AFM without hanging.
func TestFeedNativeUDFInitializeError(t *testing.T) {
	c, g := testCluster(t, 2)
	reg := udf.NewRegistry()
	if err := reg.Register(&udf.Native{
		Name: "badinit",
		New: func() udf.Instance {
			return &udf.FuncInstance{
				InitFn: func(int) error { return errors.New("resource file missing") },
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	cfg := generatorConfig("badinit", g, 100)
	cfg.Function = "badinit"
	cfg.Natives = reg
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Wait() }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "resource file missing") {
			t.Errorf("Wait = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("init-failing feed deadlocked")
	}
}

// TestFeedAdapterError: an adapter that dies mid-stream fails the intake
// job and the feed reports it.
func TestFeedAdapterError(t *testing.T) {
	c, _ := testCluster(t, 2)
	cfg := Config{
		Name:    "deadadapter",
		Dataset: "Tweets",
		NewAdapter: func(int) (Adapter, error) {
			return adapterFunc(func(ctx context.Context, emit func([]byte) error) error {
				for i := 0; i < 50; i++ {
					if err := emit([]byte(fmt.Sprintf(`{"id":%d}`, i))); err != nil {
						return err
					}
				}
				return errors.New("socket reset by peer")
			}), nil
		},
	}
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Wait() }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "socket reset") {
			t.Errorf("Wait = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("adapter failure deadlocked the feed")
	}
}

type adapterFunc func(ctx context.Context, emit func([]byte) error) error

func (f adapterFunc) Run(ctx context.Context, emit func([]byte) error) error {
	return f(ctx, emit)
}

// TestFeedContextCancellation: canceling the parent context tears the
// whole pipeline down.
func TestFeedContextCancellation(t *testing.T) {
	c, _ := testCluster(t, 2)
	ch := make(chan []byte) // never closed: feed would run forever
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Name:    "cancelme",
		Dataset: "Tweets",
		NewAdapter: func(int) (Adapter, error) {
			return &ChannelAdapter{C: ch}, nil
		},
	}
	f, err := Start(ctx, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Wait() }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
		// Error content is context-dependent; termination is the point.
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not stop the feed")
	}
}

// TestFeedSQLPPRuntimeError: a SQL++ UDF hitting a runtime error (here:
// unknown library function at evaluation time) fails the batch and the
// feed.
func TestFeedSQLPPRuntimeError(t *testing.T) {
	c, g := testCluster(t, 2)
	_ = g
	// Register a function whose body calls a library function that is
	// never registered. Compile succeeds; evaluation fails.
	ddl := `CREATE FUNCTION brokenEnrich(t) {
		LET x = nolib#nothere(t.text)
		SELECT t.*, x
	};`
	stmts, err := parseDDL(ddl)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateFunction(stmts); err != nil {
		t.Fatal(err)
	}
	cfg := generatorConfig("brokenfeed", g, 100)
	cfg.Dataset = "EnrichedTweets"
	cfg.Function = "brokenEnrich"
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Wait() }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "nolib#nothere") {
			t.Errorf("Wait = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("broken SQL++ feed deadlocked")
	}
}

// TestFeedDuplicateName: starting two feeds with the same name collides
// on holder registration.
func TestFeedDuplicateName(t *testing.T) {
	c, g := testCluster(t, 2)
	ch := make(chan []byte)
	cfg := Config{
		Name:    "dup",
		Dataset: "Tweets",
		NewAdapter: func(int) (Adapter, error) {
			return &ChannelAdapter{C: ch}, nil
		},
	}
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(context.Background(), c, cfg); err == nil {
		t.Error("duplicate feed name should fail")
	}
	close(ch)
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	_ = g
}

// TestFeedStorageFailureDoesNotHang: a UDF whose output lacks the
// primary key kills the storage job; the watchdog must tear the feed
// down instead of letting the AFM block on dead storage holders.
func TestFeedStorageFailureDoesNotHang(t *testing.T) {
	c, g := testCluster(t, 2)
	reg := udf.NewRegistry()
	if err := reg.Register(&udf.Native{
		Name: "dropkey",
		New: func() udf.Instance {
			return &udf.FuncInstance{
				EvalFn: func(rec adm.Value) (adm.Value, error) {
					// Strip the primary key — the storage writer will
					// reject this downstream.
					out := rec.ObjectVal().CopyShallow()
					out.Delete("id")
					return adm.ObjectValue(out), nil
				},
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	cfg := generatorConfig("dropkey", g, 500)
	cfg.Dataset = "EnrichedTweets"
	cfg.Function = "dropkey"
	cfg.Natives = reg
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Wait() }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "primary key") {
			t.Errorf("Wait = %v, want primary-key error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("storage failure hung the feed")
	}
}
