package core

import (
	"fmt"
	"sync/atomic"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/hyracks"
	"github.com/ideadb/idea/internal/lsm"
)

// newStorageWriter returns the frame-granular LSM storage writer shared
// by the feed storage job, the fused-insert ablation, and the static
// pipeline. Each incoming frame becomes one storage operation: the
// primary keys are extracted in a single pass into a pooled scratch and
// the whole frame goes through Partition.UpsertBatch — one WAL append
// and group commit, one partition lock acquisition, one sorted bulk
// insert into the memtable, and grouped secondary-index maintenance —
// instead of paying each of those per record.
//
// The writer is the frame's final consumer. Storage retains the records
// themselves, so only the spines recycle; the frame's arena stays alive
// through the retained values and the garbage collector reclaims it
// with them (the hyracks package comment is the normative statement of
// this rule).
func newStorageWriter(part *lsm.Partition, pk string, stored *atomic.Int64) *hyracks.SinkPipe {
	// The key scratch persists across frames: a pipe instance is driven
	// by one goroutine, so no pooling (or locking) is needed and a
	// steady frame stream extracts keys with zero allocations.
	var keys []adm.Value
	return &hyracks.SinkPipe{
		Fn: func(_ *hyracks.TaskContext, fr hyracks.Frame) error {
			if len(fr.Raw) > 0 {
				return fmt.Errorf("core: raw-lane frame reached storage writer; parse records first")
			}
			if len(fr.Records) == 0 {
				hyracks.RecycleFrame(fr)
				return nil
			}
			if cap(keys) < len(fr.Records) {
				keys = make([]adm.Value, 0, max(len(fr.Records), 256))
			}
			keys = keys[:0]
			for _, rec := range fr.Records {
				key := rec.Field(pk)
				if key.IsUnknown() {
					return fmt.Errorf("core: record missing primary key %q", pk)
				}
				keys = append(keys, key)
			}
			if err := part.UpsertBatch(keys, fr.Records); err != nil {
				return err
			}
			clear(keys) // key headers were copied into the memtable
			stored.Add(int64(len(fr.Records)))
			hyracks.RecycleFrameSpines(fr)
			return nil
		},
	}
}
