package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrFeedOverloaded reports that a feed's loss-free congestion handling
// ran out of room: the intake ring was full AND the bounded spill lane
// was exhausted (or its disk write failed). The feed fails rather than
// buffer without bound or drop silently; Shed/Sample policies never
// return it.
var ErrFeedOverloaded = errors.New("idea: feed overloaded")

// ckptScope names the checkpoint key for one (feed, adapter slot) pair.
func ckptScope(feed string, slot int) string {
	return fmt.Sprintf("%s/%d", feed, slot)
}

// offRange is a closed interval of source offsets.
type offRange struct{ lo, hi uint64 }

// offsetTracker turns out-of-order "offsets lo..hi were delivered"
// reports into a contiguous watermark: the largest W such that every
// offset in 1..W has been delivered. Frames from one adapter can reach
// different intake partitions (round-robin) and be collected by
// different computing-job partitions in any order, so the tracker keeps
// the delivered ranges above the watermark and advances it when the gap
// closes. Deliberately dropped frames (Shed/Sample) are reported too:
// their data is gone by policy, and holding the watermark back would
// just re-deliver records the operator chose to lose.
type offsetTracker struct {
	mu        sync.Mutex
	watermark uint64
	pending   []offRange // disjoint, sorted by lo, all above watermark
}

// mark records offsets lo..hi (inclusive) as delivered.
func (t *offsetTracker) mark(lo, hi uint64) {
	if lo == 0 || hi < lo {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if hi <= t.watermark {
		return
	}
	if lo <= t.watermark {
		lo = t.watermark + 1
	}
	// Insert and merge with neighbors (ranges touch when hi+1 == lo).
	i := sort.Search(len(t.pending), func(i int) bool { return t.pending[i].lo > lo })
	t.pending = append(t.pending, offRange{})
	copy(t.pending[i+1:], t.pending[i:])
	t.pending[i] = offRange{lo, hi}
	merged := t.pending[:0]
	for _, r := range t.pending {
		if n := len(merged); n > 0 && r.lo <= merged[n-1].hi+1 {
			if r.hi > merged[n-1].hi {
				merged[n-1].hi = r.hi
			}
			continue
		}
		merged = append(merged, r)
	}
	t.pending = merged
	if len(t.pending) > 0 && t.pending[0].lo == t.watermark+1 {
		t.watermark = t.pending[0].hi
		t.pending = t.pending[1:]
	}
}

// cut returns the current contiguous watermark.
func (t *offsetTracker) cut() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.watermark
}

// seed initializes the watermark from a recovered checkpoint (resume).
func (t *offsetTracker) seed(w uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w > t.watermark {
		t.watermark = w
	}
}
