package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/hyracks"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/udf"
)

// Config describes one feed connection (the union of CREATE FEED and
// CONNECT FEED).
type Config struct {
	// Name identifies the feed (holder registration, job ids).
	Name string
	// Dataset is the target dataset.
	Dataset string
	// Function is the attached UDF name ("" for none): a catalog SQL++
	// function or a registered native UDF.
	Function string
	// BatchSize is the records consumed per computing-job invocation
	// across the cluster (the paper's 1X = 420).
	BatchSize int
	// IntakeNodes lists the nodes running adapters (default node 0; all
	// nodes = the paper's "balanced" variants).
	IntakeNodes []int
	// NewAdapter builds the adapter for intake slot i (0 ≤ i <
	// len(IntakeNodes)).
	NewAdapter func(i int) (Adapter, error)
	// DisableIndexes applies the paper's no-index query hint (Naive
	// Nearby Monuments).
	DisableIndexes bool
	// Natives resolves native ("Java") UDFs.
	Natives *udf.Registry

	// RecompilePerBatch disables the predeployed-job optimization: every
	// invocation re-runs UDF compilation and pays full dispatch overhead
	// (ablation 2 in docs/ARCHITECTURE.md).
	RecompilePerBatch bool
	// FusedInsert disables the decoupled pipeline: each invocation is a
	// single insert job whose UDF evaluation and storage write run
	// sequentially (Section 5.1's intermediate design; ablation 3).
	FusedInsert bool
}

// Stats are live feed counters.
type Stats struct {
	// Ingested counts records consumed by computing jobs.
	Ingested atomic.Int64
	// Stored counts records written to storage partitions.
	Stored atomic.Int64
	// ParseErrors counts malformed records dropped by the parser.
	ParseErrors atomic.Int64
	// Invocations counts computing-job invocations.
	Invocations atomic.Int64
	// BatchNanos accumulates computing-job wall time (refresh periods).
	BatchNanos atomic.Int64
}

// RefreshPeriod returns the mean computing-job duration — the paper's
// Figure 26 metric.
func (s *Stats) RefreshPeriod() time.Duration {
	inv := s.Invocations.Load()
	if inv == 0 {
		return 0
	}
	return time.Duration(s.BatchNanos.Load() / inv)
}

// Feed is a running dynamic-framework feed.
type Feed struct {
	cfg     Config
	cluster *cluster.Cluster
	ds      *lsm.Dataset
	dt      *adm.Datatype

	plan   *query.EnrichPlan // SQL++ attachment
	native *udf.Native       // native attachment

	intakeHolders  []*hyracks.PassiveHolder
	storageHolders []*hyracks.ActiveHolder
	intakeJob      *hyracks.Job
	storageJob     *hyracks.Job

	// parsers[p] is partition p's reusable JSON parser; its field-name
	// intern table and size hints stay warm across invocations. Each is
	// only touched by the collector instance for partition p, and
	// invocations run sequentially, so no locking is needed.
	parsers []*adm.Parser

	// computeSpec is the predeployed computing job's spec skeleton,
	// built once at start; per-invocation state lives in curInv. The
	// RecompilePerBatch ablation rebuilds the spec every batch instead.
	computeSpec *hyracks.JobSpec
	curInv      atomic.Pointer[invocation]

	eof []atomic.Bool // per node: intake holder fully drained

	jobCtx    context.Context
	jobCancel context.CancelFunc
	adaptCtx  context.Context
	adaptStop context.CancelFunc
	afmDone   chan struct{}
	computeID string
	frameCap  int
	quota     int

	stats   Stats
	errOnce sync.Once
	feedErr error
}

// Stats returns the feed's counters.
func (f *Feed) Stats() *Stats { return &f.stats }

// resolveFunction splits the attached function into a native UDF or a
// compiled SQL++ enrichment plan.
func resolveFunction(c *cluster.Cluster, cfg Config) (*query.EnrichPlan, *udf.Native, error) {
	if cfg.Function == "" {
		return nil, nil, nil
	}
	if cfg.Natives != nil {
		if n, ok := cfg.Natives.Lookup(cfg.Function); ok {
			return nil, n, nil
		}
	}
	fn, ok := c.Function(cfg.Function)
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown function %q", cfg.Function)
	}
	if fn.Native != nil {
		// A scalar native catalog function applied record-wise.
		n := &udf.Native{
			Name: fn.Name,
			New: func() udf.Instance {
				return &udf.FuncInstance{EvalFn: func(rec adm.Value) (adm.Value, error) {
					return fn.Native([]adm.Value{rec})
				}}
			},
		}
		return nil, n, nil
	}
	plan, err := query.CompileEnrich(fn.Name, fn.Params, fn.Body, c,
		query.PlanOptions{DisableIndexes: cfg.DisableIndexes})
	if err != nil {
		return nil, nil, err
	}
	return plan, nil, nil
}

// Start launches the full dynamic pipeline: storage job, intake job,
// predeployed computing job, and the Active Feed Manager loop.
func Start(ctx context.Context, c *cluster.Cluster, cfg Config) (*Feed, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 420 // the paper's 1X
	}
	if len(cfg.IntakeNodes) == 0 {
		cfg.IntakeNodes = []int{0}
	}
	if cfg.NewAdapter == nil {
		return nil, errors.New("core: feed needs an adapter factory")
	}
	ds, ok := c.Dataset(cfg.Dataset)
	if !ok {
		return nil, fmt.Errorf("core: unknown dataset %q", cfg.Dataset)
	}
	plan, native, err := resolveFunction(c, cfg)
	if err != nil {
		return nil, err
	}

	n := c.NumNodes()
	tuning := c.Tuning()
	jobCtx, jobCancel := context.WithCancel(ctx)
	adaptCtx, adaptStop := context.WithCancel(jobCtx)
	f := &Feed{
		cfg:       cfg,
		cluster:   c,
		ds:        ds,
		dt:        ds.Datatype(),
		plan:      plan,
		native:    native,
		jobCtx:    jobCtx,
		jobCancel: jobCancel,
		adaptCtx:  adaptCtx,
		adaptStop: adaptStop,
		afmDone:   make(chan struct{}),
		computeID: cfg.Name + "-compute",
		frameCap:  tuning.FrameCapacity,
		eof:       make([]atomic.Bool, n),
	}
	f.quota = cfg.BatchSize / n
	if f.quota < 1 {
		f.quota = 1
	}
	f.parsers = make([]*adm.Parser, n)
	for p := range f.parsers {
		f.parsers[p] = adm.NewParser()
	}

	// Partition holders, registered with each node's manager.
	for p := 0; p < n; p++ {
		ih := hyracks.NewPassiveHolder(tuning.HolderCapacity)
		sh := hyracks.NewActiveHolder(tuning.HolderCapacity)
		if err := c.Node(p).Holders.RegisterPassive(cfg.Name, ih); err != nil {
			jobCancel()
			return nil, err
		}
		if err := c.Node(p).Holders.RegisterActive(cfg.Name, sh); err != nil {
			jobCancel()
			return nil, err
		}
		f.intakeHolders = append(f.intakeHolders, ih)
		f.storageHolders = append(f.storageHolders, sh)
	}

	// Storage job (long-running); the fused-insert ablation folds
	// storage into each computing job instead.
	if !cfg.FusedInsert {
		storageSpec := f.buildStorageSpec()
		f.storageJob, err = c.StartJob(jobCtx, storageSpec, cfg.Name+"-storage")
		if err != nil {
			f.teardownHolders()
			jobCancel()
			return nil, err
		}
	}

	// Intake job (long-running).
	intakeSpec, err := f.buildIntakeSpec()
	if err == nil {
		f.intakeJob, err = c.StartJob(jobCtx, intakeSpec, cfg.Name+"-intake")
	}
	if err != nil {
		f.teardownHolders()
		jobCancel()
		return nil, err
	}

	// Watchdog: a storage-job failure must tear the feed down, or the
	// AFM would block pushing batches into dead storage holders.
	if f.storageJob != nil {
		go func() {
			if werr := f.storageJob.Wait(); werr != nil {
				f.failAsync(werr)
			}
		}()
	}

	// Predeploy the computing job template, then let the AFM invoke it
	// per batch (unless the predeploy ablation is off). The spec
	// skeleton — descriptors, closures, connectors — is built exactly
	// once here; invocations only swap in fresh per-batch state via
	// curInv, honoring the paper's predeployed-job optimization.
	if !cfg.RecompilePerBatch {
		if err := c.Predeploy(f.computeID); err != nil {
			f.teardownHolders()
			jobCancel()
			return nil, err
		}
		f.computeSpec = f.buildComputeSpec()
	}
	go f.runAFM()
	return f, nil
}

// buildIntakeSpec assembles adapter sources → round-robin → passive
// intake holders.
func (f *Feed) buildIntakeSpec() (*hyracks.JobSpec, error) {
	spec := hyracks.NewJobSpec()
	spec.QueueCapacity = f.cluster.Tuning().HolderCapacity
	cfg := f.cfg
	// The collector consumes whole frames (PullFrames never splits one,
	// so arenas travel intact), which makes the intake frame size the
	// batch-size granularity: cap it at the per-node quota so a small
	// BatchSize still yields small, frequent computing-job batches.
	intakeCap := f.frameCap
	if f.quota < intakeCap {
		intakeCap = f.quota
	}
	adapterOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "adapter",
		Parallelism: len(cfg.IntakeNodes),
		NodeOf:      func(p int) int { return cfg.IntakeNodes[p] },
		NewSource: func(p int) (hyracks.Source, error) {
			adapter, err := cfg.NewAdapter(p)
			if err != nil {
				return nil, err
			}
			return hyracks.SourceFunc(func(tc *hyracks.TaskContext, out hyracks.Writer) error {
				if err := out.Open(); err != nil {
					return err
				}
				b := hyracks.NewFrameBuilder(intakeCap, out)
				// Raw record bytes ride the frame's raw lane untouched —
				// no string wrapping, no copy; the collector's parser
				// reads them directly. Adapters that recycle their read
				// buffer (VolatileEmits) get staged into the frame's
				// pooled line arena instead: still no per-record
				// allocation, just one memcpy.
				emit := b.AddRaw
				if v, ok := adapter.(VolatileAdapter); ok && v.VolatileEmits() {
					emit = b.AddRawCopy
				}
				err := adapter.Run(f.adaptCtx, emit)
				if err != nil && !(errors.Is(err, context.Canceled) && f.adaptCtx.Err() != nil) {
					return err
				}
				return b.Flush()
			}), nil
		},
	})
	holderOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "intake-partition-holder",
		Parallelism: f.cluster.NumNodes(),
		NewPipe: func(p int) (hyracks.Pipe, error) {
			return f.intakeHolders[p], nil
		},
	})
	spec.Connect(adapterOp, holderOp, hyracks.RoundRobin, nil)
	return spec, nil
}

// buildStorageSpec assembles active storage holders → hash partitioner →
// LSM partition writers.
func (f *Feed) buildStorageSpec() *hyracks.JobSpec {
	spec := hyracks.NewJobSpec()
	spec.QueueCapacity = f.cluster.Tuning().HolderCapacity
	holderOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "storage-partition-holder",
		Parallelism: f.cluster.NumNodes(),
		NewSource: func(p int) (hyracks.Source, error) {
			return f.storageHolders[p], nil
		},
	})
	pk := f.ds.PrimaryKey()
	writerOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "storage-partition-writer",
		Parallelism: f.cluster.NumNodes(),
		NewPipe: func(p int) (hyracks.Pipe, error) {
			// Each frame lands in the memtable as one batch operation
			// (one WAL append+commit, one lock); see newStorageWriter.
			return newStorageWriter(f.ds.Partition(p), pk, &f.stats.Stored), nil
		},
	})
	spec.Connect(holderOp, writerOp, hyracks.HashPartition, func(rec adm.Value) uint64 {
		return adm.Hash(rec.Field(pk))
	})
	return spec
}

// invocation is the per-batch state of one computing job.
type invocation struct {
	prepared  *query.PreparedEnrich
	instances []udf.Instance
	records   atomic.Int64
}

// newInvocation performs the per-batch build phase: Prepare fresh SQL++
// state from current snapshots, or re-initialize native instances so
// resource-file updates are observed.
func (f *Feed) newInvocation() (*invocation, error) {
	inv := &invocation{}
	if f.plan != nil {
		plan := f.plan
		if f.cfg.RecompilePerBatch {
			// Ablation: repeat the whole compilation the predeployed-job
			// technique would have cached.
			fn, _ := f.cluster.Function(f.cfg.Function)
			recompiled, err := query.CompileEnrich(fn.Name, fn.Params, fn.Body, f.cluster,
				query.PlanOptions{DisableIndexes: f.cfg.DisableIndexes})
			if err != nil {
				return nil, err
			}
			plan = recompiled
		}
		pe, err := plan.Prepare(f.cluster)
		if err != nil {
			return nil, err
		}
		inv.prepared = pe
	}
	if f.native != nil {
		inv.instances = make([]udf.Instance, f.cluster.NumNodes())
		for p := range inv.instances {
			inst := f.native.New()
			if err := inst.Initialize(p); err != nil {
				return nil, err
			}
			inv.instances[p] = inst
		}
	}
	return inv, nil
}

// buildComputeSpec assembles the computing job: collector+parser → UDF
// evaluator → feed pipeline sink, one instance per node, no cross-node
// exchange (the storage job's hash partitioner does the routing). The
// spec is a reusable skeleton: operator factories resolve the current
// per-batch state through f.curInv when an invocation instantiates
// them, so the predeployed path builds it once and reuses it for every
// batch.
func (f *Feed) buildComputeSpec() *hyracks.JobSpec {
	spec := hyracks.NewJobSpec()
	spec.QueueCapacity = f.cluster.Tuning().HolderCapacity
	n := f.cluster.NumNodes()

	collectorOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "collector-parser",
		Parallelism: n,
		NewSource: func(p int) (hyracks.Source, error) {
			inv := f.curInv.Load()
			return hyracks.SourceFunc(func(tc *hyracks.TaskContext, out hyracks.Writer) error {
				if err := out.Open(); err != nil {
					return err
				}
				if f.eof[p].Load() {
					return nil
				}
				// Pull whole frames: nothing is copied out of them and
				// each input frame's arena (the socket adapter's line
				// bytes) stays attached until its records are parsed.
				frames, eof, err := f.intakeHolders[p].PullFrames(tc.Ctx, f.quota)
				if err != nil {
					return err
				}
				if eof {
					f.eof[p].Store(true)
				}
				// Parse straight into a pooled record spine + byte
				// arena that together become the outgoing frame:
				// ParseInto appends each record to the caller-owned
				// spine and writes string/object payloads into the
				// caller's arena, so a record costs no per-value
				// allocations.
				parser := f.parsers[p]
				spine := hyracks.GetRecordSlice(f.frameCap)
				arena := hyracks.GetArena()
				emit := func(rec adm.Value) error {
					spine = append(spine, rec)
					inv.records.Add(1)
					if len(spine) < f.frameCap {
						return nil
					}
					// Push transfers spine+arena ownership even when it
					// fails; draw replacements only on success so a
					// failed batch doesn't strand fresh pool objects.
					if err := out.Push(hyracks.Frame{Records: spine, Arena: arena}); err != nil {
						spine, arena = nil, nil
						return err
					}
					spine = hyracks.GetRecordSlice(f.frameCap)
					arena = hyracks.GetArena()
					return nil
				}
				for _, fr := range frames {
					for _, raw := range fr.Raw {
						n := len(spine)
						var perr error
						spine, perr = parser.ParseInto(raw, spine, arena)
						if perr != nil {
							f.stats.ParseErrors.Add(1)
							continue
						}
						rec := spine[n]
						spine = spine[:n]
						if f.dt != nil {
							v, verr := f.dt.Validate(rec)
							if verr != nil {
								f.stats.ParseErrors.Add(1)
								continue
							}
							rec = v
						}
						if err := emit(rec); err != nil {
							return err
						}
					}
					// Parsed (record-lane) frames reaching the intake
					// holder are forwarded record by record too; their
					// headers keep referencing the input frame's arena,
					// so only its spines recycle. Raw-only frames are
					// fully consumed by the parse above — strings were
					// copied into our arena — and recycle completely,
					// returning the adapter's line arena to the pool.
					for _, rec := range fr.Records {
						if f.dt != nil {
							v, verr := f.dt.Validate(rec)
							if verr != nil {
								f.stats.ParseErrors.Add(1)
								continue
							}
							rec = v
						}
						if err := emit(rec); err != nil {
							return err
						}
					}
					if len(fr.Records) > 0 {
						hyracks.RecycleFrameSpines(fr)
					} else {
						hyracks.RecycleFrame(fr)
					}
				}
				if len(spine) == 0 {
					hyracks.PutRecordSlice(spine)
					hyracks.PutArena(arena)
					return nil
				}
				return out.Push(hyracks.Frame{Records: spine, Arena: arena})
			}), nil
		},
	})

	evalOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "udf-evaluator",
		Parallelism: n,
		NewPipe: func(p int) (hyracks.Pipe, error) {
			inv := f.curInv.Load()
			return &hyracks.MapPipe{Fn: func(rec adm.Value) (adm.Value, bool, error) {
				switch {
				case inv.prepared != nil:
					v, err := inv.prepared.EvalRecord(rec)
					if err != nil {
						return adm.Value{}, false, err
					}
					return v, true, nil
				case inv.instances != nil:
					v, err := inv.instances[p].Evaluate(rec)
					if err != nil {
						return adm.Value{}, false, err
					}
					return v, true, nil
				default:
					return rec, true, nil
				}
			}}, nil
		},
	})

	spec.Connect(collectorOp, evalOp, hyracks.OneToOne, nil)

	if f.cfg.FusedInsert {
		// Section 5.1's insert job: UDF evaluation and storage write in
		// one job — the write (and its log flush) gates the invocation.
		pk := f.ds.PrimaryKey()
		writerOp := spec.AddOperator(&hyracks.Descriptor{
			Name:        "fused-storage-writer",
			Parallelism: n,
			NewPipe: func(p int) (hyracks.Pipe, error) {
				return newStorageWriter(f.ds.Partition(p), pk, &f.stats.Stored), nil
			},
		})
		spec.Connect(evalOp, writerOp, hyracks.HashPartition, func(rec adm.Value) uint64 {
			return adm.Hash(rec.Field(pk))
		})
		return spec
	}

	sinkOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "feed-pipeline-sink",
		Parallelism: n,
		NewPipe: func(p int) (hyracks.Pipe, error) {
			return &hyracks.SinkPipe{
				Fn: func(tc *hyracks.TaskContext, fr hyracks.Frame) error {
					return f.storageHolders[p].Push(tc.Ctx, fr)
				},
			}, nil
		},
	})
	spec.Connect(evalOp, sinkOp, hyracks.OneToOne, nil)
	return spec
}

// runAFM is the Active Feed Manager loop: keep invoking computing jobs
// while any intake partition still has data, then shut the storage job
// down.
func (f *Feed) runAFM() {
	defer close(f.afmDone)
	for f.jobCtx.Err() == nil && !f.allEOF() {
		start := time.Now()
		inv, err := f.newInvocation()
		if err != nil {
			f.fail(err)
			break
		}
		f.curInv.Store(inv)
		var job *hyracks.Job
		if f.cfg.RecompilePerBatch {
			// Ablation: rebuild the whole spec skeleton per batch, the
			// cost the predeployed path caches away.
			job, err = f.cluster.StartJob(f.jobCtx, f.buildComputeSpec(), f.computeID)
		} else {
			job, err = f.cluster.InvokePredeployed(f.jobCtx, f.computeID, f.computeSpec)
		}
		if err != nil {
			f.fail(err)
			break
		}
		if err := job.Wait(); err != nil {
			f.fail(err)
			break
		}
		f.stats.Invocations.Add(1)
		f.stats.BatchNanos.Add(time.Since(start).Nanoseconds())
		f.stats.Ingested.Add(inv.records.Load())
	}
	for _, sh := range f.storageHolders {
		sh.CloseInput()
	}
}

func (f *Feed) allEOF() bool {
	for i := range f.eof {
		if !f.eof[i].Load() {
			return false
		}
	}
	return true
}

func (f *Feed) fail(err error) {
	if err == nil {
		return
	}
	f.errOnce.Do(func() { f.feedErr = err })
	f.jobCancel()
}

// failAsync records a failure from outside the AFM goroutine (the
// storage watchdog).
func (f *Feed) failAsync(err error) { f.fail(err) }

// Stop gracefully ends the feed: adapters stop taking new data, the
// remaining batches drain, then the storage job finishes.
func (f *Feed) Stop() { f.adaptStop() }

// Wait blocks until the whole pipeline has drained and returns the first
// error. For generator-backed feeds it returns once all generated data
// is stored; socket/channel feeds need Stop first.
func (f *Feed) Wait() error {
	intakeErr := f.intakeJob.Wait()
	<-f.afmDone
	var storageErr error
	if f.storageJob != nil {
		storageErr = f.storageJob.Wait()
	}
	f.teardownHolders()
	f.cluster.Undeploy(f.computeID)
	f.jobCancel()
	switch {
	case f.feedErr != nil:
		return f.feedErr
	case intakeErr != nil:
		return intakeErr
	default:
		return storageErr
	}
}

func (f *Feed) teardownHolders() {
	for p := 0; p < f.cluster.NumNodes(); p++ {
		f.cluster.Node(p).Holders.Unregister(f.cfg.Name)
	}
}
