package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/hyracks"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/udf"
)

// Config describes one feed connection (the union of CREATE FEED and
// CONNECT FEED).
type Config struct {
	// Name identifies the feed (holder registration, job ids).
	Name string
	// Dataset is the target dataset.
	Dataset string
	// Function is the attached UDF name ("" for none): a catalog SQL++
	// function or a registered native UDF.
	Function string
	// BatchSize is the records consumed per computing-job invocation
	// across the cluster (the paper's 1X = 420).
	BatchSize int
	// IntakeNodes lists the nodes running adapters (default node 0; all
	// nodes = the paper's "balanced" variants). The slice index is the
	// adapter's *slot*: checkpoints are scoped per slot, and failover
	// re-places a dead slot's node while preserving the slot identity.
	IntakeNodes []int
	// NewAdapter builds the adapter for intake slot i (0 ≤ i <
	// len(IntakeNodes)).
	NewAdapter func(i int) (Adapter, error)
	// DisableIndexes applies the paper's no-index query hint (Naive
	// Nearby Monuments).
	DisableIndexes bool
	// Natives resolves native ("Java") UDFs.
	Natives *udf.Registry

	// Congestion selects the intake overflow policy: "spill" (default;
	// loss-free, bounded memory), "shed", "sample", or "backpressure"
	// (the pre-robustness behaviour: block the adapter).
	Congestion string
	// SampleRate is the fraction of congested arrivals the "sample"
	// policy keeps (default 0.1).
	SampleRate float64
	// MaxSpilledFrames bounds the spill lane per intake partition
	// (default 4096 frames); exhausting it fails the feed with
	// ErrFeedOverloaded.
	MaxSpilledFrames int
	// CheckpointEvery is how many computing-job invocations pass between
	// checkpoints (default 1: checkpoint after every stored batch).
	CheckpointEvery int
	// Nodes lists the cluster nodes this pipeline runs on (default all).
	// Failover restarts pass the surviving nodes here; every dataset
	// partition stays writable via the surviving nodes (shared-storage
	// model, see docs/ARCHITECTURE.md).
	Nodes []int
	// Stats, when non-nil, is the counter block to use — failover
	// restarts hand the previous incarnation's block over so cumulative
	// counters survive the hop.
	Stats *Stats

	// RecompilePerBatch disables the predeployed-job optimization: every
	// invocation re-runs UDF compilation and pays full dispatch overhead
	// (ablation 2 in docs/ARCHITECTURE.md).
	RecompilePerBatch bool
	// FusedInsert disables the decoupled pipeline: each invocation is a
	// single insert job whose UDF evaluation and storage write run
	// sequentially (Section 5.1's intermediate design; ablation 3).
	FusedInsert bool
}

// Stats are live feed counters. One block can outlive a single pipeline
// incarnation: failover restarts share it, so the counters are
// cumulative across partition failures.
type Stats struct {
	// Ingested counts records consumed by computing jobs.
	Ingested atomic.Int64
	// Stored counts records written to storage partitions.
	Stored atomic.Int64
	// ParseErrors counts malformed records dropped by the parser.
	ParseErrors atomic.Int64
	// Invocations counts computing-job invocations.
	Invocations atomic.Int64
	// BatchNanos accumulates computing-job wall time (refresh periods).
	BatchNanos atomic.Int64

	// SpilledFrames/SpilledRecords count intake overflow diverted to the
	// disk spill lane (Spill policy; nothing is lost).
	SpilledFrames  atomic.Int64
	SpilledRecords atomic.Int64
	// ShedFrames/ShedRecords count intake overflow dropped by the Shed
	// policy — exact loss accounting.
	ShedFrames  atomic.Int64
	ShedRecords atomic.Int64
	// SampledFrames/SampledRecords count intake overflow dropped by the
	// Sample policy (the kept fraction is not counted here).
	SampledFrames  atomic.Int64
	SampledRecords atomic.Int64
	// LastCheckpoint is the highest source offset durably checkpointed
	// (across adapter slots).
	LastCheckpoint atomic.Uint64
	// Resumptions counts failover restarts of the pipeline.
	Resumptions atomic.Int64
}

// RefreshPeriod returns the mean computing-job duration — the paper's
// Figure 26 metric.
func (s *Stats) RefreshPeriod() time.Duration {
	inv := s.Invocations.Load()
	if inv == 0 {
		return 0
	}
	return time.Duration(s.BatchNanos.Load() / inv)
}

// defaultMaxSpilledFrames bounds the spill lane when the config does
// not: at the default 128-record frames this is ~0.5M records of
// overflow per intake partition before the feed declares overload.
const defaultMaxSpilledFrames = 4096

// Feed is a running dynamic-framework feed.
type Feed struct {
	cfg     Config
	cluster *cluster.Cluster
	ds      *lsm.Dataset
	dt      *adm.Datatype

	plan   *query.EnrichPlan // SQL++ attachment
	native *udf.Native       // native attachment

	// nodes are the cluster nodes this incarnation runs on (cfg.Nodes or
	// all); pipeline partition p lives on cluster node nodes[p].
	nodes []int

	intakeHolders  []*hyracks.PassiveHolder
	storageHolders []*hyracks.ActiveHolder
	spillers       []*lsm.SpillQueue // per intake partition; nil entries when not spilling
	intakeJob      *hyracks.Job
	storageJob     *hyracks.Job

	// parsers[p] is partition p's reusable JSON parser; its field-name
	// intern table and size hints stay warm across invocations. Each is
	// only touched by the collector instance for partition p, and
	// invocations run sequentially, so no locking is needed.
	parsers []*adm.Parser

	// computeSpec is the predeployed computing job's spec skeleton,
	// built once at start; per-invocation state lives in curInv. The
	// RecompilePerBatch ablation rebuilds the spec every batch instead.
	computeSpec *hyracks.JobSpec
	curInv      atomic.Pointer[invocation]

	eof []atomic.Bool // per pipeline partition: intake holder fully drained

	// At-least-once machinery: trackers[slot] accumulates delivered
	// offset ranges for adapter slot `slot`; lastCkpt[slot] is the last
	// watermark written through the partition WALs (AFM goroutine only);
	// sunk counts records pushed into storage holders, the barrier
	// target a checkpoint waits on. Both sunk and the barrier count
	// this incarnation only: stats.Stored is cumulative across failover
	// restarts (the manager hands the successor the same Stats block),
	// so storedBase snapshots it at Start and the barrier compares the
	// delta.
	trackers   []*offsetTracker
	lastCkpt   []uint64
	sunk       atomic.Int64
	storedBase int64

	jobCtx    context.Context
	jobCancel context.CancelFunc
	adaptCtx  context.Context
	adaptStop context.CancelFunc
	afmDone   chan struct{}
	computeID string
	frameCap  int
	quota     int

	stats   *Stats
	errOnce sync.Once
	// feedErr holds the first pipeline failure. It is written once by
	// fail() — which runs on the AFM goroutine and the intake/storage
	// watchdogs — and read by waitInner, so it must be an atomic, not a
	// plain field guarded only on the write side.
	feedErr atomic.Pointer[error]

	waitOnce sync.Once
	waitErr  error
}

// Stats returns the feed's counters.
func (f *Feed) Stats() *Stats { return f.stats }

// Buffered reports the frames currently ringed in intake memory — the
// bounded-intake gauge (never exceeds partitions × ring capacity).
func (f *Feed) Buffered() int {
	frames := 0
	for _, h := range f.intakeHolders {
		frames += h.Pending()
	}
	return frames
}

// SpillBacklog reports the frames currently parked in spill lanes.
func (f *Feed) SpillBacklog() int {
	frames := 0
	for _, h := range f.intakeHolders {
		frames += h.SpilledPending()
	}
	return frames
}

// Config returns the feed's configuration (the manager's failover path
// rebuilds a successor config from it).
func (f *Feed) Config() Config { return f.cfg }

// resolveFunction splits the attached function into a native UDF or a
// compiled SQL++ enrichment plan.
func resolveFunction(c *cluster.Cluster, cfg Config) (*query.EnrichPlan, *udf.Native, error) {
	if cfg.Function == "" {
		return nil, nil, nil
	}
	if cfg.Natives != nil {
		if n, ok := cfg.Natives.Lookup(cfg.Function); ok {
			return nil, n, nil
		}
	}
	fn, ok := c.Function(cfg.Function)
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown function %q", cfg.Function)
	}
	if fn.Native != nil {
		// A scalar native catalog function applied record-wise.
		n := &udf.Native{
			Name: fn.Name,
			New: func() udf.Instance {
				return &udf.FuncInstance{EvalFn: func(rec adm.Value) (adm.Value, error) {
					return fn.Native([]adm.Value{rec})
				}}
			},
		}
		return nil, n, nil
	}
	plan, err := query.CompileEnrich(fn.Name, fn.Params, fn.Body, c,
		query.PlanOptions{DisableIndexes: cfg.DisableIndexes})
	if err != nil {
		return nil, nil, err
	}
	return plan, nil, nil
}

// congestionOptions translates the config policy into holder options
// for intake partition p, creating the spill lane when needed.
func (f *Feed) congestionOptions(p int) (hyracks.HolderOptions, error) {
	tuning := f.cluster.Tuning()
	opts := hyracks.HolderOptions{Capacity: tuning.HolderCapacity}
	policy := f.cfg.Congestion
	switch policy {
	case "", "spill":
		maxSpill := f.cfg.MaxSpilledFrames
		if maxSpill <= 0 {
			maxSpill = defaultMaxSpilledFrames
		}
		sq, err := f.newSpillQueue(p)
		if err != nil {
			return opts, err
		}
		f.spillers[p] = sq
		opts.Policy = hyracks.Spill
		opts.Spiller = sq
		opts.MaxSpilledFrames = maxSpill
		opts.Overloaded = ErrFeedOverloaded
		opts.OnSpill = func(records int) {
			f.stats.SpilledFrames.Add(1)
			f.stats.SpilledRecords.Add(int64(records))
		}
	case "shed":
		opts.Policy = hyracks.Shed
		opts.OnDrop = f.dropFrame
	case "sample":
		rate := f.cfg.SampleRate
		if rate <= 0 {
			rate = 0.1
		}
		opts.Policy = hyracks.Sample
		opts.SampleRate = rate
		opts.OnDrop = f.dropFrame
	case "backpressure":
		opts.Policy = hyracks.Backpressure
	default:
		return opts, fmt.Errorf("core: unknown congestion policy %q", policy)
	}
	return opts, nil
}

// dropFrame is the Shed/Sample drop path: count exactly what was lost,
// report the offsets as handled (data dropped by policy must not hold
// the resume watermark back), and recycle.
func (f *Feed) dropFrame(fr hyracks.Frame, sampled bool) {
	n := int64(fr.Len())
	if sampled {
		f.stats.SampledFrames.Add(1)
		f.stats.SampledRecords.Add(n)
	} else {
		f.stats.ShedFrames.Add(1)
		f.stats.ShedRecords.Add(n)
	}
	f.markDelivered(fr)
	hyracks.RecycleFrame(fr)
}

// markDelivered reports a frame's offset range to its adapter slot's
// tracker (no-op for frames without provenance).
func (f *Feed) markDelivered(fr hyracks.Frame) {
	if fr.FirstOff == 0 || fr.Adapter >= len(f.trackers) {
		return
	}
	f.trackers[fr.Adapter].mark(fr.FirstOff, fr.LastOff)
}

// newSpillQueue builds the disk lane for intake partition p through the
// same FS seam as the storage layer: the tuning's injected FS (crash
// tests), the real filesystem under DataDir, or a private MemFS for
// fully in-memory clusters (where spilling buys bounded *feed* memory,
// not durability — which spill never promises anyway).
func (f *Feed) newSpillQueue(p int) (*lsm.SpillQueue, error) {
	tuning := f.cluster.Tuning()
	fsys := tuning.StorageFS
	base := tuning.DataDir
	if fsys == nil {
		if base != "" {
			fsys = lsm.NewOSFS()
		} else {
			fsys = lsm.NewMemFS()
		}
	}
	dir := ".spill/" + f.cfg.Name
	if base != "" {
		dir = base + "/" + dir
	}
	return lsm.NewSpillQueue(fsys, dir, fmt.Sprintf("p%03d.spill", p))
}

// Start launches the full dynamic pipeline: storage job, intake job,
// predeployed computing job, and the Active Feed Manager loop.
func Start(ctx context.Context, c *cluster.Cluster, cfg Config) (*Feed, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 420 // the paper's 1X
	}
	if len(cfg.IntakeNodes) == 0 {
		cfg.IntakeNodes = []int{0}
	}
	if cfg.NewAdapter == nil {
		return nil, errors.New("core: feed needs an adapter factory")
	}
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = make([]int, c.NumNodes())
		for i := range cfg.Nodes {
			cfg.Nodes[i] = i
		}
	}
	for _, node := range cfg.Nodes {
		if !c.NodeAlive(node) {
			return nil, fmt.Errorf("core: node %d: %w", node, cluster.ErrPartitionDown)
		}
	}
	ds, ok := c.Dataset(cfg.Dataset)
	if !ok {
		return nil, fmt.Errorf("core: unknown dataset %q", cfg.Dataset)
	}
	plan, native, err := resolveFunction(c, cfg)
	if err != nil {
		return nil, err
	}

	n := len(cfg.Nodes)
	tuning := c.Tuning()
	stats := cfg.Stats
	if stats == nil {
		stats = &Stats{}
	}
	jobCtx, jobCancel := context.WithCancel(ctx)
	adaptCtx, adaptStop := context.WithCancel(jobCtx)
	f := &Feed{
		cfg:       cfg,
		cluster:   c,
		ds:        ds,
		dt:        ds.Datatype(),
		plan:      plan,
		native:    native,
		nodes:     cfg.Nodes,
		jobCtx:    jobCtx,
		jobCancel: jobCancel,
		adaptCtx:  adaptCtx,
		adaptStop: adaptStop,
		afmDone:   make(chan struct{}),
		computeID: cfg.Name + "-compute",
		frameCap:  tuning.FrameCapacity,
		eof:       make([]atomic.Bool, n),
		stats:     stats,
		spillers:  make([]*lsm.SpillQueue, n),
		// On failover the manager passes the old incarnation's Stats, so
		// Stored may already be non-zero; the storage barrier measures
		// this incarnation's stores relative to this snapshot.
		storedBase: stats.Stored.Load(),
	}
	f.quota = cfg.BatchSize / n
	if f.quota < 1 {
		f.quota = 1
	}
	f.parsers = make([]*adm.Parser, n)
	for p := range f.parsers {
		f.parsers[p] = adm.NewParser()
	}

	// Resume state: one tracker per adapter slot, seeded from the last
	// durable checkpoint so the watermark never regresses across
	// restarts.
	f.trackers = make([]*offsetTracker, len(cfg.IntakeNodes))
	f.lastCkpt = make([]uint64, len(cfg.IntakeNodes))
	for i := range f.trackers {
		f.trackers[i] = &offsetTracker{}
		if w := ds.Checkpoint(ckptScope(cfg.Name, i)); w > 0 {
			f.trackers[i].seed(w)
			f.lastCkpt[i] = w
			if w > stats.LastCheckpoint.Load() {
				stats.LastCheckpoint.Store(w)
			}
		}
	}

	// Partition holders, registered with each node's manager. Intake
	// holders carry the feed's congestion policy (bounded ring + spill
	// lane); storage holders keep plain backpressure — that is the
	// signal the AFM's batching responds to.
	for p := 0; p < n; p++ {
		opts, err := f.congestionOptions(p)
		if err != nil {
			f.teardownHolders()
			jobCancel()
			return nil, err
		}
		ih := hyracks.NewPassiveHolderOpts(opts)
		sh := hyracks.NewActiveHolder(tuning.HolderCapacity)
		if err := c.Node(f.nodes[p]).Holders.RegisterPassive(cfg.Name, ih); err != nil {
			f.teardownHolders()
			jobCancel()
			return nil, err
		}
		if err := c.Node(f.nodes[p]).Holders.RegisterActive(cfg.Name, sh); err != nil {
			f.teardownHolders()
			jobCancel()
			return nil, err
		}
		f.intakeHolders = append(f.intakeHolders, ih)
		f.storageHolders = append(f.storageHolders, sh)
	}

	// Storage job (long-running); the fused-insert ablation folds
	// storage into each computing job instead.
	if !cfg.FusedInsert {
		storageSpec := f.buildStorageSpec()
		f.storageJob, err = c.StartJob(jobCtx, storageSpec, cfg.Name+"-storage")
		if err != nil {
			f.teardownHolders()
			jobCancel()
			return nil, err
		}
	}

	// Intake job (long-running).
	intakeSpec, err := f.buildIntakeSpec()
	if err == nil {
		f.intakeJob, err = c.StartJob(jobCtx, intakeSpec, cfg.Name+"-intake")
	}
	if err != nil {
		f.teardownHolders()
		jobCancel()
		return nil, err
	}

	// Watchdogs: a storage-job failure must tear the feed down, or the
	// AFM would block pushing batches into dead storage holders; an
	// intake-job failure (spill lane exhausted, partition down) must
	// too, or the AFM would wait forever for frames that cannot come.
	if f.storageJob != nil {
		go func() {
			if werr := f.storageJob.Wait(); werr != nil {
				f.failAsync(werr)
			}
		}()
	}
	go func() {
		if werr := f.intakeJob.Wait(); werr != nil {
			f.failAsync(werr)
		}
	}()

	// Predeploy the computing job template, then let the AFM invoke it
	// per batch (unless the predeploy ablation is off). The spec
	// skeleton — descriptors, closures, connectors — is built exactly
	// once here; invocations only swap in fresh per-batch state via
	// curInv, honoring the paper's predeployed-job optimization.
	if !cfg.RecompilePerBatch {
		if err := c.Predeploy(f.computeID); err != nil {
			f.teardownHolders()
			jobCancel()
			return nil, err
		}
		f.computeSpec = f.buildComputeSpec()
	}
	go f.runAFM()
	return f, nil
}

// buildIntakeSpec assembles adapter sources → round-robin → passive
// intake holders. Resumable adapters run from their slot's recovered
// checkpoint and stamp offset provenance onto every frame.
func (f *Feed) buildIntakeSpec() (*hyracks.JobSpec, error) {
	spec := hyracks.NewJobSpec()
	spec.QueueCapacity = f.cluster.Tuning().HolderCapacity
	cfg := f.cfg
	// The collector consumes whole frames (PullFrames never splits one,
	// so arenas travel intact), which makes the intake frame size the
	// batch-size granularity: cap it at the per-node quota so a small
	// BatchSize still yields small, frequent computing-job batches.
	intakeCap := f.frameCap
	if f.quota < intakeCap {
		intakeCap = f.quota
	}
	adapterOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "adapter",
		Parallelism: len(cfg.IntakeNodes),
		NodeOf:      func(p int) int { return cfg.IntakeNodes[p] },
		NewSource: func(p int) (hyracks.Source, error) {
			adapter, err := cfg.NewAdapter(p)
			if err != nil {
				return nil, err
			}
			return hyracks.SourceFunc(func(tc *hyracks.TaskContext, out hyracks.Writer) error {
				if err := out.Open(); err != nil {
					return err
				}
				b := hyracks.NewFrameBuilder(intakeCap, out)
				// Raw record bytes ride the frame's raw lane untouched —
				// no string wrapping, no copy; the collector's parser
				// reads them directly. Adapters that recycle their read
				// buffer (VolatileEmits) get staged into the frame's
				// pooled line arena instead: still no per-record
				// allocation, just one memcpy.
				emit := b.AddRaw
				if v, ok := adapter.(VolatileAdapter); ok && v.VolatileEmits() {
					emit = b.AddRawCopy
				}
				var err error
				if ra, ok := adapter.(ResumableAdapter); ok {
					// Resume past everything already checkpointed; each
					// emit notes its offset so the frame carries the
					// provenance the checkpointer needs.
					b.SetAdapter(p)
					from := f.trackers[p].cut()
					err = ra.RunFrom(f.adaptCtx, from, func(off uint64, raw []byte) error {
						b.NoteOffset(off)
						return emit(raw)
					})
				} else {
					err = adapter.Run(f.adaptCtx, emit)
				}
				if err != nil && !(errors.Is(err, context.Canceled) && f.adaptCtx.Err() != nil) {
					return err
				}
				return b.Flush()
			}), nil
		},
	})
	holderOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "intake-partition-holder",
		Parallelism: len(f.nodes),
		NodeOf:      func(p int) int { return f.nodes[p] },
		NewPipe: func(p int) (hyracks.Pipe, error) {
			return f.intakeHolders[p], nil
		},
	})
	spec.Connect(adapterOp, holderOp, hyracks.RoundRobin, nil)
	return spec, nil
}

// buildStorageSpec assembles active storage holders → hash partitioner →
// LSM partition writers. Holder parallelism follows the live nodes;
// writer parallelism always equals the dataset's partition count so
// primary-key routing is stable across failover (dead nodes' partitions
// stay writable through the shared-storage model — surviving nodes host
// their writers).
func (f *Feed) buildStorageSpec() *hyracks.JobSpec {
	spec := hyracks.NewJobSpec()
	spec.QueueCapacity = f.cluster.Tuning().HolderCapacity
	holderOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "storage-partition-holder",
		Parallelism: len(f.nodes),
		NodeOf:      func(p int) int { return f.nodes[p] },
		NewSource: func(p int) (hyracks.Source, error) {
			return f.storageHolders[p], nil
		},
	})
	pk := f.ds.PrimaryKey()
	writerOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "storage-partition-writer",
		Parallelism: f.ds.NumPartitions(),
		NodeOf:      func(p int) int { return f.nodes[p%len(f.nodes)] },
		NewPipe: func(p int) (hyracks.Pipe, error) {
			// Each frame lands in the memtable as one batch operation
			// (one WAL append+commit, one lock); see newStorageWriter.
			return newStorageWriter(f.ds.Partition(p), pk, &f.stats.Stored), nil
		},
	})
	spec.Connect(holderOp, writerOp, hyracks.HashPartition, func(rec adm.Value) uint64 {
		return adm.Hash(rec.Field(pk))
	})
	return spec
}

// invocation is the per-batch state of one computing job.
type invocation struct {
	prepared  *query.PreparedEnrich
	instances []udf.Instance
	records   atomic.Int64
}

// newInvocation performs the per-batch build phase: Prepare fresh SQL++
// state from current snapshots, or re-initialize native instances so
// resource-file updates are observed.
func (f *Feed) newInvocation() (*invocation, error) {
	inv := &invocation{}
	if f.plan != nil {
		plan := f.plan
		if f.cfg.RecompilePerBatch {
			// Ablation: repeat the whole compilation the predeployed-job
			// technique would have cached.
			fn, _ := f.cluster.Function(f.cfg.Function)
			recompiled, err := query.CompileEnrich(fn.Name, fn.Params, fn.Body, f.cluster,
				query.PlanOptions{DisableIndexes: f.cfg.DisableIndexes})
			if err != nil {
				return nil, err
			}
			plan = recompiled
		}
		pe, err := plan.Prepare(f.cluster)
		if err != nil {
			return nil, err
		}
		inv.prepared = pe
	}
	if f.native != nil {
		inv.instances = make([]udf.Instance, len(f.nodes))
		for p := range inv.instances {
			inst := f.native.New()
			if err := inst.Initialize(p); err != nil {
				return nil, err
			}
			inv.instances[p] = inst
		}
	}
	return inv, nil
}

// buildComputeSpec assembles the computing job: collector+parser → UDF
// evaluator → feed pipeline sink, one instance per live node, no
// cross-node exchange (the storage job's hash partitioner does the
// routing). The spec is a reusable skeleton: operator factories resolve
// the current per-batch state through f.curInv when an invocation
// instantiates them, so the predeployed path builds it once and reuses
// it for every batch.
func (f *Feed) buildComputeSpec() *hyracks.JobSpec {
	spec := hyracks.NewJobSpec()
	spec.QueueCapacity = f.cluster.Tuning().HolderCapacity
	n := len(f.nodes)
	nodeOf := func(p int) int { return f.nodes[p] }

	collectorOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "collector-parser",
		Parallelism: n,
		NodeOf:      nodeOf,
		NewSource: func(p int) (hyracks.Source, error) {
			inv := f.curInv.Load()
			return hyracks.SourceFunc(func(tc *hyracks.TaskContext, out hyracks.Writer) error {
				if err := out.Open(); err != nil {
					return err
				}
				if f.eof[p].Load() {
					return nil
				}
				// Pull whole frames: nothing is copied out of them and
				// each input frame's arena (the socket adapter's line
				// bytes) stays attached until its records are parsed.
				frames, eof, err := f.intakeHolders[p].PullFrames(tc.Ctx, f.quota)
				if err != nil {
					return err
				}
				if eof {
					f.eof[p].Store(true)
				}
				// Parse straight into a pooled record spine + byte
				// arena that together become the outgoing frame:
				// ParseInto appends each record to the caller-owned
				// spine and writes string/object payloads into the
				// caller's arena, so a record costs no per-value
				// allocations.
				parser := f.parsers[p]
				spine := hyracks.GetRecordSlice(f.frameCap)
				arena := hyracks.GetArena()
				emit := func(rec adm.Value) error {
					spine = append(spine, rec)
					inv.records.Add(1)
					if len(spine) < f.frameCap {
						return nil
					}
					// Push transfers spine+arena ownership even when it
					// fails; draw replacements only on success so a
					// failed batch doesn't strand fresh pool objects.
					if err := out.Push(hyracks.Frame{Records: spine, Arena: arena}); err != nil {
						spine, arena = nil, nil
						return err
					}
					spine = hyracks.GetRecordSlice(f.frameCap)
					arena = hyracks.GetArena()
					return nil
				}
				for _, fr := range frames {
					// Collection is the delivery point for offset
					// accounting: once this invocation finishes, every
					// record collected here has been pushed to storage
					// holders, and the checkpoint barrier (stored >=
					// sunk) covers the rest of the path.
					f.markDelivered(fr)
					for _, raw := range fr.Raw {
						n := len(spine)
						var perr error
						spine, perr = parser.ParseInto(raw, spine, arena)
						if perr != nil {
							f.stats.ParseErrors.Add(1)
							continue
						}
						rec := spine[n]
						spine = spine[:n]
						if f.dt != nil {
							v, verr := f.dt.Validate(rec)
							if verr != nil {
								f.stats.ParseErrors.Add(1)
								continue
							}
							rec = v
						}
						if err := emit(rec); err != nil {
							return err
						}
					}
					// Parsed (record-lane) frames reaching the intake
					// holder are forwarded record by record too; their
					// headers keep referencing the input frame's arena,
					// so only its spines recycle. Raw-only frames are
					// fully consumed by the parse above — strings were
					// copied into our arena — and recycle completely,
					// returning the adapter's line arena to the pool.
					for _, rec := range fr.Records {
						if f.dt != nil {
							v, verr := f.dt.Validate(rec)
							if verr != nil {
								f.stats.ParseErrors.Add(1)
								continue
							}
							rec = v
						}
						if err := emit(rec); err != nil {
							return err
						}
					}
					if len(fr.Records) > 0 {
						hyracks.RecycleFrameSpines(fr)
					} else {
						hyracks.RecycleFrame(fr)
					}
				}
				if len(spine) == 0 {
					hyracks.PutRecordSlice(spine)
					hyracks.PutArena(arena)
					return nil
				}
				return out.Push(hyracks.Frame{Records: spine, Arena: arena})
			}), nil
		},
	})

	evalOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "udf-evaluator",
		Parallelism: n,
		NodeOf:      nodeOf,
		NewPipe: func(p int) (hyracks.Pipe, error) {
			inv := f.curInv.Load()
			return &hyracks.MapPipe{Fn: func(rec adm.Value) (adm.Value, bool, error) {
				switch {
				case inv.prepared != nil:
					v, err := inv.prepared.EvalRecord(rec)
					if err != nil {
						return adm.Value{}, false, err
					}
					return v, true, nil
				case inv.instances != nil:
					v, err := inv.instances[p].Evaluate(rec)
					if err != nil {
						return adm.Value{}, false, err
					}
					return v, true, nil
				default:
					return rec, true, nil
				}
			}}, nil
		},
	})

	spec.Connect(collectorOp, evalOp, hyracks.OneToOne, nil)

	if f.cfg.FusedInsert {
		// Section 5.1's insert job: UDF evaluation and storage write in
		// one job — the write (and its log flush) gates the invocation.
		pk := f.ds.PrimaryKey()
		writerOp := spec.AddOperator(&hyracks.Descriptor{
			Name:        "fused-storage-writer",
			Parallelism: f.ds.NumPartitions(),
			NodeOf:      func(p int) int { return f.nodes[p%len(f.nodes)] },
			NewPipe: func(p int) (hyracks.Pipe, error) {
				return newStorageWriter(f.ds.Partition(p), pk, &f.stats.Stored), nil
			},
		})
		spec.Connect(evalOp, writerOp, hyracks.HashPartition, func(rec adm.Value) uint64 {
			return adm.Hash(rec.Field(pk))
		})
		return spec
	}

	sinkOp := spec.AddOperator(&hyracks.Descriptor{
		Name:        "feed-pipeline-sink",
		Parallelism: n,
		NodeOf:      nodeOf,
		NewPipe: func(p int) (hyracks.Pipe, error) {
			return &hyracks.SinkPipe{
				Fn: func(tc *hyracks.TaskContext, fr hyracks.Frame) error {
					// Count before the push: once pushed the frame is
					// owned downstream, and the checkpoint barrier
					// needs sunk >= every record the sink ever handed
					// to storage.
					f.sunk.Add(int64(fr.Len()))
					return f.storageHolders[p].Push(tc.Ctx, fr)
				},
			}, nil
		},
	})
	spec.Connect(evalOp, sinkOp, hyracks.OneToOne, nil)
	return spec
}

// runAFM is the Active Feed Manager loop: keep invoking computing jobs
// while any intake partition still has data, checkpointing delivered
// offsets between batches, then shut the storage job down.
func (f *Feed) runAFM() {
	defer close(f.afmDone)
	ckptEvery := f.cfg.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = 1
	}
	sinceCkpt := 0
	for f.jobCtx.Err() == nil && !f.allEOF() {
		start := time.Now()
		inv, err := f.newInvocation()
		if err != nil {
			f.fail(err)
			break
		}
		f.curInv.Store(inv)
		var job *hyracks.Job
		if f.cfg.RecompilePerBatch {
			// Ablation: rebuild the whole spec skeleton per batch, the
			// cost the predeployed path caches away.
			job, err = f.cluster.StartJob(f.jobCtx, f.buildComputeSpec(), f.computeID)
		} else {
			job, err = f.cluster.InvokePredeployed(f.jobCtx, f.computeID, f.computeSpec)
		}
		if err != nil {
			f.fail(err)
			break
		}
		if err := job.Wait(); err != nil {
			f.fail(err)
			break
		}
		f.stats.Invocations.Add(1)
		f.stats.BatchNanos.Add(time.Since(start).Nanoseconds())
		f.stats.Ingested.Add(inv.records.Load())
		if sinceCkpt++; sinceCkpt >= ckptEvery {
			sinceCkpt = 0
			f.checkpoint()
		}
	}
	for _, sh := range f.storageHolders {
		sh.CloseInput()
	}
}

// storageBarrier waits until every record the sinks handed to storage
// holders has been written (stored >= sunk) — the ordering that makes a
// checkpoint truthful: offsets at or below the watermark were collected
// in finished invocations, so their records are counted in sunk, and
// the barrier sees them through the partition WAL commits. Returns
// false when the feed is going down instead.
//
// Both sides of the comparison are per-incarnation: sunk starts at zero
// every Start, while stats.Stored is cumulative across failover
// restarts, so the barrier measures it relative to storedBase. Without
// that base a resumed feed's barrier would be trivially satisfied by
// the previous incarnation's stores and checkpoints could cover
// offsets whose records are still sitting un-stored in holder rings.
func (f *Feed) storageBarrier() bool {
	target := f.sunk.Load()
	for f.stats.Stored.Load()-f.storedBase < target {
		if f.jobCtx.Err() != nil {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
	return true
}

// checkpoint durably records each adapter slot's delivery watermark
// through the partition WALs (every partition, so any surviving subset
// can recover it). Called from the AFM between invocations and once
// more after a clean drain; never concurrently with itself.
func (f *Feed) checkpoint() {
	dirty := false
	marks := make([]uint64, len(f.trackers))
	for i, t := range f.trackers {
		marks[i] = t.cut()
		if marks[i] > f.lastCkpt[i] {
			dirty = true
		}
	}
	if !dirty {
		return
	}
	if !f.storageBarrier() {
		return
	}
	for i, w := range marks {
		if w <= f.lastCkpt[i] {
			continue
		}
		if err := f.ds.PutCheckpoint(ckptScope(f.cfg.Name, i), w); err != nil {
			f.fail(err)
			return
		}
		f.lastCkpt[i] = w
		if w > f.stats.LastCheckpoint.Load() {
			f.stats.LastCheckpoint.Store(w)
		}
	}
}

func (f *Feed) allEOF() bool {
	for i := range f.eof {
		if !f.eof[i].Load() {
			return false
		}
	}
	return true
}

func (f *Feed) fail(err error) {
	if err == nil {
		return
	}
	f.errOnce.Do(func() { f.feedErr.Store(&err) })
	f.jobCancel()
}

// err returns the first recorded pipeline failure, or nil.
func (f *Feed) err() error {
	if p := f.feedErr.Load(); p != nil {
		return *p
	}
	return nil
}

// failAsync records a failure from outside the AFM goroutine (the
// storage and intake watchdogs).
func (f *Feed) failAsync(err error) { f.fail(err) }

// Stop gracefully ends the feed: adapters stop taking new data, the
// remaining batches drain, then the storage job finishes.
func (f *Feed) Stop() { f.adaptStop() }

// Wait blocks until the whole pipeline has drained and returns the first
// error. For generator-backed feeds it returns once all generated data
// is stored; socket/channel feeds need Stop first. Safe to call from
// multiple goroutines (the manager's failover watcher and StopFeed both
// wait); every caller gets the same result.
func (f *Feed) Wait() error {
	f.waitOnce.Do(func() { f.waitErr = f.waitInner() })
	return f.waitErr
}

func (f *Feed) waitInner() error {
	intakeErr := f.intakeJob.Wait()
	<-f.afmDone
	var storageErr error
	if f.storageJob != nil {
		storageErr = f.storageJob.Wait()
	}
	// Final checkpoint: after a clean drain everything sunk is stored,
	// so the barrier is already satisfied and the last watermark covers
	// the whole stream.
	if f.err() == nil && intakeErr == nil && storageErr == nil {
		f.checkpoint()
	}
	f.teardownHolders()
	f.cluster.Undeploy(f.computeID)
	f.jobCancel()
	switch {
	// Re-read after checkpoint: a failed final checkpoint records its
	// error through fail() and must surface here.
	case f.err() != nil:
		return f.err()
	case intakeErr != nil:
		return intakeErr
	default:
		return storageErr
	}
}

func (f *Feed) teardownHolders() {
	for _, node := range f.nodes {
		f.cluster.Node(node).Holders.Unregister(f.cfg.Name)
	}
	f.closeSpillers()
}

func (f *Feed) closeSpillers() {
	for i, sq := range f.spillers {
		if sq != nil {
			sq.Close()
			f.spillers[i] = nil
		}
	}
}
