package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/udf"
)

// eventRecords builds n deterministic records with ids 1..n (id ==
// source offset, so the checkpoint/model arithmetic below is direct).
func eventRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		id := i + 1
		recs[i] = []byte(fmt.Sprintf(`{"id":%d,"v":%d}`, id, id*3))
	}
	return recs
}

// slowRegistry returns a native-UDF registry whose "slowpoke" function
// passes records through with a per-record delay — a stalled consumer
// that keeps the intake ring congested.
func slowRegistry(t *testing.T, perRecord time.Duration) *udf.Registry {
	t.Helper()
	reg := udf.NewRegistry()
	if err := reg.Register(&udf.Native{
		Name: "slowpoke",
		New: func() udf.Instance {
			return &udf.FuncInstance{
				EvalFn: func(rec adm.Value) (adm.Value, error) {
					time.Sleep(perRecord)
					return rec, nil
				},
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestIntakePolicyHammer drives each congestion policy with a fast
// producer against a deliberately slow consumer on a tiny ring (run
// under -race in CI): intake memory must stay bounded by the ring, and
// the policy's loss accounting must be exact — Spill loses nothing,
// Shed/Sample drop counts plus stored records add up to the input.
func TestIntakePolicyHammer(t *testing.T) {
	const n = 2000
	for _, policy := range []string{"spill", "shed", "sample"} {
		t.Run(policy, func(t *testing.T) {
			tuning := cluster.DefaultTuning()
			tuning.DispatchOverheadPerNode = 0
			tuning.InvokeOverheadPerNode = 0
			tuning.HolderCapacity = 2 // tiny ring: congest immediately
			tuning.FrameCapacity = 8
			c, err := cluster.New(2, tuning)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.CreateDataset("Events", "", "id"); err != nil {
				t.Fatal(err)
			}
			records := eventRecords(n)
			cfg := Config{
				Name:       "hammer-" + policy,
				Dataset:    "Events",
				Function:   "slowpoke",
				Natives:    slowRegistry(t, 20*time.Microsecond),
				BatchSize:  64,
				Congestion: policy,
				SampleRate: 0.25,
				NewAdapter: func(int) (Adapter, error) {
					return &GeneratorAdapter{Records: records}, nil
				},
			}
			f, err := Start(context.Background(), c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Watchdog goroutine: the bounded-intake invariant must hold at
			// every instant — ringed frames never exceed partitions × ring
			// capacity, no matter how far ahead the producer runs.
			stop := make(chan struct{})
			bound := c.NumNodes() * tuning.HolderCapacity
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					if got := f.Buffered(); got > bound {
						t.Errorf("intake ring holds %d frames, bound is %d", got, bound)
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}()
			if err := f.Wait(); err != nil {
				t.Fatal(err)
			}
			close(stop)

			st := f.Stats()
			stored := st.Stored.Load()
			ds, _ := c.Dataset("Events")
			switch policy {
			case "spill":
				if stored != n || ds.Len() != n {
					t.Errorf("spill lost data: stored=%d dataset=%d want %d", stored, ds.Len(), n)
				}
				if st.SpilledFrames.Load() == 0 {
					t.Error("hammer never spilled: congestion was not real")
				}
				if st.ShedRecords.Load() != 0 || st.SampledRecords.Load() != 0 {
					t.Error("spill policy dropped records")
				}
			case "shed":
				if stored+st.ShedRecords.Load() != n {
					t.Errorf("shed accounting: stored=%d + shed=%d != %d", stored, st.ShedRecords.Load(), n)
				}
				if st.ShedRecords.Load() == 0 {
					t.Error("hammer never shed: congestion was not real")
				}
			case "sample":
				if stored+st.SampledRecords.Load() != n {
					t.Errorf("sample accounting: stored=%d + sampled=%d != %d", stored, st.SampledRecords.Load(), n)
				}
				if st.SampledRecords.Load() == 0 {
					t.Error("hammer never sampled out: congestion was not real")
				}
			}
			// The drained feed holds no frames anywhere.
			if f.Buffered() != 0 || f.SpillBacklog() != 0 {
				t.Errorf("drained feed still buffers %d ring / %d spilled frames", f.Buffered(), f.SpillBacklog())
			}
		})
	}
}

// TestFeedOverloadedSpillLane: a bounded spill lane that fills up fails
// the feed with ErrFeedOverloaded instead of buffering without bound.
func TestFeedOverloadedSpillLane(t *testing.T) {
	tuning := cluster.DefaultTuning()
	tuning.DispatchOverheadPerNode = 0
	tuning.InvokeOverheadPerNode = 0
	tuning.HolderCapacity = 2
	tuning.FrameCapacity = 4
	c, err := cluster.New(1, tuning)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDataset("Events", "", "id"); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name:             "overload",
		Dataset:          "Events",
		Function:         "slowpoke",
		Natives:          slowRegistry(t, 2*time.Millisecond),
		BatchSize:        4,
		Congestion:       "spill",
		MaxSpilledFrames: 2, // minuscule lane: guaranteed exhaustion
		NewAdapter: func(int) (Adapter, error) {
			return &GeneratorAdapter{Records: eventRecords(2000)}, nil
		},
	}
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrFeedOverloaded) {
			t.Errorf("Wait = %v, want ErrFeedOverloaded", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("overloaded feed did not fail")
	}
}

// durableTestCluster builds a cluster whose storage lives on the given
// MemFS (crash injection) with deliberately small buffers.
func durableTestCluster(t *testing.T, fs lsm.FS, nodes int) *cluster.Cluster {
	t.Helper()
	tuning := cluster.DefaultTuning()
	tuning.DispatchOverheadPerNode = 0
	tuning.InvokeOverheadPerNode = 0
	tuning.HolderCapacity = 2
	tuning.FrameCapacity = 4
	tuning.DataDir = "data"
	tuning.StorageFS = fs
	tuning.Storage = lsm.Options{MemBudget: 8 << 10, MaxComponents: 4, WALSegBytes: 8 << 10}
	c, err := cluster.New(nodes, tuning)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDataset("Events", "", "id"); err != nil {
		t.Fatal(err)
	}
	return c
}

// crashFeedConfig is the crash-test pipeline: spill policy on a tiny
// ring (so kill points land during spill writes and drains) and a
// checkpoint after every batch (so kill points land during checkpoint
// writes too).
func crashFeedConfig(records [][]byte) Config {
	return Config{
		Name:            "crashfeed",
		Dataset:         "Events",
		BatchSize:       16,
		Congestion:      "spill",
		CheckpointEvery: 1,
		NewAdapter: func(int) (Adapter, error) {
			return &GeneratorAdapter{Records: records}, nil
		},
	}
}

// runDoomedFeed runs the feed until it finishes or fails (write faults
// make failure likely but not certain) with a deadlock guard.
func runDoomedFeed(t *testing.T, c *cluster.Cluster, cfg Config, tag string) {
	t.Helper()
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		return // a boot-time write fault is a valid kill point
	}
	done := make(chan error, 1)
	go func() { done <- f.Wait() }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("%s: doomed feed wedged", tag)
	}
}

// verifyCrashImage checks the at-least-once invariant on a freshly
// recovered (not yet resumed) dataset: every offset at or below the
// recovered checkpoint is present (acked ⇒ durable), and nothing
// outside the generated model exists (records above the checkpoint may
// legitimately be present — durable but unacknowledged).
func verifyCrashImage(t *testing.T, c *cluster.Cluster, n int, tag string) uint64 {
	t.Helper()
	ds, _ := c.Dataset("Events")
	ckpt := ds.Checkpoint(ckptScope("crashfeed", 0))
	if ckpt > uint64(n) {
		t.Fatalf("%s: checkpoint %d beyond the %d-record stream", tag, ckpt, n)
	}
	for id := uint64(1); id <= ckpt; id++ {
		rec, ok := ds.Get(adm.Int(int64(id)))
		if !ok {
			t.Fatalf("%s: offset %d is checkpointed but id %d is missing — ack without durability", tag, ckpt, id)
		}
		if got := rec.Field("v").IntVal(); got != int64(id)*3 {
			t.Fatalf("%s: id %d recovered v=%d, want %d", tag, id, got, id*3)
		}
	}
	ds.ScanAll(func(k, rec adm.Value) bool {
		id := k.IntVal()
		if id < 1 || id > int64(n) || rec.Field("v").IntVal() != id*3 {
			t.Fatalf("%s: dataset holds record outside the model: id=%d v=%v", tag, id, rec.Field("v"))
		}
		return true
	})
	return ckpt
}

// TestFeedCrashRecovery is the end-to-end crash-injection suite: run a
// spill-heavy checkpointing feed on MemFS-backed durable storage, kill
// the filesystem at sampled write counts (clean and torn), take the
// crash image, recover, check the acked-⇒-durable invariant, then
// resume the feed from its checkpoint and require the complete model —
// at-least-once delivery plus idempotent upserts leave exactly the
// generated records.
func TestFeedCrashRecovery(t *testing.T) {
	const n = 400
	records := eventRecords(n)

	// Dry run: count the workload's writes and prove the config spills.
	dryFS := lsm.NewMemFS()
	c := durableTestCluster(t, dryFS, 2)
	f, err := Start(context.Background(), c, crashFeedConfig(records))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	if f.Stats().SpilledFrames.Load() == 0 {
		t.Fatal("crash workload never spilled; kill points would miss the spill path")
	}
	if got := f.Stats().LastCheckpoint.Load(); got != n {
		t.Fatalf("clean run checkpoint = %d, want %d", got, n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	totalWrites := dryFS.Writes()
	const points = 7
	if totalWrites < points {
		t.Fatalf("workload too small: %d writes", totalWrites)
	}

	r := rand.New(rand.NewSource(11))
	for i := 0; i < points; i++ {
		kill := i * totalWrites / points
		if i > 0 {
			kill += r.Intn(totalWrites/points + 1)
		}
		for _, torn := range []int{0, 7} {
			tag := fmt.Sprintf("kill@%d/%d torn=%d", kill, totalWrites, torn)
			fs := lsm.NewMemFS()
			doomed := durableTestCluster(t, fs, 2)
			fs.FailWritesAfter(kill, torn)
			runDoomedFeed(t, doomed, crashFeedConfig(records), tag)
			img := fs.Crash()
			doomed.Close()

			recovered := durableTestCluster(t, img, 2)
			verifyCrashImage(t, recovered, n, tag)

			// Resume: the feed replays from its checkpoint and completes.
			rf, err := Start(context.Background(), recovered, crashFeedConfig(records))
			if err != nil {
				t.Fatalf("%s: resume start: %v", tag, err)
			}
			if err := rf.Wait(); err != nil {
				t.Fatalf("%s: resume: %v", tag, err)
			}
			ds, _ := recovered.Dataset("Events")
			if ds.Len() != n {
				t.Fatalf("%s: resumed dataset holds %d records, want %d", tag, ds.Len(), n)
			}
			for id := 1; id <= n; id++ {
				rec, ok := ds.Get(adm.Int(int64(id)))
				if !ok || rec.Field("v").IntVal() != int64(id)*3 {
					t.Fatalf("%s: id %d wrong after resume", tag, id)
				}
			}
			if got := rf.Stats().LastCheckpoint.Load(); got != n {
				t.Fatalf("%s: resumed checkpoint = %d, want %d", tag, got, n)
			}
			if err := recovered.Close(); err != nil {
				t.Fatalf("%s: close after resume: %v", tag, err)
			}
		}
	}
}

// TestFeedCheckpointReplayIdempotent: delivering the whole stream a
// second time (a fresh feed with no checkpoint, the worst-case
// redelivery) leaves the dataset unchanged, and a feed that restarts
// WITH its checkpoint redelivers nothing at all.
func TestFeedCheckpointReplayIdempotent(t *testing.T) {
	fs := lsm.NewMemFS()
	c := durableTestCluster(t, fs, 2)
	const n = 300
	records := eventRecords(n)
	cfg := crashFeedConfig(records)

	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Dataset("Events")
	if ds.Len() != n {
		t.Fatalf("first run stored %d", ds.Len())
	}

	// Same feed name restarts: the checkpoint says everything was
	// delivered, so the adapter resumes past the end and stores nothing.
	f2, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := f2.Stats().Stored.Load(); got != 0 {
		t.Errorf("checkpointed restart redelivered %d records", got)
	}

	// A different feed name has no checkpoint: full redelivery, which
	// last-wins upsert absorbs without changing the dataset.
	cfg2 := cfg
	cfg2.Name = "crashfeed-redeliver"
	f3, err := Start(context.Background(), c, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f3.Wait(); err != nil {
		t.Fatal(err)
	}
	if f3.Stats().Stored.Load() != n {
		t.Errorf("redelivery stored %d, want %d", f3.Stats().Stored.Load(), n)
	}
	if ds.Len() != n {
		t.Errorf("redelivery changed the dataset: %d records, want %d", ds.Len(), n)
	}
	for id := 1; id <= n; id++ {
		rec, ok := ds.Get(adm.Int(int64(id)))
		if !ok || rec.Field("v").IntVal() != int64(id)*3 {
			t.Fatalf("id %d wrong after redelivery", id)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// pacedAdapter is a resumable generator that emits one record every
// delay — slow enough to kill a node mid-stream deterministically.
type pacedAdapter struct {
	records [][]byte
	delay   time.Duration
}

func (a *pacedAdapter) Run(ctx context.Context, emit func([]byte) error) error {
	return a.RunFrom(ctx, 0, func(_ uint64, raw []byte) error { return emit(raw) })
}

func (a *pacedAdapter) RunFrom(ctx context.Context, from uint64, emit func(uint64, []byte) error) error {
	for i := int(from); i < len(a.records); i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := emit(uint64(i)+1, a.records[i]); err != nil {
			return err
		}
		time.Sleep(a.delay)
	}
	return nil
}

// TestFeedKillNodeFailover kills a cluster node mid-ingest: the feed's
// pipeline dies with ErrPartitionDown, the manager restarts it on the
// survivors, the adapter replays from the last checkpoint, and the
// dataset ends complete and exact.
func TestFeedKillNodeFailover(t *testing.T) {
	c, _ := testCluster(t, 3)
	m := NewManager(c)
	const n = 1500
	records := make([][]byte, n)
	for i := range records {
		records[i] = []byte(fmt.Sprintf(`{"id":%d,"text":"x"}`, i+1))
	}
	cfgVal := adm.ObjectValue(adm.ObjectFromPairs(
		"adapter-name", adm.String("channel_adapter"),
		"batch-size", adm.Int(64),
	))
	if err := m.CreateFeed("kfeed", cfgVal); err != nil {
		t.Fatal(err)
	}
	if err := m.SetAdapterFactory("kfeed", func(int) (Adapter, error) {
		return &pacedAdapter{records: records, delay: 200 * time.Microsecond}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.ConnectFeed("kfeed", "Tweets", ""); err != nil {
		t.Fatal(err)
	}
	f, err := m.StartFeed(context.Background(), "kfeed")
	if err != nil {
		t.Fatal(err)
	}

	// Let some data land, then kill a node that hosts pipeline partitions.
	ds, _ := c.Dataset("Tweets")
	deadline := time.Now().Add(30 * time.Second)
	for ds.Len() < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ds.Len() < 100 {
		t.Fatal("feed never made progress")
	}
	c.KillNode(2)
	if c.NodeAlive(2) {
		t.Fatal("node 2 still alive")
	}

	// The dying incarnation reports the partition failure...
	if err := f.Wait(); !errors.Is(err, cluster.ErrPartitionDown) {
		t.Fatalf("first incarnation Wait = %v, want ErrPartitionDown", err)
	}
	// ...and the manager's restarted incarnation finishes the stream.
	for time.Now().Before(deadline) {
		if ds.Len() == n {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ds.Len() != n {
		t.Fatalf("dataset holds %d records after failover, want %d", ds.Len(), n)
	}
	for id := 1; id <= n; id++ {
		if _, ok := ds.Get(adm.Int(int64(id))); !ok {
			t.Fatalf("id %d missing after failover", id)
		}
	}
	st := f.Stats()
	if st.Resumptions.Load() < 1 {
		t.Errorf("resumptions = %d, want >= 1", st.Resumptions.Load())
	}
	// The successor must be waitable through the manager and healthy.
	nf, running, known := m.Lookup("kfeed")
	if !known || nf == nil {
		t.Fatal("manager lost the feed")
	}
	if running {
		if err := nf.Wait(); err != nil {
			t.Fatalf("successor Wait = %v", err)
		}
	}
}

// TestStorageBarrierAcrossIncarnations: the checkpoint barrier compares
// this incarnation's stores against this incarnation's sunk count. A
// failover successor inherits the predecessor's cumulative Stats block
// (Stored already large), so without the storedBase snapshot the
// barrier would be trivially satisfied and a checkpoint could cover
// offsets whose records are still un-stored — acknowledged data lost on
// the next crash.
func TestStorageBarrierAcrossIncarnations(t *testing.T) {
	stats := &Stats{}
	stats.Stored.Store(1000) // predecessor's cumulative stores
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := &Feed{stats: stats, storedBase: stats.Stored.Load(), jobCtx: ctx, jobCancel: cancel}
	f.sunk.Store(5) // this incarnation has handed 5 records to storage holders

	done := make(chan bool, 1)
	go func() { done <- f.storageBarrier() }()
	select {
	case <-done:
		t.Fatal("barrier passed while this incarnation's records are un-stored")
	case <-time.After(30 * time.Millisecond):
	}
	stats.Stored.Add(5) // this incarnation's stores land
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("barrier reported shutdown, want satisfied")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("barrier never released after stores caught up")
	}
}

// TestFeedStartOnDeadNodeFails: explicitly routing a pipeline onto a
// killed node is rejected up front with ErrPartitionDown.
func TestFeedStartOnDeadNodeFails(t *testing.T) {
	c, g := testCluster(t, 2)
	c.KillNode(1)
	cfg := generatorConfig("deadnode", g, 10)
	cfg.Nodes = []int{0, 1}
	if _, err := Start(context.Background(), c, cfg); !errors.Is(err, cluster.ErrPartitionDown) {
		t.Fatalf("Start on dead node = %v, want ErrPartitionDown", err)
	}
	// Routing onto the survivor works.
	cfg.Nodes = []int{0}
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
}
