package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/udf"
)

// Manager is the Active Feed Manager's control surface: it tracks
// declared feeds (CREATE FEED), their connections (CONNECT FEED), and
// their running pipelines (START/STOP FEED). One Manager lives on the
// cluster controller.
type Manager struct {
	cluster   *cluster.Cluster
	Natives   *udf.Registry
	Resources *udf.ResourceStore

	mu    sync.Mutex
	feeds map[string]*managedFeed
}

type managedFeed struct {
	name    string
	config  adm.Value // raw CREATE FEED WITH {...} config
	adapter func(i int) (Adapter, error)
	dataset string
	fn      string
	running *Feed
	// last is the most recent pipeline, retained after StopFeed so
	// final statistics stay readable (a stopped feed's counters are the
	// numbers operators actually want).
	last *Feed
	// failover enables automatic restart on ErrPartitionDown (WITH
	// {"failover": false} opts out); ctx is the StartFeed context the
	// failover restart reuses.
	failover bool
	ctx      context.Context
	// restartErr records a failover restart that itself failed — the
	// feed is gone and StopFeed reports why instead of a bare
	// "not running".
	restartErr error
}

// feedConfig builds the Config the WITH-clause describes. Caller holds
// m.mu.
func (mf *managedFeed) feedConfig(natives *udf.Registry) Config {
	cfg := Config{
		Name:       mf.name,
		Dataset:    mf.dataset,
		Function:   mf.fn,
		NewAdapter: mf.adapter,
		Natives:    natives,
	}
	if bs, ok := mf.config.Field("batch-size").AsInt(); ok {
		cfg.BatchSize = int(bs)
	}
	if s := mf.config.Field("congestion-policy").StringVal(); s != "" {
		cfg.Congestion = s
	}
	if r, ok := mf.config.Field("sample-rate").AsDouble(); ok {
		cfg.SampleRate = r
	}
	if n, ok := mf.config.Field("checkpoint-every").AsInt(); ok {
		cfg.CheckpointEvery = int(n)
	}
	if n, ok := mf.config.Field("max-spilled-frames").AsInt(); ok {
		cfg.MaxSpilledFrames = int(n)
	}
	return cfg
}

// NewManager returns a Manager bound to the cluster.
func NewManager(c *cluster.Cluster) *Manager {
	return &Manager{
		cluster:   c,
		Natives:   udf.NewRegistry(),
		Resources: udf.NewResourceStore(),
		feeds:     make(map[string]*managedFeed),
	}
}

// CreateFeed declares a feed from its WITH-config. Supported adapters:
// "socket_adapter" (config key "sockets") and "channel_adapter" (the
// caller supplies the channel via SetAdapterFactory).
func (m *Manager) CreateFeed(name string, config adm.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.feeds[name]; dup {
		return fmt.Errorf("core: feed %q exists", name)
	}
	mf := &managedFeed{name: name, config: config}
	switch adapterName := config.Field("adapter-name").StringVal(); adapterName {
	case "socket_adapter":
		addr := config.Field("sockets").StringVal()
		if addr == "" {
			return fmt.Errorf("core: socket_adapter needs a \"sockets\" address")
		}
		mf.adapter = func(int) (Adapter, error) { return &SocketAdapter{Addr: addr}, nil }
	case "", "channel_adapter":
		// factory installed later via SetAdapterFactory
	default:
		return fmt.Errorf("core: unknown adapter %q", adapterName)
	}
	m.feeds[name] = mf
	return nil
}

// SetAdapterFactory installs a programmatic adapter factory for a feed
// (generator and channel adapters).
func (m *Manager) SetAdapterFactory(feed string, factory func(i int) (Adapter, error)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, ok := m.feeds[feed]
	if !ok {
		return fmt.Errorf("core: unknown feed %q", feed)
	}
	mf.adapter = factory
	return nil
}

// ConnectFeed binds a feed to its target dataset and optional UDF.
func (m *Manager) ConnectFeed(feed, dataset, function string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, ok := m.feeds[feed]
	if !ok {
		return fmt.Errorf("core: unknown feed %q", feed)
	}
	if _, ok := m.cluster.Dataset(dataset); !ok {
		return fmt.Errorf("core: unknown dataset %q", dataset)
	}
	mf.dataset = dataset
	mf.fn = function
	return nil
}

// StartFeed launches the feed's dynamic pipeline.
func (m *Manager) StartFeed(ctx context.Context, name string) (*Feed, error) {
	m.mu.Lock()
	mf, ok := m.feeds[name]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: unknown feed %q", name)
	}
	if mf.running != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: feed %q already running", name)
	}
	if mf.dataset == "" {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: feed %q is not connected to a dataset", name)
	}
	if mf.adapter == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: feed %q has no adapter", name)
	}
	cfg := mf.feedConfig(m.Natives)
	mf.failover = true
	if v := mf.config.Field("failover"); v.Kind() == adm.KindBoolean {
		mf.failover = v.BoolVal()
	}
	mf.ctx = ctx
	m.mu.Unlock()

	f, err := Start(ctx, m.cluster, cfg)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	mf.running = f
	mf.last = f
	mf.restartErr = nil
	m.mu.Unlock()
	go m.watch(mf, f)
	return f, nil
}

// watch is the failover watcher for one pipeline incarnation: when the
// pipeline dies of a killed partition, restart it on the surviving
// nodes — same slot identities, shared counters — and let it resume
// from the last checkpoint. Clean finishes and other errors are left
// for StopFeed/Wait to observe as before.
func (m *Manager) watch(mf *managedFeed, f *Feed) {
	err := f.Wait()
	if err == nil || !errors.Is(err, cluster.ErrPartitionDown) {
		return
	}
	m.mu.Lock()
	if mf.running != f || !mf.failover {
		// Stopped, superseded, or failover disabled: nothing to do.
		m.mu.Unlock()
		return
	}
	mf.running = nil
	live := m.cluster.LiveNodes()
	if len(live) == 0 {
		m.mu.Unlock()
		return
	}
	cfg := mf.feedConfig(m.Natives)
	ctx := mf.ctx
	m.mu.Unlock()

	cfg.Nodes = live
	cfg.IntakeNodes = remapIntakeNodes(f.Config().IntakeNodes, live)
	cfg.Stats = f.Stats()
	nf, serr := Start(ctx, m.cluster, cfg)
	if serr != nil {
		// The restart itself failed: the feed is dead. Record why so
		// StopFeed can surface it instead of a bare "not running".
		m.mu.Lock()
		if mf.running == nil {
			mf.restartErr = fmt.Errorf("core: feed %q failover restart: %w", mf.name, serr)
		}
		m.mu.Unlock()
		return
	}
	cfg.Stats.Resumptions.Add(1)
	m.mu.Lock()
	if mf.running != nil {
		// Raced with a manual StartFeed; yield to it.
		m.mu.Unlock()
		nf.Stop()
		nf.Wait()
		return
	}
	mf.running = nf
	mf.last = nf
	m.mu.Unlock()
	go m.watch(mf, nf)
}

// remapIntakeNodes preserves adapter slot identity across failover:
// slot i keeps its node when that node survived, and moves to a
// surviving node otherwise. The slot count never changes — checkpoints
// are scoped per slot.
func remapIntakeNodes(orig, live []int) []int {
	alive := make(map[int]bool, len(live))
	for _, n := range live {
		alive[n] = true
	}
	out := make([]int, len(orig))
	for i, n := range orig {
		if alive[n] {
			out[i] = n
		} else {
			out[i] = live[i%len(live)]
		}
	}
	return out
}

// StopFeed gracefully stops a running feed and waits for it to drain.
// A feed that died because its failover restart failed reports that
// restart error here.
func (m *Manager) StopFeed(name string) error {
	m.mu.Lock()
	mf, ok := m.feeds[name]
	if ok && mf.running == nil && mf.restartErr != nil {
		err := mf.restartErr
		m.mu.Unlock()
		return err
	}
	if !ok || mf.running == nil {
		m.mu.Unlock()
		return fmt.Errorf("core: feed %q is not running", name)
	}
	f := mf.running
	mf.running = nil
	m.mu.Unlock()
	f.Stop()
	return f.Wait()
}

// Feed returns the running pipeline of a feed, if any.
func (m *Manager) Feed(name string) (*Feed, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, ok := m.feeds[name]
	if !ok || mf.running == nil {
		return nil, false
	}
	return mf.running, true
}

// Lookup resolves a feed by name for statistics: it returns the
// running pipeline, or — after a stop — the most recent one, so final
// counters remain readable. known is false for names never declared
// via CREATE FEED; f may be nil for a declared feed that never
// started.
func (m *Manager) Lookup(name string) (f *Feed, running, known bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, ok := m.feeds[name]
	if !ok {
		return nil, false, false
	}
	if mf.running != nil {
		return mf.running, true, true
	}
	return mf.last, false, true
}
