package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/udf"
)

// Manager is the Active Feed Manager's control surface: it tracks
// declared feeds (CREATE FEED), their connections (CONNECT FEED), and
// their running pipelines (START/STOP FEED). One Manager lives on the
// cluster controller.
type Manager struct {
	cluster   *cluster.Cluster
	Natives   *udf.Registry
	Resources *udf.ResourceStore

	mu    sync.Mutex
	feeds map[string]*managedFeed
}

type managedFeed struct {
	name    string
	config  adm.Value // raw CREATE FEED WITH {...} config
	adapter func(i int) (Adapter, error)
	dataset string
	fn      string
	running *Feed
	// last is the most recent pipeline, retained after StopFeed so
	// final statistics stay readable (a stopped feed's counters are the
	// numbers operators actually want).
	last *Feed
}

// NewManager returns a Manager bound to the cluster.
func NewManager(c *cluster.Cluster) *Manager {
	return &Manager{
		cluster:   c,
		Natives:   udf.NewRegistry(),
		Resources: udf.NewResourceStore(),
		feeds:     make(map[string]*managedFeed),
	}
}

// CreateFeed declares a feed from its WITH-config. Supported adapters:
// "socket_adapter" (config key "sockets") and "channel_adapter" (the
// caller supplies the channel via SetAdapterFactory).
func (m *Manager) CreateFeed(name string, config adm.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.feeds[name]; dup {
		return fmt.Errorf("core: feed %q exists", name)
	}
	mf := &managedFeed{name: name, config: config}
	switch adapterName := config.Field("adapter-name").StringVal(); adapterName {
	case "socket_adapter":
		addr := config.Field("sockets").StringVal()
		if addr == "" {
			return fmt.Errorf("core: socket_adapter needs a \"sockets\" address")
		}
		mf.adapter = func(int) (Adapter, error) { return &SocketAdapter{Addr: addr}, nil }
	case "", "channel_adapter":
		// factory installed later via SetAdapterFactory
	default:
		return fmt.Errorf("core: unknown adapter %q", adapterName)
	}
	m.feeds[name] = mf
	return nil
}

// SetAdapterFactory installs a programmatic adapter factory for a feed
// (generator and channel adapters).
func (m *Manager) SetAdapterFactory(feed string, factory func(i int) (Adapter, error)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, ok := m.feeds[feed]
	if !ok {
		return fmt.Errorf("core: unknown feed %q", feed)
	}
	mf.adapter = factory
	return nil
}

// ConnectFeed binds a feed to its target dataset and optional UDF.
func (m *Manager) ConnectFeed(feed, dataset, function string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, ok := m.feeds[feed]
	if !ok {
		return fmt.Errorf("core: unknown feed %q", feed)
	}
	if _, ok := m.cluster.Dataset(dataset); !ok {
		return fmt.Errorf("core: unknown dataset %q", dataset)
	}
	mf.dataset = dataset
	mf.fn = function
	return nil
}

// StartFeed launches the feed's dynamic pipeline.
func (m *Manager) StartFeed(ctx context.Context, name string) (*Feed, error) {
	m.mu.Lock()
	mf, ok := m.feeds[name]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: unknown feed %q", name)
	}
	if mf.running != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: feed %q already running", name)
	}
	if mf.dataset == "" {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: feed %q is not connected to a dataset", name)
	}
	if mf.adapter == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: feed %q has no adapter", name)
	}
	cfg := Config{
		Name:       name,
		Dataset:    mf.dataset,
		Function:   mf.fn,
		NewAdapter: mf.adapter,
		Natives:    m.Natives,
	}
	if bs, ok := mf.config.Field("batch-size").AsInt(); ok {
		cfg.BatchSize = int(bs)
	}
	m.mu.Unlock()

	f, err := Start(ctx, m.cluster, cfg)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	mf.running = f
	mf.last = f
	m.mu.Unlock()
	return f, nil
}

// StopFeed gracefully stops a running feed and waits for it to drain.
func (m *Manager) StopFeed(name string) error {
	m.mu.Lock()
	mf, ok := m.feeds[name]
	if !ok || mf.running == nil {
		m.mu.Unlock()
		return fmt.Errorf("core: feed %q is not running", name)
	}
	f := mf.running
	mf.running = nil
	m.mu.Unlock()
	f.Stop()
	return f.Wait()
}

// Feed returns the running pipeline of a feed, if any.
func (m *Manager) Feed(name string) (*Feed, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, ok := m.feeds[name]
	if !ok || mf.running == nil {
		return nil, false
	}
	return mf.running, true
}

// Lookup resolves a feed by name for statistics: it returns the
// running pipeline, or — after a stop — the most recent one, so final
// counters remain readable. known is false for names never declared
// via CREATE FEED; f may be nil for a declared feed that never
// started.
func (m *Manager) Lookup(name string) (f *Feed, running, known bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, ok := m.feeds[name]
	if !ok {
		return nil, false, false
	}
	if mf.running != nil {
		return mf.running, true, true
	}
	return mf.last, false, true
}
