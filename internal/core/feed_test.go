package core

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/udf"
	"github.com/ideadb/idea/internal/workload"
)

// testCluster builds a cluster with the full (tiny) paper workload
// installed.
func testCluster(t *testing.T, nodes int) (*cluster.Cluster, *workload.Generator) {
	t.Helper()
	tuning := cluster.DefaultTuning()
	tuning.DispatchOverheadPerNode = 0 // keep unit tests fast
	tuning.InvokeOverheadPerNode = 0
	c, err := cluster.New(nodes, tuning)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.Setup(c, 42, workload.Scaled(0.002))
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func generatorConfig(name string, g *workload.Generator, n int) Config {
	tweets := g.Tweets(0, n)
	return Config{
		Name:      name,
		Dataset:   "Tweets",
		BatchSize: 64,
		NewAdapter: func(int) (Adapter, error) {
			return &GeneratorAdapter{Records: tweets}, nil
		},
	}
}

func TestFeedBasicIngestion(t *testing.T) {
	c, g := testCluster(t, 3)
	const n = 1000
	f, err := Start(context.Background(), c, generatorConfig("basic", g, n))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Stored.Load() != n {
		t.Errorf("stored %d, want %d", st.Stored.Load(), n)
	}
	if st.Ingested.Load() != n {
		t.Errorf("ingested %d, want %d", st.Ingested.Load(), n)
	}
	if st.Invocations.Load() < int64(n)/64 {
		t.Errorf("suspiciously few invocations: %d", st.Invocations.Load())
	}
	ds, _ := c.Dataset("Tweets")
	if ds.Len() != n {
		t.Errorf("dataset holds %d, want %d", ds.Len(), n)
	}
	// Records are properly typed (created_at coerced to datetime).
	rec, ok := ds.Get(adm.Int(0))
	if !ok {
		t.Fatal("tweet 0 missing")
	}
	if rec.Field("created_at").Kind() != adm.KindDateTime {
		t.Errorf("created_at kind = %v", rec.Field("created_at").Kind())
	}
}

func TestFeedWithSQLPPUDF(t *testing.T) {
	c, g := testCluster(t, 3)
	const n = 300
	cfg := generatorConfig("q1feed", g, n)
	cfg.Dataset = "EnrichedTweets"
	cfg.Function = "enrichTweetQ1"
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Dataset("EnrichedTweets")
	if ds.Len() != n {
		t.Fatalf("enriched %d, want %d", ds.Len(), n)
	}
	// Every stored tweet carries the enrichment field with a real rating.
	checked := 0
	ds.ScanAll(func(_, rec adm.Value) bool {
		ratings := rec.Field("safety_rating")
		if ratings.Kind() != adm.KindArray {
			t.Fatalf("missing safety_rating on %v", rec.Field("id"))
		}
		if len(ratings.ArrayVal()) != 1 {
			t.Fatalf("tweet country should match exactly one rating, got %d", len(ratings.ArrayVal()))
		}
		checked++
		return true
	})
	if checked != n {
		t.Errorf("checked %d", checked)
	}
}

func TestFeedWithNativeUDF(t *testing.T) {
	c, g := testCluster(t, 2)
	reg := udf.NewRegistry()
	initCount := 0
	if err := reg.Register(&udf.Native{
		Name:     "flagger",
		Stateful: true,
		New: func() udf.Instance {
			return &udf.FuncInstance{
				InitFn: func(int) error { initCount++; return nil },
				EvalFn: func(rec adm.Value) (adm.Value, error) {
					out := rec.ObjectVal().CopyShallow()
					out.Set("flag", adm.String("seen"))
					return adm.ObjectValue(out), nil
				},
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	const n = 200
	cfg := generatorConfig("nativefeed", g, n)
	cfg.Dataset = "EnrichedTweets"
	cfg.Function = "flagger"
	cfg.Natives = reg
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Dataset("EnrichedTweets")
	if ds.Len() != n {
		t.Fatalf("stored %d", ds.Len())
	}
	ds.ScanAll(func(_, rec adm.Value) bool {
		if rec.Field("flag").StringVal() != "seen" {
			t.Fatal("native UDF did not run")
		}
		return true
	})
	// Dynamic framework re-initializes per invocation per node.
	wantMin := int(f.Stats().Invocations.Load()) * 2
	if initCount < wantMin {
		t.Errorf("initialized %d times, want >= %d (per batch per node)", initCount, wantMin)
	}
}

func TestFeedObservesReferenceUpdatesBetweenBatches(t *testing.T) {
	c, g := testCluster(t, 2)
	_ = g
	// Slow channel feed so we control batch boundaries.
	ch := make(chan []byte)
	cfg := Config{
		Name:      "updates",
		Dataset:   "EnrichedTweets",
		Function:  "enrichTweetQ1",
		BatchSize: 2,
		NewAdapter: func(int) (Adapter, error) {
			return &ChannelAdapter{C: ch}, nil
		},
	}
	// Small frames so single records flow immediately.
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mkTweet := func(id int) []byte {
		return []byte(fmt.Sprintf(`{"id":%d,"text":"x","country":"C000000"}`, id))
	}
	ratingOf := func(id int) string {
		ds, _ := c.Dataset("EnrichedTweets")
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if rec, ok := ds.Get(adm.Int(int64(id))); ok {
				return rec.Field("safety_rating").Index(0).StringVal()
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("tweet %d never stored", id)
		return ""
	}
	// Frame capacity is 128; the channel adapter only flushes frames when
	// full or at close, so push enough records per phase to force frames
	// through. Use distinct id ranges per phase.
	push := func(base, count int) {
		for i := 0; i < count; i++ {
			ch <- mkTweet(base + i)
		}
	}
	sr, _ := c.Dataset("SafetyRatings")
	orig, _ := sr.Get(adm.String("C000000"))
	origRating := orig.Field("safety_rating").StringVal()

	push(0, 300)
	if got := ratingOf(0); got != origRating {
		t.Fatalf("initial rating = %s, want %s", got, origRating)
	}
	// Update the reference data mid-feed (UPSERT, like the paper).
	upd := adm.ObjectValue(adm.ObjectFromPairs(
		"country_code", adm.String("C000000"),
		"safety_rating", adm.String("UPDATED"),
	))
	if err := sr.Upsert(upd); err != nil {
		t.Fatal(err)
	}
	// Frames hold 128 records, so the tail of each push phase only
	// flushes on close; probe an id from a frame that is guaranteed
	// flushed (ids 1000..1211 land in the 4th frame) and far enough into
	// phase 2 that its enriching batch prepared after the upsert.
	push(1000, 300)
	if got := ratingOf(1100); got != "UPDATED" {
		t.Errorf("post-update rating = %s, want UPDATED (batch-refresh semantics)", got)
	}
	close(ch)
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticFeedIngestion(t *testing.T) {
	c, g := testCluster(t, 3)
	const n = 500
	cfg := generatorConfig("static", g, n)
	sf, err := StartStatic(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Wait(); err != nil {
		t.Fatal(err)
	}
	if sf.Stats().Stored.Load() != n {
		t.Errorf("stored %d", sf.Stats().Stored.Load())
	}
}

func TestStaticFeedRejectsStatefulSQLPP(t *testing.T) {
	c, g := testCluster(t, 2)
	cfg := generatorConfig("staticq1", g, 10)
	cfg.Dataset = "EnrichedTweets"
	cfg.Function = "enrichTweetQ1" // stateful: touches SafetyRatings
	_, err := StartStatic(context.Background(), c, cfg)
	if !errors.Is(err, ErrStatefulUDF) {
		t.Fatalf("err = %v, want ErrStatefulUDF", err)
	}
	// The stateless UDF 1 is fine.
	cfg2 := generatorConfig("staticudf1", g, 50)
	cfg2.Dataset = "EnrichedTweets"
	cfg2.Function = "USTweetSafetyCheck"
	sf, err := StartStatic(context.Background(), c, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Wait(); err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Dataset("EnrichedTweets")
	found := 0
	ds.ScanAll(func(_, rec adm.Value) bool {
		if rec.Field("safety_check_flag").Kind() == adm.KindString {
			found++
		}
		return true
	})
	if found != 50 {
		t.Errorf("flagged %d of 50", found)
	}
}

func TestStaticNativeUDFStateIsStale(t *testing.T) {
	// The paper's old-framework limitation: a native UDF's resources are
	// loaded once, so updates are NOT observed.
	c, _ := testCluster(t, 2)
	resources := udf.NewResourceStore()
	resources.Put("keywords", []byte("red\n"))
	reg := udf.NewRegistry()
	err := reg.Register(&udf.Native{
		Name: "keyworder", Stateful: true,
		New: func() udf.Instance {
			var words []string
			return &udf.FuncInstance{
				InitFn: func(int) error {
					words, _ = resources.Lines("keywords")
					return nil
				},
				EvalFn: func(rec adm.Value) (adm.Value, error) {
					out := rec.ObjectVal().CopyShallow()
					out.Set("kw", adm.String(fmt.Sprintf("%v", words)))
					return adm.ObjectValue(out), nil
				},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan []byte)
	cfg := Config{
		Name:     "stalestatic",
		Dataset:  "EnrichedTweets",
		Function: "keyworder",
		Natives:  reg,
		NewAdapter: func(int) (Adapter, error) {
			return &ChannelAdapter{C: ch}, nil
		},
	}
	sf, err := StartStatic(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 200; i++ {
			ch <- []byte(fmt.Sprintf(`{"id":%d,"text":"x"}`, i))
		}
		// Update the resource mid-feed; the static pipeline must not see
		// it.
		resources.Put("keywords", []byte("red\nblue\n"))
		for i := 200; i < 400; i++ {
			ch <- []byte(fmt.Sprintf(`{"id":%d,"text":"x"}`, i))
		}
		close(ch)
	}()
	if err := sf.Wait(); err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Dataset("EnrichedTweets")
	rec, ok := ds.Get(adm.Int(399))
	if !ok {
		t.Fatal("tweet 399 missing")
	}
	if got := rec.Field("kw").StringVal(); got != "[red]" {
		t.Errorf("static pipeline saw updated resources: %q", got)
	}
}

func TestSocketAdapterFeed(t *testing.T) {
	c, _ := testCluster(t, 2)
	addr := "127.0.0.1:19917"
	cfg := Config{
		Name:    "sock",
		Dataset: "Tweets",
		NewAdapter: func(int) (Adapter, error) {
			return &SocketAdapter{Addr: addr}, nil
		},
	}
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Give the listener a moment, then send records.
	var conn net.Conn
	for i := 0; i < 100; i++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	const n = 250
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, `{"id":%d,"text":"via socket"}`+"\n", i)
	}
	w.Flush()
	conn.Close()
	// Wait for arrival, then stop the feed.
	ds, _ := c.Dataset("Tweets")
	deadline := time.Now().Add(10 * time.Second)
	for ds.Len() < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	f.Stop()
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != n {
		t.Errorf("stored %d, want %d", ds.Len(), n)
	}
}

func TestManagerLifecycle(t *testing.T) {
	c, g := testCluster(t, 2)
	m := NewManager(c)
	cfgVal := adm.ObjectValue(adm.ObjectFromPairs(
		"adapter-name", adm.String("channel_adapter"),
		"type-name", adm.String("TweetType"),
	))
	if err := m.CreateFeed("TweetFeed", cfgVal); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateFeed("TweetFeed", cfgVal); err == nil {
		t.Error("duplicate feed should fail")
	}
	tweets := g.Tweets(0, 100)
	if err := m.SetAdapterFactory("TweetFeed", func(int) (Adapter, error) {
		return &GeneratorAdapter{Records: tweets}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartFeed(context.Background(), "TweetFeed"); err == nil {
		t.Error("start before connect should fail")
	}
	if err := m.ConnectFeed("TweetFeed", "Tweets", ""); err != nil {
		t.Fatal(err)
	}
	f, err := m.StartFeed(context.Background(), "TweetFeed")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Feed("TweetFeed"); !ok {
		t.Error("running feed not tracked")
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Dataset("Tweets")
	if ds.Len() != 100 {
		t.Errorf("stored %d", ds.Len())
	}
}

func TestFeedParseErrorsAreCountedNotFatal(t *testing.T) {
	c, _ := testCluster(t, 2)
	records := [][]byte{
		[]byte(`{"id":1,"text":"good"}`),
		[]byte(`{not json`),
		[]byte(`{"id":2,"text":"good"}`),
		[]byte(`{"text":"missing required id field... but id is required by TweetType"}`),
		[]byte(`{"id":3,"text":"good"}`),
	}
	cfg := Config{
		Name:    "badrecs",
		Dataset: "Tweets",
		NewAdapter: func(int) (Adapter, error) {
			return &GeneratorAdapter{Records: records}, nil
		},
	}
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Stored.Load(); got != 3 {
		t.Errorf("stored %d, want 3", got)
	}
	if got := f.Stats().ParseErrors.Load(); got != 2 {
		t.Errorf("parse errors %d, want 2", got)
	}
}

func TestFeedBalancedIntake(t *testing.T) {
	c, g := testCluster(t, 4)
	const n = 800
	all := g.Tweets(0, n)
	cfg := Config{
		Name:        "balanced",
		Dataset:     "Tweets",
		IntakeNodes: []int{0, 1, 2, 3},
		BatchSize:   128,
		NewAdapter: func(i int) (Adapter, error) {
			// Shard the stream across intake nodes.
			var shard [][]byte
			for j := i; j < n; j += 4 {
				shard = append(shard, all[j])
			}
			return &GeneratorAdapter{Records: shard}, nil
		},
	}
	f, err := Start(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Dataset("Tweets")
	if ds.Len() != n {
		t.Errorf("stored %d, want %d", ds.Len(), n)
	}
}
