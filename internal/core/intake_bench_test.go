package core

import (
	"context"
	"fmt"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/hyracks"
)

// pushWriter bridges a FrameBuilder to a PassiveHolder for the intake
// micro-benchmark.
type pushWriter struct {
	ctx context.Context
	h   *hyracks.PassiveHolder
}

func (w *pushWriter) Open() error { return nil }
func (w *pushWriter) Push(f hyracks.Frame) error {
	return w.h.PushFrame(w.ctx, f)
}
func (w *pushWriter) Close() error { return nil }

// BenchmarkIntakePath measures the intake→parse half of the feed in
// isolation: adapter bytes ride raw frames through a partition holder
// and come out as parsed ADM records — no UDF, no storage, no cluster
// simulation. This is the path the zero-copy refactor targets: raw
// bytes are never wrapped in strings or copied, whole frames (arena
// included) are pulled without copying record headers, and records are
// parsed into a pooled byte arena so string values and objects cost no
// per-value allocations.
func BenchmarkIntakePath(b *testing.B) {
	const n = 10_000
	records := make([][]byte, n)
	for i := range records {
		records[i] = fmt.Appendf(nil,
			`{"id":%d,"text":"benchmark tweet with some padding text","lang":"en","user":{"id":%d,"screen_name":"bench"}}`,
			i, i%97)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		h := hyracks.NewPassiveHolder(64)
		adapter := &GeneratorAdapter{Records: records}
		go func() {
			builder := hyracks.NewFrameBuilder(128, &pushWriter{ctx: ctx, h: h})
			if err := adapter.Run(ctx, builder.AddRaw); err != nil {
				b.Error(err)
				return
			}
			if err := builder.Flush(); err != nil {
				b.Error(err)
				return
			}
			h.CloseInput()
		}()
		parser := adm.NewParser()
		parsed := 0
		spine := hyracks.GetRecordSlice(128)
		arena := hyracks.GetArena()
		for {
			frames, eof, err := h.PullFrames(ctx, 420)
			if err != nil {
				b.Fatal(err)
			}
			for _, fr := range frames {
				for _, raw := range fr.Raw {
					var perr error
					spine, perr = parser.ParseInto(raw, spine, arena)
					if perr != nil {
						b.Fatal(perr)
					}
					parsed++
				}
				hyracks.RecycleFrame(fr)
				// A real collector would push {spine, arena} downstream
				// here; the isolated benchmark recycles them in place.
				spine = spine[:0]
				arena.Reset()
			}
			if eof {
				break
			}
		}
		hyracks.PutRecordSlice(spine)
		hyracks.PutArena(arena)
		if parsed != n {
			b.Fatalf("parsed %d records, want %d", parsed, n)
		}
		total += parsed
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "records/s")
}
