package core

import (
	"context"
	"fmt"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/hyracks"
)

// pushWriter bridges a FrameBuilder to a PassiveHolder for the intake
// micro-benchmark.
type pushWriter struct {
	ctx context.Context
	h   *hyracks.PassiveHolder
}

func (w *pushWriter) Open() error { return nil }
func (w *pushWriter) Push(f hyracks.Frame) error {
	return w.h.PushFrame(w.ctx, f)
}
func (w *pushWriter) Close() error { return nil }

// BenchmarkIntakePath measures the intake→parse half of the feed in
// isolation: adapter bytes ride raw frames through a partition holder
// and come out as parsed ADM records — no UDF, no storage, no cluster
// simulation. This is the path the zero-copy refactor targets: raw
// bytes are never wrapped in strings or copied, frame spines are
// pooled, and the collector-side parser interns field names.
func BenchmarkIntakePath(b *testing.B) {
	const n = 10_000
	records := make([][]byte, n)
	for i := range records {
		records[i] = fmt.Appendf(nil,
			`{"id":%d,"text":"benchmark tweet with some padding text","lang":"en","user":{"id":%d,"screen_name":"bench"}}`,
			i, i%97)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		h := hyracks.NewPassiveHolder(64)
		adapter := &GeneratorAdapter{Records: records}
		go func() {
			builder := hyracks.NewFrameBuilder(128, &pushWriter{ctx: ctx, h: h})
			if err := adapter.Run(ctx, builder.AddRaw); err != nil {
				b.Error(err)
				return
			}
			if err := builder.Flush(); err != nil {
				b.Error(err)
				return
			}
			h.CloseInput()
		}()
		parser := adm.NewParser()
		parsed := 0
		for {
			raws, eof, err := h.PullRawBatch(ctx, 420)
			if err != nil {
				b.Fatal(err)
			}
			for _, raw := range raws {
				if _, err := parser.Parse(raw); err != nil {
					b.Fatal(err)
				}
				parsed++
			}
			hyracks.PutRawSlice(raws)
			if eof {
				break
			}
		}
		if parsed != n {
			b.Fatalf("parsed %d records, want %d", parsed, n)
		}
		total += parsed
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "records/s")
}
