// Package udf is the user-defined-function framework: the Go analog of
// the paper's Java UDFs (compiled code with an initialize/evaluate
// lifecycle and node-local resource files) plus the registry that ties
// native and SQL++ functions together for feed pipelines.
//
// Lifecycle semantics mirror the paper exactly:
//   - On the old "static" pipeline an instance is initialized once when
//     the feed starts, so resource updates are never observed.
//   - On the new "dynamic" pipeline an instance is initialized once per
//     computing-job invocation, so each batch observes the current
//     resources — the paper's reference-data-update guarantee, for
//     compiled UDFs.
package udf

import (
	"bufio"
	"bytes"
	"fmt"
	"sync"

	"github.com/ideadb/idea/internal/adm"
)

// ResourceStore holds the "local resource files" native UDFs load in
// Initialize. Updating a resource models redeploying the file to every
// node.
type ResourceStore struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewResourceStore returns an empty store.
func NewResourceStore() *ResourceStore {
	return &ResourceStore{files: make(map[string][]byte)}
}

// Put installs (or replaces) a resource file.
func (s *ResourceStore) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = append([]byte(nil), data...)
}

// Get reads a resource file.
func (s *ResourceStore) Get(name string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Lines reads a resource file as trimmed lines (the paper's keyword-list
// format).
func (s *ResourceStore) Lines(name string) ([]string, bool) {
	data, ok := s.Get(name)
	if !ok {
		return nil, false
	}
	var lines []string
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			lines = append(lines, line)
		}
	}
	return lines, true
}

// Instance is one live evaluator of a native UDF (per node, per
// pipeline or per batch depending on the framework).
type Instance interface {
	// Initialize loads resources and builds state. node identifies the
	// hosting node (the paper's nodeInfo).
	Initialize(node int) error
	// Evaluate enriches one record.
	Evaluate(rec adm.Value) (adm.Value, error)
}

// Native is a compiled ("Java") UDF: a factory of instances plus its
// statefulness declaration.
type Native struct {
	// Name is the function's registered name.
	Name string
	// Stateful declares that Initialize builds state from resources; the
	// static pipeline then serves stale state, and the dynamic pipeline
	// re-initializes per batch.
	Stateful bool
	// New creates an instance.
	New func() Instance
}

// FuncInstance adapts plain functions to Instance.
type FuncInstance struct {
	InitFn func(node int) error
	EvalFn func(rec adm.Value) (adm.Value, error)
}

// Initialize implements Instance.
func (f *FuncInstance) Initialize(node int) error {
	if f.InitFn == nil {
		return nil
	}
	return f.InitFn(node)
}

// Evaluate implements Instance.
func (f *FuncInstance) Evaluate(rec adm.Value) (adm.Value, error) {
	if f.EvalFn == nil {
		return rec, nil
	}
	return f.EvalFn(rec)
}

// Registry holds the native UDFs available to feed pipelines.
type Registry struct {
	mu      sync.RWMutex
	natives map[string]*Native
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{natives: make(map[string]*Native)}
}

// Register adds a native UDF.
func (r *Registry) Register(n *Native) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.natives[n.Name]; dup {
		return fmt.Errorf("udf: native function %q exists", n.Name)
	}
	r.natives[n.Name] = n
	return nil
}

// Lookup resolves a native UDF.
func (r *Registry) Lookup(name string) (*Native, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.natives[name]
	return n, ok
}
