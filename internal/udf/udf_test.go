package udf

import (
	"errors"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

func TestResourceStore(t *testing.T) {
	s := NewResourceStore()
	if _, ok := s.Get("missing"); ok {
		t.Error("missing resource should not be found")
	}
	s.Put("keywords", []byte("US|bomb\nUS|attack\nFR|attaque\n"))
	data, ok := s.Get("keywords")
	if !ok || len(data) == 0 {
		t.Fatal("Get failed")
	}
	// Mutating the returned slice must not affect the store.
	data[0] = 'X'
	again, _ := s.Get("keywords")
	if again[0] != 'U' {
		t.Error("Get must return a copy")
	}
	lines, ok := s.Lines("keywords")
	if !ok || len(lines) != 3 || lines[2] != "FR|attaque" {
		t.Errorf("Lines = %v, %v", lines, ok)
	}
	if _, ok := s.Lines("nope"); ok {
		t.Error("Lines on missing resource")
	}
	// Replacement is visible.
	s.Put("keywords", []byte("DE|anschlag\n"))
	lines, _ = s.Lines("keywords")
	if len(lines) != 1 || lines[0] != "DE|anschlag" {
		t.Errorf("after replace: %v", lines)
	}
}

func TestFuncInstanceDefaults(t *testing.T) {
	// Zero-value FuncInstance is an identity UDF.
	inst := &FuncInstance{}
	if err := inst.Initialize(0); err != nil {
		t.Fatal(err)
	}
	in := adm.ObjectValue(adm.ObjectFromPairs("id", adm.Int(1)))
	out, err := inst.Evaluate(in)
	if err != nil || !adm.Equal(in, out) {
		t.Errorf("identity evaluate = %v, %v", out, err)
	}
}

func TestFuncInstanceLifecycle(t *testing.T) {
	initNode := -1
	boom := errors.New("boom")
	inst := &FuncInstance{
		InitFn: func(node int) error {
			initNode = node
			return nil
		},
		EvalFn: func(rec adm.Value) (adm.Value, error) {
			if rec.Field("id").IntVal() == 13 {
				return adm.Value{}, boom
			}
			o := rec.ObjectVal().CopyShallow()
			o.Set("seen", adm.Bool(true))
			return adm.ObjectValue(o), nil
		},
	}
	if err := inst.Initialize(5); err != nil || initNode != 5 {
		t.Fatalf("Initialize: %v, node=%d", err, initNode)
	}
	out, err := inst.Evaluate(adm.ObjectValue(adm.ObjectFromPairs("id", adm.Int(1))))
	if err != nil || !out.Field("seen").BoolVal() {
		t.Errorf("Evaluate = %v, %v", out, err)
	}
	if _, err := inst.Evaluate(adm.ObjectValue(adm.ObjectFromPairs("id", adm.Int(13)))); !errors.Is(err, boom) {
		t.Errorf("error passthrough = %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	n := &Native{
		Name:     "clean",
		Stateful: true,
		New:      func() Instance { return &FuncInstance{} },
	}
	if err := r.Register(n); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(n); err == nil {
		t.Error("duplicate registration should fail")
	}
	got, ok := r.Lookup("clean")
	if !ok || got != n {
		t.Error("lookup failed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("lookup miss expected")
	}
	// Instances are independent.
	a, b := got.New(), got.New()
	if a == b {
		t.Error("New must build fresh instances")
	}
}

// TestPaperKeywordUDF builds the paper's Java UDF 2 (Figure 7): a
// keyword list loaded from a resource file at Initialize, probed per
// record at Evaluate.
func TestPaperKeywordUDF(t *testing.T) {
	store := NewResourceStore()
	store.Put("keywords", []byte("1|US|bomb\n2|US|attack\n3|FR|attaque\n"))

	newInstance := func() Instance {
		keywords := map[string][]string{}
		return &FuncInstance{
			InitFn: func(int) error {
				lines, ok := store.Lines("keywords")
				if !ok {
					return errors.New("keyword list missing")
				}
				for _, line := range lines {
					var id, country, word string
					parts := splitPipe(line)
					if len(parts) != 3 {
						continue
					}
					id, country, word = parts[0], parts[1], parts[2]
					_ = id
					keywords[country] = append(keywords[country], word)
				}
				return nil
			},
			EvalFn: func(rec adm.Value) (adm.Value, error) {
				flag := "Green"
				for _, w := range keywords[rec.Field("country").StringVal()] {
					if containsStr(rec.Field("text").StringVal(), w) {
						flag = "Red"
						break
					}
				}
				o := rec.ObjectVal().CopyShallow()
				o.Set("safety_check_flag", adm.String(flag))
				return adm.ObjectValue(o), nil
			},
		}
	}

	inst := newInstance()
	if err := inst.Initialize(0); err != nil {
		t.Fatal(err)
	}
	red, _ := inst.Evaluate(adm.ObjectValue(adm.ObjectFromPairs(
		"country", adm.String("US"), "text", adm.String("a bomb threat"))))
	if red.Field("safety_check_flag").StringVal() != "Red" {
		t.Errorf("US bomb should be Red: %v", red)
	}
	green, _ := inst.Evaluate(adm.ObjectValue(adm.ObjectFromPairs(
		"country", adm.String("FR"), "text", adm.String("a bomb threat"))))
	if green.Field("safety_check_flag").StringVal() != "Green" {
		t.Errorf("FR bomb is not in the FR list: %v", green)
	}

	// The dynamic framework re-initializes per batch: a new instance
	// observes the updated resource file.
	store.Put("keywords", []byte("1|FR|bomb\n"))
	inst2 := newInstance()
	inst2.Initialize(0)
	now, _ := inst2.Evaluate(adm.ObjectValue(adm.ObjectFromPairs(
		"country", adm.String("FR"), "text", adm.String("a bomb threat"))))
	if now.Field("safety_check_flag").StringVal() != "Red" {
		t.Error("fresh instance should see updated keywords")
	}
	// The stale instance still uses the old list (static-pipeline
	// behaviour).
	stale, _ := inst.Evaluate(adm.ObjectValue(adm.ObjectFromPairs(
		"country", adm.String("FR"), "text", adm.String("a bomb threat"))))
	if stale.Field("safety_check_flag").StringVal() != "Green" {
		t.Error("stale instance must not see the update")
	}
}

func splitPipe(s string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
