package sqlpp

// CollectParams returns the distinct parameter names referenced by the
// statements, in first-appearance order. Executors use it to validate a
// binding set before running anything: every referenced $name must be
// bound, and every bound argument must be referenced. Parameters inside
// string literals are just text — the lexer has already folded them
// into TokString — so they are never reported.
func CollectParams(stmts []Statement) []string {
	c := &paramCollector{seen: make(map[string]bool)}
	for _, s := range stmts {
		switch n := s.(type) {
		case *Insert:
			c.expr(n.Source)
		case *Query:
			c.sel(n.Sel)
		}
		// CreateFunction bodies are deliberately NOT walked: a stored
		// function outlives the Execute call, so a binding supplied now
		// could not be honored later. Executors reject $params there
		// (via CollectExprParams) instead of silently dropping them.
	}
	return c.names
}

// CollectExprParams is CollectParams for a bare expression. Executors
// use it to reject parameters in positions with no binding lifetime
// (stored CREATE FUNCTION bodies).
func CollectExprParams(e Expr) []string {
	c := &paramCollector{seen: make(map[string]bool)}
	c.expr(e)
	return c.names
}

type paramCollector struct {
	names []string
	seen  map[string]bool
}

func (c *paramCollector) add(name string) {
	if !c.seen[name] {
		c.seen[name] = true
		c.names = append(c.names, name)
	}
}

func (c *paramCollector) expr(e Expr) {
	switch n := e.(type) {
	case nil:
	case *Param:
		c.add(n.Name)
	case *FieldAccess:
		c.expr(n.Base)
	case *IndexAccess:
		c.expr(n.Base)
		c.expr(n.Index)
	case *Call:
		for _, a := range n.Args {
			c.expr(a)
		}
	case *Unary:
		c.expr(n.X)
	case *Binary:
		c.expr(n.L)
		c.expr(n.R)
	case *CaseExpr:
		c.expr(n.Operand)
		for _, w := range n.Whens {
			c.expr(w.When)
			c.expr(w.Then)
		}
		c.expr(n.Else)
	case *Exists:
		c.sel(n.Sub)
	case *In:
		c.expr(n.X)
		c.expr(n.Coll)
	case *SubqueryExpr:
		c.sel(n.Sel)
	case *ArrayCtor:
		for _, el := range n.Elems {
			c.expr(el)
		}
	case *ObjectCtor:
		for _, f := range n.Fields {
			c.expr(f.Val)
		}
	case *SelectExpr:
		c.sel(n)
	}
}

func (c *paramCollector) sel(sel *SelectExpr) {
	if sel == nil {
		return
	}
	for _, l := range sel.Lets {
		c.expr(l.Expr)
	}
	c.expr(sel.SelectValue)
	for _, p := range sel.Projections {
		c.expr(p.Expr)
	}
	for _, fc := range sel.From {
		c.expr(fc.Source)
	}
	for _, l := range sel.FromLets {
		c.expr(l.Expr)
	}
	c.expr(sel.Where)
	for _, gk := range sel.GroupBy {
		c.expr(gk.Expr)
	}
	for _, ob := range sel.OrderBy {
		c.expr(ob.Expr)
	}
	c.expr(sel.Limit)
}
