package sqlpp

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/ideadb/idea/internal/adm"
)

// Parse parses a sequence of semicolon-separated statements.
func Parse(src string) ([]Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for !p.at(TokEOF, "") {
		if p.at(TokOp, ";") {
			p.next()
			continue
		}
		at := p.cur().Pos
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if ps, ok := s.(interface{ setPos(int) }); ok {
			ps.setPos(at)
		}
		stmts = append(stmts, s)
		if !p.at(TokOp, ";") && !p.at(TokEOF, "") {
			return nil, p.errorf("expected ';' after statement")
		}
	}
	return stmts, nil
}

// ParseExpr parses a single expression (used for UDF bodies supplied
// programmatically and in tests).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseQueryOrExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errorf("trailing input after expression")
	}
	return e, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) atKeyword(kw string) bool { return p.at(TokKeyword, kw) }

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return Token{}, p.errorf("expected %q", text)
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().Kind == TokIdent {
		return p.next().Text, nil
	}
	return "", p.errorf("expected identifier")
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("sqlpp: parse error at offset %d (near %q): %s",
		t.Pos, t.Text, fmt.Sprintf(format, args...))
}

// --- statements ---

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.atKeyword("CREATE"):
		return p.parseCreate()
	case p.atKeyword("CONNECT"):
		return p.parseConnectFeed()
	case p.atKeyword("START"):
		p.next()
		if _, err := p.expect(TokKeyword, "FEED"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &StartFeed{Name: name}, nil
	case p.atKeyword("STOP"):
		p.next()
		if _, err := p.expect(TokKeyword, "FEED"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &StopFeed{Name: name}, nil
	case p.atKeyword("INSERT"), p.atKeyword("UPSERT"):
		return p.parseInsert()
	case p.atKeyword("SELECT"), p.atKeyword("LET"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Query{Sel: sel}, nil
	}
	return nil, p.errorf("expected a statement")
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.atKeyword("TYPE"):
		return p.parseCreateType()
	case p.atKeyword("DATASET"):
		return p.parseCreateDataset()
	case p.atKeyword("INDEX"):
		return p.parseCreateIndex()
	case p.atKeyword("FUNCTION"):
		return p.parseCreateFunction()
	case p.atKeyword("FEED"):
		return p.parseCreateFeed()
	}
	return nil, p.errorf("expected TYPE, DATASET, INDEX, FUNCTION, or FEED after CREATE")
}

func (p *parser) parseCreateType() (Statement, error) {
	p.next() // TYPE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "AS"); err != nil {
		return nil, err
	}
	open := true
	if p.accept(TokKeyword, "CLOSED") {
		open = false
	} else {
		p.accept(TokKeyword, "OPEN")
	}
	if _, err := p.expect(TokOp, "{"); err != nil {
		return nil, err
	}
	var fields []adm.FieldDef
	for !p.at(TokOp, "}") {
		fname, err := p.fieldName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ":"); err != nil {
			return nil, err
		}
		tname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, ok := adm.KindFromName(strings.ToLower(tname))
		if !ok {
			return nil, p.errorf("unknown type %q", tname)
		}
		optional := p.accept(TokOp, "?")
		fields = append(fields, adm.FieldDef{Name: fname, Kind: kind, Optional: optional})
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, "}"); err != nil {
		return nil, err
	}
	return &CreateType{Name: name, Open: open, Fields: fields}, nil
}

// fieldName accepts identifiers, strings, and keywords as record field
// names (tweets have a "text" field; TYPE is a keyword but a fine field).
func (p *parser) fieldName() (string, error) {
	t := p.cur()
	switch t.Kind {
	case TokIdent, TokString:
		p.next()
		return t.Text, nil
	case TokKeyword:
		p.next()
		return strings.ToLower(t.Text), nil
	}
	return "", p.errorf("expected field name")
}

func (p *parser) parseCreateDataset() (Statement, error) {
	p.next() // DATASET
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	typeName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "PRIMARY"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "KEY"); err != nil {
		return nil, err
	}
	pk, err := p.fieldName()
	if err != nil {
		return nil, err
	}
	return &CreateDataset{Name: name, TypeName: typeName, PrimaryKey: pk}, nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	p.next() // INDEX
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	ds, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	field, err := p.fieldName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	kind := "BTREE"
	if p.accept(TokKeyword, "TYPE") {
		t := p.cur()
		if t.Kind != TokIdent || (strings.ToUpper(t.Text) != "BTREE" && strings.ToUpper(t.Text) != "RTREE") {
			return nil, p.errorf("expected BTREE or RTREE")
		}
		kind = strings.ToUpper(p.next().Text)
	}
	return &CreateIndex{Name: name, Dataset: ds, Field: field, Kind: kind}, nil
}

func (p *parser) parseCreateFunction() (Statement, error) {
	p.next() // FUNCTION
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(TokOp, ")") {
		param, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, param)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "{"); err != nil {
		return nil, err
	}
	body, err := p.parseQueryOrExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "}"); err != nil {
		return nil, err
	}
	return &CreateFunction{Name: name, Params: params, Body: body}, nil
}

func (p *parser) parseCreateFeed() (Statement, error) {
	p.next() // FEED
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "WITH"); err != nil {
		return nil, err
	}
	cfgExpr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	cfg, err := constEval(cfgExpr)
	if err != nil {
		return nil, p.errorf("feed config must be constant: %v", err)
	}
	return &CreateFeed{Name: name, Config: cfg}, nil
}

func (p *parser) parseConnectFeed() (Statement, error) {
	p.next() // CONNECT
	if _, err := p.expect(TokKeyword, "FEED"); err != nil {
		return nil, err
	}
	feed, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "TO"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "DATASET"); err != nil {
		return nil, err
	}
	ds, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fn := ""
	if p.accept(TokKeyword, "APPLY") {
		if _, err := p.expect(TokKeyword, "FUNCTION"); err != nil {
			return nil, err
		}
		fn, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	}
	return &ConnectFeed{Feed: feed, Dataset: ds, Function: fn}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	upsert := p.atKeyword("UPSERT")
	p.next() // INSERT | UPSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	ds, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	src, err := p.parseQueryOrExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return &Insert{Dataset: ds, Source: src, Upsert: upsert}, nil
}

// --- queries ---

// parseQueryOrExpr parses either a query block (starting with SELECT or
// LET) or a plain expression.
func (p *parser) parseQueryOrExpr() (Expr, error) {
	if p.atKeyword("SELECT") || p.atKeyword("LET") {
		return p.parseSelect()
	}
	return p.parseExpr()
}

func (p *parser) parseSelect() (*SelectExpr, error) {
	sel := &SelectExpr{}
	if p.atKeyword("LET") {
		lets, err := p.parseLets()
		if err != nil {
			return nil, err
		}
		sel.Lets = lets
	}
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel.Distinct = p.accept(TokKeyword, "DISTINCT")
	if p.accept(TokKeyword, "VALUE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.SelectValue = e
	} else {
		for {
			proj, err := p.parseProjection()
			if err != nil {
				return nil, err
			}
			sel.Projections = append(sel.Projections, proj)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "FROM") {
		for {
			fc, err := p.parseFromClause()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, fc)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.atKeyword("LET") {
		lets, err := p.parseLets()
		if err != nil {
			return nil, err
		}
		sel.FromLets = lets
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.atKeyword("GROUP") {
		p.next()
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			gk := GroupKey{Expr: e}
			if p.accept(TokKeyword, "AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				gk.Alias = alias
			}
			sel.GroupBy = append(sel.GroupBy, gk)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.atKeyword("ORDER") {
		p.next()
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ok := OrderKey{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				ok.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, ok)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	return sel, nil
}

func (p *parser) parseLets() ([]LetBinding, error) {
	if _, err := p.expect(TokKeyword, "LET"); err != nil {
		return nil, err
	}
	var lets []LetBinding
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		lets = append(lets, LetBinding{Name: name, Expr: e})
		if !p.accept(TokOp, ",") {
			break
		}
	}
	return lets, nil
}

func (p *parser) parseProjection() (Projection, error) {
	// Bare `*`: project the whole binding record.
	if p.at(TokOp, "*") {
		p.next()
		return Projection{Star: true}, nil
	}
	e, star, err := p.parseExprAllowStar()
	if err != nil {
		return Projection{}, err
	}
	proj := Projection{Expr: e, Star: star}
	if star {
		return proj, nil
	}
	if p.accept(TokKeyword, "AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return Projection{}, err
		}
		proj.Alias = alias
	} else if p.cur().Kind == TokIdent {
		// Implicit alias: `count(tweet) Num`.
		proj.Alias = p.next().Text
	}
	return proj, nil
}

func (p *parser) parseFromClause() (FromClause, error) {
	e, err := p.parsePostfixOnlyExpr()
	if err != nil {
		return FromClause{}, err
	}
	fc := FromClause{Source: e}
	if p.accept(TokKeyword, "AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return FromClause{}, err
		}
		fc.Alias = alias
	} else if p.cur().Kind == TokIdent {
		fc.Alias = p.next().Text
	} else {
		// Default alias: trailing identifier of the source path.
		switch src := e.(type) {
		case *Ident:
			fc.Alias = src.Name
		case *FieldAccess:
			fc.Alias = src.Field
		default:
			return FromClause{}, p.errorf("FROM clause needs an alias")
		}
	}
	return fc, nil
}

// --- expressions ---

func (p *parser) parseExpr() (Expr, error) {
	e, star, err := p.parseExprAllowStar()
	if err != nil {
		return nil, err
	}
	if star {
		return nil, p.errorf(".* is only allowed in a SELECT list")
	}
	return e, nil
}

// parseExprAllowStar parses an expression, additionally accepting a
// trailing `.*` (returned via the star flag) for SELECT lists.
func (p *parser) parseExprAllowStar() (Expr, bool, error) {
	e, err := p.parseOr()
	if err != nil {
		return nil, false, err
	}
	if p.at(TokOp, ".") && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "*" {
		p.next()
		p.next()
		return e, true, nil
	}
	return e, false, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokOp {
		switch op := p.cur().Text; op {
		case "=", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	if p.atKeyword("IN") {
		p.next()
		coll, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &In{X: l, Coll: coll}, nil
	}
	if p.atKeyword("NOT") && p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "IN" {
		p.next()
		p.next()
		coll, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &In{Not: true, X: l, Coll: coll}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "+") || p.at(TokOp, "-") {
		op := p.next().Text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "*") || p.at(TokOp, "/") || p.at(TokOp, "%") {
		op := p.next().Text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.at(TokOp, "-") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePostfix()
}

// parsePostfixOnlyExpr parses a primary expression with postfix
// accessors but no binary operators (FROM sources).
func (p *parser) parsePostfixOnlyExpr() (Expr, error) {
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokOp, "."):
			// Stop before `.*` — handled by parseExprAllowStar.
			if p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "*" {
				return e, nil
			}
			p.next()
			name, err := p.fieldName()
			if err != nil {
				return nil, err
			}
			e = &FieldAccess{Base: e, Field: name}
		case p.at(TokOp, "["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, "]"); err != nil {
				return nil, err
			}
			e = &IndexAccess{Base: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal")
		}
		return &Literal{Val: adm.Int(i)}, nil
	case TokDouble:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad double literal")
		}
		return &Literal{Val: adm.Double(f)}, nil
	case TokString:
		p.next()
		return &Literal{Val: adm.String(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return &Literal{Val: adm.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: adm.Bool(false)}, nil
		case "NULL":
			p.next()
			return &Literal{Val: adm.Null()}, nil
		case "MISSING":
			p.next()
			return &Literal{Val: adm.Missing()}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.next()
			if _, err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &Exists{Sub: sel}, nil
		}
		return nil, p.errorf("unexpected keyword %s", t.Text)
	case TokIdent:
		return p.parseIdentOrCall()
	case TokOp:
		switch t.Text {
		case "(":
			p.next()
			inner, err := p.parseQueryOrExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			if sel, isSel := inner.(*SelectExpr); isSel {
				return &SubqueryExpr{Sel: sel}, nil
			}
			return inner, nil
		case "[":
			p.next()
			var elems []Expr
			for !p.at(TokOp, "]") {
				e, err := p.parseQueryOrExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, "]"); err != nil {
				return nil, err
			}
			return &ArrayCtor{Elems: elems}, nil
		case "{":
			return p.parseObjectCtor()
		}
	}
	return nil, p.errorf("expected an expression")
}

func (p *parser) parseIdentOrCall() (Expr, error) {
	tok := p.next()
	name := tok.Text
	if strings.HasPrefix(name, "$") {
		// A statement parameter: $name or $1. Lone `$` is malformed.
		if len(name) == 1 {
			p.pos--
			return nil, p.errorf("empty parameter name")
		}
		return &Param{Name: name[1:], Off: tok.Pos}, nil
	}
	ns := ""
	if p.at(TokOp, "#") {
		p.next()
		fn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ns, name = name, fn
	}
	if p.at(TokOp, "(") {
		p.next()
		call := &Call{Ns: ns, Name: name}
		if p.at(TokOp, "*") {
			p.next()
			call.Star = true
		} else {
			for !p.at(TokOp, ")") {
				arg, err := p.parseQueryOrExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(TokOp, ",") {
					break
				}
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if ns != "" {
		return nil, p.errorf("namespaced reference %s#%s must be a call", ns, name)
	}
	return &Ident{Name: name}, nil
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	ce := &CaseExpr{}
	if !p.atKeyword("WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = operand
	}
	for p.accept(TokKeyword, "WHEN") {
		when, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{When: when, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(TokKeyword, "ELSE") {
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = els
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseObjectCtor() (Expr, error) {
	p.next() // {
	obj := &ObjectCtor{}
	for !p.at(TokOp, "}") {
		key, err := p.fieldName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ":"); err != nil {
			return nil, err
		}
		val, err := p.parseQueryOrExpr()
		if err != nil {
			return nil, err
		}
		obj.Fields = append(obj.Fields, ObjectField{Key: key, Val: val})
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, "}"); err != nil {
		return nil, err
	}
	return obj, nil
}

// constEval evaluates constant expressions (literals, arrays, objects,
// unary minus) — enough for feed configs and INSERT literals.
func constEval(e Expr) (adm.Value, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val, nil
	case *Unary:
		if n.Op == "-" {
			v, err := constEval(n.X)
			if err != nil {
				return adm.Value{}, err
			}
			switch v.Kind() {
			case adm.KindInt64:
				return adm.Int(-v.IntVal()), nil
			case adm.KindDouble:
				return adm.Double(-v.DoubleVal()), nil
			}
		}
	case *ArrayCtor:
		elems := make([]adm.Value, len(n.Elems))
		for i, el := range n.Elems {
			v, err := constEval(el)
			if err != nil {
				return adm.Value{}, err
			}
			elems[i] = v
		}
		return adm.Array(elems), nil
	case *ObjectCtor:
		o := adm.NewObject(len(n.Fields))
		for _, f := range n.Fields {
			v, err := constEval(f.Val)
			if err != nil {
				return adm.Value{}, err
			}
			o.Set(f.Key, v)
		}
		return adm.ObjectValue(o), nil
	}
	return adm.Value{}, fmt.Errorf("not a constant expression")
}

// ConstEval exposes constant folding for callers that accept literal
// arrays/objects in DML position (INSERT INTO ds ([...])).
func ConstEval(e Expr) (adm.Value, error) { return constEval(e) }
