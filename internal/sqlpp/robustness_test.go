package sqlpp

import (
	"math/rand"
	"strings"
	"testing"
)

// corpus is a set of valid programs whose mutations must never panic the
// lexer or parser.
var corpus = []string{
	`CREATE TYPE TweetType AS OPEN { id: int64, text: string };`,
	`CREATE DATASET Tweets(TweetType) PRIMARY KEY id;`,
	`SELECT tweet.country Country, count(tweet) Num FROM Tweets tweet GROUP BY tweet.country;`,
	`CREATE FUNCTION f(t) {
		LET x = (SELECT VALUE s.a FROM S s WHERE s.k = t.k ORDER BY s.v DESC LIMIT 3)
		SELECT t.*, x
	};`,
	`INSERT INTO D ([{"id": 1, "point": [1.5, -2.5], "nested": {"a": [true, null]}}]);`,
	`SELECT VALUE CASE WHEN a = 1 THEN "x" ELSE "y" END FROM D d;`,
	`CONNECT FEED F TO DATASET D APPLY FUNCTION g;`,
	`SELECT x.a, lib#fn(x.b)[0].c FROM D x WHERE x.a IN (SELECT VALUE y.a FROM E y) AND NOT x.done;`,
}

// TestParseNeverPanicsOnPrefixes: every prefix of a valid program either
// parses or returns an error — never panics.
func TestParseNeverPanicsOnPrefixes(t *testing.T) {
	for _, src := range corpus {
		for i := 0; i <= len(src); i++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on prefix %q: %v", src[:i], r)
					}
				}()
				Parse(src[:i]) //nolint:errcheck // outcome irrelevant, only no-panic
			}()
		}
	}
}

// TestParseNeverPanicsOnMutations: random byte mutations of valid
// programs never panic.
func TestParseNeverPanicsOnMutations(t *testing.T) {
	r := rand.New(rand.NewSource(2019))
	noise := []byte(`(){}[],.;:"'#?*=<>+-x0 `)
	for _, src := range corpus {
		for trial := 0; trial < 300; trial++ {
			b := []byte(src)
			for k := 0; k < 1+r.Intn(4); k++ {
				pos := r.Intn(len(b))
				switch r.Intn(3) {
				case 0:
					b[pos] = noise[r.Intn(len(noise))]
				case 1:
					b = append(b[:pos], b[pos+1:]...)
				default:
					b = append(b[:pos], append([]byte{noise[r.Intn(len(noise))]}, b[pos:]...)...)
				}
				if len(b) == 0 {
					break
				}
			}
			mut := string(b)
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("panic on mutation %q: %v", mut, rec)
					}
				}()
				Parse(mut) //nolint:errcheck
			}()
		}
	}
}

// TestLexParseRoundTripTokens: lexing is total on printable ASCII noise.
func TestLexNoiseTotal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(60)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte(32 + r.Intn(95)))
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("lex panic on %q: %v", sb.String(), rec)
				}
			}()
			Lex(sb.String()) //nolint:errcheck
		}()
	}
}
