package sqlpp

import (
	"fmt"
	"strings"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("Parse(%q) returned %d statements", src, len(stmts))
	}
	return stmts[0]
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`SELECT t.a, "str" -- comment
		FROM ds /* block */ WHERE x >= 1.5e2 AND y != 'q'`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tok.Text)
	}
	want := []string{"SELECT", "t", ".", "a", ",", "str", "FROM", "ds", "WHERE", "x", ">=", "1.5e2", "AND", "y", "!=", "q"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Errorf("lex = %v\nwant %v", kinds, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "`unterminated", `@bad`, `/* unterminated`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestParseCreateTypePaperFig1(t *testing.T) {
	s := parseOne(t, `CREATE TYPE TweetType AS OPEN {
		id : int64,
		text: string
	};`)
	ct, ok := s.(*CreateType)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ct.Name != "TweetType" || !ct.Open || len(ct.Fields) != 2 {
		t.Errorf("CreateType = %+v", ct)
	}
	if ct.Fields[0].Name != "id" || ct.Fields[0].Kind != adm.KindInt64 {
		t.Errorf("field 0 = %+v", ct.Fields[0])
	}
	if ct.Fields[1].Name != "text" || ct.Fields[1].Kind != adm.KindString {
		t.Errorf("field 1 = %+v", ct.Fields[1])
	}
}

func TestParseCreateTypeClosedOptional(t *testing.T) {
	s := parseOne(t, `CREATE TYPE T AS CLOSED { a: string, b: datetime? }`)
	ct := s.(*CreateType)
	if ct.Open {
		t.Error("should be closed")
	}
	if !ct.Fields[1].Optional || ct.Fields[1].Kind != adm.KindDateTime {
		t.Errorf("optional field = %+v", ct.Fields[1])
	}
}

func TestParseCreateDataset(t *testing.T) {
	s := parseOne(t, `CREATE DATASET Tweets(TweetType) PRIMARY KEY id;`)
	cd := s.(*CreateDataset)
	if cd.Name != "Tweets" || cd.TypeName != "TweetType" || cd.PrimaryKey != "id" {
		t.Errorf("CreateDataset = %+v", cd)
	}
}

func TestParseCreateIndex(t *testing.T) {
	s := parseOne(t, `CREATE INDEX mloc ON monumentList(monument_location) TYPE RTREE;`)
	ci := s.(*CreateIndex)
	if ci.Name != "mloc" || ci.Dataset != "monumentList" || ci.Field != "monument_location" || ci.Kind != "RTREE" {
		t.Errorf("CreateIndex = %+v", ci)
	}
	s = parseOne(t, `CREATE INDEX byC ON SafetyRatings(country_code);`)
	if s.(*CreateIndex).Kind != "BTREE" {
		t.Error("default index kind should be BTREE")
	}
}

func TestParseCreateFeedPaperFig4(t *testing.T) {
	s := parseOne(t, `CREATE FEED TweetFeed WITH {
		"type-name" : "TweetType",
		"adapter-name": "socket_adapter",
		"format" : "JSON",
		"sockets": "127.0.0.1:10001",
		"address-type": "IP"
	};`)
	cf := s.(*CreateFeed)
	if cf.Name != "TweetFeed" {
		t.Errorf("feed name = %q", cf.Name)
	}
	if got := cf.Config.Field("adapter-name").StringVal(); got != "socket_adapter" {
		t.Errorf("adapter-name = %q", got)
	}
	if got := cf.Config.Field("sockets").StringVal(); got != "127.0.0.1:10001" {
		t.Errorf("sockets = %q", got)
	}
}

func TestParseConnectAndStartStop(t *testing.T) {
	s := parseOne(t, `CONNECT FEED TweetFeed TO DATASET Tweets;`)
	cn := s.(*ConnectFeed)
	if cn.Feed != "TweetFeed" || cn.Dataset != "Tweets" || cn.Function != "" {
		t.Errorf("ConnectFeed = %+v", cn)
	}
	s = parseOne(t, `CONNECT FEED TweetFeed TO DATASET EnrichedTweets APPLY FUNCTION USTweetSafetyCheck;`)
	cn = s.(*ConnectFeed)
	if cn.Function != "USTweetSafetyCheck" {
		t.Errorf("apply function = %q", cn.Function)
	}
	if parseOne(t, `START FEED TweetFeed;`).(*StartFeed).Name != "TweetFeed" {
		t.Error("start feed")
	}
	if parseOne(t, `STOP FEED TweetFeed;`).(*StopFeed).Name != "TweetFeed" {
		t.Error("stop feed")
	}
}

func TestParseInsertPaperFig3(t *testing.T) {
	s := parseOne(t, `INSERT INTO Tweets ([
		{"id":0, "text": "Let there be light"}
	]);`)
	ins := s.(*Insert)
	if ins.Dataset != "Tweets" || ins.Upsert {
		t.Errorf("Insert = %+v", ins)
	}
	arr, ok := ins.Source.(*ArrayCtor)
	if !ok || len(arr.Elems) != 1 {
		t.Fatalf("source = %T", ins.Source)
	}
	v, err := ConstEval(ins.Source)
	if err != nil {
		t.Fatal(err)
	}
	if v.Index(0).Field("text").StringVal() != "Let there be light" {
		t.Errorf("const eval = %v", v)
	}
}

func TestParseUpsert(t *testing.T) {
	s := parseOne(t, `UPSERT INTO SafetyRatings ([{"country_code": "US", "safety_rating": "2"}]);`)
	if !s.(*Insert).Upsert {
		t.Error("UPSERT flag lost")
	}
}

func TestParseUDF1PaperFig6(t *testing.T) {
	s := parseOne(t, `CREATE FUNCTION USTweetSafetyCheck(tweet) {
		LET safety_check_flag =
			CASE tweet.country = "US" AND contains(tweet.text, "bomb")
			WHEN true THEN "Red" ELSE "Green"
			END
		SELECT tweet.*, safety_check_flag
	};`)
	cf := s.(*CreateFunction)
	if cf.Name != "USTweetSafetyCheck" || len(cf.Params) != 1 || cf.Params[0] != "tweet" {
		t.Fatalf("CreateFunction = %+v", cf)
	}
	sel, ok := cf.Body.(*SelectExpr)
	if !ok {
		t.Fatalf("body = %T", cf.Body)
	}
	if len(sel.Lets) != 1 || sel.Lets[0].Name != "safety_check_flag" {
		t.Fatalf("lets = %+v", sel.Lets)
	}
	ce, ok := sel.Lets[0].Expr.(*CaseExpr)
	if !ok || ce.Operand == nil || len(ce.Whens) != 1 || ce.Else == nil {
		t.Fatalf("case = %+v", ce)
	}
	if len(sel.Projections) != 2 || !sel.Projections[0].Star || sel.Projections[1].Star {
		t.Fatalf("projections = %+v", sel.Projections)
	}
}

func TestParseUDF2PaperFig8(t *testing.T) {
	s := parseOne(t, `CREATE FUNCTION tweetSafetyCheck(tweet) {
		LET safety_check_flag = CASE
			EXISTS(SELECT s FROM SensitiveWords s
				WHERE tweet.country = s.country AND
				contains(tweet.text, s.word))
			WHEN true THEN "Red" ELSE "Green"
			END
		SELECT tweet.*, safety_check_flag
	};`)
	cf := s.(*CreateFunction)
	sel := cf.Body.(*SelectExpr)
	ce := sel.Lets[0].Expr.(*CaseExpr)
	ex, ok := ce.Operand.(*Exists)
	if !ok {
		t.Fatalf("operand = %T", ce.Operand)
	}
	if len(ex.Sub.From) != 1 || ex.Sub.From[0].Alias != "s" {
		t.Fatalf("exists sub from = %+v", ex.Sub.From)
	}
	if ex.Sub.Where == nil {
		t.Fatal("exists sub where missing")
	}
}

func TestParseAnalyticalQueryPaperFig9(t *testing.T) {
	s := parseOne(t, `SELECT tweet.country Country, count(tweet) Num
		FROM Tweets tweet
		LET enrichedTweet = tweetSafetyCheck(tweet)[0]
		WHERE enrichedTweet.safety_check_flag = "Red"
		GROUP BY tweet.country;`)
	q := s.(*Query)
	sel := q.Sel
	if len(sel.Projections) != 2 {
		t.Fatalf("projections = %+v", sel.Projections)
	}
	if sel.Projections[0].Alias != "Country" || sel.Projections[1].Alias != "Num" {
		t.Errorf("implicit aliases = %q, %q", sel.Projections[0].Alias, sel.Projections[1].Alias)
	}
	if len(sel.FromLets) != 1 || sel.FromLets[0].Name != "enrichedTweet" {
		t.Fatalf("from lets = %+v", sel.FromLets)
	}
	if _, ok := sel.FromLets[0].Expr.(*IndexAccess); !ok {
		t.Errorf("let expr should be IndexAccess, got %T", sel.FromLets[0].Expr)
	}
	if len(sel.GroupBy) != 1 {
		t.Fatalf("group by = %+v", sel.GroupBy)
	}
}

func TestParseInsertWithQueryPaperFig10(t *testing.T) {
	s := parseOne(t, `INSERT INTO EnrichedTweets(
		LET TweetsBatch = ([{"id":0}, {"id":1}])
		SELECT VALUE tweetSafetyCheck(tweet)
		FROM TweetsBatch tweet
	);`)
	ins := s.(*Insert)
	sel, ok := ins.Source.(*SelectExpr)
	if !ok {
		t.Fatalf("source = %T", ins.Source)
	}
	if len(sel.Lets) != 1 || sel.Lets[0].Name != "TweetsBatch" {
		t.Fatalf("lets = %+v", sel.Lets)
	}
	if sel.SelectValue == nil {
		t.Fatal("SELECT VALUE missing")
	}
	if len(sel.From) != 1 || sel.From[0].Alias != "tweet" {
		t.Fatalf("from = %+v", sel.From)
	}
	if id, ok := sel.From[0].Source.(*Ident); !ok || id.Name != "TweetsBatch" {
		t.Fatalf("from source = %+v", sel.From[0].Source)
	}
}

func TestParseNotInSubqueryPaperFig11(t *testing.T) {
	s := parseOne(t, `INSERT INTO EnrichedTweets(
		SELECT VALUE tweetSafetyCheck(tweet)
		FROM Tweets tweet WHERE tweet.id NOT IN
			(SELECT VALUE enrichedTweet.id
			 FROM EnrichedTweets enrichedTweet)
	);`)
	sel := s.(*Insert).Source.(*SelectExpr)
	in, ok := sel.Where.(*In)
	if !ok || !in.Not {
		t.Fatalf("where = %+v", sel.Where)
	}
	if _, ok := in.Coll.(*SubqueryExpr); !ok {
		t.Fatalf("IN collection = %T", in.Coll)
	}
}

func TestParseHighRiskPaperFig18(t *testing.T) {
	s := parseOne(t, `CREATE FUNCTION highRiskTweetCheck(t) {
		LET high_risk_flag = CASE
			t.country IN (SELECT VALUE s.country
				FROM SensitiveWords s
				GROUP BY s.country
				ORDER BY count(s)
				LIMIT 10)
			WHEN true THEN "Red" ELSE "Green"
			END
		SELECT t.*, high_risk_flag
	};`)
	cf := s.(*CreateFunction)
	ce := cf.Body.(*SelectExpr).Lets[0].Expr.(*CaseExpr)
	in, ok := ce.Operand.(*In)
	if !ok {
		t.Fatalf("operand = %T", ce.Operand)
	}
	sub := in.Coll.(*SubqueryExpr).Sel
	if len(sub.GroupBy) != 1 || len(sub.OrderBy) != 1 || sub.Limit == nil {
		t.Fatalf("subquery clauses missing: %+v", sub)
	}
	if call, ok := sub.OrderBy[0].Expr.(*Call); !ok || call.Name != "count" {
		t.Fatalf("order by = %+v", sub.OrderBy[0].Expr)
	}
}

func TestParseWorrisomeTweetsQ8(t *testing.T) {
	s := parseOne(t, `CREATE FUNCTION enrichTweetQ7(t) {
		LET nearby_religious_attacks = (
			SELECT r.religion_name AS religion, count(a.attack_record_id) AS attack_num
			FROM ReligiousBuildings r, AttackEvents a
			WHERE spatial_intersect(create_point(t.latitude, t.longitude),
					create_circle(r.building_location, 3.0))
				AND t.created_at < a.attack_datetime + duration("P2M")
				AND t.created_at > a.attack_datetime
				AND r.religion_name = a.related_religion
			GROUP BY r.religion_name)
		SELECT t.*, nearby_religious_attacks
	};`)
	cf := s.(*CreateFunction)
	sub := cf.Body.(*SelectExpr).Lets[0].Expr.(*SubqueryExpr).Sel
	if len(sub.From) != 2 || sub.From[0].Alias != "r" || sub.From[1].Alias != "a" {
		t.Fatalf("from = %+v", sub.From)
	}
	// WHERE should be a 4-conjunct AND chain including datetime+duration.
	conj := 0
	var walk func(e Expr)
	walk = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == "AND" {
			walk(b.L)
			walk(b.R)
			return
		}
		conj++
	}
	walk(sub.Where)
	if conj != 4 {
		t.Errorf("conjuncts = %d, want 4", conj)
	}
}

func TestParseNamespacedCallQ4(t *testing.T) {
	s := parseOne(t, `CREATE FUNCTION annotateTweetQ4(x) {
		LET related_suspects = (
			SELECT s.sensitiveName, s.religionName
			FROM SensitiveNamesDataset s
			WHERE edit_distance(
				testlib#removeSpecial(x.user.screen_name),
				s.sensitiveName) < 5)
		SELECT x.*, related_suspects
	};`)
	sub := s.(*CreateFunction).Body.(*SelectExpr).Lets[0].Expr.(*SubqueryExpr).Sel
	cmp, ok := sub.Where.(*Binary)
	if !ok || cmp.Op != "<" {
		t.Fatalf("where = %+v", sub.Where)
	}
	ed := cmp.L.(*Call)
	if ed.Name != "edit_distance" {
		t.Fatalf("call = %+v", ed)
	}
	inner, ok := ed.Args[0].(*Call)
	if !ok || inner.Ns != "testlib" || inner.Name != "removeSpecial" {
		t.Fatalf("namespaced call = %+v", ed.Args[0])
	}
	if _, ok := inner.Args[0].(*FieldAccess); !ok {
		t.Fatalf("nested path arg = %T", inner.Args[0])
	}
}

func TestParseMultiLetQ6(t *testing.T) {
	s := parseOne(t, `CREATE FUNCTION enrichTweetQ5(t) {
		LET nearby_facilities = (
			SELECT f.facility_type FacilityType, count(*) AS Cnt
			FROM Facilities f
			WHERE spatial_intersect(create_point(t.latitude, t.longitude),
				create_circle(f.facility_location, 3.0))
			GROUP BY f.facility_type),
		nearby_religious_buildings = (
			SELECT r.religious_building_id religious_building_id, r.religion_name religion_name
			FROM ReligiousBuildings r
			WHERE spatial_intersect(create_point(t.latitude, t.longitude),
				create_circle(r.building_location, 3.0))
			ORDER BY spatial_distance(create_point(t.latitude, t.longitude), r.building_location) LIMIT 3),
		suspicious_users_info = (
			SELECT s.suspicious_name_id suspect_id, s.religion_name AS religion, s.threat_level AS threat_level
			FROM SuspiciousNames s
			WHERE s.suspicious_name = t.user.name)
		SELECT t.*, nearby_facilities, nearby_religious_buildings, suspicious_users_info
	};`)
	cf := s.(*CreateFunction)
	sel := cf.Body.(*SelectExpr)
	if len(sel.Lets) != 3 {
		t.Fatalf("lets = %d, want 3", len(sel.Lets))
	}
	names := []string{"nearby_facilities", "nearby_religious_buildings", "suspicious_users_info"}
	for i, want := range names {
		if sel.Lets[i].Name != want {
			t.Errorf("let %d = %q, want %q", i, sel.Lets[i].Name, want)
		}
	}
	// First subquery has count(*) with Star.
	first := sel.Lets[0].Expr.(*SubqueryExpr).Sel
	call := first.Projections[1].Expr.(*Call)
	if !call.Star || call.Name != "count" {
		t.Errorf("count(*) = %+v", call)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr(`a + b * c = d AND NOT e OR f`)
	if err != nil {
		t.Fatal(err)
	}
	// ((a + (b*c)) = d AND (NOT e)) OR f
	or, ok := e.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %+v", e)
	}
	and := or.L.(*Binary)
	if and.Op != "AND" {
		t.Fatalf("left = %+v", or.L)
	}
	eq := and.L.(*Binary)
	if eq.Op != "=" {
		t.Fatalf("cmp = %+v", and.L)
	}
	add := eq.L.(*Binary)
	if add.Op != "+" {
		t.Fatalf("add = %+v", eq.L)
	}
	if mul := add.R.(*Binary); mul.Op != "*" {
		t.Fatalf("mul = %+v", add.R)
	}
	if not := and.R.(*Unary); not.Op != "NOT" {
		t.Fatalf("not = %+v", and.R)
	}
}

func TestParseUnaryMinusAndArith(t *testing.T) {
	e, err := ParseExpr(`-x + 2.5 % 3`)
	if err != nil {
		t.Fatal(err)
	}
	add := e.(*Binary)
	if add.Op != "+" {
		t.Fatal("top should be +")
	}
	if neg := add.L.(*Unary); neg.Op != "-" {
		t.Fatal("left should be unary minus")
	}
	if mod := add.R.(*Binary); mod.Op != "%" {
		t.Fatal("right should be %")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT a FROM`,
		`CREATE TYPE X AS { a: notatype }`,
		`CREATE DATASET D(T)`,
		`INSERT INTO D (SELECT VALUE x FROM y z`,
		`CASE WHEN END`,
		`SELECT a FROM b WHERE`,
		`LET x =`,
		`SELECT a..b FROM c`,
		`foo#bar`,
		`CREATE FUNCTION f(x) { SELECT 1 `,
		`CONNECT FEED f TO d`,
		`SELECT x.* FROM y WHERE x.* = 1`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := Parse(`
		CREATE TYPE T AS OPEN { id: int64 };
		CREATE DATASET D(T) PRIMARY KEY id;
		INSERT INTO D ([{"id": 1}]);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseSelectStarProjection(t *testing.T) {
	sel := parseOne(t, `SELECT * FROM Tweets t WHERE t.id = 97;`).(*Query).Sel
	if len(sel.Projections) != 1 || !sel.Projections[0].Star || sel.Projections[0].Expr != nil {
		t.Fatalf("bare star = %+v", sel.Projections)
	}
}

func TestParseDistinctAndDescOrder(t *testing.T) {
	sel := parseOne(t, `SELECT DISTINCT t.country FROM Tweets t ORDER BY t.country DESC LIMIT 5;`).(*Query).Sel
	if !sel.Distinct {
		t.Error("distinct lost")
	}
	if !sel.OrderBy[0].Desc {
		t.Error("desc lost")
	}
	if sel.Limit == nil {
		t.Error("limit lost")
	}
}

func TestParamParsing(t *testing.T) {
	stmts, err := Parse(`SELECT VALUE t FROM Tweets t WHERE t.country = $country AND t.n > $1 LIMIT $limit;`)
	if err != nil {
		t.Fatal(err)
	}
	got := CollectParams(stmts)
	want := []string{"country", "1", "limit"}
	if len(got) != len(want) {
		t.Fatalf("params = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("params = %v, want %v", got, want)
		}
	}
}

func TestParamInsideStringLiteralIsText(t *testing.T) {
	stmts, err := Parse(`SELECT VALUE "$notaparam" FROM Tweets t WHERE t.text = '$alsotext';`)
	if err != nil {
		t.Fatal(err)
	}
	if ps := CollectParams(stmts); len(ps) != 0 {
		t.Fatalf("string-literal dollars must not become parameters, got %v", ps)
	}
}

func TestParamDedupAndOffsets(t *testing.T) {
	stmts, err := Parse(`SELECT VALUE $x FROM D d WHERE d.a = $x AND d.b = $y;`)
	if err != nil {
		t.Fatal(err)
	}
	got := CollectParams(stmts)
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("params = %v", got)
	}
	q := stmts[0].(*Query)
	p, ok := q.Sel.SelectValue.(*Param)
	if !ok {
		t.Fatalf("SELECT VALUE is %T, want *Param", q.Sel.SelectValue)
	}
	if p.Off != len("SELECT VALUE ") {
		t.Errorf("param offset = %d", p.Off)
	}
}

func TestEmptyParamNameFails(t *testing.T) {
	_, err := Parse(`SELECT VALUE $ FROM D d;`)
	if err == nil {
		t.Fatal("lone $ should fail to parse")
	}
}

func TestParseErrorReportsOffset(t *testing.T) {
	cases := []struct {
		src  string
		near string // fragment expected in the message
	}{
		{"SELECT VALUE t FROM WHERE", "WHERE"},
		{"CREATE DATASET D(T PRIMARY KEY id;", "PRIMARY"},
		{"SELECT * FROM D d GROUP WHEN", "WHEN"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("%q should fail", tc.src)
		}
		msg := err.Error()
		if !strings.Contains(msg, "offset") || !strings.Contains(msg, tc.near) {
			t.Errorf("%q error lacks offset/near info: %v", tc.src, err)
		}
		// The reported offset must point inside the source.
		var off int
		if _, serr := fmt.Sscanf(msg[strings.Index(msg, "offset"):], "offset %d", &off); serr != nil {
			t.Errorf("%q: cannot extract offset from %q", tc.src, msg)
		} else if off < 0 || off > len(tc.src) {
			t.Errorf("%q: offset %d out of range", tc.src, off)
		}
	}
}

func TestStatementPositions(t *testing.T) {
	src := `CREATE TYPE T AS OPEN { id: int64 };
CREATE DATASET D(T) PRIMARY KEY id;
INSERT INTO D ([{"id": 1}]);`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	for i, s := range stmts {
		at := s.Pos()
		if at < 0 || at >= len(src) {
			t.Fatalf("stmt %d pos %d out of range", i, at)
		}
	}
	if stmts[0].Pos() != 0 {
		t.Errorf("first stmt pos = %d", stmts[0].Pos())
	}
	if want := strings.Index(src, "CREATE DATASET"); stmts[1].Pos() != want {
		t.Errorf("second stmt pos = %d, want %d", stmts[1].Pos(), want)
	}
	if want := strings.Index(src, "INSERT"); stmts[2].Pos() != want {
		t.Errorf("third stmt pos = %d, want %d", stmts[2].Pos(), want)
	}
}
