// Package sqlpp implements the SQL++ subset the paper's workload needs:
// the full expression/query surface used by its eight enrichment UDFs
// (SELECT / SELECT VALUE, multi-dataset FROM, LET, WHERE, GROUP BY,
// ORDER BY, LIMIT, CASE, EXISTS, IN, subqueries, aggregates, namespaced
// function calls) plus the DDL the examples use (CREATE TYPE / DATASET /
// INDEX / FUNCTION / FEED, CONNECT FEED, START/STOP FEED, INSERT/UPSERT).
package sqlpp

import (
	"fmt"
	"strconv"
	"strings"
)

// TokenKind classifies lexer output.
type TokenKind int

const (
	// TokEOF terminates the stream.
	TokEOF TokenKind = iota
	// TokIdent is an identifier (or contextual keyword).
	TokIdent
	// TokKeyword is a reserved word, normalized to upper case.
	TokKeyword
	// TokString is a string literal (quotes removed, escapes applied).
	TokString
	// TokInt is an integer literal.
	TokInt
	// TokDouble is a floating-point literal.
	TokDouble
	// TokOp is an operator or punctuation mark.
	TokOp
)

// Token is one lexical unit with its source offset (for errors).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "VALUE": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "ORDER": true, "LIMIT": true, "LET": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"EXISTS": true, "IN": true, "NOT": true, "AND": true, "OR": true,
	"AS": true, "CREATE": true, "TYPE": true, "DATASET": true,
	"INDEX": true, "FUNCTION": true, "FEED": true, "CONNECT": true,
	"START": true, "STOP": true, "TO": true, "APPLY": true,
	"PRIMARY": true, "KEY": true, "INSERT": true, "UPSERT": true,
	"INTO": true, "OPEN": true, "CLOSED": true, "ON": true,
	"TRUE": true, "FALSE": true, "NULL": true, "MISSING": true,
	"DISTINCT": true, "ASC": true, "DESC": true, "WITH": true,
	"DROP": true, "IF": true, "USING": true, "HINT": true,
}

// Lex tokenizes the input. It returns a descriptive error with byte
// offset on malformed input.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // -- line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/': // // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*': // /* block comment */
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sqlpp: unterminated block comment at %d", i)
			}
			i += end + 4
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{TokKeyword, upper, start})
			} else {
				toks = append(toks, Token{TokIdent, word, start})
			}
		case c >= '0' && c <= '9':
			tok, next, err := lexNumber(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			i = next
		case c == '"' || c == '\'':
			s, next, err := lexString(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{TokString, s, i})
			i = next
		case c == '`': // delimited identifier
			end := strings.IndexByte(src[i+1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("sqlpp: unterminated delimited identifier at %d", i)
			}
			toks = append(toks, Token{TokIdent, src[i+1 : i+1+end], i})
			i += end + 2
		default:
			op, next, err := lexOp(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{TokOp, op, i})
			i = next
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func lexNumber(src string, i int) (Token, int, error) {
	start := i
	n := len(src)
	isFloat := false
	for i < n && src[i] >= '0' && src[i] <= '9' {
		i++
	}
	if i < n && src[i] == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9' {
		isFloat = true
		i++
		for i < n && src[i] >= '0' && src[i] <= '9' {
			i++
		}
	}
	if i < n && (src[i] == 'e' || src[i] == 'E') {
		j := i + 1
		if j < n && (src[j] == '+' || src[j] == '-') {
			j++
		}
		if j < n && src[j] >= '0' && src[j] <= '9' {
			isFloat = true
			i = j
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
		}
	}
	text := src[start:i]
	if isFloat {
		if _, err := strconv.ParseFloat(text, 64); err != nil {
			return Token{}, 0, fmt.Errorf("sqlpp: bad number %q at %d", text, start)
		}
		return Token{TokDouble, text, start}, i, nil
	}
	return Token{TokInt, text, start}, i, nil
}

func lexString(src string, i int) (string, int, error) {
	quote := src[i]
	start := i
	i++
	var b strings.Builder
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == quote:
			return b.String(), i + 1, nil
		case c == '\\' && i+1 < n:
			i++
			switch src[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '"', '\'', '|':
				b.WriteByte(src[i])
			default:
				// Preserve unknown escapes verbatim (regex-ish payloads in
				// native UDF resource strings).
				b.WriteByte('\\')
				b.WriteByte(src[i])
			}
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("sqlpp: unterminated string at %d", start)
}

func lexOp(src string, i int) (string, int, error) {
	two := ""
	if i+1 < len(src) {
		two = src[i : i+2]
	}
	switch two {
	case "!=", "<=", ">=", "<>":
		if two == "<>" {
			return "!=", i + 2, nil
		}
		return two, i + 2, nil
	}
	switch c := src[i]; c {
	case '(', ')', '{', '}', '[', ']', ',', ';', ':', '.', '#', '?',
		'=', '<', '>', '+', '-', '*', '/', '%':
		return string(c), i + 1, nil
	}
	return "", 0, fmt.Errorf("sqlpp: unexpected character %q at %d", src[i], i)
}
