package sqlpp

import (
	"github.com/ideadb/idea/internal/adm"
)

// Expr is any SQL++ expression node.
type Expr interface{ exprNode() }

// Literal is a constant value.
type Literal struct {
	Val adm.Value
}

// Ident is a variable reference (a FROM alias, LET binding, function
// parameter, or dataset name in FROM position).
type Ident struct {
	Name string
}

// Param is a statement parameter reference: $name for named parameters
// or $1, $2, ... for positional ones. Name holds the text after the
// `$`; Off is the byte offset of the reference (for error reporting).
// Values are bound at execution time, never at parse time, so a
// parsed statement is reusable across bindings.
type Param struct {
	Name string
	Off  int
}

// FieldAccess is base.field.
type FieldAccess struct {
	Base  Expr
	Field string
}

// IndexAccess is base[index].
type IndexAccess struct {
	Base  Expr
	Index Expr
}

// Call is a (possibly namespaced) function call: fn(args) or ns#fn(args).
// Star marks count(*).
type Call struct {
	Ns   string
	Name string
	Args []Expr
	Star bool
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" | "-"
	X  Expr
}

// Binary is a binary operation. Op is one of OR AND = != < <= > >= + - * / %.
type Binary struct {
	Op   string
	L, R Expr
}

// WhenClause is one WHEN ... THEN ... arm of a CASE.
type WhenClause struct {
	When Expr
	Then Expr
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr // nil → NULL
}

// Exists is EXISTS(subquery).
type Exists struct {
	Sub *SelectExpr
}

// In is x [NOT] IN coll, where coll is any collection-valued expression
// (subquery or array).
type In struct {
	Not  bool
	X    Expr
	Coll Expr
}

// SubqueryExpr wraps a parenthesized SELECT used as an expression; its
// value is the array of result items.
type SubqueryExpr struct {
	Sel *SelectExpr
}

// ArrayCtor is [e1, e2, ...].
type ArrayCtor struct {
	Elems []Expr
}

// ObjectField is one key:value pair of an object constructor.
type ObjectField struct {
	Key string
	Val Expr
}

// ObjectCtor is {"k": v, ...}.
type ObjectCtor struct {
	Fields []ObjectField
}

func (*Literal) exprNode()      {}
func (*Ident) exprNode()        {}
func (*Param) exprNode()        {}
func (*FieldAccess) exprNode()  {}
func (*IndexAccess) exprNode()  {}
func (*Call) exprNode()         {}
func (*Unary) exprNode()        {}
func (*Binary) exprNode()       {}
func (*CaseExpr) exprNode()     {}
func (*Exists) exprNode()       {}
func (*In) exprNode()           {}
func (*SubqueryExpr) exprNode() {}
func (*ArrayCtor) exprNode()    {}
func (*ObjectCtor) exprNode()   {}

// LetBinding is LET name = expr.
type LetBinding struct {
	Name string
	Expr Expr
}

// FromClause is one FROM term: a source expression and its alias (the
// alias defaults to the trailing identifier of the source).
type FromClause struct {
	Source Expr
	Alias  string
}

// Projection is one SELECT-list item: expr [AS alias] or expr.* (Star).
type Projection struct {
	Expr  Expr
	Alias string
	Star  bool // expr.* — splice the object's fields into the output
}

// GroupKey is one GROUP BY term: expr [AS alias].
type GroupKey struct {
	Expr  Expr
	Alias string
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// SelectExpr is a full query block. Both LET placements are supported:
// leading LETs (the paper's UDF style, before SELECT) and FROM-clause
// LETs (after FROM). SelectValue and Projections are mutually exclusive.
type SelectExpr struct {
	Lets        []LetBinding
	Distinct    bool
	SelectValue Expr
	Projections []Projection
	From        []FromClause
	FromLets    []LetBinding
	Where       Expr
	GroupBy     []GroupKey
	OrderBy     []OrderKey
	Limit       Expr
}

func (*SelectExpr) exprNode() {}

// Statement is any top-level parsed statement. Pos reports the byte
// offset of the statement's first token in the parsed source, so
// executors can point errors at the failing statement.
type Statement interface {
	stmtNode()
	Pos() int
}

// stmtBase carries the source position shared by every statement node.
type stmtBase struct {
	At int // byte offset of the statement's first token
}

// Pos returns the statement's byte offset in the parsed source.
func (s stmtBase) Pos() int { return s.At }

func (s *stmtBase) setPos(at int) { s.At = at }

// CreateType is CREATE TYPE name AS OPEN|CLOSED { field: type, ... }.
type CreateType struct {
	stmtBase
	Name   string
	Open   bool
	Fields []adm.FieldDef
}

// CreateDataset is CREATE DATASET name(Type) PRIMARY KEY field.
type CreateDataset struct {
	stmtBase
	Name       string
	TypeName   string
	PrimaryKey string
}

// CreateIndex is CREATE INDEX name ON dataset(field) TYPE BTREE|RTREE.
type CreateIndex struct {
	stmtBase
	Name    string
	Dataset string
	Field   string
	Kind    string // "BTREE" | "RTREE"
}

// CreateFunction is CREATE FUNCTION name(params) { body }.
type CreateFunction struct {
	stmtBase
	Name   string
	Params []string
	Body   Expr
}

// CreateFeed is CREATE FEED name WITH { json config }.
type CreateFeed struct {
	stmtBase
	Name   string
	Config adm.Value
}

// ConnectFeed is CONNECT FEED f TO DATASET d [APPLY FUNCTION fn].
type ConnectFeed struct {
	stmtBase
	Feed     string
	Dataset  string
	Function string
}

// StartFeed is START FEED name.
type StartFeed struct {
	stmtBase
	Name string
}

// StopFeed is STOP FEED name.
type StopFeed struct {
	stmtBase
	Name string
}

// Insert is INSERT/UPSERT INTO dataset ( source ).
type Insert struct {
	stmtBase
	Dataset string
	Source  Expr
	Upsert  bool
}

// Query is a bare SELECT statement.
type Query struct {
	stmtBase
	Sel *SelectExpr
}

func (*CreateType) stmtNode()     {}
func (*CreateDataset) stmtNode()  {}
func (*CreateIndex) stmtNode()    {}
func (*CreateFunction) stmtNode() {}
func (*CreateFeed) stmtNode()     {}
func (*ConnectFeed) stmtNode()    {}
func (*StartFeed) stmtNode()      {}
func (*StopFeed) stmtNode()       {}
func (*Insert) stmtNode()         {}
func (*Query) stmtNode()          {}
