// Package bridge lets internal packages that sit ON TOP of the public
// API — the wire server, which drives idea.Cluster like any other
// client — convert between the engine's adm.Value and the public
// idea.Value without the root package exporting its internals. The
// root package registers the hooks from an init function, so any
// importer of github.com/ideadb/idea (the server always is one) finds
// them populated.
package bridge

import "github.com/ideadb/idea/internal/adm"

var (
	// WrapValue boxes an adm.Value as a public idea.Value, returned as
	// any (this package cannot name the public type without an import
	// cycle). The result is accepted by idea.Named and the Obj/Arr
	// builders.
	WrapValue func(adm.Value) any

	// UnwrapValue extracts the adm.Value from a public idea.Value; ok is
	// false when x is not an idea.Value.
	UnwrapValue func(x any) (v adm.Value, ok bool)
)
