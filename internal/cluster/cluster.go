// Package cluster simulates the AsterixDB cluster the ingestion
// framework runs on: one Cluster Controller (metadata catalog,
// predeployed-job registry, job dispatch) plus N Node Controllers (each
// owning a partition-holder manager and one storage partition per
// dataset). Nodes are in-process — see docs/ARCHITECTURE.md for why the
// simulation preserves the paper's experimental shapes.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/hyracks"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/query"
)

// Tuning models the costs a real deployment pays that an in-process
// simulation otherwise would not, and sizes the runtime buffers. All
// defaults are documented in README.md; experiments print the tuning
// they ran with.
type Tuning struct {
	// DispatchOverheadPerNode is charged (once per node) when starting a
	// job from scratch: query compilation + job-specification
	// distribution.
	DispatchOverheadPerNode time.Duration
	// InvokeOverheadPerNode is charged (once per node) when invoking a
	// predeployed job: just the invocation message. The gap between this
	// and DispatchOverheadPerNode is what the paper's predeployed-job
	// technique buys.
	InvokeOverheadPerNode time.Duration
	// HolderCapacity bounds partition-holder and connector queues
	// (frames).
	HolderCapacity int
	// FrameCapacity is the number of records per frame.
	FrameCapacity int
	// Storage configures each LSM partition.
	Storage lsm.Options
	// DataDir, when set, makes every dataset durable: partitions keep
	// an on-disk WAL, flushed run files, and a manifest under
	// DataDir/<dataset>/pNNN, and CreateDataset recovers existing state
	// from disk. Empty means in-memory storage (the default).
	DataDir string
	// StorageFS overrides the filesystem under DataDir (tests inject
	// MemFS for crash simulation). Nil with a DataDir set means the
	// real filesystem.
	StorageFS lsm.FS
	// BlockCacheBytes is the cluster-wide byte budget of the durable
	// read path's block cache, shared by every dataset partition. 0
	// selects the default (lsm.DefaultBlockCacheBytes); negative
	// disables caching. Ignored for in-memory storage (no DataDir) and
	// when Storage.BlockCache is already set.
	BlockCacheBytes int64
}

// DefaultTuning returns the documented defaults.
func DefaultTuning() Tuning {
	return Tuning{
		DispatchOverheadPerNode: 150 * time.Microsecond,
		InvokeOverheadPerNode:   25 * time.Microsecond,
		HolderCapacity:          64,
		FrameCapacity:           128,
		Storage:                 lsm.DefaultOptions(),
	}
}

// ErrPartitionDown reports an operation routed to a node whose
// partition has been killed. Feeds translate it into failover: the
// manager restarts intake on the surviving nodes and replays from the
// last checkpoint.
var ErrPartitionDown = errors.New("idea: partition down")

// ErrClosed reports an operation on a cluster after Close. Ping (and
// through it the wire server's liveness probe) returns it so clients
// can tell a shut-down engine from a healthy one.
var ErrClosed = errors.New("idea: cluster is closed")

// NodeController is one simulated worker node.
type NodeController struct {
	// ID is the node number (0-based).
	ID int
	// Holders is the node-local partition-holder registry.
	Holders *hyracks.HolderManager

	// down is set by KillNode; a dead node's holders are poisoned and
	// feeds must not place new work on it.
	down atomic.Bool
}

// Alive reports whether the node has not been killed.
func (n *NodeController) Alive() bool { return !n.down.Load() }

// Cluster is the whole simulated deployment and doubles as the query
// catalog (it is the metadata node).
type Cluster struct {
	tuning Tuning
	cache  *lsm.BlockCache // shared block cache (nil when disabled)
	nodes  []*NodeController
	jobSeq atomic.Uint64
	closed atomic.Bool

	mu          sync.RWMutex
	datatypes   map[string]*adm.Datatype
	datasets    map[string]*lsm.Dataset
	functions   map[string]*query.Function
	natives     map[string]func([]adm.Value) (adm.Value, error)
	predeployed map[string]bool
}

// New creates a cluster of numNodes simulated nodes.
func New(numNodes int, tuning Tuning) (*Cluster, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if tuning.HolderCapacity <= 0 {
		tuning.HolderCapacity = DefaultTuning().HolderCapacity
	}
	if tuning.FrameCapacity <= 0 {
		tuning.FrameCapacity = DefaultTuning().FrameCapacity
	}
	if tuning.DataDir != "" && tuning.Storage.BlockCache == nil && tuning.BlockCacheBytes >= 0 {
		budget := tuning.BlockCacheBytes
		if budget == 0 {
			budget = lsm.DefaultBlockCacheBytes
		}
		tuning.Storage.BlockCache = lsm.NewBlockCache(budget)
	}
	c := &Cluster{
		tuning:      tuning,
		cache:       tuning.Storage.BlockCache,
		datatypes:   make(map[string]*adm.Datatype),
		datasets:    make(map[string]*lsm.Dataset),
		functions:   make(map[string]*query.Function),
		natives:     make(map[string]func([]adm.Value) (adm.Value, error)),
		predeployed: make(map[string]bool),
	}
	for i := 0; i < numNodes; i++ {
		c.nodes = append(c.nodes, &NodeController{ID: i, Holders: hyracks.NewHolderManager()})
	}
	return c, nil
}

// NumNodes returns the cluster size.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *NodeController { return c.nodes[i] }

// KillNode simulates the failure of node i's controller process: the
// node is marked dead and every partition holder registered on it is
// poisoned with ErrPartitionDown, so jobs touching its endpoints fail
// fast instead of wedging. The node's storage partition is NOT
// destroyed — like a real deployment's shared or replicated storage,
// the data outlives the compute node, and surviving nodes keep writing
// to all dataset partitions (see docs/ARCHITECTURE.md on this
// simulation substitution). Idempotent.
func (c *Cluster) KillNode(i int) {
	n := c.nodes[i]
	if n.down.Swap(true) {
		return
	}
	n.Holders.FailAll(ErrPartitionDown)
}

// NodeAlive reports whether node i is still up.
func (c *Cluster) NodeAlive(i int) bool { return c.nodes[i].Alive() }

// LiveNodes returns the IDs of the nodes still up, ascending.
func (c *Cluster) LiveNodes() []int {
	live := make([]int, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.Alive() {
			live = append(live, n.ID)
		}
	}
	return live
}

// Tuning returns the cluster's tuning.
func (c *Cluster) Tuning() Tuning { return c.tuning }

// StorageStats aggregates the durable read path's counters across the
// cluster: the shared block cache plus every dataset's fence/bloom/
// block-read totals. All zero for in-memory storage.
type StorageStats struct {
	// Block cache (zero when caching is disabled).
	BlockCacheHits      uint64
	BlockCacheMisses    uint64
	BlockCacheEvictions uint64
	BlockCacheEntries   int
	BlockCachePinned    int
	BlockCacheBytes     int64
	// Read-path work across all datasets.
	FenceSkips   uint64
	BloomSkips   uint64
	BlockReads   uint64
	OpenRunFiles int
}

// StorageStats returns a point-in-time snapshot of the read-path
// counters.
func (c *Cluster) StorageStats() StorageStats {
	var st StorageStats
	if c.cache != nil {
		cs := c.cache.Stats()
		st.BlockCacheHits = cs.Hits
		st.BlockCacheMisses = cs.Misses
		st.BlockCacheEvictions = cs.Evictions
		st.BlockCacheEntries = cs.Entries
		st.BlockCachePinned = cs.Pinned
		st.BlockCacheBytes = cs.Bytes
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ds := range c.datasets {
		s := ds.Stats()
		st.FenceSkips += s.FenceSkips
		st.BloomSkips += s.BloomSkips
		st.BlockReads += s.BlockReads
		st.OpenRunFiles += s.OpenRuns
	}
	return st
}

// --- catalog (DDL surface) ---

// CreateDatatype registers a datatype.
func (c *Cluster) CreateDatatype(dt *adm.Datatype) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.datatypes[dt.Name]; dup {
		return fmt.Errorf("cluster: datatype %q exists", dt.Name)
	}
	c.datatypes[dt.Name] = dt
	return nil
}

// Datatype resolves a datatype by name.
func (c *Cluster) Datatype(name string) (*adm.Datatype, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	dt, ok := c.datatypes[name]
	return dt, ok
}

// CreateDataset creates a dataset with one storage partition per node.
func (c *Cluster) CreateDataset(name, typeName, primaryKey string) (*lsm.Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.datasets[name]; dup {
		return nil, fmt.Errorf("cluster: dataset %q exists", name)
	}
	var dt *adm.Datatype
	if typeName != "" {
		var ok bool
		dt, ok = c.datatypes[typeName]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown datatype %q", typeName)
		}
	}
	var ds *lsm.Dataset
	var err error
	if c.tuning.DataDir != "" {
		fsys := c.tuning.StorageFS
		if fsys == nil {
			fsys = lsm.NewOSFS()
		}
		dir := c.tuning.DataDir + "/" + name
		ds, err = lsm.OpenDataset(fsys, dir, name, dt, primaryKey, len(c.nodes), c.tuning.Storage)
	} else {
		ds, err = lsm.NewDataset(name, dt, primaryKey, len(c.nodes), c.tuning.Storage)
	}
	if err != nil {
		return nil, err
	}
	c.datasets[name] = ds
	return ds, nil
}

// Close shuts down every dataset's storage (durable partitions drain
// their flushers, commit and close their WALs, and close run files).
// The cluster must not execute statements afterwards. Close is
// idempotent: a second call is a no-op.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, ds := range c.datasets {
		if err := ds.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Closed reports whether Close has been called.
func (c *Cluster) Closed() bool { return c.closed.Load() }

// Dataset implements query.Catalog.
func (c *Cluster) Dataset(name string) (*lsm.Dataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ds, ok := c.datasets[name]
	return ds, ok
}

// DropDataset removes a dataset (experiments recreate target datasets
// between runs).
func (c *Cluster) DropDataset(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.datasets[name]; !ok {
		return fmt.Errorf("cluster: unknown dataset %q", name)
	}
	delete(c.datasets, name)
	return nil
}

// CreateIndex creates a secondary index: kind is "BTREE" or "RTREE".
func (c *Cluster) CreateIndex(name, dataset, field, kind string) error {
	ds, ok := c.Dataset(dataset)
	if !ok {
		return fmt.Errorf("cluster: unknown dataset %q", dataset)
	}
	switch kind {
	case "RTREE":
		return ds.CreateSpatialIndex(name, field)
	case "BTREE", "":
		// Field-recording creation so the query planner can match WHERE
		// predicates on the field to this index.
		return ds.CreateFieldBTreeIndex(name, field)
	}
	return fmt.Errorf("cluster: unknown index kind %q", kind)
}

// CreateFunction registers a UDF (SQL++ or native-backed).
func (c *Cluster) CreateFunction(fn *query.Function) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.functions[fn.Name]; dup {
		return fmt.Errorf("cluster: function %q exists", fn.Name)
	}
	c.functions[fn.Name] = fn
	return nil
}

// Function implements query.Catalog.
func (c *Cluster) Function(name string) (*query.Function, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fn, ok := c.functions[name]
	return fn, ok
}

// RegisterNative registers a namespaced library function (the lib#fn
// form SQL++ calls).
func (c *Cluster) RegisterNative(ns, name string, fn func([]adm.Value) (adm.Value, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.natives[ns+"#"+name] = fn
}

// Native implements query.Catalog.
func (c *Cluster) Native(ns, name string) (func([]adm.Value) (adm.Value, error), bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fn, ok := c.natives[ns+"#"+name]
	return fn, ok
}

// --- job dispatch ---

// NextJobID allocates a cluster-unique job id.
func (c *Cluster) NextJobID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, c.jobSeq.Add(1))
}

// StartJob compiles-and-distributes a job: full dispatch overhead.
func (c *Cluster) StartJob(ctx context.Context, spec *hyracks.JobSpec, name string) (*hyracks.Job, error) {
	c.chargeOverhead(c.tuning.DispatchOverheadPerNode)
	return spec.Run(ctx, c.NextJobID(name))
}

// Predeploy registers a job template on every node (the paper's
// parameterized predeployed jobs), paying the compile-and-distribute
// cost once; later invocations pay only the invocation message. Each
// invocation supplies its parameterized specification (the batch to
// process), mirroring how predeployed jobs are invoked with new
// parameters.
func (c *Cluster) Predeploy(id string) error {
	c.mu.Lock()
	if c.predeployed[id] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: job %q already predeployed", id)
	}
	c.predeployed[id] = true
	c.mu.Unlock()
	// Distribution cost is paid once, here.
	c.chargeOverhead(c.tuning.DispatchOverheadPerNode)
	return nil
}

// InvokePredeployed starts one invocation of a predeployed job with only
// the invocation overhead.
func (c *Cluster) InvokePredeployed(ctx context.Context, id string, spec *hyracks.JobSpec) (*hyracks.Job, error) {
	c.mu.RLock()
	ok := c.predeployed[id]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: no predeployed job %q", id)
	}
	c.chargeOverhead(c.tuning.InvokeOverheadPerNode)
	return spec.Run(ctx, c.NextJobID(id))
}

// Undeploy removes a predeployed job.
func (c *Cluster) Undeploy(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.predeployed, id)
}

// chargeOverhead sleeps out the simulated per-node cost of cluster-wide
// task activation. It grows with the cluster, which is exactly the
// execution-overhead-vs-cluster-size effect in Figs 24, 28, and 30.
func (c *Cluster) chargeOverhead(perNode time.Duration) {
	if perNode > 0 {
		time.Sleep(time.Duration(len(c.nodes)) * perNode)
	}
}

var _ query.Catalog = (*Cluster)(nil)
