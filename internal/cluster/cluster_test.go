package cluster

import (
	"context"
	"testing"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/hyracks"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/query"
)

func newTestCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	tuning := DefaultTuning()
	tuning.DispatchOverheadPerNode = 0
	tuning.InvokeOverheadPerNode = 0
	c, err := New(nodes, tuning)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, DefaultTuning()); err == nil {
		t.Error("zero nodes should fail")
	}
	c := newTestCluster(t, 3)
	if c.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
	for i := 0; i < 3; i++ {
		if c.Node(i).ID != i || c.Node(i).Holders == nil {
			t.Errorf("node %d malformed", i)
		}
	}
}

func TestCatalogDatatypesAndDatasets(t *testing.T) {
	c := newTestCluster(t, 2)
	dt := adm.MustDatatype("T", true, []adm.FieldDef{{Name: "id", Kind: adm.KindInt64}})
	if err := c.CreateDatatype(dt); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatatype(dt); err == nil {
		t.Error("duplicate datatype should fail")
	}
	if got, ok := c.Datatype("T"); !ok || got != dt {
		t.Error("datatype lookup failed")
	}
	ds, err := c.CreateDataset("D", "T", "id")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumPartitions() != 2 {
		t.Errorf("partitions = %d, want one per node", ds.NumPartitions())
	}
	if _, err := c.CreateDataset("D", "T", "id"); err == nil {
		t.Error("duplicate dataset should fail")
	}
	if _, err := c.CreateDataset("E", "NoSuchType", "id"); err == nil {
		t.Error("unknown datatype should fail")
	}
	// Untyped dataset is allowed.
	if _, err := c.CreateDataset("U", "", "id"); err != nil {
		t.Errorf("untyped dataset: %v", err)
	}
	if _, ok := c.Dataset("D"); !ok {
		t.Error("dataset lookup failed")
	}
	if err := c.DropDataset("D"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Dataset("D"); ok {
		t.Error("dropped dataset still visible")
	}
	if err := c.DropDataset("D"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCatalogIndexes(t *testing.T) {
	c := newTestCluster(t, 2)
	ds, _ := c.CreateDataset("M", "", "id")
	ds.Upsert(adm.ObjectValue(adm.ObjectFromPairs(
		"id", adm.Int(1), "loc", adm.Point(1, 2), "k", adm.String("x"))))
	if err := c.CreateIndex("ix1", "M", "loc", "RTREE"); err != nil {
		t.Fatal(err)
	}
	if ds.RTreeIndexForField("loc") == nil {
		t.Error("rtree index not visible")
	}
	if err := c.CreateIndex("ix2", "M", "k", "BTREE"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex("ix3", "M", "k", "HASH"); err == nil {
		t.Error("unknown index kind should fail")
	}
	if err := c.CreateIndex("ix4", "None", "k", "BTREE"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestCatalogFunctionsAndNatives(t *testing.T) {
	c := newTestCluster(t, 1)
	fn := &query.Function{Name: "f", Params: []string{"x"}}
	if err := c.CreateFunction(fn); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateFunction(fn); err == nil {
		t.Error("duplicate function should fail")
	}
	if got, ok := c.Function("f"); !ok || got != fn {
		t.Error("function lookup failed")
	}
	c.RegisterNative("lib", "g", func(args []adm.Value) (adm.Value, error) {
		return adm.Int(7), nil
	})
	g, ok := c.Native("lib", "g")
	if !ok {
		t.Fatal("native lookup failed")
	}
	if v, _ := g(nil); v.IntVal() != 7 {
		t.Error("native call failed")
	}
	if _, ok := c.Native("lib", "missing"); ok {
		t.Error("native miss expected")
	}
}

func TestPredeployLifecycle(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.Predeploy("job1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Predeploy("job1"); err == nil {
		t.Error("double predeploy should fail")
	}
	spec := hyracks.NewJobSpec()
	spec.AddOperator(&hyracks.Descriptor{
		Name: "src", Parallelism: 1,
		NewSource: func(int) (hyracks.Source, error) {
			return &hyracks.SliceSource{Records: []adm.Value{adm.Int(1)}}, nil
		},
	})
	job, err := c.InvokePredeployed(context.Background(), "job1", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InvokePredeployed(context.Background(), "nope", spec); err == nil {
		t.Error("invoking unknown predeployed job should fail")
	}
	c.Undeploy("job1")
	if _, err := c.InvokePredeployed(context.Background(), "job1", spec); err == nil {
		t.Error("invoking undeployed job should fail")
	}
}

func TestDispatchOverheadCharged(t *testing.T) {
	tuning := DefaultTuning()
	tuning.DispatchOverheadPerNode = 3 * time.Millisecond
	tuning.InvokeOverheadPerNode = time.Millisecond
	c, err := New(4, tuning)
	if err != nil {
		t.Fatal(err)
	}
	spec := hyracks.NewJobSpec()
	spec.AddOperator(&hyracks.Descriptor{
		Name: "src", Parallelism: 1,
		NewSource: func(int) (hyracks.Source, error) {
			return &hyracks.SliceSource{}, nil
		},
	})
	start := time.Now()
	job, err := c.StartJob(context.Background(), spec, "t")
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	if elapsed := time.Since(start); elapsed < 12*time.Millisecond {
		t.Errorf("full dispatch should cost >= 4 nodes * 3ms, took %v", elapsed)
	}
	c.Predeploy("p")
	start = time.Now()
	job, _ = c.InvokePredeployed(context.Background(), "p", spec)
	job.Wait()
	if elapsed := time.Since(start); elapsed > 12*time.Millisecond {
		t.Errorf("predeployed invocation should be much cheaper, took %v", elapsed)
	}
}

func TestNextJobIDUnique(t *testing.T) {
	c := newTestCluster(t, 1)
	a, b := c.NextJobID("x"), c.NextJobID("x")
	if a == b {
		t.Errorf("job ids must be unique: %s vs %s", a, b)
	}
}

func TestTuningDefaults(t *testing.T) {
	c, err := New(1, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Tuning().HolderCapacity <= 0 || c.Tuning().FrameCapacity <= 0 {
		t.Errorf("zero tuning not defaulted: %+v", c.Tuning())
	}
}

// TestStorageStatsDurable checks that a durable cluster wires one
// shared block cache into every partition and aggregates the read-path
// counters across datasets.
func TestStorageStatsDurable(t *testing.T) {
	tuning := DefaultTuning()
	tuning.DataDir = "data"
	tuning.StorageFS = lsm.NewMemFS()
	tuning.Storage.MemBudget = 4 << 10
	c, err := New(2, tuning)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.cache == nil {
		t.Fatal("durable cluster did not build a block cache")
	}
	ds, err := c.CreateDataset("D", "", "id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		rec := adm.ObjectValue(adm.ObjectFromPairs("id", adm.Int(int64(i)), "pad", adm.String("pppppppppppppppppppppppppppppppp")))
		if err := ds.Upsert(rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < ds.NumPartitions(); i++ {
		ds.Partition(i).Flush()
		if err := ds.Partition(i).WaitForFlush(); err != nil {
			t.Fatal(err)
		}
	}
	// Two passes: the first fills the cache, the second hits it.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 400; i++ {
			if _, ok := ds.Get(adm.Int(int64(i))); !ok {
				t.Fatalf("key %d lost", i)
			}
		}
		// Probes outside the stored range exercise fences/blooms.
		if _, ok := ds.Get(adm.Int(10_000)); ok {
			t.Fatal("phantom key")
		}
	}
	st := c.StorageStats()
	if st.OpenRunFiles == 0 || st.BlockReads == 0 {
		t.Fatalf("no durable reads recorded: %+v", st)
	}
	if st.BlockCacheHits == 0 || st.BlockCacheEntries == 0 || st.BlockCacheBytes == 0 {
		t.Fatalf("cache never hit: %+v", st)
	}
	// Pinned is a gauge: background compaction holds pins while its merge
	// cursors stream, so wait for it to drain rather than asserting zero
	// at an arbitrary instant.
	deadline := time.Now().Add(5 * time.Second)
	for c.StorageStats().BlockCachePinned != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pins leaked: %+v", c.StorageStats())
		}
		time.Sleep(time.Millisecond)
	}
	if st.FenceSkips == 0 {
		t.Fatalf("out-of-range probe did not fence-skip: %+v", st)
	}

	// A negative budget disables the cache entirely.
	off := DefaultTuning()
	off.DataDir = "data"
	off.StorageFS = lsm.NewMemFS()
	off.BlockCacheBytes = -1
	c2, err := New(1, off)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.cache != nil {
		t.Fatal("negative budget still built a cache")
	}
}
