package server

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/ideadb/idea"
	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/bridge"
	"github.com/ideadb/idea/internal/wire"
)

// pollEvery is how often a streaming query checks its client for
// CloseRows or death; pollWait is how long each check lets the peek
// block. The ratio bounds the poll's throughput cost at ~1%.
const (
	pollEvery = 5 * time.Millisecond
	pollWait  = 50 * time.Microsecond
)

// conn is one client session: the wire connection plus its statement
// loop state. The protocol keeps at most one statement in flight per
// connection, so everything here is touched by the session goroutine
// only — except busy/closeAfter, which Shutdown's drain reads.
type conn struct {
	srv *Server
	wc  *wire.Conn

	// busy is true while a statement is being served; beginDrain closes
	// an idle connection immediately and lets a busy one finish.
	busy atomic.Bool
	// closeAfter asks the session loop to exit before reading another
	// request.
	closeAfter atomic.Bool

	// body and batch are per-session scratch reused across responses.
	body  []byte
	batch []adm.Value
}

// beginDrain is Shutdown's per-connection half: no more requests will
// be served; an idle connection is cut now, a busy one exits after its
// statement. The order (flag, then busy check) pairs with the session
// loop's (busy clear, then flag check), so a connection going idle
// cannot miss the drain.
func (c *conn) beginDrain() {
	c.closeAfter.Store(true)
	if !c.busy.Load() {
		c.wc.Close()
	}
}

func (s *Server) serveConn(nc net.Conn) {
	wc := wire.NewConn(nc)
	c := &conn{srv: s, wc: wc}
	defer func() {
		// Fold the connection's byte counters into the server totals
		// (live connections are summed at snapshot time instead).
		s.bytesSent.Add(wc.BytesWritten())
		s.bytesRecv.Add(wc.BytesRead())
		wc.Close()
	}()
	if !s.register(c) {
		s.connsRejected.Add(1)
		c.refuse(wire.CodeTooManySessions,
			fmt.Sprintf("server at its %d-session limit", s.cfg.MaxSessions))
		return
	}
	defer s.unregister(c)
	if !c.handshake() {
		s.connsRejected.Add(1)
		return
	}
	s.connsAccepted.Add(1)
	s.sessions.Add(1)
	defer s.sessions.Add(-1)
	for {
		if c.closeAfter.Load() {
			return
		}
		// The idle deadline covers the whole frame read; a request
		// arriving is never larger than one statement + params, so the
		// distinction between idle and read timeouts does not matter
		// here in practice.
		nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		t, reqBody, err := wc.ReadFrame(wire.MaxFrame)
		if err != nil {
			// Client went away, idle timeout, or drain closed us.
			return
		}
		nc.SetReadDeadline(time.Time{})
		c.busy.Store(true)
		err = c.dispatch(t, reqBody)
		c.busy.Store(false)
		if err != nil {
			s.logf("server: session ended: %v", err)
			return
		}
	}
}

// handshake validates the Hello frame (magic, version, auth token) and
// answers Welcome. The pre-auth frame is size-capped so an
// unauthenticated peer cannot make the server allocate.
func (c *conn) handshake() bool {
	nc := c.wc.NetConn()
	nc.SetReadDeadline(time.Now().Add(c.srv.cfg.ReadTimeout))
	t, body, err := c.wc.ReadFrame(wire.MaxHandshakeFrame)
	nc.SetReadDeadline(time.Time{})
	if err != nil {
		return false
	}
	if t != wire.TypeHello {
		c.refuse(wire.CodeProtocol, fmt.Sprintf("expected Hello, got %v", t))
		return false
	}
	h, err := wire.ParseHello(body)
	if err != nil {
		c.refuse(wire.CodeProtocol, err.Error())
		return false
	}
	if h.Version != wire.Version {
		c.refuse(wire.CodeProtocol,
			fmt.Sprintf("wire version %d not supported (server speaks %d)", h.Version, wire.Version))
		return false
	}
	if len(c.srv.tokens) > 0 {
		if _, ok := c.srv.tokens[h.Token]; !ok {
			c.srv.authFailures.Add(1)
			c.refuse(wire.CodeAuth, "bad or missing auth token")
			return false
		}
	}
	c.body = wire.AppendWelcome(c.body[:0], wire.Welcome{
		Version: wire.Version,
		Server:  c.srv.cfg.ServerName,
	})
	if err := c.wc.WriteFrame(wire.TypeWelcome, c.body); err != nil {
		return false
	}
	return c.flush() == nil
}

// dispatch serves one request frame. A nil return keeps the session; a
// non-nil return closes the connection (protocol violations, broken
// pipes). Statement failures are answered with an Error frame and keep
// the session — they are the client's problem, not the connection's.
func (c *conn) dispatch(t wire.Type, body []byte) error {
	switch t {
	case wire.TypePing:
		if err := c.srv.cluster.Ping(c.srv.baseCtx); err != nil {
			return c.writeError(err)
		}
		if err := c.wc.WriteFrame(wire.TypePong, nil); err != nil {
			return err
		}
		return c.flush()
	case wire.TypeStats:
		return c.statsReply()
	case wire.TypeExecute:
		return c.handleExecute(body)
	case wire.TypeQuery:
		return c.handleQuery(body)
	case wire.TypeCloseRows:
		// A CloseRows that raced with the natural end of a stream: the
		// Trailer the client wants is already in flight. Ignore.
		return nil
	default:
		c.refuse(wire.CodeProtocol, fmt.Sprintf("unexpected %v frame", t))
		return fmt.Errorf("%w: unexpected %v frame", errProtocol, t)
	}
}

// handleExecute runs a statement script and answers with per-statement
// result summaries (feeds by name) or a typed, positioned error.
func (c *conn) handleExecute(body []byte) error {
	req, perr := wire.ParseRequest(body)
	if perr != nil {
		c.refuse(wire.CodeProtocol, perr.Error())
		return fmt.Errorf("%w: %v", errProtocol, perr)
	}
	c.srv.statements.Add(1)
	results, err := c.srv.cluster.Execute(c.srv.baseCtx, req.Text, requestArgs(req)...)
	if err != nil {
		return c.writeError(err)
	}
	out := make([]wire.StmtResult, 0, len(results))
	for _, res := range results {
		sr := wire.StmtResult{
			Kind:         res.Kind,
			Pos:          res.Pos,
			RowsAffected: res.RowsAffected,
		}
		if res.Feed != nil {
			sr.Feed = res.Feed.Name()
		}
		out = append(out, sr)
	}
	c.body = wire.AppendExecResults(c.body[:0], out)
	if err := c.wc.WriteFrame(wire.TypeExecResult, c.body); err != nil {
		return err
	}
	return c.flush()
}

// handleQuery streams one SELECT: header, row batches pulled straight
// from the engine's cursor with a flush per batch, then a trailer.
// Between batches it polls the client so a CloseRows (or a dead peer)
// tears the cursor down promptly — a mid-stream disconnect never leaks
// a server-side cursor or its partition scans.
func (c *conn) handleQuery(body []byte) error {
	req, perr := wire.ParseRequest(body)
	if perr != nil {
		c.refuse(wire.CodeProtocol, perr.Error())
		return fmt.Errorf("%w: %v", errProtocol, perr)
	}
	c.srv.queries.Add(1)
	rows, err := c.srv.cluster.Query(c.srv.baseCtx, req.Text, requestArgs(req)...)
	if err != nil {
		return c.writeError(err)
	}
	c.srv.openCursors.Add(1)
	defer func() {
		rows.Close()
		c.srv.openCursors.Add(-1)
	}()
	c.body = wire.AppendHeader(c.body[:0], wire.Header{Columns: []string{"value"}})
	if err := c.wc.WriteFrame(wire.TypeHeader, c.body); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	if cap(c.batch) < c.srv.cfg.BatchRows {
		c.batch = make([]adm.Value, 0, c.srv.cfg.BatchRows)
	}
	sent := uint64(0)
	lastPoll := time.Now()
	for {
		// Poll for CloseRows / client death between batches, but only
		// every pollEvery: the peek briefly blocks on an idle peer (the
		// common case mid-stream), and paying that per batch would
		// throttle the stream.
		if c.wc.Buffered() > 0 || time.Since(lastPoll) >= pollEvery {
			lastPoll = time.Now()
			t, _, got, err := c.wc.PollFrame(wire.MaxFrame, pollWait, c.srv.cfg.ReadTimeout)
			if err != nil {
				// Client died mid-stream; the deferred Close unwinds the
				// cursor and its partition scans.
				return err
			}
			if got {
				if t != wire.TypeCloseRows {
					c.refuse(wire.CodeProtocol, fmt.Sprintf("unexpected %v frame during result stream", t))
					return fmt.Errorf("%w: %v during stream", errProtocol, t)
				}
				return c.writeTrailer(sent)
			}
		}
		c.batch = c.batch[:0]
		exhausted := false
		for len(c.batch) < c.srv.cfg.BatchRows {
			if !rows.Next() {
				exhausted = true
				break
			}
			v, _ := bridge.UnwrapValue(rows.Value())
			c.batch = append(c.batch, v)
		}
		if len(c.batch) > 0 {
			c.body = wire.AppendRowBatch(c.body[:0], c.batch)
			if err := c.wc.WriteFrame(wire.TypeRowBatch, c.body); err != nil {
				return err
			}
			if err := c.flush(); err != nil {
				return err
			}
			sent += uint64(len(c.batch))
			c.srv.rowsSent.Add(int64(len(c.batch)))
		}
		if exhausted {
			if err := rows.Err(); err != nil {
				return c.writeError(err)
			}
			return c.writeTrailer(sent)
		}
	}
}

func (c *conn) writeTrailer(rows uint64) error {
	c.body = wire.AppendTrailer(c.body[:0], wire.Trailer{Rows: rows})
	if err := c.wc.WriteFrame(wire.TypeTrailer, c.body); err != nil {
		return err
	}
	return c.flush()
}

// statsReply serializes the server counters as one adm object.
func (c *conn) statsReply() error {
	st := c.srv.Stats()
	o := adm.ObjectFromPairs(
		"server", adm.String(c.srv.cfg.ServerName),
		"uptime_ms", adm.Int(time.Since(c.srv.start).Milliseconds()),
		"nodes", adm.Int(int64(c.srv.cluster.Nodes())),
		"conns_accepted", adm.Int(st.ConnsAccepted),
		"conns_rejected", adm.Int(st.ConnsRejected),
		"auth_failures", adm.Int(st.AuthFailures),
		"sessions_active", adm.Int(st.SessionsActive),
		"queries", adm.Int(st.Queries),
		"statements", adm.Int(st.Statements),
		"rows_sent", adm.Int(st.RowsSent),
		"bytes_sent", adm.Int(st.BytesSent),
		"bytes_received", adm.Int(st.BytesReceived),
		"errors", adm.Int(st.Errors),
		"open_cursors", adm.Int(st.OpenCursors),
		"block_cache_hits", adm.Int(int64(st.Storage.BlockCacheHits)),
		"block_cache_misses", adm.Int(int64(st.Storage.BlockCacheMisses)),
		"block_cache_evictions", adm.Int(int64(st.Storage.BlockCacheEvictions)),
		"block_cache_entries", adm.Int(int64(st.Storage.BlockCacheEntries)),
		"block_cache_bytes", adm.Int(st.Storage.BlockCacheBytes),
		"bloom_skips", adm.Int(int64(st.Storage.BloomSkips)),
		"fence_skips", adm.Int(int64(st.Storage.FenceSkips)),
		"block_reads", adm.Int(int64(st.Storage.BlockReads)),
		"open_run_files", adm.Int(int64(st.Storage.OpenRunFiles)),
	)
	c.body = wire.AppendValue(c.body[:0], adm.ObjectValue(o))
	if err := c.wc.WriteFrame(wire.TypeStatsReply, c.body); err != nil {
		return err
	}
	return c.flush()
}

// writeError answers a statement failure with a typed error frame and
// keeps the session alive.
func (c *conn) writeError(err error) error {
	c.srv.errorsSent.Add(1)
	c.body = wire.AppendError(c.body[:0], errorMsg(err))
	if werr := c.wc.WriteFrame(wire.TypeError, c.body); werr != nil {
		return werr
	}
	return c.flush()
}

// refuse sends a one-shot error frame on a connection that is about to
// close (handshake failures, protocol violations); best-effort.
func (c *conn) refuse(code, msg string) {
	c.srv.errorsSent.Add(1)
	body := wire.AppendError(nil, wire.ErrorMsg{Code: code, Message: msg})
	if c.wc.WriteFrame(wire.TypeError, body) == nil {
		c.flush()
	}
}

// flush pushes buffered frames under the write deadline, so a client
// that stops draining cannot wedge the session goroutine.
func (c *conn) flush() error {
	nc := c.wc.NetConn()
	nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	err := c.wc.Flush()
	nc.SetWriteDeadline(time.Time{})
	return err
}

// requestArgs converts wire parameters into public-API arguments; the
// bridge boxes each adm value as an idea.Value so named binding and
// validation run exactly as they do in-process.
func requestArgs(req wire.Request) []any {
	if len(req.Params) == 0 {
		return nil
	}
	args := make([]any, 0, len(req.Params))
	for _, p := range req.Params {
		args = append(args, idea.Named(p.Name, bridge.WrapValue(p.Value)))
	}
	return args
}
