package server

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/ideadb/idea"
	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/wire"
)

const testSchema = `
CREATE TYPE T AS OPEN { id: int64 };
CREATE DATASET D(T) PRIMARY KEY id;
`

func newCluster(t *testing.T, cfg idea.Config) *idea.Cluster {
	t.Helper()
	c, err := idea.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// startServer boots a Server on a loopback TCP port and returns it
// with its address.
func startServer(t *testing.T, c *idea.Cluster, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(c, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, l.Addr().String()
}

// wireDial connects and completes the handshake, failing the test on
// refusal.
func wireDial(t *testing.T, addr, token string) *wire.Conn {
	t.Helper()
	wc, msg, err := tryDial(addr, token)
	if err != nil {
		t.Fatal(err)
	}
	if msg != nil {
		t.Fatalf("handshake refused: %+v", *msg)
	}
	t.Cleanup(func() { wc.Close() })
	return wc
}

// tryDial connects and attempts the handshake; a server refusal comes
// back as the parsed error frame.
func tryDial(addr, token string) (*wire.Conn, *wire.ErrorMsg, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	wc := wire.NewConn(nc)
	if err := handshake(wc, wire.Hello{Version: wire.Version, Token: token}); err != nil {
		nc.Close()
		return nil, nil, err
	}
	typ, body, err := wc.ReadFrame(wire.MaxHandshakeFrame)
	if err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("handshake reply: %w", err)
	}
	switch typ {
	case wire.TypeWelcome:
		if _, err := wire.ParseWelcome(body); err != nil {
			nc.Close()
			return nil, nil, err
		}
		return wc, nil, nil
	case wire.TypeError:
		defer nc.Close()
		msg, perr := wire.ParseError(body)
		if perr != nil {
			return nil, nil, perr
		}
		return nil, &msg, nil
	default:
		nc.Close()
		return nil, nil, fmt.Errorf("unexpected %v frame", typ)
	}
}

func handshake(wc *wire.Conn, h wire.Hello) error {
	if err := wc.WriteFrame(wire.TypeHello, wire.AppendHello(nil, h)); err != nil {
		return err
	}
	return wc.Flush()
}

// call sends one request frame and returns the first response frame.
func call(t *testing.T, wc *wire.Conn, typ wire.Type, body []byte) (wire.Type, []byte) {
	t.Helper()
	if err := wc.WriteFrame(typ, body); err != nil {
		t.Fatal(err)
	}
	if err := wc.Flush(); err != nil {
		t.Fatal(err)
	}
	rt, rb, err := wc.ReadFrame(wire.MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	return rt, rb
}

func mustExec(t *testing.T, wc *wire.Conn, script string, params ...wire.Param) []wire.StmtResult {
	t.Helper()
	body := wire.AppendRequest(nil, wire.Request{Text: script, Params: params})
	rt, rb := call(t, wc, wire.TypeExecute, body)
	if rt == wire.TypeError {
		msg, _ := wire.ParseError(rb)
		t.Fatalf("execute failed: %+v", msg)
	}
	if rt != wire.TypeExecResult {
		t.Fatalf("execute answered %v", rt)
	}
	results, err := wire.ParseExecResults(rb)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// drainQuery reads a full result stream (header already consumed) and
// returns the rows.
func drainQuery(t *testing.T, wc *wire.Conn) []adm.Value {
	t.Helper()
	var rows []adm.Value
	for {
		rt, rb, err := wc.ReadFrame(wire.MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		switch rt {
		case wire.TypeRowBatch:
			br, err := wire.NewBatchReader(rb)
			if err != nil {
				t.Fatal(err)
			}
			for {
				v, ok, err := br.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				rows = append(rows, v)
			}
		case wire.TypeTrailer:
			tr, err := wire.ParseTrailer(rb)
			if err != nil {
				t.Fatal(err)
			}
			if int(tr.Rows) != len(rows) {
				t.Fatalf("trailer says %d rows, stream carried %d", tr.Rows, len(rows))
			}
			return rows
		case wire.TypeError:
			msg, _ := wire.ParseError(rb)
			t.Fatalf("stream error: %+v", msg)
		default:
			t.Fatalf("unexpected %v frame in stream", rt)
		}
	}
}

func insertScript(n int) string {
	var b strings.Builder
	b.WriteString("INSERT INTO D ([")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id": %d, "pad": "%060d"}`, i, i)
	}
	b.WriteString("]);")
	return b.String()
}

func TestPingAndStats(t *testing.T) {
	c := newCluster(t, idea.Config{})
	srv, addr := startServer(t, c, Config{})
	wc := wireDial(t, addr, "")

	rt, _ := call(t, wc, wire.TypePing, nil)
	if rt != wire.TypePong {
		t.Fatalf("ping answered %v", rt)
	}

	rt, rb := call(t, wc, wire.TypeStats, nil)
	if rt != wire.TypeStatsReply {
		t.Fatalf("stats answered %v", rt)
	}
	v, err := wire.ParseValue(rb)
	if err != nil {
		t.Fatal(err)
	}
	if v.Field("server").StringVal() != "ideaserver" {
		t.Fatalf("stats = %v", v)
	}
	if v.Field("sessions_active").IntVal() != 1 {
		t.Fatalf("sessions_active = %v", v.Field("sessions_active"))
	}
	// The storage read-path counters ride next to open_cursors; an
	// in-memory cluster reports them all zero, but they must be present.
	for _, f := range []string{"block_cache_hits", "block_cache_misses", "block_cache_bytes", "bloom_skips", "fence_skips", "block_reads", "open_run_files"} {
		fv := v.Field(f)
		if fv.IsMissing() {
			t.Fatalf("stats missing %q: %v", f, v)
		}
		if fv.IntVal() != 0 {
			t.Fatalf("in-memory cluster reports %s = %v", f, fv)
		}
	}
	if got := srv.Stats().ConnsAccepted; got != 1 {
		t.Fatalf("ConnsAccepted = %d", got)
	}
}

func TestAuth(t *testing.T) {
	c := newCluster(t, idea.Config{})
	srv, addr := startServer(t, c, Config{AuthTokens: []string{"good"}})

	_, msg, err := tryDial(addr, "bad")
	if err != nil {
		t.Fatal(err)
	}
	if msg == nil || msg.Code != wire.CodeAuth {
		t.Fatalf("bad token: %+v", msg)
	}
	_, msg, err = tryDial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	if msg == nil || msg.Code != wire.CodeAuth {
		t.Fatalf("missing token: %+v", msg)
	}
	wc := wireDial(t, addr, "good")
	if rt, _ := call(t, wc, wire.TypePing, nil); rt != wire.TypePong {
		t.Fatal("authed ping failed")
	}
	if got := srv.Stats().AuthFailures; got != 2 {
		t.Fatalf("AuthFailures = %d, want 2", got)
	}
}

func TestHandshakeRefusals(t *testing.T) {
	c := newCluster(t, idea.Config{})
	_, addr := startServer(t, c, Config{})

	// Wrong wire version.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	wc := wire.NewConn(nc)
	if err := handshake(wc, wire.Hello{Version: 99}); err != nil {
		t.Fatal(err)
	}
	rt, rb, err := wc.ReadFrame(wire.MaxHandshakeFrame)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := wire.ParseError(rb)
	if rt != wire.TypeError || msg.Code != wire.CodeProtocol {
		t.Fatalf("version mismatch: %v %+v", rt, msg)
	}

	// Not speaking the protocol at all: first frame is not Hello.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	wc2 := wire.NewConn(nc2)
	wc2.WriteFrame(wire.TypePing, nil)
	wc2.Flush()
	rt, rb, err = wc2.ReadFrame(wire.MaxHandshakeFrame)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ = wire.ParseError(rb)
	if rt != wire.TypeError || msg.Code != wire.CodeProtocol {
		t.Fatalf("non-hello open: %v %+v", rt, msg)
	}
}

func TestSessionLimit(t *testing.T) {
	c := newCluster(t, idea.Config{})
	_, addr := startServer(t, c, Config{MaxSessions: 1})

	wireDial(t, addr, "") // occupies the only slot
	_, msg, err := tryDial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	if msg == nil || msg.Code != wire.CodeTooManySessions {
		t.Fatalf("over-limit dial: %+v", msg)
	}
}

func TestExecuteAndQueryStream(t *testing.T) {
	c := newCluster(t, idea.Config{})
	srv, addr := startServer(t, c, Config{BatchRows: 4})
	wc := wireDial(t, addr, "")

	results := mustExec(t, wc, testSchema)
	if len(results) != 2 || results[1].Kind != "CREATE DATASET" {
		t.Fatalf("schema results: %+v", results)
	}
	results = mustExec(t, wc, insertScript(25))
	if len(results) != 1 || results[0].RowsAffected != 25 {
		t.Fatalf("insert results: %+v", results)
	}

	body := wire.AppendRequest(nil, wire.Request{
		Text:   `SELECT VALUE d.id FROM D d WHERE d.id >= $min`,
		Params: []wire.Param{{Name: "min", Value: adm.Int(20)}},
	})
	rt, rb := call(t, wc, wire.TypeQuery, body)
	if rt != wire.TypeHeader {
		t.Fatalf("query answered %v", rt)
	}
	h, err := wire.ParseHeader(rb)
	if err != nil || len(h.Columns) != 1 || h.Columns[0] != "value" {
		t.Fatalf("header %+v, %v", h, err)
	}
	rows := drainQuery(t, wc)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}

	// The session survives a statement error and maps the sentinel.
	// The engine resolves datasets lazily, so the failure arrives in
	// the stream after the Header.
	rt, rb = call(t, wc, wire.TypeQuery, wire.AppendRequest(nil, wire.Request{Text: `SELECT VALUE x FROM Nope x`}))
	if rt != wire.TypeHeader {
		t.Fatalf("bad query answered %v", rt)
	}
	var msg wire.ErrorMsg
	for {
		rt, rb, err = wc.ReadFrame(wire.MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if rt == wire.TypeRowBatch {
			continue
		}
		if rt != wire.TypeError {
			t.Fatalf("bad query stream ended with %v", rt)
		}
		if msg, err = wire.ParseError(rb); err != nil {
			t.Fatal(err)
		}
		break
	}
	if msg.Code != wire.CodeUnknownDataset {
		t.Fatalf("bad query error: %+v", msg)
	}
	if rt, _ := call(t, wc, wire.TypePing, nil); rt != wire.TypePong {
		t.Fatal("session did not survive the statement error")
	}

	st := srv.Stats()
	if st.Queries != 2 || st.RowsSent != 5 || st.OpenCursors != 0 {
		t.Fatalf("stats after stream: %+v", st)
	}
}

func TestStatementErrorPosition(t *testing.T) {
	c := newCluster(t, idea.Config{})
	_, addr := startServer(t, c, Config{})
	wc := wireDial(t, addr, "")
	mustExec(t, wc, testSchema)

	script := `INSERT INTO D ([{"id": 1}]); INSERT INTO Nope ([{"id": 2}]);`
	rt, rb := call(t, wc, wire.TypeExecute, wire.AppendRequest(nil, wire.Request{Text: script}))
	if rt != wire.TypeError {
		t.Fatalf("bad script answered %v", rt)
	}
	msg, err := wire.ParseError(rb)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Code != wire.CodeUnknownDataset || !msg.HasStmt || msg.Index != 1 || msg.Snippet == "" {
		t.Fatalf("statement error not positioned: %+v", msg)
	}
}

// TestCloseRowsMidStream interrupts a stream with CloseRows and checks
// the server answers with a prompt Trailer and a clean cursor gauge.
func TestCloseRowsMidStream(t *testing.T) {
	c := newCluster(t, idea.Config{})
	srv, addr := startServer(t, c, Config{BatchRows: 2})
	wc := wireDial(t, addr, "")
	mustExec(t, wc, testSchema)
	mustExec(t, wc, insertScript(500))

	rt, _ := call(t, wc, wire.TypeQuery, wire.AppendRequest(nil, wire.Request{Text: `SELECT VALUE d FROM D d`}))
	if rt != wire.TypeHeader {
		t.Fatalf("query answered %v", rt)
	}
	if err := wc.WriteFrame(wire.TypeCloseRows, nil); err != nil {
		t.Fatal(err)
	}
	if err := wc.Flush(); err != nil {
		t.Fatal(err)
	}
	// Discard in-flight batches until the Trailer acknowledges the
	// close.
	sawTrailer := false
	for !sawTrailer {
		rt, _, err := wc.ReadFrame(wire.MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		switch rt {
		case wire.TypeRowBatch:
		case wire.TypeTrailer:
			sawTrailer = true
		default:
			t.Fatalf("unexpected %v frame while closing", rt)
		}
	}
	if rt, _ := call(t, wc, wire.TypePing, nil); rt != wire.TypePong {
		t.Fatal("session unusable after CloseRows")
	}
	if got := srv.Stats().OpenCursors; got != 0 {
		t.Fatalf("OpenCursors = %d after CloseRows", got)
	}
}

// TestClientDeathMidStream kills the client socket mid-stream (RST via
// SetLinger 0) and asserts the server notices and unwinds the cursor —
// the leak assertion from the issue.
func TestClientDeathMidStream(t *testing.T) {
	c := newCluster(t, idea.Config{})
	srv, addr := startServer(t, c, Config{BatchRows: 2})

	setup := wireDial(t, addr, "")
	mustExec(t, setup, testSchema)
	mustExec(t, setup, insertScript(2000))

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(nc)
	if err := handshake(wc, wire.Hello{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}
	if rt, _, err := wc.ReadFrame(wire.MaxHandshakeFrame); err != nil || rt != wire.TypeWelcome {
		t.Fatalf("handshake: %v %v", rt, err)
	}
	if err := wc.WriteFrame(wire.TypeQuery, wire.AppendRequest(nil, wire.Request{Text: `SELECT VALUE d FROM D d`})); err != nil {
		t.Fatal(err)
	}
	if err := wc.Flush(); err != nil {
		t.Fatal(err)
	}
	if rt, _, err := wc.ReadFrame(wire.MaxFrame); err != nil || rt != wire.TypeHeader {
		t.Fatalf("header: %v %v", rt, err)
	}
	// Die abruptly without reading the stream.
	nc.(*net.TCPConn).SetLinger(0)
	nc.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if srv.Stats().OpenCursors == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cursor leaked after client death: OpenCursors = %d", srv.Stats().OpenCursors)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGracefulDrainDurable checks the acceptance scenario: writes
// acknowledged over the wire survive a graceful drain, cluster close,
// and reopen from the same data directory.
func TestGracefulDrainDurable(t *testing.T) {
	dir := t.TempDir()
	c := newCluster(t, idea.Config{DataDir: dir})
	srv, addr := startServer(t, c, Config{})
	wc := wireDial(t, addr, "")
	mustExec(t, wc, testSchema)
	results := mustExec(t, wc, insertScript(40))
	if results[0].RowsAffected != 40 {
		t.Fatalf("insert acked %d rows", results[0].RowsAffected)
	}
	wc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the same directory; the catalog is not persisted, so
	// the DDL runs again and the datasets re-attach to their storage.
	c2 := newCluster(t, idea.Config{DataDir: dir})
	_, addr2 := startServer(t, c2, Config{})
	wc2 := wireDial(t, addr2, "")
	mustExec(t, wc2, testSchema)
	rt, _ := call(t, wc2, wire.TypeQuery, wire.AppendRequest(nil, wire.Request{Text: `SELECT VALUE d.id FROM D d`}))
	if rt != wire.TypeHeader {
		t.Fatalf("query answered %v", rt)
	}
	rows := drainQuery(t, wc2)
	if len(rows) != 40 {
		t.Fatalf("recovered %d rows, want 40 (acknowledged writes lost)", len(rows))
	}
}

// TestDrainWaitsForInFlight starts a stream, drains the server, and
// checks the stream completes before Shutdown returns.
func TestDrainWaitsForInFlight(t *testing.T) {
	c := newCluster(t, idea.Config{})
	srv, addr := startServer(t, c, Config{BatchRows: 8})
	wc := wireDial(t, addr, "")
	mustExec(t, wc, testSchema)
	mustExec(t, wc, insertScript(300))

	rt, _ := call(t, wc, wire.TypeQuery, wire.AppendRequest(nil, wire.Request{Text: `SELECT VALUE d FROM D d`}))
	if rt != wire.TypeHeader {
		t.Fatalf("query answered %v", rt)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	rows := drainQuery(t, wc)
	if len(rows) != 300 {
		t.Fatalf("drained %d rows, want 300", len(rows))
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown forced: %v", err)
	}
	// New connections are refused during/after drain.
	if _, _, err := tryDial(addr, ""); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}

// TestServeConnPipe drives a session over net.Pipe — no sockets — the
// same seam the driver tests use.
func TestServeConnPipe(t *testing.T) {
	c := newCluster(t, idea.Config{})
	srv := New(c, Config{})
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(server)
	}()
	wc := wire.NewConn(client)
	if err := handshake(wc, wire.Hello{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}
	if rt, _, err := wc.ReadFrame(wire.MaxHandshakeFrame); err != nil || rt != wire.TypeWelcome {
		t.Fatalf("handshake: %v %v", rt, err)
	}
	if rt, _ := call(t, wc, wire.TypePing, nil); rt != wire.TypePong {
		t.Fatal("ping over pipe failed")
	}
	client.Close()
	<-done
}

// TestTLS serves over a TLS listener with an in-process self-signed
// certificate, the same wrapping cmd/ideaserver applies.
func TestTLS(t *testing.T) {
	c := newCluster(t, idea.Config{})
	srv := New(c, Config{})
	cert := selfSigned(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tl := tls.NewListener(l, &tls.Config{Certificates: []tls.Certificate{cert}})
	go srv.Serve(tl)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	nc, err := tls.Dial("tcp", l.Addr().String(), &tls.Config{InsecureSkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	wc := wire.NewConn(nc)
	if err := handshake(wc, wire.Hello{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}
	if rt, _, err := wc.ReadFrame(wire.MaxHandshakeFrame); err != nil || rt != wire.TypeWelcome {
		t.Fatalf("handshake over TLS: %v %v", rt, err)
	}
	if rt, _ := call(t, wc, wire.TypePing, nil); rt != wire.TypePong {
		t.Fatal("ping over TLS failed")
	}
}

func selfSigned(t *testing.T) tls.Certificate {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "ideaserver-test"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := tls.X509KeyPair(
		pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}
