// Package server is the network front door: it serves the ideaserver
// wire protocol (internal/wire) over TCP (or any net.Listener — tests
// use net.Pipe, cmd/ideaserver optionally wraps the listener in TLS)
// on top of a public idea.Cluster. One goroutine per connection, one
// statement in flight per connection, streamed result sets that map
// 1:1 onto the engine's pull cursor, prompt teardown of server-side
// cursors when a client disappears mid-stream, and graceful drain:
// Shutdown stops accepting, lets in-flight statements finish, then
// force-closes stragglers when its context expires.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ideadb/idea"
	"github.com/ideadb/idea/internal/wire"
)

// Config tunes a Server. The zero value is usable: no auth, default
// limits.
type Config struct {
	// AuthTokens, when non-empty, requires every handshake to present
	// one of these tokens; an empty list disables authentication.
	AuthTokens []string
	// MaxSessions bounds concurrent connections (default 256). A
	// connection over the limit is refused with a too_many_sessions
	// error frame.
	MaxSessions int
	// IdleTimeout closes a connection that sends no request for this
	// long (default 5m).
	IdleTimeout time.Duration
	// ReadTimeout bounds reading one frame once its first byte has
	// arrived, and the handshake (default 30s).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame batch (default
	// 30s) — a client that stops draining a stream cannot wedge the
	// server.
	WriteTimeout time.Duration
	// BatchRows is the number of result rows per RowBatch frame
	// (default 256). Each batch is flushed as soon as it is full, so
	// the first rows reach a slow-consuming client immediately.
	BatchRows int
	// ServerName is announced in the Welcome frame (default
	// "ideaserver").
	ServerName string
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxSessions <= 0 {
		out.MaxSessions = 256
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 5 * time.Minute
	}
	if out.ReadTimeout <= 0 {
		out.ReadTimeout = 30 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 30 * time.Second
	}
	if out.BatchRows <= 0 {
		out.BatchRows = 256
	}
	if out.ServerName == "" {
		out.ServerName = "ideaserver"
	}
	return out
}

// Stats is a snapshot of the server's counters (the STATS admin verb
// serializes the same numbers).
type Stats struct {
	// ConnsAccepted counts connections that completed the handshake.
	ConnsAccepted int64
	// ConnsRejected counts connections refused (session limit, bad
	// handshake, auth failure).
	ConnsRejected int64
	// AuthFailures counts handshakes with a bad token.
	AuthFailures int64
	// SessionsActive is the current live-connection gauge.
	SessionsActive int64
	// Queries / Statements count Query and Execute requests served.
	Queries    int64
	Statements int64
	// RowsSent counts result rows streamed to clients.
	RowsSent int64
	// BytesSent / BytesReceived count framed wire bytes.
	BytesSent     int64
	BytesReceived int64
	// Errors counts error frames sent.
	Errors int64
	// OpenCursors is the gauge of server-side result cursors currently
	// open — the leak detector: it must return to zero when no query is
	// streaming, including after abrupt client death.
	OpenCursors int64
	// Storage holds the cluster's durable read-path counters (block
	// cache, bloom/fence skips, block reads). All zero for in-memory
	// clusters.
	Storage idea.StorageStats
}

// Server serves the wire protocol over an idea.Cluster. Create with
// New, feed it listeners with Serve (or single connections with
// ServeConn), stop it with Shutdown.
type Server struct {
	cluster *idea.Cluster
	cfg     Config
	tokens  map[string]struct{}
	start   time.Time

	baseCtx context.Context
	cancel  context.CancelFunc

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	draining  bool

	wg sync.WaitGroup

	connsAccepted atomic.Int64
	connsRejected atomic.Int64
	authFailures  atomic.Int64
	sessions      atomic.Int64
	queries       atomic.Int64
	statements    atomic.Int64
	rowsSent      atomic.Int64
	bytesSent     atomic.Int64
	bytesRecv     atomic.Int64
	errorsSent    atomic.Int64
	openCursors   atomic.Int64
}

// New builds a Server over cluster.
func New(cluster *idea.Cluster, cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cluster:   cluster,
		cfg:       cfg.withDefaults(),
		tokens:    make(map[string]struct{}, len(cfg.AuthTokens)),
		start:     time.Now(),
		baseCtx:   ctx,
		cancel:    cancel,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
	for _, tok := range cfg.AuthTokens {
		s.tokens[tok] = struct{}{}
	}
	return s
}

// Stats snapshots the server counters. Byte totals include live
// connections (each connection's counters fold into the server's when
// it ends).
func (s *Server) Stats() Stats {
	st := s.counters()
	s.mu.Lock()
	for c := range s.conns {
		st.BytesSent += c.wc.BytesWritten()
		st.BytesReceived += c.wc.BytesRead()
	}
	s.mu.Unlock()
	st.Storage = s.cluster.StorageStats()
	return st
}

func (s *Server) counters() Stats {
	return Stats{
		ConnsAccepted:  s.connsAccepted.Load(),
		ConnsRejected:  s.connsRejected.Load(),
		AuthFailures:   s.authFailures.Load(),
		SessionsActive: s.sessions.Load(),
		Queries:        s.queries.Load(),
		Statements:     s.statements.Load(),
		RowsSent:       s.rowsSent.Load(),
		BytesSent:      s.bytesSent.Load(),
		BytesReceived:  s.bytesRecv.Load(),
		Errors:         s.errorsSent.Load(),
		OpenCursors:    s.openCursors.Load(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections from l until the listener fails or
// Shutdown closes it. It always returns a non-nil error; after
// Shutdown the error is net.ErrClosed (reported as nil-equivalent by
// callers that test with errors.Is).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return net.ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

// ServeConn serves one already-established connection synchronously
// (the net.Pipe test path). It returns when the connection is done.
func (s *Server) ServeConn(nc net.Conn) {
	s.wg.Add(1)
	defer s.wg.Done()
	s.serveConn(nc)
}

// Shutdown drains the server: stop accepting, close idle connections,
// let in-flight statements run to completion, and force-close whatever
// remains when ctx expires (in-flight query contexts are canceled so
// stuck cursors unwind). It returns ctx.Err() when the deadline forced
// the drain, nil on a clean one. The cluster is NOT closed — the owner
// does that after Shutdown returns, so acknowledged writes commit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed: cancel in-flight statement contexts and cut the
	// remaining connections.
	s.cancel()
	s.mu.Lock()
	for c := range s.conns {
		c.wc.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

func (s *Server) register(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.conns) >= s.cfg.MaxSessions {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// errorMsg maps an engine error onto a wire error frame: a typed code
// for the public sentinels, statement position when the failure came
// from inside a script.
func errorMsg(err error) wire.ErrorMsg {
	msg := wire.ErrorMsg{Code: wire.CodeInternal, Message: err.Error()}
	var se *idea.StatementError
	if errors.As(err, &se) {
		msg.HasStmt = true
		msg.Index = se.Index
		msg.Pos = se.Pos
		msg.Snippet = se.Snippet
	}
	switch {
	case errors.Is(err, idea.ErrUnknownDataset):
		msg.Code = wire.CodeUnknownDataset
	case errors.Is(err, idea.ErrUnknownFunction):
		msg.Code = wire.CodeUnknownFunction
	case errors.Is(err, idea.ErrUnknownFeed):
		msg.Code = wire.CodeUnknownFeed
	case errors.Is(err, idea.ErrFeedNotRunning):
		msg.Code = wire.CodeFeedNotRunning
	case errors.Is(err, idea.ErrFeedOverloaded):
		msg.Code = wire.CodeFeedOverloaded
	case errors.Is(err, idea.ErrPartitionDown):
		msg.Code = wire.CodePartitionDown
	case errors.Is(err, idea.ErrClusterClosed):
		msg.Code = wire.CodeClosed
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		msg.Code = wire.CodeCanceled
	}
	return msg
}

var errProtocol = fmt.Errorf("wire protocol violation")
