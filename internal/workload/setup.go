package workload

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/sqlpp"
	"github.com/ideadb/idea/internal/udf"
)

// UDFNames are the eight paper use cases in evaluation order.
var UDFNames = []string{
	"enrichTweetQ1", // Safety Rating (hash join)
	"enrichTweetQ2", // Religious Population (group-by)
	"enrichTweetQ3", // Largest Religions (order-by)
	"enrichTweetQ4", // Fuzzy Suspects (similarity join)
	"enrichTweetQ5", // Nearby Monuments (index spatial join)
	"enrichTweetQ6", // Suspicious Names
	"enrichTweetQ7", // Tweet Context
	"enrichTweetQ8", // Worrisome Tweets
}

// UseCaseLabels maps UDF names to the paper's figure labels.
var UseCaseLabels = map[string]string{
	"enrichTweetQ1": "Safety Rating",
	"enrichTweetQ2": "Religious Population",
	"enrichTweetQ3": "Largest Religions",
	"enrichTweetQ4": "Fuzzy Suspects",
	"enrichTweetQ5": "Nearby Monuments",
	"enrichTweetQ6": "Suspicious Names",
	"enrichTweetQ7": "Tweet Context",
	"enrichTweetQ8": "Worrisome Tweets",
}

// ReferenceDatasets maps each UDF to the reference datasets it consults
// (the update experiment targets the first).
var ReferenceDatasets = map[string][]string{
	"enrichTweetQ1": {"SafetyRatings"},
	"enrichTweetQ2": {"ReligiousPopulations"},
	"enrichTweetQ3": {"ReligiousPopulations"},
	"enrichTweetQ4": {"SuspectsNames"},
	"enrichTweetQ5": {"monumentList"},
	"enrichTweetQ6": {"Facilities", "ReligiousBuildings", "SensitiveNames"},
	"enrichTweetQ7": {"AverageIncomes", "DistrictAreas", "Facilities", "Residents"},
	"enrichTweetQ8": {"ReligiousBuildings", "AttackEvents"},
}

// UDFDDL holds the CREATE FUNCTION statements for the eight use cases
// (paper Appendix A–H; Q3 uses DESC, a deliberate deviation; Q4's
// dataset is named SuspectsNames per Section 7.2).
const UDFDDL = `
CREATE FUNCTION enrichTweetQ1(t) {
	LET safety_rating = (SELECT VALUE s.safety_rating
		FROM SafetyRatings s
		WHERE t.country = s.country_code)
	SELECT t.*, safety_rating
};

CREATE FUNCTION enrichTweetQ2(t) {
	LET religious_population =
		(SELECT sum(r.population) FROM ReligiousPopulations r
		 WHERE r.country_name = t.country)[0]
	SELECT t.*, religious_population
};

CREATE FUNCTION enrichTweetQ3(t) {
	LET largest_religions =
		(SELECT VALUE r.religion_name
		 FROM ReligiousPopulations r
		 WHERE r.country_name = t.country
		 ORDER BY r.population DESC LIMIT 3)
	SELECT t.*, largest_religions
};

CREATE FUNCTION enrichTweetQ4(x) {
	LET related_suspects = (
		SELECT s.sensitiveName, s.religionName
		FROM SuspectsNames s
		WHERE edit_distance(
			testlib#removeSpecial(x.user.screen_name),
			s.sensitiveName) < 5)
	SELECT x.*, related_suspects
};

CREATE FUNCTION enrichTweetQ5(t) {
	LET nearby_monuments =
		(SELECT VALUE m.monument_id
		 FROM monumentList m
		 WHERE spatial_intersect(
			m.monument_location,
			create_circle(create_point(t.longitude, t.latitude), 1.5)))
	SELECT t.*, nearby_monuments
};

CREATE FUNCTION enrichTweetQ6(t) {
	LET nearby_facilities = (
		SELECT f.facility_type FacilityType, count(*) AS Cnt
		FROM Facilities f
		WHERE spatial_intersect(create_point(t.longitude, t.latitude),
			create_circle(f.facility_location, 3.0))
		GROUP BY f.facility_type),
	nearby_religious_buildings = (
		SELECT r.religious_building_id religious_building_id, r.religion_name religion_name
		FROM ReligiousBuildings r
		WHERE spatial_intersect(create_point(t.longitude, t.latitude),
			create_circle(r.building_location, 3.0))
		ORDER BY spatial_distance(create_point(t.longitude, t.latitude), r.building_location) LIMIT 3),
	suspicious_users_info = (
		SELECT s.suspicious_name_id suspect_id, s.religion_name AS religion, s.threat_level AS threat_level
		FROM SensitiveNames s
		WHERE s.suspicious_name = t.user.name)
	SELECT t.*, nearby_facilities, nearby_religious_buildings, suspicious_users_info
};

CREATE FUNCTION enrichTweetQ7(t) {
	LET area_avg_income = (
		SELECT VALUE a.average_income
		FROM AverageIncomes a, DistrictAreas d1
		WHERE a.district_area_id = d1.district_area_id
			AND spatial_intersect(create_point(t.longitude, t.latitude), d1.district_area)),
	area_facilities = (
		SELECT f.facility_type, count(*) AS Cnt
		FROM Facilities f, DistrictAreas d2
		WHERE spatial_intersect(f.facility_location, d2.district_area)
			AND spatial_intersect(create_point(t.longitude, t.latitude), d2.district_area)
		GROUP BY f.facility_type),
	ethnicity_dist = (
		SELECT ethnicity, count(*) AS EthnicityPopulation
		FROM Residents p, DistrictAreas d3
		WHERE spatial_intersect(create_point(t.longitude, t.latitude), d3.district_area)
			AND spatial_intersect(p.location, d3.district_area)
		GROUP BY p.ethnicity AS ethnicity)
	SELECT t.*, area_avg_income, area_facilities, ethnicity_dist
};

CREATE FUNCTION enrichTweetQ8(t) {
	LET nearby_religious_attacks = (
		SELECT r.religion_name AS religion, count(a.attack_record_id) AS attack_num
		FROM ReligiousBuildings r, AttackEvents a
		WHERE spatial_intersect(create_point(t.longitude, t.latitude),
				create_circle(r.building_location, 3.0))
			AND t.created_at < a.attack_datetime + duration("P2M")
			AND t.created_at > a.attack_datetime
			AND r.religion_name = a.related_religion
		GROUP BY r.religion_name)
	SELECT t.*, nearby_religious_attacks
};

CREATE FUNCTION tweetSafetyCheck(tweet) {
	LET safety_check_flag = CASE
		EXISTS(SELECT s FROM SensitiveWords s
			WHERE tweet.country = s.country AND contains(tweet.text, s.word))
		WHEN true THEN "Red" ELSE "Green" END
	SELECT tweet.*, safety_check_flag
};

CREATE FUNCTION USTweetSafetyCheck(tweet) {
	LET safety_check_flag =
		CASE tweet.country = "C000000" AND contains(tweet.text, "bomb")
		WHEN true THEN "Red" ELSE "Green" END
	SELECT tweet.*, safety_check_flag
};
`

// Setup installs the complete paper workload on a cluster: datatypes,
// tweet + reference datasets (loaded at the generator's sizes), the Q5
// spatial index, the namespaced native helper, and all UDFs. It returns
// the generator for tweet/update generation.
func Setup(c *cluster.Cluster, seed int64, sizes Sizes) (*Generator, error) {
	g := NewGenerator(seed, sizes)

	if err := c.CreateDatatype(TweetType()); err != nil {
		return nil, err
	}
	if _, err := c.CreateDataset("Tweets", "TweetType", "id"); err != nil {
		return nil, err
	}
	if _, err := c.CreateDataset("EnrichedTweets", "TweetType", "id"); err != nil {
		return nil, err
	}

	loaders := []struct {
		name string
		pk   string
		fill func(*lsm.Dataset) error
	}{
		{"SafetyRatings", "country_code", g.FillSafetyRatings},
		{"ReligiousPopulations", "rid", g.FillReligiousPopulations},
		{"SuspectsNames", "id", g.FillSuspectsNames},
		{"monumentList", "monument_id", g.FillMonumentList},
		{"ReligiousBuildings", "religious_building_id", g.FillReligiousBuildings},
		{"Facilities", "facility_id", g.FillFacilities},
		{"SensitiveNames", "suspicious_name_id", g.FillSensitiveNames},
		{"AverageIncomes", "district_area_id", g.FillAverageIncomes},
		{"DistrictAreas", "district_area_id", g.FillDistrictAreas},
		{"Residents", "person_id", g.FillResidents},
		{"AttackEvents", "attack_record_id", g.FillAttackEvents},
		{"SensitiveWords", "id", g.FillSensitiveWords},
	}
	for _, l := range loaders {
		ds, err := c.CreateDataset(l.name, "", l.pk)
		if err != nil {
			return nil, err
		}
		if err := l.fill(ds); err != nil {
			return nil, fmt.Errorf("workload: loading %s: %w", l.name, err)
		}
	}

	// The Q5 R-tree index (Nearby Monuments is an index join).
	if err := c.CreateIndex("monumentLocIdx", "monumentList", "monument_location", "RTREE"); err != nil {
		return nil, err
	}

	// The native helper Q4 calls from SQL++ (the paper's Figure 35).
	c.RegisterNative("testlib", "removeSpecial", RemoveSpecial)

	stmts, err := sqlpp.Parse(UDFDDL)
	if err != nil {
		return nil, err
	}
	for _, s := range stmts {
		cf, ok := s.(*sqlpp.CreateFunction)
		if !ok {
			return nil, fmt.Errorf("workload: unexpected statement %T in UDF DDL", s)
		}
		if err := c.CreateFunction(&query.Function{
			Name: cf.Name, Params: cf.Params, Body: cf.Body,
		}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// RemoveSpecial strips non-alphanumerics and lower-cases — the paper's
// Java UDF for cleaning screen names (Figure 35).
func RemoveSpecial(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 || args[0].Kind() != adm.KindString {
		return adm.Null(), nil
	}
	s := strings.Map(func(r rune) rune {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			return r
		}
		return -1
	}, args[0].StringVal())
	return adm.String(strings.ToLower(s)), nil
}

// NativeUDFs builds the native ("Java") equivalents of the first five
// use cases for the paper's Static/Dynamic-with-Java comparisons: each
// loads its reference data from dataset snapshots at Initialize (the
// resource-file analog) and probes per record.
func NativeUDFs(c *cluster.Cluster) (*udf.Registry, error) {
	reg := udf.NewRegistry()
	for i, name := range []string{"enrichTweetQ1", "enrichTweetQ2", "enrichTweetQ3", "enrichTweetQ4", "enrichTweetQ5"} {
		fn, ok := c.Function(name)
		if !ok {
			return nil, fmt.Errorf("workload: %s not installed", name)
		}
		// The native implementation mirrors the SQL++ plan: it compiles
		// once and re-prepares at Initialize — exactly what a hand-written
		// Java UDF does with its in-memory tables, so the two attachments
		// share per-batch cost structure while exercising the native path.
		plan, err := query.CompileEnrich(fn.Name, fn.Params, fn.Body, c, query.PlanOptions{})
		if err != nil {
			return nil, err
		}
		nativeName := fmt.Sprintf("nativeQ%d", i+1)
		if err := reg.Register(&udf.Native{
			Name:     nativeName,
			Stateful: true,
			New: func() udf.Instance {
				return &nativeEnrich{cluster: c, plan: plan}
			},
		}); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// nativeEnrich is the shared implementation of the native use-case UDFs.
type nativeEnrich struct {
	cluster  *cluster.Cluster
	plan     *query.EnrichPlan
	prepared *query.PreparedEnrich
}

// Initialize implements udf.Instance: (re)build state from current
// reference data.
func (n *nativeEnrich) Initialize(int) error {
	pe, err := n.plan.Prepare(n.cluster)
	if err != nil {
		return err
	}
	n.prepared = pe
	return nil
}

// Evaluate implements udf.Instance.
func (n *nativeEnrich) Evaluate(rec adm.Value) (adm.Value, error) {
	return n.prepared.EvalRecord(rec)
}

// StartUpdates launches the Section 7.3 update client: upserts into the
// named reference dataset at the given records/second rate until the
// returned stop function is called.
func StartUpdates(ctx context.Context, c *cluster.Cluster, g *Generator, dataset string, perSecond int) (stop func(), err error) {
	ds, ok := c.Dataset(dataset)
	if !ok {
		return nil, fmt.Errorf("workload: unknown dataset %q", dataset)
	}
	if perSecond <= 0 {
		return func() {}, nil
	}
	updCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	// Apply updates in per-tick groups so high rates are deliverable
	// despite coarse timer resolution.
	interval := time.Second / time.Duration(perSecond)
	perTick := 1
	const minInterval = 2 * time.Millisecond
	if interval < minInterval {
		interval = minInterval
		perTick = int(time.Duration(perSecond) * minInterval / time.Second)
		if perTick < 1 {
			perTick = 1
		}
	}
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-updCtx.Done():
				return
			case <-ticker.C:
				for i := 0; i < perTick; i++ {
					rec, ok := g.UpdateRecord(dataset)
					if !ok {
						return
					}
					_ = ds.Upsert(rec)
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}, nil
}
