// Package workload generates the paper's experimental data: a synthetic
// tweet firehose (~450 bytes/record, the paper's record size) and every
// reference dataset from Section 7, at paper scale or scaled down by a
// factor. Generation is deterministic per seed so experiments are
// reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/lsm"
)

// Sizes holds record counts for each reference dataset.
type Sizes struct {
	SafetyRatings        int // 500,000 × ~74 B (Q1)
	ReligiousPopulations int // 500,000 × ~137 B (Q2, Q3)
	SuspectsNames        int // 5,000 × ~150 B (Q4)
	MonumentList         int // 500,000 × ~94 B (Q5)
	ReligiousBuildings   int // 10,000 × ~205 B (Q6, Q8)
	Facilities           int // 50,000 × ~142 B (Q6, Q7)
	SensitiveNames       int // 1,000,000 × ~155 B (Q6)
	AverageIncome        int // 50,000 × ~99 B (Q7)
	DistrictArea         int // 500 × ~121 B (Q7)
	Residents            int // paper: 1,000,000,000 × ~124 B (Q7) — substituted, see docs/ARCHITECTURE.md
	AttackEvents         int // 5,000 × ~179 B (Q8)
	SensitiveWords       int // country/keyword list (UDF 2)
}

// PaperSizes returns the record counts from Section 7, except Residents,
// which the paper lists as 10⁹ and this reproduction caps at 500,000
// (the experiment needs "a reference dataset whose per-batch rebuild
// dominates", which the cap preserves; docs/ARCHITECTURE.md documents the
// substitution).
func PaperSizes() Sizes {
	return Sizes{
		SafetyRatings:        500_000,
		ReligiousPopulations: 500_000,
		SuspectsNames:        5_000,
		MonumentList:         500_000,
		ReligiousBuildings:   10_000,
		Facilities:           50_000,
		SensitiveNames:       1_000_000,
		AverageIncome:        50_000,
		DistrictArea:         500,
		Residents:            500_000,
		AttackEvents:         5_000,
		SensitiveWords:       1_000,
	}
}

// Scaled multiplies every size by f (minimum 1 record; DistrictArea
// minimum 4 so the district grid stays 2-D).
func Scaled(f float64) Sizes {
	s := PaperSizes()
	scale := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	s.SafetyRatings = scale(s.SafetyRatings)
	s.ReligiousPopulations = scale(s.ReligiousPopulations)
	s.SuspectsNames = scale(s.SuspectsNames)
	s.MonumentList = scale(s.MonumentList)
	s.ReligiousBuildings = scale(s.ReligiousBuildings)
	s.Facilities = scale(s.Facilities)
	s.SensitiveNames = scale(s.SensitiveNames)
	s.AverageIncome = scale(s.AverageIncome)
	s.DistrictArea = scale(s.DistrictArea)
	if s.DistrictArea < 4 {
		s.DistrictArea = 4
	}
	s.Residents = scale(s.Residents)
	s.AttackEvents = scale(s.AttackEvents)
	s.SensitiveWords = scale(s.SensitiveWords)
	return s
}

// Multiply scales all reference sizes by an integer factor (Fig 28's 2X,
// 3X, 4X reference-data scale-out).
func (s Sizes) Multiply(k int) Sizes {
	s.SafetyRatings *= k
	s.ReligiousPopulations *= k
	s.SuspectsNames *= k
	s.MonumentList *= k
	s.ReligiousBuildings *= k
	s.Facilities *= k
	s.SensitiveNames *= k
	s.AverageIncome *= k
	s.DistrictArea *= k
	s.Residents *= k
	s.AttackEvents *= k
	s.SensitiveWords *= k
	return s
}

// World is the coordinate plane data lives on.
const (
	worldMinX, worldMaxX = -180.0, 180.0
	worldMinY, worldMaxY = -90.0, 90.0
)

// Epoch is the fixed "now" of the workload (tweets and attack events are
// generated relative to it), keeping runs deterministic.
const Epoch = int64(1_566_550_245_000) // 2019-08-23T08:50:45Z

var religions = []string{"alpha", "beta", "gamma", "delta", "epsilon"}

var sensitiveWords = []string{
	"bomb", "attack", "threat", "riot", "hostage", "coup", "raid",
	"siege", "ambush", "sabotage",
}

var fillerWords = []string{
	"sunny", "coffee", "match", "music", "travel", "launch", "garden",
	"recipe", "startup", "weekend", "library", "sunset", "football",
	"festival", "museum", "harbor",
}

var facilityTypes = []string{"school", "hospital", "stadium", "mall", "station", "park"}

// Generator produces the workload deterministically from a seed.
type Generator struct {
	rng   *rand.Rand
	sizes Sizes
	// countries is the size of the country-key space tweets draw from;
	// it equals the SafetyRatings cardinality so hash-join probes hit.
	countries int
}

// NewGenerator creates a generator for the given sizes.
func NewGenerator(seed int64, sizes Sizes) *Generator {
	countries := sizes.SafetyRatings
	if countries < 1 {
		countries = 1
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), sizes: sizes, countries: countries}
}

// Sizes returns the generator's dataset sizes.
func (g *Generator) Sizes() Sizes { return g.sizes }

func (g *Generator) country(i int) string { return fmt.Sprintf("C%06d", i) }

func (g *Generator) randomCountry() string {
	return g.country(g.rng.Intn(g.countries))
}

func (g *Generator) point() (float64, float64) {
	x := worldMinX + g.rng.Float64()*(worldMaxX-worldMinX)
	y := worldMinY + g.rng.Float64()*(worldMaxY-worldMinY)
	return x, y
}

// tweetText composes ~15 words, occasionally containing a sensitive
// keyword so safety-check UDFs flag a realistic fraction of tweets.
func (g *Generator) tweetText() string {
	var b strings.Builder
	n := 12 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		if g.rng.Intn(10) == 0 {
			b.WriteString(sensitiveWords[g.rng.Intn(len(sensitiveWords))])
		} else {
			b.WriteString(fillerWords[g.rng.Intn(len(fillerWords))])
		}
	}
	return b.String()
}

// TweetJSON serializes one synthetic tweet (~450 bytes) with the given
// id. Field shapes match the paper's workload: country (hash-join key),
// text (keyword search), user names (similarity / exact-name joins),
// coordinates (spatial joins), created_at (temporal windows).
func (g *Generator) TweetJSON(id int64) []byte {
	lon, lat := g.point()
	nameID := g.rng.Intn(maxInt(g.sizes.SensitiveNames, 1))
	suspiciousID := g.rng.Intn(maxInt(g.sizes.SensitiveNames, 1))
	createdAt := Epoch - int64(g.rng.Intn(90*24*3600))*1000
	tweet := fmt.Sprintf(
		`{"id":%d,"text":"%s","country":"%s","user":{"screen_name":"u-ser_%06d!","name":"Name %06d"},"latitude":%.6f,"longitude":%.6f,"created_at":"%s","lang":"en","retweet_count":%d,"filler":"%s"}`,
		id, g.tweetText(), g.randomCountry(), nameID, suspiciousID,
		lat, lon, adm.FormatISODateTime(createdAt), g.rng.Intn(1000),
		strings.Repeat("x", 80))
	return []byte(tweet)
}

// Tweets generates n serialized tweets with ids [base, base+n).
func (g *Generator) Tweets(base int64, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = g.TweetJSON(base + int64(i))
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TweetType is the open datatype tweets are stored under (Figure 1 plus
// the typed fields enrichment needs).
func TweetType() *adm.Datatype {
	return adm.MustDatatype("TweetType", true, []adm.FieldDef{
		{Name: "id", Kind: adm.KindInt64},
		{Name: "text", Kind: adm.KindString},
		{Name: "country", Kind: adm.KindString, Optional: true},
		{Name: "latitude", Kind: adm.KindDouble, Optional: true},
		{Name: "longitude", Kind: adm.KindDouble, Optional: true},
		{Name: "created_at", Kind: adm.KindDateTime, Optional: true},
	})
}

// pad builds a filler string bringing a record to roughly the paper's
// per-record byte size.
func pad(n int) adm.Value {
	if n <= 0 {
		n = 1
	}
	return adm.String(strings.Repeat("p", n))
}

// FillSafetyRatings loads the Q1 reference dataset.
func (g *Generator) FillSafetyRatings(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.SafetyRatings; i++ {
		rec := adm.ObjectFromPairs(
			"country_code", adm.String(g.country(i)),
			"safety_rating", adm.String(fmt.Sprintf("%d", g.rng.Intn(5)+1)),
			"pad", pad(30),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// FillReligiousPopulations loads the Q2/Q3 reference dataset: one row
// per (country, religion).
func (g *Generator) FillReligiousPopulations(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.ReligiousPopulations; i++ {
		country := i / len(religions)
		rec := adm.ObjectFromPairs(
			"rid", adm.String(fmt.Sprintf("rp%08d", i)),
			"country_name", adm.String(g.country(country%g.countries)),
			"religion_name", adm.String(religions[i%len(religions)]),
			"population", adm.Int(int64(g.rng.Intn(5_000_000))),
			"pad", pad(60),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// FillSuspectsNames loads the Q4 reference dataset (the paper's
// SensitiveNamesDataset for the fuzzy similarity join).
func (g *Generator) FillSuspectsNames(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.SuspectsNames; i++ {
		rec := adm.ObjectFromPairs(
			"id", adm.Int(int64(i)),
			"sensitiveName", adm.String(fmt.Sprintf("user%06d", i)),
			"religionName", adm.String(religions[i%len(religions)]),
			"pad", pad(70),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// FillMonumentList loads the Q5 reference dataset.
func (g *Generator) FillMonumentList(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.MonumentList; i++ {
		x, y := g.point()
		rec := adm.ObjectFromPairs(
			"monument_id", adm.String(fmt.Sprintf("m%08d", i)),
			"monument_location", adm.Point(x, y),
			"pad", pad(40),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// FillReligiousBuildings loads the Q6/Q8 reference dataset.
func (g *Generator) FillReligiousBuildings(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.ReligiousBuildings; i++ {
		x, y := g.point()
		rec := adm.ObjectFromPairs(
			"religious_building_id", adm.String(fmt.Sprintf("b%07d", i)),
			"religion_name", adm.String(religions[i%len(religions)]),
			"building_location", adm.Point(x, y),
			"registered_believer", adm.Int(int64(g.rng.Intn(50_000))),
			"pad", pad(110),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// FillFacilities loads the Q6/Q7 reference dataset.
func (g *Generator) FillFacilities(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.Facilities; i++ {
		x, y := g.point()
		rec := adm.ObjectFromPairs(
			"facility_id", adm.String(fmt.Sprintf("f%07d", i)),
			"facility_location", adm.Point(x, y),
			"facility_type", adm.String(facilityTypes[g.rng.Intn(len(facilityTypes))]),
			"pad", pad(70),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// FillSensitiveNames loads the Q6 reference dataset (exact-name join).
func (g *Generator) FillSensitiveNames(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.SensitiveNames; i++ {
		rec := adm.ObjectFromPairs(
			"suspicious_name_id", adm.String(fmt.Sprintf("s%08d", i)),
			"suspicious_name", adm.String(fmt.Sprintf("Name %06d", i)),
			"religion_name", adm.String(religions[i%len(religions)]),
			"threat_level", adm.Int(int64(g.rng.Intn(10))),
			"pad", pad(70),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// districtGrid computes the district tiling: cols × rows == n exactly
// (the most-square divisor pair), so the districts partition the whole
// world plane with no uncovered cells.
func districtGrid(n int) (cols, rows int) {
	rows = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	return n / rows, rows
}

// DistrictRect returns district i's rectangle.
func DistrictRect(i, total int) (x1, y1, x2, y2 float64) {
	cols, rows := districtGrid(total)
	w := (worldMaxX - worldMinX) / float64(cols)
	h := (worldMaxY - worldMinY) / float64(rows)
	cx, cy := i%cols, i/cols
	x1 = worldMinX + float64(cx)*w
	y1 = worldMinY + float64(cy)*h
	return x1, y1, x1 + w, y1 + h
}

// FillDistrictAreas loads the Q7 district tiling.
func (g *Generator) FillDistrictAreas(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.DistrictArea; i++ {
		x1, y1, x2, y2 := DistrictRect(i, g.sizes.DistrictArea)
		rec := adm.ObjectFromPairs(
			"district_area_id", adm.String(fmt.Sprintf("d%05d", i)),
			"district_area", adm.Rectangle(x1, y1, x2, y2),
			"pad", pad(60),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// FillAverageIncomes loads the Q7 income table. It is keyed by
// district_area_id (the paper's schema), so its effective cardinality is
// capped at the district count; IncomeRows reports the loaded count.
func (g *Generator) FillAverageIncomes(ds *lsm.Dataset) error {
	for i := 0; i < g.IncomeRows(); i++ {
		rec := adm.ObjectFromPairs(
			"district_area_id", adm.String(fmt.Sprintf("d%05d", i)),
			"average_income", adm.Double(20_000+g.rng.Float64()*90_000),
			"pad", pad(50),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// IncomeRows is the effective AverageIncomes cardinality: one row per
// district, bounded by the configured size.
func (g *Generator) IncomeRows() int {
	n := g.sizes.AverageIncome
	if n > g.sizes.DistrictArea {
		n = g.sizes.DistrictArea
	}
	return n
}

// FillResidents loads the Q7 resident sampling (see docs/ARCHITECTURE.md
// for the 10⁹ → scaled substitution).
func (g *Generator) FillResidents(ds *lsm.Dataset) error {
	ethnicities := []string{"e1", "e2", "e3", "e4", "e5", "e6"}
	for i := 0; i < g.sizes.Residents; i++ {
		x, y := g.point()
		rec := adm.ObjectFromPairs(
			"person_id", adm.String(fmt.Sprintf("p%09d", i)),
			"ethnicity", adm.String(ethnicities[g.rng.Intn(len(ethnicities))]),
			"location", adm.Point(x, y),
			"pad", pad(50),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// FillAttackEvents loads the Q8 reference dataset: events in the two
// months before Epoch so the temporal window matches.
func (g *Generator) FillAttackEvents(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.AttackEvents; i++ {
		x, y := g.point()
		at := Epoch - int64(g.rng.Intn(75*24*3600))*1000
		rec := adm.ObjectFromPairs(
			"attack_record_id", adm.String(fmt.Sprintf("a%06d", i)),
			"attack_datetime", adm.DateTimeMillis(at),
			"attack_location", adm.Point(x, y),
			"related_religion", adm.String(religions[i%len(religions)]),
			"pad", pad(90),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// FillSensitiveWords loads the UDF-2 keyword list.
func (g *Generator) FillSensitiveWords(ds *lsm.Dataset) error {
	for i := 0; i < g.sizes.SensitiveWords; i++ {
		rec := adm.ObjectFromPairs(
			"id", adm.Int(int64(i)),
			"country", adm.String(g.randomCountry()),
			"word", adm.String(sensitiveWords[i%len(sensitiveWords)]),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			return err
		}
	}
	return nil
}

// UpdateRecord produces a fresh upsert for the named reference dataset —
// the Section 7.3 update client's payload.
func (g *Generator) UpdateRecord(dataset string) (adm.Value, bool) {
	switch dataset {
	case "SafetyRatings":
		return adm.ObjectValue(adm.ObjectFromPairs(
			"country_code", adm.String(g.randomCountry()),
			"safety_rating", adm.String(fmt.Sprintf("%d", g.rng.Intn(5)+1)),
			"pad", pad(30),
		)), true
	case "ReligiousPopulations":
		i := g.rng.Intn(maxInt(g.sizes.ReligiousPopulations, 1))
		return adm.ObjectValue(adm.ObjectFromPairs(
			"rid", adm.String(fmt.Sprintf("rp%08d", i)),
			"country_name", adm.String(g.country((i/len(religions))%g.countries)),
			"religion_name", adm.String(religions[i%len(religions)]),
			"population", adm.Int(int64(g.rng.Intn(5_000_000))),
			"pad", pad(60),
		)), true
	case "SuspectsNames":
		i := g.rng.Intn(maxInt(g.sizes.SuspectsNames, 1))
		return adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(int64(i)),
			"sensitiveName", adm.String(fmt.Sprintf("user%06d", i)),
			"religionName", adm.String(religions[g.rng.Intn(len(religions))]),
			"pad", pad(70),
		)), true
	case "monumentList":
		i := g.rng.Intn(maxInt(g.sizes.MonumentList, 1))
		x, y := g.point()
		return adm.ObjectValue(adm.ObjectFromPairs(
			"monument_id", adm.String(fmt.Sprintf("m%08d", i)),
			"monument_location", adm.Point(x, y),
			"pad", pad(40),
		)), true
	case "ReligiousBuildings":
		i := g.rng.Intn(maxInt(g.sizes.ReligiousBuildings, 1))
		x, y := g.point()
		return adm.ObjectValue(adm.ObjectFromPairs(
			"religious_building_id", adm.String(fmt.Sprintf("b%07d", i)),
			"religion_name", adm.String(religions[i%len(religions)]),
			"building_location", adm.Point(x, y),
			"registered_believer", adm.Int(int64(g.rng.Intn(50_000))),
			"pad", pad(110),
		)), true
	}
	return adm.Value{}, false
}
