package workload

import (
	"context"
	"testing"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/spatial"
)

func TestSizesScaling(t *testing.T) {
	paper := PaperSizes()
	if paper.SafetyRatings != 500_000 || paper.SensitiveNames != 1_000_000 {
		t.Errorf("paper sizes wrong: %+v", paper)
	}
	small := Scaled(0.001)
	if small.SafetyRatings != 500 || small.SuspectsNames != 5 {
		t.Errorf("scaled sizes wrong: %+v", small)
	}
	if small.DistrictArea < 4 {
		t.Error("district grid must stay 2-D")
	}
	tiny := Scaled(0.0000001)
	if tiny.SafetyRatings < 1 {
		t.Error("scaling must keep at least one record")
	}
	doubled := small.Multiply(2)
	if doubled.SafetyRatings != 1000 || doubled.Facilities != small.Facilities*2 {
		t.Errorf("Multiply wrong: %+v", doubled)
	}
}

func TestTweetGeneration(t *testing.T) {
	g := NewGenerator(1, Scaled(0.001))
	tweet := g.TweetJSON(42)
	// Round-number size check: the paper's tweets are ~450 bytes.
	if len(tweet) < 350 || len(tweet) > 550 {
		t.Errorf("tweet size = %d bytes, want ~450", len(tweet))
	}
	v, err := adm.ParseJSON(tweet)
	if err != nil {
		t.Fatalf("tweet is not valid JSON: %v", err)
	}
	if v.Field("id").IntVal() != 42 {
		t.Error("id wrong")
	}
	for _, field := range []string{"text", "country", "created_at"} {
		if v.Field(field).IsMissing() {
			t.Errorf("tweet missing %s", field)
		}
	}
	if v.Field("user").Field("screen_name").IsMissing() {
		t.Error("tweet missing user.screen_name")
	}
	// Tweets validate against the declared datatype (created_at coerces).
	validated, err := TweetType().Validate(v)
	if err != nil {
		t.Fatal(err)
	}
	if validated.Field("created_at").Kind() != adm.KindDateTime {
		t.Error("created_at not coerced")
	}
	// Determinism: same seed, same stream.
	g2 := NewGenerator(1, Scaled(0.001))
	if string(g2.TweetJSON(42)) != string(tweet) {
		t.Error("generation must be deterministic per seed")
	}
	// Batch helper.
	batch := g2.Tweets(100, 5)
	if len(batch) != 5 {
		t.Errorf("Tweets returned %d", len(batch))
	}
}

func newLoadedCluster(t *testing.T) (*cluster.Cluster, *Generator) {
	t.Helper()
	tuning := cluster.DefaultTuning()
	tuning.DispatchOverheadPerNode = 0
	tuning.InvokeOverheadPerNode = 0
	c, err := cluster.New(2, tuning)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Setup(c, 7, Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func TestSetupLoadsEverything(t *testing.T) {
	c, g := newLoadedCluster(t)
	sizes := g.Sizes()
	checks := map[string]int{
		"SafetyRatings":        sizes.SafetyRatings,
		"ReligiousPopulations": sizes.ReligiousPopulations,
		"SuspectsNames":        sizes.SuspectsNames,
		"monumentList":         sizes.MonumentList,
		"ReligiousBuildings":   sizes.ReligiousBuildings,
		"Facilities":           sizes.Facilities,
		"SensitiveNames":       sizes.SensitiveNames,
		"AverageIncomes":       g.IncomeRows(),
		"DistrictAreas":        sizes.DistrictArea,
		"Residents":            sizes.Residents,
		"AttackEvents":         sizes.AttackEvents,
		"SensitiveWords":       sizes.SensitiveWords,
	}
	for name, want := range checks {
		ds, ok := c.Dataset(name)
		if !ok {
			t.Errorf("dataset %s missing", name)
			continue
		}
		if got := ds.Len(); got != want {
			t.Errorf("%s has %d records, want %d", name, got, want)
		}
	}
	// All UDFs resolvable and compilable.
	for _, name := range UDFNames {
		fn, ok := c.Function(name)
		if !ok {
			t.Errorf("function %s missing", name)
			continue
		}
		if _, err := query.CompileEnrich(fn.Name, fn.Params, fn.Body, c, query.PlanOptions{}); err != nil {
			t.Errorf("compile %s: %v", name, err)
		}
	}
	// The Q5 spatial index exists.
	ml, _ := c.Dataset("monumentList")
	if ml.RTreeIndexForField("monument_location") == nil {
		t.Error("monument location index missing")
	}
	// Reference-dataset map matches the catalog.
	for fn, refs := range ReferenceDatasets {
		for _, ref := range refs {
			if _, ok := c.Dataset(ref); !ok {
				t.Errorf("%s references unknown dataset %s", fn, ref)
			}
		}
	}
}

func TestEveryUDFEnrichesATweet(t *testing.T) {
	c, g := newLoadedCluster(t)
	for _, name := range UDFNames {
		fn, _ := c.Function(name)
		plan, err := query.CompileEnrich(fn.Name, fn.Params, fn.Body, c, query.PlanOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pe, err := plan.Prepare(c)
		if err != nil {
			t.Fatalf("%s prepare: %v", name, err)
		}
		tweet, err := adm.ParseJSON(g.TweetJSON(1))
		if err != nil {
			t.Fatal(err)
		}
		tweet, err = TweetType().Validate(tweet)
		if err != nil {
			t.Fatal(err)
		}
		out, err := pe.EvalRecord(tweet)
		if err != nil {
			t.Fatalf("%s eval: %v", name, err)
		}
		if out.Kind() != adm.KindObject {
			t.Fatalf("%s output kind = %v", name, out.Kind())
		}
		// The enriched record keeps the original fields.
		if out.Field("id").IntVal() != 1 {
			t.Errorf("%s lost the tweet id", name)
		}
		// And gains at least one new field.
		if out.ObjectVal().Len() <= tweet.ObjectVal().Len() {
			t.Errorf("%s added no fields", name)
		}
	}
}

func TestDistrictsTileTheWorld(t *testing.T) {
	const total = 24
	// Every point must fall in at least one district.
	for _, pt := range []spatial.Point{{X: 0, Y: 0}, {X: -179, Y: -89}, {X: 179, Y: 89}, {X: 42, Y: -13}} {
		found := false
		for i := 0; i < total; i++ {
			x1, y1, x2, y2 := DistrictRect(i, total)
			if (spatial.Rect{Min: spatial.Point{X: x1, Y: y1}, Max: spatial.Point{X: x2, Y: y2}}).Contains(pt) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("point %+v not covered by district grid", pt)
		}
	}
}

func TestUpdateRecords(t *testing.T) {
	g := NewGenerator(3, Scaled(0.001))
	for _, ds := range []string{"SafetyRatings", "ReligiousPopulations", "SuspectsNames", "monumentList", "ReligiousBuildings"} {
		rec, ok := g.UpdateRecord(ds)
		if !ok {
			t.Errorf("UpdateRecord(%s) unsupported", ds)
			continue
		}
		if rec.Kind() != adm.KindObject {
			t.Errorf("UpdateRecord(%s) kind = %v", ds, rec.Kind())
		}
	}
	if _, ok := g.UpdateRecord("NoSuchDataset"); ok {
		t.Error("unknown dataset should not produce updates")
	}
}

func TestStartUpdatesRate(t *testing.T) {
	c, g := newLoadedCluster(t)
	ds, _ := c.Dataset("SafetyRatings")
	before := ds.Stats().Upserts
	stop, err := StartUpdates(context.Background(), c, g, "SafetyRatings", 200)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	stop()
	delta := ds.Stats().Upserts - before
	// 200/s for 0.2s ≈ 40; accept a broad band (timers are coarse).
	if delta < 10 || delta > 80 {
		t.Errorf("update client applied %d upserts in 200ms at 200/s", delta)
	}
	// Stop is idempotent-ish: no more updates after stop.
	after := ds.Stats().Upserts
	time.Sleep(50 * time.Millisecond)
	if ds.Stats().Upserts != after {
		t.Error("updates continued after stop")
	}
	// Zero rate is a no-op.
	stop2, err := StartUpdates(context.Background(), c, g, "SafetyRatings", 0)
	if err != nil {
		t.Fatal(err)
	}
	stop2()
	// Unknown dataset errors.
	if _, err := StartUpdates(context.Background(), c, g, "Nope", 10); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestRemoveSpecial(t *testing.T) {
	out, err := RemoveSpecial([]adm.Value{adm.String("A-l_i!c3e")})
	if err != nil || out.StringVal() != "alic3e" {
		t.Errorf("RemoveSpecial = %v, %v", out, err)
	}
	if out, _ := RemoveSpecial([]adm.Value{adm.Int(5)}); !out.IsNull() {
		t.Error("non-string should yield null")
	}
}

func TestNativeUDFsMirrorSQLPP(t *testing.T) {
	c, g := newLoadedCluster(t)
	reg, err := NativeUDFs(c)
	if err != nil {
		t.Fatal(err)
	}
	native, ok := reg.Lookup("nativeQ1")
	if !ok || !native.Stateful {
		t.Fatal("nativeQ1 missing or stateless")
	}
	inst := native.New()
	if err := inst.Initialize(0); err != nil {
		t.Fatal(err)
	}
	tweet, _ := adm.ParseJSON(g.TweetJSON(5))
	tweet, _ = TweetType().Validate(tweet)
	nOut, err := inst.Evaluate(tweet)
	if err != nil {
		t.Fatal(err)
	}
	// Compare with the SQL++ plan.
	fn, _ := c.Function("enrichTweetQ1")
	plan, _ := query.CompileEnrich(fn.Name, fn.Params, fn.Body, c, query.PlanOptions{})
	pe, _ := plan.Prepare(c)
	sOut, err := pe.EvalRecord(tweet)
	if err != nil {
		t.Fatal(err)
	}
	if !adm.Equal(nOut, sOut) {
		t.Errorf("native and SQL++ outputs differ:\n%s\n%s", nOut, sOut)
	}
}
