// Package experiments regenerates every table and figure in the paper's
// evaluation (Section 7). Each runner builds the workload at the
// requested scale, drives the ingestion framework through the same
// parameter sweeps the paper reports, and returns a printable table
// whose rows mirror the paper's series. Absolute numbers differ from the
// paper's 2019-era cluster; the shapes are the reproduction target (see
// docs/ARCHITECTURE.md "Simulation fidelity").
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/ideadb/idea/internal/cluster"
)

// Options configures a run.
type Options struct {
	// Scale multiplies the paper's dataset/tweet counts (1.0 = paper
	// scale). The default 0.01 keeps every figure laptop-sized.
	Scale float64
	// Nodes overrides the figure's cluster-size sweep.
	Nodes []int
	// Tweets overrides the figure's (scaled) tweet count.
	Tweets int
	// Seed makes the workload deterministic.
	Seed int64
	// Tuning overrides the cluster tuning (zero value = defaults).
	Tuning *cluster.Tuning
	// Verbose streams per-cell progress to Out.
	Verbose bool
	// Out receives progress output (defaults to io.Discard).
	Out io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 2019
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

func (o Options) tuning() cluster.Tuning {
	if o.Tuning != nil {
		return *o.Tuning
	}
	return cluster.DefaultTuning()
}

func (o Options) logf(format string, args ...any) {
	if o.Verbose {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

// tweetCount applies scale (and override) to a figure's paper-scale
// tweet count.
func (o Options) tweetCount(paperCount int) int {
	if o.Tweets > 0 {
		return o.Tweets
	}
	n := int(float64(paperCount) * o.Scale)
	if n < 100 {
		n = 100
	}
	return n
}

func (o Options) nodes(def []int) []int {
	if len(o.Nodes) > 0 {
		return o.Nodes
	}
	return def
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Print renders the table in aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Runner produces one figure's table.
type Runner func(Options) (*Table, error)

// Registry maps experiment ids (fig24 ... fig31, ablations) to runners.
var Registry = map[string]Runner{
	"fig24":              Fig24BasicIngestion,
	"fig25":              Fig25EnrichmentUDFs,
	"fig26":              Fig26RefreshPeriods,
	"fig27":              Fig27UpdateRates,
	"fig28":              Fig28RefScaleOut,
	"fig29":              Fig29Complexity,
	"fig30":              Fig30SpeedUp,
	"fig31":              Fig31ComplexScaleOut,
	"ablation-static":    AblationStaticVsDynamic,
	"approaches":         ApproachesComparison,
	"ablation-predeploy": AblationPredeployed,
	"ablation-decoupled": AblationDecoupled,
	"ablation-queue":     AblationQueueCapacity,
	"ablation-failover":  AblationFailover,
}

// Names returns the registered experiment ids, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(name string, opts Options) (*Table, error) {
	r, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return r(opts)
}

func fmtThroughput(recsPerSec float64) string {
	return fmt.Sprintf("%.0f", recsPerSec)
}

func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtSpeedup(s float64) string {
	return fmt.Sprintf("%.2fx", s)
}
