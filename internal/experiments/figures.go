package experiments

import (
	"fmt"

	"github.com/ideadb/idea/internal/workload"
)

// fig24Nodes is the paper's cluster-size sweep.
var fig24Nodes = []int{1, 2, 3, 4, 5, 6, 12, 18, 24}

// Fig24BasicIngestion reproduces Figure 24: 10M-tweet ingestion (no UDF)
// across cluster sizes, comparing the old coupled pipeline ("Static"),
// its all-nodes-intake variant ("Balanced Static"), and the new
// framework at three batch sizes with one or all intake nodes.
func Fig24BasicIngestion(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(10_000_000)
	table := &Table{
		Title:   fmt.Sprintf("Figure 24: basic ingestion speed-up (%d tweets)", tweets),
		Columns: []string{"nodes", "mode", "throughput (rec/s)"},
	}
	type mode struct {
		label    string
		batch    int
		static   bool
		balanced bool
	}
	modes := []mode{
		{"Static Ingestion", 0, true, false},
		{"Balanced Static Ingestion", 0, true, true},
		{"Dynamic Ingestion 1X", batch1X, false, false},
		{"Dynamic Ingestion 4X", batch4X, false, false},
		{"Dynamic Ingestion 16X", batch16X, false, false},
		{"Balanced Dynamic Ingestion 1X", batch1X, false, true},
		{"Balanced Dynamic Ingestion 4X", batch4X, false, true},
		{"Balanced Dynamic Ingestion 16X", batch16X, false, true},
	}
	for _, nodes := range opts.nodes(fig24Nodes) {
		opts.logf("fig24: %d node(s)", nodes)
		b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
		if err != nil {
			return nil, err
		}
		for _, m := range modes {
			res, err := b.run(runSpec{
				name:   fmt.Sprintf("fig24-n%d-%s", nodes, m.label),
				tweets: tweets, batch: m.batch,
				static: m.static, balanced: m.balanced,
			})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(nodes), m.label, fmtThroughput(res.throughput)})
		}
	}
	return table, nil
}

// fig25UseCases are the first five use cases (Section 7.2).
var fig25UseCases = []string{
	"enrichTweetQ1", "enrichTweetQ2", "enrichTweetQ3", "enrichTweetQ4", "enrichTweetQ5",
}

// Fig25EnrichmentUDFs reproduces Figure 25: 1M-tweet enrichment on 6
// nodes across Q1–Q5, comparing static native enrichment against dynamic
// native and dynamic SQL++ at three batch sizes.
func Fig25EnrichmentUDFs(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(1_000_000)
	nodes := opts.nodes([]int{6})[0]
	b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Figure 25: %d tweets enrichment on %d nodes", tweets, nodes),
		Columns: []string{"use case", "mode", "throughput (rec/s)"},
	}
	for i, fn := range fig25UseCases {
		label := workload.UseCaseLabels[fn]
		opts.logf("fig25: %s", label)
		nativeFn := fmt.Sprintf("nativeQ%d", i+1)
		// Static enrichment with the native ("Java") UDF, state frozen.
		res, err := b.run(runSpec{
			name: "fig25-static-" + nativeFn, tweets: tweets,
			fn: nativeFn, static: true,
		})
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{label, "Static Enrichment w/ Java", fmtThroughput(res.throughput)})
		for _, bl := range batchLabels {
			res, err := b.run(runSpec{
				name:   fmt.Sprintf("fig25-dynjava-%s-%s", nativeFn, bl.label),
				tweets: tweets, fn: nativeFn, batch: bl.size,
			})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{label,
				"Dynamic Enrichment w/ Java " + bl.label, fmtThroughput(res.throughput)})
		}
		for _, bl := range batchLabels {
			res, err := b.run(runSpec{
				name:   fmt.Sprintf("fig25-dynsql-%s-%s", fn, bl.label),
				tweets: tweets, fn: fn, batch: bl.size,
			})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{label,
				"Dynamic Enrichment w/ SQL++ " + bl.label, fmtThroughput(res.throughput)})
		}
	}
	return table, nil
}

// Fig26RefreshPeriods reproduces Figure 26: the per-batch execution time
// (refresh period) of dynamic SQL++ enrichment under the three batch
// sizes.
func Fig26RefreshPeriods(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(1_000_000)
	nodes := opts.nodes([]int{6})[0]
	b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Figure 26: refresh periods, %d tweets on %d nodes", tweets, nodes),
		Columns: []string{"use case", "batch", "refresh period", "invocations"},
	}
	for _, fn := range fig25UseCases {
		label := workload.UseCaseLabels[fn]
		opts.logf("fig26: %s", label)
		for _, bl := range batchLabels {
			res, err := b.run(runSpec{
				name:   fmt.Sprintf("fig26-%s-%s", fn, bl.label),
				tweets: tweets, fn: fn, batch: bl.size,
			})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{label, bl.label,
				fmtDuration(res.refresh), fmt.Sprint(res.invocations)})
		}
	}
	return table, nil
}

// fig27Rates is the paper's update-rate sweep (records/second).
var fig27Rates = []int{0, 1, 10, 50, 100, 200, 400}

// Fig27UpdateRates reproduces Figure 27: enrichment throughput while a
// client upserts the reference data at increasing rates (100K tweets, 6
// nodes). Updates activate the LSM memtables and contend with the
// computing jobs' reads; the index-join use case degrades most at high
// rates because it probes storage throughout each job.
//
// The paper's update rates (1..400/s) are ~half its enrichment
// throughput (~800 rec/s on 2009 hardware). This in-process build is
// orders of magnitude faster, so to preserve the operative variable —
// the update-to-ingest ratio — the rates are scaled by 1/scale when
// running below paper scale; the table reports the effective rates.
func Fig27UpdateRates(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(1_000_000)
	nodes := opts.nodes([]int{6})[0]
	rateScale := 1.0
	if opts.Scale < 1 {
		rateScale = 1.0 / opts.Scale
		if rateScale > 200 {
			rateScale = 200
		}
	}
	b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Figure 27: reference-data updates, %d tweets on %d nodes", tweets, nodes),
		Columns: []string{"use case", "update rate (rec/s)", "throughput (rec/s)"},
		Notes: []string{fmt.Sprintf(
			"paper rates ×%.0f to preserve the update-to-ingest ratio at this scale", rateScale)},
	}
	for _, fn := range fig25UseCases {
		label := workload.UseCaseLabels[fn]
		opts.logf("fig27: %s", label)
		refDS := workload.ReferenceDatasets[fn][0]
		for _, rate := range fig27Rates {
			eff := int(float64(rate) * rateScale)
			spec := runSpec{
				name:   fmt.Sprintf("fig27-%s-r%d", fn, eff),
				tweets: tweets, fn: fn, batch: batch16X,
			}
			spec.updates.dataset = refDS
			spec.updates.rate = eff
			res, err := b.run(spec)
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{label, fmt.Sprint(eff),
				fmtThroughput(res.throughput)})
		}
	}
	return table, nil
}

// Fig28RefScaleOut reproduces Figure 28: reference data grown 2X/3X/4X
// together with the cluster (12/18/24 nodes); throughput should stay
// roughly level (slight decline from larger-cluster overhead).
func Fig28RefScaleOut(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(1_000_000)
	nodeSweep := opts.nodes([]int{6, 12, 18, 24})
	table := &Table{
		Title:   fmt.Sprintf("Figure 28: reference-data scale-out (%d tweets, batch 16X)", tweets),
		Columns: []string{"nodes", "ref scale", "use case", "throughput (rec/s)"},
	}
	for i, nodes := range nodeSweep {
		mult := i + 1
		opts.logf("fig28: %d nodes, %dX reference data", nodes, mult)
		b, err := newBench(opts, nodes, workload.Scaled(opts.Scale).Multiply(mult))
		if err != nil {
			return nil, err
		}
		for _, fn := range fig25UseCases {
			res, err := b.run(runSpec{
				name:   fmt.Sprintf("fig28-n%d-%s", nodes, fn),
				tweets: tweets, fn: fn, batch: batch16X,
			})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(nodes), fmt.Sprintf("%dX", mult),
				workload.UseCaseLabels[fn], fmtThroughput(res.throughput)})
		}
	}
	return table, nil
}

// fig29UseCases are the complex use cases (Section 7.4.2).
var fig29UseCases = []string{
	"enrichTweetQ5", "enrichTweetQ6", "enrichTweetQ7", "enrichTweetQ8",
}

// Fig29Complexity reproduces Figure 29: the complex enrichment UDFs
// (Nearby Monuments, Suspicious Names, Tweet Context, Worrisome Tweets)
// under the three batch sizes on 6 nodes.
func Fig29Complexity(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(100_000)
	nodes := opts.nodes([]int{6})[0]
	b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Figure 29: UDF complexity, %d tweets on %d nodes", tweets, nodes),
		Columns: []string{"use case", "batch", "throughput (rec/s)"},
	}
	for _, fn := range fig29UseCases {
		label := workload.UseCaseLabels[fn]
		opts.logf("fig29: %s", label)
		for _, bl := range batchLabels {
			res, err := b.run(runSpec{
				name:   fmt.Sprintf("fig29-%s-%s", fn, bl.label),
				tweets: tweets, fn: fn, batch: bl.size,
			})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{label, bl.label, fmtThroughput(res.throughput)})
		}
	}
	return table, nil
}

// Fig30SpeedUp reproduces Figure 30: per-UDF speed-up from 6 to 24 nodes
// for every batch size.
func Fig30SpeedUp(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(100_000)
	pair := opts.nodes([]int{6, 24})
	if len(pair) != 2 {
		return nil, fmt.Errorf("fig30 needs exactly two node counts, got %v", pair)
	}
	small, large := pair[0], pair[1]

	type cell struct{ smallTput, largeTput float64 }
	results := make(map[string]map[string]*cell) // udf → batch label

	for _, nodes := range []int{small, large} {
		opts.logf("fig30: measuring on %d nodes", nodes)
		b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
		if err != nil {
			return nil, err
		}
		for _, fn := range workload.UDFNames {
			if results[fn] == nil {
				results[fn] = make(map[string]*cell)
			}
			for _, bl := range batchLabels {
				res, err := b.run(runSpec{
					name:   fmt.Sprintf("fig30-n%d-%s-%s", nodes, fn, bl.label),
					tweets: tweets, fn: fn, batch: bl.size,
				})
				if err != nil {
					return nil, err
				}
				if results[fn][bl.label] == nil {
					results[fn][bl.label] = &cell{}
				}
				if nodes == small {
					results[fn][bl.label].smallTput = res.throughput
				} else {
					results[fn][bl.label].largeTput = res.throughput
				}
			}
		}
	}
	table := &Table{
		Title: fmt.Sprintf("Figure 30: %d vs %d node speed-up (%d tweets)",
			large, small, tweets),
		Columns: []string{"use case", "batch", "speed-up"},
		Notes:   []string{fmt.Sprintf("ideal speed-up = %.1fx", float64(large)/float64(small))},
	}
	for _, fn := range workload.UDFNames {
		for _, bl := range batchLabels {
			c := results[fn][bl.label]
			table.Rows = append(table.Rows, []string{
				workload.UseCaseLabels[fn], bl.label,
				fmtSpeedup(c.largeTput / c.smallTput)})
		}
	}
	return table, nil
}

// Fig31ComplexScaleOut reproduces Figure 31(a,b): throughput and
// speed-up of the four most complex UDFs (plus the no-index Naive Nearby
// Monuments) over growing clusters at batch 16X.
func Fig31ComplexScaleOut(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(100_000)
	nodeSweep := opts.nodes([]int{6, 12, 18, 24})
	type variant struct {
		label string
		fn    string
		naive bool
	}
	variants := []variant{
		{"Nearby Monuments", "enrichTweetQ5", false},
		{"Naive Nearby Monuments", "enrichTweetQ5", true},
		{"Suspicious Names", "enrichTweetQ6", false},
		{"Tweet Context", "enrichTweetQ7", false},
		{"Worrisome Tweets", "enrichTweetQ8", false},
	}
	tput := make(map[string]map[int]float64)
	for _, nodes := range nodeSweep {
		opts.logf("fig31: %d nodes", nodes)
		b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			res, err := b.run(runSpec{
				name:   fmt.Sprintf("fig31-n%d-%s", nodes, v.label),
				tweets: tweets, fn: v.fn, batch: batch16X, naive: v.naive,
			})
			if err != nil {
				return nil, err
			}
			if tput[v.label] == nil {
				tput[v.label] = make(map[int]float64)
			}
			tput[v.label][nodes] = res.throughput
		}
	}
	table := &Table{
		Title:   fmt.Sprintf("Figure 31: complex-UDF scale-out (%d tweets, batch 16X)", tweets),
		Columns: []string{"use case", "nodes", "throughput (rec/s)", "speed-up vs smallest"},
	}
	base := nodeSweep[0]
	for _, v := range variants {
		for _, nodes := range nodeSweep {
			table.Rows = append(table.Rows, []string{
				v.label, fmt.Sprint(nodes),
				fmtThroughput(tput[v.label][nodes]),
				fmtSpeedup(tput[v.label][nodes] / tput[v.label][base])})
		}
	}
	return table, nil
}
