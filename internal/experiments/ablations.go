package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/core"
	"github.com/ideadb/idea/internal/query"
	"github.com/ideadb/idea/internal/workload"
)

// ApproachesComparison reproduces Section 4.2's narrative comparison of
// the three ways to get enriched data into a dataset:
//
//  1. an external program issuing one INSERT statement per record (each
//     paying full statement dispatch),
//  2. a plain feed into a staging dataset plus an external program
//     repeatedly issuing INSERT ... SELECT batches that apply the UDF,
//  3. the paper's answer — the UDF attached directly to the feed.
//
// The paper argues 1 cannot scale, 2 double-materializes, and 3 wins;
// this experiment measures all three on the same workload (Q1).
func ApproachesComparison(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(100_000)
	nodes := opts.nodes([]int{6})[0]
	b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Section 4.2: ingestion approaches (%d tweets, Q1, %d nodes)", tweets, nodes),
		Columns: []string{"approach", "throughput (rec/s)", "bytes written"},
		Notes: []string{
			"approach 2 materializes every record twice (staging + enriched), the paper's Section 4.2.2 objection",
		},
	}

	// Approach 1: external program, one INSERT statement per record.
	if err := b.resetTarget("EnrichedTweets"); err != nil {
		return nil, err
	}
	fn, _ := b.cluster.Function("enrichTweetQ1")
	perRecordTweets := tweets / 10 // it is slow by construction; sample it
	if perRecordTweets < 50 {
		perRecordTweets = 50
	}
	raw := b.gen.Tweets(0, perRecordTweets)
	target, _ := b.cluster.Dataset("EnrichedTweets")
	dispatch := b.cluster.Tuning().DispatchOverheadPerNode * time.Duration(nodes)
	start := time.Now()
	for _, line := range raw {
		rec, err := adm.ParseJSON(line)
		if err != nil {
			return nil, err
		}
		rec, err = workload.TweetType().Validate(rec)
		if err != nil {
			return nil, err
		}
		// Every statement is compiled and dispatched like any other
		// query, which is exactly why this approach cannot keep up.
		time.Sleep(dispatch)
		out, err := query.Call(b.cluster, fn, []adm.Value{rec})
		if err != nil {
			return nil, err
		}
		enriched := out.Index(0)
		if err := target.Upsert(enriched); err != nil {
			return nil, err
		}
	}
	tput1 := float64(perRecordTweets) / time.Since(start).Seconds()
	table.Rows = append(table.Rows, []string{
		"1: external program, INSERT per record",
		fmtThroughput(tput1),
		fmt.Sprintf("%d records × 1", perRecordTweets)})
	b.opts.logf("    approach-1 %10.0f rec/s (on a %d-record sample)", tput1, perRecordTweets)

	// Approach 2: plain feed into a staging dataset, then batched
	// INSERT ... SELECT with the UDF (data written twice).
	if err := b.resetTarget("EnrichedTweets"); err != nil {
		return nil, err
	}
	res2, err := b.run(runSpec{name: "approach2-stage", tweets: tweets, batch: batch16X})
	if err != nil {
		return nil, err
	}
	staged, _ := b.cluster.Dataset("Tweets")
	target, _ = b.cluster.Dataset("EnrichedTweets")
	plan, err := query.CompileEnrich(fn.Name, fn.Params, fn.Body, b.cluster, query.PlanOptions{})
	if err != nil {
		return nil, err
	}
	stageStart := time.Now()
	var batchRecs []adm.Value
	flush := func() error {
		if len(batchRecs) == 0 {
			return nil
		}
		time.Sleep(dispatch) // each INSERT..SELECT is one dispatched statement
		pe, err := plan.Prepare(b.cluster)
		if err != nil {
			return err
		}
		for _, rec := range batchRecs {
			enriched, err := pe.EvalRecord(rec)
			if err != nil {
				return err
			}
			if err := target.Upsert(enriched); err != nil {
				return err
			}
		}
		batchRecs = batchRecs[:0]
		return nil
	}
	// The pull cursor makes the batch loop plain sequential code — no
	// error smuggling out of a callback.
	sc := staged.Scan()
	for {
		_, rec, ok := sc.Next()
		if !ok {
			break
		}
		batchRecs = append(batchRecs, rec)
		if len(batchRecs) >= batch16X {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	// End-to-end: feed time plus enrichment-copy time.
	total2 := float64(tweets)/res2.throughput + time.Since(stageStart).Seconds()
	tput2 := float64(tweets) / total2
	table.Rows = append(table.Rows, []string{
		"2: feed to staging + batched INSERT..SELECT",
		fmtThroughput(tput2),
		fmt.Sprintf("%d records × 2", tweets)})
	b.opts.logf("    approach-2 %10.0f rec/s", tput2)

	// Approach 3: the framework — UDF attached to the feed.
	res3, err := b.run(runSpec{name: "approach3-feed-udf", tweets: tweets,
		fn: "enrichTweetQ1", batch: batch16X})
	if err != nil {
		return nil, err
	}
	table.Rows = append(table.Rows, []string{
		"3: feed with attached UDF (this framework)",
		fmtThroughput(res3.throughput),
		fmt.Sprintf("%d records × 1", tweets)})
	return table, nil
}

// AblationStaticVsDynamic isolates the cost of per-batch state refresh
// (docs/ARCHITECTURE.md ablation 1): the same enrichment evaluated with frozen
// state (static native), refreshed native state, and refreshed SQL++
// state.
func AblationStaticVsDynamic(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(1_000_000)
	nodes := opts.nodes([]int{6})[0]
	b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Ablation: static vs dynamic state (%d tweets, Q1, %d nodes)", tweets, nodes),
		Columns: []string{"mode", "throughput (rec/s)"},
		Notes: []string{
			"static state never observes reference updates; the gap to dynamic is the price of correctness",
		},
	}
	runs := []struct {
		label string
		spec  runSpec
	}{
		{"static native (frozen state)", runSpec{fn: "nativeQ1", static: true}},
		{"dynamic native 16X", runSpec{fn: "nativeQ1", batch: batch16X}},
		{"dynamic SQL++ 1X", runSpec{fn: "enrichTweetQ1", batch: batch1X}},
		{"dynamic SQL++ 16X", runSpec{fn: "enrichTweetQ1", batch: batch16X}},
	}
	for _, r := range runs {
		r.spec.name = "ablation-static-" + r.label
		r.spec.tweets = tweets
		res, err := b.run(r.spec)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{r.label, fmtThroughput(res.throughput)})
	}
	return table, nil
}

// AblationPredeployed isolates the predeployed-job optimization
// (docs/ARCHITECTURE.md ablation 2): invocations either reuse the compiled plan and
// pay only the invocation message, or recompile the UDF and pay full
// dispatch overhead every batch.
func AblationPredeployed(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(1_000_000)
	nodes := opts.nodes([]int{6})[0]
	b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Ablation: predeployed jobs (%d tweets, Q1, %d nodes)", tweets, nodes),
		Columns: []string{"batch", "mode", "throughput (rec/s)", "refresh period"},
	}
	for _, bl := range batchLabels {
		for _, recomp := range []bool{false, true} {
			label := "predeployed"
			if recomp {
				label = "recompile per batch"
			}
			res, err := b.run(runSpec{
				name:   fmt.Sprintf("ablation-predeploy-%s-%v", bl.label, recomp),
				tweets: tweets, fn: "enrichTweetQ1", batch: bl.size, recomp: recomp,
			})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{bl.label, label,
				fmtThroughput(res.throughput), fmtDuration(res.refresh)})
		}
	}
	return table, nil
}

// AblationDecoupled isolates the layered-pipeline design (docs/ARCHITECTURE.md
// ablation 3): the decoupled intake/computing/storage pipeline versus
// the Section 5.1 fused insert job whose storage write gates each batch.
func AblationDecoupled(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(1_000_000)
	nodes := opts.nodes([]int{6})[0]
	b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Ablation: decoupled vs fused insert job (%d tweets, Q1, %d nodes)", tweets, nodes),
		Columns: []string{"batch", "pipeline", "throughput (rec/s)"},
	}
	for _, bl := range batchLabels {
		for _, fused := range []bool{false, true} {
			label := "decoupled (intake/compute/storage)"
			if fused {
				label = "fused insert job"
			}
			res, err := b.run(runSpec{
				name:   fmt.Sprintf("ablation-decoupled-%s-%v", bl.label, fused),
				tweets: tweets, fn: "enrichTweetQ1", batch: bl.size, fused: fused,
			})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{bl.label, label, fmtThroughput(res.throughput)})
		}
	}
	return table, nil
}

// pacedGenerator is a resumable adapter that emits one record per
// delay tick — slow enough that the failover scenario can kill a node
// deterministically mid-stream.
type pacedGenerator struct {
	records [][]byte
	delay   time.Duration
}

func (a *pacedGenerator) Run(ctx context.Context, emit func([]byte) error) error {
	return a.RunFrom(ctx, 0, func(_ uint64, raw []byte) error { return emit(raw) })
}

func (a *pacedGenerator) RunFrom(ctx context.Context, from uint64, emit func(uint64, []byte) error) error {
	for i := int(from); i < len(a.records); i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := emit(uint64(i)+1, a.records[i]); err != nil {
			return err
		}
		time.Sleep(a.delay)
	}
	return nil
}

// AblationFailover measures the kill-a-node-mid-ingest scenario: a
// baseline uninterrupted run against a run where one node dies at 25%
// progress, the manager fails the pipeline over to the survivors, and
// the adapter replays from the last checkpoint. The interesting columns
// are completeness (both runs must store every record) and the
// redelivery cost (records re-sent between checkpoint and failure,
// absorbed by idempotent upserts).
func AblationFailover(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(100_000)
	nodes := opts.nodes([]int{4})[0]
	b, err := newBench(opts, nodes, workload.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Failover: kill a node mid-ingest (%d tweets, %d nodes)", tweets, nodes),
		Columns: []string{"run", "stored", "redelivered", "resumptions", "elapsed"},
		Notes: []string{
			"redelivered = records replayed past the last checkpoint after failover (at-least-once)",
		},
	}

	all := b.gen.Tweets(0, tweets)
	runOnce := func(name string, kill bool) error {
		if err := b.resetTarget("Tweets"); err != nil {
			return err
		}
		m := core.NewManager(b.cluster)
		cfgVal := adm.ObjectValue(adm.ObjectFromPairs(
			"adapter-name", adm.String("channel_adapter"),
			"batch-size", adm.Int(batch1X),
		))
		if err := m.CreateFeed(name, cfgVal); err != nil {
			return err
		}
		if err := m.SetAdapterFactory(name, func(int) (core.Adapter, error) {
			return &pacedGenerator{records: all, delay: 200 * time.Microsecond}, nil
		}); err != nil {
			return err
		}
		if err := m.ConnectFeed(name, "Tweets", ""); err != nil {
			return err
		}
		start := time.Now()
		f, err := m.StartFeed(context.Background(), name)
		if err != nil {
			return err
		}
		ds, _ := b.cluster.Dataset("Tweets")
		if kill {
			deadline := time.Now().Add(2 * time.Minute)
			for ds.Len() < tweets/4 && time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
			}
			b.cluster.KillNode(nodes - 1)
		}
		if err := f.Wait(); err != nil && !errors.Is(err, cluster.ErrPartitionDown) {
			return err
		}
		deadline := time.Now().Add(2 * time.Minute)
		for ds.Len() < tweets && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		elapsed := time.Since(start)
		if ds.Len() != tweets {
			return fmt.Errorf("failover run %s: dataset holds %d of %d", name, ds.Len(), tweets)
		}
		st := f.Stats()
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprint(st.Stored.Load()),
			fmt.Sprint(st.Stored.Load() - int64(tweets)),
			fmt.Sprint(st.Resumptions.Load()),
			fmtDuration(elapsed),
		})
		b.opts.logf("    %-24s stored=%d resumptions=%d %v", name, st.Stored.Load(), st.Resumptions.Load(), elapsed)
		return nil
	}
	if err := runOnce("failover-baseline", false); err != nil {
		return nil, err
	}
	if err := runOnce("failover-kill", true); err != nil {
		return nil, err
	}
	return table, nil
}

// AblationQueueCapacity sweeps the partition-holder queue bound
// (docs/ARCHITECTURE.md ablation 4): tighter queues mean more backpressure stalls,
// looser queues more buffering.
func AblationQueueCapacity(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	tweets := opts.tweetCount(10_000_000)
	nodes := opts.nodes([]int{6})[0]
	table := &Table{
		Title:   fmt.Sprintf("Ablation: partition-holder capacity (%d tweets, no UDF, %d nodes)", tweets, nodes),
		Columns: []string{"holder capacity (frames)", "throughput (rec/s)"},
	}
	for _, capacity := range []int{2, 8, 64, 256} {
		tuning := opts.tuning()
		tuning.HolderCapacity = capacity
		cellOpts := opts
		cellOpts.Tuning = &tuning
		b, err := newBench(cellOpts, nodes, workload.Scaled(opts.Scale))
		if err != nil {
			return nil, err
		}
		res, err := b.run(runSpec{
			name:   fmt.Sprintf("ablation-queue-%d", capacity),
			tweets: tweets, batch: batch16X,
		})
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{fmt.Sprint(capacity), fmtThroughput(res.throughput)})
	}
	return table, nil
}
