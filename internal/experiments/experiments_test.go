package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/ideadb/idea/internal/cluster"
)

// tinyOptions keeps the full figure sweeps fast enough for unit tests.
func tinyOptions() Options {
	tuning := cluster.DefaultTuning()
	tuning.DispatchOverheadPerNode = 0
	tuning.InvokeOverheadPerNode = 0
	return Options{
		Scale:  0.0005,
		Tweets: 400,
		Seed:   7,
		Tuning: &tuning,
	}
}

func cellValue(t *testing.T, table *Table, want map[string]string, valueCol string) float64 {
	t.Helper()
	colIdx := map[string]int{}
	for i, c := range table.Columns {
		colIdx[c] = i
	}
	vi, ok := colIdx[valueCol]
	if !ok {
		t.Fatalf("table %q has no column %q", table.Title, valueCol)
	}
row:
	for _, row := range table.Rows {
		for col, val := range want {
			ci, ok := colIdx[col]
			if !ok {
				t.Fatalf("table %q has no column %q", table.Title, col)
			}
			if row[ci] != val {
				continue row
			}
		}
		f, err := strconv.ParseFloat(strings.TrimSuffix(row[vi], "x"), 64)
		if err != nil {
			// Durations like "0.123s".
			f, err = strconv.ParseFloat(strings.TrimSuffix(row[vi], "s"), 64)
			if err != nil {
				t.Fatalf("cell %v = %q not numeric", want, row[vi])
			}
		}
		return f
	}
	t.Fatalf("table %q has no row matching %v", table.Title, want)
	return 0
}

func TestRegistryNamesAndUnknown(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatalf("Names() returned %d of %d", len(names), len(Registry))
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestFig24Tiny(t *testing.T) {
	opts := tinyOptions()
	opts.Nodes = []int{1, 2}
	table, err := Fig24BasicIngestion(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2*8 {
		t.Fatalf("rows = %d, want 16", len(table.Rows))
	}
	// Every throughput must be positive.
	for _, row := range table.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		if v <= 0 {
			t.Errorf("non-positive throughput in row %v", row)
		}
	}
}

func TestFig25And26Tiny(t *testing.T) {
	opts := tinyOptions()
	opts.Nodes = []int{2}
	table, err := Fig25EnrichmentUDFs(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5*7 {
		t.Fatalf("fig25 rows = %d, want 35", len(table.Rows))
	}
	opts26 := opts
	opts26.Tweets = 3000 // several 1X invocations so periods are measurable
	t26, err := Fig26RefreshPeriods(opts26)
	if err != nil {
		t.Fatal(err)
	}
	if len(t26.Rows) != 5*3 {
		t.Fatalf("fig26 rows = %d, want 15", len(t26.Rows))
	}
	// Refresh period grows with batch size for the hash-join use case
	// (more records per batch). Generous tolerance: at test scale each
	// cell is a handful of invocations and scheduler noise is real.
	r1 := cellValue(t, t26, map[string]string{"use case": "Safety Rating", "batch": "1X"}, "refresh period")
	r16 := cellValue(t, t26, map[string]string{"use case": "Safety Rating", "batch": "16X"}, "refresh period")
	if r16 < r1*0.5 {
		t.Errorf("refresh period should grow with batch size: 1X=%v 16X=%v", r1, r16)
	}
}

func TestFig27Tiny(t *testing.T) {
	opts := tinyOptions()
	opts.Nodes = []int{2}
	opts.Tweets = 300
	table, err := Fig27UpdateRates(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5*len(fig27Rates) {
		t.Fatalf("fig27 rows = %d", len(table.Rows))
	}
}

func TestFig28Tiny(t *testing.T) {
	opts := tinyOptions()
	opts.Nodes = []int{2, 3}
	table, err := Fig28RefScaleOut(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2*5 {
		t.Fatalf("fig28 rows = %d, want 10", len(table.Rows))
	}
}

func TestFig29Tiny(t *testing.T) {
	opts := tinyOptions()
	opts.Nodes = []int{2}
	opts.Tweets = 200
	table, err := Fig29Complexity(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4*3 {
		t.Fatalf("fig29 rows = %d, want 12", len(table.Rows))
	}
}

func TestFig30Tiny(t *testing.T) {
	opts := tinyOptions()
	opts.Nodes = []int{1, 2}
	opts.Tweets = 200
	table, err := Fig30SpeedUp(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 8*3 {
		t.Fatalf("fig30 rows = %d, want 24", len(table.Rows))
	}
}

func TestFig31Tiny(t *testing.T) {
	opts := tinyOptions()
	opts.Nodes = []int{1, 2}
	opts.Tweets = 200
	table, err := Fig31ComplexScaleOut(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5*2 {
		t.Fatalf("fig31 rows = %d, want 10", len(table.Rows))
	}
	// The smallest cluster's speed-up is exactly 1.00x by construction.
	v := cellValue(t, table, map[string]string{"use case": "Tweet Context", "nodes": "1"}, "speed-up vs smallest")
	if v != 1.0 {
		t.Errorf("base speed-up = %v", v)
	}
}

func TestAblationsTiny(t *testing.T) {
	opts := tinyOptions()
	opts.Nodes = []int{2}
	opts.Tweets = 300
	for _, name := range []string{"ablation-static", "ablation-predeploy", "ablation-decoupled", "ablation-queue", "approaches"} {
		table, err := Run(name, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(table.Rows) == 0 {
			t.Errorf("%s produced no rows", name)
		}
	}
}

func TestAblationFailoverTiny(t *testing.T) {
	opts := tinyOptions()
	opts.Nodes = []int{3}
	opts.Tweets = 600
	table, err := Run("ablation-failover", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(table.Rows))
	}
	// The kill run must have failed over at least once and still stored
	// the complete stream (completeness is checked inside the runner).
	kill := table.Rows[1]
	if kill[3] == "0" {
		t.Errorf("kill run reports 0 resumptions: node death missed the ingest window")
	}
}

func TestTablePrint(t *testing.T) {
	table := &Table{
		Title:   "T",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "two"}},
		Notes:   []string{"n"},
	}
	var sb strings.Builder
	table.Print(&sb)
	out := sb.String()
	for _, want := range []string{"== T ==", "a", "two", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}
