package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/ideadb/idea/internal/cluster"
	"github.com/ideadb/idea/internal/core"
	"github.com/ideadb/idea/internal/udf"
	"github.com/ideadb/idea/internal/workload"
)

// The paper's batch sizes: 1X = 420, 4X = 1680, 16X = 6720.
const (
	batch1X  = 420
	batch4X  = 1680
	batch16X = 6720
)

var batchLabels = []struct {
	label string
	size  int
}{
	{"1X", batch1X},
	{"4X", batch4X},
	{"16X", batch16X},
}

// bench is a loaded cluster plus its workload generator, reusable across
// the runs of one figure.
type bench struct {
	cluster *cluster.Cluster
	gen     *workload.Generator
	natives *udf.Registry
	opts    Options
}

// newBench builds a cluster with the full workload at the options'
// scale. withRefData=false skips reference loading (Fig 24 needs none).
func newBench(opts Options, nodes int, sizes workload.Sizes) (*bench, error) {
	c, err := cluster.New(nodes, opts.tuning())
	if err != nil {
		return nil, err
	}
	g, err := workload.Setup(c, opts.Seed, sizes)
	if err != nil {
		return nil, err
	}
	natives, err := workload.NativeUDFs(c)
	if err != nil {
		return nil, err
	}
	return &bench{cluster: c, gen: g, natives: natives, opts: opts}, nil
}

// resetTarget drops and recreates the target dataset between runs.
func (b *bench) resetTarget(name string) error {
	if err := b.cluster.DropDataset(name); err != nil {
		return err
	}
	_, err := b.cluster.CreateDataset(name, "TweetType", "id")
	return err
}

// runSpec describes one measured pipeline run.
type runSpec struct {
	name     string
	tweets   int
	fn       string // "" = plain ingestion
	batch    int
	balanced bool // adapters on every node
	static   bool // old-framework pipeline
	naive    bool // disable indexes
	fused    bool // fused insert-job ablation
	recomp   bool // recompile-per-batch ablation
	updates  struct {
		dataset string
		rate    int
	}
}

// result is one measured cell.
type result struct {
	throughput  float64 // records/second end-to-end
	refresh     time.Duration
	invocations int64
	stored      int64
}

// run executes one pipeline to completion against the bench cluster.
func (b *bench) run(spec runSpec) (result, error) {
	if err := b.resetTarget("EnrichedTweets"); err != nil {
		return result{}, err
	}
	if err := b.resetTarget("Tweets"); err != nil {
		return result{}, err
	}
	target := "Tweets"
	if spec.fn != "" {
		target = "EnrichedTweets"
	}

	intakeNodes := []int{0}
	if spec.balanced {
		intakeNodes = make([]int, b.cluster.NumNodes())
		for i := range intakeNodes {
			intakeNodes[i] = i
		}
	}
	all := b.gen.Tweets(0, spec.tweets)
	newAdapter := func(i int) (core.Adapter, error) {
		if !spec.balanced {
			return &core.GeneratorAdapter{Records: all}, nil
		}
		var shard [][]byte
		for j := i; j < len(all); j += len(intakeNodes) {
			shard = append(shard, all[j])
		}
		return &core.GeneratorAdapter{Records: shard}, nil
	}

	cfg := core.Config{
		Name:              spec.name,
		Dataset:           target,
		Function:          spec.fn,
		BatchSize:         spec.batch,
		IntakeNodes:       intakeNodes,
		NewAdapter:        newAdapter,
		DisableIndexes:    spec.naive,
		Natives:           b.natives,
		FusedInsert:       spec.fused,
		RecompilePerBatch: spec.recomp,
	}

	ctx := context.Background()
	var stopUpdates func()
	if spec.updates.rate > 0 {
		var err error
		stopUpdates, err = workload.StartUpdates(ctx, b.cluster, b.gen,
			spec.updates.dataset, spec.updates.rate)
		if err != nil {
			return result{}, err
		}
		defer stopUpdates()
	}

	start := time.Now()
	var stats *core.Stats
	if spec.static {
		sf, err := core.StartStatic(ctx, b.cluster, cfg)
		if err != nil {
			return result{}, err
		}
		if err := sf.Wait(); err != nil {
			return result{}, fmt.Errorf("static run %s: %w", spec.name, err)
		}
		stats = sf.Stats()
	} else {
		f, err := core.Start(ctx, b.cluster, cfg)
		if err != nil {
			return result{}, err
		}
		if err := f.Wait(); err != nil {
			return result{}, fmt.Errorf("dynamic run %s: %w", spec.name, err)
		}
		stats = f.Stats()
	}
	elapsed := time.Since(start)

	stored := stats.Stored.Load()
	if stored != int64(spec.tweets) {
		return result{}, fmt.Errorf("run %s: stored %d of %d tweets", spec.name, stored, spec.tweets)
	}
	res := result{
		throughput:  float64(stored) / elapsed.Seconds(),
		refresh:     stats.RefreshPeriod(),
		invocations: stats.Invocations.Load(),
		stored:      stored,
	}
	b.opts.logf("    %-34s %10.0f rec/s  refresh=%v", spec.name, res.throughput, res.refresh)
	return res, nil
}
