package lsm

import (
	"slices"
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
	"github.com/ideadb/idea/internal/spatial"
)

// SecondaryIndex is a per-partition index maintained synchronously on
// the write path (AsterixDB's local secondary indexes). The probe
// surface is type-specific; callers type-assert to *RTreeIndex or
// *BTreeIndex.
type SecondaryIndex interface {
	// Name is the index name from CREATE INDEX.
	Name() string
	// Insert adds the (pk, record) entry.
	Insert(pk, rec adm.Value)
	// Delete removes the entry previously inserted for (pk, old record).
	Delete(pk, rec adm.Value)
	// InsertBatch adds every (pks[i], recs[i]) entry under a single
	// lock acquisition — the frame-granular write path's grouped
	// maintenance.
	InsertBatch(pks, recs []adm.Value)
	// DeleteBatch removes every (pks[i], recs[i]) entry under a single
	// lock acquisition.
	DeleteBatch(pks, recs []adm.Value)
}

// RectExtractor derives the indexed bounding rectangle from a record
// (e.g. the rect of a point field). ok=false skips the record.
type RectExtractor func(rec adm.Value) (spatial.Rect, bool)

// FieldRectExtractor indexes a top-level spatial field: points index as
// degenerate rects, rectangles as themselves, circles as their bounds.
func FieldRectExtractor(field string) RectExtractor {
	return func(rec adm.Value) (spatial.Rect, bool) {
		v := rec.Field(field)
		switch v.Kind() {
		case adm.KindPoint:
			x, y := v.PointVal()
			return spatial.BoundsPoint(spatial.Point{X: x, Y: y}), true
		case adm.KindRectangle:
			x1, y1, x2, y2 := v.RectVal()
			return spatial.NewRect(x1, y1, x2, y2), true
		case adm.KindCircle:
			cx, cy, r := v.CircleVal()
			return spatial.Circle{Center: spatial.Point{X: cx, Y: cy}, R: r}.Bounds(), true
		}
		return spatial.Rect{}, false
	}
}

// RTreeIndex is a spatial secondary index: rect(record) → primary key.
// Probes run concurrently with maintenance; an RWMutex arbitrates, which
// is precisely the contention the paper's update experiment measures on
// its index-join use case.
type RTreeIndex struct {
	name    string
	extract RectExtractor

	mu   sync.RWMutex
	tree *index.RTree
}

// NewRTreeIndex returns an empty spatial index over extract.
func NewRTreeIndex(name string, extract RectExtractor) *RTreeIndex {
	return &RTreeIndex{name: name, extract: extract, tree: index.NewRTree()}
}

// Name implements SecondaryIndex.
func (ix *RTreeIndex) Name() string { return ix.name }

// Insert implements SecondaryIndex.
func (ix *RTreeIndex) Insert(pk, rec adm.Value) {
	rect, ok := ix.extract(rec)
	if !ok {
		return
	}
	ix.mu.Lock()
	ix.tree.Insert(rect, pk)
	ix.mu.Unlock()
}

// Delete implements SecondaryIndex.
func (ix *RTreeIndex) Delete(pk, rec adm.Value) {
	rect, ok := ix.extract(rec)
	if !ok {
		return
	}
	ix.mu.Lock()
	ix.deleteLocked(rect, pk)
	ix.mu.Unlock()
}

func (ix *RTreeIndex) deleteLocked(rect spatial.Rect, pk adm.Value) {
	ix.tree.Delete(rect, func(d any) bool {
		v, isVal := d.(adm.Value)
		return isVal && adm.Equal(v, pk)
	})
}

// InsertBatch implements SecondaryIndex: one lock for the whole frame.
func (ix *RTreeIndex) InsertBatch(pks, recs []adm.Value) {
	if len(pks) == 0 {
		return
	}
	ix.mu.Lock()
	for i, pk := range pks {
		if rect, ok := ix.extract(recs[i]); ok {
			ix.tree.Insert(rect, pk)
		}
	}
	ix.mu.Unlock()
}

// DeleteBatch implements SecondaryIndex: one lock for the whole frame.
func (ix *RTreeIndex) DeleteBatch(pks, recs []adm.Value) {
	if len(pks) == 0 {
		return
	}
	ix.mu.Lock()
	for i, pk := range pks {
		if rect, ok := ix.extract(recs[i]); ok {
			ix.deleteLocked(rect, pk)
		}
	}
	ix.mu.Unlock()
}

// Search returns the primary keys of records whose indexed rect
// intersects query.
func (ix *RTreeIndex) Search(query spatial.Rect) []adm.Value {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var pks []adm.Value
	ix.tree.Search(query, func(e index.RTreeEntry) bool {
		pks = append(pks, e.Data.(adm.Value))
		return true
	})
	return pks
}

// Len returns the number of indexed entries.
func (ix *RTreeIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}

// KeyExtractor derives the indexed key from a record. ok=false skips the
// record (e.g. the field is missing).
type KeyExtractor func(rec adm.Value) (adm.Value, bool)

// FieldKeyExtractor indexes a top-level field by value.
func FieldKeyExtractor(field string) KeyExtractor {
	return func(rec adm.Value) (adm.Value, bool) {
		v := rec.Field(field)
		if v.IsUnknown() {
			return adm.Value{}, false
		}
		return v, true
	}
}

// BTreeIndex is an ordered secondary index: key(record) → set of primary
// keys (duplicates allowed across records).
type BTreeIndex struct {
	name    string
	extract KeyExtractor

	mu   sync.RWMutex
	tree *index.BTree // key → adm array of pks
}

// NewBTreeIndex returns an empty ordered index over extract.
func NewBTreeIndex(name string, extract KeyExtractor) *BTreeIndex {
	return &BTreeIndex{name: name, extract: extract, tree: index.NewBTree()}
}

// Name implements SecondaryIndex.
func (ix *BTreeIndex) Name() string { return ix.name }

// Insert implements SecondaryIndex.
func (ix *BTreeIndex) Insert(pk, rec adm.Value) {
	key, ok := ix.extract(rec)
	if !ok {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.insertLocked(key, pk)
}

func (ix *BTreeIndex) insertLocked(key, pk adm.Value) {
	cur, _ := ix.tree.Get(key)
	pks := append(append([]adm.Value(nil), cur.ArrayVal()...), pk)
	ix.tree.Put(key, adm.Array(pks))
}

// Delete implements SecondaryIndex.
func (ix *BTreeIndex) Delete(pk, rec adm.Value) {
	key, ok := ix.extract(rec)
	if !ok {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.deleteLocked(key, pk)
}

func (ix *BTreeIndex) deleteLocked(key, pk adm.Value) {
	cur, found := ix.tree.Get(key)
	if !found {
		return
	}
	elems := cur.ArrayVal()
	out := make([]adm.Value, 0, len(elems))
	removed := false
	for _, e := range elems {
		if !removed && adm.Equal(e, pk) {
			removed = true
			continue
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		ix.tree.Delete(key)
	} else {
		ix.tree.Put(key, adm.Array(out))
	}
}

// groupPairs extracts the secondary key of every record and returns the
// (key, pk) pairs sorted by key (stable, so pk order within a key
// matches record order). The batch box comes from the shared item-batch
// pool; the caller returns it with putItemBatch after restoring the
// written length.
func (ix *BTreeIndex) groupPairs(pks, recs []adm.Value) (*[]index.Item, []index.Item) {
	batch := getItemBatch(len(pks))
	pairs := *batch
	for i := range pks {
		if key, ok := ix.extract(recs[i]); ok {
			pairs = append(pairs, index.Item{Key: key, Val: pks[i]})
		}
	}
	slices.SortStableFunc(pairs, func(a, b index.Item) int {
		return adm.Compare(a.Key, b.Key)
	})
	return batch, pairs
}

// InsertBatch implements SecondaryIndex: one lock for the whole frame,
// and — because entries are grouped by secondary key — one postings
// rebuild per distinct key instead of one per record. For
// low-cardinality keys (every tweet sharing a language) the per-record
// path re-copied the whole postings array once per record; the grouped
// path copies it once per frame.
func (ix *BTreeIndex) InsertBatch(pks, recs []adm.Value) {
	if len(pks) == 0 {
		return
	}
	batch, pairs := ix.groupPairs(pks, recs)
	ix.mu.Lock()
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && adm.Compare(pairs[i].Key, pairs[j].Key) == 0 {
			j++
		}
		cur, _ := ix.tree.Get(pairs[i].Key)
		elems := cur.ArrayVal()
		out := make([]adm.Value, 0, len(elems)+(j-i))
		out = append(out, elems...)
		for k := i; k < j; k++ {
			out = append(out, pairs[k].Val)
		}
		ix.tree.Put(pairs[i].Key, adm.Array(out))
		i = j
	}
	ix.mu.Unlock()
	*batch = pairs
	putItemBatch(batch)
}

// DeleteBatch implements SecondaryIndex: one lock for the whole frame
// and one postings rebuild per distinct key, removing one occurrence
// per (key, pk) pair like repeated Delete calls would.
func (ix *BTreeIndex) DeleteBatch(pks, recs []adm.Value) {
	if len(pks) == 0 {
		return
	}
	batch, pairs := ix.groupPairs(pks, recs)
	ix.mu.Lock()
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && adm.Compare(pairs[i].Key, pairs[j].Key) == 0 {
			j++
		}
		ix.deleteGroupLocked(pairs[i].Key, pairs[i:j])
		i = j
	}
	ix.mu.Unlock()
	*batch = pairs
	putItemBatch(batch)
}

// deleteGroupLocked removes one postings occurrence per pair (all pairs
// share the key) in a single rebuild of the postings array.
func (ix *BTreeIndex) deleteGroupLocked(key adm.Value, pairs []index.Item) {
	cur, found := ix.tree.Get(key)
	if !found {
		return
	}
	elems := cur.ArrayVal()
	out := make([]adm.Value, 0, len(elems))
	remaining := len(pairs)
	for _, e := range elems {
		if remaining > 0 {
			matched := false
			for k := range pairs {
				// Consumed pairs are marked by blanking their key
				// (extract never yields MISSING keys).
				if !pairs[k].Key.IsMissing() && adm.Equal(e, pairs[k].Val) {
					pairs[k].Key = adm.Missing()
					remaining--
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		ix.tree.Delete(key)
	} else {
		ix.tree.Put(key, adm.Array(out))
	}
}

// Lookup returns the primary keys indexed under exactly key.
func (ix *BTreeIndex) Lookup(key adm.Value) []adm.Value {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	v, ok := ix.tree.Get(key)
	if !ok {
		return nil
	}
	return append([]adm.Value(nil), v.ArrayVal()...)
}

// LookupRangeBounds returns the primary keys whose secondary key falls
// within the bound pair (either end may be unbounded or exclusive),
// walking only the in-range portion of the tree via a bounded cursor.
// The returned pk slice is freshly built, so the caller may resolve the
// keys against the primary store after this call returns — without
// holding the index lock, which keeps the index-lock → partition-lock
// order out of the read path entirely.
func (ix *BTreeIndex) LookupRangeBounds(lo, hi index.Bound) []adm.Value {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var pks []adm.Value
	cur := ix.tree.CursorRange(lo, hi)
	for {
		it, ok := cur.Next()
		if !ok {
			return pks
		}
		pks = append(pks, it.Val.ArrayVal()...)
	}
}

// LookupRange returns the primary keys with from <= key <= to.
func (ix *BTreeIndex) LookupRange(from, to adm.Value) []adm.Value {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var pks []adm.Value
	ix.tree.AscendRange(from, to, func(it index.Item) bool {
		pks = append(pks, it.Val.ArrayVal()...)
		return true
	})
	return pks
}

var (
	_ SecondaryIndex = (*RTreeIndex)(nil)
	_ SecondaryIndex = (*BTreeIndex)(nil)
)
