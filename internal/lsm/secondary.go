package lsm

import (
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
	"github.com/ideadb/idea/internal/spatial"
)

// SecondaryIndex is a per-partition index maintained synchronously on
// the write path (AsterixDB's local secondary indexes). The probe
// surface is type-specific; callers type-assert to *RTreeIndex or
// *BTreeIndex.
type SecondaryIndex interface {
	// Name is the index name from CREATE INDEX.
	Name() string
	// Insert adds the (pk, record) entry.
	Insert(pk, rec adm.Value)
	// Delete removes the entry previously inserted for (pk, old record).
	Delete(pk, rec adm.Value)
}

// RectExtractor derives the indexed bounding rectangle from a record
// (e.g. the rect of a point field). ok=false skips the record.
type RectExtractor func(rec adm.Value) (spatial.Rect, bool)

// FieldRectExtractor indexes a top-level spatial field: points index as
// degenerate rects, rectangles as themselves, circles as their bounds.
func FieldRectExtractor(field string) RectExtractor {
	return func(rec adm.Value) (spatial.Rect, bool) {
		v := rec.Field(field)
		switch v.Kind() {
		case adm.KindPoint:
			x, y := v.PointVal()
			return spatial.BoundsPoint(spatial.Point{X: x, Y: y}), true
		case adm.KindRectangle:
			x1, y1, x2, y2 := v.RectVal()
			return spatial.NewRect(x1, y1, x2, y2), true
		case adm.KindCircle:
			cx, cy, r := v.CircleVal()
			return spatial.Circle{Center: spatial.Point{X: cx, Y: cy}, R: r}.Bounds(), true
		}
		return spatial.Rect{}, false
	}
}

// RTreeIndex is a spatial secondary index: rect(record) → primary key.
// Probes run concurrently with maintenance; an RWMutex arbitrates, which
// is precisely the contention the paper's update experiment measures on
// its index-join use case.
type RTreeIndex struct {
	name    string
	extract RectExtractor

	mu   sync.RWMutex
	tree *index.RTree
}

// NewRTreeIndex returns an empty spatial index over extract.
func NewRTreeIndex(name string, extract RectExtractor) *RTreeIndex {
	return &RTreeIndex{name: name, extract: extract, tree: index.NewRTree()}
}

// Name implements SecondaryIndex.
func (ix *RTreeIndex) Name() string { return ix.name }

// Insert implements SecondaryIndex.
func (ix *RTreeIndex) Insert(pk, rec adm.Value) {
	rect, ok := ix.extract(rec)
	if !ok {
		return
	}
	ix.mu.Lock()
	ix.tree.Insert(rect, pk)
	ix.mu.Unlock()
}

// Delete implements SecondaryIndex.
func (ix *RTreeIndex) Delete(pk, rec adm.Value) {
	rect, ok := ix.extract(rec)
	if !ok {
		return
	}
	ix.mu.Lock()
	ix.tree.Delete(rect, func(d any) bool {
		v, isVal := d.(adm.Value)
		return isVal && adm.Equal(v, pk)
	})
	ix.mu.Unlock()
}

// Search returns the primary keys of records whose indexed rect
// intersects query.
func (ix *RTreeIndex) Search(query spatial.Rect) []adm.Value {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var pks []adm.Value
	ix.tree.Search(query, func(e index.RTreeEntry) bool {
		pks = append(pks, e.Data.(adm.Value))
		return true
	})
	return pks
}

// Len returns the number of indexed entries.
func (ix *RTreeIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}

// KeyExtractor derives the indexed key from a record. ok=false skips the
// record (e.g. the field is missing).
type KeyExtractor func(rec adm.Value) (adm.Value, bool)

// FieldKeyExtractor indexes a top-level field by value.
func FieldKeyExtractor(field string) KeyExtractor {
	return func(rec adm.Value) (adm.Value, bool) {
		v := rec.Field(field)
		if v.IsUnknown() {
			return adm.Value{}, false
		}
		return v, true
	}
}

// BTreeIndex is an ordered secondary index: key(record) → set of primary
// keys (duplicates allowed across records).
type BTreeIndex struct {
	name    string
	extract KeyExtractor

	mu   sync.RWMutex
	tree *index.BTree // key → adm array of pks
}

// NewBTreeIndex returns an empty ordered index over extract.
func NewBTreeIndex(name string, extract KeyExtractor) *BTreeIndex {
	return &BTreeIndex{name: name, extract: extract, tree: index.NewBTree()}
}

// Name implements SecondaryIndex.
func (ix *BTreeIndex) Name() string { return ix.name }

// Insert implements SecondaryIndex.
func (ix *BTreeIndex) Insert(pk, rec adm.Value) {
	key, ok := ix.extract(rec)
	if !ok {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	cur, _ := ix.tree.Get(key)
	pks := append(append([]adm.Value(nil), cur.ArrayVal()...), pk)
	ix.tree.Put(key, adm.Array(pks))
}

// Delete implements SecondaryIndex.
func (ix *BTreeIndex) Delete(pk, rec adm.Value) {
	key, ok := ix.extract(rec)
	if !ok {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	cur, found := ix.tree.Get(key)
	if !found {
		return
	}
	elems := cur.ArrayVal()
	out := make([]adm.Value, 0, len(elems))
	removed := false
	for _, e := range elems {
		if !removed && adm.Equal(e, pk) {
			removed = true
			continue
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		ix.tree.Delete(key)
	} else {
		ix.tree.Put(key, adm.Array(out))
	}
}

// Lookup returns the primary keys indexed under exactly key.
func (ix *BTreeIndex) Lookup(key adm.Value) []adm.Value {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	v, ok := ix.tree.Get(key)
	if !ok {
		return nil
	}
	return append([]adm.Value(nil), v.ArrayVal()...)
}

// LookupRange returns the primary keys with from <= key <= to.
func (ix *BTreeIndex) LookupRange(from, to adm.Value) []adm.Value {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var pks []adm.Value
	ix.tree.AscendRange(from, to, func(it index.Item) bool {
		pks = append(pks, it.Val.ArrayVal()...)
		return true
	})
	return pks
}

var (
	_ SecondaryIndex = (*RTreeIndex)(nil)
	_ SecondaryIndex = (*BTreeIndex)(nil)
)
