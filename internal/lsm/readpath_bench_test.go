package lsm

import (
	"fmt"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

// benchReadPartition builds a durable partition holding even keys
// 0..2*n-2 spread across three run files (three explicit flushes; three
// runs stay under compactionMinWidth, so the set is stable) plus an
// empty memtable.
func benchReadPartition(b *testing.B, n int, cache *BlockCache) *Partition {
	b.Helper()
	fs := NewMemFS()
	p, err := OpenPartition(fs, "part", Options{MemBudget: 64 << 20, MaxComponents: 8, WALSegBytes: 1 << 20, BlockCache: cache})
	if err != nil {
		b.Fatal(err)
	}
	third := n / 3
	for i := 0; i < n; i++ {
		k := adm.Int(int64(2 * i))
		p.Upsert(k, adm.ObjectValue(adm.ObjectFromPairs("pk", k, "pad", adm.String("pppppppppppppppppppppppppppppppppppppppppppppppppppppppppppppp"))))
		if i == third || i == 2*third {
			p.Flush()
			if err := p.WaitForFlush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	p.Flush()
	if err := p.WaitForFlush(); err != nil {
		b.Fatal(err)
	}
	if got := p.Runs(); got != 3 {
		b.Fatalf("built %d runs, want 3", got)
	}
	b.Cleanup(func() { p.Close() })
	return p
}

// BenchmarkPointLookupDurable measures the durable point-lookup path.
// The negative variants must do zero filesystem block reads — fences
// reject keys outside every run's range, blooms reject absent keys
// inside it — and the warm-cache hit must read zero blocks and stay at
// ~0 allocs/op. block_reads/op is reported from the partition counters.
func BenchmarkPointLookupDurable(b *testing.B) {
	const n = 3000 // even keys 0..5998, three runs
	run := func(name string, cache *BlockCache, key func(i int) adm.Value, wantFound, wantNoReads bool) {
		b.Run(name, func(b *testing.B) {
			p := benchReadPartition(b, n, cache)
			// Warm: one pass over the probe set fills the cache (when one
			// is wired) before measurement.
			for i := 0; i < 1000; i++ {
				p.Get(key(i))
			}
			before := p.renv.rs.blockReads.Load()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, ok := p.Get(key(i))
				if ok != wantFound {
					b.Fatalf("get(%v) found=%v, want %v", key(i), ok, wantFound)
				}
			}
			b.StopTimer()
			reads := p.renv.rs.blockReads.Load() - before
			b.ReportMetric(float64(reads)/float64(b.N), "block_reads/op")
			if wantNoReads && reads != 0 {
				b.Fatalf("%d filesystem block reads, want 0", reads)
			}
		})
	}

	// Keys beyond every run's last key: fences short-circuit all three
	// runs without hashing or block IO.
	run("negative/fence", nil, func(i int) adm.Value { return adm.Int(int64(2*n + i%1000)) }, false, true)
	// Absent odd keys inside the fenced range: the bloom filters reject
	// (modulo ~1% false positives — those read one block, so the sub-
	// benchmark asserts only the counter metric, not zero).
	run("negative/bloom", nil, func(i int) adm.Value { return adm.Int(int64(2*(i%n) + 1)) }, false, false)
	// Warm cache hits: every probed block is resident, so the lookup
	// does zero filesystem reads and no allocation.
	run("hit/warm", NewBlockCache(DefaultBlockCacheBytes), func(i int) adm.Value { return adm.Int(int64(2 * (i % 1000))) }, true, true)
	// Cache-off baseline: every hit decodes its block from the
	// filesystem (into a pooled scratch).
	run("hit/nocache", nil, func(i int) adm.Value { return adm.Int(int64(2 * (i % 1000))) }, true, false)
}

// BenchmarkScanWarmCache measures full-snapshot scans over the same
// three-run partition with a warm cache versus no cache.
func BenchmarkScanWarmCache(b *testing.B) {
	const n = 3000
	for _, tc := range []struct {
		name  string
		cache *BlockCache
	}{
		{"warm", NewBlockCache(DefaultBlockCacheBytes)},
		{"nocache", nil},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := benchReadPartition(b, n, tc.cache)
			scan := func() int {
				count := 0
				cur := p.Snapshot().Cursor()
				defer cur.Close()
				for {
					if _, _, ok := cur.Next(); !ok {
						return count
					}
					count++
				}
			}
			if got := scan(); got != n { // warms the cache
				b.Fatalf("scan saw %d records, want %d", got, n)
			}
			before := p.renv.rs.blockReads.Load()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := scan(); got != n {
					b.Fatalf("scan saw %d records, want %d", got, n)
				}
			}
			b.StopTimer()
			reads := p.renv.rs.blockReads.Load() - before
			b.ReportMetric(float64(reads)/float64(b.N), "block_reads/op")
			if tc.cache != nil && reads != 0 {
				b.Fatalf("warm scan did %d filesystem block reads, want 0", reads)
			}
			_ = fmt.Sprintf
		})
	}
}
