package lsm

import (
	"errors"
	"fmt"
	"slices"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
)

// scanDataset builds an n-record dataset over `parts` partitions with an
// integer pk "id", a low-cardinality string "cat", and an int "score".
func scanDataset(t testing.TB, n, parts int) *Dataset {
	t.Helper()
	ds, err := NewDataset("S", nil, "id", parts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]adm.Value, n)
	for i := range recs {
		recs[i] = adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(int64(i)),
			"cat", adm.String(fmt.Sprintf("c%03d", i%50)),
			"score", adm.Int(int64(i%97)),
		))
	}
	if err := ds.UpsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFieldBTreeIndexForField(t *testing.T) {
	ds := scanDataset(t, 500, 3)
	if name, idxs := ds.BTreeIndexForField("cat"); name != "" || idxs != nil {
		t.Fatalf("probe before creation = %q,%v", name, idxs)
	}
	if err := ds.CreateFieldBTreeIndex("by_cat", "cat"); err != nil {
		t.Fatal(err)
	}
	// A custom-extractor index records no field and must not match.
	if err := ds.CreateBTreeIndex("custom", FieldKeyExtractor("score")); err != nil {
		t.Fatal(err)
	}
	name, idxs := ds.BTreeIndexForField("cat")
	if name != "by_cat" || len(idxs) != ds.NumPartitions() {
		t.Fatalf("probe = %q, %d instances", name, len(idxs))
	}
	if name, idxs := ds.BTreeIndexForField("score"); name != "" || idxs != nil {
		t.Fatalf("custom-extractor index leaked into field probe: %q %v", name, idxs)
	}
}

// TestIndexScanCursorMatchesFullScan checks that an index range scan
// returns exactly the records a filtered full scan returns, across
// equality and range bounds, as a multiset of ids.
func TestIndexScanCursorMatchesFullScan(t *testing.T) {
	ds := scanDataset(t, 2_000, 4)
	if err := ds.CreateFieldBTreeIndex("by_cat", "cat"); err != nil {
		t.Fatal(err)
	}
	_, idxs := ds.BTreeIndexForField("cat")
	snaps := ds.SnapshotAll()

	cases := []struct {
		lo, hi index.Bound
		keep   func(cat string) bool
	}{
		{index.Include(adm.String("c007")), index.Include(adm.String("c007")),
			func(c string) bool { return c == "c007" }},
		{index.Include(adm.String("c010")), index.Exclude(adm.String("c020")),
			func(c string) bool { return c >= "c010" && c < "c020" }},
		{index.Unbounded(), index.Include(adm.String("c003")),
			func(c string) bool { return c <= "c003" }},
		{index.Exclude(adm.String("c045")), index.Unbounded(),
			func(c string) bool { return c > "c045" }},
		{index.Include(adm.String("zzz")), index.Unbounded(),
			func(c string) bool { return false }},
	}
	for ci, tc := range cases {
		var want []int64
		for _, s := range snaps {
			s.Scan(func(_, rec adm.Value) bool {
				if tc.keep(rec.Field("cat").StringVal()) {
					want = append(want, rec.Field("id").IntVal())
				}
				return true
			})
		}
		var got []int64
		cur := NewIndexScanCursor(snaps, idxs, tc.lo, tc.hi)
		for {
			_, rec, ok := cur.Next()
			if !ok {
				break
			}
			got = append(got, rec.Field("id").IntVal())
		}
		slices.Sort(want)
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Errorf("case %d: index scan %d rows, full scan %d rows", ci, len(got), len(want))
		}
	}
}

// TestParallelScanOrders checks all three combine modes against the
// sequential scan: PartitionOrder must match it exactly, KeyOrder must
// produce global pk order, Unordered must match as a multiset.
func TestParallelScanOrders(t *testing.T) {
	ds := scanDataset(t, 3_000, 5)
	snaps := ds.SnapshotAll()
	var seq []int64
	sc := NewScanCursor(snaps)
	for {
		_, rec, ok := sc.Next()
		if !ok {
			break
		}
		seq = append(seq, rec.Field("id").IntVal())
	}

	drain := func(order ScanOrder) []int64 {
		t.Helper()
		cur := NewParallelScanCursor(snaps, nil, order, 0)
		defer cur.Close()
		var out []int64
		for {
			_, rec, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return out
			}
			out = append(out, rec.Field("id").IntVal())
		}
	}

	if got := drain(PartitionOrder); !slices.Equal(got, seq) {
		t.Error("PartitionOrder diverges from the sequential scan")
	}
	keyOrdered := drain(KeyOrder)
	if !slices.IsSorted(keyOrdered) {
		t.Error("KeyOrder output is not globally sorted")
	}
	unordered := drain(Unordered)
	slices.Sort(unordered)
	sortedSeq := slices.Clone(seq)
	slices.Sort(sortedSeq)
	if !slices.Equal(keyOrdered, sortedSeq) {
		t.Error("KeyOrder multiset diverges")
	}
	if !slices.Equal(unordered, sortedSeq) {
		t.Error("Unordered multiset diverges")
	}
}

// TestParallelScanFilterAndErrors pushes a filter into the workers and
// checks both the filtering and a mid-scan filter error surfacing.
func TestParallelScanFilterAndErrors(t *testing.T) {
	ds := scanDataset(t, 1_000, 4)
	snaps := ds.SnapshotAll()
	keep := func(_, rec adm.Value) (bool, error) {
		return rec.Field("score").IntVal() < 10, nil
	}
	cur := NewParallelScanCursor(snaps, keep, PartitionOrder, 0)
	n := 0
	for {
		_, rec, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rec.Field("score").IntVal() >= 10 {
			t.Fatal("filter leaked a record")
		}
		n++
	}
	cur.Close()
	want := 0
	for i := 0; i < 1_000; i++ {
		if i%97 < 10 {
			want++
		}
	}
	if n != want {
		t.Fatalf("filtered rows = %d, want %d", n, want)
	}

	boom := errors.New("boom")
	failing := func(_, rec adm.Value) (bool, error) {
		if rec.Field("id").IntVal() == 500 {
			return false, boom
		}
		return true, nil
	}
	cur = NewParallelScanCursor(snaps, failing, PartitionOrder, 0)
	defer cur.Close()
	for {
		_, _, ok, err := cur.Next()
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v", err)
			}
			break
		}
		if !ok {
			t.Fatal("scan exhausted without surfacing the worker error")
		}
	}
	if _, _, ok, _ := cur.Next(); ok {
		t.Fatal("cursor yielded rows after an error")
	}
}

// TestParallelScanCloseMidScan abandons scans at various points (the
// Rows.Close teardown path); with -race this doubles as the clean
// teardown check. Closing twice must be safe.
func TestParallelScanCloseMidScan(t *testing.T) {
	ds := scanDataset(t, 2_000, 4)
	snaps := ds.SnapshotAll()
	for _, order := range []ScanOrder{PartitionOrder, KeyOrder, Unordered} {
		for _, stop := range []int{0, 1, 7, 500} {
			cur := NewParallelScanCursor(snaps, nil, order, 4)
			for i := 0; i < stop; i++ {
				if _, _, ok, err := cur.Next(); !ok || err != nil {
					t.Fatalf("order %d: premature end at %d (%v)", order, i, err)
				}
			}
			cur.Close()
			cur.Close()
			if _, _, ok, _ := cur.Next(); ok {
				t.Fatalf("order %d: Next yielded after Close", order)
			}
		}
	}
}

// TestMergeRecyclesUnsharedTrees drives a partition through enough
// freeze/merge cycles to recycle frozen memtable trees, interleaving
// snapshots (which pin components and must keep reading correctly after
// the merge releases its unshared peers).
func TestMergeRecyclesUnsharedTrees(t *testing.T) {
	opts := Options{MemBudget: 1 << 12, MaxComponents: 3}
	p := NewPartition(opts)
	var pinned []*Snapshot
	for i := 0; i < 2_000; i++ {
		rec := adm.ObjectValue(adm.ObjectFromPairs("id", adm.Int(int64(i)), "pad", adm.String("xxxxxxxxxxxxxxxx")))
		p.Upsert(adm.Int(int64(i)), rec)
		if i%301 == 0 {
			pinned = append(pinned, p.Snapshot())
		}
	}
	if p.Stats().Merges == 0 {
		t.Fatal("test did not exercise a merge; shrink the budget")
	}
	// The latest state reads correctly post-recycling...
	for i := 0; i < 2_000; i += 97 {
		if _, ok := p.Get(adm.Int(int64(i))); !ok {
			t.Fatalf("Get(%d) missed after merges", i)
		}
	}
	// ...and every pinned snapshot still serves its point-in-time view.
	for si, s := range pinned {
		wantLen := si*301 + 1 // records upserted before the snapshot
		if got := s.Len(); got != wantLen {
			t.Fatalf("snapshot %d: Len = %d, want %d", si, got, wantLen)
		}
	}
}
