package lsm

import (
	"fmt"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
)

// OpenPartition opens (or creates) a durable partition rooted at dir.
// Recovery runs before the partition accepts work:
//
//  1. load the manifest (absent = fresh partition);
//  2. delete orphans — run files and temp manifests the manifest does
//     not reference, left behind by a crash mid-flush or mid-compaction;
//  3. open the manifest's run files as the component suffix (newest
//     first);
//  4. replay the WAL tail — every entry past the manifest's flushed
//     watermark — into a fresh memtable;
//  5. start the background flusher.
//
// A partition that crashed at any point reopens to exactly the state
// covered by acknowledged commits: run files hold LSNs <= FlushedLSN,
// the WAL holds the rest, and the one frame a crash may have torn is
// all-or-nothing by CRC framing.
func OpenPartition(fsys FS, dir string, opts Options) (*Partition, error) {
	if opts.MemBudget <= 0 {
		opts.MemBudget = DefaultOptions().MemBudget
	}
	if opts.MaxComponents <= 0 {
		opts.MaxComponents = DefaultOptions().MaxComponents
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	man, err := loadManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	p := &Partition{
		opts:        opts,
		mem:         index.NewBTree(),
		fs:          fsys,
		dir:         dir,
		man:         man,
		renv:        runEnv{cache: opts.BlockCache, rs: new(readStats)},
		flushC:      make(chan struct{}, 1),
		flusherDone: make(chan struct{}),
	}
	p.onNew = func(it index.Item) {
		p.memBytes += it.Key.MemSize() + it.Val.MemSize()
	}

	if err := removeOrphans(fsys, dir, man); err != nil {
		return nil, err
	}

	// Manifest runs are oldest first; components are newest first.
	for i := len(man.Runs) - 1; i >= 0; i-- {
		rm := man.Runs[i]
		rf, err := openRun(fsys, dir, rm.File, p.renv)
		if err != nil {
			p.closeRunsLocked()
			return nil, err
		}
		if err := checkFences(rm, rf); err != nil {
			rf.close()
			p.closeRunsLocked()
			return nil, err
		}
		p.components = append(p.components, &component{run: rf, upToLSN: rm.MaxLSN, bytes: rf.size})
	}

	wal, err := OpenWAL(fsys, dir, opts.GroupCommit, opts.WALSegBytes)
	if err != nil {
		p.closeRunsLocked()
		return nil, err
	}
	// Feed-resume checkpoints: the manifest snapshot first, then the WAL
	// tail may raise them further during replay below.
	for scope, off := range man.Checkpoints {
		p.restoreCheckpoint(scope, off)
	}

	// Replay applies straight to the fresh memtable: no locks are
	// needed (the partition is not yet published) and no re-logging
	// happens (the entries are already in the WAL). Tombstones stay in
	// the memtable as MISSING so they shadow older runs. Checkpoint
	// entries (reserved key prefix) route to the checkpoint table
	// instead of the memtable.
	err = wal.Replay(man.FlushedLSN, func(_ uint64, key, rec adm.Value) error {
		if scope, ok := checkpointScope(key); ok {
			if off, ok := rec.AsInt(); ok {
				p.restoreCheckpoint(scope, uint64(off))
			}
			return nil
		}
		if !p.mem.Put(key, rec) {
			p.memBytes += key.MemSize() + rec.MemSize()
		}
		return nil
	})
	if err != nil {
		p.closeRunsLocked()
		return nil, fmt.Errorf("lsm: recovery: %w", err)
	}
	p.wal = wal

	go p.flusher()
	// A replayed tail larger than the budget freezes immediately (the
	// WAL position is final now, so the watermark is correct).
	p.mu.Lock()
	if p.memBytes >= p.opts.MemBudget {
		p.freezeLocked()
	}
	p.mu.Unlock()
	return p, nil
}

// checkFences cross-checks the key-range fences the manifest recorded
// for a run against the ones derived from the file itself. Manifests
// written before fences existed (nil FirstKey) are accepted as-is.
func checkFences(rm runMeta, rf *runFile) error {
	if rm.FirstKey == nil || len(rf.blocks) == 0 {
		return nil
	}
	first, _, err := adm.DecodeBinary(rm.FirstKey)
	if err != nil {
		return fmt.Errorf("lsm: run %s: manifest first key: %w", rm.File, err)
	}
	last, _, err := adm.DecodeBinary(rm.LastKey)
	if err != nil {
		return fmt.Errorf("lsm: run %s: manifest last key: %w", rm.File, err)
	}
	if adm.Compare(first, rf.firstKey) != 0 || adm.Compare(last, rf.lastKey) != 0 {
		return fmt.Errorf("lsm: run %s: manifest fences [%s, %s] do not match file fences [%s, %s]",
			rm.File, first, last, rf.firstKey, rf.lastKey)
	}
	return nil
}

// removeOrphans deletes files in dir that neither the manifest nor the
// WAL owns: interrupted run writes and manifest temp files.
func removeOrphans(fsys FS, dir string, man manifest) error {
	names, err := fsys.List(dir)
	if err != nil {
		return err
	}
	referenced := make(map[string]bool, len(man.Runs))
	for _, rm := range man.Runs {
		referenced[rm.File] = true
	}
	for _, name := range names {
		if name == manifestName || referenced[name] {
			continue
		}
		if _, ok := parseWALSegmentName(name); ok {
			continue
		}
		if err := fsys.Remove(joinPath(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// closeRunsLocked closes every run-backed component and retired run
// file. Only used on open failure and at Close (no lock is actually
// held in the open-failure path; the partition is unpublished).
func (p *Partition) closeRunsLocked() error {
	var err error
	for _, c := range p.components {
		if c.run != nil {
			if cerr := c.run.close(); err == nil {
				err = cerr
			}
			if rerr := c.run.err(); err == nil {
				err = rerr
			}
		}
	}
	for _, rf := range p.retired {
		if cerr := rf.close(); err == nil {
			err = cerr
		}
	}
	p.retired = nil
	return err
}

// Close shuts the partition down: the flusher drains and exits, the
// WAL commits its tail and closes, run files close. The partition must
// not be used afterwards. Close does NOT force a final memtable flush —
// the WAL already holds everything, and reopening replays it; that keeps
// Close cheap and crash-equivalent (closing and crashing recover
// identically).
func (p *Partition) Close() error {
	p.mu.Lock()
	if p.closed {
		err := p.perr
		p.mu.Unlock()
		return err
	}
	p.closed = true
	p.mu.Unlock()
	if !p.durable() {
		return nil
	}
	close(p.flushC)
	<-p.flusherDone
	err := p.wal.Close()
	p.mu.Lock()
	if cerr := p.closeRunsLocked(); err == nil {
		err = cerr
	}
	if err == nil {
		err = p.perr
	}
	p.mu.Unlock()
	return err
}
