package lsm

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

// The crash-injection suite: run a deterministic workload against a
// durable partition on MemFS, kill the filesystem at sampled write
// counts (clean kill and torn final write), take the crash image
// (every file cut to its fsynced prefix), recover, and require that
// the recovered partition equals exactly the acknowledged state:
//
//   - every batch whose commit returned nil is fully present;
//   - nothing unacknowledged survives (a failed commit was never
//     acknowledged, and the synced-prefix model guarantees its bytes
//     never reached "disk" — torn frames are cut by CRC on replay);
//   - the recovered partition accepts new writes.
//
// The same write counter covers WAL appends, run-file flushes, manifest
// stores, and compactions, so the sampled injection points land in
// every phase of the storage lifecycle that the workload reaches.

// crashWorkload drives one deterministic workload against p, returning
// the acknowledged model (key → version; deletions removed). Update
// acknowledgment is per batch: only batches whose UpsertBatch (or
// per-record op) returned with a nil error enter the model.
func crashWorkload(p *Partition, frames, perFrame int) map[int64]int64 {
	acked := make(map[int64]int64)
	r := rand.New(rand.NewSource(42))
	version := int64(0)
	keys := make([]adm.Value, 0, perFrame)
	recs := make([]adm.Value, 0, perFrame)
	for f := 0; f < frames; f++ {
		keys, recs = keys[:0], recs[:0]
		staged := make(map[int64]int64, perFrame)
		for i := 0; i < perFrame; i++ {
			k := r.Int63n(int64(frames * perFrame / 4)) // plenty of overwrites
			version++
			keys = append(keys, adm.Int(k))
			recs = append(recs, rec(k, "ver", adm.Int(version), "pad", adm.String("ppppppppppppppppppppppppppppppppppppppppppppppp")))
			staged[k] = version
		}
		if err := p.UpsertBatch(keys, recs); err == nil {
			for k, v := range staged {
				acked[k] = v
			}
		}
		// Sprinkle per-record deletes; Delete has no error return, so
		// acknowledge via the partition's sticky error state.
		if f%3 == 2 {
			k := r.Int63n(int64(frames * perFrame / 4))
			before := p.Err()
			p.Delete(adm.Int(k))
			if before == nil && p.Err() == nil {
				delete(acked, k)
			} else {
				// Uncertain: the delete may or may not have committed.
				// Keep the model honest by removing the key from strict
				// checking either way — mark it with version -1.
				acked[k] = -1
			}
		}
	}
	return acked
}

// verifyRecovered checks the recovered partition against the acked
// model: exact versions for certain keys, either-state for the (rare)
// uncertain ones (version -1).
func verifyRecovered(t *testing.T, p *Partition, acked map[int64]int64, tag string) {
	t.Helper()
	certain := 0
	for k, v := range acked {
		got, ok := p.Get(adm.Int(k))
		if v == -1 {
			continue // uncertain delete: any state is acceptable
		}
		certain++
		if !ok {
			t.Fatalf("%s: acked key %d lost", tag, k)
		}
		if gv := got.Field("ver").IntVal(); gv != v {
			t.Fatalf("%s: key %d recovered version %d, want %d", tag, k, gv, v)
		}
	}
	// Nothing beyond the model may survive: count live records that the
	// model does not know as certain-or-uncertain.
	p.Snapshot().Scan(func(k, _ adm.Value) bool {
		if _, known := acked[k.IntVal()]; !known {
			t.Fatalf("%s: unacknowledged key %d resurrected", tag, k.IntVal())
		}
		return true
	})
	// And the partition must accept new work.
	p.Upsert(adm.Int(-99), rec(-99, "ver", adm.Int(-99)))
	if err := p.Err(); err != nil {
		t.Fatalf("%s: recovered partition rejects writes: %v", tag, err)
	}
	if got, ok := p.Get(adm.Int(-99)); !ok || got.Field("ver").IntVal() != -99 {
		t.Fatalf("%s: write after recovery not visible", tag)
	}
	_ = certain
}

func TestCrashRecovery(t *testing.T) {
	cases := []struct {
		name     string
		opts     Options
		frames   int
		perFrame int
		points   int
	}{
		// Everything stays in the memtable: crashes only ever hit WAL
		// appends and commits.
		{"memtable-only", Options{MemBudget: 8 << 20, MaxComponents: 8, WALSegBytes: 16 << 10}, 24, 8, 10},
		// Small budget: several flushes, run files, WAL truncation.
		{"flushed", Options{MemBudget: 8 << 10, MaxComponents: 8, WALSegBytes: 8 << 10}, 40, 12, 12},
		// Tiny budget + low component cap: compactions run during the
		// workload, so injection points land mid-compaction too.
		{"mid-compaction", Options{MemBudget: 4 << 10, MaxComponents: 3, WALSegBytes: 8 << 10}, 60, 12, 14},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Dry run: measure the workload's total write count with no
			// faults (also sanity-checks the workload itself).
			dryFS := NewMemFS()
			p, err := OpenPartition(dryFS, "part", tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			acked := crashWorkload(p, tc.frames, tc.perFrame)
			if err := p.WaitForFlush(); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			totalWrites := dryFS.Writes()
			if totalWrites < tc.points {
				t.Fatalf("workload too small: %d writes", totalWrites)
			}
			// Sanity: a clean close must reopen to the full model.
			rp, err := OpenPartition(dryFS.Crash(), "part", tc.opts)
			if err != nil {
				t.Fatalf("clean reopen: %v", err)
			}
			verifyRecovered(t, rp, acked, "clean-close")
			rp.Close()

			// Injection runs: kill at sampled points, torn and clean.
			r := rand.New(rand.NewSource(7))
			for i := 0; i < tc.points; i++ {
				n := i * totalWrites / tc.points
				if i > 0 {
					n += r.Intn(totalWrites/tc.points + 1)
				}
				for _, torn := range []int{0, 7} {
					tag := fmt.Sprintf("kill@%d/%d torn=%d", n, totalWrites, torn)
					fs := NewMemFS()
					p, err := OpenPartition(fs, "part", tc.opts)
					if err != nil {
						t.Fatal(err)
					}
					fs.FailWritesAfter(n, torn)
					acked := crashWorkload(p, tc.frames, tc.perFrame)
					img := fs.Crash()
					// The doomed process shuts down after the crash image
					// is taken; its writes no longer matter.
					p.Close()

					rp, err := OpenPartition(img, "part", tc.opts)
					if err != nil {
						t.Fatalf("%s: recovery failed: %v", tag, err)
					}
					verifyRecovered(t, rp, acked, tag)
					if err := rp.Close(); err != nil {
						t.Fatalf("%s: close after recovery: %v", tag, err)
					}
				}
			}
		})
	}
}

// TestCrashRecoveryDoubleCrash: recovery itself is crash-safe — kill
// the process during its recovery writes (orphan cleanup, WAL
// truncation), recover again, and the acknowledged state must still be
// intact.
func TestCrashRecoveryDoubleCrash(t *testing.T) {
	opts := Options{MemBudget: 8 << 10, MaxComponents: 4, WALSegBytes: 8 << 10}
	fs := NewMemFS()
	p, err := OpenPartition(fs, "part", opts)
	if err != nil {
		t.Fatal(err)
	}
	fs.FailWritesAfter(300, 0)
	acked := crashWorkload(p, 40, 12)
	img := fs.Crash()
	p.Close()

	// Crash the first recovery attempt at several points; none of them
	// may damage the image for the attempt after it.
	for _, n := range []int{0, 1, 2, 5, 10} {
		attempt := img.Crash() // fresh copy of the image
		attempt.FailWritesAfter(n, 0)
		rp, err := OpenPartition(attempt, "part", opts)
		if err == nil {
			// Recovery survived the injection (not all points write).
			rp.Close()
		}
		final, err := OpenPartition(attempt.Crash(), "part", opts)
		if err != nil {
			t.Fatalf("recovery after killed recovery (n=%d): %v", n, err)
		}
		verifyRecovered(t, final, acked, fmt.Sprintf("double-crash n=%d", n))
		final.Close()
	}
}

// TestWALReplayTornTail: a WAL segment whose tail holds a torn frame —
// bytes that reached disk but fail the CRC — replays every complete
// frame and truncates the garbage, and the log accepts appends after.
func TestWALReplayTornTail(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "wal", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(0, func(uint64, adm.Value, adm.Value) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var enc []byte
	for i := int64(1); i <= 5; i++ {
		enc = adm.AppendBinary(enc[:0], adm.Int(i))
		enc = adm.AppendBinary(enc, rec(i))
		w.appendEncoded(enc, 1)
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Append torn garbage straight to the segment and make it durable —
	// the disk image a crash can leave when the page cache flushed a
	// partial frame.
	f, err := fs.Open("wal/wal-000001.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(fs, "wal", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	err = w2.Replay(0, func(lsn uint64, key, _ adm.Value) error {
		got = append(got, key.IntVal())
		return nil
	})
	if err != nil {
		t.Fatalf("replay over torn tail: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("replayed %d entries, want 5", len(got))
	}
	if w2.LSN() != 5 {
		t.Fatalf("LSN after torn-tail replay = %d, want 5", w2.LSN())
	}
	// The torn bytes are gone; appending must work.
	enc = adm.AppendBinary(enc[:0], adm.Int(6))
	enc = adm.AppendBinary(enc, rec(6))
	w2.appendEncoded(enc, 1)
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	w3, err := OpenWAL(fs, "wal", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := w3.Replay(0, func(uint64, adm.Value, adm.Value) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("final replay saw %d entries, want 6", count)
	}
	w3.Close()
}
