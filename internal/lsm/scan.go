package lsm

import (
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
)

// IndexScanCursor streams the records selected by a secondary-index
// range probe, resolving postings through the primary store of pinned
// snapshots. The postings (primary keys only — never records) are
// captured per partition at construction time, immediately after the
// query pinned its snapshots, so the live-index/pinned-snapshot window
// is a single instant; records are then resolved lazily, one per Next,
// so a consumer that stops early never materializes the tail. A pk
// indexed after the snapshot was pinned simply misses in the snapshot
// and is skipped.
type IndexScanCursor struct {
	snaps []*Snapshot
	pks   [][]adm.Value
	part  int
	pos   int
}

// NewIndexScanCursor probes one *BTreeIndex per partition snapshot
// (idxs[i] belongs to snaps[i]'s partition) for the keys within
// [lo, hi] and returns a cursor over the matching records. The probe
// copies primary keys out under the index read lock and resolves them
// afterwards, so no partition lock is ever taken while an index lock is
// held.
func NewIndexScanCursor(snaps []*Snapshot, idxs []*BTreeIndex, lo, hi index.Bound) *IndexScanCursor {
	pks := make([][]adm.Value, len(idxs))
	for i, ix := range idxs {
		pks[i] = ix.LookupRangeBounds(lo, hi)
	}
	return &IndexScanCursor{snaps: snaps, pks: pks}
}

// Next resolves and returns the next matched record. Output order is
// postings order per partition (insertion order within a secondary
// key), not primary-key order; consumers needing an order sort above.
func (c *IndexScanCursor) Next() (key, rec adm.Value, ok bool) {
	for {
		if c.part >= len(c.pks) {
			return adm.Value{}, adm.Value{}, false
		}
		if c.pos >= len(c.pks[c.part]) {
			c.part++
			c.pos = 0
			continue
		}
		pk := c.pks[c.part][c.pos]
		c.pos++
		if rec, found := c.snaps[c.part].Get(pk); found {
			return pk, rec, true
		}
	}
}

// Matched counts the postings captured by the probe (before snapshot
// resolution) — the observable selectivity of the pushdown.
func (c *IndexScanCursor) Matched() int {
	n := 0
	for _, p := range c.pks {
		n += len(p)
	}
	return n
}

// ScanOrder selects how a parallel scan's partition streams are
// combined.
type ScanOrder int

const (
	// PartitionOrder drains partitions in index order, each in key
	// order — byte-for-byte the sequential ScanCursor's output, with the
	// partition walks (component merges plus any pushed filter) running
	// concurrently ahead of the consumer.
	PartitionOrder ScanOrder = iota
	// KeyOrder merges the partition streams into one global
	// primary-key-ordered stream — the k-way merge shape of mergeCursor
	// lifted to partition granularity (each input is already a merged
	// snapshot cursor, and hash routing guarantees a key lives in
	// exactly one partition, so a plain min-pick suffices).
	KeyOrder
	// Unordered fans every worker into one shared channel: maximum
	// overlap, arrival order nondeterministic. Only for consumers whose
	// result is order-insensitive (e.g. count/min/max aggregation).
	Unordered
)

// parItem is one record (or a terminal worker error) in flight from a
// scan worker to the consumer.
type parItem struct {
	key, rec adm.Value
	err      error
}

// scanBatchSize is how many records a worker accumulates per channel
// send. Batching amortizes the channel synchronization (and the done-
// select teardown check) across many records — per-record sends make
// the exchange slower than a serial scan.
const scanBatchSize = 128

// ParallelScanCursor scans partition snapshots concurrently: one
// goroutine per partition walks its Snapshot.Cursor (optionally
// applying a pushed-down filter) and feeds a bounded channel in
// batches; Next combines the streams per the ScanOrder. Close tears
// the workers down and blocks until they exit, so an abandoned scan
// leaks nothing. Next and Close must be called from one goroutine (the
// cursor, like Rows, is not concurrent-safe); Close is idempotent and
// safe mid-scan.
type ParallelScanCursor struct {
	order ScanOrder
	chans []chan []parItem
	free  chan []parItem // drained batches recycled back to workers
	done  chan struct{}
	wg    sync.WaitGroup

	cur    int // PartitionOrder/Unordered: channel being drained
	bufs   [][]parItem
	poss   []int
	heads  []parItem
	live   []bool
	primed bool

	err    error
	closed bool
}

// NewParallelScanCursor starts one scan worker per snapshot. filter,
// when non-nil, runs inside the workers — it must be safe for
// concurrent calls — and drops records it returns false for; an error
// aborts the scan and surfaces from Next. buf is the per-channel bound
// in batches of scanBatchSize records (<=0 selects a default sized to
// keep workers ahead of the consumer without buffering whole
// partitions).
func NewParallelScanCursor(snaps []*Snapshot, filter func(key, rec adm.Value) (bool, error), order ScanOrder, buf int) *ParallelScanCursor {
	if buf <= 0 {
		buf = 8
	}
	c := &ParallelScanCursor{order: order, done: make(chan struct{})}
	nchans := len(snaps)
	if order == Unordered {
		nchans = 1
	}
	c.chans = make([]chan []parItem, nchans)
	for i := range c.chans {
		c.chans[i] = make(chan []parItem, buf)
	}
	// The free list is prefilled with the in-flight maximum (channel
	// buffers + one per worker + one per consumer stream + transit
	// slack), carved from one backing array: workers recycle drained
	// batches instead of allocating, so a scan's allocation count is a
	// small constant independent of partition size.
	nbatch := nchans*buf + len(snaps) + nchans + 2
	c.free = make(chan []parItem, nbatch)
	backing := make([]parItem, nbatch*scanBatchSize)
	for i := 0; i < nbatch; i++ {
		c.free <- backing[i*scanBatchSize : i*scanBatchSize : (i+1)*scanBatchSize]
	}
	c.bufs = make([][]parItem, nchans)
	c.poss = make([]int, nchans)
	c.wg.Add(len(snaps))
	for i, s := range snaps {
		out := c.chans[0]
		if order != Unordered {
			out = c.chans[i]
		}
		go c.scanWorker(s, filter, out, order != Unordered)
	}
	if order == Unordered {
		// The shared channel closes once after every worker exits.
		go func() {
			c.wg.Wait()
			close(c.chans[0])
		}()
	}
	return c
}

func (c *ParallelScanCursor) scanWorker(s *Snapshot, filter func(key, rec adm.Value) (bool, error), out chan<- []parItem, ownsChan bool) {
	defer c.wg.Done()
	if ownsChan {
		defer close(out)
	}
	cur := s.Cursor()
	// A Close-torn-down worker abandons its cursor mid-run: release its
	// block-cache pin and run-file references.
	defer cur.Close()
	getBatch := func() []parItem {
		select {
		case b := <-c.free:
			return b[:0]
		default:
			return make([]parItem, 0, scanBatchSize)
		}
	}
	batch := getBatch()
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case out <- batch:
			batch = getBatch()
			return true
		case <-c.done:
			return false
		}
	}
	for {
		k, r, ok := cur.Next()
		if !ok {
			flush()
			return
		}
		if filter != nil {
			keep, err := filter(k, r)
			if err != nil {
				batch = append(batch, parItem{err: err})
				flush()
				return
			}
			if !keep {
				continue
			}
		}
		batch = append(batch, parItem{key: k, rec: r})
		if len(batch) == scanBatchSize && !flush() {
			return
		}
	}
}

// fetch returns the next item of stream i, refilling its batch buffer
// from the channel as needed. ok=false means the stream is exhausted.
func (c *ParallelScanCursor) fetch(i int) (parItem, bool) {
	for {
		if c.poss[i] < len(c.bufs[i]) {
			it := c.bufs[i][c.poss[i]]
			c.poss[i]++
			return it, true
		}
		b, open := <-c.chans[i]
		if !open {
			return parItem{}, false
		}
		if old := c.bufs[i]; old != nil {
			select {
			case c.free <- old:
			default:
			}
		}
		c.bufs[i], c.poss[i] = b, 0
	}
}

// Next returns the next record per the cursor's ScanOrder. After
// ok=false (exhaustion, error, or Close) the cursor stays exhausted.
func (c *ParallelScanCursor) Next() (key, rec adm.Value, ok bool, err error) {
	if c.closed || c.err != nil {
		return adm.Value{}, adm.Value{}, false, c.err
	}
	if c.order == KeyOrder {
		return c.nextKeyOrder()
	}
	for c.cur < len(c.chans) {
		it, ok := c.fetch(c.cur)
		if !ok {
			c.cur++
			continue
		}
		if it.err != nil {
			c.fail(it.err)
			return adm.Value{}, adm.Value{}, false, c.err
		}
		return it.key, it.rec, true, nil
	}
	return adm.Value{}, adm.Value{}, false, nil
}

func (c *ParallelScanCursor) nextKeyOrder() (key, rec adm.Value, ok bool, err error) {
	if !c.primed {
		c.primed = true
		c.heads = make([]parItem, len(c.chans))
		c.live = make([]bool, len(c.chans))
		for i := range c.chans {
			if c.recv(i); c.err != nil {
				return adm.Value{}, adm.Value{}, false, c.err
			}
		}
	}
	best := -1
	for i := range c.heads {
		if c.live[i] && (best < 0 || adm.Less(c.heads[i].key, c.heads[best].key)) {
			best = i
		}
	}
	if best < 0 {
		return adm.Value{}, adm.Value{}, false, nil
	}
	out := c.heads[best]
	if c.recv(best); c.err != nil {
		return adm.Value{}, adm.Value{}, false, c.err
	}
	return out.key, out.rec, true, nil
}

// recv refills head i, recording a worker error in c.err (and tearing
// the scan down) when one arrives.
func (c *ParallelScanCursor) recv(i int) {
	it, ok := c.fetch(i)
	if !ok {
		c.live[i] = false
		return
	}
	if it.err != nil {
		c.fail(it.err)
		return
	}
	c.heads[i], c.live[i] = it, true
}

func (c *ParallelScanCursor) fail(err error) {
	c.err = err
	c.Close()
}

// Close stops the workers and waits for them to exit. It is safe to
// call mid-scan, after exhaustion, and repeatedly.
func (c *ParallelScanCursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	close(c.done)
	// Drain nothing: workers select on done for every send, so they
	// observe the close even while blocked on a full channel.
	c.wg.Wait()
}
