package lsm

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// The golden-file tests pin the on-disk formats byte for byte. A
// legitimate format change must bump the relevant version byte
// (walVersion, runVersion, adm.BinaryVersion) AND regenerate the
// fixtures with -update; an accidental encoding drift fails here before
// it can corrupt anyone's stored data.

// goldenValues is a fixed, kind-diverse record set.
func goldenValues() ([]adm.Value, []adm.Value) {
	keys := []adm.Value{
		adm.Int(1),
		adm.Int(2),
		adm.Int(3),
		adm.String("four"),
	}
	recs := []adm.Value{
		adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(1),
			"name", adm.String("alice"),
			"score", adm.Double(3.5),
			"tags", adm.Array([]adm.Value{adm.String("a"), adm.String("b")}),
		)),
		adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(2),
			"loc", adm.Point(7.5, -8.25),
			"active", adm.Bool(true),
		)),
		adm.Missing(), // tombstone
		adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.String("four"),
			"note", adm.Null(),
		)),
	}
	return keys, recs
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (%d vs %d bytes).\nIf the format change is intentional, bump the version byte and regenerate with -update.", name, len(got), len(want))
	}
}

// TestGoldenWALSegment pins the WAL segment format: header, framing,
// CRCs, and the adm binary encoding of the entries.
func TestGoldenWALSegment(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "wal", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(0, nil); err != nil {
		t.Fatal(err)
	}
	keys, recs := goldenValues()
	// Two frames: a batch of three, then a single-entry frame.
	var enc []byte
	for i := 0; i < 3; i++ {
		enc = adm.AppendBinary(enc, keys[i])
		enc = adm.AppendBinary(enc, recs[i])
	}
	w.appendEncoded(enc, 3)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	enc = adm.AppendBinary(enc[:0], keys[3])
	enc = adm.AppendBinary(enc, recs[3])
	w.appendEncoded(enc, 1)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := readFileAll(fs, "wal/wal-000001.log")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "wal-v1.golden", data)

	// The golden bytes must also replay — the read side is pinned too.
	n := 0
	err = w2Replay(t, fs, func(lsn uint64, key, rec adm.Value) {
		if adm.Compare(key, keys[n]) != 0 || adm.Compare(rec, recs[n]) != 0 {
			t.Fatalf("replay entry %d mismatch", n)
		}
		n++
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d entries, want 4", n)
	}
}

func w2Replay(t *testing.T, fs FS, fn func(uint64, adm.Value, adm.Value)) error {
	t.Helper()
	w, err := OpenWAL(fs, "wal", 0, 1<<20)
	if err != nil {
		return err
	}
	defer w.Close()
	return w.Replay(0, func(lsn uint64, key, rec adm.Value) error {
		fn(lsn, key, rec)
		return nil
	})
}

// probeGet is the test shorthand for a single-run point lookup through
// the pooled probe API.
func probeGet(rf *runFile, key adm.Value) (adm.Value, bool) {
	kp := getProbe(key)
	defer putProbe(kp)
	return rf.get(kp)
}

// checkGoldenRun exercises the read side of an open run over the golden
// record set: entry count, point lookups, and a full cursor scan.
func checkGoldenRun(t *testing.T, rf *runFile, items []index.Item) {
	t.Helper()
	if rf.entries != len(items) {
		t.Fatalf("entries = %d, want %d", rf.entries, len(items))
	}
	for i, it := range items {
		got, ok := probeGet(rf, it.Key)
		if !ok || adm.Compare(got, it.Val) != 0 {
			t.Fatalf("get(item %d) = %v,%v", i, got, ok)
		}
	}
	if _, ok := probeGet(rf, adm.Int(999)); ok {
		t.Fatal("get(absent key) found something")
	}
	c := rf.cursor()
	for i := range items {
		it, ok := c.next()
		if !ok || adm.Compare(it.Key, items[i].Key) != 0 {
			t.Fatalf("cursor item %d mismatch", i)
		}
	}
	if _, ok := c.next(); ok {
		t.Fatal("cursor overran")
	}
	if adm.Compare(rf.firstKey, items[0].Key) != 0 || adm.Compare(rf.lastKey, items[len(items)-1].Key) != 0 {
		t.Fatalf("fences = [%v, %v], want [%v, %v]", rf.firstKey, rf.lastKey, items[0].Key, items[len(items)-1].Key)
	}
	if err := rf.err(); err != nil {
		t.Fatal(err)
	}
}

func goldenItems() []index.Item {
	keys, recs := goldenValues()
	items := make([]index.Item, len(keys))
	for i := range keys {
		items[i] = index.Item{Key: keys[i], Val: recs[i]}
	}
	return items
}

// TestGoldenRunFile pins the version-2 run-file format: header, block
// framing, bloom section, extended block index, footer.
func TestGoldenRunFile(t *testing.T) {
	items := goldenItems()
	fs := NewMemFS()
	rf, err := writeRun(fs, "runs", "golden.run", []*component{{items: items}}, false, runEnv{})
	if err != nil {
		t.Fatal(err)
	}
	rf.close()

	data, err := readFileAll(fs, "runs/golden.run")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "run-v2.golden", data)

	// Read side: the golden bytes must open, point-look-up, and scan.
	rf, err = openRun(fs, "runs", "golden.run", runEnv{})
	if err != nil {
		t.Fatal(err)
	}
	defer rf.close()
	if rf.version != runVersion {
		t.Fatalf("version = %d, want %d", rf.version, runVersion)
	}
	if rf.bloom == nil {
		t.Fatal("v2 run opened without a bloom filter")
	}
	checkGoldenRun(t, rf, items)
}

// TestGoldenRunFileV1Compat proves version-1 run files (written before
// the bloom/fence sections existed) stay readable: testdata/run-v1.golden
// is a frozen v1 fixture — it must never be regenerated — and the reader
// must open it with no bloom filter, fences derived from the last block,
// and identical lookup/scan results.
func TestGoldenRunFileV1Compat(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "run-v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	fs := NewMemFS()
	f, err := fs.Create("runs/golden-v1.run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := openRun(fs, "runs", "golden-v1.run", runEnv{})
	if err != nil {
		t.Fatal(err)
	}
	defer rf.close()
	if rf.version != runVersionV1 {
		t.Fatalf("version = %d, want %d", rf.version, runVersionV1)
	}
	if rf.bloom != nil {
		t.Fatal("v1 run must open bloom-less")
	}
	checkGoldenRun(t, rf, goldenItems())
}

// TestCrashRecoveryMixedRunVersions: a partition whose manifest
// references a version-1 run file (an upgrade in place) must recover,
// serve the old run, flush new version-2 runs next to it, and survive a
// crash with the mixed set on disk.
func TestCrashRecoveryMixedRunVersions(t *testing.T) {
	v1, err := os.ReadFile(filepath.Join("testdata", "run-v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	// Build the pre-upgrade image by hand: the v1 run plus a manifest
	// that references it. Pre-fence manifests carry no first/last keys,
	// so the fence cross-check must be skipped for this run.
	fs := NewMemFS()
	f, err := fs.Create("part/run-000001.run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(v1); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	man := manifest{
		Version: manifestVersion,
		NextSeq: 2,
		Runs:    []runMeta{{File: "run-000001.run", MaxLSN: 0, Entries: 4, Bytes: int64(len(v1))}},
	}
	if err := storeManifest(fs, "part", man); err != nil {
		t.Fatal(err)
	}

	opts := Options{MemBudget: 8 << 20, MaxComponents: 8, WALSegBytes: 16 << 10}
	checkV1Visible := func(p *Partition, tag string) {
		t.Helper()
		keys, recs := goldenValues()
		for i, k := range keys {
			got, ok := p.Get(k)
			if recs[i].IsMissing() {
				if ok {
					t.Fatalf("%s: tombstoned key %v resurrected", tag, k)
				}
				continue
			}
			if !ok || adm.Compare(got, recs[i]) != 0 {
				t.Fatalf("%s: v1 key %v = %v,%v", tag, k, got, ok)
			}
		}
	}

	p, err := OpenPartition(fs, "part", opts)
	if err != nil {
		t.Fatal(err)
	}
	checkV1Visible(p, "after upgrade open")

	// New writes flush as v2 runs next to the v1 run.
	for i := 10; i < 20; i++ {
		p.Upsert(adm.Int(int64(i)), adm.ObjectValue(adm.ObjectFromPairs("id", adm.Int(int64(i)))))
	}
	p.Flush()
	if err := p.WaitForFlush(); err != nil {
		t.Fatal(err)
	}
	if got := p.Runs(); got != 2 {
		t.Fatalf("runs after flush = %d, want 2", got)
	}

	// Crash with the mixed v1/v2 set on disk and recover.
	img := fs.Crash()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	rp, err := OpenPartition(img, "part", opts)
	if err != nil {
		t.Fatalf("mixed-version recovery: %v", err)
	}
	defer rp.Close()
	checkV1Visible(rp, "after crash recovery")
	for i := 10; i < 20; i++ {
		if _, ok := rp.Get(adm.Int(int64(i))); !ok {
			t.Fatalf("flushed key %d lost across mixed-version recovery", i)
		}
	}
	if st := rp.Stats(); st.OpenRuns != 2 {
		t.Fatalf("open runs after recovery = %d, want 2", st.OpenRuns)
	}
}

// TestGoldenVersionBytes pins the version constants themselves: bumping
// one without regenerating fixtures (or vice versa) fails loudly.
func TestGoldenVersionBytes(t *testing.T) {
	if walVersion != 1 || runVersion != 2 || adm.BinaryVersion != 1 {
		t.Fatalf("format versions changed (wal=%d run=%d adm=%d): regenerate golden files with -update and update this test",
			walVersion, runVersion, adm.BinaryVersion)
	}
	wal, err := os.ReadFile(filepath.Join("testdata", "wal-v1.golden"))
	if err != nil {
		t.Skip("golden files not generated yet")
	}
	if string(wal[:len(walMagic)]) != walMagic || wal[len(walMagic)] != walVersion {
		t.Fatal("WAL golden header does not carry the current magic+version")
	}
	run, err := os.ReadFile(filepath.Join("testdata", "run-v2.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(run[:len(runMagic)]) != runMagic || run[len(runMagic)] != runVersion {
		t.Fatal("run golden header does not carry the current magic+version")
	}
	// The frozen v1 fixture keeps its original version byte; it backs the
	// backward-compat test and must never be regenerated.
	runV1, err := os.ReadFile(filepath.Join("testdata", "run-v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(runV1[:len(runMagic)]) != runMagic || runV1[len(runMagic)] != runVersionV1 {
		t.Fatal("frozen run-v1 golden header drifted")
	}
}
