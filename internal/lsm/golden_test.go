package lsm

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// The golden-file tests pin the on-disk formats byte for byte. A
// legitimate format change must bump the relevant version byte
// (walVersion, runVersion, adm.BinaryVersion) AND regenerate the
// fixtures with -update; an accidental encoding drift fails here before
// it can corrupt anyone's stored data.

// goldenValues is a fixed, kind-diverse record set.
func goldenValues() ([]adm.Value, []adm.Value) {
	keys := []adm.Value{
		adm.Int(1),
		adm.Int(2),
		adm.Int(3),
		adm.String("four"),
	}
	recs := []adm.Value{
		adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(1),
			"name", adm.String("alice"),
			"score", adm.Double(3.5),
			"tags", adm.Array([]adm.Value{adm.String("a"), adm.String("b")}),
		)),
		adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(2),
			"loc", adm.Point(7.5, -8.25),
			"active", adm.Bool(true),
		)),
		adm.Missing(), // tombstone
		adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.String("four"),
			"note", adm.Null(),
		)),
	}
	return keys, recs
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (%d vs %d bytes).\nIf the format change is intentional, bump the version byte and regenerate with -update.", name, len(got), len(want))
	}
}

// TestGoldenWALSegment pins the WAL segment format: header, framing,
// CRCs, and the adm binary encoding of the entries.
func TestGoldenWALSegment(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "wal", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(0, nil); err != nil {
		t.Fatal(err)
	}
	keys, recs := goldenValues()
	// Two frames: a batch of three, then a single-entry frame.
	var enc []byte
	for i := 0; i < 3; i++ {
		enc = adm.AppendBinary(enc, keys[i])
		enc = adm.AppendBinary(enc, recs[i])
	}
	w.appendEncoded(enc, 3)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	enc = adm.AppendBinary(enc[:0], keys[3])
	enc = adm.AppendBinary(enc, recs[3])
	w.appendEncoded(enc, 1)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := readFileAll(fs, "wal/wal-000001.log")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "wal-v1.golden", data)

	// The golden bytes must also replay — the read side is pinned too.
	n := 0
	err = w2Replay(t, fs, func(lsn uint64, key, rec adm.Value) {
		if adm.Compare(key, keys[n]) != 0 || adm.Compare(rec, recs[n]) != 0 {
			t.Fatalf("replay entry %d mismatch", n)
		}
		n++
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d entries, want 4", n)
	}
}

func w2Replay(t *testing.T, fs FS, fn func(uint64, adm.Value, adm.Value)) error {
	t.Helper()
	w, err := OpenWAL(fs, "wal", 0, 1<<20)
	if err != nil {
		return err
	}
	defer w.Close()
	return w.Replay(0, func(lsn uint64, key, rec adm.Value) error {
		fn(lsn, key, rec)
		return nil
	})
}

// TestGoldenRunFile pins the run-file format: header, block framing,
// block index, footer.
func TestGoldenRunFile(t *testing.T) {
	keys, recs := goldenValues()
	items := make([]index.Item, len(keys))
	for i := range keys {
		items[i] = index.Item{Key: keys[i], Val: recs[i]}
	}
	fs := NewMemFS()
	rf, err := writeRun(fs, "runs", "golden.run", []*component{{items: items}}, false)
	if err != nil {
		t.Fatal(err)
	}
	rf.close()

	data, err := readFileAll(fs, "runs/golden.run")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "run-v1.golden", data)

	// Read side: the golden bytes must open, point-look-up, and scan.
	rf, err = openRun(fs, "runs", "golden.run")
	if err != nil {
		t.Fatal(err)
	}
	defer rf.close()
	if rf.entries != len(items) {
		t.Fatalf("entries = %d, want %d", rf.entries, len(items))
	}
	for i, it := range items {
		got, ok := rf.get(it.Key)
		if !ok || adm.Compare(got, it.Val) != 0 {
			t.Fatalf("get(item %d) = %v,%v", i, got, ok)
		}
	}
	c := rf.cursor()
	for i := range items {
		it, ok := c.next()
		if !ok || adm.Compare(it.Key, items[i].Key) != 0 {
			t.Fatalf("cursor item %d mismatch", i)
		}
	}
	if _, ok := c.next(); ok {
		t.Fatal("cursor overran")
	}
	if err := rf.err(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenVersionBytes pins the version constants themselves: bumping
// one without regenerating fixtures (or vice versa) fails loudly.
func TestGoldenVersionBytes(t *testing.T) {
	if walVersion != 1 || runVersion != 1 || adm.BinaryVersion != 1 {
		t.Fatalf("format versions changed (wal=%d run=%d adm=%d): regenerate golden files with -update and update this test",
			walVersion, runVersion, adm.BinaryVersion)
	}
	wal, err := os.ReadFile(filepath.Join("testdata", "wal-v1.golden"))
	if err != nil {
		t.Skip("golden files not generated yet")
	}
	if string(wal[:len(walMagic)]) != walMagic || wal[len(walMagic)] != walVersion {
		t.Fatal("WAL golden header does not carry the current magic+version")
	}
	run, err := os.ReadFile(filepath.Join("testdata", "run-v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(run[:len(runMagic)]) != runMagic || run[len(runMagic)] != runVersion {
		t.Fatal("run golden header does not carry the current magic+version")
	}
}
