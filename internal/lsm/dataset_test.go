package lsm

import (
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/spatial"
)

func monumentType() *adm.Datatype {
	return adm.MustDatatype("monumentType", true, []adm.FieldDef{
		{Name: "monument_id", Kind: adm.KindString},
		{Name: "monument_location", Kind: adm.KindPoint},
	})
}

func monument(id string, x, y float64) adm.Value {
	return adm.ObjectValue(adm.ObjectFromPairs(
		"monument_id", adm.String(id),
		"monument_location", adm.Point(x, y),
	))
}

func TestDatasetRouteAndCRUD(t *testing.T) {
	ds, err := NewDataset("monumentList", monumentType(), "monument_id", 4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := ds.Upsert(monument(ascii(i), float64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if ds.Len() != 100 {
		t.Fatalf("Len = %d", ds.Len())
	}
	// Every partition should own some records under hash routing.
	for i := 0; i < ds.NumPartitions(); i++ {
		if ds.Partition(i).Len() == 0 {
			t.Errorf("partition %d empty — hash routing is skewed", i)
		}
	}
	got, ok := ds.Get(adm.String(ascii(7)))
	if !ok || got.Field("monument_id").StringVal() != ascii(7) {
		t.Fatalf("Get = %v,%v", got, ok)
	}
	if !ds.Delete(adm.String(ascii(7))) {
		t.Error("delete failed")
	}
	if _, ok := ds.Get(adm.String(ascii(7))); ok {
		t.Error("deleted record visible")
	}
}

func ascii(i int) string { return string(rune('A'+i/26)) + string(rune('a'+i%26)) }

func TestDatasetValidationOnWrite(t *testing.T) {
	ds, _ := NewDataset("m", monumentType(), "monument_id", 2, DefaultOptions())
	// Coercion: JSON-ish [x,y] array becomes a point.
	rec := adm.ObjectValue(adm.ObjectFromPairs(
		"monument_id", adm.String("x"),
		"monument_location", adm.Array([]adm.Value{adm.Double(1), adm.Double(2)}),
	))
	if err := ds.Upsert(rec); err != nil {
		t.Fatal(err)
	}
	got, _ := ds.Get(adm.String("x"))
	if got.Field("monument_location").Kind() != adm.KindPoint {
		t.Errorf("location not coerced: %v", got.Field("monument_location").Kind())
	}
	// Missing required field fails.
	bad := adm.ObjectValue(adm.ObjectFromPairs("monument_id", adm.String("y")))
	if err := ds.Upsert(bad); err == nil {
		t.Error("missing required field should fail validation")
	}
	// Missing primary key fails.
	nopk := adm.ObjectValue(adm.ObjectFromPairs("monument_location", adm.Point(0, 0)))
	if err := ds.Upsert(nopk); err == nil {
		t.Error("missing primary key must be rejected")
	}
}

func TestDatasetConstructorValidation(t *testing.T) {
	if _, err := NewDataset("d", nil, "id", 0, DefaultOptions()); err == nil {
		t.Error("zero partitions must be rejected")
	}
	if _, err := NewDataset("d", nil, "", 2, DefaultOptions()); err == nil {
		t.Error("empty primary key must be rejected")
	}
}

func TestDatasetRTreeIndex(t *testing.T) {
	ds, _ := NewDataset("monumentList", monumentType(), "monument_id", 3, DefaultOptions())
	for i := 0; i < 200; i++ {
		ds.Upsert(monument(ascii(i), float64(i%20), float64(i/20)))
	}
	if err := ds.CreateRTreeIndex("mloc", FieldRectExtractor("monument_location")); err != nil {
		t.Fatal(err)
	}
	if err := ds.CreateRTreeIndex("mloc", FieldRectExtractor("monument_location")); err == nil {
		t.Error("duplicate index name must be rejected")
	}
	idxs := ds.RTreeIndexes("mloc")
	if len(idxs) != 3 {
		t.Fatalf("expected 3 per-partition indexes, got %d", len(idxs))
	}
	// Probe all partitions for monuments near (5,5).
	query := spatial.Circle{Center: spatial.Point{X: 5, Y: 5}, R: 1.5}
	found := 0
	for _, ix := range idxs {
		for _, pk := range ix.Search(query.Bounds()) {
			m, ok := ds.Get(pk)
			if !ok {
				t.Fatalf("index returned dangling pk %v", pk)
			}
			x, y := m.Field("monument_location").PointVal()
			if query.ContainsPoint(spatial.Point{X: x, Y: y}) {
				found++
			}
		}
	}
	// Points on integer grid within 1.5 of (5,5): (4,4..6),(5,4..6),(6,4..6) minus corners >1.5.
	want := 0
	for i := 0; i < 200; i++ {
		x, y := float64(i%20), float64(i/20)
		if query.ContainsPoint(spatial.Point{X: x, Y: y}) {
			want++
		}
	}
	if found != want {
		t.Errorf("index probe found %d, want %d", found, want)
	}
	// Index must track updates: move a monument, old location disappears.
	ds.Upsert(monument(ascii(0), 100, 100))
	found = 0
	for _, ix := range idxs {
		for _, pk := range ix.Search(spatial.NewRect(99, 99, 101, 101)) {
			_ = pk
			found++
		}
	}
	if found != 1 {
		t.Errorf("moved monument should be indexed once at new location, found %d", found)
	}
	// FirstRTreeIndex finds it.
	if got := ds.FirstRTreeIndex(); len(got) != 3 {
		t.Errorf("FirstRTreeIndex returned %d partitions", len(got))
	}
}

func TestDatasetBTreeIndex(t *testing.T) {
	dt := adm.MustDatatype("SafetyRatingType", true, []adm.FieldDef{
		{Name: "country_code", Kind: adm.KindString},
		{Name: "safety_rating", Kind: adm.KindString},
	})
	ds, _ := NewDataset("SafetyRatings", dt, "country_code", 2, DefaultOptions())
	mk := func(cc, rating string) adm.Value {
		return adm.ObjectValue(adm.ObjectFromPairs(
			"country_code", adm.String(cc), "safety_rating", adm.String(rating)))
	}
	ds.Upsert(mk("US", "3"))
	ds.Upsert(mk("FR", "4"))
	ds.Upsert(mk("DE", "4"))
	if err := ds.CreateBTreeIndex("byRating", FieldKeyExtractor("safety_rating")); err != nil {
		t.Fatal(err)
	}
	// Collect across partitions.
	lookup := func(rating string) int {
		n := 0
		for i := 0; i < ds.NumPartitions(); i++ {
			// indexes map is internal; use the secondary attached to partitions
			// via a fresh probe through RTreeIndexes-equivalent path.
			_ = i
		}
		ds.ScanAll(func(_, r adm.Value) bool {
			if r.Field("safety_rating").StringVal() == rating {
				n++
			}
			return true
		})
		return n
	}
	if lookup("4") != 2 {
		t.Errorf("expected 2 records rated 4")
	}
	// Update changes index membership.
	ds.Upsert(mk("US", "4"))
	if lookup("4") != 3 {
		t.Errorf("update should move US to rating 4")
	}
}

func TestBTreeIndexDirect(t *testing.T) {
	ix := NewBTreeIndex("byCountry", FieldKeyExtractor("country"))
	mk := func(id int64, c string) adm.Value {
		return adm.ObjectValue(adm.ObjectFromPairs("id", adm.Int(id), "country", adm.String(c)))
	}
	ix.Insert(adm.Int(1), mk(1, "US"))
	ix.Insert(adm.Int(2), mk(2, "US"))
	ix.Insert(adm.Int(3), mk(3, "FR"))
	if got := ix.Lookup(adm.String("US")); len(got) != 2 {
		t.Fatalf("Lookup(US) = %d entries", len(got))
	}
	if got := ix.Lookup(adm.String("XX")); got != nil {
		t.Fatalf("Lookup miss should be nil, got %v", got)
	}
	ix.Delete(adm.Int(1), mk(1, "US"))
	if got := ix.Lookup(adm.String("US")); len(got) != 1 || got[0].IntVal() != 2 {
		t.Fatalf("after delete Lookup(US) = %v", got)
	}
	ix.Delete(adm.Int(3), mk(3, "FR"))
	if got := ix.Lookup(adm.String("FR")); got != nil {
		t.Fatal("empty posting list should be removed")
	}
	// Range lookup.
	ix.Insert(adm.Int(4), mk(4, "AA"))
	ix.Insert(adm.Int(5), mk(5, "MM"))
	ix.Insert(adm.Int(6), mk(6, "ZZ"))
	got := ix.LookupRange(adm.String("AA"), adm.String("US"))
	if len(got) != 3 { // AA, MM, US(2)
		t.Fatalf("LookupRange = %v", got)
	}
	// Records without the field are skipped, not indexed.
	ix.Insert(adm.Int(9), adm.ObjectValue(adm.ObjectFromPairs("id", adm.Int(9))))
	if got := ix.Lookup(adm.Missing()); got != nil {
		t.Error("missing key should not be indexed")
	}
}

func TestDatasetSnapshotAllStable(t *testing.T) {
	ds, _ := NewDataset("m", monumentType(), "monument_id", 3, DefaultOptions())
	for i := 0; i < 90; i++ {
		ds.Upsert(monument(ascii(i), 1, 1))
	}
	snaps := ds.SnapshotAll()
	for i := 90; i < 180; i++ {
		ds.Upsert(monument(ascii(i), 2, 2))
	}
	total := 0
	for _, s := range snaps {
		total += s.Len()
	}
	if total != 90 {
		t.Errorf("snapshots saw %d records, want 90", total)
	}
	if ds.Len() != 180 {
		t.Errorf("dataset should now hold 180, has %d", ds.Len())
	}
}

func TestDatasetStatsAggregation(t *testing.T) {
	ds, _ := NewDataset("m", monumentType(), "monument_id", 2, DefaultOptions())
	ds.Upsert(monument("a", 0, 0))
	ds.Upsert(monument("b", 1, 1))
	ds.Get(adm.String("a"))
	st := ds.Stats()
	if st.Upserts != 2 || st.Gets != 1 {
		t.Errorf("aggregated stats = %+v", st)
	}
}

func TestDatasetScanCursor(t *testing.T) {
	ds, err := NewDataset("D", nil, "id", 3, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 400; i++ {
		if err := ds.Upsert(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	ds.Delete(adm.Int(7))
	seen := make(map[int64]bool)
	sc := ds.Scan()
	for {
		k, r, ok := sc.Next()
		if !ok {
			break
		}
		if seen[k.IntVal()] {
			t.Fatalf("key %d seen twice", k.IntVal())
		}
		if r.Field("id").IntVal() != k.IntVal() {
			t.Fatalf("key %d carries record %v", k.IntVal(), r)
		}
		seen[k.IntVal()] = true
	}
	if len(seen) != 399 || seen[7] {
		t.Fatalf("scan cursor saw %d records (deleted 7 present: %v)", len(seen), seen[7])
	}
}
