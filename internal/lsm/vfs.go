package lsm

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the filesystem seam under the durable LSM layer: the WAL,
// run-file, and manifest writers perform every filesystem operation
// through it. Production uses NewOSFS; tests substitute MemFS, whose
// synced-prefix crash model and fault injection (fail after N writes,
// torn final write, failing fsync) drive the crash-recovery suite.
//
// All paths are slash-separated and interpreted by the implementation
// (absolute OS paths for NewOSFS, an internal namespace for MemFS).
type FS interface {
	// Create opens name for reading and appending, truncating any
	// existing content.
	Create(name string) (File, error)
	// Open opens an existing file for reading and appending.
	Open(name string) (File, error)
	// Remove deletes a file. Open handles keep working (POSIX unlink
	// semantics).
	Remove(name string) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// List returns the names (not paths) of the files directly inside
	// dir, sorted.
	List(dir string) ([]string, error)
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string) error
	// SyncDir makes dir's entries (creates, renames, removes) durable.
	SyncDir(dir string) error
}

// File is an append-only writable, randomly readable file handle.
// Write always appends at the current end; ReadAt is safe for
// concurrent use (run readers share one handle across query
// goroutines).
type File interface {
	Write(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	// Truncate discards everything past size (recovery cuts torn WAL
	// tails with it).
	Truncate(size int64) error
	Sync() error
	Close() error
}

// readFileAll reads a whole file through the FS seam.
func readFileAll(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && size > 0 {
		return nil, err
	}
	return buf, nil
}

// --- OS implementation ---

// NewOSFS returns the production FS backed by the operating system.
func NewOSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &osFile{f: f, size: st.Size()}, nil
}

func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }

func (osFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms cannot fsync a directory; that is a durability
	// gap of the platform, not an error the storage layer can act on.
	if err := d.Sync(); err != nil && !errors.Is(err, fs.ErrInvalid) {
		return err
	}
	return nil
}

// osFile serializes appends behind a mutex (WAL leader writes and
// flusher writes never share a file, but the contract is safer to
// enforce than to document) while leaving ReadAt lock-free.
type osFile struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

func (f *osFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.f.WriteAt(p, f.size)
	f.size += int64(n)
	return n, err
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

func (f *osFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size, nil
}

func (f *osFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.size = size
	return nil
}

func (f *osFile) Sync() error  { return f.f.Sync() }
func (f *osFile) Close() error { return f.f.Close() }

// --- in-memory implementation with crash semantics ---

// ErrInjected is returned by MemFS operations killed by fault
// injection; the crash-recovery suite treats it as the moment the
// process died.
var ErrInjected = errors.New("lsm: injected fault")

// MemFS is an in-memory FS with a page-cache crash model: every file
// remembers the length up to which it has been fsynced, and Crash()
// produces the disk image a real machine would reboot to — each file
// cut back to its synced prefix. Renames model rename+parent-fsync as
// atomic and durable (the manifest protocol syncs the temp file before
// renaming over MANIFEST, so the window a real dir-sync closes is
// already covered there).
//
// Fault injection: FailWritesAfter arms a countdown across all Write
// calls — the failing write applies only a torn prefix, like a crash
// mid-write — and FailSyncs makes every Sync fail without advancing
// the synced length.
type MemFS struct {
	mu     sync.Mutex
	files  map[string]*memFile
	writes int // total successful Write calls, for choosing injection points

	writeBudget int // -1: unlimited; 0: next write fails
	tornBytes   int // bytes of the failing write that still land
	syncFail    bool
}

type memFile struct {
	mu     sync.Mutex
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem with no faults armed.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), writeBudget: -1}
}

// FailWritesAfter arms the write countdown: the next n Write calls
// succeed, then every later Write fails with ErrInjected after
// applying at most torn bytes of its buffer (0 = nothing lands: a
// clean kill; >0 = a torn final record).
func (m *MemFS) FailWritesAfter(n, torn int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeBudget = n
	m.tornBytes = torn
}

// FailSyncs makes every Sync call fail with ErrInjected (without
// making anything durable) when fail is true.
func (m *MemFS) FailSyncs(fail bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncFail = fail
}

// Writes reports the number of successful Write calls so far — a dry
// run measures it, and the crash suite then arms FailWritesAfter at
// points sampled from [0, Writes()).
func (m *MemFS) Writes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

// Crash returns the filesystem a process would observe after a crash
// and reboot at this instant: file contents revert to their synced
// prefixes; files never synced come back empty. The receiver remains
// usable (a still-running "doomed" process keeps writing to it without
// affecting the crashed image).
func (m *MemFS) Crash() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		f.mu.Lock()
		data := make([]byte, f.synced)
		copy(data, f.data[:f.synced])
		f.mu.Unlock()
		out.files[name] = &memFile{data: data, synced: len(data)}
	}
	return out
}

func (m *MemFS) Create(name string) (File, error) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) Remove(name string) error {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.files[newname] = f
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	dir = path.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.files {
		if path.Dir(name) == dir {
			names = append(names, path.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) MkdirAll(string) error { return nil }
func (m *MemFS) SyncDir(string) error  { return nil }

// chargeWrite applies the fault-injection countdown to one Write of n
// bytes, returning how many bytes land and whether the write fails.
func (m *MemFS) chargeWrite(n int) (applied int, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.writeBudget == 0 {
		return min(m.tornBytes, n), true
	}
	if m.writeBudget > 0 {
		m.writeBudget--
	}
	m.writes++
	return n, false
}

func (m *MemFS) syncFails() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncFail
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	applied, failed := h.fs.chargeWrite(len(p))
	h.f.mu.Lock()
	h.f.data = append(h.f.data, p[:applied]...)
	h.f.mu.Unlock()
	if failed {
		return applied, fmt.Errorf("write of %d bytes (%d applied): %w", len(p), applied, ErrInjected)
	}
	return applied, nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if off >= int64(len(h.f.data)) {
		return 0, fmt.Errorf("read at %d past end %d: %w", off, len(h.f.data), fs.ErrInvalid)
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("short read at %d: %w", off, fs.ErrInvalid)
	}
	return n, nil
}

func (h *memHandle) Size() (int64, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return int64(len(h.f.data)), nil
}

func (h *memHandle) Truncate(size int64) error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if size < int64(len(h.f.data)) {
		h.f.data = h.f.data[:size]
	}
	if h.f.synced > int(size) {
		h.f.synced = int(size)
	}
	return nil
}

func (h *memHandle) Sync() error {
	if h.fs.syncFails() {
		return fmt.Errorf("fsync: %w", ErrInjected)
	}
	h.f.mu.Lock()
	h.f.synced = len(h.f.data)
	h.f.mu.Unlock()
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}

// joinPath joins FS path elements with forward slashes; the OS
// implementation accepts them on every supported platform
// (filepath.Join would also fold them, but storage paths stay
// slash-separated for MemFS compatibility).
func joinPath(elem ...string) string {
	joined := path.Join(elem...)
	if filepath.Separator != '/' && strings.Contains(joined, "\\") {
		joined = filepath.ToSlash(joined)
	}
	return joined
}
