package lsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"

	"github.com/ideadb/idea/internal/adm"
)

// The manifest is the durable root of a partition directory: it names
// the run files that make up the on-disk LSM (oldest first), the WAL
// position they cover, and the next file sequence number. It is
// replaced atomically (write tmp, fsync, rename, fsync dir), so a
// crash at any point leaves either the old or the new manifest — never
// a torn one. Run files and WAL segments not reachable from the
// manifest are garbage from an interrupted flush or compaction and are
// deleted on open.
//
// Only the flusher goroutine writes the manifest, so stores need no
// locking beyond the partition's own flush serialization.
const (
	manifestName    = "MANIFEST"
	manifestTmpName = "MANIFEST.tmp"
	manifestVersion = 1
)

type manifest struct {
	Version    int       `json:"version"`
	FlushedLSN uint64    `json:"flushed_lsn"`
	NextSeq    uint64    `json:"next_file_seq"`
	Runs       []runMeta `json:"runs"` // oldest first
	// Checkpoints carries the feed-resume offsets (PutCheckpoint) across
	// WAL truncation: a checkpoint lives in the WAL like any entry, so
	// before the flusher truncates the log it snapshots the in-memory
	// checkpoint table here. Recovery seeds from the manifest, then WAL
	// replay overwrites with anything newer.
	Checkpoints map[string]uint64 `json:"checkpoints,omitempty"`
}

type runMeta struct {
	File    string `json:"file"`
	MaxLSN  uint64 `json:"max_lsn"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	// FirstKey/LastKey are the run's key-range fences (adm binary
	// encoding; JSON base64). Recovery cross-checks them against the
	// fences derived from the run file itself — a mismatch means the
	// manifest references a file it did not describe. Absent (nil) in
	// manifests written before fences existed and for empty runs.
	FirstKey []byte `json:"first_key,omitempty"`
	LastKey  []byte `json:"last_key,omitempty"`
}

// runMetaFor describes a freshly written run for the manifest,
// including its key-range fences.
func runMetaFor(name string, maxLSN uint64, rf *runFile) runMeta {
	rm := runMeta{File: name, MaxLSN: maxLSN, Entries: rf.entries, Bytes: rf.size}
	if len(rf.blocks) > 0 {
		rm.FirstKey = adm.AppendBinary(nil, rf.firstKey)
		rm.LastKey = adm.AppendBinary(nil, rf.lastKey)
	}
	return rm
}

// loadManifest reads the manifest from dir. A missing manifest is a
// fresh partition and yields an empty manifest, not an error.
func loadManifest(fsys FS, dir string) (manifest, error) {
	var m manifest
	data, err := readFileAll(fsys, joinPath(dir, manifestName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			m.Version = manifestVersion
			m.NextSeq = 1
			return m, nil
		}
		return m, fmt.Errorf("lsm: manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("lsm: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("lsm: manifest: unsupported version %d", m.Version)
	}
	if m.NextSeq == 0 {
		m.NextSeq = 1
	}
	return m, nil
}

// storeManifest atomically replaces the manifest in dir.
func storeManifest(fsys FS, dir string, m manifest) error {
	m.Version = manifestVersion
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	tmp := joinPath(dir, manifestTmpName)
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	if err := fsys.Rename(tmp, joinPath(dir, manifestName)); err != nil {
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	return nil
}
