package lsm

import (
	"fmt"
	"time"
)

// Background flush and compaction for durable partitions.
//
// The flusher goroutine owns every manifest write, which gives the
// durability protocol a single serialization point:
//
//  1. flush: write the oldest frozen memtable as a run file (file
//     fsync + dir sync), commit it into the manifest (tmp + rename),
//     swap the in-memory component for its run-backed twin, then
//     truncate WAL segments the manifest now covers;
//  2. compact: merge a size-tiered window of adjacent runs into one,
//     commit the replacement manifest, swap components, delete the
//     input files.
//
// Every step is ordered so that a crash between any two leaves a
// recoverable image: a run file not yet in the manifest is an orphan
// (deleted at open), a manifest lacking a just-written run still has
// the covering WAL tail (replayed at open), and input runs are removed
// only after the manifest stopped referencing them.

const (
	// compactionMinWidth is how many similar-sized adjacent runs it
	// takes to trigger a tiered compaction.
	compactionMinWidth = 4
	// compactionRatio bounds the size spread within one tier: a window
	// qualifies while max(bytes) <= ratio * min(bytes).
	compactionRatio = 4.0
)

func runFileName(seq uint64) string { return fmt.Sprintf("run-%06d.run", seq) }

// signalFlushLocked nudges the flusher; called with p.mu held (which is
// what makes the closed check race-free against Close).
func (p *Partition) signalFlushLocked() {
	if p.closed {
		return
	}
	select {
	case p.flushC <- struct{}{}:
	default: // a wake-up is already queued
	}
}

// flusher is the background goroutine started by OpenPartition. It
// drains flush work, then considers compaction, for every wake-up.
func (p *Partition) flusher() {
	defer close(p.flusherDone)
	for range p.flushC {
		for {
			did, err := p.flushOnce()
			if err != nil {
				p.fail(err)
				break
			}
			if !did {
				break
			}
		}
		for {
			did, err := p.compactOnce()
			if err != nil {
				p.fail(err)
				break
			}
			if !did {
				break
			}
		}
	}
}

// oldestFrozenLocked returns the oldest not-yet-persisted component.
// Components are newest-first and flushes proceed oldest-first, so
// run-backed components always form the suffix of the slice.
func (p *Partition) oldestFrozenLocked() *component {
	for i := len(p.components) - 1; i >= 0; i-- {
		if p.components[i].run == nil {
			return p.components[i]
		}
	}
	return nil
}

// flushOnce persists the oldest frozen component as a run file. It
// reports whether there was anything to flush.
func (p *Partition) flushOnce() (bool, error) {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()

	p.mu.RLock()
	c := p.oldestFrozenLocked()
	p.mu.RUnlock()
	if c == nil {
		return false, nil
	}

	// The component is immutable; write it without any partition lock.
	seq := p.man.NextSeq
	name := runFileName(seq)
	rf, err := writeRun(p.fs, p.dir, name, []*component{c}, false, p.renv)
	if err != nil {
		return false, fmt.Errorf("lsm: flush: %w", err)
	}

	man := p.man
	man.NextSeq = seq + 1
	man.FlushedLSN = c.upToLSN
	man.Runs = append(append([]runMeta(nil), man.Runs...), runMetaFor(name, c.upToLSN, rf))
	// Snapshot the checkpoint table before the WAL truncation below can
	// drop the segments the checkpoint entries live in. Including
	// checkpoints newer than FlushedLSN is safe: a checkpoint is only
	// written after the records it covers were group-committed.
	man.Checkpoints = p.checkpointsSnapshot()
	if err := storeManifest(p.fs, p.dir, man); err != nil {
		rf.close()
		return false, fmt.Errorf("lsm: flush: %w", err)
	}
	p.man = man

	// Swap the frozen tree for its run-backed twin. The component
	// pointer is replaced, never mutated: snapshots that copied the old
	// pointer keep reading the tree.
	p.mu.Lock()
	for i, pc := range p.components {
		if pc == c {
			p.components[i] = &component{run: rf, upToLSN: c.upToLSN, bytes: rf.size}
			break
		}
	}
	p.stats.FlushedRuns++
	p.mu.Unlock()

	// The manifest covers everything at or below FlushedLSN; the WAL
	// segments wholly under it are dead. Truncation failure is not a
	// durability problem (just disk amplification), but it is still an
	// IO error worth surfacing.
	if err := p.wal.TruncateTo(man.FlushedLSN); err != nil {
		return false, fmt.Errorf("lsm: wal truncate: %w", err)
	}
	return true, nil
}

// pickCompaction chooses a window of adjacent runs to merge, on the
// oldest-first manifest order: the longest newest suffix whose sizes
// stay within compactionRatio of each other, if it is at least
// compactionMinWidth wide — plain size-tiering, newest tier first.
// When the run count exceeds maxRuns the whole level merges regardless
// (the read-amplification backstop).
func pickCompaction(runs []runMeta, maxRuns int) (lo, hi int, ok bool) {
	n := len(runs)
	if n < 2 {
		return 0, 0, false
	}
	if n > maxRuns {
		return 0, n, true
	}
	start := n - 1
	maxB, minB := runs[start].Bytes, runs[start].Bytes
	for i := n - 2; i >= 0; i-- {
		b := runs[i].Bytes
		nmax, nmin := max(maxB, b), min(minB, b)
		if float64(nmax) > compactionRatio*float64(max(nmin, 1)) {
			break
		}
		start, maxB, minB = i, nmax, nmin
	}
	if n-start >= compactionMinWidth {
		return start, n, true
	}
	return 0, 0, false
}

// compactOnce merges one size-tiered window of adjacent run files into
// a single run. It reports whether a compaction ran.
func (p *Partition) compactOnce() (bool, error) {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()

	lo, hi, ok := pickCompaction(p.man.Runs, p.opts.MaxComponents)
	if !ok {
		return false, nil
	}

	// Map the manifest window (oldest first) onto the component slice
	// (newest first): run-backed components are its suffix, in reverse
	// manifest order.
	p.mu.RLock()
	firstRun := len(p.components)
	for firstRun > 0 && p.components[firstRun-1].run != nil {
		firstRun--
	}
	nRuns := len(p.components) - firstRun
	if nRuns != len(p.man.Runs) {
		p.mu.RUnlock()
		return false, fmt.Errorf("lsm: compact: %d run components vs %d manifest runs", nRuns, len(p.man.Runs))
	}
	// Manifest index i lives at component index len(components)-1-i.
	comps := make([]*component, 0, hi-lo)
	for i := hi - 1; i >= lo; i-- {
		comps = append(comps, p.components[len(p.components)-1-i])
	}
	p.mu.RUnlock()

	// Tombstones may only vanish when nothing older could be shadowed.
	dropTombstones := lo == 0
	seq := p.man.NextSeq
	name := runFileName(seq)
	rf, err := writeRun(p.fs, p.dir, name, comps, dropTombstones, p.renv)
	if err != nil {
		return false, fmt.Errorf("lsm: compact: %w", err)
	}

	man := p.man
	man.NextSeq = seq + 1
	merged := runMetaFor(name, man.Runs[hi-1].MaxLSN, rf)
	newRuns := make([]runMeta, 0, len(man.Runs)-(hi-lo)+1)
	newRuns = append(newRuns, man.Runs[:lo]...)
	newRuns = append(newRuns, merged)
	newRuns = append(newRuns, man.Runs[hi:]...)
	oldRuns := man.Runs[lo:hi]
	man.Runs = newRuns
	man.Checkpoints = p.checkpointsSnapshot()
	if err := storeManifest(p.fs, p.dir, man); err != nil {
		rf.close()
		return false, fmt.Errorf("lsm: compact: %w", err)
	}
	p.man = man

	// Splice the merged component in place of its inputs (they sit
	// contiguously; newer memory components may have been prepended in
	// the meantime, which does not move the suffix mapping).
	p.mu.Lock()
	loC := len(p.components) - hi // component index of manifest run hi-1
	hiC := len(p.components) - lo // one past manifest run lo
	for _, pc := range p.components[loC:hiC] {
		if pc.shared {
			// A snapshot observed this component and snapshots carry no
			// close protocol, so the file must stay open until partition
			// Close.
			p.retired = append(p.retired, pc.run)
		} else {
			// No snapshot can reach it and point lookups hold p.mu (we
			// hold it exclusively); any cursor mid-run keeps its own file
			// reference. Drop the owner reference now so the file closes
			// as soon as the last reader finishes.
			pc.run.retire()
		}
	}
	spliced := make([]*component, 0, len(p.components)-(hi-lo)+1)
	spliced = append(spliced, p.components[:loC]...)
	spliced = append(spliced, &component{run: rf, upToLSN: merged.MaxLSN, bytes: rf.size})
	spliced = append(spliced, p.components[hiC:]...)
	p.components = spliced
	p.stats.Merges++
	p.mu.Unlock()

	// The manifest no longer references the inputs; open handles (ours
	// in retired, any live snapshot's) keep reading the unlinked files.
	for _, rm := range oldRuns {
		if err := p.fs.Remove(joinPath(p.dir, rm.File)); err != nil {
			return false, fmt.Errorf("lsm: compact: %w", err)
		}
	}
	return true, nil
}

// Flush freezes the current memtable (if non-empty) and signals the
// flusher. Durable partitions only.
func (p *Partition) Flush() {
	p.mu.Lock()
	p.freezeLocked()
	p.mu.Unlock()
}

// WaitForFlush blocks until every frozen component has been persisted
// as a run file (or a storage error stops progress). Tests and
// benchmarks use it to observe flush throughput.
func (p *Partition) WaitForFlush() error {
	for {
		if err := p.Err(); err != nil {
			return err
		}
		p.mu.RLock()
		frozen := p.oldestFrozenLocked() != nil
		p.mu.RUnlock()
		if !frozen {
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// FlushedLSN returns the durable-run watermark: every WAL entry at or
// below it is contained in a persisted run file.
func (p *Partition) FlushedLSN() uint64 {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	return p.man.FlushedLSN
}

// Runs reports how many on-disk run files back the partition.
func (p *Partition) Runs() int {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	return len(p.man.Runs)
}
