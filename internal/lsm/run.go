package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
)

// Run files are the on-disk form of an immutable LSM component: the
// sorted key/record items of a frozen memtable (or of a compaction
// merge), laid out in CRC-framed blocks with a first-key block index
// so point lookups touch one block and scans stream block by block
// through the same runCursor/k-way merge machinery that walks
// in-memory components.
//
// # On-disk format (version 1)
//
//	run      := header block* index footer
//	header   := "IDEARUN" version:1B
//	block    := payloadLen:4B-LE crc32c(payload):4B-LE payload
//	payload  := count:uvarint (key:adm-binary record:adm-binary){count}
//	index    := payloadLen:4B-LE crc32c(payload):4B-LE ipayload
//	ipayload := entries:uvarint blocks:uvarint
//	            (off:uvarint len:uvarint firstKey:adm-binary){blocks}
//	footer   := indexOff:8B-LE "IDEARUNF"
//
// Tombstones (MISSING records) are stored: a run flushed from a
// memtable must shadow older runs. Only a compaction that includes the
// oldest run drops them.
const (
	runMagic       = "IDEARUN"
	runVersion     = 1
	runHeaderSize  = len(runMagic) + 1
	runFooterMagic = "IDEARUNF"
	runFooterSize  = 8 + len(runFooterMagic)
	runBlockHeader = 8 // payload length + CRC32C

	// runBlockTarget is the block payload size a writer flushes at.
	// Small enough that typical test datasets span multiple blocks.
	runBlockTarget = 16 << 10
)

// runWriter streams sorted items into a run file.
type runWriter struct {
	f       File
	off     int64
	scratch []byte // current block payload being built (entries only)
	count   int    // entries in the current block
	first   []byte // encoded first key of the current block
	frame   []byte // assembly buffer for framed blocks
	blocks  []blockMeta
	entries int
}

// blockMeta locates one block and remembers its first key.
type blockMeta struct {
	off      int64
	length   int
	firstKey adm.Value
}

func newRunWriter(f File) *runWriter {
	return &runWriter{f: f}
}

func (w *runWriter) writeHeader() error {
	hdr := append([]byte(runMagic), runVersion)
	if _, err := w.f.Write(hdr); err != nil {
		return err
	}
	w.off = int64(runHeaderSize)
	return nil
}

func (w *runWriter) add(it index.Item) error {
	if w.count == 0 {
		w.first = adm.AppendBinary(w.first[:0], it.Key)
	}
	w.scratch = adm.AppendBinary(w.scratch, it.Key)
	w.scratch = adm.AppendBinary(w.scratch, it.Val)
	w.count++
	w.entries++
	if len(w.scratch) >= runBlockTarget {
		return w.flushBlock()
	}
	return nil
}

func (w *runWriter) flushBlock() error {
	if w.count == 0 {
		return nil
	}
	w.frame = w.frame[:0]
	w.frame = append(w.frame, 0, 0, 0, 0, 0, 0, 0, 0)
	w.frame = binary.AppendUvarint(w.frame, uint64(w.count))
	w.frame = append(w.frame, w.scratch...)
	payload := w.frame[runBlockHeader:]
	binary.LittleEndian.PutUint32(w.frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.frame[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.f.Write(w.frame); err != nil {
		return err
	}
	firstKey, _, err := adm.DecodeBinary(w.first)
	if err != nil {
		return fmt.Errorf("lsm: run writer first key: %w", err)
	}
	w.blocks = append(w.blocks, blockMeta{off: w.off, length: len(w.frame), firstKey: firstKey})
	w.off += int64(len(w.frame))
	w.scratch = w.scratch[:0]
	w.count = 0
	return nil
}

// finish flushes the tail block, writes the index and footer, and
// fsyncs. It returns the total entry count and final file size.
func (w *runWriter) finish() (entries int, size int64, err error) {
	if err := w.flushBlock(); err != nil {
		return 0, 0, err
	}
	w.frame = w.frame[:0]
	w.frame = append(w.frame, 0, 0, 0, 0, 0, 0, 0, 0)
	w.frame = binary.AppendUvarint(w.frame, uint64(w.entries))
	w.frame = binary.AppendUvarint(w.frame, uint64(len(w.blocks)))
	for _, b := range w.blocks {
		w.frame = binary.AppendUvarint(w.frame, uint64(b.off))
		w.frame = binary.AppendUvarint(w.frame, uint64(b.length))
		w.frame = adm.AppendBinary(w.frame, b.firstKey)
	}
	payload := w.frame[runBlockHeader:]
	binary.LittleEndian.PutUint32(w.frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.frame[4:], crc32.Checksum(payload, crcTable))
	indexOff := w.off
	if _, err := w.f.Write(w.frame); err != nil {
		return 0, 0, err
	}
	w.off += int64(len(w.frame))
	var footer [runFooterSize]byte
	binary.LittleEndian.PutUint64(footer[:], uint64(indexOff))
	copy(footer[8:], runFooterMagic)
	if _, err := w.f.Write(footer[:]); err != nil {
		return 0, 0, err
	}
	w.off += int64(runFooterSize)
	if err := w.f.Sync(); err != nil {
		return 0, 0, err
	}
	return w.entries, w.off, nil
}

// writeRun streams a merge of comps (newest first) into a new run file
// at pathname and makes it durable (file fsync + directory sync). It
// returns an open reader over the written run.
func writeRun(fsys FS, dir, name string, comps []*component, dropTombstones bool) (*runFile, error) {
	pathname := joinPath(dir, name)
	f, err := fsys.Create(pathname)
	if err != nil {
		return nil, err
	}
	w := newRunWriter(f)
	if err := w.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	m := newMergeCursor(comps, dropTombstones)
	for {
		it, ok := m.next()
		if !ok {
			break
		}
		if err := w.add(it); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, _, err := w.finish(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return nil, err
	}
	return openRun(fsys, dir, name)
}

// runFile is an open, immutable on-disk run: the block index lives in
// memory, records are decoded from blocks on demand. Point lookups and
// cursors are safe for concurrent use (reads go through ReadAt).
type runFile struct {
	name    string
	f       File
	size    int64
	blocks  []blockMeta
	entries int

	// readErr records the first IO/corruption error hit by a reader;
	// lookups degrade to not-found (the partition surfaces the error
	// via Err()/Close()).
	readErr atomic.Pointer[error]
}

// openRun opens and validates a run file, loading its block index.
func openRun(fsys FS, dir, name string) (*runFile, error) {
	f, err := fsys.Open(joinPath(dir, name))
	if err != nil {
		return nil, err
	}
	r := &runFile{name: name, f: f}
	if err := r.load(); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: run %s: %w", name, err)
	}
	return r, nil
}

func (r *runFile) load() error {
	size, err := r.f.Size()
	if err != nil {
		return err
	}
	r.size = size
	if size < int64(runHeaderSize+runFooterSize) {
		return fmt.Errorf("truncated (size %d)", size)
	}
	var hdr [runHeaderSize]byte
	if _, err := r.f.ReadAt(hdr[:], 0); err != nil {
		return err
	}
	if string(hdr[:len(runMagic)]) != runMagic {
		return fmt.Errorf("bad magic")
	}
	if hdr[len(runMagic)] != runVersion {
		return fmt.Errorf("unsupported version %d", hdr[len(runMagic)])
	}
	var footer [runFooterSize]byte
	if _, err := r.f.ReadAt(footer[:], size-int64(runFooterSize)); err != nil {
		return err
	}
	if string(footer[8:]) != runFooterMagic {
		return fmt.Errorf("bad footer magic (torn write?)")
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[:]))
	if indexOff < int64(runHeaderSize) || indexOff >= size-int64(runFooterSize) {
		return fmt.Errorf("index offset %d out of range", indexOff)
	}
	payload, err := r.readFrame(indexOff, size-int64(runFooterSize)-indexOff)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	entries, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("index: bad entry count")
	}
	nblocks, bn := binary.Uvarint(payload[n:])
	if bn <= 0 || nblocks > uint64(size) {
		return fmt.Errorf("index: bad block count")
	}
	r.entries = int(entries)
	pos := n + bn
	r.blocks = make([]blockMeta, 0, nblocks)
	for i := uint64(0); i < nblocks; i++ {
		off, on := binary.Uvarint(payload[pos:])
		if on <= 0 {
			return fmt.Errorf("index: block %d offset", i)
		}
		pos += on
		length, ln := binary.Uvarint(payload[pos:])
		if ln <= 0 {
			return fmt.Errorf("index: block %d length", i)
		}
		pos += ln
		key, kn, err := adm.DecodeBinary(payload[pos:])
		if err != nil {
			return fmt.Errorf("index: block %d first key: %w", i, err)
		}
		pos += kn
		r.blocks = append(r.blocks, blockMeta{off: int64(off), length: int(length), firstKey: key})
	}
	return nil
}

// readFrame reads and CRC-validates one framed region (block or index)
// of at most maxLen bytes starting at off, returning the payload.
func (r *runFile) readFrame(off, maxLen int64) ([]byte, error) {
	var hdr [runBlockHeader]byte
	if _, err := r.f.ReadAt(hdr[:], off); err != nil {
		return nil, err
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[:]))
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if plen <= 0 || plen > maxLen-runBlockHeader {
		return nil, fmt.Errorf("frame length %d out of range", plen)
	}
	payload := make([]byte, plen)
	if _, err := r.f.ReadAt(payload, off+runBlockHeader); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("frame CRC mismatch at offset %d", off)
	}
	return payload, nil
}

// readBlock decodes block i's items, appending into dst.
func (r *runFile) readBlock(i int, dst []index.Item) ([]index.Item, error) {
	b := r.blocks[i]
	payload, err := r.readFrame(b.off, int64(b.length))
	if err != nil {
		return dst, err
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, fmt.Errorf("block %d: bad count", i)
	}
	pos := n
	for j := uint64(0); j < count; j++ {
		key, kn, err := adm.DecodeBinary(payload[pos:])
		if err != nil {
			return dst, fmt.Errorf("block %d entry %d: %w", i, j, err)
		}
		pos += kn
		val, vn, err := adm.DecodeBinary(payload[pos:])
		if err != nil {
			return dst, fmt.Errorf("block %d entry %d: %w", i, j, err)
		}
		pos += vn
		dst = append(dst, index.Item{Key: key, Val: val})
	}
	return dst, nil
}

func (r *runFile) fail(err error) {
	e := fmt.Errorf("lsm: run %s: %w", r.name, err)
	r.readErr.CompareAndSwap(nil, &e)
}

// err returns the sticky read error, if any.
func (r *runFile) err() error {
	if p := r.readErr.Load(); p != nil {
		return *p
	}
	return nil
}

// get performs a point lookup: binary-search the block index for the
// last block whose first key is <= key, then scan that block.
func (r *runFile) get(key adm.Value) (adm.Value, bool) {
	lo, hi := 0, len(r.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if adm.Compare(r.blocks[mid].firstKey, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return adm.Value{}, false
	}
	items, err := r.readBlock(lo-1, nil)
	if err != nil {
		r.fail(err)
		return adm.Value{}, false
	}
	a, b := 0, len(items)
	for a < b {
		mid := (a + b) / 2
		if adm.Less(items[mid].Key, key) {
			a = mid + 1
		} else {
			b = mid
		}
	}
	if a < len(items) && adm.Compare(items[a].Key, key) == 0 {
		return items[a].Val, true
	}
	return adm.Value{}, false
}

func (r *runFile) close() error { return r.f.Close() }

// runFileCursor streams a run's items block by block in key order.
type runFileCursor struct {
	r     *runFile
	block int
	items []index.Item
	pos   int
}

func (r *runFile) cursor() *runFileCursor { return &runFileCursor{r: r} }

func (c *runFileCursor) next() (index.Item, bool) {
	for {
		if c.pos < len(c.items) {
			it := c.items[c.pos]
			c.pos++
			return it, true
		}
		if c.block >= len(c.r.blocks) {
			return index.Item{}, false
		}
		items, err := c.r.readBlock(c.block, c.items[:0])
		if err != nil {
			c.r.fail(err)
			return index.Item{}, false
		}
		c.items = items
		c.pos = 0
		c.block++
	}
}
