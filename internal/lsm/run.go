package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
)

// Run files are the on-disk form of an immutable LSM component: the
// sorted key/record items of a frozen memtable (or of a compaction
// merge), laid out in CRC-framed blocks with a first-key block index
// so point lookups touch one block and scans stream block by block
// through the same runCursor/k-way merge machinery that walks
// in-memory components.
//
// # On-disk format (version 2)
//
//	run      := header block* bloom index footer
//	header   := "IDEARUN" version:1B
//	block    := payloadLen:4B-LE crc32c(payload):4B-LE payload
//	payload  := count:uvarint (key:adm-binary record:adm-binary){count}
//	bloom    := payloadLen:4B-LE crc32c(payload):4B-LE bpayload
//	bpayload := nbits:uvarint bits:(nbits/8)B
//	index    := payloadLen:4B-LE crc32c(payload):4B-LE ipayload
//	ipayload := entries:uvarint blocks:uvarint
//	            (off:uvarint len:uvarint firstKey:adm-binary){blocks}
//	            bloomOff:uvarint bloomLen:uvarint lastKey:adm-binary
//	footer   := indexOff:8B-LE "IDEARUNF"
//
// Version 1 files (no bloom section, ipayload stops after the block
// entries) remain readable: the loader treats them as bloom-absent and
// derives the last-key fence by decoding the final block once at open.
// An empty run (a compaction that dropped every entry) writes
// bloomOff=0 bloomLen=0 and a MISSING lastKey.
//
// Tombstones (MISSING records) are stored: a run flushed from a
// memtable must shadow older runs. Only a compaction that includes the
// oldest run drops them.
const (
	runMagic       = "IDEARUN"
	runVersion     = 2
	runVersionV1   = 1
	runHeaderSize  = len(runMagic) + 1
	runFooterMagic = "IDEARUNF"
	runFooterSize  = 8 + len(runFooterMagic)
	runBlockHeader = 8 // payload length + CRC32C

	// runBlockTarget is the block payload size a writer flushes at.
	// Small enough that typical test datasets span multiple blocks.
	runBlockTarget = 16 << 10
)

// runFileSeq hands out process-unique run file ids — the run half of
// the block cache key. Ids never repeat, so cache entries of a closed
// run can never alias a newer file.
var runFileSeq atomic.Uint64

// readStats counts the read-path work of one partition's run files:
// lookups skipped by key-range fences, lookups skipped by bloom
// filters, and framed block reads that actually hit the filesystem.
// Shared by every run the partition opens (including retired ones), so
// the counters survive compaction.
type readStats struct {
	fenceSkips atomic.Uint64
	bloomSkips atomic.Uint64
	blockReads atomic.Uint64
}

// runEnv is the read-path environment threaded into every run file a
// partition opens: the (cluster-shared) block cache and the partition's
// read counters. The zero value — no cache, private counters — is what
// standalone opens (tests) get.
type runEnv struct {
	cache *BlockCache
	rs    *readStats
}

// runWriter streams sorted items into a run file.
type runWriter struct {
	f       File
	off     int64
	scratch []byte // current block payload being built (entries only)
	count   int    // entries in the current block
	first   []byte // encoded first key of the current block
	last    []byte // encoded last key seen (fence)
	frame   []byte // assembly buffer for framed blocks
	blocks  []blockMeta
	entries int
	hashes  []uint64 // bloom hash per entry, in add order
}

// blockMeta locates one block and remembers its first key.
type blockMeta struct {
	off      int64
	length   int
	firstKey adm.Value
}

func newRunWriter(f File) *runWriter {
	return &runWriter{f: f}
}

func (w *runWriter) writeHeader() error {
	hdr := append([]byte(runMagic), runVersion)
	if _, err := w.f.Write(hdr); err != nil {
		return err
	}
	w.off = int64(runHeaderSize)
	return nil
}

func (w *runWriter) add(it index.Item) error {
	keyStart := len(w.scratch)
	w.scratch = adm.AppendBinary(w.scratch, it.Key)
	keyEnc := w.scratch[keyStart:]
	if w.count == 0 {
		w.first = append(w.first[:0], keyEnc...)
	}
	w.last = append(w.last[:0], keyEnc...)
	w.hashes = append(w.hashes, bloomHash(keyEnc))
	w.scratch = adm.AppendBinary(w.scratch, it.Val)
	w.count++
	w.entries++
	if len(w.scratch) >= runBlockTarget {
		return w.flushBlock()
	}
	return nil
}

func (w *runWriter) flushBlock() error {
	if w.count == 0 {
		return nil
	}
	w.frame = w.frame[:0]
	w.frame = append(w.frame, 0, 0, 0, 0, 0, 0, 0, 0)
	w.frame = binary.AppendUvarint(w.frame, uint64(w.count))
	w.frame = append(w.frame, w.scratch...)
	payload := w.frame[runBlockHeader:]
	binary.LittleEndian.PutUint32(w.frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.frame[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.f.Write(w.frame); err != nil {
		return err
	}
	firstKey, _, err := adm.DecodeBinary(w.first)
	if err != nil {
		return fmt.Errorf("lsm: run writer first key: %w", err)
	}
	w.blocks = append(w.blocks, blockMeta{off: w.off, length: len(w.frame), firstKey: firstKey})
	w.off += int64(len(w.frame))
	w.scratch = w.scratch[:0]
	w.count = 0
	return nil
}

// writeFrame CRC-frames and writes one payload already assembled in
// w.frame (which must start with 8 reserved header bytes).
func (w *runWriter) writeFrame() error {
	payload := w.frame[runBlockHeader:]
	binary.LittleEndian.PutUint32(w.frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.frame[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.f.Write(w.frame); err != nil {
		return err
	}
	w.off += int64(len(w.frame))
	return nil
}

// finish flushes the tail block, writes the bloom section, index, and
// footer, and fsyncs. It returns the total entry count and final file
// size.
func (w *runWriter) finish() (entries int, size int64, err error) {
	if err := w.flushBlock(); err != nil {
		return 0, 0, err
	}

	// Bloom section: one filter over every key written. An empty run
	// records offset 0 / length 0 (nothing to filter).
	var bloomOff, bloomLen int64
	if w.entries > 0 {
		filter := newBloomFilter(w.entries)
		for _, h := range w.hashes {
			filter.insert(h)
		}
		bloomOff = w.off
		w.frame = append(w.frame[:0], 0, 0, 0, 0, 0, 0, 0, 0)
		w.frame = filter.appendPayload(w.frame)
		if err := w.writeFrame(); err != nil {
			return 0, 0, err
		}
		bloomLen = w.off - bloomOff
	}

	w.frame = append(w.frame[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	w.frame = binary.AppendUvarint(w.frame, uint64(w.entries))
	w.frame = binary.AppendUvarint(w.frame, uint64(len(w.blocks)))
	for _, b := range w.blocks {
		w.frame = binary.AppendUvarint(w.frame, uint64(b.off))
		w.frame = binary.AppendUvarint(w.frame, uint64(b.length))
		w.frame = adm.AppendBinary(w.frame, b.firstKey)
	}
	w.frame = binary.AppendUvarint(w.frame, uint64(bloomOff))
	w.frame = binary.AppendUvarint(w.frame, uint64(bloomLen))
	if w.entries > 0 {
		w.frame = append(w.frame, w.last...)
	} else {
		w.frame = adm.AppendBinary(w.frame, adm.Missing())
	}
	indexOff := w.off
	if err := w.writeFrame(); err != nil {
		return 0, 0, err
	}
	var footer [runFooterSize]byte
	binary.LittleEndian.PutUint64(footer[:], uint64(indexOff))
	copy(footer[8:], runFooterMagic)
	if _, err := w.f.Write(footer[:]); err != nil {
		return 0, 0, err
	}
	w.off += int64(runFooterSize)
	if err := w.f.Sync(); err != nil {
		return 0, 0, err
	}
	return w.entries, w.off, nil
}

// writeRun streams a merge of comps (newest first) into a new run file
// at pathname and makes it durable (file fsync + directory sync). It
// returns an open reader over the written run, wired to env.
func writeRun(fsys FS, dir, name string, comps []*component, dropTombstones bool, env runEnv) (*runFile, error) {
	pathname := joinPath(dir, name)
	f, err := fsys.Create(pathname)
	if err != nil {
		return nil, err
	}
	w := newRunWriter(f)
	if err := w.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	m := newMergeCursor(comps, dropTombstones)
	defer m.Close()
	for {
		it, ok := m.next()
		if !ok {
			break
		}
		if err := w.add(it); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, _, err := w.finish(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return nil, err
	}
	return openRun(fsys, dir, name, env)
}

// runFile is an open, immutable on-disk run: the block index, bloom
// filter, and key-range fences live in memory; records are decoded from
// blocks on demand (through the block cache when one is wired). Point
// lookups and cursors are safe for concurrent use (reads go through
// ReadAt).
//
// # Lifecycle
//
// refs counts reasons the file must stay open: 1 for the owner (the
// partition component or retired list) plus one per live runFileCursor.
// retire drops the owner reference — compaction uses it for runs no
// snapshot can reach — and the file closes when the count hits zero, so
// a cursor mid-run keeps a retired file readable until it finishes.
// close force-closes regardless (partition Close); both paths purge the
// run's block-cache entries and are idempotent.
type runFile struct {
	name    string
	f       File
	id      uint64
	size    int64
	blocks  []blockMeta
	entries int
	version byte

	// bloom is the per-run key filter (nil for v1 files and empty runs).
	// firstKey/lastKey fence the run's key range; valid when the run has
	// at least one block.
	bloom    *bloomFilter
	firstKey adm.Value
	lastKey  adm.Value

	cache *BlockCache
	rs    *readStats

	refs   atomic.Int32
	closed atomic.Bool

	// readErr records the first IO/corruption error hit by a reader;
	// lookups degrade to not-found (the partition surfaces the error
	// via Err()/Close()).
	readErr atomic.Pointer[error]
}

// openRun opens and validates a run file, loading its block index,
// bloom filter, and fences.
func openRun(fsys FS, dir, name string, env runEnv) (*runFile, error) {
	f, err := fsys.Open(joinPath(dir, name))
	if err != nil {
		return nil, err
	}
	if env.rs == nil {
		env.rs = new(readStats)
	}
	r := &runFile{
		name:  name,
		f:     f,
		id:    runFileSeq.Add(1),
		cache: env.cache,
		rs:    env.rs,
	}
	r.refs.Store(1) // owner reference
	if err := r.load(); err != nil {
		f.Close()
		r.closed.Store(true)
		return nil, fmt.Errorf("lsm: run %s: %w", name, err)
	}
	return r, nil
}

func (r *runFile) load() error {
	size, err := r.f.Size()
	if err != nil {
		return err
	}
	r.size = size
	if size < int64(runHeaderSize+runFooterSize) {
		return fmt.Errorf("truncated (size %d)", size)
	}
	var hdr [runHeaderSize]byte
	if _, err := r.f.ReadAt(hdr[:], 0); err != nil {
		return err
	}
	if string(hdr[:len(runMagic)]) != runMagic {
		return fmt.Errorf("bad magic")
	}
	r.version = hdr[len(runMagic)]
	if r.version != runVersion && r.version != runVersionV1 {
		return fmt.Errorf("unsupported version %d", r.version)
	}
	var footer [runFooterSize]byte
	if _, err := r.f.ReadAt(footer[:], size-int64(runFooterSize)); err != nil {
		return err
	}
	if string(footer[8:]) != runFooterMagic {
		return fmt.Errorf("bad footer magic (torn write?)")
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[:]))
	if indexOff < int64(runHeaderSize) || indexOff >= size-int64(runFooterSize) {
		return fmt.Errorf("index offset %d out of range", indexOff)
	}
	payload, err := r.readFrame(indexOff, size-int64(runFooterSize)-indexOff)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	entries, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("index: bad entry count")
	}
	nblocks, bn := binary.Uvarint(payload[n:])
	if bn <= 0 || nblocks > uint64(size) {
		return fmt.Errorf("index: bad block count")
	}
	r.entries = int(entries)
	pos := n + bn
	r.blocks = make([]blockMeta, 0, nblocks)
	for i := uint64(0); i < nblocks; i++ {
		off, on := binary.Uvarint(payload[pos:])
		if on <= 0 {
			return fmt.Errorf("index: block %d offset", i)
		}
		pos += on
		length, ln := binary.Uvarint(payload[pos:])
		if ln <= 0 {
			return fmt.Errorf("index: block %d length", i)
		}
		pos += ln
		key, kn, err := adm.DecodeBinary(payload[pos:])
		if err != nil {
			return fmt.Errorf("index: block %d first key: %w", i, err)
		}
		pos += kn
		r.blocks = append(r.blocks, blockMeta{off: int64(off), length: int(length), firstKey: key})
	}
	if r.version == runVersionV1 {
		return r.loadFencesV1()
	}
	return r.loadExtrasV2(payload[pos:], indexOff)
}

// loadExtrasV2 parses the v2 index tail (bloom location + last key) and
// loads the bloom section.
func (r *runFile) loadExtrasV2(tail []byte, indexOff int64) error {
	bloomOff, n := binary.Uvarint(tail)
	if n <= 0 {
		return fmt.Errorf("index: bad bloom offset")
	}
	bloomLen, ln := binary.Uvarint(tail[n:])
	if ln <= 0 {
		return fmt.Errorf("index: bad bloom length")
	}
	lastKey, _, err := adm.DecodeBinary(tail[n+ln:])
	if err != nil {
		return fmt.Errorf("index: last key: %w", err)
	}
	if len(r.blocks) > 0 {
		r.firstKey = r.blocks[0].firstKey
		r.lastKey = lastKey
	}
	if bloomLen == 0 {
		return nil
	}
	if int64(bloomOff) < int64(runHeaderSize) || int64(bloomOff)+int64(bloomLen) > indexOff {
		return fmt.Errorf("bloom section %d+%d out of range", bloomOff, bloomLen)
	}
	payload, err := r.readFrame(int64(bloomOff), int64(bloomLen))
	if err != nil {
		return fmt.Errorf("bloom: %w", err)
	}
	bloom, err := parseBloom(payload)
	if err != nil {
		return err
	}
	r.bloom = bloom
	return nil
}

// loadFencesV1 derives the fences for a version-1 file (no persisted
// last key): firstKey from the block index, lastKey by decoding the
// final block once at open. v1 files have no bloom filter.
func (r *runFile) loadFencesV1() error {
	if len(r.blocks) == 0 {
		return nil
	}
	r.firstKey = r.blocks[0].firstKey
	items, err := r.readBlock(len(r.blocks)-1, nil)
	if err != nil {
		return fmt.Errorf("last block: %w", err)
	}
	if len(items) == 0 {
		return fmt.Errorf("last block: empty")
	}
	r.lastKey = items[len(items)-1].Key
	return nil
}

// readFrame reads and CRC-validates one framed region (block or index)
// of at most maxLen bytes starting at off, returning the payload.
func (r *runFile) readFrame(off, maxLen int64) ([]byte, error) {
	var hdr [runBlockHeader]byte
	if _, err := r.f.ReadAt(hdr[:], off); err != nil {
		return nil, err
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[:]))
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if plen <= 0 || plen > maxLen-runBlockHeader {
		return nil, fmt.Errorf("frame length %d out of range", plen)
	}
	payload := make([]byte, plen)
	if _, err := r.f.ReadAt(payload, off+runBlockHeader); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("frame CRC mismatch at offset %d", off)
	}
	return payload, nil
}

// readBlock decodes block i's items from the file, appending into dst.
func (r *runFile) readBlock(i int, dst []index.Item) ([]index.Item, error) {
	r.rs.blockReads.Add(1)
	b := r.blocks[i]
	payload, err := r.readFrame(b.off, int64(b.length))
	if err != nil {
		return dst, err
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, fmt.Errorf("block %d: bad count", i)
	}
	pos := n
	for j := uint64(0); j < count; j++ {
		key, kn, err := adm.DecodeBinary(payload[pos:])
		if err != nil {
			return dst, fmt.Errorf("block %d entry %d: %w", i, j, err)
		}
		pos += kn
		val, vn, err := adm.DecodeBinary(payload[pos:])
		if err != nil {
			return dst, fmt.Errorf("block %d entry %d: %w", i, j, err)
		}
		pos += vn
		dst = append(dst, index.Item{Key: key, Val: val})
	}
	return dst, nil
}

// cachedBlock returns block i's decoded items through the block cache:
// a hit pins and returns the resident entry; a miss decodes from the
// file and publishes the result pinned. The caller must release the
// returned entry when done with items.
func (r *runFile) cachedBlock(i int) ([]index.Item, *blockEntry, error) {
	if e, ok := r.cache.acquire(r.id, i); ok {
		return e.items, e, nil
	}
	items, err := r.readBlock(i, nil)
	if err != nil {
		return nil, nil, err
	}
	e := r.cache.insert(r.id, i, items)
	return e.items, e, nil
}

func (r *runFile) fail(err error) {
	e := fmt.Errorf("lsm: run %s: %w", r.name, err)
	r.readErr.CompareAndSwap(nil, &e)
}

// err returns the sticky read error, if any.
func (r *runFile) err() error {
	if p := r.readErr.Load(); p != nil {
		return *p
	}
	return nil
}

// get performs a point lookup: reject by key-range fence, then by bloom
// filter, then binary-search the block index for the last block whose
// first key is <= key and scan that one block (cache-resident when a
// cache is wired; a pooled scratch otherwise, so the steady-state
// lookup allocates nothing either way).
func (r *runFile) get(kp *pointProbe) (adm.Value, bool) {
	if len(r.blocks) == 0 {
		return adm.Value{}, false
	}
	key := kp.key
	if adm.Compare(key, r.firstKey) < 0 || adm.Compare(key, r.lastKey) > 0 {
		r.rs.fenceSkips.Add(1)
		return adm.Value{}, false
	}
	if r.bloom != nil && !r.bloom.mayContain(kp.keyHash()) {
		r.rs.bloomSkips.Add(1)
		return adm.Value{}, false
	}
	lo, hi := 0, len(r.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if adm.Compare(r.blocks[mid].firstKey, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return adm.Value{}, false
	}
	var (
		items   []index.Item
		ent     *blockEntry
		scratch *[]index.Item
		err     error
	)
	if r.cache != nil {
		items, ent, err = r.cachedBlock(lo - 1)
	} else {
		scratch = getItemBatch(0)
		items, err = r.readBlock(lo-1, (*scratch)[:0])
		*scratch = items
	}
	if err != nil {
		if scratch != nil {
			putItemBatch(scratch)
		}
		r.fail(err)
		return adm.Value{}, false
	}
	a, b := 0, len(items)
	for a < b {
		mid := (a + b) / 2
		if adm.Less(items[mid].Key, key) {
			a = mid + 1
		} else {
			b = mid
		}
	}
	var val adm.Value
	found := false
	if a < len(items) && adm.Compare(items[a].Key, key) == 0 {
		val, found = items[a].Val, true
	}
	if ent != nil {
		r.cache.release(ent)
	}
	if scratch != nil {
		putItemBatch(scratch)
	}
	return val, found
}

// incRef adds a keep-open reason (a cursor).
func (r *runFile) incRef() { r.refs.Add(1) }

// decRef drops one reason; the last one out closes the file.
func (r *runFile) decRef() {
	if r.refs.Add(-1) == 0 {
		r.close()
	}
}

// retire drops the owner reference: compaction calls it for replaced
// runs that no snapshot can reach. The file closes now if no cursor is
// mid-run, or when the last cursor finishes.
func (r *runFile) retire() { r.decRef() }

// close force-closes the file and purges its block-cache entries.
// Idempotent; safe against concurrent decRef-driven closes.
func (r *runFile) close() error {
	if r.closed.Swap(true) {
		return nil
	}
	if r.cache != nil {
		r.cache.dropRun(r.id)
	}
	return r.f.Close()
}

// runFileCursor streams a run's items block by block in key order. The
// cursor holds one run reference for its lifetime and (with a cache
// wired) one pinned cache entry for its current block; both are
// released at exhaustion or close. Abandoning an unexhausted cursor
// without close leaks the reference until partition Close — the query
// layer closes its cursors (rowSrc close chain), and merge consumers
// run to exhaustion.
type runFileCursor struct {
	r      *runFile
	block  int
	items  []index.Item
	pos    int
	ent    *blockEntry  // pinned cache entry backing items, if any
	own    []index.Item // reusable decode buffer (cache-off path)
	closed bool
}

func (r *runFile) cursor() *runFileCursor {
	r.incRef()
	return &runFileCursor{r: r}
}

func (c *runFileCursor) next() (index.Item, bool) {
	for {
		if c.pos < len(c.items) {
			it := c.items[c.pos]
			c.pos++
			return it, true
		}
		if c.closed || c.block >= len(c.r.blocks) {
			c.close()
			return index.Item{}, false
		}
		if c.ent != nil {
			c.r.cache.release(c.ent)
			c.ent = nil
		}
		if c.r.cache != nil {
			items, ent, err := c.r.cachedBlock(c.block)
			if err != nil {
				c.r.fail(err)
				c.close()
				return index.Item{}, false
			}
			c.items, c.ent = items, ent
		} else {
			items, err := c.r.readBlock(c.block, c.own[:0])
			if err != nil {
				c.r.fail(err)
				c.close()
				return index.Item{}, false
			}
			c.own, c.items = items, items
		}
		c.pos = 0
		c.block++
	}
}

// close releases the cursor's pin and run reference. Idempotent; next
// after close reports exhaustion.
func (c *runFileCursor) close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.ent != nil {
		c.r.cache.release(c.ent)
		c.ent = nil
	}
	c.items = nil
	c.r.decRef()
}
