package lsm

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/ideadb/idea/internal/adm"
)

// Per-run bloom filters: a v2 run file carries one filter over its key
// set, sized at build time from the entry count, so point lookups skip
// the block read entirely for keys the run cannot contain.
//
// The hash must be stable across processes — the filter is persisted —
// so it cannot reuse adm.Hash (maphash, per-process seed). Keys hash as
// FNV-1a 64 over their adm binary encoding (the same canonical bytes
// the run file stores), and the filter derives its k probe positions by
// double hashing: g_i = h1 + i*h2 with h2 an odd mix of h1.
const (
	// bloomBitsPerEntry sizes the filter; 10 bits/key with k=7 probes
	// gives ~0.9% false positives — one wasted block read per ~110
	// negative lookups that pass the fence check.
	bloomBitsPerEntry = 10
	bloomHashes       = 7
)

// bloomHash is FNV-1a 64 over the key's adm binary encoding.
func bloomHash(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// splitmix64 is the finalizer step of the splitmix64 generator; it
// turns the base hash into an independent second hash for double
// hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// bloomFilter is a classic blocked-free bloom filter over key hashes.
// Immutable after build; mayContain is safe for concurrent use.
type bloomFilter struct {
	nbits uint64
	bits  []byte
}

// newBloomFilter sizes a filter for n keys.
func newBloomFilter(n int) *bloomFilter {
	if n <= 0 {
		return nil
	}
	nbits := uint64(n) * bloomBitsPerEntry
	nbits = (nbits + 7) &^ 7 // whole bytes
	if nbits < 64 {
		nbits = 64
	}
	return &bloomFilter{nbits: nbits, bits: make([]byte, nbits/8)}
}

func (f *bloomFilter) insert(h uint64) {
	h2 := splitmix64(h) | 1
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h + i*h2) % f.nbits
		f.bits[bit>>3] |= 1 << (bit & 7)
	}
}

// mayContain reports whether a key with hash h might be in the set.
// False is definitive; true may be a false positive.
func (f *bloomFilter) mayContain(h uint64) bool {
	h2 := splitmix64(h) | 1
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h + i*h2) % f.nbits
		if f.bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// appendPayload encodes the filter as the bloom-section payload of a v2
// run file: nbits:uvarint bits:ceil(nbits/8)B.
func (f *bloomFilter) appendPayload(b []byte) []byte {
	b = binary.AppendUvarint(b, f.nbits)
	return append(b, f.bits...)
}

// parseBloom decodes a bloom-section payload.
func parseBloom(payload []byte) (*bloomFilter, error) {
	nbits, n := binary.Uvarint(payload)
	if n <= 0 || nbits == 0 || nbits%8 != 0 {
		return nil, fmt.Errorf("bloom: bad bit count")
	}
	bits := payload[n:]
	if uint64(len(bits)) != nbits/8 {
		return nil, fmt.Errorf("bloom: %d bits but %d payload bytes", nbits, len(bits))
	}
	return &bloomFilter{nbits: nbits, bits: bits}, nil
}

// pointProbe carries one point lookup's key through the component walk,
// computing the key's bloom hash at most once no matter how many
// run-backed components are consulted — and not at all when every run
// is rejected by its fence (or none has a filter). Probes are pooled;
// the encoding scratch rides along so a steady lookup stream allocates
// nothing.
type pointProbe struct {
	key    adm.Value
	buf    []byte
	hash   uint64
	hashed bool
}

var probePool = sync.Pool{New: func() any { return new(pointProbe) }}

func getProbe(key adm.Value) *pointProbe {
	kp := probePool.Get().(*pointProbe)
	kp.key = key
	kp.hashed = false
	return kp
}

func putProbe(kp *pointProbe) {
	kp.key = adm.Value{} // don't pin record arenas from the pool
	probePool.Put(kp)
}

// keyHash returns the probe key's stable bloom hash, computing it on
// first use.
func (kp *pointProbe) keyHash() uint64 {
	if !kp.hashed {
		kp.buf = adm.AppendBinary(kp.buf[:0], kp.key)
		kp.hash = bloomHash(kp.buf)
		kp.hashed = true
	}
	return kp.hash
}
