package lsm

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/hyracks"
	"github.com/ideadb/idea/internal/spatial"
)

// TestUpsertBatchMatchesPerRecord: a batched frame must leave the
// partition in exactly the state a record-at-a-time loop would,
// including duplicate keys inside one batch (last occurrence wins) and
// replacements of earlier batches.
func TestUpsertBatchMatchesPerRecord(t *testing.T) {
	batched := NewPartition(smallOpts())
	serial := NewPartition(smallOpts())
	r := rand.New(rand.NewSource(7))
	model := map[int64]int64{}
	for round := 0; round < 40; round++ {
		n := 1 + r.Intn(300)
		keys := make([]adm.Value, n)
		recs := make([]adm.Value, n)
		for i := 0; i < n; i++ {
			k := r.Int63n(500)
			v := r.Int63()
			keys[i] = adm.Int(k)
			recs[i] = rec(k, "v", adm.Int(v))
			serial.Upsert(keys[i], recs[i])
			model[k] = v
		}
		batched.UpsertBatch(keys, recs)
	}
	if got, want := batched.Len(), len(model); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for k, v := range model {
		got, ok := batched.Get(adm.Int(k))
		if !ok || got.Field("v").IntVal() != v {
			t.Fatalf("Get(%d) = %v,%v want v=%d", k, got, ok, v)
		}
		sgot, _ := serial.Get(adm.Int(k))
		if adm.Compare(got, sgot) != 0 {
			t.Fatalf("batched and serial disagree for key %d", k)
		}
	}
	// Scans must agree record-for-record (same keys, same order).
	var bkeys, skeys []int64
	batched.Snapshot().Scan(func(k, _ adm.Value) bool { bkeys = append(bkeys, k.IntVal()); return true })
	serial.Snapshot().Scan(func(k, _ adm.Value) bool { skeys = append(skeys, k.IntVal()); return true })
	if len(bkeys) != len(skeys) {
		t.Fatalf("scan lengths differ: %d vs %d", len(bkeys), len(skeys))
	}
	for i := range bkeys {
		if bkeys[i] != skeys[i] {
			t.Fatalf("scan order differs at %d: %d vs %d", i, bkeys[i], skeys[i])
		}
	}
}

// TestUpsertBatchWAL: one batch is one WAL commit but len(batch) log
// entries — the group-commit amortization the paper describes.
func TestUpsertBatchWAL(t *testing.T) {
	p := NewPartition(DefaultOptions())
	keys := []adm.Value{adm.Int(1), adm.Int(2), adm.Int(3)}
	recs := []adm.Value{rec(1), rec(2), rec(3)}
	p.UpsertBatch(keys, recs)
	if got := p.WAL().LSN(); got != 3 {
		t.Fatalf("LSN = %d, want 3 (one entry per record)", got)
	}
	if got := p.WAL().Commits(); got != 1 {
		t.Fatalf("Commits = %d, want 1 (one group commit per frame)", got)
	}
	if got := p.WAL().Committed(); got != 3 {
		t.Fatalf("Committed = %d, want 3", got)
	}
	if got := p.Stats().Upserts; got != 3 {
		t.Fatalf("Upserts = %d, want 3", got)
	}
}

// TestUpsertBatchFlushThreshold: crossing the memtable budget inside a
// batch triggers exactly one freeze, checked per batch rather than per
// record.
func TestUpsertBatchFlushThreshold(t *testing.T) {
	p := NewPartition(Options{MemBudget: 4 << 10, MaxComponents: 64})
	const n = 64
	keys := make([]adm.Value, n)
	recs := make([]adm.Value, n)
	for i := range keys {
		keys[i] = adm.Int(int64(i))
		recs[i] = rec(int64(i), "pad", adm.String("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
	}
	p.UpsertBatch(keys, recs)
	s := p.Stats()
	if s.Flushes != 1 {
		t.Fatalf("Flushes = %d, want exactly 1 per over-budget batch", s.Flushes)
	}
	if s.MemEntries != 0 {
		t.Fatalf("MemEntries = %d, want 0 after freeze", s.MemEntries)
	}
	if got := p.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
}

// TestUpsertBatchSecondaryIndexes: batched writes must maintain
// secondary indexes exactly like per-record writes — replaced records'
// old entries removed, new entries present, across both index types.
func TestUpsertBatchSecondaryIndexes(t *testing.T) {
	p := NewPartition(DefaultOptions())
	bt := NewBTreeIndex("byCountry", FieldKeyExtractor("country"))
	rt := NewRTreeIndex("byLoc", FieldRectExtractor("loc"))
	p.AttachIndex(bt)
	p.AttachIndex(rt)

	mk := func(id int64, country string, x float64) adm.Value {
		return rec(id, "country", adm.String(country), "loc", adm.Point(x, x))
	}
	p.UpsertBatch(
		[]adm.Value{adm.Int(1), adm.Int(2), adm.Int(3)},
		[]adm.Value{mk(1, "US", 1), mk(2, "US", 2), mk(3, "FR", 3)},
	)
	if got := len(bt.Lookup(adm.String("US"))); got != 2 {
		t.Fatalf("US entries = %d, want 2", got)
	}
	// Replace 2 (US→DE, moves location) and add 4 in one batch.
	p.UpsertBatch(
		[]adm.Value{adm.Int(2), adm.Int(4)},
		[]adm.Value{mk(2, "DE", 9), mk(4, "FR", 4)},
	)
	if got := len(bt.Lookup(adm.String("US"))); got != 1 {
		t.Fatalf("US entries after replace = %d, want 1", got)
	}
	if got := len(bt.Lookup(adm.String("DE"))); got != 1 {
		t.Fatalf("DE entries = %d, want 1", got)
	}
	if got := len(bt.Lookup(adm.String("FR"))); got != 2 {
		t.Fatalf("FR entries = %d, want 2", got)
	}
	// The R-tree must have dropped point (2,2) and gained (9,9).
	if got := len(rt.Search(spatial.NewRect(1.5, 1.5, 2.5, 2.5))); got != 0 {
		t.Fatalf("stale spatial entry survives replace: %d hits", got)
	}
	if got := len(rt.Search(spatial.NewRect(8.5, 8.5, 9.5, 9.5))); got != 1 {
		t.Fatalf("moved spatial entry missing: %d hits", got)
	}
	if rt.Len() != 4 {
		t.Fatalf("rtree Len = %d, want 4", rt.Len())
	}
}

// TestDatasetUpsertBatch: routing, validation-before-write, and
// multi-partition grouping.
func TestDatasetUpsertBatch(t *testing.T) {
	dt := adm.MustDatatype("T", true, []adm.FieldDef{
		{Name: "id", Kind: adm.KindString},
	})
	ds, err := NewDataset("d", dt, "id", 4, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]adm.Value, 50)
	for i := range recs {
		recs[i] = adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.String(fmt.Sprintf("k%02d", i)), "v", adm.Int(int64(i))))
	}
	if err := ds.UpsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	if got := ds.Len(); got != 50 {
		t.Fatalf("Len = %d, want 50", got)
	}
	for i := 0; i < 50; i += 7 {
		v, ok := ds.Get(adm.String(fmt.Sprintf("k%02d", i)))
		if !ok || v.Field("v").IntVal() != int64(i) {
			t.Fatalf("Get(k%02d) = %v,%v", i, v, ok)
		}
	}
	// A record failing validation rejects the batch before any write.
	bad := append([]adm.Value{}, recs...)
	bad[25] = adm.ObjectValue(adm.ObjectFromPairs("id", adm.Int(99)))
	ds2, _ := NewDataset("d2", dt, "id", 4, smallOpts())
	if err := ds2.UpsertBatch(bad); err == nil {
		t.Fatal("batch with invalid record must fail")
	}
	if got := ds2.Len(); got != 0 {
		t.Fatalf("failed batch wrote %d records, want 0", got)
	}
}

// TestDatasetUpsertFrame: the frame API consumes the frame (spines
// recycled, arena left to the retained records) and rejects raw-lane
// frames.
func TestDatasetUpsertFrame(t *testing.T) {
	ds, err := NewDataset("d", nil, "id", 2, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	spine := hyracks.GetRecordSlice(8)
	for i := int64(0); i < 8; i++ {
		spine = append(spine, rec(i, "v", adm.Int(i*10)))
	}
	if err := ds.UpsertFrame(hyracks.Frame{Records: spine}); err != nil {
		t.Fatal(err)
	}
	if got := ds.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if v, ok := ds.Get(adm.Int(3)); !ok || v.Field("v").IntVal() != 30 {
		t.Fatalf("Get(3) = %v,%v", v, ok)
	}
	if err := ds.UpsertFrame(hyracks.Frame{Raw: [][]byte{[]byte(`{"id":1}`)}}); err == nil {
		t.Fatal("raw-lane frame must be rejected")
	}
}
