package lsm

import (
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

// storageFrame builds one frame's worth of keys and tweet-shaped
// records starting at base.
func storageFrame(base int64, n int) (keys, recs []adm.Value) {
	keys = make([]adm.Value, n)
	recs = make([]adm.Value, n)
	for i := 0; i < n; i++ {
		id := base + int64(i)
		keys[i] = adm.Int(id)
		recs[i] = adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(id),
			"text", adm.String("benchmark tweet with some padding text"),
			"lang", adm.String("en"),
		))
	}
	return keys, recs
}

// BenchmarkStorageUpsert compares the per-record write path (one WAL
// append, lock acquisition, and root-to-leaf descent per record, with
// the frame's single group commit at the end) against the
// frame-granular UpsertBatch on 1k-record frames. This is the storage
// half of the feed pipeline in isolation.
func BenchmarkStorageUpsert(b *testing.B) {
	const frameSize = 1000
	// Keys wrap over a bounded space so steady state mixes fresh
	// inserts with replacements, like a long-running feed.
	const keySpace = 64 * frameSize

	b.Run("per-record", func(b *testing.B) {
		p := NewPartition(DefaultOptions())
		b.ReportAllocs()
		b.ResetTimer()
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			keys, recs := storageFrame(int64(i*frameSize%keySpace), frameSize)
			b.StartTimer()
			for j := range keys {
				p.Upsert(keys[j], recs[j])
			}
			p.WAL().Commit()
			b.StopTimer()
		}
		b.ReportMetric(float64(b.N*frameSize)/b.Elapsed().Seconds(), "records/s")
	})

	b.Run("batch", func(b *testing.B) {
		p := NewPartition(DefaultOptions())
		b.ReportAllocs()
		b.ResetTimer()
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			keys, recs := storageFrame(int64(i*frameSize%keySpace), frameSize)
			b.StartTimer()
			p.UpsertBatch(keys, recs)
			b.StopTimer()
		}
		b.ReportMetric(float64(b.N*frameSize)/b.Elapsed().Seconds(), "records/s")
	})
}

// BenchmarkStorageUpsertIndexed is the same comparison with a secondary
// B-tree index attached, adding the get-before-put old-value pass and
// index maintenance to both sides.
func BenchmarkStorageUpsertIndexed(b *testing.B) {
	const frameSize = 1000
	const keySpace = 64 * frameSize

	b.Run("per-record", func(b *testing.B) {
		p := NewPartition(DefaultOptions())
		p.AttachIndex(NewBTreeIndex("byLang", FieldKeyExtractor("lang")))
		b.ReportAllocs()
		b.ResetTimer()
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			keys, recs := storageFrame(int64(i*frameSize%keySpace), frameSize)
			b.StartTimer()
			for j := range keys {
				p.Upsert(keys[j], recs[j])
			}
			p.WAL().Commit()
			b.StopTimer()
		}
		b.ReportMetric(float64(b.N*frameSize)/b.Elapsed().Seconds(), "records/s")
	})

	b.Run("batch", func(b *testing.B) {
		p := NewPartition(DefaultOptions())
		p.AttachIndex(NewBTreeIndex("byLang", FieldKeyExtractor("lang")))
		b.ReportAllocs()
		b.ResetTimer()
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			keys, recs := storageFrame(int64(i*frameSize%keySpace), frameSize)
			b.StartTimer()
			p.UpsertBatch(keys, recs)
			b.StopTimer()
		}
		b.ReportMetric(float64(b.N*frameSize)/b.Elapsed().Seconds(), "records/s")
	})
}
